package minoaner_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	minoaner "repro"
	"repro/internal/datagen"
	"repro/internal/kb"
	"repro/internal/rdf"
)

const kbA = `
<http://a.org/Paris> <http://a.org/name> "Paris city of lights" .
<http://a.org/Paris> <http://a.org/country> <http://a.org/France> .
<http://a.org/France> <http://a.org/name> "France republic" .
<http://a.org/Berlin> <http://a.org/name> "Berlin capital" .
`

const kbB = `
<http://b.org/paris_fr> <http://b.org/label> "Paris lights" .
<http://b.org/paris_fr> <http://b.org/in> <http://b.org/france_eu> .
<http://b.org/france_eu> <http://b.org/label> "France republic" .
<http://b.org/munich> <http://b.org/label> "Munich bavaria" .
`

func TestPipelineEndToEnd(t *testing.T) {
	p := minoaner.New(minoaner.Defaults())
	if err := p.LoadKB("a", strings.NewReader(kbA)); err != nil {
		t.Fatal(err)
	}
	if err := p.LoadKB("b", strings.NewReader(kbB)); err != nil {
		t.Fatal(err)
	}
	if p.NumDescriptions() != 6 {
		t.Fatalf("descriptions=%d, want 6", p.NumDescriptions())
	}
	res, err := p.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]string{}
	for _, m := range res.Matches {
		// Normalize direction: key by KB-a URI.
		a, b := m.A, m.B
		if a.KB != "a" {
			a, b = b, a
		}
		found[a.URI] = b.URI
	}
	if found["http://a.org/Paris"] != "http://b.org/paris_fr" {
		t.Errorf("Paris not matched: %v", found)
	}
	if found["http://a.org/France"] != "http://b.org/france_eu" {
		t.Errorf("France not matched: %v", found)
	}
	if _, bad := found["http://a.org/Berlin"]; bad {
		t.Errorf("Berlin spuriously matched: %v", found)
	}
	if res.Stats.Matches != len(res.Matches) || res.Stats.Comparisons == 0 {
		t.Errorf("stats inconsistent: %+v", res.Stats)
	}
	// SameAs output parses back as RDF.
	triples, err := rdf.ParseString(res.SameAs())
	if err != nil {
		t.Fatalf("SameAs output invalid: %v", err)
	}
	if len(triples) != len(res.Matches) {
		t.Errorf("SameAs has %d triples, want %d", len(triples), len(res.Matches))
	}
}

func TestPipelineBudget(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(61, 200, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	run := func(budget int) *minoaner.Result {
		p := minoaner.New(minoaner.Defaults())
		for _, name := range []string{"alpha", "betaKB"} {
			doc, err := rdf.WriteString(w.Triples(name))
			if err != nil {
				t.Fatal(err)
			}
			if err := p.LoadKB(name, strings.NewReader(doc)); err != nil {
				t.Fatal(err)
			}
		}
		res, err := p.ResolveBudget(budget)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full := run(0)
	small := run(100)
	if small.Stats.Comparisons > 100 {
		t.Errorf("budget exceeded: %d", small.Stats.Comparisons)
	}
	if full.Stats.Matches < small.Stats.Matches {
		t.Errorf("full run found fewer matches (%d) than budgeted (%d)",
			full.Stats.Matches, small.Stats.Matches)
	}
	// Progressive quality: the small budget already finds a large share
	// of the matches the full run confirms.
	if small.Stats.Matches*2 < full.Stats.Matches*1 {
		ratio := float64(small.Stats.Matches) / float64(full.Stats.Matches)
		if ratio < 0.3 {
			t.Errorf("first 100 comparisons found only %.2f of all matches", ratio)
		}
	}
}

func TestPipelineQualityAgainstTruth(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(62, 250, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	p := minoaner.New(minoaner.Defaults())
	for _, name := range []string{"alpha", "betaKB"} {
		doc, err := rdf.WriteString(w.Triples(name))
		if err != nil {
			t.Fatal(err)
		}
		if err := p.LoadKB(name, strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild a collection aligned with the pipeline's loading order to
	// score against ground truth via URI identity.
	c := kb.NewCollection()
	c.LoadTriples("alpha", w.Triples("alpha"))
	c.LoadTriples("betaKB", w.Triples("betaKB"))
	g := kb.NewGroundTruth()
	g.LoadSameAs(c, w.SameAsTriples())
	tp, fp := 0, 0
	for _, m := range res.Matches {
		a, okA := c.IDOf(m.A.KB, m.A.URI)
		b, okB := c.IDOf(m.B.KB, m.B.URI)
		if !okA || !okB {
			t.Fatalf("match names unknown description: %+v", m)
		}
		if g.Match(a, b) {
			tp++
		} else {
			fp++
		}
	}
	total := g.CrossKBMatchingPairs(c)
	recall := float64(tp) / float64(total)
	precision := float64(tp) / float64(tp+fp)
	if recall < 0.75 {
		t.Errorf("recall=%.3f (tp=%d total=%d)", recall, tp, total)
	}
	if precision < 0.7 {
		t.Errorf("precision=%.3f (tp=%d fp=%d)", precision, tp, fp)
	}
}

func TestPipelineParallelMatchesSequential(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(63, 120, datagen.Center(), datagen.Periphery()))
	if err != nil {
		t.Fatal(err)
	}
	load := func(cfg minoaner.Config) *minoaner.Result {
		p := minoaner.New(cfg)
		for _, name := range []string{"alpha", "betaKB"} {
			doc, _ := rdf.WriteString(w.Triples(name))
			if err := p.LoadKB(name, strings.NewReader(doc)); err != nil {
				t.Fatal(err)
			}
		}
		res, err := p.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seqCfg := minoaner.Defaults()
	seqCfg.Workers = 1
	seq := load(seqCfg)

	parCfg := minoaner.Defaults()
	parCfg.Workers = 4
	par := load(parCfg)

	mrCfg := minoaner.Defaults()
	mrCfg.Workers = 4
	mrCfg.MapReduce = true
	mr := load(mrCfg)

	for name, got := range map[string]*minoaner.Result{"shared-memory": par, "mapreduce": mr} {
		if seq.Stats != got.Stats {
			t.Errorf("%s stats differ: seq=%+v got=%+v", name, seq.Stats, got.Stats)
		}
		if len(seq.Matches) != len(got.Matches) {
			t.Fatalf("%s: %d matches, want %d", name, len(got.Matches), len(seq.Matches))
		}
		for i := range seq.Matches {
			if seq.Matches[i] != got.Matches[i] {
				t.Errorf("%s: match %d = %+v, want %+v", name, i, got.Matches[i], seq.Matches[i])
			}
		}
	}
}

func TestPipelineErrors(t *testing.T) {
	p := minoaner.New(minoaner.Defaults())
	if _, err := p.Resolve(); err == nil {
		t.Error("empty pipeline resolved")
	}
	if err := p.LoadKB("", strings.NewReader("")); err == nil {
		t.Error("empty KB name accepted")
	}
	if err := p.LoadKB("x", strings.NewReader("garbage")); err == nil {
		t.Error("malformed N-Triples accepted")
	}
	if err := p.AddDescription("", "u", nil, nil); err == nil {
		t.Error("empty KB in AddDescription accepted")
	}
	if err := p.LoadKBFile("x", filepath.Join(t.TempDir(), "missing.nt")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestAddDescriptionAndFiles(t *testing.T) {
	p := minoaner.New(minoaner.Defaults())
	err := p.AddDescription("k1", "http://k1/x", map[string]string{"name": "turing award"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddDescription("k2", "http://k2/y", map[string]string{"label": "turing award"}, nil); err != nil {
		t.Fatal(err)
	}
	res, err := p.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Matches != 1 {
		t.Errorf("matches=%d, want 1", res.Stats.Matches)
	}
	// LoadKBFile round trip.
	dir := t.TempDir()
	path := filepath.Join(dir, "kb.nt")
	if err := os.WriteFile(path, []byte(kbA), 0o644); err != nil {
		t.Fatal(err)
	}
	p2 := minoaner.New(minoaner.Defaults())
	if err := p2.LoadKBFile("a", path); err != nil {
		t.Fatal(err)
	}
	if p2.NumDescriptions() != 3 {
		t.Errorf("descriptions=%d, want 3", p2.NumDescriptions())
	}
}

func TestSessionResume(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(64, 150, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	p := minoaner.New(minoaner.Defaults())
	for _, name := range []string{"alpha", "betaKB"} {
		doc, _ := rdf.WriteString(w.Triples(name))
		if err := p.LoadKB(name, strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	leg1, err := s.Resume(200)
	if err != nil {
		t.Fatal(err)
	}
	if leg1.Stats.Comparisons != 200 {
		t.Fatalf("leg1 executed %d", leg1.Stats.Comparisons)
	}
	if s.Pending() == 0 {
		t.Error("session should have pending comparisons after a small leg")
	}
	leg2, err := s.Resume(0) // run to completion
	if err != nil {
		t.Fatal(err)
	}
	if leg2.Stats.Matches < leg1.Stats.Matches {
		t.Errorf("cumulative matches shrank: %d -> %d", leg1.Stats.Matches, leg2.Stats.Matches)
	}
	// A cumulative session must reach the same final state as one
	// unbounded run.
	whole, err := func() (*minoaner.Result, error) {
		q := minoaner.New(minoaner.Defaults())
		for _, name := range []string{"alpha", "betaKB"} {
			doc, _ := rdf.WriteString(w.Triples(name))
			if err := q.LoadKB(name, strings.NewReader(doc)); err != nil {
				return nil, err
			}
		}
		return q.Resolve()
	}()
	if err != nil {
		t.Fatal(err)
	}
	if leg2.Stats.Matches != whole.Stats.Matches || leg2.Stats.Comparisons != whole.Stats.Comparisons {
		t.Errorf("session final state %+v differs from single run %+v", leg2.Stats, whole.Stats)
	}
}

func TestPipelineLoadQuads(t *testing.T) {
	p := minoaner.New(minoaner.Defaults())
	doc := `<http://a/x> <http://a/name> "turing award" <http://graphs/a> .
<http://b/x> <http://b/label> "turing award" <http://graphs/b> .
`
	if err := p.LoadQuads("default", strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	res, err := p.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.KBs != 2 || res.Stats.Matches != 1 {
		t.Errorf("stats=%+v", res.Stats)
	}
	if err := p.LoadQuads("", strings.NewReader("")); err == nil {
		t.Error("empty default KB accepted")
	}
}
