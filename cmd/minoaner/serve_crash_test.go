// Serve-level crash recovery: a `minoaner serve -wal` process is
// SIGKILLed — once at a quiescent point, once mid-ingest — and the
// restarted server must answer /sameas with exactly the resolution of
// the mutation prefix that survived in the log. The child is this test
// binary re-exec'd into a helper that calls runServe, so the kill hits
// a real process, not a goroutine.
package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	minoaner "repro"
)

// TestServeChildHelper is not a test: it is the serve child process.
// The parent re-execs the test binary with MINOANER_SERVE_CHILD=1 and
// the serve arguments joined on the ASCII unit separator (NUL is not
// legal in environment values) in MINOANER_SERVE_ARGS.
func TestServeChildHelper(t *testing.T) {
	if os.Getenv("MINOANER_SERVE_CHILD") != "1" {
		t.Skip("serve child helper — only runs re-exec'd")
	}
	args := strings.Split(os.Getenv("MINOANER_SERVE_ARGS"), "\x1f")
	if err := runServe(args, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "child serve:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// reservePort binds and releases an ephemeral port for a child to
// re-bind — the same probe trick TestServeLifecycle uses.
func reservePort(t *testing.T) string {
	t.Helper()
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()
	return addr
}

// startServeChild launches the helper process serving on addr and waits
// for /status to answer. The returned process is running; kill it.
func startServeChild(t *testing.T, addr string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "TestServeChildHelper")
	cmd.Env = append(os.Environ(),
		"MINOANER_SERVE_CHILD=1",
		"MINOANER_SERVE_ARGS="+strings.Join(append(args, "-addr", addr), "\x1f"))
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/status")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatal("serve child never became ready")
	return nil
}

func sigkill(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // reap; exit status is the kill, not a verdict
}

// sameAsLines fetches /sameas as N-Triples and returns its sorted
// lines — the order-insensitive canonical form of the served links.
func sameAsLines(t *testing.T, addr string) []string {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/sameas?format=nt")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/sameas: status %d, err %v", resp.StatusCode, err)
	}
	return sortedLines(string(body))
}

func sortedLines(doc string) []string {
	lines := strings.Split(strings.TrimSpace(doc), "\n")
	if len(lines) == 1 && lines[0] == "" {
		lines = nil
	}
	sort.Strings(lines)
	return lines
}

func sameLines(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// crashBatch returns the i-th streamed batch: one fresh matching pair
// across the two KBs, so every durable batch adds a distinguishable
// owl:sameAs link — prefixes of the workload resolve to distinct link
// sets. The tokens are all-letter and unique per batch (the tokenizer
// splits letter/digit boundaries, so "m0"/"m1" would share tokens, and
// URIs are tokenized too) — no cross-batch candidate exists, so
// incremental and from-scratch resolution agree on exactly one link
// set per prefix.
func crashBatch(i int) []minoaner.Description {
	tag := strings.Repeat(string(rune('a'+i)), 3)
	val := fmt.Sprintf("zq%s yk%s", tag, tag)
	return []minoaner.Description{
		{KB: "a", URI: "http://a/m" + tag,
			Attrs: []minoaner.Attribute{{Predicate: "http://a/name", Value: val}}},
		{KB: "b", URI: "http://b/m" + tag,
			Attrs: []minoaner.Attribute{{Predicate: "http://b/label", Value: val}}},
	}
}

// expectedSameAs resolves, in-process and from scratch, the corpus
// after the first k streamed batches — the durable-prefix oracle the
// restarted server is held to.
func expectedSameAs(t *testing.T, k int) []string {
	t.Helper()
	p := minoaner.New(minoaner.Defaults())
	if err := p.LoadKB("a", strings.NewReader(testKBa)); err != nil {
		t.Fatal(err)
	}
	if err := p.LoadKB("b", strings.NewReader(testKBb)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if err := p.Add(crashBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	return sortedLines(res.SameAs())
}

func postJSON(addr, path, body string) (*http.Response, error) {
	return http.Post("http://"+addr+path, "application/json", strings.NewReader(body))
}

func ingestBatchHTTP(t *testing.T, addr string, i int) {
	t.Helper()
	b := crashBatch(i)
	body := fmt.Sprintf(`[{"kb":%q,"uri":%q,"attrs":[{"predicate":%q,"value":%q}]},`+
		`{"kb":%q,"uri":%q,"attrs":[{"predicate":%q,"value":%q}]}]`,
		b[0].KB, b[0].URI, b[0].Attrs[0].Predicate, b[0].Attrs[0].Value,
		b[1].KB, b[1].URI, b[1].Attrs[0].Predicate, b[1].Attrs[0].Value)
	resp, err := postJSON(addr, "/ingest", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest batch %d: status %d", i, resp.StatusCode)
	}
}

// TestServeCrashRecoveryQuiescent kills the serve process after a fully
// acknowledged workload and restarts it on the same log: the recovered
// /sameas must equal both the pre-crash answer and the in-process
// from-scratch resolution of the same mutations.
func TestServeCrashRecoveryQuiescent(t *testing.T) {
	_, a, b := writeFiles(t)
	walDir := filepath.Join(t.TempDir(), "wal")

	const batches = 3
	addr := reservePort(t)
	child := startServeChild(t, addr,
		"-kb", "a="+a, "-kb", "b="+b, "-wal", walDir, "-wal-fsync", "wave")
	for i := 0; i < batches; i++ {
		ingestBatchHTTP(t, addr, i)
	}
	if resp, err := postJSON(addr, "/resume", ""); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/resume: %v (status %v)", err, resp)
	} else {
		resp.Body.Close()
	}
	preCrash := sameAsLines(t, addr)
	if len(preCrash) == 0 {
		t.Fatal("pre-crash server resolved no links — the recovery assert would be vacuous")
	}
	sigkill(t, child)

	addr2 := reservePort(t)
	startServeChild(t, addr2, "-wal", walDir) // no -kb: the log IS the corpus
	recovered := sameAsLines(t, addr2)

	if !sameLines(recovered, preCrash) {
		t.Errorf("recovered /sameas differs from pre-crash:\n  pre  %v\n  post %v", preCrash, recovered)
	}
	if want := expectedSameAs(t, batches); !sameLines(recovered, want) {
		t.Errorf("recovered /sameas differs from from-scratch durable prefix:\n  want %v\n  got  %v", want, recovered)
	}
}

// TestServeCrashRecoveryMidIngest kills the serve process while a
// client is streaming batches, with no quiescing: whatever mutation
// prefix reached the log must be what the restarted server resolves —
// /sameas after recovery has to equal the from-scratch resolution of
// SOME workload prefix (the crash decides which), never a torn or
// invented state.
func TestServeCrashRecoveryMidIngest(t *testing.T) {
	_, a, b := writeFiles(t)
	walDir := filepath.Join(t.TempDir(), "wal")

	const batches = 6
	addr := reservePort(t)
	child := startServeChild(t, addr,
		"-kb", "a="+a, "-kb", "b="+b, "-wal", walDir, "-wal-fsync", "off")
	killed := make(chan struct{})
	go func() {
		// Kill partway through the stream; the exact moment is the
		// point — any frame boundary the death lands on must recover.
		time.Sleep(12 * time.Millisecond)
		child.Process.Kill()
		close(killed)
	}()
	for i := 0; i < batches; i++ {
		rb := crashBatch(i)
		body := fmt.Sprintf(`[{"kb":%q,"uri":%q,"attrs":[{"predicate":%q,"value":%q}]},`+
			`{"kb":%q,"uri":%q,"attrs":[{"predicate":%q,"value":%q}]}]`,
			rb[0].KB, rb[0].URI, rb[0].Attrs[0].Predicate, rb[0].Attrs[0].Value,
			rb[1].KB, rb[1].URI, rb[1].Attrs[0].Predicate, rb[1].Attrs[0].Value)
		if resp, err := postJSON(addr, "/ingest", body); err != nil {
			break // the kill landed; stop streaming
		} else {
			resp.Body.Close()
		}
		time.Sleep(5 * time.Millisecond) // pace the stream so the kill lands inside it
	}
	<-killed
	child.Wait()

	addr2 := reservePort(t)
	startServeChild(t, addr2, "-wal", walDir)
	recovered := sameAsLines(t, addr2)

	for k := 0; k <= batches; k++ {
		if sameLines(recovered, expectedSameAs(t, k)) {
			t.Logf("recovered to the %d-batch durable prefix", k)
			return
		}
	}
	t.Fatalf("recovered /sameas matches no workload prefix: %v", recovered)
}
