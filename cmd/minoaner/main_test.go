package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	minoaner "repro"
)

const testKBa = `<http://a/x> <http://a/name> "turing award" .
<http://a/y> <http://a/name> "church prize" .
`

const testKBb = `<http://b/x> <http://b/label> "turing award" .
<http://b/y> <http://b/label> "unrelated thing" .
`

func writeFiles(t *testing.T) (string, string, string) {
	t.Helper()
	dir := t.TempDir()
	a := filepath.Join(dir, "a.nt")
	b := filepath.Join(dir, "b.nt")
	if err := os.WriteFile(a, []byte(testKBa), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte(testKBb), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir, a, b
}

func TestRunWritesLinks(t *testing.T) {
	dir, a, b := writeFiles(t)
	out := filepath.Join(dir, "links.nt")
	err := run([]string{"-kb", "a=" + a, "-kb", "b=" + b, "-out", out, "-v"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "owl#sameAs") {
		t.Errorf("output lacks sameAs links:\n%s", data)
	}
	if !strings.Contains(string(data), "<http://a/x>") {
		t.Errorf("turing pair not linked:\n%s", data)
	}
}

func TestRunTruthMode(t *testing.T) {
	dir, a, b := writeFiles(t)
	truth := filepath.Join(dir, "truth.nt")
	err := os.WriteFile(truth,
		[]byte(`<http://a/x> <http://www.w3.org/2002/07/owl#sameAs> <http://b/x> .`), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-kb", "a=" + a, "-kb", "b=" + b, "-truth", truth}); err != nil {
		t.Fatalf("run with -truth: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no -kb accepted")
	}
	if err := run([]string{"-kb", "noequals"}); err == nil {
		t.Error("malformed -kb accepted")
	}
	if err := run([]string{"-kb", "a=/nonexistent/path.nt"}); err == nil {
		t.Error("missing file accepted")
	}
	_, a, b := writeFiles(t)
	if err := run([]string{"-kb", "a=" + a, "-kb", "b=" + b, "-truth", "/nonexistent"}); err == nil {
		t.Error("missing truth file accepted")
	}
}

func TestRunClusteringFlag(t *testing.T) {
	_, a, b := writeFiles(t)
	out := filepath.Join(t.TempDir(), "links.nt")
	for _, mode := range []string{"closure", "center", "unique"} {
		if err := run([]string{"-kb", "a=" + a, "-kb", "b=" + b, "-clustering", mode, "-out", out}); err != nil {
			t.Fatalf("clustering %s: %v", mode, err)
		}
	}
	if err := run([]string{"-kb", "a=" + a, "-clustering", "bogus"}); err == nil {
		t.Error("unknown clustering accepted")
	}
}

func TestRunWorkers(t *testing.T) {
	_, a, b := writeFiles(t)
	out := filepath.Join(t.TempDir(), "links.nt")
	if err := run([]string{"-kb", "a=" + a, "-kb", "b=" + b, "-workers", "4", "-out", out}); err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if err := run([]string{"-kb", "a=" + a, "-kb", "b=" + b, "-workers", "4", "-mapreduce", "-out", out}); err != nil {
		t.Fatalf("mapreduce run: %v", err)
	}
}

// TestServeLifecycle drives the serve subcommand in-process: bind an
// ephemeral port, resolve the corpus, serve reads and a mutation over
// real HTTP, then shut down via the quit channel and require a clean
// exit.
func TestServeLifecycle(t *testing.T) {
	_, a, b := writeFiles(t)
	// Reserve an ephemeral port for the pprof listener: bind, read the
	// address, release it for runServe to re-bind. The window between
	// close and re-bind is racy in principle; in practice the kernel
	// does not hand the port out again this fast.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pprofAddr := probe.Addr().String()
	probe.Close()
	ready := make(chan net.Addr, 1)
	quit := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- runServe([]string{"-kb", "a=" + a, "-kb", "b=" + b,
			"-addr", "127.0.0.1:0", "-pprof", pprofAddr}, ready, quit)
	}()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("serve exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("serve never became ready")
	}
	base := "http://" + addr.String()

	resp, err := http.Get(base + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		Epoch    uint64 `json:"epoch"`
		Clusters int    `json:"clusters"`
		Gauges   struct {
			GraphEdges int `json:"graphEdges"`
			GraphBytes int `json:"graphBytes"`
		} `json:"gauges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || status.Epoch == 0 {
		t.Fatalf("status %d, epoch %d", resp.StatusCode, status.Epoch)
	}
	if status.Clusters == 0 {
		t.Error("served session resolved no clusters for the turing pair")
	}
	if status.Gauges.GraphEdges == 0 || status.Gauges.GraphBytes == 0 {
		t.Errorf("status reports empty memory gauges: %+v", status.Gauges)
	}

	// The profiling endpoint lives on its own listener, off the API mux.
	resp, err = http.Get("http://" + pprofAddr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("pprof endpoint: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index: status %d", resp.StatusCode)
	}
	if resp, err = http.Get(base + "/debug/pprof/"); err == nil {
		if resp.StatusCode == http.StatusOK {
			t.Error("pprof leaked onto the API listener")
		}
		resp.Body.Close()
	}

	resp, err = http.Get(base + "/sameas?format=nt")
	if err != nil {
		t.Fatal(err)
	}
	links, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(links), "owl#sameAs") {
		t.Errorf("served sameAs lacks links:\n%s", links)
	}

	// One mutation through the wire, to prove the writer is live.
	resp, err = http.Post(base+"/ingest", "application/json",
		strings.NewReader(`[{"kb":"a","uri":"http://a/z","attrs":[{"predicate":"http://a/name","value":"turing award"}]}]`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest over the wire: status %d", resp.StatusCode)
	}

	close(quit)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve exited with error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not shut down")
	}
}

func TestServeErrors(t *testing.T) {
	if err := runServe([]string{}, nil, nil); err == nil {
		t.Error("serve without -kb accepted")
	}
	if err := runServe([]string{"-kb", "a=/nonexistent/path.nt"}, nil, nil); err == nil {
		t.Error("serve with missing file accepted")
	}
	_, a, _ := writeFiles(t)
	if err := runServe([]string{"-kb", "a=" + a, "-clustering", "bogus"}, nil, nil); err == nil {
		t.Error("serve with unknown clustering accepted")
	}
	if err := runServe([]string{"-kb", "a=" + a, "-addr", "256.0.0.1:bad"}, nil, nil); err == nil {
		t.Error("serve with bad address accepted")
	}
	if err := runServe([]string{"-kb", "a=" + a, "-wal", t.TempDir(), "-wal-fsync", "bogus"}, nil, nil); err == nil {
		t.Error("serve with unknown -wal-fsync accepted")
	}
	// A log that recovered a corpus conflicts with -kb: the operator must
	// pick one source of truth.
	walDir := filepath.Join(t.TempDir(), "wal")
	p, err := minoaner.Open(walDir, minoaner.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddDescription("a", "http://a/seed", map[string]string{"name": "seed"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := runServe([]string{"-kb", "a=" + a, "-wal", walDir}, nil, nil); err == nil {
		t.Error("serve with -kb against a recovered log accepted")
	}
}
