package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testKBa = `<http://a/x> <http://a/name> "turing award" .
<http://a/y> <http://a/name> "church prize" .
`

const testKBb = `<http://b/x> <http://b/label> "turing award" .
<http://b/y> <http://b/label> "unrelated thing" .
`

func writeFiles(t *testing.T) (string, string, string) {
	t.Helper()
	dir := t.TempDir()
	a := filepath.Join(dir, "a.nt")
	b := filepath.Join(dir, "b.nt")
	if err := os.WriteFile(a, []byte(testKBa), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte(testKBb), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir, a, b
}

func TestRunWritesLinks(t *testing.T) {
	dir, a, b := writeFiles(t)
	out := filepath.Join(dir, "links.nt")
	err := run([]string{"-kb", "a=" + a, "-kb", "b=" + b, "-out", out, "-v"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "owl#sameAs") {
		t.Errorf("output lacks sameAs links:\n%s", data)
	}
	if !strings.Contains(string(data), "<http://a/x>") {
		t.Errorf("turing pair not linked:\n%s", data)
	}
}

func TestRunTruthMode(t *testing.T) {
	dir, a, b := writeFiles(t)
	truth := filepath.Join(dir, "truth.nt")
	err := os.WriteFile(truth,
		[]byte(`<http://a/x> <http://www.w3.org/2002/07/owl#sameAs> <http://b/x> .`), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-kb", "a=" + a, "-kb", "b=" + b, "-truth", truth}); err != nil {
		t.Fatalf("run with -truth: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no -kb accepted")
	}
	if err := run([]string{"-kb", "noequals"}); err == nil {
		t.Error("malformed -kb accepted")
	}
	if err := run([]string{"-kb", "a=/nonexistent/path.nt"}); err == nil {
		t.Error("missing file accepted")
	}
	_, a, b := writeFiles(t)
	if err := run([]string{"-kb", "a=" + a, "-kb", "b=" + b, "-truth", "/nonexistent"}); err == nil {
		t.Error("missing truth file accepted")
	}
}

func TestRunClusteringFlag(t *testing.T) {
	_, a, b := writeFiles(t)
	out := filepath.Join(t.TempDir(), "links.nt")
	for _, mode := range []string{"closure", "center", "unique"} {
		if err := run([]string{"-kb", "a=" + a, "-kb", "b=" + b, "-clustering", mode, "-out", out}); err != nil {
			t.Fatalf("clustering %s: %v", mode, err)
		}
	}
	if err := run([]string{"-kb", "a=" + a, "-clustering", "bogus"}); err == nil {
		t.Error("unknown clustering accepted")
	}
}

func TestRunWorkers(t *testing.T) {
	_, a, b := writeFiles(t)
	out := filepath.Join(t.TempDir(), "links.nt")
	if err := run([]string{"-kb", "a=" + a, "-kb", "b=" + b, "-workers", "4", "-out", out}); err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if err := run([]string{"-kb", "a=" + a, "-kb", "b=" + b, "-workers", "4", "-mapreduce", "-out", out}); err != nil {
		t.Fatalf("mapreduce run: %v", err)
	}
}
