// Command minoaner resolves entities across N-Triples knowledge bases
// and emits the discovered owl:sameAs links.
//
// Usage:
//
//	minoaner -kb dbp=dbpedia.nt -kb geo=geonames.nt [-budget N] [-out links.nt]
//	minoaner serve -kb dbp=dbpedia.nt -kb geo=geonames.nt [-addr host:port] [-budget N] [-wal dir]
//
// Each -kb flag names one knowledge base and its N-Triples file.
// With a single KB the run is dirty ER (duplicates within the KB);
// with several it is clean–clean ER across them. -budget caps the
// number of comparisons (pay-as-you-go); 0 means run to completion.
//
// The serve subcommand keeps the resolved session alive behind an HTTP
// API (see internal/server): snapshot reads on GET /resolve, /clusters,
// /sameas, and /status; single-writer mutations on POST /ingest,
// /evict, and /resume. SIGINT/SIGTERM shut it down cleanly. With -wal
// every mutation is write-ahead logged and a restart (even after a
// crash) recovers the session from the log instead of -kb files.
//
// The worker subcommand is internal: with -mapreduce -mr-runner proc
// the engine spawns `minoaner worker` subprocesses and ships dataflow
// tasks to them over a framed stdin/stdout protocol.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	minoaner "repro"
	"repro/internal/blocking"
	"repro/internal/eval"
	"repro/internal/kb"
	"repro/internal/mapreduce"
	"repro/internal/server"
)

type kbFlags []string

func (k *kbFlags) String() string { return strings.Join(*k, ",") }

func (k *kbFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*k = append(*k, v)
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "minoaner:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) > 0 && args[0] == "serve" {
		return runServe(args[1:], nil, nil)
	}
	if len(args) > 0 && args[0] == "worker" {
		// MapReduce task executor: a ProcRunner parent speaks the framed
		// task protocol over our stdin/stdout and reaps us on idle. Not
		// meant for interactive use — there are no flags to parse.
		return mapreduce.WorkerMain(os.Stdin, os.Stdout)
	}
	fs := flag.NewFlagSet("minoaner", flag.ContinueOnError)
	var kbs kbFlags
	fs.Var(&kbs, "kb", "knowledge base as name=path.nt (repeatable)")
	budget := fs.Int("budget", 0, "comparison budget (0 = unlimited)")
	out := fs.String("out", "", "write owl:sameAs links to this file (default stdout)")
	workers := fs.Int("workers", 0, "meta-blocking workers (0 = one per CPU, 1 = sequential)")
	mr := fs.Bool("mapreduce", false, "use the in-process MapReduce engine instead of the shared-memory engine")
	mrRunner := fs.String("mr-runner", "", "MapReduce task runner with -mapreduce: local | proc (worker subprocesses)")
	verbose := fs.Bool("v", false, "print per-match lines to stderr")
	truth := fs.String("truth", "", "owl:sameAs ground-truth file: report precision/recall instead of links")
	clustering := fs.String("clustering", "closure", "final clustering: closure | center | unique")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(kbs) == 0 {
		fs.Usage()
		return fmt.Errorf("at least one -kb required")
	}

	cfg := minoaner.Defaults()
	cfg.Workers = *workers
	cfg.MapReduce = *mr
	if *mrRunner != "" {
		cfg.MRRunner = *mrRunner
	}
	alg, err := clusteringAlg(*clustering)
	if err != nil {
		return err
	}
	cfg.Clustering = alg
	p := minoaner.New(cfg)
	for _, spec := range kbs {
		name, path, _ := strings.Cut(spec, "=")
		if err := p.LoadKBFile(name, path); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loaded %s from %s\n", name, path)
	}

	res, err := p.ResolveBudget(*budget)
	if err != nil {
		return err
	}
	s := res.Stats
	fmt.Fprintf(os.Stderr,
		"descriptions=%d kbs=%d brute=%d blocks=%d candidates=%d pruned=%d comparisons=%d discovered=%d matches=%d clusters=%d\n",
		s.Descriptions, s.KBs, s.BruteForce, s.Blocks, s.BlockCandidates,
		s.PrunedEdges, s.Comparisons, s.DiscoveredCmps, s.Matches, len(res.Clusters))
	if *verbose {
		for _, m := range res.Matches {
			tag := ""
			if m.Discovered {
				tag = " (discovered)"
			}
			fmt.Fprintf(os.Stderr, "match %.3f %s == %s%s\n", m.Score, m.A.URI, m.B.URI, tag)
		}
	}

	if *truth != "" {
		return evaluate(res, kbs, *truth)
	}

	links := res.SameAs()
	if *out == "" {
		fmt.Print(links)
		return nil
	}
	if err := os.WriteFile(*out, []byte(links), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", *out, err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d links to %s\n", len(res.Matches), *out)
	return nil
}

func clusteringAlg(name string) (minoaner.Clustering, error) {
	switch name {
	case "closure":
		return minoaner.TransitiveClosure, nil
	case "center":
		return minoaner.CenterClustering, nil
	case "unique":
		return minoaner.UniqueMappingClustering, nil
	default:
		return 0, fmt.Errorf("unknown -clustering %q (want closure, center, or unique)", name)
	}
}

// runServe implements the serve subcommand: load the KBs, resolve the
// initial corpus under -budget, then keep the session alive behind the
// HTTP API until a signal (or quit, in tests) shuts it down.
//
// ready, when non-nil, receives the bound listener address once the
// server accepts connections; quit, when non-nil, replaces the signal
// handler as the shutdown trigger. Both exist so tests can drive a
// full serve lifecycle in-process; main passes nil for both.
func runServe(args []string, ready chan<- net.Addr, quit <-chan struct{}) error {
	fs := flag.NewFlagSet("minoaner serve", flag.ContinueOnError)
	var kbs kbFlags
	fs.Var(&kbs, "kb", "knowledge base as name=path.nt (repeatable)")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (port 0 = ephemeral)")
	budget := fs.Int("budget", 0, "initial comparison budget before serving (0 = resolve fully)")
	workers := fs.Int("workers", 0, "pipeline workers (0 = one per CPU, 1 = sequential)")
	mr := fs.Bool("mapreduce", false, "use the in-process MapReduce engine instead of the shared-memory engine")
	mrRunner := fs.String("mr-runner", "", "MapReduce task runner with -mapreduce: local | proc (worker subprocesses)")
	ttl := fs.Int("ttl", 0, "sliding-window TTL in ingest batches (0 = keep everything)")
	clustering := fs.String("clustering", "closure", "final clustering: closure | center | unique")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (empty = disabled)")
	walDir := fs.String("wal", "", "write-ahead-log directory: mutations are logged and a restart recovers the session (empty = RAM only)")
	walFsync := fs.String("wal-fsync", "wave", "WAL fsync policy with -wal: always | wave | off")
	storeMode := fs.String("store", "", "cold store for description bodies, postings, and the blocking graph: mem | disk (empty = all in RAM)")
	storeDir := fs.String("store-dir", "", "segment directory for -store disk (derived state; reset on every start)")
	maxBody := fs.Int64("max-body", server.DefaultMaxBody, "cap on a mutation request body in bytes (oversized requests answer 413)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := minoaner.Defaults()
	cfg.Workers = *workers
	cfg.MapReduce = *mr
	if *mrRunner != "" {
		cfg.MRRunner = *mrRunner
	}
	cfg.TTL = *ttl
	cfg.Store = *storeMode
	cfg.StoreDir = *storeDir
	alg, err := clusteringAlg(*clustering)
	if err != nil {
		return err
	}
	cfg.Clustering = alg

	var p *minoaner.Pipeline
	if *walDir != "" {
		if cfg.WALFsync, err = minoaner.ParseFsyncPolicy(*walFsync); err != nil {
			return fmt.Errorf("-wal-fsync: %w", err)
		}
		if p, err = minoaner.Open(*walDir, cfg); err != nil {
			return err
		}
	} else {
		p = minoaner.New(cfg)
	}
	defer p.Close() // releases the WAL and the cold store; no-op without either

	// A log that already holds a corpus defines the state; -kb would
	// re-load (and re-log) the same files on every restart.
	recovered := p.NumDescriptions() > 0
	if recovered {
		if len(kbs) > 0 {
			return fmt.Errorf("-kb conflicts with a recovered -wal session (the log already defines the corpus)")
		}
		fmt.Fprintf(os.Stderr, "recovered %d descriptions from %s\n", p.NumDescriptions(), *walDir)
	} else {
		if len(kbs) == 0 {
			fs.Usage()
			return fmt.Errorf("at least one -kb required")
		}
		for _, spec := range kbs {
			name, path, _ := strings.Cut(spec, "=")
			if err := p.LoadKBFile(name, path); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "loaded %s from %s\n", name, path)
		}
	}

	sess := p.Current() // a recovered log that saw Start resumes its session
	if sess == nil {
		if sess, err = p.Start(); err != nil {
			return err
		}
	}
	if err := p.SyncWAL(); err != nil {
		return err // the recovered/loaded baseline is durable before serving
	}
	res, err := sess.Resume(*budget)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "resolved: comparisons=%d matches=%d clusters=%d pending=%d\n",
		res.Stats.Comparisons, res.Stats.Matches, len(res.Clusters), sess.Pending())

	srv := server.NewWith(sess, server.Config{MaxBody: *maxBody})
	defer srv.Close()

	// The profiling endpoint binds its own listener, kept off the API
	// address so an operator can expose /status publicly while leaving
	// heap and goroutine dumps on localhost. Registered on a private mux
	// — never the default one — so nothing leaks onto the API handler.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Fprintf(os.Stderr, "pprof on http://%s/debug/pprof/\n", pln.Addr())
		// Same hardening as the API server (a diagnostics port is still
		// a port), and a graceful Shutdown instead of yanking the
		// listener out from under in-flight profile dumps.
		ps := &http.Server{
			Handler:           pmux,
			ReadHeaderTimeout: 10 * time.Second,
			IdleTimeout:       2 * time.Minute,
		}
		go ps.Serve(pln)
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			ps.Shutdown(sctx)
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serving on http://%s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr()
	}

	// ReadHeaderTimeout caps how long a connection may dribble its
	// headers (the slowloris hole an untimed Server leaves open);
	// IdleTimeout reclaims keep-alive connections. No ReadTimeout: a
	// legitimate 64 MiB ingest body may stream slowly.
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx := context.Background()
	if quit == nil {
		var stop context.CancelFunc
		ctx, stop = signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
		defer stop()
	} else {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		go func() {
			<-quit
			cancel()
		}()
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err // Serve never returns nil
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	return nil
}

// evaluate reloads the KBs into an id-addressed collection, reads the
// owl:sameAs ground truth, and scores the pipeline's matches.
func evaluate(res *minoaner.Result, kbs kbFlags, truthPath string) error {
	c := kb.NewCollection()
	for _, spec := range kbs {
		name, path, _ := strings.Cut(spec, "=")
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		var lerr error
		if strings.HasSuffix(path, ".ttl") || strings.HasSuffix(path, ".turtle") {
			lerr = c.LoadTurtle(name, f)
		} else {
			lerr = c.Load(name, f)
		}
		f.Close()
		if lerr != nil {
			return lerr
		}
	}
	tf, err := os.Open(truthPath)
	if err != nil {
		return err
	}
	defer tf.Close()
	g := kb.NewGroundTruth()
	missing, err := g.ParseSameAs(c, tf)
	if err != nil {
		return err
	}
	if missing > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d ground-truth links reference unknown descriptions\n", missing)
	}
	var pred []blocking.Pair
	for _, m := range res.Matches {
		a, okA := c.IDOf(m.A.KB, m.A.URI)
		b, okB := c.IDOf(m.B.KB, m.B.URI)
		if !okA || !okB {
			return fmt.Errorf("match references unknown description %s / %s", m.A.URI, m.B.URI)
		}
		pred = append(pred, blocking.MakePair(a, b))
	}
	q := eval.EvaluateMatches(c, g, pred)
	fmt.Println(q)
	return nil
}
