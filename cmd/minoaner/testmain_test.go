package main

import (
	"os"
	"testing"

	"repro/internal/mapreduce"
)

// TestMain doubles this test binary as a MapReduce worker: a spawned
// copy serves the task protocol instead of re-running the suite, and
// the parent points the ProcRunner at itself — so the serve tests can
// exercise -mr-runner proc without the real minoaner binary on disk.
func TestMain(m *testing.M) {
	mapreduce.InitTestWorker()
	os.Exit(m.Run())
}
