package main

import "testing"

func TestRunSingleExperiment(t *testing.T) {
	// Smoke-test the cheapest experiments through the CLI path.
	for _, id := range []string{"T2", "t6", "A5"} {
		if err := run([]string{"-id", id, "-seed", "4"}); err != nil {
			t.Fatalf("-id %s: %v", id, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-id", "Z9"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-scale", "0"}); err == nil {
		t.Error("zero scale accepted")
	}
}
