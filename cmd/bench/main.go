// Command bench regenerates the reconstructed evaluation: every table
// and figure from DESIGN.md §3, printed as aligned text. Compare its
// output against EXPERIMENTS.md.
//
// Usage:
//
//	bench                 # all experiments, default seed
//	bench -id F2 -seed 7  # a single experiment
//	bench -scale 2        # double the workload sizes
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	id := fs.String("id", "", "run one experiment (F1, T1–T7, F2–F4, A1–A6); empty = all")
	ablations := fs.Bool("ablations", false, "also run the A1–A6 ablations when -id is empty")
	seed := fs.Int64("seed", 2016, "workload seed")
	scale := fs.Int("scale", 1, "multiply workload sizes by this factor")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scale < 1 {
		return fmt.Errorf("-scale must be >= 1")
	}
	n := func(base int) int { return base * *scale }

	runners := map[string]func() *experiments.Table{
		"F1": func() *experiments.Table { return experiments.F1Pipeline(*seed, n(300)) },
		"T1": func() *experiments.Table { return experiments.T1Blocking(*seed, []int{n(200), n(400)}) },
		"T2": func() *experiments.Table { return experiments.T2BlockCleaning(*seed, n(400)) },
		"T3": func() *experiments.Table { return experiments.T3MetaBlocking(*seed, n(300)) },
		"F2": func() *experiments.Table { return experiments.F2Progressive(*seed, n(300)) },
		"F3": func() *experiments.Table { return experiments.F3Benefits(*seed, n(300)) },
		"T4": func() *experiments.Table { return experiments.T4NeighborEvidence(*seed, n(300)) },
		"T5": func() *experiments.Table { return experiments.T5Parallel(*seed, n(400), []int{1, 2, 4, 8}) },
		"T7": func() *experiments.Table {
			return experiments.T7ParallelShared(*seed, n(400), []int{1, 2, 4, 8})
		},
		"F4": func() *experiments.Table {
			return experiments.F4Scalability(*seed, []int{n(100), n(200), n(400), n(800)})
		},
		"T6": func() *experiments.Table { return experiments.T6DirtyER(*seed, n(300)) },
		"A1": func() *experiments.Table { return experiments.A1BlockingMethods(*seed, n(300)) },
		"A2": func() *experiments.Table { return experiments.A2NeighborWeight(*seed, n(300)) },
		"A3": func() *experiments.Table { return experiments.A3SchedulerComponents(*seed, n(300)) },
		"A4": func() *experiments.Table { return experiments.A4SchemeProgressive(*seed, n(300)) },
		"A5": func() *experiments.Table { return experiments.A5PruningReciprocal(*seed, n(300)) },
		"A6": func() *experiments.Table { return experiments.A6Clustering(*seed, n(300)) },
	}
	order := []string{"F1", "T1", "T2", "T3", "F2", "F3", "T4", "T5", "T7", "F4", "T6"}
	if *ablations {
		order = append(order, "A1", "A2", "A3", "A4", "A5", "A6")
	}

	if *id != "" {
		key := strings.ToUpper(*id)
		r, ok := runners[key]
		if !ok {
			return fmt.Errorf("unknown experiment %q (want one of %s)", *id, strings.Join(order, ", "))
		}
		r().Fprint(os.Stdout)
		return nil
	}
	for _, key := range order {
		runners[key]().Fprint(os.Stdout)
	}
	return nil
}
