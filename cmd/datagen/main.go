// Command datagen emits synthetic Web-of-Data workloads as N-Triples
// files plus an owl:sameAs ground-truth file — the laptop-scale stand-in
// for the LOD cloud datasets of the paper's evaluation.
//
// Usage:
//
//	datagen -profile cloud -entities 1000 -seed 7 -out ./data
//
// Profiles:
//
//	two    two fully-overlapping center KBs (clean–clean, easy)
//	hard   one center KB + one periphery KB (somehow similar)
//	cloud  two center + two periphery KBs with partial coverage
//	dirty  a single KB containing duplicates (dirty ER)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/datagen"
	"repro/internal/rdf"
	"repro/internal/tokenize"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	profile := fs.String("profile", "cloud", "workload profile: two | hard | cloud | dirty")
	entities := fs.Int("entities", 500, "number of real-world entities")
	seed := fs.Int64("seed", 1, "random seed (same seed = identical output)")
	out := fs.String("out", ".", "output directory")
	stats := fs.Bool("stats", false, "print a dataset profile to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg datagen.Config
	switch *profile {
	case "two":
		cfg = datagen.TwoKBs(*seed, *entities, datagen.Center(), datagen.Center())
	case "hard":
		cfg = datagen.TwoKBs(*seed, *entities, datagen.Center(), datagen.Periphery())
	case "cloud":
		cfg = datagen.LODCloud(*seed, *entities)
	case "dirty":
		cfg = datagen.DirtyKB(*seed, *entities, 2)
	default:
		return fmt.Errorf("unknown profile %q", *profile)
	}

	w, err := datagen.Generate(cfg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return fmt.Errorf("create %s: %w", *out, err)
	}

	seen := map[string]bool{}
	for _, kcfg := range cfg.KBs {
		if seen[kcfg.Name] {
			continue // dirty profile repeats the KB name
		}
		seen[kcfg.Name] = true
		path := filepath.Join(*out, kcfg.Name+".nt")
		if err := writeTriples(path, w.Triples(kcfg.Name)); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	truthPath := filepath.Join(*out, "truth.nt")
	if err := writeTriples(truthPath, w.SameAsTriples()); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d matching pairs, %d descriptions)\n",
		truthPath, w.Truth.NumMatchingPairs(), w.Collection.Len())
	if *stats {
		w.Collection.BuildProfile(tokenize.Default()).Fprint(os.Stderr)
	}
	return nil
}

func writeTriples(path string, ts []rdf.Triple) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	enc := rdf.NewEncoder(f)
	for _, t := range ts {
		if err := enc.Encode(t); err != nil {
			f.Close()
			return fmt.Errorf("encode %s: %w", path, err)
		}
	}
	if err := enc.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
