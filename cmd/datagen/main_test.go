package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunProfiles(t *testing.T) {
	for _, profile := range []string{"two", "hard", "cloud", "dirty"} {
		dir := t.TempDir()
		err := run([]string{"-profile", profile, "-entities", "40", "-seed", "3", "-out", dir})
		if err != nil {
			t.Fatalf("profile %s: %v", profile, err)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		names := map[string]bool{}
		for _, e := range entries {
			names[e.Name()] = true
		}
		if !names["truth.nt"] {
			t.Errorf("profile %s: no truth.nt in %v", profile, names)
		}
		wantKBs := map[string]int{"two": 2, "hard": 2, "cloud": 4, "dirty": 1}[profile]
		if len(names)-1 != wantKBs {
			t.Errorf("profile %s: %d KB files, want %d (%v)", profile, len(names)-1, wantKBs, names)
		}
		// Every emitted file parses as N-Triples (spot check one).
		for name := range names {
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			if len(data) == 0 {
				t.Errorf("profile %s: %s is empty", profile, name)
			}
			break
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-profile", "bogus"}); err == nil {
		t.Error("unknown profile accepted")
	}
	if err := run([]string{"-entities", "0"}); err == nil {
		t.Error("zero entities accepted")
	}
}
