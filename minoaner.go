// Package minoaner is the public API of the Minoan ER reproduction: a
// progressive entity-resolution pipeline for Web-of-Data knowledge
// bases (EDBT 2016, Efthymiou, Stefanidis, Christophides).
//
// The pipeline mirrors Figure 1 of the paper:
//
//	LoadKB → blocking → meta-blocking → scheduling → matching → update
//
// Load one or more knowledge bases as N-Triples, then call Resolve (or
// ResolveBudget for a pay-as-you-go run under a comparison budget).
// The result holds the confirmed matches in the order they were found,
// the final clusters, and per-stage statistics; SameAs serializes the
// discovered links back to owl:sameAs N-Triples.
//
//	p := minoaner.New(minoaner.Defaults())
//	if err := p.LoadKB("dbp", dbpReader); err != nil { ... }
//	if err := p.LoadKB("geo", geoReader); err != nil { ... }
//	res, err := p.Resolve()
//	for _, m := range res.Matches { fmt.Println(m.A.URI, "==", m.B.URI) }
package minoaner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/mapreduce"
	"repro/internal/match"
	"repro/internal/metablocking"
	"repro/internal/parmeta"
	"repro/internal/pipeline"
	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/tokenize"
	"repro/internal/wal"
)

// ErrUnknownDescription reports an Evict of a reference the session
// does not hold — never loaded, or already evicted. Test with
// errors.Is; the wrapping error names the offending reference.
var ErrUnknownDescription = errors.New("unknown description")

// ErrUnknownKB reports an EvictKB of a name no loaded description ever
// carried. Test with errors.Is.
var ErrUnknownKB = errors.New("unknown knowledge base")

// ErrSessionClosed reports a streaming call — Ingest, Evict, or a
// post-Start load — on a session that is no longer its pipeline's
// current one: a newer Start superseded it. The session still resolves
// its frozen view; only mutation is refused. Test with errors.Is.
var ErrSessionClosed = errors.New("session closed")

// ErrBadBatch reports input that fails validation before anything is
// mutated: a description or reference with an empty KB name or URI, or
// an empty KB name handed to a load. Test with errors.Is; the wrapping
// error describes the offending item.
var ErrBadBatch = errors.New("bad batch")

// ErrDesynced reports a session whose streaming maintenance pass
// failed mid-way: the front-end advanced (or retreated) but the
// matcher and resolver were never rebuilt over the new state, so reads
// would silently disagree with the corpus. The session is poisoned —
// every later mutation and Resume refuses with this error rather than
// serve the desynchronized state. Recovery is a restart: a
// write-ahead-logged session (see Open) replays its log into a fresh,
// consistent session; the already-committed reads of this one remain
// servable via Snapshot. Test with errors.Is; the first failure's
// error joins ErrDesynced with the underlying cause.
var ErrDesynced = errors.New("session desynced")

// Scheme selects the meta-blocking edge-weighting scheme.
type Scheme = metablocking.Scheme

// Weighting schemes (see internal/metablocking for definitions).
const (
	CBS  = metablocking.CBS
	ECBS = metablocking.ECBS
	JS   = metablocking.JS
	EJS  = metablocking.EJS
	ARCS = metablocking.ARCS
)

// Pruning selects the meta-blocking pruning algorithm.
type Pruning = metablocking.Pruning

// Pruning algorithms (see internal/metablocking for definitions).
const (
	WEP = metablocking.WEP
	CEP = metablocking.CEP
	WNP = metablocking.WNP
	CNP = metablocking.CNP
)

// Clustering selects how confirmed matches become final clusters.
type Clustering = cluster.Algorithm

// Clustering algorithms for Config.Clustering.
const (
	// TransitiveClosure unions every confirmed match (the default and
	// the paper's implicit choice).
	TransitiveClosure = cluster.TransitiveClosure
	// CenterClustering builds star clusters, refusing to chain weak
	// matches — much higher precision on dirty data (see ablation A6).
	CenterClustering = cluster.Center
	// UniqueMappingClustering greedily enforces one partner per other
	// KB, by descending score.
	UniqueMappingClustering = cluster.UniqueMapping
)

// BenefitModel selects what the progressive scheduler maximizes.
type BenefitModel = core.BenefitModel

// Benefit models: the paper's three data-quality benefits plus the
// pair-quantity benefit of prior work.
var (
	Quantity                 BenefitModel = core.Quantity{}
	AttributeCompleteness    BenefitModel = core.AttributeCompleteness{}
	EntityCoverage           BenefitModel = core.EntityCoverage{}
	RelationshipCompleteness BenefitModel = core.RelationshipCompleteness{}
)

// Config tunes every pipeline stage. Zero fields take the documented
// defaults; Defaults() returns the paper-faithful configuration.
type Config struct {
	// Tokenize controls schema-agnostic token extraction.
	Tokenize tokenize.Options
	// PurgeMaxBlockSize caps block size before meta-blocking
	// (0 = automatic; negative = skip purging).
	PurgeMaxBlockSize int
	// FilterRatio keeps each description in this fraction of its
	// smallest blocks (0 = default 0.8; negative = skip filtering).
	FilterRatio float64
	// Scheme is the edge-weighting scheme (default ECBS).
	Scheme Scheme
	// Pruning is the pruning algorithm (default WNP).
	Pruning Pruning
	// Reciprocal requires both endpoints to retain an edge in
	// node-centric pruning.
	Reciprocal bool
	// Match configures the similarity matcher.
	Match match.Options
	// Benefit is the targeted benefit model (nil = attribute
	// completeness).
	Benefit BenefitModel
	// DisableDiscovery turns off neighbor-evidence discovery of
	// comparisons blocking missed.
	DisableDiscovery bool
	// Clustering selects how confirmed matches become the final
	// clusters (default TransitiveClosure; CenterClustering or
	// UniqueMappingClustering trade a little recall for precision).
	Clustering Clustering
	// Workers sets the parallelism of the whole pipeline. The
	// front-end stages — token blocking, block cleaning, graph build,
	// weighting, and pruning — dispatch through one engine
	// (internal/pipeline), and the matching stage runs the
	// speculative-score/serial-commit engine (internal/core) with the
	// same worker count: 1 runs the sequential reference everywhere,
	// n > 1 runs the parallel engines with n workers, and 0 — the
	// default — uses one worker per available CPU (GOMAXPROCS), so
	// Resolve is automatically parallel on multicore hosts. Every
	// setting produces identical results, including a bit-identical
	// progressive trace.
	Workers int
	// TTL, when positive, turns every Session into a sliding window
	// over ingest batches: descriptions loaded before Start belong to
	// batch 0, the i-th Ingest/IngestKB call (or post-Start load) is
	// batch i, and after batch i is folded in, every description whose
	// batch index is at most i−TTL is evicted automatically — exactly
	// as if Session.Evict had named it. TTL counts the batch that
	// first brought a description; extending it in a later batch does
	// not refresh its age, and nothing expires while no new batch
	// arrives — an ingest call that brings no data (an empty batch or
	// document) is not a batch and leaves the window untouched.
	// 0 (the default) disables the window.
	TTL int
	// CompactionThreshold triggers an id-space compaction epoch when
	// the fraction of tombstoned ids in the session's collection
	// reaches it. Ids are never reused within a collection, so a
	// long-lived session with eviction — a TTL sliding window above
	// all — otherwise accretes dead ids that every id-indexed
	// structure (token cache, per-node graph arrays, cluster state)
	// keeps paying for. When the threshold trips after an eviction
	// pass, the session re-bases onto a compacted collection holding
	// only the live descriptions under fresh dense ids: the front-end
	// rebuilds over it and the resolution history is replayed with
	// remapped ids, leaving a state equivalent to a session over a
	// corpus that never held the departed descriptions. References
	// (KB + URI) are stable across epochs — only internal ids move.
	//
	// 0 (the default) enables compaction at density ½ when TTL is
	// active and disables it otherwise; negative disables it
	// unconditionally; an explicit value in (0, 1] sets the density.
	CompactionThreshold float64
	// MapReduce routes the front-end stages through the in-process
	// MapReduce engine (internal/parblock) instead of the
	// shared-memory one when Workers resolves to more than 1 — the
	// paper's cluster dataflow, kept for didactic runs and
	// cross-engine differential tests. Results are identical on every
	// engine.
	MapReduce bool
	// MRRunner selects where the MapReduce engine's tasks execute: ""
	// or "local" runs them on in-process goroutines (the single-node
	// fast path); "proc" dispatches them to a pool of `minoaner worker`
	// subprocesses over the framed stdin/stdout protocol — the
	// two-process scale-out proof. Results are bit-identical across
	// runners. Ignored unless the MapReduce engine is selected.
	MRRunner string
	// WALFsync selects the fsync policy of a write-ahead-logged
	// pipeline (one constructed with Open): FsyncWave — the default —
	// defers the disk sync to SyncWAL, which the server calls once per
	// commit wave; FsyncAlways syncs inside every logged mutation;
	// FsyncOff never deliberately syncs. Every policy survives a
	// process crash (appends reach the kernel before a mutation is
	// applied); the policy is the power-loss line. Ignored by New —
	// only Open attaches a log.
	WALFsync FsyncPolicy
	// Store selects where the cold big structures — description bodies,
	// inverted-index postings, blocking-graph arrays — live: "" (the
	// default) keeps everything in RAM exactly as before; "mem" routes
	// them through the in-memory reference store (the differential
	// oracle); "disk" pages them out to append-only segment files under
	// StoreDir; "disk-temp" is "disk" with a private temp directory
	// removed on Close (no StoreDir to manage — for tests and
	// ephemeral runs). Results are bit-identical across the settings —
	// the store moves bytes, never bits. The store holds derived state
	// only: recovery (Open) resets it and rebuilds through WAL replay,
	// so a store that ran ahead of the log's durable prefix can never
	// corrupt a recovered session.
	Store string
	// StoreDir is the segment directory of Store "disk"; required then,
	// ignored otherwise. It may live alongside the WAL directory but
	// must not be the same path.
	StoreDir string
	// DescCache bounds the LRU of decoded description bodies when a
	// store is active (0 = kb.DefaultDescCache).
	DescCache int
	// PostingCache bounds the LRU of decoded posting lists when a store
	// is active (0 = pipeline.DefaultPostingCache).
	PostingCache int
}

// FsyncPolicy selects when the write-ahead log is fsynced; see
// Config.WALFsync.
type FsyncPolicy = wal.Policy

// Fsync policies for Config.WALFsync.
const (
	// FsyncWave (the default) makes one server commit wave one durable
	// unit: the log is fsynced by SyncWAL, not by each mutation.
	FsyncWave = wal.SyncWave
	// FsyncAlways fsyncs the log inside every logged mutation.
	FsyncAlways = wal.SyncAlways
	// FsyncOff never fsyncs; the OS flushes on its own schedule.
	FsyncOff = wal.SyncOff
)

// ParseFsyncPolicy reads a policy name — "always", "wave", or "off" —
// as a flag or config file would spell it.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	p, err := wal.ParsePolicy(s)
	if err != nil {
		return p, fmt.Errorf("minoaner: %w", err)
	}
	return p, nil
}

// Defaults returns the configuration used throughout the paper
// reproduction.
//
// The MINOANER_STORE environment variable, when set, routes the
// returned config through that store mode ("mem", "disk-temp") — how
// CI's disk leg runs the entire differential suite cold-store-backed
// without touching any call site. MINOANER_MR_RUNNER does the same for
// the MapReduce runner ("local", "proc"): CI's proc leg re-proves the
// differential surface with dataflow tasks crossing a process
// boundary. Callers that need a specific mode set Config.Store /
// Config.MRRunner explicitly after Defaults and are unaffected.
func Defaults() Config {
	return Config{
		Tokenize:    tokenize.Default(),
		FilterRatio: 0.8,
		Scheme:      ECBS,
		Pruning:     WNP,
		Match:       match.DefaultOptions(),
		Benefit:     AttributeCompleteness,
		Store:       os.Getenv("MINOANER_STORE"),
		MRRunner:    os.Getenv("MINOANER_MR_RUNNER"),
	}
}

// Ref names one entity description: its source KB and its URI.
//
// The JSON field names of Ref — like those of Match, Cluster, Stats,
// Result, and Description — are part of the wire format served by
// internal/server and are pinned by golden fixtures; changing a tag is
// a breaking protocol change.
type Ref struct {
	KB  string `json:"kb"`
	URI string `json:"uri"`
}

// Match is one confirmed pair, in confirmation order.
type Match struct {
	A Ref `json:"a"`
	B Ref `json:"b"`
	// Score is the combined similarity at confirmation time.
	Score float64 `json:"score"`
	// Discovered is true when blocking never proposed this pair — it
	// was found through neighbor evidence in the update phase.
	Discovered bool `json:"discovered,omitempty"`
	// Rechecked is true when the pair failed an earlier comparison and
	// was re-examined after its neighbors resolved.
	Rechecked bool `json:"rechecked,omitempty"`
}

// Cluster is one resolved real-world entity: all its descriptions.
type Cluster []Ref

// Stats reports per-stage pipeline measurements.
type Stats struct {
	Descriptions    int `json:"descriptions"`
	KBs             int `json:"kbs"`
	BruteForce      int `json:"bruteForce"`      // comparisons without blocking
	Blocks          int `json:"blocks"`          // after cleaning
	BlockCandidates int `json:"blockCandidates"` // distinct pairs after cleaning
	PrunedEdges     int `json:"prunedEdges"`     // comparisons retained by meta-blocking
	Comparisons     int `json:"comparisons"`     // comparisons actually executed
	DiscoveredCmps  int `json:"discoveredCmps"`  // executed comparisons found by the update phase
	Matches         int `json:"matches"`
}

// Result of a pipeline run.
type Result struct {
	Matches  []Match   `json:"matches"`
	Clusters []Cluster `json:"clusters"`
	Stats    Stats     `json:"stats"`
}

// SameAs serializes the confirmed matches as owl:sameAs N-Triples. The
// output round-trips through the internal/rdf parser: internal/server's
// sameAs endpoint serves the same serialization.
func (r *Result) SameAs() string { return sameAsDoc(r.Matches) }

// sameAsDoc is the one owl:sameAs serializer — Result.SameAs and
// Snapshot.SameAs (the server's N-Triples dump) both go through it, so
// the two surfaces can never drift. It renders each match through the
// internal/rdf term serializer (IRI bracketing and escaping rules live
// there, next to the parser they must round-trip with).
func sameAsDoc(matches []Match) string {
	var sb strings.Builder
	for _, m := range matches {
		t := rdf.NewTriple(rdf.NewIRI(m.A.URI), rdf.NewIRI(rdf.OWLSameAs), rdf.NewIRI(m.B.URI))
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Pipeline accumulates knowledge bases and resolves them.
type Pipeline struct {
	cfg Config
	col *kb.Collection
	// current is the most recent session Start created. Sessions share
	// the pipeline's collection, so streaming ingestion — which
	// mutates it — is restricted to the current session; earlier
	// sessions keep operating on their frozen view.
	current *Session
	// wal, when non-nil (a pipeline constructed with Open), receives
	// every mutation — loads, ingests, evictions, Start — as a framed
	// record before the mutation is applied, so replaying the log
	// through the same paths reconstructs the state. Nil on pipelines
	// from New: logging is opt-in.
	wal *wal.Log
	// store, when non-nil (Config.Store "mem", "disk", or
	// "disk-temp"), holds the cold big structures behind the narrow
	// storage boundary. Attached lazily by ensureStore before the
	// first description lands.
	store store.Store
	// storeTemp is the private segment directory a "disk-temp" store
	// minted; Close removes it.
	storeTemp string
	// testPayloadCap overrides the WAL frame budget batch splitting
	// honors; tests use it to exercise the boundary without allocating
	// gigabyte payloads. 0 means the real wal.MaxPayload.
	testPayloadCap int
	// mrProc is the shared worker-subprocess pool of a "proc" MRRunner,
	// created lazily by engine() and reused across sessions and
	// compaction epochs; Close reaps it. Nil for other runners.
	mrProc *mapreduce.ProcRunner
	// mrTotals accumulates the MapReduce engine's job counters across
	// the pipeline's lifetime — the source of the mrRetries and
	// mrShuffleBytes gauges. Created with the first MapReduce engine.
	mrTotals *mapreduce.Counters
}

// New returns an empty pipeline with the given configuration.
func New(cfg Config) *Pipeline {
	var zeroTok tokenize.Options
	if cfg.Tokenize == zeroTok {
		cfg.Tokenize = tokenize.Default()
	}
	if cfg.FilterRatio == 0 {
		cfg.FilterRatio = 0.8
	}
	if cfg.Benefit == nil {
		cfg.Benefit = AttributeCompleteness
	}
	cfg.Match.Tokenize = cfg.Tokenize
	return &Pipeline{cfg: cfg, col: kb.NewCollection()}
}

// Open returns a pipeline whose mutations are write-ahead logged under
// dir — and, when dir already holds a log, the recovered pipeline: the
// valid record prefix (a torn or corrupted tail is dropped at the last
// intact frame) is replayed through the ordinary load, Ingest, and
// Evict paths, so the recovered state is exactly what a from-scratch
// pipeline fed the same surviving mutations would hold. If the log
// contains a Start, the recovered session is current (Current returns
// it) and resolution resumes with a Resume call — resolution state is
// derived, recomputed, never logged. Recovery requires the same Config
// the log was written under; TTL expiry and compaction replay
// deterministically from the recorded batches.
//
// After Open every mutation appends its record before applying it;
// Config.WALFsync decides when records additionally reach the disk.
// Close the pipeline when done to flush and sync the log.
func Open(dir string, cfg Config) (*Pipeline, error) {
	p := New(cfg)
	if err := p.ensureStore(); err != nil {
		return nil, err
	}
	log, recs, err := wal.Open(dir, cfg.WALFsync)
	if err != nil {
		return nil, fmt.Errorf("minoaner: %w", err)
	}
	if err := p.replay(recs); err != nil {
		log.Close()
		return nil, err
	}
	// Attach only after replay: replayed mutations must not re-append.
	p.wal = log
	return p, nil
}

// Current returns the pipeline's current session — the one Start (or a
// recovery replaying a logged Start) most recently created — or nil
// before any Start. Streaming mutation is restricted to it.
func (p *Pipeline) Current() *Session { return p.current }

// Close releases the pipeline's write-ahead log, flushing and syncing
// it first; on a pipeline from New it is a no-op. The pipeline still
// resolves afterwards, but mutations fail on the closed log.
func (p *Pipeline) Close() error {
	var err error
	if p.wal != nil {
		err = p.wal.Close()
	}
	if p.mrProc != nil {
		if merr := p.mrProc.Close(); err == nil {
			err = merr
		}
		p.mrProc = nil
	}
	if p.store != nil {
		if serr := p.store.Close(); err == nil {
			err = serr
		}
	}
	if p.storeTemp != "" {
		if rerr := os.RemoveAll(p.storeTemp); err == nil {
			err = rerr
		}
		p.storeTemp = ""
	}
	return err
}

// ensureStore attaches the configured cold store before the first
// description lands. A "disk" store is always opened with Reset: its
// contents are derived state the WAL (or the caller's corpus) rebuilds,
// and segments written after the log's last durable record must never
// survive into a recovered session. Idempotent; "" is the no-store
// legacy layout.
func (p *Pipeline) ensureStore() error {
	if p.cfg.Store == "" || p.store != nil {
		return nil
	}
	var st store.Store
	switch p.cfg.Store {
	case "mem":
		st = store.NewMem()
	case "disk":
		if p.cfg.StoreDir == "" {
			return fmt.Errorf("minoaner: Config.Store %q requires Config.StoreDir", p.cfg.Store)
		}
		d, err := store.OpenDisk(p.cfg.StoreDir, store.DiskOptions{Reset: true})
		if err != nil {
			return fmt.Errorf("minoaner: open store: %w", err)
		}
		st = d
	case "disk-temp":
		// Like "disk", but the segments live in a fresh private temp
		// directory removed on Close. Sound because the store is derived
		// state — nothing in it outlives the process usefully — and it
		// gives tests and ephemeral runs the paged backend without a
		// directory to manage or collide on.
		dir, err := os.MkdirTemp("", "minoaner-store-")
		if err != nil {
			return fmt.Errorf("minoaner: temp store dir: %w", err)
		}
		d, err := store.OpenDisk(dir, store.DiskOptions{Reset: true})
		if err != nil {
			os.RemoveAll(dir)
			return fmt.Errorf("minoaner: open store: %w", err)
		}
		p.storeTemp = dir
		st = d
	default:
		return fmt.Errorf("minoaner: unknown Config.Store %q (want \"\", \"mem\", \"disk\", or \"disk-temp\")", p.cfg.Store)
	}
	if err := p.col.AttachStore(st, 0, p.cfg.DescCache); err != nil {
		st.Close()
		return fmt.Errorf("minoaner: attach store: %w", err)
	}
	p.store = st
	return nil
}

// walEvict is the wire payload of an eviction record — the same shape
// the server's /evict endpoint accepts: exactly one of Refs or KB.
type walEvict struct {
	Refs []Ref  `json:"refs,omitempty"`
	KB   string `json:"kb,omitempty"`
}

// walCheckpoint is the wire payload of a checkpoint record: the full
// live corpus in id order, plus — for TTL sessions — each
// description's age in ingest batches (how far behind the clock its
// batch sits), so the sliding window keeps ticking correctly across a
// recovery.
type walCheckpoint struct {
	Descs []Description `json:"descs"`
	Ages  []int         `json:"ages,omitempty"`
}

// walAppend frames one record onto the pipeline's log; a pipeline
// without a log accepts everything silently. Called before the
// mutation is applied — the write-ahead discipline: a crash between
// append and apply recovers to a state that includes the mutation,
// which is indistinguishable from crashing just after the apply.
func (p *Pipeline) walAppend(typ byte, payload any) error {
	if p.wal == nil {
		return nil
	}
	var data []byte
	if payload != nil {
		var err error
		if data, err = json.Marshal(payload); err != nil {
			return fmt.Errorf("minoaner: wal: %w", err)
		}
	}
	if err := p.wal.Append(typ, data); err != nil {
		return fmt.Errorf("minoaner: %w", err)
	}
	return nil
}

// replay applies a recovered record sequence through the pipeline's
// ordinary mutation paths. The pipeline's log is still detached, so
// nothing re-appends; TTL expiry and compaction re-fire exactly as
// they did in the original timeline, because both are deterministic in
// the mutation sequence.
func (p *Pipeline) replay(recs []Record) error {
	for i, rec := range recs {
		switch rec.Type {
		case TypeCheckpoint:
			if i != 0 || p.col.Len() != 0 {
				return fmt.Errorf("minoaner: wal: checkpoint record %d is not the head of the log", i)
			}
			var chk walCheckpoint
			if err := json.Unmarshal(rec.Payload, &chk); err != nil {
				return fmt.Errorf("minoaner: wal: decode checkpoint: %w", err)
			}
			p.addRaw(chk.Descs)
			s, err := p.Start()
			if err != nil {
				return fmt.Errorf("minoaner: wal: restore checkpoint: %w", err)
			}
			if len(chk.Ages) > 0 && p.cfg.TTL > 0 {
				// Re-base the TTL clock at zero with the recorded ages:
				// gens[i] = -age keeps the array non-decreasing (the
				// checkpoint wrote descriptions in id order, oldest
				// first), so the prefix-cursor expiry keeps working.
				if len(chk.Ages) != len(s.gens) {
					return fmt.Errorf("minoaner: wal: checkpoint carries %d ages for %d descriptions", len(chk.Ages), len(s.gens))
				}
				for i, age := range chk.Ages {
					s.gens[i] = -age
				}
				s.curGen, s.expired = 0, 0
			}
		case TypeStart:
			if _, err := p.Start(); err != nil {
				return fmt.Errorf("minoaner: wal: replay start: %w", err)
			}
		case TypeIngest:
			var batch []Description
			if err := json.Unmarshal(rec.Payload, &batch); err != nil {
				return fmt.Errorf("minoaner: wal: decode ingest record %d: %w", i, err)
			}
			if s := p.current; s != nil {
				if err := s.ingestWire(batch); err != nil {
					return fmt.Errorf("minoaner: wal: replay ingest record %d: %w", i, err)
				}
			} else {
				p.addRaw(batch)
			}
		case TypeEvict:
			var ev walEvict
			if err := json.Unmarshal(rec.Payload, &ev); err != nil {
				return fmt.Errorf("minoaner: wal: decode evict record %d: %w", i, err)
			}
			s := p.current
			if s == nil {
				return fmt.Errorf("minoaner: wal: evict record %d precedes any start", i)
			}
			var err error
			if ev.KB != "" {
				err = s.EvictKB(ev.KB)
			} else {
				err = s.Evict(ev.Refs)
			}
			if err != nil {
				return fmt.Errorf("minoaner: wal: replay evict record %d: %w", i, err)
			}
		default:
			return fmt.Errorf("minoaner: wal: unknown record type %d at record %d", rec.Type, i)
		}
	}
	return nil
}

// Record re-exports the WAL record so recovery tooling and tests can
// inspect a log without importing the internal package.
type Record = wal.Record

// WAL record types, re-exported with the log format.
const (
	TypeIngest     = wal.TypeIngest
	TypeEvict      = wal.TypeEvict
	TypeStart      = wal.TypeStart
	TypeCheckpoint = wal.TypeCheckpoint
)

// pipelineOptions maps the public configuration onto the front-end
// engine options — one translation, shared by Start and by the
// compaction epoch's rebuild, so the two can never drift.
func (p *Pipeline) pipelineOptions() pipeline.Options {
	return pipeline.Options{
		Tokenize:          p.cfg.Tokenize,
		PurgeMaxBlockSize: p.cfg.PurgeMaxBlockSize,
		FilterRatio:       p.cfg.FilterRatio,
		Scheme:            p.cfg.Scheme,
		Pruning:           p.cfg.Pruning,
		Reciprocal:        p.cfg.Reciprocal,
		Store:             p.store,
		PostingCache:      p.cfg.PostingCache,
	}
}

// compactionThreshold resolves Config.CompactionThreshold to the
// effective tombstone-density trigger: the configured value, defaulting
// to ½ for TTL sessions; 0 means compaction is disabled.
func (p *Pipeline) compactionThreshold() float64 {
	switch {
	case p.cfg.CompactionThreshold < 0:
		return 0
	case p.cfg.CompactionThreshold > 0:
		return p.cfg.CompactionThreshold
	case p.cfg.TTL > 0:
		return 0.5
	}
	return 0
}

// LoadKB reads an N-Triples stream as one knowledge base. Literal
// objects become attributes, resource objects become links, and
// owl:sameAs statements are ignored (they are ground truth, not
// evidence). Loading several streams under one name merges them;
// loading distinct names enables clean–clean resolution across them.
//
// After Start, loading routes through the current session's streaming
// path (the equivalent of Session.IngestKB), so the live session never
// silently desynchronizes from the shared collection; once a newer
// Start supersedes that session, loading refuses instead.
func (p *Pipeline) LoadKB(name string, r io.Reader) error {
	if name == "" {
		return fmt.Errorf("minoaner: KB name must not be empty: %w", ErrBadBatch)
	}
	triples, err := rdf.NewDecoder(r).DecodeAll()
	if err != nil {
		return fmt.Errorf("minoaner: load %s: %w", name, err)
	}
	return p.dispatchIngest(wireDescs(kb.DescriptionsFromTriples(name, triples)))
}

// LoadKBTurtle reads a Turtle stream as one knowledge base. After
// Start it streams into the current session, like LoadKB.
func (p *Pipeline) LoadKBTurtle(name string, r io.Reader) error {
	if name == "" {
		return fmt.Errorf("minoaner: KB name must not be empty: %w", ErrBadBatch)
	}
	triples, err := rdf.NewTurtleDecoder(r).DecodeAll()
	if err != nil {
		return fmt.Errorf("minoaner: load %s: %w", name, err)
	}
	return p.dispatchIngest(wireDescs(kb.DescriptionsFromTriples(name, triples)))
}

// LoadQuads reads an N-Quads stream, mapping each named graph to its
// own knowledge base — the layout of Web-crawl corpora (BTC), where
// the graph label records the publishing dataset. Statements in the
// default graph land in defaultKB. After Start it streams into the
// current session, like LoadKB.
func (p *Pipeline) LoadQuads(defaultKB string, r io.Reader) error {
	if defaultKB == "" {
		return fmt.Errorf("minoaner: default KB name must not be empty: %w", ErrBadBatch)
	}
	quads, err := rdf.NewQuadDecoder(r).DecodeAll()
	if err != nil {
		return fmt.Errorf("minoaner: load quads: %w", err)
	}
	return p.dispatchIngest(wireDescs(kb.DescriptionsFromQuads(defaultKB, quads)))
}

// LoadKBFile reads an RDF file as one knowledge base. Files ending in
// .ttl or .turtle parse as Turtle, everything else as N-Triples.
func (p *Pipeline) LoadKBFile(name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("minoaner: %w", err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".ttl") || strings.HasSuffix(path, ".turtle") {
		return p.LoadKBTurtle(name, f)
	}
	return p.LoadKB(name, f)
}

// AddDescription inserts one description directly (for programmatic
// construction without RDF). Attribute values carry token evidence;
// links name other descriptions' URIs in the same KB. After Start it
// streams into the current session, like Add.
func (p *Pipeline) AddDescription(kbName, uri string, attrs map[string]string, links []string) error {
	if kbName == "" || uri == "" {
		return fmt.Errorf("minoaner: KB name and URI must not be empty: %w", ErrBadBatch)
	}
	d := Description{URI: uri, KB: kbName, Links: links}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		d.Attrs = append(d.Attrs, kb.Attribute{Predicate: k, Value: attrs[k]})
	}
	return p.dispatchIngest([]Description{d})
}

// Add inserts descriptions directly, preserving attribute order — the
// pre-Start counterpart of Session.Ingest. Adding a KB+URI that
// already exists extends the existing description. After Start the
// batch streams into the current session exactly as Session.Ingest
// would take it, so the live session stays in sync; once a newer Start
// supersedes that session, Add refuses instead.
func (p *Pipeline) Add(batch []Description) error {
	if err := validateBatch(batch); err != nil {
		return err
	}
	return p.dispatchIngest(batch)
}

// dispatchIngest routes a validated wire batch to wherever mutations
// currently go — the live session's streaming path after Start, the
// shared collection before it — appending the batch to the write-ahead
// log first in either case. Every load and add funnels through here
// (parse first, then log, then apply), so the log's ingest records are
// exactly the batches the collection absorbed, replayable without
// re-parsing any RDF.
func (p *Pipeline) dispatchIngest(batch []Description) error {
	if err := p.ensureStore(); err != nil {
		return err
	}
	if s := p.current; s != nil {
		return s.ingestWire(batch)
	}
	if len(batch) == 0 {
		return nil
	}
	// One WAL frame caps at wal.MaxPayload bytes; a larger batch splits
	// into halves recursively, each logged and applied separately —
	// replay then re-applies the same sub-batches in the same order.
	chunks, err := splitBatch(batch, p.payloadCap())
	if err != nil {
		return err
	}
	for _, chunk := range chunks {
		if err := p.walAppend(TypeIngest, chunk); err != nil {
			return err
		}
		p.addRaw(chunk)
	}
	if err := p.col.ColdErr(); err != nil {
		return fmt.Errorf("minoaner: cold store: %w", err)
	}
	return nil
}

// payloadCap is the WAL frame budget a single ingest record must fit;
// overridden by tests to exercise the splitting without gigabyte
// batches.
func (p *Pipeline) payloadCap() int {
	if p.testPayloadCap > 0 {
		return p.testPayloadCap
	}
	return wal.MaxPayload()
}

// splitBatch cuts a wire batch into chunks whose JSON encoding fits the
// frame cap, halving recursively; order is preserved. A single
// description too large for any frame is refused with the typed
// wal.ErrFrameTooLarge before anything is logged or applied — the log
// layer holds the same guard as defense in depth, where an unchecked
// length would otherwise be narrowed to the frame's 32-bit field and
// corrupt the log.
func splitBatch(batch []Description, cap int) ([][]Description, error) {
	if len(batch) == 1 {
		if data, err := json.Marshal(batch); err == nil && len(data) > cap {
			return nil, fmt.Errorf("minoaner: description %s %s encodes to %d bytes over the %d-byte frame cap: %w",
				batch[0].KB, batch[0].URI, len(data), cap, wal.ErrFrameTooLarge)
		}
		return [][]Description{batch}, nil
	}
	if data, err := json.Marshal(batch); err == nil && len(data) <= cap {
		return [][]Description{batch}, nil
	}
	mid := len(batch) / 2
	head, err := splitBatch(batch[:mid], cap)
	if err != nil {
		return nil, err
	}
	tail, err := splitBatch(batch[mid:], cap)
	if err != nil {
		return nil, err
	}
	return append(head, tail...), nil
}

// wireDescs converts parsed descriptions to their wire form — the
// JSON-stable shape the server streams and the write-ahead log frames.
func wireDescs(descs []*kb.Description) []Description {
	out := make([]Description, len(descs))
	for i, d := range descs {
		out[i] = Description{KB: d.KB, URI: d.URI, Types: d.Types, Attrs: d.Attrs, Links: d.Links}
	}
	return out
}

func validateBatch(batch []Description) error {
	for _, d := range batch {
		if d.KB == "" || d.URI == "" {
			return fmt.Errorf("minoaner: KB name and URI must not be empty: %w", ErrBadBatch)
		}
	}
	return nil
}

// addRaw inserts a validated batch into the shared collection without
// touching any session — callers route session synchronization.
func (p *Pipeline) addRaw(batch []Description) {
	for _, d := range batch {
		p.col.Add(&kb.Description{
			URI: d.URI, KB: d.KB, Types: d.Types, Attrs: d.Attrs, Links: d.Links,
		})
	}
}

// NumDescriptions returns how many live descriptions are loaded.
func (p *Pipeline) NumDescriptions() int { return p.col.NumAlive() }

// Resolve runs the full pipeline with an unlimited comparison budget.
func (p *Pipeline) Resolve() (*Result, error) { return p.ResolveBudget(0) }

// ResolveBudget runs the pipeline, executing at most budget
// comparisons (0 = unlimited) — the paper's pay-as-you-go mode: the
// scheduler spends the budget on the most beneficial comparisons
// first.
func (p *Pipeline) ResolveBudget(budget int) (*Result, error) {
	return p.ResolveContext(context.Background(), budget)
}

// ResolveContext is ResolveBudget with cancellation: on the MapReduce
// engine the front end itself honors ctx (an in-flight dataflow pass
// stops and Start returns the cancellation without creating a
// session); on the other engines Start runs to completion. The
// matching loop then honors ctx between comparisons via
// Session.ResumeContext. On cancellation mid-matching it returns the
// partial cumulative result together with ctx.Err(); the session it
// started remains the pipeline's current one, so a later Start or
// streaming call continues normally.
func (p *Pipeline) ResolveContext(ctx context.Context, budget int) (*Result, error) {
	s, err := p.StartContext(ctx)
	if err != nil {
		return nil, err
	}
	return s.ResumeContext(ctx, budget)
}

// Session is a resumable pay-as-you-go resolution: blocking and
// meta-blocking run once at Start, then each Resume spends a further
// comparison budget and returns the cumulative result so far. Matches
// found in earlier legs stay resolved; the update phase keeps feeding
// evidence across legs.
//
// A Session is also the unit of streaming resolution: Ingest and
// IngestKB fold new descriptions into the live session incrementally —
// the blocking graph is updated in its affected neighborhood instead
// of rebuilt — with the guarantee that ingesting a corpus in any
// number of batches and then resolving produces exactly the state a
// from-scratch session over the whole corpus would. Evict and EvictKB
// are the deletion mirror: descriptions leave the live session with
// the guarantee that the surviving state is exactly that of a
// from-scratch session over a corpus that never held them. Config.TTL
// drives Evict automatically as a sliding window over ingest batches.
type Session struct {
	p        *Pipeline
	eng      pipeline.Engine
	fstate   *pipeline.State
	resolver *core.Resolver
	matcher  *match.Matcher
	base     Stats
	trace    []core.Step
	// gens records, per description id, the index of the ingest batch
	// that first brought it (Start's corpus is batch 0) — the age TTL
	// expires on. Ids are stamped in batch order, so the array is
	// non-decreasing and the expired set is always a prefix; expired is
	// the cursor behind which everything has been evicted. Only
	// maintained when Config.TTL > 0.
	gens    []int
	expired int
	// curGen counts ingest batches, TTL or not.
	curGen int
	// compactions counts the id-space compaction epochs this session
	// has been through (see Config.CompactionThreshold).
	compactions int
	// tim accumulates the session-level wall-clock counters (front end,
	// streaming maintenance, resolve legs); the matching-stage split
	// lives in the resolver and is merged in by Timings().
	tim Timings
	// desynced, once set, is the sticky poison of a failed mid-pass
	// synchronization (see syncFront): every later mutation and Resume
	// returns it. It wraps ErrDesynced and the first cause.
	desynced error
	// opCtx is the context of the in-flight mutation (set by the
	// *Context entry points for the duration of the call): on the
	// MapReduce engine, syncFront's dataflow passes run under it, so
	// cancelling stops the pass. Like every Session field it is
	// single-writer — mutations must not race.
	opCtx context.Context
}

// opContext returns the in-flight mutation's context.
func (s *Session) opContext() context.Context {
	if s.opCtx != nil {
		return s.opCtx
	}
	return context.Background()
}

// withOpCtx runs fn with ctx attached as the session's mutation
// context, so the dataflow passes inside fn honor its cancellation.
func (s *Session) withOpCtx(ctx context.Context, fn func() error) error {
	s.opCtx = ctx
	defer func() { s.opCtx = nil }()
	return fn()
}

// IngestContext is Ingest with cancellation: on the MapReduce engine a
// cancelled ctx stops the in-flight dataflow pass. Cancellation
// mid-pass leaves state the pass cannot reconcile, so it poisons the
// session exactly like any other mid-pass failure (the returned error
// wraps both ErrDesynced and ctx.Err()); cancellation before the pass
// commits anything returns cleanly.
func (s *Session) IngestContext(ctx context.Context, batch []Description) error {
	return s.withOpCtx(ctx, func() error { return s.Ingest(batch) })
}

// EvictContext is Evict with cancellation, with IngestContext's
// semantics.
func (s *Session) EvictContext(ctx context.Context, refs []Ref) error {
	return s.withOpCtx(ctx, func() error { return s.Evict(refs) })
}

// EvictKBContext is EvictKB with cancellation, with IngestContext's
// semantics.
func (s *Session) EvictKBContext(ctx context.Context, name string) error {
	return s.withOpCtx(ctx, func() error { return s.EvictKB(name) })
}

// IngestKBContext is IngestKB with cancellation, with IngestContext's
// semantics.
func (s *Session) IngestKBContext(ctx context.Context, name string, r io.Reader) error {
	return s.withOpCtx(ctx, func() error { return s.IngestKB(name, r) })
}

// Timings reports cumulative wall-clock time per pipeline stage of one
// session, in nanoseconds on the wire (the JSON field names end in Ns).
// FrontEnd is Start's preparation pass (blocking→pruning plus matcher
// and queue construction); Ingest and Evict cover
// streaming maintenance (index splice, graph update, re-prune, matcher
// rebuild, reseed/retract); Resolve is the matching loop end to end,
// and Schedule/Match/Update split its commit path (see
// internal/core.Timings — on the parallel engine, Match includes time
// the committer waits for speculative scores).
type Timings struct {
	FrontEnd time.Duration `json:"frontendNs"`
	Ingest   time.Duration `json:"ingestNs"`
	Evict    time.Duration `json:"evictNs"`
	Resolve  time.Duration `json:"resolveNs"`
	Schedule time.Duration `json:"scheduleNs"`
	Match    time.Duration `json:"matchNs"`
	Update   time.Duration `json:"updateNs"`
}

// Timings returns the session's cumulative per-stage timing counters.
// Like every Session method, it must not race with a concurrent
// mutation — the server reads it from its single writer goroutine and
// snapshots the value.
func (s *Session) Timings() Timings {
	t := s.tim
	ct := s.resolver.Timings()
	t.Schedule, t.Match, t.Update = ct.Schedule, ct.Match, ct.Update
	return t
}

// Start freezes the loaded KBs and prepares the comparison queue.
//
// Stages 1–2 (blocking, cleaning, meta-blocking) run through the
// engine layer: pipeline.Select maps Config.Workers/Config.MapReduce
// onto the sequential reference, the shared-memory parallel engine, or
// the in-process MapReduce dataflow, and every stage is dispatched
// uniformly through it. The matching stage (run by Resume) gets the
// same resolved worker count: with more than one worker the resolver
// precomputes value similarities on a worker pool while a single
// committer replays the exact sequential schedule. The results are
// bit-identical whichever engine runs and whatever the worker count.
func (p *Pipeline) Start() (*Session, error) {
	return p.StartContext(context.Background())
}

// engine resolves the pipeline's engine: pipeline.Select picks the
// dispatch layer from Workers/MapReduce, then — when the MapReduce
// engine is selected — Config.MRRunner picks where its tasks execute
// and the pipeline's lifetime counters are attached. The "proc" worker
// pool is created once and shared by every session and compaction
// epoch; Close reaps it.
func (p *Pipeline) engine() (pipeline.Engine, error) {
	switch p.cfg.MRRunner {
	case "", "local", "proc":
	default:
		return nil, fmt.Errorf("minoaner: unknown MapReduce runner %q (want \"\", \"local\", or \"proc\")", p.cfg.MRRunner)
	}
	eng := pipeline.Select(p.cfg.Workers, p.cfg.MapReduce)
	mr, ok := eng.(pipeline.MapReduce)
	if !ok {
		return eng, nil
	}
	if p.mrTotals == nil {
		p.mrTotals = &mapreduce.Counters{}
	}
	mr.Totals = p.mrTotals
	if p.cfg.MRRunner == "proc" {
		if p.mrProc == nil {
			p.mrProc = mapreduce.NewProcRunner()
		}
		mr.Runner = p.mrProc
	}
	return mr, nil
}

// StartContext is Start with cancellation: on the MapReduce engine the
// front-end dataflow honors ctx — a cancelled pass stops at the next
// task-record boundary and StartContext returns the cancellation with
// no session created and the pipeline unchanged. The session itself
// keeps the engine without the context; later mutations attach their
// own.
func (p *Pipeline) StartContext(ctx context.Context) (*Session, error) {
	if p.col.NumAlive() == 0 {
		return nil, fmt.Errorf("minoaner: no descriptions loaded")
	}
	eng, err := p.engine()
	if err != nil {
		return nil, err
	}
	tStart := time.Now()
	fstate, err := pipeline.Start(pipeline.WithContext(eng, ctx), p.col, p.pipelineOptions())
	if err != nil {
		return nil, fmt.Errorf("minoaner: %w", err)
	}

	// Stages 3–5 are deferred to Resume.
	matcher := match.NewMatcher(p.col, p.cfg.Match)
	resolver := core.NewResolver(matcher, fstate.Front.Edges, core.Config{
		Benefit:          p.cfg.Benefit,
		DisableDiscovery: p.cfg.DisableDiscovery,
		Workers:          parmeta.Workers(p.cfg.Workers),
	})
	s := &Session{
		p:        p,
		eng:      eng,
		fstate:   fstate,
		resolver: resolver,
		matcher:  matcher,
	}
	s.tim.FrontEnd = time.Since(tStart)
	if p.cfg.TTL > 0 {
		s.gens = make([]int, p.col.Len()) // everything loaded so far is batch 0
	}
	p.current = s
	s.refreshStats()
	// With a store attached, the blocking graph's arrays page out until
	// the next streaming pass needs them — refreshStats above already
	// read the scalar gauges that stay hot.
	if err := fstate.SpillGraph(); err != nil {
		return nil, fmt.Errorf("minoaner: %w", err)
	}
	// The log's Start marker: records before it replay as pre-Start
	// loads, records after it as streaming mutations of the session it
	// (re)creates. Appended only once Start has fully succeeded, so a
	// replayed Start succeeds too.
	if err := p.walAppend(TypeStart, nil); err != nil {
		return nil, err
	}
	return s, nil
}

// refreshStats recomputes the front-end statistics from the current
// state — called at Start and after every ingest. BlockCandidates is
// read off the blocking graph (its edges are exactly the distinct
// comparable pairs of the cleaned blocks), not re-enumerated — an
// O(blocks²)-pair walk would hand the delta-proportional ingest path a
// hidden superlinear cost.
func (s *Session) refreshStats() {
	fe := s.fstate.Front
	s.base = Stats{
		Descriptions:    s.p.col.NumAlive(),
		KBs:             s.p.col.NumLiveKBs(),
		BruteForce:      bruteForce(s.p.col),
		Blocks:          fe.Blocks.NumBlocks(),
		BlockCandidates: fe.Graph.NumEdges(),
		PrunedEdges:     len(fe.Edges),
	}
}

// Resume executes up to budget further comparisons (0 = run to
// completion) and returns the cumulative result of the session.
func (s *Session) Resume(budget int) (*Result, error) {
	return s.ResumeContext(context.Background(), budget)
}

// ResumeContext is Resume with cancellation: the matching loop checks
// ctx between comparisons and stops early when it is done. Every
// comparison executed before the cancellation is fully committed and
// stays folded into the session — a later Resume continues exactly
// where the cancelled one stopped, with the usual leg-concatenation
// guarantee. On cancellation the cumulative result so far is returned
// together with ctx.Err(), so a caller (the server's writer goroutine)
// can give up on a wedged request without losing or corrupting work.
func (s *Session) ResumeContext(ctx context.Context, budget int) (*Result, error) {
	if s.desynced != nil {
		return nil, s.desynced // a poisoned session serves no reads
	}
	// Matching never reads the blocking graph, so this stage boundary
	// is where its arrays page out until the next streaming pass. A
	// failed spill leaves the resident graph authoritative — the
	// session stays consistent, the caller just learns the store is
	// refusing writes.
	if err := s.fstate.SpillGraph(); err != nil {
		return nil, fmt.Errorf("minoaner: graph spill: %w", err)
	}
	t0 := time.Now()
	res := s.resolver.RunBudgetContext(ctx, budget)
	s.tim.Resolve += time.Since(t0)
	s.trace = append(s.trace, res.Trace...)
	out, _ := s.buildResult()
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// buildResult assembles the cumulative Result from the session's trace
// without spending any budget. It also returns the member ids of each
// cluster, aligned with Result.Clusters — Snapshot builds its lookup
// index from them.
func (s *Session) buildResult() (*Result, [][]int) {
	p := s.p
	out := &Result{Stats: s.base}
	for _, step := range s.trace {
		out.Stats.Comparisons++
		if step.Discovered {
			out.Stats.DiscoveredCmps++
		}
		if !step.Matched {
			continue
		}
		out.Stats.Matches++
		out.Matches = append(out.Matches, Match{
			A:          p.ref(step.A),
			B:          p.ref(step.B),
			Score:      step.Score,
			Discovered: step.Discovered,
			Rechecked:  step.Recheck,
		})
	}
	final := cluster.Cluster(p.cfg.Clustering, cluster.FromSteps(s.trace), p.col, p.col.Len())
	members := final.Resolved()
	for _, ids := range members {
		cl := make(Cluster, len(ids))
		for i, id := range ids {
			cl[i] = p.ref(id)
		}
		out.Clusters = append(out.Clusters, cl)
	}
	return out, members
}

// Pending returns an upper bound on the comparisons still queued.
func (s *Session) Pending() int { return s.resolver.Pending() }

// Snapshot is an immutable point-in-time view of a Session's
// resolution state: the cumulative Result, a cluster index for URI
// lookups, the pending count, and the timing counters — everything a
// read path needs, detached from the live session. Building one costs
// a pass over the trace and the live descriptions; reading one costs
// no locks, no session access, and never observes a later mutation.
// internal/server swaps a Snapshot behind an atomic pointer after each
// commit wave, so any number of concurrent readers share it safely.
type Snapshot struct {
	res     *Result
	pending int
	tim     Timings
	gauges  Gauges
	// index maps every live description to the index of its cluster in
	// res.Clusters, or -1 when it resolved alone (singleton clusters are
	// not enumerated in Result.Clusters).
	index map[Ref]int
	// byURI lists the live refs carrying each URI, KB-sorted — the
	// kb-less form of the resolve lookup. A URI can appear in several
	// KBs (clean–clean corpora disagree exactly there).
	byURI map[string][]Ref
}

// Snapshot captures the session's current state. Like every Session
// method it must not race with a concurrent mutation; the returned
// value, once built, is safe to share among any number of goroutines.
func (s *Session) Snapshot() *Snapshot {
	res, members := s.buildResult()
	sn := &Snapshot{
		res:     res,
		pending: s.resolver.Pending(),
		tim:     s.Timings(),
		gauges:  s.Gauges(),
		index:   make(map[Ref]int, s.p.col.NumAlive()),
		byURI:   make(map[string][]Ref),
	}
	for ci, ids := range members {
		for _, id := range ids {
			sn.index[s.p.ref(id)] = ci
		}
	}
	for id := 0; id < s.p.col.Len(); id++ {
		if !s.p.col.Alive(id) {
			continue
		}
		r := s.p.ref(id)
		if _, ok := sn.index[r]; !ok {
			sn.index[r] = -1
		}
		sn.byURI[r.URI] = append(sn.byURI[r.URI], r)
	}
	for _, refs := range sn.byURI {
		sort.Slice(refs, func(i, j int) bool { return refs[i].KB < refs[j].KB })
	}
	return sn
}

// Result returns the snapshot's cumulative result. Callers must treat
// it — matches, clusters, stats — as read-only: the value is shared by
// every reader of the snapshot.
func (sn *Snapshot) Result() *Result { return sn.res }

// Stats returns the snapshot's pipeline statistics.
func (sn *Snapshot) Stats() Stats { return sn.res.Stats }

// Pending returns the upper bound on queued comparisons at capture
// time.
func (sn *Snapshot) Pending() int { return sn.pending }

// Timings returns the per-stage timing counters at capture time.
func (sn *Snapshot) Timings() Timings { return sn.tim }

// Gauges returns the session's memory gauges at capture time.
func (sn *Snapshot) Gauges() Gauges { return sn.gauges }

// SameAs serializes the snapshot's confirmed matches as owl:sameAs
// N-Triples — the same serializer Result.SameAs uses.
func (sn *Snapshot) SameAs() string { return sameAsDoc(sn.res.Matches) }

// Cluster returns the cluster holding the (kb, uri) description. A
// live description that matched nothing resolves to a singleton
// cluster of itself; an unknown or evicted reference reports false.
func (sn *Snapshot) Cluster(kbName, uri string) (Cluster, bool) {
	ci, ok := sn.index[Ref{KB: kbName, URI: uri}]
	if !ok {
		return nil, false
	}
	if ci < 0 {
		return Cluster{{KB: kbName, URI: uri}}, true
	}
	return sn.res.Clusters[ci], true
}

// Refs returns every live description carrying the URI, sorted by KB
// name — the lookup behind a kb-less resolve query. The returned slice
// is shared; callers must not mutate it.
func (sn *Snapshot) Refs(uri string) []Ref { return sn.byURI[uri] }

// Attribute is one predicate–value pair of a streamed Description.
type Attribute = kb.Attribute

// Description is one entity description to stream into a live Session
// with Ingest. Attrs carry token evidence; Links name other
// descriptions' URIs in the same KB. Ingesting a KB+URI that already
// exists extends the existing description.
type Description struct {
	// KB names the source knowledge base (new names open new KBs).
	KB string `json:"kb"`
	// URI identifies the description within its KB.
	URI string `json:"uri"`
	// Types lists rdf:type objects.
	Types []string `json:"types,omitempty"`
	// Attrs lists the literal-valued predicates.
	Attrs []Attribute `json:"attrs,omitempty"`
	// Links lists URIs of linked descriptions.
	Links []string `json:"links,omitempty"`
}

// Ingest streams a batch of new descriptions into the live session.
//
// The front-end state advances incrementally: the batch is tokenized
// and appended to the inverted token index, block cleaning is
// recomputed (linear), the blocking graph is updated only in the
// neighborhood the batch touched — never rebuilt from its pairs — and
// the progressive queue is re-seeded so new comparisons interleave
// with old ones in the same benefit order a from-scratch session would
// schedule.
//
// Equivalence guarantee: splitting a corpus into any number of Ingest
// batches and then resolving yields exactly the from-scratch result —
// the same Result.Trace bit for bit, for any worker count and any
// budget (on the MapReduce engine, up to its documented float
// round-off). Ingesting after comparisons have already been spent is
// also supported, with monotonic semantics: confirmed matches stay
// resolved, executed pairs are not re-executed, and new evidence
// interleaves by benefit from then on.
//
// Ingestion requires the Session to be its Pipeline's current (most
// recent) one: sessions share the pipeline's collection, so mutating
// it under a newer session would silently desynchronize that
// session's state. A superseded session keeps resolving its frozen
// view; only Ingest/IngestKB refuse.
func (s *Session) Ingest(batch []Description) error {
	if err := validateBatch(batch); err != nil {
		return err
	}
	return s.ingestWire(batch)
}

// ingestable refuses streaming — ingestion and eviction alike — for
// any session but the pipeline's current (most recent) one, before
// anything mutates the shared collection. Sessions share that
// collection, and the incremental index's merge and tombstone tracking
// is single-consumer: an older session mutating would silently
// desynchronize the newer ones. The current session always may;
// superseded sessions keep resolving their frozen view.
func (s *Session) ingestable() error {
	if s.p.current != s {
		return fmt.Errorf("minoaner: streaming requires the pipeline's current session (a newer Start superseded this one): %w", ErrSessionClosed)
	}
	return nil
}

// IngestKB streams an N-Triples document into the live session as
// knowledge base name — LoadKB's streaming counterpart. Statements
// about subjects the session already knows extend their descriptions.
func (s *Session) IngestKB(name string, r io.Reader) error {
	if name == "" {
		return fmt.Errorf("minoaner: KB name must not be empty: %w", ErrBadBatch)
	}
	triples, err := rdf.NewDecoder(r).DecodeAll()
	if err != nil {
		return fmt.Errorf("minoaner: load %s: %w", name, err)
	}
	return s.ingestWire(wireDescs(kb.DescriptionsFromTriples(name, triples)))
}

// Evict removes descriptions from the live session. Every reference
// must name a description the session currently holds; otherwise —
// never loaded, already evicted, a typo — nothing is evicted and the
// error wraps ErrUnknownDescription. Duplicate references within one
// call collapse to one eviction.
//
// The front-end state retreats incrementally: the departed ids are
// spliced out of the inverted token index, the blocking graph is
// driven down its block-shrinkage path — only edges whose blocks lost
// members are touched; orphaned edges drop — the matcher re-learns its
// global IDF weights over the survivors (linear work), and the
// resolution state is retracted: pairs touching evicted descriptions
// leave the queue and the trace, clusters containing them split with
// the surviving match history replayed minus the evicted members, and
// confirmed matches among survivors stay resolved.
//
// Equivalence guarantee, mirroring Ingest's: for any interleaving of
// Ingest and Evict calls before comparisons are spent, a subsequent
// Resume produces exactly what a from-scratch session over the
// surviving corpus would — the same trace bit for bit (modulo the
// densely re-assigned ids a fresh load implies), for any worker count
// and any budget, on the sequential and shared engines (MapReduce
// within its documented round-off). Evicting after comparisons have
// been spent keeps monotone semantics: surviving matches stay
// resolved, executed surviving pairs are not re-spent, and pairs whose
// failed comparison was decided under the departed corpus's IDF
// weights re-open as rechecks.
//
// Like Ingest, Evict requires the Session to be its Pipeline's current
// one.
func (s *Session) Evict(refs []Ref) error {
	if err := s.ingestable(); err != nil {
		return err
	}
	if err := s.syncFront(); err != nil {
		return err // fold any stranded additions before resolving refs
	}
	if len(refs) == 0 {
		return nil
	}
	ids := make([]int, 0, len(refs))
	for _, r := range refs {
		id, ok := s.p.col.IDOf(r.KB, r.URI)
		if !ok {
			return fmt.Errorf("minoaner: evict %s/%s: %w", r.KB, r.URI, ErrUnknownDescription)
		}
		ids = append(ids, id)
	}
	// Every ref resolved against the live corpus, so the record will
	// replay cleanly; append it before the first tombstone lands.
	if err := s.p.walAppend(TypeEvict, walEvict{Refs: refs}); err != nil {
		return err
	}
	changed := false
	for _, id := range ids {
		if s.p.col.Evict(id) {
			changed = true
		}
	}
	if !changed {
		return nil
	}
	return s.syncFront()
}

// EvictKB removes every description of the named knowledge base from
// the live session — the wholesale form of Evict for a stale dump or a
// retracted source. A name no description ever carried is an error
// wrapping ErrUnknownKB; a KB already evicted down to empty is a clean
// no-op.
func (s *Session) EvictKB(name string) error {
	if err := s.ingestable(); err != nil {
		return err
	}
	if name == "" {
		return fmt.Errorf("minoaner: KB name must not be empty: %w", ErrBadBatch)
	}
	if err := s.syncFront(); err != nil {
		return err
	}
	if !s.p.col.HasKB(name) {
		return fmt.Errorf("minoaner: evict KB %q: %w", name, ErrUnknownKB)
	}
	ids := s.p.col.LiveIDsOfKB(name)
	if len(ids) == 0 {
		return nil
	}
	if err := s.p.walAppend(TypeEvict, walEvict{KB: name}); err != nil {
		return err
	}
	for _, id := range ids {
		s.p.col.Evict(id)
	}
	return s.syncFront()
}

// ingestWire runs one streaming ingest of a parsed wire batch: the
// batch is appended to the write-ahead log, folded into the shared
// collection, the batch counter advances (the TTL clock), and the
// session synchronizes — expiring anything that slid out of the TTL
// window. An empty batch — an empty document — is not logged and does
// not advance the clock: only arriving data slides the TTL window.
// During recovery the same path replays each logged batch with the log
// detached, so replay reconstructs the batch sequence — and with it
// every TTL expiry and compaction epoch — exactly.
func (s *Session) ingestWire(batch []Description) error {
	if err := s.ingestable(); err != nil {
		return err
	}
	if s.desynced != nil {
		return s.desynced
	}
	if len(batch) == 0 {
		return s.syncFront()
	}
	chunks, err := splitBatch(batch, s.p.payloadCap())
	if err != nil {
		return err // refused whole before anything was logged or applied
	}
	if len(chunks) > 1 {
		// The batch cannot be logged as one frame: split it and run each
		// chunk as its own logged ingest — append, apply, sync — so the
		// log records exactly what happened and its replay (which sees
		// one record per chunk) takes the identical path, TTL generation
		// stamping included. An oversized batch therefore counts as
		// several batches against a TTL window; the alternative — one
		// wider-than-the-log batch — could never be recovered faithfully.
		for _, chunk := range chunks {
			if err := s.ingestWire(chunk); err != nil {
				return err
			}
		}
		return nil
	}
	if err := s.p.walAppend(TypeIngest, batch); err != nil {
		return err
	}
	beforeLen, beforeMerges := s.p.col.Len(), s.p.col.PendingMerges()
	s.p.addRaw(batch)
	// Deltas, not absolutes: merges stranded by an earlier failed pass
	// must not make a later no-op batch count against the TTL window.
	if s.p.col.Len() > beforeLen || s.p.col.PendingMerges() > beforeMerges {
		s.curGen++
	}
	return s.syncFront()
}

// syncFront folds every pending mutation of the shared collection into
// the session. Additions advance the front-end through the engine's
// Ingest; then, with TTL active, descriptions that slid out of the
// window are tombstoned; evictions retreat the front-end through the
// engine's Evict. The matcher is rebuilt whenever anything changed
// (IDF weights are global — linear work). After a pure ingest the
// resolver is reseeded (resolution is monotonic); after any eviction
// it is retracted — the trace drops the steps touching departed
// descriptions and the surviving history is replayed.
//
// A failure mid-pass — the engine advanced the front but the matcher
// and resolver never caught up, or a compaction died between consuming
// the eviction set and rebuilding — leaves state the pass cannot
// reconcile: the pending sets are already drained, so a retry would
// see nothing to do and silently serve the desynchronized state.
// Instead the session poisons itself (see ErrDesynced): the first such
// error is returned, remembered, and every later mutation or Resume
// returns it again. Recovery is a restart — with a write-ahead log,
// Open replays every acknowledged mutation into a fresh session.
func (s *Session) syncFront() error {
	if err := s.ingestable(); err != nil {
		return err // defense in depth; the public entry points check first
	}
	if s.desynced != nil {
		return s.desynced
	}
	t0 := time.Now()
	// The mutation's context rides the engine into the dataflow passes;
	// on non-MapReduce engines WithContext is the identity.
	eng := pipeline.WithContext(s.eng, s.opContext())
	ingested := false
	if s.fstate.PendingIngest() {
		if err := eng.Ingest(s.fstate); err != nil {
			return s.poison(fmt.Errorf("minoaner: %w", err))
		}
		if err := s.p.col.ColdErr(); err != nil {
			// A description failed to page in mid-pass; the tokenizer saw
			// a stub, so the committed front may be wrong. Poison rather
			// than serve it.
			return s.poison(fmt.Errorf("minoaner: ingest: description store: %w", err))
		}
		ingested = true
	}
	s.expireTTL()
	evicted := false
	if s.fstate.PendingEvictions() {
		if err := eng.Evict(s.fstate); err != nil {
			return s.poison(fmt.Errorf("minoaner: %w", err))
		}
		if err := s.p.col.ColdErr(); err != nil {
			return s.poison(fmt.Errorf("minoaner: evict: description store: %w", err))
		}
		evicted = true
	}
	if !ingested && !evicted {
		return nil // nothing new arrived or departed since the last pass
	}
	compacted := false
	if evicted {
		s.trace = filterAliveSteps(s.trace, s.p.col)
		var err error
		if compacted, err = s.maybeCompact(); err != nil {
			return s.poison(err)
		}
	}
	s.matcher = match.NewMatcher(s.p.col, s.p.cfg.Match)
	if evicted {
		s.resolver.Retract(s.matcher, s.fstate.Front.Edges, s.trace)
		s.tim.Evict += time.Since(t0)
	} else {
		s.resolver.Reseed(s.matcher, s.fstate.Front.Edges)
		s.tim.Ingest += time.Since(t0)
	}
	if err := s.p.col.ColdErr(); err != nil {
		// The matcher rebuild and the resolver replay page descriptions
		// too; a failure there desyncs scores the same way.
		return s.poison(fmt.Errorf("minoaner: description store: %w", err))
	}
	s.refreshStats()
	if compacted {
		// A compaction epoch bounds the log: rotate it down to one
		// checkpoint of the live corpus. Failure here does NOT poison —
		// the in-memory state is fully consistent and the pre-rotation
		// log still replays to it; the caller just learns the log kept
		// its old length.
		return s.walCheckpoint()
	}
	return nil
}

// poison marks the session desynchronized, remembering the first cause;
// see syncFront. The sticky error wraps ErrDesynced (test with
// errors.Is) and the original failure.
func (s *Session) poison(cause error) error {
	if s.desynced == nil {
		s.desynced = errors.Join(ErrDesynced, cause)
	}
	return s.desynced
}

// Compactions reports how many id-space compaction epochs the session
// has been through. Like every Session method it must not race with a
// concurrent mutation.
func (s *Session) Compactions() int { return s.compactions }

// Gauges reports the memory-relevant size gauges of a session's
// front-end state — the numbers an operator watches to see whether a
// long-lived streaming session is holding its footprint: the blocking
// graph (edges and approximate bytes), the streaming inverted index
// (zero until the first real ingest or evict builds it), the tombstone
// count the next compaction epoch will reclaim, and the epochs already
// passed. Exposed on the server's /status endpoint via Snapshot.
type Gauges struct {
	GraphEdges    int `json:"graphEdges"`
	GraphBytes    int `json:"graphBytes"`
	IndexTokens   int `json:"indexTokens"`
	IndexPostings int `json:"indexPostings"`
	Tombstones    int `json:"tombstones"`
	Compactions   int `json:"compactions"`
	// Write-ahead-log gauges, zero (and omitted from JSON) without a
	// log: current log size, records in the current file (a fresh
	// checkpoint resets this to 1 — the records accumulated since the
	// last rotation), rotations performed, and the wall-clock of the
	// last fsync (0 under FsyncOff: nothing has been made durable).
	WALBytes       int64 `json:"walBytes,omitempty"`
	WALRecords     int64 `json:"walRecords,omitempty"`
	WALCheckpoints int64 `json:"walCheckpoints,omitempty"`
	WALLastSyncNs  int64 `json:"walLastSyncNs,omitempty"`
	// Cold-store gauges, zero (and omitted from JSON) without a store:
	// total stored bytes (segment-file bytes on "disk"), the bytes of
	// that actually resident in RAM (the whole store on "mem"; locator
	// overhead only on "disk"), live keys, and the cumulative hit/miss
	// counters of the decoded-description and decoded-posting caches
	// combined — hits/(hits+misses) is the cache hit rate an operator
	// sizes Config.DescCache and Config.PostingCache by.
	StoreBytes         int64 `json:"storeBytes,omitempty"`
	StoreResidentBytes int64 `json:"storeResidentBytes,omitempty"`
	StoreKeys          int64 `json:"storeKeys,omitempty"`
	StoreCacheHits     int64 `json:"storeCacheHits,omitempty"`
	StoreCacheMisses   int64 `json:"storeCacheMisses,omitempty"`
	// MapReduce-engine gauges, zero (and omitted from JSON) unless the
	// MapReduce engine has run: worker subprocesses spawned by the
	// "proc" runner (cumulative — stable against idle reaping; zero on
	// the in-process runner), task re-dispatches after worker failures,
	// and the key+value bytes that crossed the map→reduce shuffle
	// boundary across every job — the wire traffic a distributed
	// shuffle would carry.
	MRWorkers      int64 `json:"mrWorkers,omitempty"`
	MRRetries      int64 `json:"mrRetries,omitempty"`
	MRShuffleBytes int64 `json:"mrShuffleBytes,omitempty"`
}

// Gauges returns the session's current memory gauges. Like every
// Session method it must not race with a concurrent mutation — the
// server captures it into each Snapshot from its writer goroutine.
func (s *Session) Gauges() Gauges {
	tokens, postings := s.fstate.IndexFootprint()
	g := Gauges{
		GraphEdges:    s.fstate.Front.Graph.NumEdges(),
		GraphBytes:    s.fstate.Front.Graph.Footprint(),
		IndexTokens:   tokens,
		IndexPostings: postings,
		Tombstones:    s.p.col.Tombstones(),
		Compactions:   s.compactions,
	}
	if w := s.p.wal; w != nil {
		st := w.Stats()
		g.WALBytes, g.WALRecords = st.Bytes, st.Records
		g.WALCheckpoints, g.WALLastSyncNs = st.Checkpoints, st.LastSyncUnixNano
	}
	if cs := s.p.store; cs != nil {
		st := cs.Stats()
		g.StoreBytes, g.StoreResidentBytes, g.StoreKeys = st.Bytes, st.Resident, st.Keys
		dh, dm := s.p.col.CacheStats()
		ph, pm := s.fstate.CacheStats()
		g.StoreCacheHits, g.StoreCacheMisses = dh+ph, dm+pm
	}
	if t := s.p.mrTotals; t != nil {
		g.MRRetries = t.Get("task.retries")
		g.MRShuffleBytes = t.Get("shuffle.bytes")
	}
	if pr := s.p.mrProc; pr != nil {
		g.MRWorkers = pr.Spawned()
	}
	return g
}

// maybeCompact opens a new compaction epoch when the tombstone density
// of the shared collection has reached the configured threshold: the
// live descriptions move into a fresh collection under dense ids, the
// front-end rebuilds over it from scratch (a full pass, amortized by
// the threshold against the eviction traffic that raised the density),
// and the surviving resolution trace is remapped onto the new ids — the
// Retract replay that follows in syncFront then rebuilds the resolver
// exactly as a from-scratch session over the surviving corpus would.
// References (KB + URI) never change; only internal ids move.
//
// Runs inside syncFront's eviction branch, after filterAliveSteps (so
// every trace id is live and has a new id) and after expireTTL (so no
// surviving generation is at or past the cutoff, and the TTL cursor can
// rewind to 0 over the compacted, tombstone-free generation array).
// Nothing is mutated until the rebuild has succeeded — but by then the
// eviction pass has already consumed its pending set, so a failed
// rebuild is not retryable: syncFront poisons the session on it. The
// first return value reports whether a compaction epoch happened, so
// syncFront can checkpoint the write-ahead log after the pass
// completes.
//
// Superseded sessions hold trace ids of the old id space: after a
// compaction they can no longer resolve against the shared pipeline —
// one more reason streaming is restricted to the current session.
func (s *Session) maybeCompact() (bool, error) {
	thr := s.p.compactionThreshold()
	col := s.p.col
	if thr <= 0 || col.Len() == 0 {
		return false, nil
	}
	if float64(col.Tombstones()) < thr*float64(col.Len()) {
		return false, nil
	}
	newCol, oldToNew := col.Compact()
	// With a store attached, Compact paged every survivor's body in from
	// the old epoch and rewrote it under the new one; either side may
	// have parked a failure.
	if err := errors.Join(col.ColdErr(), newCol.ColdErr()); err != nil {
		return false, fmt.Errorf("minoaner: compaction: description store: %w", err)
	}
	fstate, err := pipeline.Start(s.eng, newCol, s.p.pipelineOptions())
	if err != nil {
		return false, fmt.Errorf("minoaner: compaction: %w", err)
	}
	if err := newCol.ColdErr(); err != nil {
		return false, fmt.Errorf("minoaner: compaction: description store: %w", err)
	}
	// Commit: every fallible stage succeeded.
	s.p.col = newCol
	s.fstate = fstate
	for i := range s.trace {
		s.trace[i].A = oldToNew[s.trace[i].A]
		s.trace[i].B = oldToNew[s.trace[i].B]
	}
	if s.gens != nil {
		kept := s.gens[:0]
		for id, g := range s.gens {
			if oldToNew[id] >= 0 {
				kept = append(kept, g)
			}
		}
		s.gens = kept
		s.expired = 0
	}
	s.compactions++
	if st := s.p.store; st != nil {
		// The old epoch's cold records are superseded: delete them, spill
		// the rebuilt graph, and let the store rewrite its segments
		// without the dead bytes — the compaction epoch is the moment
		// disk space is actually reclaimed. The in-memory state is
		// already consistent, but a store that cannot shed its garbage
		// only falls further behind, so failures here poison like every
		// other compaction error (the caller treats any non-nil error as
		// fatal; the false return just skips the log checkpoint the
		// poisoned session would never reach).
		if err := col.DropCold(); err != nil {
			return false, fmt.Errorf("minoaner: compaction: drop old epoch: %w", err)
		}
		if err := fstate.SpillGraph(); err != nil {
			return false, fmt.Errorf("minoaner: compaction: %w", err)
		}
		if err := st.Compact(); err != nil {
			return false, fmt.Errorf("minoaner: compaction: store compact: %w", err)
		}
	}
	return true, nil
}

// walCheckpoint rotates the write-ahead log down to a single
// checkpoint record holding the live corpus (and, for TTL sessions,
// each description's age in batches) — called after a compaction epoch,
// the natural moment the corpus is dense and tombstone-free. Replay of
// a checkpointed log restores the corpus, re-bases the TTL clock from
// the recorded ages, and continues with the records that follow.
func (s *Session) walCheckpoint() error {
	w := s.p.wal
	if w == nil {
		return nil
	}
	col := s.p.col
	chk := walCheckpoint{Descs: make([]Description, 0, col.NumAlive())}
	if s.gens != nil {
		chk.Ages = make([]int, 0, col.NumAlive())
	}
	for id := 0; id < col.Len(); id++ {
		if !col.Alive(id) {
			continue
		}
		d := col.Desc(id)
		chk.Descs = append(chk.Descs, Description{
			KB: d.KB, URI: d.URI, Types: d.Types, Attrs: d.Attrs, Links: d.Links,
		})
		if s.gens != nil {
			chk.Ages = append(chk.Ages, s.curGen-s.gens[id])
		}
	}
	data, err := json.Marshal(chk)
	if err != nil {
		return fmt.Errorf("minoaner: wal checkpoint: %w", err)
	}
	if err := w.Checkpoint(data); err != nil {
		return fmt.Errorf("minoaner: %w", err)
	}
	return nil
}

// SyncWAL forces every record appended so far onto stable storage.
// Under FsyncWave this is the commit point — the server's writer
// goroutine calls it once per commit wave, making one wave one durable
// unit; under FsyncAlways each append already synced and under FsyncOff
// (or without a log) it is a no-op.
func (s *Session) SyncWAL() error { return s.p.SyncWAL() }

// SyncWAL is the pipeline-level form of Session.SyncWAL, for syncing
// pre-Start loads.
func (p *Pipeline) SyncWAL() error {
	if p.wal == nil {
		return nil
	}
	if err := p.wal.Commit(); err != nil {
		return fmt.Errorf("minoaner: %w", err)
	}
	return nil
}

// expireTTL tombstones every description whose ingest batch slid out
// of the TTL window. Ids are stamped in batch order, so the expired
// region is a prefix and the scan resumes at a cursor — total expiry
// work over a session's lifetime is linear in the ids ever stamped.
func (s *Session) expireTTL() {
	ttl := s.p.cfg.TTL
	if ttl <= 0 {
		return
	}
	// Stamp ids that arrived since the last pass with the current batch.
	for id := len(s.gens); id < s.p.col.Len(); id++ {
		s.gens = append(s.gens, s.curGen)
	}
	cutoff := s.curGen - ttl
	for s.expired < len(s.gens) && s.gens[s.expired] <= cutoff {
		s.p.col.Evict(s.expired) // no-op when already evicted by hand
		s.expired++
	}
}

// filterAliveSteps drops trace steps touching evicted descriptions, in
// place: the surviving history reads exactly as if those comparisons
// had never been scheduled.
func filterAliveSteps(steps []core.Step, col *kb.Collection) []core.Step {
	kept := steps[:0]
	for _, st := range steps {
		if col.Alive(st.A) && col.Alive(st.B) {
			kept = append(kept, st)
		}
	}
	return kept
}

// ref builds the stable reference of an id from the always-hot KB and
// URI arrays — never from Desc, which in store mode would page a whole
// body in just to read two fields every result row repeats.
func (p *Pipeline) ref(id int) Ref {
	return Ref{KB: p.col.KBName(p.col.KBOf(id)), URI: p.col.URIOf(id)}
}

func bruteForce(c *kb.Collection) int {
	n := c.NumAlive()
	total := n * (n - 1) / 2
	if c.NumLiveKBs() <= 1 {
		return total
	}
	perKB := make([]int, c.NumKBs())
	for id := 0; id < c.Len(); id++ {
		if c.Alive(id) {
			perKB[c.KBOf(id)]++
		}
	}
	for _, k := range perKB {
		total -= k * (k - 1) / 2
	}
	return total
}
