//go:build !race

package minoaner_test

const raceEnabled = false
