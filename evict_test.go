package minoaner_test

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"

	minoaner "repro"
	"repro/internal/rdf"
)

// key identifies a description by reference in the tests' bookkeeping.
func refKey(r minoaner.Ref) string { return r.KB + "\x00" + r.URI }

// survivors filters a description stream by an evicted-reference set,
// preserving order — the corpus a from-scratch oracle loads.
func survivors(all []minoaner.Description, gone map[string]bool) []minoaner.Description {
	var out []minoaner.Description
	for _, d := range all {
		if !gone[refKey(minoaner.Ref{KB: d.KB, URI: d.URI})] {
			out = append(out, d)
		}
	}
	return out
}

// TestEvictEquivalentToFromScratch is the deletion headline guarantee,
// end to end at the public API: for any interleaving of Ingest and
// Evict before comparisons are spent, any worker count, and any
// budget, resolving the session produces exactly what a from-scratch
// session over the surviving corpus produces — the same matches in the
// same order with the same scores and flags, the same statistics, and
// the same clusters.
func TestEvictEquivalentToFromScratch(t *testing.T) {
	w := hardSessionWorld(t, 671, 140)
	all := streamDescriptions(w)
	seedN := len(all) / 3
	for _, workers := range []int{1, 4} {
		for _, budget := range []int{7, 0} {
			t.Run(fmt.Sprintf("workers=%d/budget=%d", workers, budget), func(t *testing.T) {
				cfg := minoaner.Defaults()
				cfg.Workers = workers

				p := minoaner.New(cfg)
				if err := p.Add(all[:seedN]); err != nil {
					t.Fatal(err)
				}
				s, err := p.Start()
				if err != nil {
					t.Fatal(err)
				}
				gone := make(map[string]bool)
				evict := func(refs []minoaner.Ref) {
					t.Helper()
					if err := s.Evict(refs); err != nil {
						t.Fatal(err)
					}
					for _, r := range refs {
						gone[refKey(r)] = true
					}
				}
				ref := func(d minoaner.Description) minoaner.Ref {
					return minoaner.Ref{KB: d.KB, URI: d.URI}
				}

				// Interleave: evict from the seed, ingest, evict across
				// both generations, ingest the rest, evict again.
				evict([]minoaner.Ref{ref(all[2]), ref(all[9]), ref(all[10])})
				if err := s.Ingest(all[seedN : 2*seedN]); err != nil {
					t.Fatal(err)
				}
				evict([]minoaner.Ref{ref(all[0]), ref(all[seedN+3]), ref(all[seedN+8])})
				if err := s.Ingest(all[2*seedN:]); err != nil {
					t.Fatal(err)
				}
				evict([]minoaner.Ref{ref(all[2*seedN+5]), ref(all[17])})
				got, err := s.Resume(budget)
				if err != nil {
					t.Fatal(err)
				}

				// From-scratch oracle over a corpus that never held the
				// evicted descriptions.
				p2 := minoaner.New(cfg)
				if err := p2.Add(survivors(all, gone)); err != nil {
					t.Fatal(err)
				}
				s2, err := p2.Start()
				if err != nil {
					t.Fatal(err)
				}
				want, err := s2.Resume(budget)
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, "evict-vs-scratch", want, got)
			})
		}
	}
}

// TestEvictKBEquivalent evicts an entire knowledge base — the stale
// dump case — which flips the surviving corpus from clean–clean to
// dirty ER. The session must end up exactly where a from-scratch
// session over the single remaining KB does.
func TestEvictKBEquivalent(t *testing.T) {
	w := hardSessionWorld(t, 672, 100)
	all := streamDescriptions(w)
	cfg := minoaner.Defaults()
	cfg.Workers = 4

	p := minoaner.New(cfg)
	if err := p.Add(all); err != nil {
		t.Fatal(err)
	}
	s, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EvictKB("betaKB"); err != nil {
		t.Fatal(err)
	}
	got, err := s.Resume(0)
	if err != nil {
		t.Fatal(err)
	}

	var alphaOnly []minoaner.Description
	for _, d := range all {
		if d.KB == "alpha" {
			alphaOnly = append(alphaOnly, d)
		}
	}
	p2 := minoaner.New(cfg)
	if err := p2.Add(alphaOnly); err != nil {
		t.Fatal(err)
	}
	want, err := p2.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "evict-kb", want, got)
	if got.Stats.KBs != 1 {
		t.Fatalf("stats report %d KBs after evicting one of two", got.Stats.KBs)
	}
}

// TestEvictEdgeCases pins the degenerate eviction paths: unknown
// references, double evictions, duplicate references in one call,
// evicting a description a prior ingest merged into, unknown KBs, and
// eviction on a superseded session are all clean no-ops or typed
// errors — never corrupted state.
func TestEvictEdgeCases(t *testing.T) {
	w := hardSessionWorld(t, 673, 60)
	all := streamDescriptions(w)
	p := minoaner.New(minoaner.Defaults())
	if err := p.Add(all); err != nil {
		t.Fatal(err)
	}
	s, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	before := p.NumDescriptions()

	// Empty evictions are no-ops.
	if err := s.Evict(nil); err != nil {
		t.Errorf("empty evict: %v", err)
	}
	// An unknown reference is a typed error and nothing is evicted,
	// even when other references in the batch are valid.
	bad := []minoaner.Ref{{KB: all[0].KB, URI: all[0].URI}, {KB: "alpha", URI: "http://nosuch/x"}}
	if err := s.Evict(bad); !errors.Is(err, minoaner.ErrUnknownDescription) {
		t.Errorf("unknown ref: got %v, want ErrUnknownDescription", err)
	}
	if p.NumDescriptions() != before {
		t.Fatal("failed evict still removed descriptions")
	}
	// Duplicate references within one call collapse to one eviction.
	dup := minoaner.Ref{KB: all[3].KB, URI: all[3].URI}
	if err := s.Evict([]minoaner.Ref{dup, dup}); err != nil {
		t.Errorf("duplicate refs in one call: %v", err)
	}
	if p.NumDescriptions() != before-1 {
		t.Fatalf("duplicate refs evicted %d descriptions, want 1", before-p.NumDescriptions())
	}
	// Evicting the same reference again is unknown now.
	if err := s.Evict([]minoaner.Ref{dup}); !errors.Is(err, minoaner.ErrUnknownDescription) {
		t.Errorf("double evict: got %v, want ErrUnknownDescription", err)
	}
	// A description extended by a later ingest evicts as one unit.
	target := all[5]
	if err := s.Ingest([]minoaner.Description{{
		KB: target.KB, URI: target.URI,
		Attrs: []minoaner.Attribute{{Predicate: "late", Value: "freshly merged note"}},
	}}); err != nil {
		t.Fatal(err)
	}
	if p.NumDescriptions() != before-1 {
		t.Fatal("merge ingest changed the description count")
	}
	if err := s.Evict([]minoaner.Ref{{KB: target.KB, URI: target.URI}}); err != nil {
		t.Errorf("evicting a merged description: %v", err)
	}
	if p.NumDescriptions() != before-2 {
		t.Fatal("merged description did not evict as one unit")
	}
	// Unknown KB names are typed errors; an emptied KB is a no-op.
	if err := s.EvictKB("nosuchkb"); !errors.Is(err, minoaner.ErrUnknownKB) {
		t.Errorf("unknown KB: got %v, want ErrUnknownKB", err)
	}
	if err := s.EvictKB("betaKB"); err != nil {
		t.Fatal(err)
	}
	if err := s.EvictKB("betaKB"); err != nil {
		t.Errorf("evicting an already-empty KB: %v", err)
	}
	// The session still resolves its surviving corpus.
	if _, err := s.Resume(0); err != nil {
		t.Fatal(err)
	}

	// A superseded session refuses to evict.
	s2, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Evict([]minoaner.Ref{{KB: all[1].KB, URI: all[1].URI}}); err == nil {
		t.Error("evict on a superseded session accepted")
	}
	if err := s.EvictKB("alpha"); err == nil {
		t.Error("EvictKB on a superseded session accepted")
	}
	// all[2] is an alpha description untouched by the evictions above.
	if err := s2.Evict([]minoaner.Ref{{KB: all[2].KB, URI: all[2].URI}}); err != nil {
		t.Errorf("current session refused to evict: %v", err)
	}
}

// TestEvictEverything empties the session: every queue drains, the
// result is empty, and the emptied session accepts a fresh corpus.
func TestEvictEverything(t *testing.T) {
	w := hardSessionWorld(t, 674, 50)
	all := streamDescriptions(w)
	p := minoaner.New(minoaner.Defaults())
	if err := p.Add(all); err != nil {
		t.Fatal(err)
	}
	s, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Resume(25); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"alpha", "betaKB"} {
		if err := s.EvictKB(name); err != nil {
			t.Fatal(err)
		}
	}
	if n := p.NumDescriptions(); n != 0 {
		t.Fatalf("%d descriptions survive a full eviction", n)
	}
	if pend := s.Pending(); pend != 0 {
		t.Fatalf("emptied session still reports %d pending comparisons", pend)
	}
	res, err := s.Resume(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 || len(res.Clusters) != 0 || res.Stats.Comparisons != 0 {
		t.Fatalf("emptied session resolved something: %+v", res.Stats)
	}
	// Starting over on the same pipeline works once data returns.
	if err := s.Ingest(all[:10]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Resume(0); err != nil {
		t.Fatal(err)
	}
}

// TestEvictThenReingestGolden is the full-cycle regression: a session
// whose corpus is evicted wholesale and then re-ingested must
// reproduce the pinned golden resolution — scores, flags, clusters,
// and statistics bit for bit — even though the re-ingested
// descriptions live under fresh internal ids.
func TestEvictThenReingestGolden(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		t.Skipf("golden digests are amd64 float bits; GOARCH=%s fuses differently", runtime.GOARCH)
	}
	w := goldenWorld(t)
	batches := make(map[string][]minoaner.Description)
	for id := 0; id < w.Collection.Len(); id++ {
		d := w.Collection.Desc(id)
		batches[d.KB] = append(batches[d.KB], minoaner.Description{
			KB: d.KB, URI: d.URI, Types: d.Types, Attrs: d.Attrs, Links: d.Links,
		})
	}
	p := minoaner.New(minoaner.Defaults())
	for _, name := range []string{"alpha", "betaKB"} {
		if err := p.Add(batches[name]); err != nil {
			t.Fatal(err)
		}
	}
	s, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"alpha", "betaKB"} {
		if err := s.EvictKB(name); err != nil {
			t.Fatal(err)
		}
	}
	if p.NumDescriptions() != 0 {
		t.Fatal("full eviction left descriptions behind")
	}
	for _, name := range []string{"alpha", "betaKB"} {
		if err := s.Ingest(batches[name]); err != nil {
			t.Fatal(err)
		}
	}
	out, err := s.Resume(0)
	if err != nil {
		t.Fatal(err)
	}
	if digest := resultDigest(out); digest != goldenClusterDigest {
		t.Errorf("evict-then-reingest digest %s, want golden %s", digest, goldenClusterDigest)
	}
}

// TestEvictTTL pins the sliding-window semantics: with TTL = 2, after
// the i-th ingest batch only the last two batches are live, and the
// session equals a from-scratch session over exactly that window.
func TestEvictTTL(t *testing.T) {
	w := hardSessionWorld(t, 675, 120)
	all := streamDescriptions(w)
	const batches = 4
	batch := func(i int) []minoaner.Description {
		return all[i*len(all)/batches : (i+1)*len(all)/batches]
	}
	cfg := minoaner.Defaults()
	cfg.TTL = 2
	cfg.Workers = 4
	p := minoaner.New(cfg)
	if err := p.Add(batch(0)); err != nil {
		t.Fatal(err)
	}
	s, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < batches; i++ {
		if err := s.Ingest(batch(i)); err != nil {
			t.Fatal(err)
		}
		lo := i - 1 // window: batches {i-1, i}
		want := 0
		for b := lo; b <= i; b++ {
			want += len(batch(b))
		}
		if got := p.NumDescriptions(); got != want {
			t.Fatalf("after batch %d: %d live descriptions, want window of %d", i, got, want)
		}
	}
	// An ingest that brings nothing is not a batch: the TTL window must
	// not slide, or pollers passing empty feeds would drain the corpus.
	liveBefore := p.NumDescriptions()
	if err := s.Ingest(nil); err != nil {
		t.Fatal(err)
	}
	if err := s.IngestKB("alpha", strings.NewReader("")); err != nil {
		t.Fatal(err)
	}
	if got := p.NumDescriptions(); got != liveBefore {
		t.Fatalf("empty ingests slid the TTL window: %d live descriptions, want %d", got, liveBefore)
	}
	got, err := s.Resume(0)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: a fresh session over exactly the surviving window.
	cfg2 := minoaner.Defaults()
	cfg2.Workers = 4
	p2 := minoaner.New(cfg2)
	window := append(append([]minoaner.Description(nil), batch(batches-2)...), batch(batches-1)...)
	if err := p2.Add(window); err != nil {
		t.Fatal(err)
	}
	want, err := p2.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "ttl-window", want, got)
}

// TestInterleavedIngestEvictResume is the mid-session property suite:
// across Resume legs separated by evictions and ingests, matches among
// surviving descriptions are monotonic, a drained session stays
// drained, and a zero Pending means a zero next leg.
func TestInterleavedIngestEvictResume(t *testing.T) {
	w := hardSessionWorld(t, 676, 140)
	all := streamDescriptions(w)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := minoaner.Defaults()
			cfg.Workers = workers
			p := minoaner.New(cfg)
			if err := p.Add(all[:len(all)/2]); err != nil {
				t.Fatal(err)
			}
			s, err := p.Start()
			if err != nil {
				t.Fatal(err)
			}
			mid, err := s.Resume(60)
			if err != nil {
				t.Fatal(err)
			}

			gone := map[string]bool{}
			var evictRefs []minoaner.Ref
			for _, d := range []minoaner.Description{all[1], all[4], all[11], all[22]} {
				r := minoaner.Ref{KB: d.KB, URI: d.URI}
				evictRefs = append(evictRefs, r)
				gone[refKey(r)] = true
			}
			if err := s.Evict(evictRefs); err != nil {
				t.Fatal(err)
			}
			leg2, err := s.Resume(40)
			if err != nil {
				t.Fatal(err)
			}
			// Monotonic: every pre-evict match among survivors is still
			// reported after the evict leg.
			surviving := 0
			for _, m := range mid.Matches {
				if gone[refKey(m.A)] || gone[refKey(m.B)] {
					continue
				}
				surviving++
				found := false
				for _, m2 := range leg2.Matches {
					if m2.A == m.A && m2.B == m.B {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("surviving match %v == %v lost after eviction", m.A, m.B)
				}
			}
			if surviving == 0 {
				t.Fatal("eviction destroyed every early match — workload too easy")
			}

			if err := s.Ingest(all[len(all)/2:]); err != nil {
				t.Fatal(err)
			}
			final, err := s.Resume(0)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range leg2.Matches {
				found := false
				for _, m2 := range final.Matches {
					if m2.A == m.A && m2.B == m.B {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("match %v == %v lost across an ingest", m.A, m.B)
				}
			}
			// Drained: a zero-pending session spends nothing more.
			if s.Pending() == 0 {
				again, err := s.Resume(0)
				if err != nil {
					t.Fatal(err)
				}
				if again.Stats.Comparisons != final.Stats.Comparisons {
					t.Fatal("zero Pending but Resume executed comparisons")
				}
			}
			again, err := s.Resume(7)
			if err != nil {
				t.Fatal(err)
			}
			if again.Stats.Comparisons != final.Stats.Comparisons {
				t.Fatal("drained session executed more comparisons")
			}
		})
	}
}

// TestPostStartMutationStaysInSync is the regression for the silent
// desynchronization bug: mutating the pipeline after Start — Add,
// AddDescription, LoadKB — must route through the live session (the
// equivalent of Ingest), so the session's statistics, matcher, and
// queue reflect the mutation; on a superseded session the direct
// streaming calls refuse instead.
func TestPostStartMutationStaysInSync(t *testing.T) {
	w := hardSessionWorld(t, 677, 100)
	all := streamDescriptions(w)
	half := len(all) / 2

	// Path A: Pipeline.Add after Start ≡ Session.Ingest.
	p := minoaner.New(minoaner.Defaults())
	if err := p.Add(all[:half]); err != nil {
		t.Fatal(err)
	}
	s, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Add(all[half:]); err != nil {
		t.Fatal(err)
	}
	got, err := s.Resume(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Descriptions != len(all) {
		t.Fatalf("post-Start Add left the session at %d descriptions, want %d",
			got.Stats.Descriptions, len(all))
	}
	pi := minoaner.New(minoaner.Defaults())
	if err := pi.Add(all[:half]); err != nil {
		t.Fatal(err)
	}
	si, err := pi.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := si.Ingest(all[half:]); err != nil {
		t.Fatal(err)
	}
	want, err := si.Resume(0)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "post-start-add", want, got)

	// Path B: LoadKB after Start ≡ IngestKB, and AddDescription syncs.
	doc, err := rdf.WriteString(w.Triples("betaKB"))
	if err != nil {
		t.Fatal(err)
	}
	alphaDoc, err := rdf.WriteString(w.Triples("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	pl := minoaner.New(minoaner.Defaults())
	if err := pl.LoadKB("alpha", strings.NewReader(alphaDoc)); err != nil {
		t.Fatal(err)
	}
	sl, err := pl.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.LoadKB("betaKB", strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	if err := pl.AddDescription("gamma", "http://g/1", map[string]string{"p": "solo gamma entry"}, nil); err != nil {
		t.Fatal(err)
	}
	res, err := sl.Resume(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.KBs != 3 {
		t.Fatalf("post-Start LoadKB/AddDescription left the session at %d KBs, want 3", res.Stats.KBs)
	}

	// Refusal path: once superseded, the pipeline routes to the new
	// current session and the old session's own calls refuse.
	s2, err := pl.Start()
	if err != nil {
		t.Fatal(err)
	}
	beforeN := pl.NumDescriptions()
	if err := sl.Ingest([]minoaner.Description{{KB: "gamma", URI: "http://g/2"}}); err == nil {
		t.Error("superseded session accepted an ingest")
	}
	if pl.NumDescriptions() != beforeN {
		t.Error("refused ingest still mutated the collection")
	}
	if err := pl.Add([]minoaner.Description{{KB: "gamma", URI: "http://g/3",
		Attrs: []minoaner.Attribute{{Predicate: "p", Value: "third gamma entry"}}}}); err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Resume(0)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.Descriptions != beforeN+1 {
		t.Fatalf("pipeline Add routed to the wrong session: current sees %d descriptions, want %d",
			r2.Stats.Descriptions, beforeN+1)
	}
}
