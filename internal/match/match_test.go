package match

import (
	"sync"
	"testing"

	"repro/internal/container"
	"repro/internal/datagen"
	"repro/internal/kb"
	"repro/internal/tokenize"
)

func linkedWorld(t *testing.T) *kb.Collection {
	t.Helper()
	c := kb.NewCollection()
	// KB a: city linked to its country; KB b: likewise.
	c.Add(&kb.Description{URI: "a/paris", KB: "a",
		Attrs: []kb.Attribute{{Predicate: "p", Value: "paris lights seine"}},
		Links: []string{"a/france"}})
	c.Add(&kb.Description{URI: "a/france", KB: "a",
		Attrs: []kb.Attribute{{Predicate: "p", Value: "france republic"}}})
	c.Add(&kb.Description{URI: "b/paris", KB: "b",
		Attrs: []kb.Attribute{{Predicate: "q", Value: "paris capital"}},
		Links: []string{"b/france"}})
	c.Add(&kb.Description{URI: "b/france", KB: "b",
		Attrs: []kb.Attribute{{Predicate: "q", Value: "france republic"}}})
	return c
}

func TestValueSim(t *testing.T) {
	c := linkedWorld(t)
	m := NewMatcher(c, DefaultOptions())
	same := m.ValueSim(1, 3)  // france vs france: high
	cross := m.ValueSim(1, 2) // france vs paris: low
	if same <= cross {
		t.Errorf("ValueSim(france,france)=%v should exceed ValueSim(france,paris)=%v", same, cross)
	}
	if same <= 0.5 {
		t.Errorf("matching pair similarity %v too low", same)
	}
	if got := m.ValueSim(0, 0); got < 0.999 {
		t.Errorf("self similarity %v", got)
	}
}

func TestNeighborSim(t *testing.T) {
	c := linkedWorld(t)
	m := NewMatcher(c, DefaultOptions())
	uf := container.NewUnionFind(c.Len())
	// Before any resolution, no neighbor evidence.
	if got := m.NeighborSim(0, 2, uf); got != 0 {
		t.Errorf("NeighborSim before resolution = %v", got)
	}
	// Resolve the two france descriptions; paris pair gains evidence.
	uf.Union(1, 3)
	if got := m.NeighborSim(0, 2, uf); got != 1 {
		t.Errorf("NeighborSim after resolving neighbors = %v, want 1", got)
	}
	// France descriptions have no out-links: no evidence either way.
	if got := m.NeighborSim(1, 3, uf); got != 0 {
		t.Errorf("NeighborSim without neighbors = %v", got)
	}
	if got := m.NeighborSim(0, 2, nil); got != 0 {
		t.Errorf("nil union-find should give 0, got %v", got)
	}
}

func TestScoreAndDecide(t *testing.T) {
	c := linkedWorld(t)
	opts := DefaultOptions()
	opts.Threshold = 0.5
	m := NewMatcher(c, opts)
	uf := container.NewUnionFind(c.Len())
	base := m.Score(0, 2, uf)
	uf.Union(1, 3)
	boosted := m.Score(0, 2, uf)
	if boosted <= base {
		t.Errorf("neighbor evidence did not raise score: %v -> %v", base, boosted)
	}
	if boosted > 1 {
		t.Errorf("score %v above cap", boosted)
	}
	cl := NewClustersFor(c)
	cl.Merge(1, 3)
	if score, ok := m.Decide(1, 3, cl); !ok || score < opts.Threshold {
		t.Errorf("france pair not matched: score=%v", score)
	}
	if _, ok := m.Decide(0, 3, cl); ok {
		t.Error("paris-france matched")
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := linkedWorld(t)
	m := NewMatcher(c, Options{})
	if m.Options().Threshold != 0.35 || m.Options().NeighborWeight != 0.50 {
		t.Errorf("defaults not applied: %+v", m.Options())
	}
	if m.Options().Tokenize.MinLength == 0 {
		t.Error("tokenize defaults not applied")
	}
	if m.Collection() != c {
		t.Error("Collection accessor wrong")
	}
}

func TestMatcherSeparatesWorkload(t *testing.T) {
	// On a generated center-center workload, value similarity of true
	// pairs must dominate that of random non-pairs.
	w, err := datagen.Generate(datagen.TwoKBs(5, 150, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(w.Collection, DefaultOptions())
	var matchSum, nonSum float64
	var matchN, nonN int
	for e, ids := range w.DescsOf {
		if len(ids) != 2 {
			continue
		}
		matchSum += m.ValueSim(ids[0], ids[1])
		matchN++
		// Non-match: pair with the next entity's description.
		if e+1 < len(w.DescsOf) && len(w.DescsOf[e+1]) == 2 {
			nonSum += m.ValueSim(ids[0], w.DescsOf[e+1][1])
			nonN++
		}
	}
	avgMatch, avgNon := matchSum/float64(matchN), nonSum/float64(nonN)
	if avgMatch < avgNon+0.3 {
		t.Errorf("separation too weak: matches %.3f vs non-matches %.3f", avgMatch, avgNon)
	}
}

func TestClusters(t *testing.T) {
	c := linkedWorld(t)
	cl := NewClusters(c.Len())
	if !cl.Merge(0, 2) {
		t.Error("first merge reported false")
	}
	if cl.Merge(2, 0) {
		t.Error("repeat merge reported true")
	}
	if !cl.Same(0, 2) || cl.Same(0, 1) {
		t.Error("Same wrong")
	}
	if cl.Size(0) != 2 {
		t.Errorf("Size=%d", cl.Size(0))
	}
	res := cl.Resolved()
	if len(res) != 1 || len(res[0]) != 2 {
		t.Errorf("Resolved=%v", res)
	}
	pairs := cl.Pairs(c, true)
	if len(pairs) != 1 || pairs[0] != [2]int{0, 2} {
		t.Errorf("Pairs=%v", pairs)
	}
	// Transitive expansion with a same-KB member.
	cl.Merge(0, 1)
	all := cl.Pairs(c, false)
	if len(all) != 3 {
		t.Errorf("transitive pairs=%v", all)
	}
	cross := cl.Pairs(c, true)
	if len(cross) != 2 {
		t.Errorf("cross-KB pairs=%v", cross)
	}
	if cl.String() == "" {
		t.Error("empty String")
	}
}

// TestValueSimMatchesRawCosine pins the cached-vector fast path: the
// matcher's ValueSim must return the exact float the TF-IDF model
// computes from the raw token multisets.
func TestValueSimMatchesRawCosine(t *testing.T) {
	c := linkedWorld(t)
	m := NewMatcher(c, DefaultOptions())
	for a := 0; a < c.Len(); a++ {
		for b := 0; b < c.Len(); b++ {
			want := m.tfidf.Cosine(c.Tokens(a, m.opts.Tokenize), c.Tokens(b, m.opts.Tokenize))
			if got := m.ValueSim(a, b); got != want {
				t.Fatalf("ValueSim(%d,%d)=%v, raw cosine %v", a, b, got, want)
			}
		}
	}
}

// TestDecideValueMatchesDecide pins the parallel engine's commit hook:
// DecideValue with the pair's own ValueSim is Decide, bit for bit.
func TestDecideValueMatchesDecide(t *testing.T) {
	c := linkedWorld(t)
	m := NewMatcher(c, DefaultOptions())
	cl := NewClustersFor(c)
	cl.Merge(1, 3) // resolve the countries so neighbor evidence exists
	for a := 0; a < c.Len(); a++ {
		for b := a + 1; b < c.Len(); b++ {
			ws, wm := m.Decide(a, b, cl)
			gs, gm := m.DecideValue(a, b, m.ValueSim(a, b), cl)
			if ws != gs || wm != gm {
				t.Fatalf("DecideValue(%d,%d)=(%v,%v), Decide=(%v,%v)", a, b, gs, gm, ws, wm)
			}
		}
	}
}

// TestExplicitZeroOptions is the regression suite for the zero-value
// config trap: zeroing a field of the normalized DefaultOptions must
// survive NewMatcher, while the zero Options still gets defaults.
func TestExplicitZeroOptions(t *testing.T) {
	c := linkedWorld(t)
	opts := DefaultOptions()
	opts.NeighborWeight = 0
	opts.MinValueSim = 0
	m := NewMatcher(c, opts)
	if got := m.Options(); got.NeighborWeight != 0 || got.MinValueSim != 0 {
		t.Fatalf("explicit zeros overwritten: %+v", got)
	}
	// With NeighborWeight 0 the combined score is pure value
	// similarity, even with resolved neighbors.
	cl := NewClustersFor(c)
	cl.Merge(1, 3)
	if s := m.Score(0, 2, cl.UF()); s != m.ValueSim(0, 2) {
		t.Errorf("NeighborWeight=0 still adds neighbor evidence: score=%v valueSim=%v", s, m.ValueSim(0, 2))
	}
	// WithDefaults fills unset fields exactly once and is idempotent.
	d := (Options{}).WithDefaults()
	if d.Threshold != 0.35 || d.NeighborWeight != 0.50 || d.MinValueSim != 0.12 || !d.Normalized {
		t.Fatalf("zero Options no longer defaults: %+v", d)
	}
	if again := d.WithDefaults(); again != d {
		t.Errorf("WithDefaults not idempotent: %+v vs %+v", again, d)
	}
	// A normalized options value with a zero Tokenize still gets the
	// tokenizer default — the zero tokenizer extracts nothing.
	z := DefaultOptions()
	z.Tokenize = tokenize.Options{}
	if got := NewMatcher(c, z).Options().Tokenize; got.MinLength == 0 {
		t.Error("zero Tokenize not defaulted on normalized options")
	}
}

// TestMatcherConcurrentValueSim exercises the property the parallel
// matching engine relies on: after construction, concurrent ValueSim
// and Decide calls are race-free (run under -race in CI).
func TestMatcherConcurrentValueSim(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(31, 80, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatcher(w.Collection, DefaultOptions())
	n := w.Collection.Len()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				a, b := (g*131+i)%n, (g*17+i*7+1)%n
				v := m.ValueSim(a, b)
				if v < 0 || v > 1 {
					t.Errorf("ValueSim out of range: %v", v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
