package match

import (
	"testing"

	"repro/internal/kb"
)

// exclusivityWorld: KB a has one "acme" description linked to a hub;
// KB b has two near-identical "acme" descriptions. Once a0 matches b0,
// partner exclusivity must block a structure-assisted match to b1.
func exclusivityWorld() *kb.Collection {
	c := kb.NewCollection()
	c.Add(&kb.Description{URI: "a0", KB: "a",
		Attrs: []kb.Attribute{{Predicate: "p", Value: "acme corporation global"}},
		Links: []string{"a9"}})
	c.Add(&kb.Description{URI: "a9", KB: "a",
		Attrs: []kb.Attribute{{Predicate: "p", Value: "hub node central"}}})
	c.Add(&kb.Description{URI: "b0", KB: "b",
		Attrs: []kb.Attribute{{Predicate: "q", Value: "acme corporation global"}},
		Links: []string{"b9"}})
	// b1 shares a weak token with a0 but is a different entity.
	c.Add(&kb.Description{URI: "b1", KB: "b",
		Attrs: []kb.Attribute{{Predicate: "q", Value: "acme unrelated retailer"}},
		Links: []string{"b9"}})
	c.Add(&kb.Description{URI: "b9", KB: "b",
		Attrs: []kb.Attribute{{Predicate: "q", Value: "hub node central"}}})
	return c
}

func TestPartnerExclusivityBlocksSecondPartner(t *testing.T) {
	c := exclusivityWorld()
	m := NewMatcher(c, DefaultOptions())
	cl := NewClustersFor(c)
	a0, _ := c.IDOf("a", "a0")
	a9, _ := c.IDOf("a", "a9")
	b0, _ := c.IDOf("b", "b0")
	b1, _ := c.IDOf("b", "b1")
	b9, _ := c.IDOf("b", "b9")

	// Resolve the hub pair and the true acme pair.
	cl.Merge(a9, b9)
	if _, ok := m.Decide(a0, b0, cl); !ok {
		t.Fatal("true acme pair rejected")
	}
	cl.Merge(a0, b0)

	// b1 now has full neighbor evidence (both link to the resolved
	// hub) and some value overlap — but a0 already has a partner in b.
	v := m.ValueSim(a0, b1)
	if v >= m.Options().Threshold {
		t.Skipf("fixture too similar (v=%.3f); exclusivity only guards structure-assisted matches", v)
	}
	if score, ok := m.Decide(a0, b1, cl); ok {
		t.Errorf("second partner accepted (score=%.3f, v=%.3f)", score, v)
	}
}

func TestExclusivityInactiveWithoutTracking(t *testing.T) {
	c := exclusivityWorld()
	cl := NewClusters(c.Len()) // no KB tracking
	if cl.HasKB(0, 1) {
		t.Error("untracked clusters report KB membership")
	}
}

func TestClustersKBMaskMaintenance(t *testing.T) {
	c := exclusivityWorld()
	cl := NewClustersFor(c)
	a0, _ := c.IDOf("a", "a0")
	b0, _ := c.IDOf("b", "b0")
	b1, _ := c.IDOf("b", "b1")
	kbA := c.KBOf(a0)
	kbB := c.KBOf(b0)
	if !cl.HasKB(a0, kbA) || cl.HasKB(a0, kbB) {
		t.Error("initial masks wrong")
	}
	cl.Merge(a0, b0)
	if !cl.HasKB(a0, kbB) || !cl.HasKB(b0, kbA) {
		t.Error("merge did not union masks")
	}
	// Mask survives further merges through either member.
	cl.Merge(b0, b1)
	if !cl.HasKB(b1, kbA) {
		t.Error("transitive mask lost")
	}
}
