// Package match decides whether two entity descriptions refer to the
// same real-world entity. Minoan ER's matcher combines value
// similarity — IDF-weighted cosine over the descriptions' token
// evidence — with neighbor similarity: the fraction of the two
// descriptions' linked neighbors that have already been resolved to
// each other. Neighbor evidence is what recovers "somehow similar"
// periphery pairs whose values share too few tokens to match alone.
package match

import (
	"fmt"
	"math"

	"repro/internal/container"
	"repro/internal/kb"
	"repro/internal/similarity"
	"repro/internal/tokenize"
)

// Options configures a Matcher.
type Options struct {
	// Tokenize controls token extraction (default tokenize.Default()).
	Tokenize tokenize.Options
	// Threshold is the combined score at or above which a pair
	// matches (default 0.35).
	Threshold float64
	// NeighborWeight scales how much resolved-neighbor evidence adds
	// to the combined score (default 0.50). Strong neighbor evidence
	// can carry a somehow-similar pair across the threshold on its
	// own, but only above the MinValueSim gate: a pair with no value
	// evidence at all can never match, which is what stops transitive
	// match snowballs.
	NeighborWeight float64
	// MinValueSim is the minimum value similarity a pair must have to
	// match regardless of neighbor evidence (default 0.12; generated
	// non-matching pairs rarely exceed 0.2 while matching pairs score
	// 0.2–0.8).
	MinValueSim float64
	// Normalized marks the options as fully specified: zero numeric
	// fields are taken literally instead of being replaced by the
	// documented defaults. DefaultOptions returns normalized options,
	// so the idiomatic way to request a true zero — say NeighborWeight
	// 0 for value-only matching — is to start from DefaultOptions and
	// zero the field. A zero Tokenize still means tokenize.Default():
	// the zero tokenize.Options extracts nothing and is never useful.
	Normalized bool
}

// DefaultOptions returns the pipeline defaults, normalized.
func DefaultOptions() Options {
	return Options{
		Tokenize:       tokenize.Default(),
		Threshold:      0.35,
		NeighborWeight: 0.50,
		MinValueSim:    0.12,
		Normalized:     true,
	}
}

// WithDefaults returns the options with unset fields replaced by the
// documented defaults. Already-normalized options pass through with
// only the Tokenize default applied, so explicit zeros survive.
func (o Options) WithDefaults() Options {
	var zero tokenize.Options
	if o.Tokenize == zero {
		o.Tokenize = tokenize.Default()
	}
	if o.Normalized {
		return o
	}
	if o.Threshold == 0 {
		o.Threshold = 0.35
	}
	if o.NeighborWeight == 0 {
		o.NeighborWeight = 0.50
	}
	if o.MinValueSim == 0 {
		o.MinValueSim = 0.12
	}
	o.Normalized = true
	return o
}

// Matcher scores and decides description pairs over one collection.
// It is read-only after construction: NewMatcher pre-warms the token
// cache and vectorizes every description, so concurrent ValueSim and
// Score calls are race-free — the property the parallel matching
// engine's speculative scoring workers rely on.
type Matcher struct {
	col   *kb.Collection
	opts  Options
	tfidf *similarity.TFIDF
	// vecs caches each description's sparse TF-IDF vector so ValueSim
	// is a merge join over presorted weights instead of re-walking raw
	// tokens and rebuilding weight maps per comparison.
	vecs []similarity.Vector
	// neighbors caches each description's combined neighborhood: its
	// out-links (Collection.Neighbors) plus its in-links (descriptions
	// linking to it). Equivalence evidence flows along links in both
	// directions.
	neighbors [][]int
}

// NewMatcher builds a matcher: learns IDF weights over the whole
// collection and caches token evidence, sparse TF-IDF vectors, and
// neighbor lists. Evicted descriptions are invisible: they contribute
// no documents to the IDF statistics, no vectors, and no neighbors, so
// the matcher is identical to one built over a collection that never
// held them.
func NewMatcher(col *kb.Collection, opts Options) *Matcher {
	opts = opts.WithDefaults()
	m := &Matcher{col: col, opts: opts, tfidf: similarity.NewTFIDF()}
	out := make([][]int, col.Len())
	for id := 0; id < col.Len(); id++ {
		if !col.Alive(id) {
			continue
		}
		m.tfidf.AddDoc(col.Tokens(id, opts.Tokenize))
		out[id] = col.Neighbors(id)
	}
	// Vectorize after the IDF pass: weights need the whole corpus.
	m.vecs = make([]similarity.Vector, col.Len())
	for id := 0; id < col.Len(); id++ {
		if !col.Alive(id) {
			continue
		}
		m.vecs[id] = m.tfidf.Vectorize(col.Tokens(id, opts.Tokenize))
	}
	// Combine out- and in-neighbors, deduplicated, out-links first.
	m.neighbors = make([][]int, col.Len())
	inbound := make([][]int, col.Len())
	for id, ns := range out {
		for _, n := range ns {
			inbound[n] = append(inbound[n], id)
		}
	}
	for id := 0; id < col.Len(); id++ {
		seen := make(map[int]struct{}, len(out[id])+len(inbound[id]))
		for _, n := range out[id] {
			seen[n] = struct{}{}
			m.neighbors[id] = append(m.neighbors[id], n)
		}
		for _, n := range inbound[id] {
			if _, dup := seen[n]; dup {
				continue
			}
			seen[n] = struct{}{}
			m.neighbors[id] = append(m.neighbors[id], n)
		}
	}
	return m
}

// Collection returns the underlying description collection.
func (m *Matcher) Collection() *kb.Collection { return m.col }

// Options returns the matcher's configuration.
func (m *Matcher) Options() Options { return m.opts }

// Neighbors returns the cached combined (out ∪ in) neighborhood of a
// description.
func (m *Matcher) Neighbors(id int) []int { return m.neighbors[id] }

// ValueSim returns the IDF-weighted cosine similarity of the two
// descriptions' token evidence, in [0, 1]. It reads only the cached
// sparse vectors, so concurrent calls are race-free; the result is
// bit-identical to TFIDF.Cosine over the raw token multisets.
func (m *Matcher) ValueSim(a, b int) float64 {
	return similarity.CosineVectors(m.vecs[a], m.vecs[b])
}

// NeighborSim measures how much the two descriptions' neighborhoods
// mirror each other under the resolved relation: the number of
// smaller-side members with a resolved counterpart on the other side,
// normalized by the geometric mean of the neighborhood sizes (the
// cosine normalization). A single shared hub neighbor is weak
// evidence; matching descriptions mirror most of each other's
// neighborhood. Descriptions without neighbors contribute no
// evidence (0).
func (m *Matcher) NeighborSim(a, b int, resolved *container.UnionFind) float64 {
	na, nb := m.neighbors[a], m.neighbors[b]
	if len(na) == 0 || len(nb) == 0 || resolved == nil {
		return 0
	}
	if len(nb) < len(na) {
		na, nb = nb, na
	}
	hits := 0
	for _, x := range na {
		for _, y := range nb {
			if resolved.Same(x, y) {
				hits++
				break
			}
		}
	}
	s := float64(hits) / math.Sqrt(float64(len(na))*float64(len(nb)))
	if s > 1 {
		return 1
	}
	return s
}

// NeighborSimRead is NeighborSim over the forest's lock-free read path
// (container.UnionFind.SameRead): the parallel engine's scoring
// workers call it concurrently with the committer's merges. A call
// racing a merge may land on either side of it, so the caller stamps
// the result with the forest Version at wave launch and treats it as
// exact only while the version holds.
func (m *Matcher) NeighborSimRead(a, b int, resolved *container.UnionFind) float64 {
	na, nb := m.neighbors[a], m.neighbors[b]
	if len(na) == 0 || len(nb) == 0 || resolved == nil {
		return 0
	}
	if len(nb) < len(na) {
		na, nb = nb, na
	}
	hits := 0
	for _, x := range na {
		for _, y := range nb {
			if resolved.SameRead(x, y) {
				hits++
				break
			}
		}
	}
	s := float64(hits) / math.Sqrt(float64(len(na))*float64(len(nb)))
	if s > 1 {
		return 1
	}
	return s
}

// Score returns the combined match score:
// valueSim + NeighborWeight·neighborSim, capped at 1.
func (m *Matcher) Score(a, b int, resolved *container.UnionFind) float64 {
	s := m.ValueSim(a, b) + m.opts.NeighborWeight*m.NeighborSim(a, b, resolved)
	if s > 1 {
		return 1
	}
	return s
}

// Decide reports whether the pair matches. The combined score must
// clear Threshold and the value similarity alone must clear
// MinValueSim. A structure-assisted match (one whose value similarity
// alone would not clear the threshold) is additionally subject to
// clean–clean partner exclusivity: it is rejected if either side's
// cluster already contains a description from the other side's KB —
// each description has at most one duplicate per other source, so a
// second neighbor-carried partner is almost surely spurious.
func (m *Matcher) Decide(a, b int, cl *Clusters) (score float64, matched bool) {
	return m.DecideValue(a, b, m.ValueSim(a, b), cl)
}

// DecideValue is Decide with the pair's value similarity supplied by
// the caller — the commit hook of the parallel matching engine, whose
// scoring workers precompute ValueSim speculatively. v must equal
// ValueSim(a, b); then DecideValue(a, b, v, cl) is bit-identical to
// Decide(a, b, cl).
func (m *Matcher) DecideValue(a, b int, v float64, cl *Clusters) (score float64, matched bool) {
	var resolved *container.UnionFind
	if cl != nil {
		resolved = cl.UF()
	}
	return m.DecideScored(a, b, v, m.NeighborSim(a, b, resolved), cl)
}

// DecideScored is DecideValue with the neighbor similarity also
// supplied by the caller — the commit hook for speculated neighbor
// scores. ns must equal NeighborSim(a, b, cl.UF()) at decision time
// (the parallel engine guarantees it by revalidating the cluster
// version a speculative score was stamped with); then
// DecideScored(a, b, v, ns, cl) is bit-identical to Decide(a, b, cl).
func (m *Matcher) DecideScored(a, b int, v, ns float64, cl *Clusters) (score float64, matched bool) {
	score = v + m.opts.NeighborWeight*ns
	if score > 1 {
		score = 1
	}
	if score < m.opts.Threshold || v < m.opts.MinValueSim {
		return score, false
	}
	if v < m.opts.Threshold && cl != nil && m.col.NumLiveKBs() > 1 {
		if cl.HasKB(a, m.col.KBOf(b)) || cl.HasKB(b, m.col.KBOf(a)) {
			return score, false
		}
	}
	return score, true
}

// Clusters groups descriptions resolved to the same real-world entity.
// When built over a collection, each cluster also tracks which KBs its
// members come from (up to 64 KBs), enabling the clean–clean partner
// exclusivity check in Decide.
type Clusters struct {
	uf   *container.UnionFind
	mask []uint64 // KB bitmask, valid at each set's root; nil if untracked
}

// NewClusters returns singleton clusters over n descriptions, without
// KB tracking (HasKB always reports false).
func NewClusters(n int) *Clusters {
	return &Clusters{uf: container.NewUnionFind(n)}
}

// NewClustersFor returns singleton clusters over the collection's
// descriptions with per-cluster KB tracking (when the collection has
// at most 64 KBs).
func NewClustersFor(col *kb.Collection) *Clusters {
	c := &Clusters{uf: container.NewUnionFind(col.Len())}
	if col.NumKBs() <= 64 {
		c.mask = make([]uint64, col.Len())
		for id := 0; id < col.Len(); id++ {
			c.mask[id] = 1 << uint(col.KBOf(id))
		}
	}
	return c
}

// UF exposes the underlying union-find (read-mostly; shared with the
// scheduler's neighbor-evidence computation).
func (c *Clusters) UF() *container.UnionFind { return c.uf }

// GrowFor extends the clusters to cover descriptions appended to the
// collection since construction: new ids join as singletons, existing
// clusters are untouched. KB tracking follows NewClustersFor's rule —
// it is dropped entirely if the collection has outgrown 64 KBs, so a
// grown Clusters always behaves exactly like one built fresh over the
// same collection with the same merges applied.
func (c *Clusters) GrowFor(col *kb.Collection) {
	old := c.uf.Len()
	c.uf.Grow(col.Len())
	if c.mask == nil {
		return
	}
	if col.NumKBs() > 64 {
		c.mask = nil
		return
	}
	for id := old; id < col.Len(); id++ {
		c.mask = append(c.mask, 1<<uint(col.KBOf(id)))
	}
}

// Merge records that a and b match, returning whether the clusters
// were previously distinct.
func (c *Clusters) Merge(a, b int) bool {
	if c.mask == nil {
		return c.uf.Union(a, b)
	}
	ra, rb := c.uf.Find(a), c.uf.Find(b)
	if !c.uf.Union(a, b) {
		return false
	}
	c.mask[c.uf.Find(a)] = c.mask[ra] | c.mask[rb]
	return true
}

// HasKB reports whether id's cluster contains any description from KB
// index kbIdx. Always false without KB tracking.
func (c *Clusters) HasKB(id, kbIdx int) bool {
	if c.mask == nil {
		return false
	}
	return c.mask[c.uf.Find(id)]&(1<<uint(kbIdx)) != 0
}

// Same reports whether a and b are currently resolved together.
func (c *Clusters) Same(a, b int) bool { return c.uf.Same(a, b) }

// Size returns the size of a's cluster.
func (c *Clusters) Size(a int) int { return c.uf.SetSize(a) }

// Resolved returns every cluster with at least two members.
func (c *Clusters) Resolved() [][]int { return c.uf.Components(2) }

// Pairs expands the clusters into the distinct matched pairs they
// imply (transitive closure), optionally restricted to cross-KB pairs.
func (c *Clusters) Pairs(col *kb.Collection, crossOnly bool) [][2]int {
	var out [][2]int
	for _, members := range c.Resolved() {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if crossOnly && col != nil && !col.CrossKB(members[i], members[j]) {
					continue
				}
				out = append(out, [2]int{members[i], members[j]})
			}
		}
	}
	return out
}

// String summarizes the clustering.
func (c *Clusters) String() string {
	return fmt.Sprintf("clusters: %d sets over %d descriptions", c.uf.Sets(), c.uf.Len())
}
