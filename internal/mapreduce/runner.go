package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// TaskKind distinguishes the two task shapes a plan produces.
type TaskKind int

const (
	// MapTask consumes one input split and emits partitioned KVs.
	MapTask TaskKind = iota + 1
	// ReduceTask consumes one shuffle partition's grouped keys.
	ReduceTask
)

// String returns the task kind's wire spelling.
func (k TaskKind) String() string {
	switch k {
	case MapTask:
		return "map"
	case ReduceTask:
		return "reduce"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Task is one schedulable unit of a job plan: a map task over one
// input split, or a reduce task over one shuffle partition. Tasks are
// self-contained — everything the worker needs travels inside (for a
// process-boundary runner, as the job's registry Spec plus the data) —
// so a task can be re-dispatched to a fresh worker after a failure
// without coordinator state.
type Task struct {
	// Job is the resolved job. Runners that cross a process boundary
	// ship Job.Spec and re-resolve from the registry on the far side;
	// the function fields never travel.
	Job Job
	// Kind selects the task shape.
	Kind TaskKind
	// ID is the task's index in its phase: the split index for map
	// tasks, the partition index for reduce tasks.
	ID int
	// Partitions is the shuffle fan-out a map task partitions its
	// emissions into.
	Partitions int
	// Inputs is a map task's input split.
	Inputs []string
	// Keys is a reduce task's sorted key list; Groups holds each key's
	// value-sorted group.
	Keys   []string
	Groups map[string][]string
}

// weight is the task's scheduling weight — the coordinator dispatches
// heaviest-first so a skewed split or partition starts earliest and
// the tail of the phase is short.
func (t *Task) weight() int {
	if t.Kind == MapTask {
		return len(t.Inputs)
	}
	n := 0
	for _, vs := range t.Groups {
		n += len(vs)
	}
	return n
}

// TaskOut is one completed task's output: per-partition emissions for
// a map task, output KVs for a reduce task, plus the counters the task
// accumulated. Counters ride inside the result — not a shared object —
// so a retried task's first, failed attempt never double-counts.
type TaskOut struct {
	Parts    [][]KV           `json:"parts,omitempty"`
	KVs      []KV             `json:"kvs,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Runner executes one task and returns its output. Implementations:
// LocalRunner (in-process, the fast path), ProcRunner (worker
// subprocesses over the framed stdin/stdout protocol), FlakyRunner
// (fault injection for tests). A Runner must be safe for concurrent
// RunTask calls; the coordinator dispatches up to Config.Workers tasks
// at once.
//
// Error contract: a *WorkerError means the worker died or the
// transport broke — the task did not observably run, and the
// coordinator re-dispatches it (on a fresh worker) within the attempt
// budget. Any other error is the job's own (a Map/Reduce function
// failed): deterministic, so retrying cannot help, and the run fails
// fast.
type Runner interface {
	RunTask(ctx context.Context, t *Task) (*TaskOut, error)
}

// WorkerError reports a worker-side failure the task itself did not
// cause: the process died, the pipe broke, a protocol frame was torn
// or corrupted. Retryable — the coordinator reassigns the task to a
// fresh worker. Test with errors.As.
type WorkerError struct {
	Err error
}

func (e *WorkerError) Error() string { return "mapreduce: worker failed: " + e.Err.Error() }

// Unwrap exposes the underlying transport or process error.
func (e *WorkerError) Unwrap() error { return e.Err }

// ErrRetriesExhausted reports a task that failed with worker errors on
// every attempt of its budget (Config.MaxAttempts). The returned error
// wraps it together with the last worker error; test with errors.Is.
var ErrRetriesExhausted = errors.New("mapreduce: task retry budget exhausted")

// ctxCheckStride is how many records a task processes between
// cancellation checks — frequent enough that a cancelled dataflow pass
// stops promptly, cheap enough to vanish in the record loop.
const ctxCheckStride = 256

// LocalRunner executes tasks in-process on the calling goroutine —
// the single-node fast path, and the reference the process-boundary
// runners are differentially tested against. The zero value is ready
// to use; it is also what Run uses when Config.Runner is nil.
type LocalRunner struct{}

// RunTask implements Runner.
func (LocalRunner) RunTask(ctx context.Context, t *Task) (*TaskOut, error) {
	return execTask(ctx, t)
}

// execTask runs one task's user code — shared by LocalRunner and the
// worker process, so both sides of the process boundary execute tasks
// identically.
func execTask(ctx context.Context, t *Task) (*TaskOut, error) {
	switch t.Kind {
	case MapTask:
		return execMapTask(ctx, t)
	case ReduceTask:
		return execReduceTask(ctx, t)
	}
	return nil, fmt.Errorf("mapreduce: unknown task kind %d", int(t.Kind))
}

func execMapTask(ctx context.Context, t *Task) (*TaskOut, error) {
	if t.Job.Map == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no Map", t.Job.Name)
	}
	out := &TaskOut{
		Parts:    make([][]KV, t.Partitions),
		Counters: make(map[string]int64),
	}
	emit := func(kv KV) {
		p := Partition(kv.Key, t.Partitions)
		out.Parts[p] = append(out.Parts[p], kv)
	}
	for i, in := range t.Inputs {
		if i%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		out.Counters["map.in"]++
		if err := t.Job.Map(in, emit); err != nil {
			return nil, fmt.Errorf("mapreduce: %s map: %w", t.Job.Name, err)
		}
	}
	if t.Job.Combine != nil {
		for p := range out.Parts {
			combined, err := combine(t.Job.Combine, out.Parts[p])
			if err != nil {
				return nil, fmt.Errorf("mapreduce: %s combine: %w", t.Job.Name, err)
			}
			out.Parts[p] = combined
		}
	}
	for _, p := range out.Parts {
		out.Counters["map.out"] += int64(len(p))
	}
	return out, nil
}

func execReduceTask(ctx context.Context, t *Task) (*TaskOut, error) {
	if t.Job.Reduce == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no Reduce", t.Job.Name)
	}
	out := &TaskOut{Counters: make(map[string]int64)}
	emit := func(kv KV) { out.KVs = append(out.KVs, kv) }
	for i, k := range t.Keys {
		if i%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if err := t.Job.Reduce(k, t.Groups[k], emit); err != nil {
			return nil, fmt.Errorf("mapreduce: %s reduce: %w", t.Job.Name, err)
		}
	}
	return out, nil
}

// FlakyRunner is the fault-injection runner: it wraps another runner
// and simulates worker deaths on chosen dispatch attempts, so tests
// can prove retried runs stay bit-identical and exhausted budgets
// surface cleanly. Not for production use.
type FlakyRunner struct {
	// Inner executes the tasks that survive injection (nil =
	// LocalRunner).
	Inner Runner
	// FailTask decides, per dispatch attempt, whether the simulated
	// worker dies instead of running the task. seq counts every RunTask
	// call across the runner's lifetime (retries included), so a plan
	// like seq == K kills exactly one attempt and the retry proceeds.
	FailTask func(seq int64, t *Task) bool
	// RunFirst, when set, executes the task before failing it and
	// discards the output — the torn-result shape: the worker did the
	// work but its reply never arrived intact.
	RunFirst bool

	seq atomic.Int64
}

// RunTask implements Runner.
func (f *FlakyRunner) RunTask(ctx context.Context, t *Task) (*TaskOut, error) {
	inner := f.Inner
	if inner == nil {
		inner = LocalRunner{}
	}
	seq := f.seq.Add(1) - 1
	if f.FailTask != nil && f.FailTask(seq, t) {
		if f.RunFirst {
			if _, err := inner.RunTask(ctx, t); err != nil {
				return nil, err
			}
		}
		return nil, &WorkerError{Err: fmt.Errorf("flaky: injected worker death (attempt %d, %s task %d)", seq, t.Kind, t.ID)}
	}
	return inner.RunTask(ctx, t)
}

// Attempts reports how many task dispatches the runner has seen.
func (f *FlakyRunner) Attempts() int64 { return f.seq.Load() }

// runTasks dispatches a phase's tasks through the runner: heaviest
// task first (skew-aware — a fat split starts before the thin ones, so
// it never becomes the phase's lonely tail), at most cfg.Workers in
// flight, each task retried on worker failure within the attempt
// budget. Outputs land at each task's own index. The first error is
// returned after every in-flight task settles; a done ctx wins over
// task errors so a cancelled run reports ctx.Err().
func runTasks(ctx context.Context, r Runner, cfg Config, counters *Counters, tasks []*Task) ([]*TaskOut, error) {
	if len(tasks) == 0 {
		return nil, nil
	}
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return tasks[order[a]].weight() > tasks[order[b]].weight()
	})

	outs := make([]*TaskOut, len(tasks))
	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	aborted := func() bool {
		if ctx.Err() != nil {
			return true
		}
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}

	var next atomic.Int64
	next.Store(-1)
	workers := cfg.Workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(order) || aborted() {
					return
				}
				idx := order[i]
				out, err := runWithRetry(ctx, r, cfg, counters, tasks[idx])
				if err != nil {
					fail(err)
					return
				}
				outs[idx] = out
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return outs, nil
}

// runWithRetry is the per-task attempt loop: worker failures (a dead
// process, a torn frame) re-dispatch the task — on a pooled runner, to
// a fresh worker — until the budget runs out; job errors fail
// immediately, since re-running deterministic user code re-fails.
func runWithRetry(ctx context.Context, r Runner, cfg Config, counters *Counters, t *Task) (*TaskOut, error) {
	var lastErr error
	for attempt := 1; attempt <= cfg.MaxAttempts; attempt++ {
		out, err := r.RunTask(ctx, t)
		if err == nil {
			for name, v := range out.Counters {
				counters.Add(name, v)
			}
			return out, nil
		}
		var we *WorkerError
		if !errors.As(err, &we) {
			return nil, err // the job's own failure: deterministic, no retry
		}
		lastErr = err
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt < cfg.MaxAttempts {
			counters.Add("task.retries", 1)
		}
	}
	return nil, fmt.Errorf("%w: %s task %d of %s failed %d attempts: %v",
		ErrRetriesExhausted, t.Kind, t.ID, t.Job.Name, cfg.MaxAttempts, lastErr)
}
