package mapreduce

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// The worker protocol reuses the wal frame idiom — the repo's one way
// of putting structured records on an untrusted byte stream:
//
//	[u32 payload length, little endian]
//	[u32 CRC32C over type byte + payload, little endian]
//	[u8  frame type]
//	[payload]
//
// The CRC covers the type byte, so a flipped tag is detected
// corruption, not a misdispatch. A torn or corrupted frame surfaces as
// ErrFrameCorrupt / io.ErrUnexpectedEOF; the coordinator treats either
// as a dead worker and re-dispatches the task to a fresh one — a
// partial TaskOut can never be accepted because a partial frame never
// decodes.

const (
	frameHeaderSize = 9

	// frameTask carries a coordinator→worker wireTask.
	frameTask byte = 1
	// frameResult carries a worker→coordinator wireResult.
	frameResult byte = 2
	// frameError carries a worker→coordinator job error (the task ran
	// and the job's own code failed — deterministic, not retryable).
	frameError byte = 3
)

// maxFramePayload rejects absurd length fields before allocating. A
// var, not a const, so the torn-frame tests can shrink it.
var maxFramePayload = uint32(1 << 30)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrFrameCorrupt reports a frame whose checksum failed or whose
// length field is implausible — the stream is damaged and the worker
// that produced it cannot be trusted further.
var ErrFrameCorrupt = errors.New("mapreduce: protocol frame corrupt")

// writeFrame appends one frame to w.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if uint32(len(payload)) > maxFramePayload {
		return fmt.Errorf("mapreduce: frame payload %d exceeds cap", len(payload))
	}
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	crc := crc32.Checksum([]byte{typ}, castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	hdr[8] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame. io.EOF means a clean end between frames;
// a short header or truncated payload is io.ErrUnexpectedEOF; a bad
// length or checksum is ErrFrameCorrupt.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, err
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("%w: implausible payload length %d", ErrFrameCorrupt, n)
	}
	want := binary.LittleEndian.Uint32(hdr[4:8])
	typ = hdr[8]
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	crc := crc32.Checksum([]byte{typ}, castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != want {
		return 0, nil, fmt.Errorf("%w: checksum mismatch", ErrFrameCorrupt)
	}
	return typ, payload, nil
}

// wireTask is a Task's wire form: the job travels as its registry
// spec, never as code.
type wireTask struct {
	Job        JobSpec             `json:"job"`
	Kind       string              `json:"kind"`
	ID         int                 `json:"id"`
	Partitions int                 `json:"partitions,omitempty"`
	Inputs     []string            `json:"inputs,omitempty"`
	Keys       []string            `json:"keys,omitempty"`
	Groups     map[string][]string `json:"groups,omitempty"`
}

// wireError carries a worker-side job error back as text.
type wireError struct {
	Msg string `json:"msg"`
}

func encodeTask(t *Task) ([]byte, error) {
	if t.Job.Spec.Name == "" {
		return nil, fmt.Errorf("mapreduce: job %q has no registry spec; closure jobs cannot cross a process boundary", t.Job.Name)
	}
	return json.Marshal(wireTask{
		Job:        t.Job.Spec,
		Kind:       t.Kind.String(),
		ID:         t.ID,
		Partitions: t.Partitions,
		Inputs:     t.Inputs,
		Keys:       t.Keys,
		Groups:     t.Groups,
	})
}

func decodeTask(payload []byte) (*Task, error) {
	var wt wireTask
	if err := json.Unmarshal(payload, &wt); err != nil {
		return nil, fmt.Errorf("mapreduce: decode task: %w", err)
	}
	job, err := NewJob(wt.Job.Name, wt.Job.Params)
	if err != nil {
		return nil, err
	}
	t := &Task{
		Job:        job,
		ID:         wt.ID,
		Partitions: wt.Partitions,
		Inputs:     wt.Inputs,
		Keys:       wt.Keys,
		Groups:     wt.Groups,
	}
	switch wt.Kind {
	case "map":
		t.Kind = MapTask
	case "reduce":
		t.Kind = ReduceTask
	default:
		return nil, fmt.Errorf("mapreduce: decode task: unknown kind %q", wt.Kind)
	}
	return t, nil
}
