// Package mapreduce is a deterministic MapReduce engine with a
// pluggable execution layer. It stands in for the Hadoop cluster the
// paper's blocking and meta-blocking layers run on ([4], [5]): jobs
// are expressed as map / combine / partition / reduce functions, and a
// run is split into a deterministic *plan* — input splits, shuffle
// partitions, the map/reduce task list — executed by a Runner. The
// LocalRunner executes tasks on in-process goroutines (the single-node
// fast path); the ProcRunner ships the same tasks to `minoaner worker`
// subprocesses over a CRC-framed pipe protocol, which forces the
// serialization, skew, and retry design multi-node needs. Output is
// bit-identical across runners and worker counts: partitioning is by
// key hash, groups are value-sorted, reduce keys are sorted, and the
// final output is globally sorted — nothing observable depends on
// scheduling order.
package mapreduce

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// KV is one key–value record flowing between phases.
type KV struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// MapFunc consumes one input record and emits intermediate KVs.
type MapFunc func(input string, emit func(KV)) error

// ReduceFunc consumes one key's grouped values (sorted) and emits
// output KVs. It is also the combiner signature.
type ReduceFunc func(key string, values []string, emit func(KV)) error

// Config tunes job execution.
type Config struct {
	// Workers is the map/reduce parallelism (default 1).
	Workers int
	// Partitions is the number of shuffle partitions
	// (default = Workers).
	Partitions int
	// Runner executes the plan's tasks (default LocalRunner). The plan
	// — splits, partitions, shuffle, final sort — is runner-independent,
	// so swapping runners cannot change the output.
	Runner Runner
	// MaxAttempts is the per-task dispatch budget: a task whose worker
	// dies (*WorkerError) is re-dispatched until it succeeds or the
	// budget is spent (default 3). Job errors never retry.
	MaxAttempts int
	// Totals, when non-nil, additionally accumulates every run's
	// counters — a pipeline-lifetime aggregate across jobs, where
	// Result.Counters is per-run.
	Totals *Counters
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Partitions <= 0 {
		c.Partitions = c.Workers
	}
	if c.Runner == nil {
		c.Runner = LocalRunner{}
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	return c
}

// Job is one MapReduce job.
type Job struct {
	Name string
	Map  MapFunc
	// Combine optionally pre-aggregates each map task's output per key
	// before the shuffle, like a Hadoop combiner. May be nil.
	Combine ReduceFunc
	Reduce  ReduceFunc
	// Spec names the job in the process-boundary registry. Jobs built
	// by NewJob carry it; ad-hoc closure jobs (tests) leave it zero and
	// run only on in-process runners.
	Spec JobSpec
}

// Counters collects named metrics across tasks, like Hadoop counters.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// Add increments a counter.
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string]int64)
	}
	c.m[name] += delta
}

// Get returns a counter's value.
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Result is a completed job's output.
type Result struct {
	// Output holds the reduce output sorted by (Key, Value) —
	// deterministic regardless of worker count.
	Output []KV
	// Counters aggregates the engine's built-in metrics:
	// "map.in", "map.out", "shuffle.keys", "shuffle.bytes",
	// "reduce.out", plus "task.retries" when workers failed.
	Counters *Counters
}

// Run executes the job over the inputs. The engine guarantees that the
// output is identical for any worker count and any Runner: partitioning
// is by key hash, groups are value-sorted before reduction, and the
// final output is globally sorted.
func Run(job Job, inputs []string, cfg Config) (*Result, error) {
	return RunContext(context.Background(), job, inputs, cfg)
}

// RunContext is Run with cancellation: a cancelled context stops
// in-flight tasks at the next record-stride check and the run returns
// ctx.Err().
func RunContext(ctx context.Context, job Job, inputs []string, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if job.Map == nil || job.Reduce == nil {
		return nil, fmt.Errorf("mapreduce: job %q needs Map and Reduce", job.Name)
	}
	counters := &Counters{}

	// --- Plan: map tasks --------------------------------------------
	// Inputs are dealt round-robin into one split per worker. The deal
	// is part of the plan, not the runner: a combiner's output depends
	// on which records share a split, so split composition must not
	// move when the runner changes.
	splits := make([][]string, cfg.Workers)
	for i, in := range inputs {
		w := i % cfg.Workers
		splits[w] = append(splits[w], in)
	}
	var mapTasks []*Task
	for w, split := range splits {
		if len(split) == 0 {
			continue // an empty split emits nothing; skip the dispatch
		}
		mapTasks = append(mapTasks, &Task{
			Job:        job,
			Kind:       MapTask,
			ID:         w,
			Partitions: cfg.Partitions,
			Inputs:     split,
		})
	}

	// --- Map phase ---------------------------------------------------
	mapOuts, err := runTasks(ctx, cfg.Runner, cfg, counters, mapTasks)
	if err != nil {
		return nil, finishErr(cfg, counters, err)
	}

	// --- Shuffle phase ----------------------------------------------
	// Merge every map task's slice for each partition, then group by
	// key with values sorted (determinism). shuffle.bytes counts the
	// key+value bytes crossing the map→reduce boundary — the traffic a
	// distributed shuffle would put on the wire — and is
	// runner-independent, so local and proc runs report comparably.
	groups := make([]map[string][]string, cfg.Partitions)
	for p := 0; p < cfg.Partitions; p++ {
		g := make(map[string][]string)
		var bytes int64
		for _, out := range mapOuts {
			for _, kv := range out.Parts[p] {
				g[kv.Key] = append(g[kv.Key], kv.Value)
				bytes += int64(len(kv.Key) + len(kv.Value))
			}
		}
		for _, vs := range g {
			sort.Strings(vs)
		}
		counters.Add("shuffle.keys", int64(len(g)))
		counters.Add("shuffle.bytes", bytes)
		groups[p] = g
	}

	// --- Plan: reduce tasks -----------------------------------------
	var redTasks []*Task
	for p := 0; p < cfg.Partitions; p++ {
		if len(groups[p]) == 0 {
			continue
		}
		keys := make([]string, 0, len(groups[p]))
		for k := range groups[p] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		redTasks = append(redTasks, &Task{
			Job:    job,
			Kind:   ReduceTask,
			ID:     p,
			Keys:   keys,
			Groups: groups[p],
		})
	}

	// --- Reduce phase ------------------------------------------------
	redOuts, err := runTasks(ctx, cfg.Runner, cfg, counters, redTasks)
	if err != nil {
		return nil, finishErr(cfg, counters, err)
	}

	var out []KV
	for _, r := range redOuts {
		out = append(out, r.KVs...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Value < out[j].Value
	})
	counters.Add("reduce.out", int64(len(out)))
	mergeTotals(cfg, counters)
	return &Result{Output: out, Counters: counters}, nil
}

// mergeTotals folds a run's counters into the config's lifetime
// aggregate, when one is attached.
func mergeTotals(cfg Config, counters *Counters) {
	if cfg.Totals == nil {
		return
	}
	for name, v := range counters.Snapshot() {
		cfg.Totals.Add(name, v)
	}
}

// finishErr merges whatever counters a failed run accumulated (retries
// especially — a run that died of an exhausted budget should still
// show its retry burn in the totals) and returns the error.
func finishErr(cfg Config, counters *Counters, err error) error {
	mergeTotals(cfg, counters)
	return err
}

// combine groups a single map task's emissions by key and runs the
// combiner on each group.
func combine(fn ReduceFunc, kvs []KV) ([]KV, error) {
	byKey := make(map[string][]string)
	for _, kv := range kvs {
		byKey[kv.Key] = append(byKey[kv.Key], kv.Value)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []KV
	emit := func(kv KV) { out = append(out, kv) }
	for _, k := range keys {
		vs := byKey[k]
		sort.Strings(vs)
		if err := fn(k, vs, emit); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Chain runs a sequence of jobs, feeding each job's output keys+values
// to the next as "key\x00value" input records. Decode with SplitRecord.
func Chain(jobs []Job, inputs []string, cfg Config) (*Result, error) {
	return ChainContext(context.Background(), jobs, inputs, cfg)
}

// ChainContext is Chain with cancellation.
func ChainContext(ctx context.Context, jobs []Job, inputs []string, cfg Config) (*Result, error) {
	cur := inputs
	var res *Result
	for _, j := range jobs {
		var err error
		res, err = RunContext(ctx, j, cur, cfg)
		if err != nil {
			return nil, err
		}
		cur = make([]string, len(res.Output))
		for i, kv := range res.Output {
			cur[i] = kv.Key + "\x00" + kv.Value
		}
	}
	if res == nil {
		return nil, fmt.Errorf("mapreduce: empty chain")
	}
	return res, nil
}

// SplitRecord decodes a chained record back into key and value.
func SplitRecord(rec string) (key, value string) {
	for i := 0; i < len(rec); i++ {
		if rec[i] == 0 {
			return rec[:i], rec[i+1:]
		}
	}
	return rec, ""
}
