// Package mapreduce is a deterministic in-process MapReduce engine.
// It stands in for the Hadoop cluster the paper's blocking and
// meta-blocking layers run on ([4], [5]): jobs are expressed as
// map / combine / partition / reduce functions, executed by a
// configurable pool of workers with a real shuffle phase, so the
// parallel algorithms exercise the same dataflow they would on a
// cluster — at laptop scale and bit-for-bit reproducibly.
package mapreduce

import (
	"fmt"
	"sort"
	"sync"
)

// KV is one key–value record flowing between phases.
type KV struct {
	Key   string
	Value string
}

// MapFunc consumes one input record and emits intermediate KVs.
type MapFunc func(input string, emit func(KV)) error

// ReduceFunc consumes one key's grouped values (sorted) and emits
// output KVs. It is also the combiner signature.
type ReduceFunc func(key string, values []string, emit func(KV)) error

// Config tunes job execution.
type Config struct {
	// Workers is the map/reduce parallelism (default 1).
	Workers int
	// Partitions is the number of shuffle partitions
	// (default = Workers).
	Partitions int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Partitions <= 0 {
		c.Partitions = c.Workers
	}
	return c
}

// Job is one MapReduce job.
type Job struct {
	Name string
	Map  MapFunc
	// Combine optionally pre-aggregates each map task's output per key
	// before the shuffle, like a Hadoop combiner. May be nil.
	Combine ReduceFunc
	Reduce  ReduceFunc
}

// Counters collects named metrics across tasks, like Hadoop counters.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// Add increments a counter.
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string]int64)
	}
	c.m[name] += delta
}

// Get returns a counter's value.
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Result is a completed job's output.
type Result struct {
	// Output holds the reduce output sorted by (Key, Value) —
	// deterministic regardless of worker count.
	Output []KV
	// Counters aggregates the engine's built-in metrics:
	// "map.in", "map.out", "shuffle.keys", "reduce.out".
	Counters *Counters
}

// Run executes the job over the inputs. The engine guarantees that the
// output is identical for any worker count: partitioning is by key
// hash, groups are value-sorted before reduction, and the final output
// is globally sorted.
func Run(job Job, inputs []string, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if job.Map == nil || job.Reduce == nil {
		return nil, fmt.Errorf("mapreduce: job %q needs Map and Reduce", job.Name)
	}
	counters := &Counters{}

	// --- Map phase -------------------------------------------------
	// Inputs are dealt round-robin into one split per worker.
	splits := make([][]string, cfg.Workers)
	for i, in := range inputs {
		w := i % cfg.Workers
		splits[w] = append(splits[w], in)
	}
	// Each map task partitions its emissions by key hash.
	type taskOut struct {
		parts [][]KV
		err   error
	}
	outs := make([]taskOut, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			parts := make([][]KV, cfg.Partitions)
			emit := func(kv KV) {
				p := Partition(kv.Key, cfg.Partitions)
				parts[p] = append(parts[p], kv)
			}
			for _, in := range splits[w] {
				counters.Add("map.in", 1)
				if err := job.Map(in, emit); err != nil {
					outs[w].err = fmt.Errorf("mapreduce: %s map: %w", job.Name, err)
					return
				}
			}
			if job.Combine != nil {
				for p := range parts {
					combined, err := combine(job.Combine, parts[p])
					if err != nil {
						outs[w].err = fmt.Errorf("mapreduce: %s combine: %w", job.Name, err)
						return
					}
					parts[p] = combined
				}
			}
			for _, p := range parts {
				counters.Add("map.out", int64(len(p)))
			}
			outs[w].parts = parts
		}(w)
	}
	wg.Wait()
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
	}

	// --- Shuffle phase ---------------------------------------------
	// Merge every map task's slice for each partition, then group by
	// key with values sorted (determinism).
	groups := make([]map[string][]string, cfg.Partitions)
	for p := 0; p < cfg.Partitions; p++ {
		g := make(map[string][]string)
		for w := 0; w < cfg.Workers; w++ {
			if outs[w].parts == nil {
				continue
			}
			for _, kv := range outs[w].parts[p] {
				g[kv.Key] = append(g[kv.Key], kv.Value)
			}
		}
		for _, vs := range g {
			sort.Strings(vs)
		}
		counters.Add("shuffle.keys", int64(len(g)))
		groups[p] = g
	}

	// --- Reduce phase ----------------------------------------------
	type redOut struct {
		kvs []KV
		err error
	}
	reds := make([]redOut, cfg.Partitions)
	sem := make(chan struct{}, cfg.Workers)
	var rwg sync.WaitGroup
	for p := 0; p < cfg.Partitions; p++ {
		rwg.Add(1)
		go func(p int) {
			defer rwg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			keys := make([]string, 0, len(groups[p]))
			for k := range groups[p] {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			emit := func(kv KV) { reds[p].kvs = append(reds[p].kvs, kv) }
			for _, k := range keys {
				if err := job.Reduce(k, groups[p][k], emit); err != nil {
					reds[p].err = fmt.Errorf("mapreduce: %s reduce: %w", job.Name, err)
					return
				}
			}
		}(p)
	}
	rwg.Wait()

	var out []KV
	for _, r := range reds {
		if r.err != nil {
			return nil, r.err
		}
		out = append(out, r.kvs...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].Value < out[j].Value
	})
	counters.Add("reduce.out", int64(len(out)))
	return &Result{Output: out, Counters: counters}, nil
}

// combine groups a single map task's emissions by key and runs the
// combiner on each group.
func combine(fn ReduceFunc, kvs []KV) ([]KV, error) {
	byKey := make(map[string][]string)
	for _, kv := range kvs {
		byKey[kv.Key] = append(byKey[kv.Key], kv.Value)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []KV
	emit := func(kv KV) { out = append(out, kv) }
	for _, k := range keys {
		vs := byKey[k]
		sort.Strings(vs)
		if err := fn(k, vs, emit); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Chain runs a sequence of jobs, feeding each job's output keys+values
// to the next as "key\x00value" input records. Decode with SplitRecord.
func Chain(jobs []Job, inputs []string, cfg Config) (*Result, error) {
	cur := inputs
	var res *Result
	for _, j := range jobs {
		var err error
		res, err = Run(j, cur, cfg)
		if err != nil {
			return nil, err
		}
		cur = make([]string, len(res.Output))
		for i, kv := range res.Output {
			cur[i] = kv.Key + "\x00" + kv.Value
		}
	}
	if res == nil {
		return nil, fmt.Errorf("mapreduce: empty chain")
	}
	return res, nil
}

// SplitRecord decodes a chained record back into key and value.
func SplitRecord(rec string) (key, value string) {
	for i := 0; i < len(rec); i++ {
		if rec[i] == 0 {
			return rec[:i], rec[i+1:]
		}
	}
	return rec, ""
}
