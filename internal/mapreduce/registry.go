package mapreduce

import (
	"fmt"
	"sync"
)

// JobSpec names a registered job plus the parameters its factory needs
// to rebuild it — the only job identity that crosses a process
// boundary. Map/reduce closures can't travel; a worker re-resolves the
// spec through the registry and reconstructs the same functions.
type JobSpec struct {
	// Name is the registry key.
	Name string `json:"name"`
	// Params is the factory's opaque parameter blob (conventionally
	// JSON). It must fully determine the job's behavior: two workers
	// given the same spec must build functionally identical jobs.
	Params string `json:"params,omitempty"`
}

// JobFactory rebuilds a job from its serialized parameters.
type JobFactory func(params string) (Job, error)

var (
	registryMu sync.RWMutex
	registry   = make(map[string]JobFactory)
)

// Register installs a job factory under a name, typically from an
// init func of the package that owns the job (internal/parblock). It
// panics on an empty name or a duplicate — both are programmer errors
// that would otherwise surface as confusing worker-side failures.
func Register(name string, factory JobFactory) {
	if name == "" || factory == nil {
		panic("mapreduce: Register needs a name and a factory")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("mapreduce: job %q registered twice", name))
	}
	registry[name] = factory
}

// NewJob resolves a registered factory and builds the job, stamping
// the spec so the job can cross process boundaries. Drivers build
// their jobs through this even for local runs — the same construction
// path on both sides of the pipe is what makes the differential tests
// meaningful.
func NewJob(name, params string) (Job, error) {
	registryMu.RLock()
	factory := registry[name]
	registryMu.RUnlock()
	if factory == nil {
		return Job{}, fmt.Errorf("mapreduce: job %q not registered", name)
	}
	job, err := factory(params)
	if err != nil {
		return Job{}, fmt.Errorf("mapreduce: job %q factory: %w", name, err)
	}
	job.Spec = JobSpec{Name: name, Params: params}
	if job.Name == "" {
		job.Name = name
	}
	return job, nil
}
