package mapreduce

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestMain doubles this test binary as a worker executable: a spawned
// copy (EnvWorkerProtocol set) serves the task protocol instead of
// running the suite, and the parent points EnvWorkerCmd at itself so
// every ProcRunner below spawns workers that loop back here.
func TestMain(m *testing.M) {
	InitTestWorker()
	os.Exit(m.Run())
}

// The registry entries the proc tests ship across the process
// boundary. Registered at init so a spawned worker (whose TestMain
// runs after package init) can resolve them too.
func init() {
	Register("test-wordcount", func(string) (Job, error) {
		return wordCount(), nil
	})
	Register("test-explode", func(string) (Job, error) {
		return Job{
			Name: "test-explode",
			Map: func(input string, emit func(KV)) error {
				return errors.New("exploded deterministically")
			},
			Reduce: sumReducer,
		}, nil
	})
}

// procInputs is a corpus big enough that every worker of a multi-task
// run sees a split and every partition is non-empty.
func procInputs() []string {
	var inputs []string
	for i := 0; i < 120; i++ {
		inputs = append(inputs, fmt.Sprintf("w%d shared w%d tail%d", i%13, i%5, i%29))
	}
	return inputs
}

// registeredWordCount resolves the test job through the registry — the
// same construction path the real drivers use, so the Spec travels.
func registeredWordCount(t *testing.T) Job {
	t.Helper()
	job, err := NewJob("test-wordcount", "")
	if err != nil {
		t.Fatal(err)
	}
	return job
}

// TestProcRunnerBitIdentical is the engine-level differential: the same
// plan executed on worker subprocesses must produce byte-identical
// output and identical task-level counters to the in-process runner.
func TestProcRunnerBitIdentical(t *testing.T) {
	job := registeredWordCount(t)
	inputs := procInputs()
	local, err := Run(job, inputs, Config{Workers: 3, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}

	pr := NewProcRunner()
	defer pr.Close()
	proc, err := Run(job, inputs, Config{Workers: 3, Partitions: 4, Runner: pr})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(proc.Output, local.Output) {
		t.Errorf("proc output differs from local:\nproc  %v\nlocal %v", proc.Output, local.Output)
	}
	for _, c := range []string{"map.in", "map.out", "shuffle.keys", "shuffle.bytes", "reduce.out"} {
		if got, want := proc.Counters.Get(c), local.Counters.Get(c); got != want {
			t.Errorf("counter %s: proc %d, local %d", c, got, want)
		}
	}
	if pr.Spawned() == 0 {
		t.Error("no worker processes spawned")
	}
}

// TestProcRunnerMidTaskKill SIGKILLs a worker after a task is sent and
// before its result is read — a real process death mid-task. The
// coordinator must retry on a fresh worker and the output must not
// change.
func TestProcRunnerMidTaskKill(t *testing.T) {
	job := registeredWordCount(t)
	inputs := procInputs()
	local, err := Run(job, inputs, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	pr := NewProcRunner()
	defer pr.Close()
	pr.KillNextTask()
	proc, err := Run(job, inputs, Config{Workers: 2, Runner: pr})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(proc.Output, local.Output) {
		t.Error("output changed after mid-task worker kill")
	}
	if proc.Counters.Get("task.retries") == 0 {
		t.Error("mid-task kill did not register a retry")
	}
}

// TestProcRunnerJobErrorFailsFast: a deterministic job failure must
// cross the pipe as an error frame and fail the run without burning
// the retry budget — the worker is healthy, the user code is not.
func TestProcRunnerJobErrorFailsFast(t *testing.T) {
	job, err := NewJob("test-explode", "")
	if err != nil {
		t.Fatal(err)
	}
	pr := NewProcRunner()
	defer pr.Close()
	res, err := Run(job, []string{"a", "b"}, Config{Workers: 1, Runner: pr})
	if err == nil || !strings.Contains(err.Error(), "exploded deterministically") {
		t.Fatalf("res=%v err=%v", res, err)
	}
	if errors.Is(err, ErrRetriesExhausted) {
		t.Error("deterministic job error consumed the retry budget")
	}
}

// TestProcRunnerRejectsClosureJobs: a job without a registry spec has
// no wire form; dispatching it to a subprocess must fail loudly, not
// silently run something else.
func TestProcRunnerRejectsClosureJobs(t *testing.T) {
	pr := NewProcRunner()
	defer pr.Close()
	_, err := Run(wordCount(), []string{"a"}, Config{Workers: 1, Runner: pr})
	if err == nil || !strings.Contains(err.Error(), "cannot cross a process boundary") {
		t.Fatalf("err=%v", err)
	}
}

// TestProcRunnerTornReplyRetriesFresh arms the torn-worker latch: the
// first spawned worker answers its first task with a frame cut off
// mid-payload and exits. The coordinator must detect the damage via
// the CRC framing, discard the partial result, and re-run the task on
// a fresh worker — never accept a partial TaskOut.
func TestProcRunnerTornReplyRetriesFresh(t *testing.T) {
	latch := filepath.Join(t.TempDir(), "torn-latch")
	t.Setenv(envTornLatch, latch)

	job := registeredWordCount(t)
	inputs := procInputs()
	t.Setenv(envTornLatch, "") // local reference run spawns nothing, but keep it clean
	local, err := Run(job, inputs, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	t.Setenv(envTornLatch, latch)
	pr := NewProcRunner()
	defer pr.Close()
	proc, err := Run(job, inputs, Config{Workers: 2, Runner: pr})
	if err != nil {
		t.Fatal(err)
	}
	if _, statErr := os.Stat(latch); statErr != nil {
		t.Fatalf("latch never created — the torn worker did not run: %v", statErr)
	}
	if !reflect.DeepEqual(proc.Output, local.Output) {
		t.Error("output changed after a torn worker reply")
	}
	if proc.Counters.Get("task.retries") == 0 {
		t.Error("torn reply did not register a retry")
	}
	if pr.Spawned() < 2 {
		t.Errorf("spawned %d workers; the retry must use a fresh one", pr.Spawned())
	}
}

// TestFlakyRunnerEveryTaskIndex kills the simulated worker at every
// dispatch index in turn: whichever task dies, the retried run's
// output must stay bit-identical, and each single fault must cost
// exactly one retry.
func TestFlakyRunnerEveryTaskIndex(t *testing.T) {
	job := wordCount()
	inputs := procInputs()
	cfg := func(r Runner) Config { return Config{Workers: 4, Partitions: 3, Runner: r} }

	// A clean counting pass sizes the sweep: with no faults, attempts ==
	// dispatched tasks.
	counting := &FlakyRunner{}
	base, err := Run(job, inputs, cfg(counting))
	if err != nil {
		t.Fatal(err)
	}
	attempts := counting.Attempts()
	if attempts == 0 {
		t.Fatal("no tasks dispatched")
	}

	for k := int64(0); k < attempts; k++ {
		for _, runFirst := range []bool{false, true} {
			fr := &FlakyRunner{
				FailTask: func(seq int64, _ *Task) bool { return seq == k },
				RunFirst: runFirst,
			}
			res, err := Run(job, inputs, cfg(fr))
			if err != nil {
				t.Fatalf("kill at index %d (runFirst=%v): %v", k, runFirst, err)
			}
			if !reflect.DeepEqual(res.Output, base.Output) {
				t.Fatalf("kill at index %d (runFirst=%v): output diverged", k, runFirst)
			}
			if got := res.Counters.Get("task.retries"); got != 1 {
				t.Fatalf("kill at index %d: task.retries=%d, want 1", k, got)
			}
		}
	}
}

// TestFlakyRunnerExhaustsBudget: a task whose worker dies on every
// attempt must surface the typed exhaustion error — never hang, never
// mislabel it a job failure.
func TestFlakyRunnerExhaustsBudget(t *testing.T) {
	fr := &FlakyRunner{FailTask: func(int64, *Task) bool { return true }}
	done := make(chan error, 1)
	go func() {
		_, err := Run(wordCount(), []string{"a b", "c"}, Config{Workers: 2, MaxAttempts: 4, Runner: fr})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrRetriesExhausted) {
			t.Fatalf("err=%v, want ErrRetriesExhausted", err)
		}
		if !strings.Contains(err.Error(), "4 attempts") {
			t.Errorf("err=%v does not name the budget", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("exhausted retry budget hung instead of failing")
	}
}

// TestRunContextCancelled: a cancelled context must stop the run and
// surface ctx.Err(), on both runners.
func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	job := registeredWordCount(t)
	if _, err := RunContext(ctx, job, procInputs(), Config{Workers: 2}); !errors.Is(err, context.Canceled) {
		t.Errorf("local: err=%v, want context.Canceled", err)
	}
	pr := NewProcRunner()
	defer pr.Close()
	if _, err := RunContext(ctx, job, procInputs(), Config{Workers: 2, Runner: pr}); !errors.Is(err, context.Canceled) {
		t.Errorf("proc: err=%v, want context.Canceled", err)
	}
}

// TestFrameTornAtEveryOffset truncates a valid frame at every byte
// offset: the reader must answer clean io.EOF only at a frame
// boundary, io.ErrUnexpectedEOF everywhere else, and never hand back a
// payload.
func TestFrameTornAtEveryOffset(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte(`{"kvs":[{"k":"alpha","v":"1"},{"k":"beta","v":"2"}]}`)
	if err := writeFrame(&buf, frameResult, payload); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	for cut := 0; cut < len(frame); cut++ {
		typ, got, err := readFrame(bytes.NewReader(frame[:cut]))
		if err == nil {
			t.Fatalf("cut=%d: accepted a torn frame (type %d, %d bytes)", cut, typ, len(got))
		}
		if cut == 0 {
			if !errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("cut=0: err=%v, want clean io.EOF", err)
			}
			continue
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut=%d: err=%v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
	// The intact frame still reads back, so the sweep tested the codec,
	// not a broken fixture.
	typ, got, err := readFrame(bytes.NewReader(frame))
	if err != nil || typ != frameResult || !bytes.Equal(got, payload) {
		t.Fatalf("intact frame: typ=%d err=%v", typ, err)
	}
}

// TestFrameCorruptAtEveryByte flips every byte of a valid frame in
// turn: the CRC (which covers the type byte) must reject each mutation
// — corruption is detected, never decoded.
func TestFrameCorruptAtEveryByte(t *testing.T) {
	// Shrink the plausibility cap so a corrupted length field is caught
	// by arithmetic, not by attempting a giant allocation.
	defer func(old uint32) { maxFramePayload = old }(maxFramePayload)
	maxFramePayload = 1 << 16

	var buf bytes.Buffer
	payload := []byte(`{"kvs":[{"k":"alpha","v":"1"}]}`)
	if err := writeFrame(&buf, frameResult, payload); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	for i := 0; i < len(frame); i++ {
		for _, flip := range []byte{0x01, 0x80} {
			bad := bytes.Clone(frame)
			bad[i] ^= flip
			typ, got, err := readFrame(bytes.NewReader(bad))
			if err == nil {
				t.Fatalf("byte %d ^ %#x: accepted a corrupt frame (type %d, %d bytes)", i, flip, typ, len(got))
			}
			// A corrupted length may read short (unexpected EOF) or long
			// (implausible / checksum); all must reject, none may decode.
			if !errors.Is(err, ErrFrameCorrupt) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("byte %d ^ %#x: unexpected error class %v", i, flip, err)
			}
		}
	}
}

// TestWorkerProtocolRoundTrip drives WorkerMain directly over in-memory
// pipes — the protocol without a subprocess — and checks a task round
// trip plus clean shutdown on EOF.
func TestWorkerProtocolRoundTrip(t *testing.T) {
	job := registeredWordCount(t)
	task := &Task{Job: job, Kind: MapTask, ID: 0, Partitions: 2, Inputs: []string{"a b a"}}
	payload, err := encodeTask(task)
	if err != nil {
		t.Fatal(err)
	}
	var in, out bytes.Buffer
	if err := writeFrame(&in, frameTask, payload); err != nil {
		t.Fatal(err)
	}
	if err := WorkerMain(&in, &out); err != nil {
		t.Fatal(err)
	}
	typ, reply, err := readFrame(&out)
	if err != nil || typ != frameResult {
		t.Fatalf("typ=%d err=%v", typ, err)
	}
	if len(reply) == 0 {
		t.Fatal("empty result payload")
	}
	// The worker's reply must equal running the task locally.
	want, err := execTask(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	var got TaskOut
	if err := json.Unmarshal(reply, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Parts, want.Parts) {
		t.Errorf("worker parts %v, local %v", got.Parts, want.Parts)
	}
}
