package mapreduce

import (
	"errors"
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

// wordCount is the canonical test job.
func wordCount() Job {
	return Job{
		Name: "wordcount",
		Map: func(input string, emit func(KV)) error {
			for _, w := range strings.Fields(input) {
				emit(KV{Key: w, Value: "1"})
			}
			return nil
		},
		Combine: sumReducer,
		Reduce:  sumReducer,
	}
}

func sumReducer(key string, values []string, emit func(KV)) error {
	total := 0
	for _, v := range values {
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("bad count %q: %w", v, err)
		}
		total += n
	}
	emit(KV{Key: key, Value: strconv.Itoa(total)})
	return nil
}

func TestWordCount(t *testing.T) {
	inputs := []string{"the quick brown fox", "the lazy dog", "the fox"}
	res, err := Run(wordCount(), inputs, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []KV{
		{"brown", "1"}, {"dog", "1"}, {"fox", "2"},
		{"lazy", "1"}, {"quick", "1"}, {"the", "3"},
	}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("output=%v\nwant %v", res.Output, want)
	}
	if res.Counters.Get("map.in") != 3 {
		t.Errorf("map.in=%d", res.Counters.Get("map.in"))
	}
	if res.Counters.Get("reduce.out") != 6 {
		t.Errorf("reduce.out=%d", res.Counters.Get("reduce.out"))
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	var inputs []string
	for i := 0; i < 200; i++ {
		inputs = append(inputs, fmt.Sprintf("w%d shared w%d", i%17, i%5))
	}
	var base []KV
	for _, workers := range []int{1, 2, 4, 8} {
		res, err := Run(wordCount(), inputs, Config{Workers: workers, Partitions: workers * 2})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if base == nil {
			base = res.Output
			continue
		}
		if !reflect.DeepEqual(res.Output, base) {
			t.Errorf("workers=%d output differs from workers=1", workers)
		}
	}
}

func TestCombinerReducesShuffleVolume(t *testing.T) {
	inputs := make([]string, 50)
	for i := range inputs {
		inputs[i] = "same same same"
	}
	with, err := Run(wordCount(), inputs, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	noCombine := wordCount()
	noCombine.Combine = nil
	without, err := Run(noCombine, inputs, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(with.Output, without.Output) {
		t.Error("combiner changed the result")
	}
	if with.Counters.Get("map.out") >= without.Counters.Get("map.out") {
		t.Errorf("combiner did not shrink map output: %d vs %d",
			with.Counters.Get("map.out"), without.Counters.Get("map.out"))
	}
}

func TestMapError(t *testing.T) {
	job := Job{
		Name: "boom",
		Map: func(input string, emit func(KV)) error {
			if input == "bad" {
				return errors.New("exploded")
			}
			emit(KV{Key: input, Value: "1"})
			return nil
		},
		Reduce: sumReducer,
	}
	_, err := Run(job, []string{"ok", "bad"}, Config{Workers: 2})
	if err == nil || !strings.Contains(err.Error(), "exploded") {
		t.Errorf("err=%v", err)
	}
}

func TestReduceError(t *testing.T) {
	job := wordCount()
	job.Combine = nil
	job.Reduce = func(key string, values []string, emit func(KV)) error {
		return errors.New("reduce failed")
	}
	if _, err := Run(job, []string{"a"}, Config{}); err == nil {
		t.Error("reduce error swallowed")
	}
}

func TestMissingFuncs(t *testing.T) {
	if _, err := Run(Job{Name: "nil"}, nil, Config{}); err == nil {
		t.Error("nil Map/Reduce accepted")
	}
}

func TestEmptyInputs(t *testing.T) {
	res, err := Run(wordCount(), nil, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 0 {
		t.Errorf("output=%v", res.Output)
	}
}

func TestChain(t *testing.T) {
	// Job 1: word count. Job 2: bucket words by their count.
	invert := Job{
		Name: "invert",
		Map: func(input string, emit func(KV)) error {
			word, count := SplitRecord(input)
			emit(KV{Key: count, Value: word})
			return nil
		},
		Reduce: func(key string, values []string, emit func(KV)) error {
			emit(KV{Key: key, Value: strings.Join(values, ",")})
			return nil
		},
	}
	res, err := Chain([]Job{wordCount(), invert}, []string{"a b a", "c b a"}, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []KV{{"1", "c"}, {"2", "b"}, {"3", "a"}}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("chain output=%v, want %v", res.Output, want)
	}
	if _, err := Chain(nil, nil, Config{}); err == nil {
		t.Error("empty chain accepted")
	}
}

func TestSplitRecord(t *testing.T) {
	k, v := SplitRecord("key\x00value")
	if k != "key" || v != "value" {
		t.Errorf("got %q %q", k, v)
	}
	k, v = SplitRecord("noseparator")
	if k != "noseparator" || v != "" {
		t.Errorf("got %q %q", k, v)
	}
}

func TestCountersConcurrency(t *testing.T) {
	job := Job{
		Name: "counting",
		Map: func(input string, emit func(KV)) error {
			emit(KV{Key: input, Value: "1"})
			return nil
		},
		Reduce: sumReducer,
	}
	inputs := make([]string, 1000)
	for i := range inputs {
		inputs[i] = fmt.Sprintf("k%d", i%7)
	}
	res, err := Run(job, inputs, Config{Workers: 8, Partitions: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Get("map.in") != 1000 {
		t.Errorf("map.in=%d", res.Counters.Get("map.in"))
	}
	snap := res.Counters.Snapshot()
	if snap["map.in"] != 1000 {
		t.Errorf("snapshot=%v", snap)
	}
}

// Property: word counting via MapReduce agrees with a sequential count
// for any inputs and any worker count.
func TestMatchesSequential(t *testing.T) {
	f := func(lines []string, w8 uint8) bool {
		workers := int(w8%8) + 1
		ref := map[string]int{}
		for _, l := range lines {
			for _, word := range strings.Fields(l) {
				ref[word]++
			}
		}
		res, err := Run(wordCount(), lines, Config{Workers: workers})
		if err != nil {
			return false
		}
		if len(res.Output) != len(ref) {
			return false
		}
		for _, kv := range res.Output {
			n, err := strconv.Atoi(kv.Value)
			if err != nil || ref[kv.Key] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
