package mapreduce

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// WorkerMain serves the worker side of the task protocol: read a task
// frame, resolve its job from the registry, execute, reply with a
// result or error frame, repeat until the coordinator closes the pipe
// (clean EOF → nil). `minoaner worker` calls this with stdin/stdout;
// test binaries call it through InitTestWorker.
//
// A worker is stateless between tasks — every task frame is
// self-contained — which is what makes "retry on a fresh worker"
// sound: the replacement needs nothing from the process that died.
func WorkerMain(r io.Reader, w io.Writer) error {
	in := bufio.NewReader(r)
	out := bufio.NewWriter(w)
	for {
		typ, payload, err := readFrame(in)
		if errors.Is(err, io.EOF) {
			return nil // coordinator closed the pipe: done
		}
		if err != nil {
			return fmt.Errorf("mapreduce worker: read task: %w", err)
		}
		if typ != frameTask {
			return fmt.Errorf("mapreduce worker: unexpected frame type %d", typ)
		}
		reply, replyType := runWireTask(payload)
		if err := writeFrame(out, replyType, reply); err != nil {
			return fmt.Errorf("mapreduce worker: write reply: %w", err)
		}
		if err := out.Flush(); err != nil {
			return fmt.Errorf("mapreduce worker: write reply: %w", err)
		}
	}
}

// runWireTask decodes and executes one task, returning the reply
// payload and its frame type. Job and registry failures become error
// frames — the worker stays healthy; only transport problems kill it.
func runWireTask(payload []byte) ([]byte, byte) {
	t, err := decodeTask(payload)
	if err != nil {
		return errorFrame(err)
	}
	out, err := execTask(context.Background(), t)
	if err != nil {
		return errorFrame(err)
	}
	reply, err := json.Marshal(out)
	if err != nil {
		return errorFrame(fmt.Errorf("mapreduce worker: encode result: %w", err))
	}
	return reply, frameResult
}

func errorFrame(err error) ([]byte, byte) {
	reply, merr := json.Marshal(wireError{Msg: err.Error()})
	if merr != nil {
		reply = []byte(`{"msg":"mapreduce worker: unencodable error"}`)
	}
	return reply, frameError
}

// envTornLatch names a latch file for the fresh-worker retry test: the
// first worker to create it (O_EXCL) reads one task and replies with a
// deliberately torn frame, then exits; every later worker — the fresh
// one the coordinator retries on — behaves normally. Test-binary use
// only, via InitTestWorker.
const envTornLatch = "MINOANER_MR_TORN_LATCH"

// InitTestWorker makes a test binary usable as a worker executable.
// Call it first thing in TestMain:
//
//	func TestMain(m *testing.M) {
//		mapreduce.InitTestWorker()
//		os.Exit(m.Run())
//	}
//
// If the process was spawned as a protocol worker (EnvWorkerProtocol
// set), it serves the protocol and exits instead of running tests.
// Otherwise it points EnvWorkerCmd at this same binary, so any
// ProcRunner the tests construct spawns copies of the test binary —
// which loop right back here and become workers. Every test package
// that can reach a proc-runner pipeline needs this hook; without it, a
// spawned worker would recursively run the test suite.
func InitTestWorker() {
	if os.Getenv(EnvWorkerProtocol) == "" {
		exe, err := os.Executable()
		if err != nil {
			panic("mapreduce: InitTestWorker: " + err.Error())
		}
		os.Setenv(EnvWorkerCmd, exe)
		return
	}
	if latch := os.Getenv(envTornLatch); latch != "" {
		if f, err := os.OpenFile(latch, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644); err == nil {
			f.Close()
			serveTornWorker(os.Stdin, os.Stdout)
			os.Exit(0)
		}
	}
	if err := WorkerMain(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// serveTornWorker reads one task, does the work, then writes a reply
// frame whose tail is cut off mid-payload and exits — the torn-result
// fault: the work happened, but the coordinator must detect the
// damage, discard the partial reply, and re-run on a fresh worker.
func serveTornWorker(r io.Reader, w io.Writer) {
	in := bufio.NewReader(r)
	typ, payload, err := readFrame(in)
	if err != nil || typ != frameTask {
		return
	}
	reply, replyType := runWireTask(payload)
	var buf []byte
	{
		bw := &sliceWriter{}
		if err := writeFrame(bw, replyType, reply); err != nil {
			return
		}
		buf = bw.b
	}
	cut := len(buf) - len(buf)/3 // drop the last third: header intact, payload torn
	if cut <= frameHeaderSize {
		cut = frameHeaderSize
	}
	w.Write(buf[:cut])
}

type sliceWriter struct{ b []byte }

func (s *sliceWriter) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}
