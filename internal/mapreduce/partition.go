package mapreduce

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// Partition assigns a shuffle key to one of n partitions by FNV-1a
// hash — the engine's default partitioner, exported so other parallel
// realizations (and tests) can route keys exactly the way the engine
// does.
func Partition(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// Range is a half-open index interval [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// Len returns the number of indices in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// ForEach runs fn(i) for every i in [0, n), distributing indices
// dynamically over workers goroutines (a shared atomic counter hands
// out the next index). Use it when per-index cost is uneven — skewed
// partitions, merge trees — and static Ranges sharding would leave
// workers idle. fn must be safe to call concurrently for distinct i.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Ranges splits [0, n) into at most parts contiguous, near-equal
// ranges, omitting empty ones. Contiguity is what makes range sharding
// order-preserving: concatenating per-range results in range order
// replays the sequential iteration order. The shared-memory engine
// (internal/parmeta) shards blocks, edges, and nodes with it.
func Ranges(n, parts int) []Range {
	if n <= 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([]Range, 0, parts)
	for i := 0; i < parts; i++ {
		r := Range{Lo: i * n / parts, Hi: (i + 1) * n / parts}
		if r.Lo < r.Hi {
			out = append(out, r)
		}
	}
	return out
}
