package mapreduce

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"
)

// EnvWorkerCmd overrides the worker executable the ProcRunner spawns.
// Tests set it to their own test binary (whose TestMain serves the
// worker protocol); unset, the runner re-executes its own binary with
// the "worker" argument.
const EnvWorkerCmd = "MINOANER_MR_WORKER_CMD"

// EnvWorkerProtocol marks a spawned process as a protocol worker. The
// real binary dispatches on its "worker" argument; test binaries —
// which own their argv — intercept on this env before flag parsing
// (see InitTestWorker).
const EnvWorkerProtocol = "MINOANER_MR_PROTOCOL"

// defaultIdleTTL is how long a pooled worker may sit idle before its
// process is reaped. Long enough that a busy pipeline reuses workers
// across dataflow passes; short enough that an abandoned runner does
// not hold processes forever.
const defaultIdleTTL = 10 * time.Second

// ProcRunner executes tasks in `minoaner worker` subprocesses: each
// task is framed onto a worker's stdin and its result read back from
// stdout, with workers pooled and reused across tasks. Any transport
// failure — the process died, a frame was torn or failed its CRC —
// destroys that worker and surfaces as a *WorkerError, so the
// coordinator re-dispatches the task to a fresh process. The pool is
// safe for concurrent RunTask calls; Close reaps the idle processes
// (in-flight workers are reaped as they finish).
type ProcRunner struct {
	// IdleTTL overrides how long an idle pooled worker lives (default
	// 10s). Set before first use.
	IdleTTL time.Duration

	mu     sync.Mutex
	idle   []*workerProc
	closed bool

	spawned  atomic.Int64
	live     atomic.Int64
	killNext atomic.Bool
}

// NewProcRunner returns a ready pool. Workers are spawned lazily, on
// demand, up to the coordinator's in-flight task cap.
func NewProcRunner() *ProcRunner { return &ProcRunner{} }

// Workers reports the number of live worker processes.
func (r *ProcRunner) Workers() int64 { return r.live.Load() }

// Spawned reports the cumulative number of worker processes ever
// started — monotone, so gauges built on it are stable against idle
// reaping.
func (r *ProcRunner) Spawned() int64 { return r.spawned.Load() }

// KillNextTask arms a one-shot fault: the next dispatched task's
// worker is SIGKILLed right after the task is sent and before its
// result is read — a real mid-task process death, used by the
// differential kill tests.
func (r *ProcRunner) KillNextTask() { r.killNext.Store(true) }

// Close reaps the idle workers and marks the pool closed; workers
// still running a task are reaped when it finishes.
func (r *ProcRunner) Close() error {
	r.mu.Lock()
	idle := r.idle
	r.idle = nil
	r.closed = true
	r.mu.Unlock()
	for _, w := range idle {
		w.stopReap()
		r.destroy(w)
	}
	return nil
}

// RunTask implements Runner.
func (r *ProcRunner) RunTask(ctx context.Context, t *Task) (*TaskOut, error) {
	payload, err := encodeTask(t)
	if err != nil {
		return nil, err // a plan-level defect (unregistered job): not retryable
	}
	w, err := r.checkout()
	if err != nil {
		return nil, &WorkerError{Err: err}
	}
	out, jobErr, err := r.roundTrip(ctx, w, payload)
	if err != nil {
		r.destroy(w)
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, &WorkerError{Err: err}
	}
	r.checkin(w)
	if jobErr != nil {
		return nil, jobErr
	}
	return out, nil
}

// roundTrip sends one task and reads its reply. The three returns
// separate the job's own failure (jobErr: the worker is healthy, the
// user code failed — fail fast) from transport failure (err: the
// worker is gone or lying — destroy and retry).
func (r *ProcRunner) roundTrip(ctx context.Context, w *workerProc, payload []byte) (out *TaskOut, jobErr, err error) {
	// A cancelled context kills the worker so a long-running task
	// cannot outlive the run that dispatched it.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			w.kill()
		case <-watchDone:
		}
	}()

	if err := writeFrame(w.in, frameTask, payload); err != nil {
		return nil, nil, fmt.Errorf("send task: %w", err)
	}
	if err := w.in.Flush(); err != nil {
		return nil, nil, fmt.Errorf("send task: %w", err)
	}
	if r.killNext.CompareAndSwap(true, false) {
		w.kill() // the armed mid-task fault: task sent, result never arrives
	}
	typ, reply, err := readFrame(w.out)
	if err != nil {
		return nil, nil, fmt.Errorf("read result: %w", err)
	}
	switch typ {
	case frameResult:
		var to TaskOut
		if err := json.Unmarshal(reply, &to); err != nil {
			return nil, nil, fmt.Errorf("decode result: %w", err)
		}
		if to.Counters == nil {
			to.Counters = make(map[string]int64)
		}
		return &to, nil, nil
	case frameError:
		var we wireError
		if err := json.Unmarshal(reply, &we); err != nil {
			return nil, nil, fmt.Errorf("decode error frame: %w", err)
		}
		return nil, errors.New(we.Msg), nil
	}
	return nil, nil, fmt.Errorf("%w: unexpected frame type %d", ErrFrameCorrupt, typ)
}

// checkout hands back an idle worker or spawns a fresh one.
func (r *ProcRunner) checkout() (*workerProc, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, errors.New("mapreduce: ProcRunner is closed")
	}
	if n := len(r.idle); n > 0 {
		w := r.idle[n-1]
		r.idle = r.idle[:n-1]
		r.mu.Unlock()
		w.stopReap()
		return w, nil
	}
	r.mu.Unlock()
	return r.spawn()
}

// checkin returns a healthy worker to the pool and arms its idle
// reaper.
func (r *ProcRunner) checkin(w *workerProc) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		r.destroy(w)
		return
	}
	r.idle = append(r.idle, w)
	ttl := r.IdleTTL
	r.mu.Unlock()
	if ttl <= 0 {
		ttl = defaultIdleTTL
	}
	w.reap = time.AfterFunc(ttl, func() { r.reapIdle(w) })
}

// reapIdle removes a worker from the idle pool (if it is still there)
// and destroys its process.
func (r *ProcRunner) reapIdle(w *workerProc) {
	r.mu.Lock()
	found := false
	for i, iw := range r.idle {
		if iw == w {
			r.idle = append(r.idle[:i], r.idle[i+1:]...)
			found = true
			break
		}
	}
	r.mu.Unlock()
	if found {
		r.destroy(w)
	}
}

// spawn starts one worker process. The worker serves tasks off its
// stdin until it reads EOF — so if this process dies, every worker
// sees its pipe close and exits on its own.
func (r *ProcRunner) spawn() (*workerProc, error) {
	path := os.Getenv(EnvWorkerCmd)
	var args []string
	if path == "" {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("mapreduce: resolve worker executable: %w", err)
		}
		path = exe
	}
	args = append(args, "worker")
	cmd := exec.Command(path, args...)
	cmd.Env = append(os.Environ(), EnvWorkerProtocol+"=1")
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("mapreduce: spawn worker: %w", err)
	}
	r.spawned.Add(1)
	r.live.Add(1)
	return &workerProc{
		cmd: cmd,
		in:  bufio.NewWriter(stdin),
		out: bufio.NewReader(stdout),
		cls: stdin,
	}, nil
}

// destroy kills a worker's process and reaps it.
func (r *ProcRunner) destroy(w *workerProc) {
	w.kill()
	w.cls.Close()
	_ = w.cmd.Wait()
	r.live.Add(-1)
}

// workerProc is one pooled worker subprocess.
type workerProc struct {
	cmd  *exec.Cmd
	in   *bufio.Writer
	out  *bufio.Reader
	cls  io.Closer
	reap *time.Timer

	killOnce sync.Once
}

func (w *workerProc) kill() {
	w.killOnce.Do(func() {
		if w.cmd.Process != nil {
			_ = w.cmd.Process.Kill()
		}
	})
}

func (w *workerProc) stopReap() {
	if w.reap != nil {
		w.reap.Stop()
		w.reap = nil
	}
}
