// Package datagen synthesizes Web-of-Data workloads with exact ground
// truth, standing in for the real LOD cloud (DBpedia, GeoNames, BTC)
// used in the paper's companion evaluations.
//
// The generator models what the Minoan ER algorithms actually observe:
//
//   - Real-world entities with canonical name-token sets drawn from a
//     Zipfian vocabulary (popular tokens collide across entities, as on
//     the Web), typed, and linked into an entity relationship graph.
//   - Knowledge bases that each describe a subset of entities with
//     KB-local predicates (semantic diversity), KB-local URI styles
//     (no shared naming), and a controllable token-retention rate:
//     "center" KBs keep most canonical tokens (highly similar
//     descriptions), "periphery" KBs keep few (somehow similar).
//   - Exact equivalence classes for evaluation, and optional
//     owl:sameAs dumps for loader testing.
//
// Everything is driven by an explicit seed: the same Config always
// yields bit-identical output.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/kb"
	"repro/internal/rdf"
)

// Profile tunes how faithfully a KB copies an entity's canonical
// evidence — the highly-similar vs somehow-similar axis of the paper.
type Profile struct {
	// TokenKeep is the probability each canonical name token survives
	// into the KB's description of the entity.
	TokenKeep float64
	// ExtraTokens is the expected number of random noise tokens added
	// to the description's values.
	ExtraTokens float64
	// AttrsPerEntity is how many literal attributes each description
	// gets (name attributes plus this many auxiliary values).
	AttrsPerEntity int
	// LinkKeep is the probability each entity-graph edge appears as an
	// object property in this KB (when both endpoints are covered).
	LinkKeep float64
}

// Center returns the profile of a densely interlinked central-LOD KB:
// descriptions share most of their tokens with their duplicates.
func Center() Profile {
	return Profile{TokenKeep: 0.9, ExtraTokens: 1, AttrsPerEntity: 3, LinkKeep: 0.9}
}

// Periphery returns the profile of a sparsely linked peripheral KB:
// descriptions of the same entity share few tokens, so token blocking
// alone often misses them and neighbor evidence must recover them.
func Periphery() Profile {
	return Profile{TokenKeep: 0.35, ExtraTokens: 3, AttrsPerEntity: 2, LinkKeep: 0.7}
}

// KBConfig describes one knowledge base to synthesize.
type KBConfig struct {
	Name string
	// Coverage is the fraction of real-world entities this KB describes.
	Coverage float64
	Profile  Profile
}

// Config drives World generation.
type Config struct {
	Seed int64
	// NumEntities is how many real-world entities exist.
	NumEntities int
	// KBs lists the knowledge bases to derive from the entities.
	KBs []KBConfig
	// VocabSize is the size of the Zipfian token vocabulary
	// (default 4·NumEntities).
	VocabSize int
	// ZipfSkew is the Zipf exponent for token popularity (default 1.05;
	// must be > 1).
	ZipfSkew float64
	// NameTokens is how many canonical tokens an entity name has
	// (default 3).
	NameTokens int
	// LinksPerEntity is the expected out-degree of the entity
	// relationship graph (default 2).
	LinksPerEntity float64
	// Types is how many distinct entity types exist (default 5).
	Types int
}

func (c Config) withDefaults() Config {
	if c.VocabSize == 0 {
		c.VocabSize = 4 * c.NumEntities
	}
	if c.VocabSize < 4 {
		c.VocabSize = 4
	}
	if c.ZipfSkew <= 1 {
		c.ZipfSkew = 1.05
	}
	if c.NameTokens == 0 {
		c.NameTokens = 3
	}
	if c.LinksPerEntity == 0 {
		c.LinksPerEntity = 2
	}
	if c.Types == 0 {
		c.Types = 5
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.NumEntities <= 0 {
		return fmt.Errorf("datagen: NumEntities must be positive, got %d", c.NumEntities)
	}
	if len(c.KBs) == 0 {
		return fmt.Errorf("datagen: at least one KB required")
	}
	for i, k := range c.KBs {
		if k.Name == "" {
			return fmt.Errorf("datagen: KB %d has empty name", i)
		}
		if k.Coverage <= 0 || k.Coverage > 1 {
			return fmt.Errorf("datagen: KB %q coverage %v outside (0,1]", k.Name, k.Coverage)
		}
		p := k.Profile
		if p.TokenKeep < 0 || p.TokenKeep > 1 || p.LinkKeep < 0 || p.LinkKeep > 1 {
			return fmt.Errorf("datagen: KB %q profile probabilities outside [0,1]", k.Name)
		}
	}
	return nil
}

// Entity is one synthetic real-world entity.
type Entity struct {
	ID    int
	Type  int
	Name  []string // canonical name tokens
	Aux   []string // canonical auxiliary value tokens
	Links []int    // entity-graph out-edges
}

// World is a generated workload: the hidden entities, the observable
// KB descriptions, and the evaluation ground truth.
type World struct {
	Config   Config
	Entities []Entity
	// Collection holds every generated description.
	Collection *kb.Collection
	// Truth maps descriptions to their real-world equivalence classes.
	Truth *kb.GroundTruth
	// DescsOf[e] lists description ids generated for entity e.
	DescsOf [][]int
}

// Generate builds a World from the config.
func Generate(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	vocab := makeVocab(cfg.VocabSize)
	zipf := rand.NewZipf(rng, cfg.ZipfSkew, 1, uint64(cfg.VocabSize-1))

	w := &World{
		Config:     cfg,
		Entities:   make([]Entity, cfg.NumEntities),
		Collection: kb.NewCollection(),
		Truth:      kb.NewGroundTruth(),
		DescsOf:    make([][]int, cfg.NumEntities),
	}

	// 1. Invent the real-world entities.
	for e := 0; e < cfg.NumEntities; e++ {
		ent := Entity{ID: e, Type: rng.Intn(cfg.Types)}
		seen := map[string]bool{}
		for len(ent.Name) < cfg.NameTokens {
			tok := vocab[zipf.Uint64()]
			if !seen[tok] {
				seen[tok] = true
				ent.Name = append(ent.Name, tok)
			}
		}
		// A couple of auxiliary canonical values (e.g. birthplace tokens).
		for k := 0; k < 4; k++ {
			ent.Aux = append(ent.Aux, vocab[zipf.Uint64()])
		}
		w.Entities[e] = ent
	}
	// 2. Entity relationship graph (directed, no self loops).
	for e := range w.Entities {
		n := poisson(rng, cfg.LinksPerEntity)
		for k := 0; k < n; k++ {
			t := rng.Intn(cfg.NumEntities)
			if t != e {
				w.Entities[e].Links = append(w.Entities[e].Links, t)
			}
		}
	}

	// 3. Derive each KB's descriptions. Two passes per KB: first decide
	// coverage and which name tokens each description keeps (URIs are
	// built from kept tokens so periphery URIs do not leak the full
	// canonical name), then materialize descriptions with links to the
	// now-known target URIs. pass distinguishes repeated KB names, so a
	// dirty KB's duplicate descriptions get distinct URIs.
	for pass, kcfg := range cfg.KBs {
		covered := make([]bool, cfg.NumEntities)
		keptNames := make([][]string, cfg.NumEntities)
		uris := make([]string, cfg.NumEntities)
		for e := 0; e < cfg.NumEntities; e++ {
			covered[e] = rng.Float64() < kcfg.Coverage
			if !covered[e] {
				continue
			}
			ent := w.Entities[e]
			var kept []string
			for _, tok := range ent.Name {
				if rng.Float64() < kcfg.Profile.TokenKeep {
					kept = append(kept, tok)
				}
			}
			// Always keep at least one token: anonymous descriptions
			// cannot be blocked or matched by anyone.
			if len(kept) == 0 {
				kept = append(kept, ent.Name[rng.Intn(len(ent.Name))])
			}
			keptNames[e] = kept
			uris[e] = fmt.Sprintf("http://%s.example.org/resource/%s_%s",
				kcfg.Name, styleName(kcfg.Name, kept), idTag(kcfg.Name, pass, e))
		}
		for e := 0; e < cfg.NumEntities; e++ {
			if !covered[e] {
				continue
			}
			d := w.describe(rng, vocab, zipf, kcfg, e, keptNames[e], uris)
			id := w.Collection.Add(d)
			w.DescsOf[e] = append(w.DescsOf[e], id)
		}
	}

	// 4. Ground truth from the per-entity description lists.
	for _, ids := range w.DescsOf {
		if len(ids) >= 2 {
			w.Truth.AddClass(ids...)
		} else if len(ids) == 1 {
			w.Truth.AddClass(ids[0])
		}
	}
	return w, nil
}

// describe derives one KB's description of entity e, given its kept
// name tokens and the URI table of every covered entity in this pass
// (uris[t] == "" when t is not covered).
func (w *World) describe(rng *rand.Rand, vocab []string, zipf *rand.Zipf, kcfg KBConfig, e int, kept []string, uris []string) *kb.Description {
	ent := w.Entities[e]
	p := kcfg.Profile

	d := &kb.Description{URI: uris[e], KB: kcfg.Name}
	d.Types = append(d.Types, fmt.Sprintf("http://%s.example.org/onto#Type%d", kcfg.Name, ent.Type))

	// Name attribute: the kept canonical tokens plus noise tokens.
	name := append([]string(nil), kept...)
	for k := 0; k < poisson(rng, p.ExtraTokens); k++ {
		name = append(name, vocab[zipf.Uint64()])
	}
	d.Attrs = append(d.Attrs, kb.Attribute{
		Predicate: fmt.Sprintf("http://%s.example.org/onto#name", kcfg.Name),
		Value:     strings.Join(name, " "),
	})

	// Auxiliary attributes reuse canonical aux tokens with the same
	// retention behavior, under KB-local predicates.
	for a := 0; a < p.AttrsPerEntity; a++ {
		src := ent.Aux[a%len(ent.Aux)]
		val := src
		if rng.Float64() >= p.TokenKeep {
			val = vocab[zipf.Uint64()] // replaced by noise
		}
		d.Attrs = append(d.Attrs, kb.Attribute{
			Predicate: fmt.Sprintf("http://%s.example.org/onto#attr%d", kcfg.Name, a),
			Value:     val,
		})
	}

	// Links to this pass's descriptions of linked entities.
	for _, target := range ent.Links {
		if uris[target] != "" && rng.Float64() < p.LinkKeep {
			d.Links = append(d.Links, uris[target])
		}
	}
	return d
}

// styleName renders canonical name tokens in a KB-specific URI style so
// URIs never match textually across KBs (different naming authorities).
func styleName(kbName string, tokens []string) string {
	switch len(kbName) % 3 {
	case 0:
		return strings.Join(tokens, "_")
	case 1:
		var sb strings.Builder
		for _, t := range tokens {
			if t == "" {
				continue
			}
			sb.WriteString(strings.ToUpper(t[:1]))
			sb.WriteString(t[1:])
		}
		return sb.String()
	default:
		return strings.Join(tokens, "-")
	}
}

// idTag encodes (kb, pass, entity) as a letters-only disambiguation
// suffix. It is KB-salted so descriptions of the same entity in
// different KBs share no URI token — URIs must never leak identity
// evidence that the attribute values do not carry.
func idTag(kbName string, pass, e int) string {
	h := uint64(1469598103934665603) // FNV-1a over the KB name
	for i := 0; i < len(kbName); i++ {
		h = (h ^ uint64(kbName[i])) * 1099511628211
	}
	buf := make([]byte, 0, 12)
	for i := 0; i < 4; i++ { // 4-letter KB salt
		buf = append(buf, byte('a'+h%26))
		h /= 26
	}
	x := uint64(pass)
	for i := 0; i < 2; i++ { // fixed-width pass
		buf = append(buf, byte('a'+x%26))
		x /= 26
	}
	y := uint64(e)
	for i := 0; i < 6; i++ { // fixed-width entity id: injective up to 26^6
		buf = append(buf, byte('a'+y%26))
		y /= 26
	}
	return string(buf)
}

// makeVocab builds a deterministic pseudo-word vocabulary. Words are
// pronounceable-ish and unique.
func makeVocab(n int) []string {
	consonants := []string{"b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z"}
	vowels := []string{"a", "e", "i", "o", "u"}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		var sb strings.Builder
		x := i
		for k := 0; k < 3; k++ {
			sb.WriteString(consonants[x%len(consonants)])
			x /= len(consonants)
			sb.WriteString(vowels[x%len(vowels)])
			x /= len(vowels)
		}
		sb.WriteString(fmt.Sprintf("%d", i%97))
		out[i] = sb.String()
	}
	return out
}

// poisson samples a Poisson variate with mean lambda (Knuth's method;
// fine for the small lambdas used here).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Triples serializes every description of the named KB back to RDF, for
// the datagen CLI and loader round-trip tests.
func (w *World) Triples(kbName string) []rdf.Triple {
	var out []rdf.Triple
	c := w.Collection
	for id := 0; id < c.Len(); id++ {
		d := c.Desc(id)
		if d.KB != kbName {
			continue
		}
		subj := rdf.NewIRI(d.URI)
		for _, ty := range d.Types {
			out = append(out, rdf.NewTriple(subj, rdf.NewIRI(rdf.RDFType), rdf.NewIRI(ty)))
		}
		for _, a := range d.Attrs {
			out = append(out, rdf.NewTriple(subj, rdf.NewIRI(a.Predicate), rdf.NewLiteral(a.Value)))
		}
		for _, l := range d.Links {
			out = append(out, rdf.NewTriple(subj, rdf.NewIRI("http://"+kbName+".example.org/onto#related"), rdf.NewIRI(l)))
		}
	}
	return out
}

// SameAsTriples serializes the ground truth as owl:sameAs links between
// consecutive descriptions of each entity.
func (w *World) SameAsTriples() []rdf.Triple {
	var out []rdf.Triple
	for _, ids := range w.DescsOf {
		for i := 1; i < len(ids); i++ {
			a := w.Collection.Desc(ids[i-1])
			b := w.Collection.Desc(ids[i])
			out = append(out, rdf.NewTriple(rdf.NewIRI(a.URI), rdf.NewIRI(rdf.OWLSameAs), rdf.NewIRI(b.URI)))
		}
	}
	return out
}

// TwoKBs is a convenience config: two KBs over n entities, both with
// the given profiles and full coverage, seeded deterministically.
func TwoKBs(seed int64, n int, p1, p2 Profile) Config {
	return Config{
		Seed:        seed,
		NumEntities: n,
		KBs: []KBConfig{
			{Name: "alpha", Coverage: 1, Profile: p1},
			{Name: "betaKB", Coverage: 1, Profile: p2},
		},
	}
}

// LODCloud is a convenience config modelling the paper's setting: two
// central, densely-populated KBs plus two sparse periphery KBs.
func LODCloud(seed int64, n int) Config {
	return Config{
		Seed:        seed,
		NumEntities: n,
		KBs: []KBConfig{
			{Name: "centerA", Coverage: 0.9, Profile: Center()},
			{Name: "centerB", Coverage: 0.8, Profile: Center()},
			{Name: "periphX", Coverage: 0.5, Profile: Periphery()},
			{Name: "periphY", Coverage: 0.4, Profile: Periphery()},
		},
	}
}

// DirtyKB is a convenience config for dirty ER: one KB that contains
// duplicate descriptions of the same entities. It is modelled as a
// single logical KB whose duplicates come from merging several
// generator passes under one name.
func DirtyKB(seed int64, n int, dupFactor int) Config {
	if dupFactor < 2 {
		dupFactor = 2
	}
	cfg := Config{Seed: seed, NumEntities: n}
	for i := 0; i < dupFactor; i++ {
		cfg.KBs = append(cfg.KBs, KBConfig{
			Name:     "dirty", // same KB name: duplicates land in one KB
			Coverage: 0.8,
			Profile:  Center(),
		})
	}
	return cfg
}
