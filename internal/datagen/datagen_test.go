package datagen

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/kb"
	"repro/internal/similarity"
	"repro/internal/tokenize"
)

func TestValidate(t *testing.T) {
	bad := []Config{
		{NumEntities: 0, KBs: []KBConfig{{Name: "a", Coverage: 1}}},
		{NumEntities: 10},
		{NumEntities: 10, KBs: []KBConfig{{Name: "", Coverage: 1}}},
		{NumEntities: 10, KBs: []KBConfig{{Name: "a", Coverage: 0}}},
		{NumEntities: 10, KBs: []KBConfig{{Name: "a", Coverage: 1.5}}},
		{NumEntities: 10, KBs: []KBConfig{{Name: "a", Coverage: 1, Profile: Profile{TokenKeep: 2}}}},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := TwoKBs(42, 50, Center(), Center())
	w1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w1.Collection.Len() != w2.Collection.Len() {
		t.Fatalf("non-deterministic sizes: %d vs %d", w1.Collection.Len(), w2.Collection.Len())
	}
	for id := 0; id < w1.Collection.Len(); id++ {
		d1, d2 := w1.Collection.Desc(id), w2.Collection.Desc(id)
		if d1.URI != d2.URI || !reflect.DeepEqual(d1.Attrs, d2.Attrs) || !reflect.DeepEqual(d1.Links, d2.Links) {
			t.Fatalf("description %d differs between runs", id)
		}
	}
	// A different seed changes the output.
	cfg.Seed = 43
	w3, _ := Generate(cfg)
	same := w3.Collection.Len() == w1.Collection.Len()
	if same {
		diff := false
		for id := 0; id < w1.Collection.Len(); id++ {
			if w1.Collection.Desc(id).URI != w3.Collection.Desc(id).URI {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Error("different seeds produced identical worlds")
	}
}

func TestGroundTruthShape(t *testing.T) {
	w, err := Generate(TwoKBs(7, 100, Center(), Center()))
	if err != nil {
		t.Fatal(err)
	}
	// Full coverage of both KBs: every entity has exactly 2 descriptions.
	if w.Collection.Len() != 200 {
		t.Fatalf("Len=%d, want 200", w.Collection.Len())
	}
	if got := w.Truth.NumMatchingPairs(); got != 100 {
		t.Errorf("matching pairs=%d, want 100", got)
	}
	if got := w.Truth.CrossKBMatchingPairs(w.Collection); got != 100 {
		t.Errorf("cross-KB pairs=%d, want 100", got)
	}
	for e, ids := range w.DescsOf {
		if len(ids) != 2 {
			t.Fatalf("entity %d has %d descriptions", e, len(ids))
		}
		if !w.Truth.Match(ids[0], ids[1]) {
			t.Fatalf("entity %d descriptions not in one class", e)
		}
	}
}

func TestProfilesControlSimilarity(t *testing.T) {
	opts := tokenize.Default()
	avgSim := func(p Profile) float64 {
		w, err := Generate(TwoKBs(11, 150, p, p))
		if err != nil {
			t.Fatal(err)
		}
		total, n := 0.0, 0
		for _, ids := range w.DescsOf {
			if len(ids) != 2 {
				continue
			}
			a := w.Collection.Tokens(ids[0], opts)
			b := w.Collection.Tokens(ids[1], opts)
			total += similarity.JaccardSlices(a, b)
			n++
		}
		return total / float64(n)
	}
	center := avgSim(Center())
	periph := avgSim(Periphery())
	if center <= periph {
		t.Errorf("center similarity %v should exceed periphery %v", center, periph)
	}
	if center < 0.4 {
		t.Errorf("center similarity %v too low — highly similar pairs expected", center)
	}
	if periph > 0.35 {
		t.Errorf("periphery similarity %v too high — somehow similar pairs expected", periph)
	}
}

func TestURIsDoNotLeakIdentity(t *testing.T) {
	// Descriptions of the same entity in different KBs must not share
	// tokens that come only from URI plumbing (the disambiguation tag):
	// strip the name tokens and nothing should remain shared.
	w, err := Generate(TwoKBs(3, 40, Periphery(), Periphery()))
	if err != nil {
		t.Fatal(err)
	}
	opts := tokenize.Default()
	for e, ids := range w.DescsOf {
		if len(ids) != 2 {
			continue
		}
		uriToksA := tokenize.URITokens(w.Collection.Desc(ids[0]).URI, opts)
		uriToksB := tokenize.URITokens(w.Collection.Desc(ids[1]).URI, opts)
		canon := map[string]bool{}
		for _, tok := range tokenize.Tokens(strings.Join(w.Entities[e].Name, " "), opts) {
			canon[tok] = true
		}
		shared := map[string]bool{}
		for _, a := range uriToksA {
			for _, b := range uriToksB {
				if a == b && !canon[a] {
					shared[a] = true
				}
			}
		}
		if len(shared) > 0 {
			t.Fatalf("entity %d URIs share non-name tokens %v:\n%s\n%s",
				e, shared, w.Collection.Desc(ids[0]).URI, w.Collection.Desc(ids[1]).URI)
		}
	}
}

func TestLinksResolve(t *testing.T) {
	w, err := Generate(TwoKBs(5, 80, Center(), Center()))
	if err != nil {
		t.Fatal(err)
	}
	dangling := 0
	for id := 0; id < w.Collection.Len(); id++ {
		d := w.Collection.Desc(id)
		for _, l := range d.Links {
			if _, ok := w.Collection.IDOf(d.KB, l); !ok {
				dangling++
			}
		}
	}
	if dangling > 0 {
		t.Errorf("%d dangling links", dangling)
	}
}

func TestDirtyKB(t *testing.T) {
	w, err := Generate(DirtyKB(9, 60, 2))
	if err != nil {
		t.Fatal(err)
	}
	if w.Collection.NumKBs() != 1 {
		t.Fatalf("dirty world has %d KBs, want 1", w.Collection.NumKBs())
	}
	// With coverage 0.8 twice, expect a healthy number of duplicates.
	if w.Truth.NumMatchingPairs() < 20 {
		t.Errorf("only %d duplicate pairs generated", w.Truth.NumMatchingPairs())
	}
	// All duplicates are within the single KB.
	if w.Truth.CrossKBMatchingPairs(w.Collection) != 0 {
		t.Error("dirty world has cross-KB pairs")
	}
}

func TestLODCloud(t *testing.T) {
	w, err := Generate(LODCloud(13, 120))
	if err != nil {
		t.Fatal(err)
	}
	if w.Collection.NumKBs() != 4 {
		t.Fatalf("NumKBs=%d, want 4", w.Collection.NumKBs())
	}
	if w.Truth.NumMatchingPairs() == 0 {
		t.Error("no matching pairs in LOD cloud")
	}
	st := w.Collection.Stats()
	if st.Links == 0 {
		t.Error("no links generated")
	}
	if st.Predicates < 8 {
		t.Errorf("predicates=%d — KBs should use disjoint vocabularies", st.Predicates)
	}
}

func TestTriplesRoundTrip(t *testing.T) {
	w, err := Generate(TwoKBs(21, 30, Center(), Center()))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"alpha", "betaKB"} {
		ts := w.Triples(name)
		if len(ts) == 0 {
			t.Fatalf("no triples for %s", name)
		}
		c := kb.NewCollection()
		c.LoadTriples(name, ts)
		if c.Len() != 30 {
			t.Errorf("%s round trip Len=%d, want 30", name, c.Len())
		}
	}
	sameAs := w.SameAsTriples()
	if len(sameAs) != 30 {
		t.Errorf("sameAs count=%d, want 30", len(sameAs))
	}
	// Load the whole world back and reconstruct ground truth.
	c := kb.NewCollection()
	c.LoadTriples("alpha", w.Triples("alpha"))
	c.LoadTriples("betaKB", w.Triples("betaKB"))
	g := kb.NewGroundTruth()
	if missing := g.LoadSameAs(c, sameAs); missing != 0 {
		t.Errorf("%d sameAs links unresolvable after round trip", missing)
	}
	if g.NumMatchingPairs() != w.Truth.NumMatchingPairs() {
		t.Errorf("round-trip pairs=%d, want %d", g.NumMatchingPairs(), w.Truth.NumMatchingPairs())
	}
}

func TestVocabUnique(t *testing.T) {
	v := makeVocab(2000)
	seen := map[string]bool{}
	for _, w := range v {
		if seen[w] {
			t.Fatalf("duplicate vocab word %q", w)
		}
		seen[w] = true
		if strings.ContainsAny(w, " _-") {
			t.Fatalf("vocab word %q not a single token", w)
		}
	}
}

func TestIDTagInjective(t *testing.T) {
	f := func(p1, e1, p2, e2 uint16) bool {
		t1 := idTag("kbx", int(p1%8), int(e1))
		t2 := idTag("kbx", int(p2%8), int(e2))
		if p1%8 == p2%8 && e1 == e2 {
			return t1 == t2
		}
		return t1 != t2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Different KBs give different tags for the same (pass, e).
	if idTag("kb1", 0, 7) == idTag("kb2", 0, 7) {
		t.Error("tags not KB-salted")
	}
}

func TestPoisson(t *testing.T) {
	w, _ := Generate(Config{Seed: 1, NumEntities: 300, KBs: []KBConfig{{Name: "k", Coverage: 1, Profile: Center()}}, LinksPerEntity: 2})
	total := 0
	for _, e := range w.Entities {
		total += len(e.Links)
	}
	mean := float64(total) / 300
	if mean < 1.2 || mean > 2.8 {
		t.Errorf("mean out-degree %v far from 2", mean)
	}
}
