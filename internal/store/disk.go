package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Disk is the paged segment-file backend: records append to numbered
// segment files, a sparse in-memory locator maps each live key to its
// (segment, offset), and reads page values in on demand through reused
// per-segment handles. No write-ahead discipline of its own — the
// session's WAL (or source corpus) can always rebuild a store, so the
// store is a spill space, not a database.
//
// Record frame, all integers big endian:
//
//	[u8 op: 1=put 2=delete] [u16 key length] [u32 value length]
//	[u32 CRC32C over op + key + value] [key] [value]
//
// Open replays segments in order to rebuild the locator. A torn or
// corrupted record — the expected shape of a crash mid-append — ends
// the replay: the torn segment is truncated back to its last intact
// record and any later segments are dropped, exactly the torn-tail
// discipline the WAL applies to its frames.
type Disk struct {
	mu  sync.Mutex
	dir string

	loc     map[string]diskLoc
	active  *os.File // append handle of the highest segment
	actID   int
	actSize int64  // logical size of the active segment, buffered bytes included
	wbuf    []byte // appends not yet written to the active segment
	segMax  int64
	handles map[int]*os.File // reused read handles, segment id → file

	segBytes int64 // total bytes across segment files
	gets     int64
}

type diskLoc struct {
	seg  int
	off  int64 // offset of the value inside the segment
	vlen int
}

const (
	diskHeader  = 11 // op + klen + vlen + crc
	opPut       = 1
	opDelete    = 2
	maxKeyLen   = 1 << 16
	maxValueLen = 1 << 30
	// DefaultSegmentBytes rotates segments at 4 MiB: large enough to
	// amortize file overhead, small enough that Compact rewrites in
	// bounded pieces.
	DefaultSegmentBytes = 4 << 20
	// wbufMax caps the append buffer: a posting-commit wave is hundreds
	// of small records, and one buffered write replaces their syscalls.
	// The store carries no durability promise — the WAL rebuilds it —
	// so deferring the write loses nothing a crash had anyway.
	wbufMax = 256 << 10
)

var diskCRC = crc32.MakeTable(crc32.Castagnoli)

// DiskOptions tunes OpenDisk. The zero value is usable.
type DiskOptions struct {
	// SegmentBytes rotates the active segment once it exceeds this
	// size (0 = DefaultSegmentBytes).
	SegmentBytes int64
	// Reset discards any existing segments instead of replaying them —
	// the right call when the store's content is derived state about to
	// be rebuilt (recovery replays the WAL through the ordinary paths).
	Reset bool
}

// OpenDisk opens (creating if needed) a segment store under dir.
func OpenDisk(dir string, opt DiskOptions) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	d := &Disk{
		dir:     dir,
		loc:     make(map[string]diskLoc),
		segMax:  opt.SegmentBytes,
		handles: make(map[int]*os.File),
	}
	if d.segMax <= 0 {
		d.segMax = DefaultSegmentBytes
	}
	segs, err := d.listSegments()
	if err != nil {
		return nil, err
	}
	if opt.Reset {
		for _, id := range segs {
			if err := os.Remove(d.segPath(id)); err != nil {
				return nil, fmt.Errorf("store: reset: %w", err)
			}
		}
		segs = nil
	}
	if err := d.replay(segs); err != nil {
		return nil, err
	}
	if d.active == nil {
		if err := d.rotate(); err != nil {
			return nil, err
		}
	}
	return d, nil
}

func (d *Disk) segPath(id int) string {
	return filepath.Join(d.dir, fmt.Sprintf("seg-%06d.dat", id))
}

func (d *Disk) listSegments() ([]int, error) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var ids []int
	for _, e := range ents {
		var id int
		if n, _ := fmt.Sscanf(e.Name(), "seg-%06d.dat", &id); n == 1 {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids, nil
}

// replay rebuilds the locator from the segments, truncating the first
// torn record and dropping everything after it.
func (d *Disk) replay(segs []int) error {
	for i, id := range segs {
		valid, clean, err := d.replaySegment(id)
		if err != nil {
			return err
		}
		d.actID = id
		if clean {
			continue
		}
		// Torn: truncate this segment and drop the later ones — records
		// past a tear are newer than the gap and must not apply.
		d.segBytes -= d.sizeOfSegment(id) - valid
		if err := os.Truncate(d.segPath(id), valid); err != nil {
			return fmt.Errorf("store: truncate torn segment: %w", err)
		}
		for _, late := range segs[i+1:] {
			if err := os.Remove(d.segPath(late)); err != nil {
				return fmt.Errorf("store: drop post-tear segment: %w", err)
			}
		}
		break
	}
	if d.actID > 0 {
		f, err := os.OpenFile(d.segPath(d.actID), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return fmt.Errorf("store: %w", err)
		}
		d.active, d.actSize = f, fi.Size()
	}
	return nil
}

func (d *Disk) sizeOfSegment(id int) int64 {
	if fi, err := os.Stat(d.segPath(id)); err == nil {
		return fi.Size()
	}
	return 0
}

// replaySegment applies one segment's records to the locator,
// returning the byte offset of the last intact record's end and
// whether the whole file was intact.
func (d *Disk) replaySegment(id int) (int64, bool, error) {
	data, err := os.ReadFile(d.segPath(id))
	if err != nil {
		return 0, false, fmt.Errorf("store: %w", err)
	}
	d.segBytes += int64(len(data))
	var off int64
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return off, true, nil
		}
		if len(rest) < diskHeader {
			return off, false, nil // torn header
		}
		op := rest[0]
		klen := int(binary.BigEndian.Uint16(rest[1:3]))
		vlen := int(binary.BigEndian.Uint32(rest[3:7]))
		sum := binary.BigEndian.Uint32(rest[7:11])
		if (op != opPut && op != opDelete) || vlen > maxValueLen ||
			len(rest) < diskHeader+klen+vlen {
			return off, false, nil // implausible or torn body
		}
		body := rest[diskHeader : diskHeader+klen+vlen]
		crc := crc32.Update(crc32.Checksum([]byte{op}, diskCRC), diskCRC, body)
		if crc != sum {
			return off, false, nil // corrupted record
		}
		key := string(body[:klen])
		if op == opDelete {
			delete(d.loc, key)
		} else {
			d.loc[key] = diskLoc{seg: id, off: off + diskHeader + int64(klen), vlen: vlen}
		}
		off += int64(diskHeader + klen + vlen)
	}
}

// flush writes the buffered appends through to the active segment.
func (d *Disk) flush() error {
	if len(d.wbuf) == 0 {
		return nil
	}
	if _, err := d.active.Write(d.wbuf); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	d.wbuf = d.wbuf[:0]
	return nil
}

// rotate opens the next segment for appending.
func (d *Disk) rotate() error {
	if d.active != nil {
		if err := d.flush(); err != nil {
			return err
		}
		if err := d.active.Close(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		d.active = nil
	}
	d.actID++
	f, err := os.OpenFile(d.segPath(d.actID), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	d.active, d.actSize = f, 0
	return nil
}

// append frames one record onto the active segment and returns the
// offset its value starts at.
func (d *Disk) append(op byte, key, value []byte) (int, int64, error) {
	if d.active == nil {
		return 0, 0, ErrClosed
	}
	if len(key) >= maxKeyLen {
		return 0, 0, fmt.Errorf("store: key of %d bytes exceeds the %d-byte cap", len(key), maxKeyLen)
	}
	if len(value) > maxValueLen {
		return 0, 0, fmt.Errorf("store: value of %d bytes exceeds the %d-byte cap", len(value), maxValueLen)
	}
	if d.actSize >= d.segMax {
		if err := d.rotate(); err != nil {
			return 0, 0, err
		}
	}
	var hdr [diskHeader]byte
	hdr[0] = op
	binary.BigEndian.PutUint16(hdr[1:3], uint16(len(key)))
	binary.BigEndian.PutUint32(hdr[3:7], uint32(len(value)))
	crc := crc32.Update(crc32.Checksum([]byte{op}, diskCRC), diskCRC, key)
	crc = crc32.Update(crc, diskCRC, value)
	binary.BigEndian.PutUint32(hdr[7:11], crc)
	d.wbuf = append(d.wbuf, hdr[:]...)
	d.wbuf = append(d.wbuf, key...)
	d.wbuf = append(d.wbuf, value...)
	size := int64(diskHeader + len(key) + len(value))
	voff := d.actSize + diskHeader + int64(len(key))
	d.actSize += size
	d.segBytes += size
	if len(d.wbuf) >= wbufMax {
		if err := d.flush(); err != nil {
			return 0, 0, err
		}
	}
	return d.actID, voff, nil
}

// Get implements Store. The returned slice is freshly allocated and
// owned by the caller.
func (d *Disk) Get(key []byte) ([]byte, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.gets++
	l, ok := d.loc[string(key)]
	if !ok {
		return nil, false, nil
	}
	v, err := d.readValue(l)
	if err != nil {
		return nil, false, err
	}
	return v, true, nil
}

func (d *Disk) readValue(l diskLoc) ([]byte, error) {
	if l.seg == d.actID {
		// Flush empties the whole buffer and records enter it whole, so a
		// buffered record is entirely in wbuf — read-after-write (a graph
		// load right after its spill, a posting re-read after commit)
		// never touches the file.
		if bufStart := d.actSize - int64(len(d.wbuf)); l.off >= bufStart {
			v := d.wbuf[l.off-bufStart : l.off-bufStart+int64(l.vlen)]
			return append([]byte(nil), v...), nil
		}
	}
	f, err := d.handle(l.seg)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, l.vlen)
	if _, err := f.ReadAt(buf, l.off); err != nil {
		return nil, fmt.Errorf("store: read segment %d: %w", l.seg, err)
	}
	return buf, nil
}

// handle returns the reused read handle of a segment.
func (d *Disk) handle(id int) (*os.File, error) {
	if f, ok := d.handles[id]; ok {
		return f, nil
	}
	f, err := os.Open(d.segPath(id))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	d.handles[id] = f
	return f, nil
}

// Put implements Store.
func (d *Disk) Put(key, value []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	seg, off, err := d.append(opPut, key, value)
	if err != nil {
		return err
	}
	d.loc[string(key)] = diskLoc{seg: seg, off: off, vlen: len(value)}
	return nil
}

// Delete implements Store: a tombstone record appends (replay must see
// the deletion) and the locator entry drops.
func (d *Disk) Delete(key []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.loc[string(key)]; !ok {
		return nil
	}
	if _, _, err := d.append(opDelete, key, nil); err != nil {
		return err
	}
	delete(d.loc, string(key))
	return nil
}

// sortedKeys snapshots the live keys under prefix, ascending.
func (d *Disk) sortedKeys(prefix []byte) []string {
	keys := make([]string, 0, len(d.loc))
	for k := range d.loc {
		if bytes.HasPrefix([]byte(k), prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Scan implements Store.
func (d *Disk) Scan(prefix []byte, fn func(key, value []byte) error) error {
	d.mu.Lock()
	keys := d.sortedKeys(prefix)
	d.mu.Unlock()
	for _, k := range keys {
		d.mu.Lock()
		l, ok := d.loc[k]
		var v []byte
		var err error
		if ok {
			v, err = d.readValue(l)
		}
		d.mu.Unlock()
		if err != nil {
			return err
		}
		if !ok {
			continue // deleted mid-scan
		}
		if err := fn([]byte(k), v); err != nil {
			return err
		}
	}
	return nil
}

// ScanKeys implements Store: a key-only scan walks the resident
// locator and never touches a segment.
func (d *Disk) ScanKeys(prefix []byte, fn func(key []byte) error) error {
	d.mu.Lock()
	keys := d.sortedKeys(prefix)
	d.mu.Unlock()
	for _, k := range keys {
		if err := fn([]byte(k)); err != nil {
			return err
		}
	}
	return nil
}

// Compact implements Store: every live record is rewritten into fresh
// segments (numbered after the current ones, so a replay applies them
// last) and the old segments are removed. Runs alongside the session's
// id-space compaction epochs, when the description keyspace has just
// shed its dead ids.
func (d *Disk) Compact() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	old, err := d.listSegments()
	if err != nil {
		return err
	}
	keys := d.sortedKeys(nil)
	if err := d.rotate(); err != nil {
		return err
	}
	for _, k := range keys {
		l := d.loc[k]
		v, err := d.readValue(l)
		if err != nil {
			return err
		}
		seg, off, err := d.append(opPut, []byte(k), v)
		if err != nil {
			return err
		}
		d.loc[k] = diskLoc{seg: seg, off: off, vlen: len(v)}
	}
	for _, id := range old {
		if f, ok := d.handles[id]; ok {
			f.Close()
			delete(d.handles, id)
		}
		d.segBytes -= d.sizeOfSegment(id)
		if err := os.Remove(d.segPath(id)); err != nil {
			return fmt.Errorf("store: compact: %w", err)
		}
	}
	return nil
}

// Stats implements Store. Resident approximates the locator's heap
// share: the keys plus the fixed locator record per key.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := Stats{Bytes: d.segBytes, Keys: int64(len(d.loc)), Gets: d.gets}
	for k := range d.loc {
		st.Resident += int64(len(k)) + 24
	}
	return st
}

// Close implements Store.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var err error
	if d.active != nil {
		err = d.flush()
		if cerr := d.active.Close(); err == nil {
			err = cerr
		}
		d.active = nil
	}
	for id, f := range d.handles {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		delete(d.handles, id)
	}
	if err != nil {
		return fmt.Errorf("store: close: %w", err)
	}
	return nil
}

var _ Store = (*Mem)(nil)
var _ Store = (*Disk)(nil)

// ErrClosed reports an operation on a closed disk store.
var ErrClosed = errors.New("store: closed")
