package store

import "container/list"

// LRU is a small bounded cache for decoded cold records (descriptions,
// postings): the structures themselves live in the store; the LRU only
// bounds how many decoded copies stay warm. Not safe for concurrent
// use — wrap with the owner's lock.
type LRU[K comparable, V any] struct {
	cap   int
	order *list.List // front = most recent
	items map[K]*list.Element

	hits, misses int64
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

// NewLRU returns an LRU holding at most cap entries (cap < 1 becomes 1).
func NewLRU[K comparable, V any](cap int) *LRU[K, V] {
	if cap < 1 {
		cap = 1
	}
	return &LRU[K, V]{cap: cap, order: list.New(), items: make(map[K]*list.Element)}
}

// Get returns the cached value and marks it most recently used.
func (l *LRU[K, V]) Get(key K) (V, bool) {
	if el, ok := l.items[key]; ok {
		l.hits++
		l.order.MoveToFront(el)
		return el.Value.(*lruEntry[K, V]).val, true
	}
	l.misses++
	var zero V
	return zero, false
}

// Put inserts or replaces a value, evicting the least recently used
// entry when full.
func (l *LRU[K, V]) Put(key K, val V) {
	if el, ok := l.items[key]; ok {
		el.Value.(*lruEntry[K, V]).val = val
		l.order.MoveToFront(el)
		return
	}
	if l.order.Len() >= l.cap {
		back := l.order.Back()
		l.order.Remove(back)
		delete(l.items, back.Value.(*lruEntry[K, V]).key)
	}
	l.items[key] = l.order.PushFront(&lruEntry[K, V]{key: key, val: val})
}

// Remove drops an entry if present.
func (l *LRU[K, V]) Remove(key K) {
	if el, ok := l.items[key]; ok {
		l.order.Remove(el)
		delete(l.items, key)
	}
}

// Clear empties the cache, keeping the hit counters.
func (l *LRU[K, V]) Clear() {
	l.order.Init()
	clear(l.items)
}

// Len returns the number of cached entries.
func (l *LRU[K, V]) Len() int { return l.order.Len() }

// Counters returns cumulative hits and misses.
func (l *LRU[K, V]) Counters() (hits, misses int64) { return l.hits, l.misses }
