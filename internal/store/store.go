// Package store is the narrow storage boundary behind which the
// session's cold big structures — description bodies, inverted-index
// postings, blocking-graph arrays — can live outside the heap.
//
// The interface is deliberately small, in the LSM-backend idiom:
// point Get/Put/Delete over opaque byte keys, ordered Scan/ScanKeys
// over a key prefix, and a Compact that rewrites storage down to the
// live records. Keys for numeric id spaces are fixed-size and
// sort-preserving (big-endian integers under a one-byte namespace
// tag), so a prefix scan enumerates one structure's records in id
// order without any secondary index.
//
// Two implementations share the interface:
//
//   - Mem — the existing in-memory layout refactored behind the
//     boundary: a plain map plus ordered scans. It is the reference
//     oracle; every differential suite proves disk ≡ mem bit for bit.
//   - Disk (OpenDisk) — a dependency-free paged backend: append-only
//     segment files holding checksum-framed records, with a sparse
//     in-memory locator (key → segment, offset) as the only resident
//     state. Reads reuse per-segment handles; appends coalesce in a
//     buffer the reads know how to serve; ScanKeys never touches a
//     value.
//
// Everything a store holds is derived state: the write-ahead log (or
// the source corpus) can always rebuild it, which is why recovery
// resets the store and replays rather than trusting segments that may
// run ahead of the log's durable prefix.
package store

import (
	"bytes"
	"encoding/binary"
	"sort"
	"sync"
)

// Store is the storage boundary. One goroutine mutates (the session's
// writer); any number may Get concurrently while no mutation is in
// flight — WarmTokens pages descriptions in from worker goroutines.
type Store interface {
	// Get returns the value stored under key, or ok=false. The returned
	// slice is owned by the caller on the disk backend and shared on the
	// mem backend; treat it as read-only and decode, don't retain.
	Get(key []byte) ([]byte, bool, error)
	// Put stores value under key, replacing any previous value. The
	// value is copied; the caller may reuse its buffer.
	Put(key, value []byte) error
	// Delete removes key; deleting an absent key is a no-op.
	Delete(key []byte) error
	// Scan calls fn for every key with the given prefix, in ascending
	// key order, with the key and its value. Returning an error stops
	// the scan and propagates.
	Scan(prefix []byte, fn func(key, value []byte) error) error
	// ScanKeys is Scan without values — on the disk backend it never
	// reads a segment, only the resident locator.
	ScanKeys(prefix []byte, fn func(key []byte) error) error
	// Compact rewrites storage down to the live records, reclaiming
	// space deleted and overwritten records still occupy.
	Compact() error
	// Stats returns the operator-facing gauges.
	Stats() Stats
	// Close releases the store's resources.
	Close() error
}

// Stats are a store's size and traffic gauges, surfaced on /status.
type Stats struct {
	// Bytes is the total stored footprint: segment bytes on disk for
	// the disk backend, encoded bytes in the heap for the mem backend.
	Bytes int64 `json:"bytes"`
	// Resident is the part of Bytes' bookkeeping held in RAM: the
	// locator index for the disk backend, everything for mem.
	Resident int64 `json:"resident"`
	// Keys counts live records.
	Keys int64 `json:"keys"`
	// Gets counts point reads served.
	Gets int64 `json:"gets"`
}

// DropPrefix deletes every key carrying the prefix — how a structure
// clears its namespace before a rebuild (a fresh inverted index, a
// superseded description epoch).
func DropPrefix(s Store, prefix []byte) error {
	var doomed [][]byte
	if err := s.ScanKeys(prefix, func(key []byte) error {
		doomed = append(doomed, append([]byte(nil), key...))
		return nil
	}); err != nil {
		return err
	}
	for _, k := range doomed {
		if err := s.Delete(k); err != nil {
			return err
		}
	}
	return nil
}

// U64Key writes id as a fixed-size sort-preserving key under a
// one-byte namespace tag: scans over the tag enumerate ids in order.
func U64Key(tag byte, id uint64) []byte {
	var k [9]byte
	k[0] = tag
	binary.BigEndian.PutUint64(k[1:], id)
	return k[:]
}

// Mem is the in-memory reference implementation: the heap layout the
// disk backend must be bit-equivalent to.
type Mem struct {
	mu   sync.Mutex
	m    map[string][]byte
	gets int64
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{m: make(map[string][]byte)} }

// Get implements Store.
func (s *Mem) Get(key []byte) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	v, ok := s.m[string(key)]
	return v, ok, nil
}

// Put implements Store.
func (s *Mem) Put(key, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[string(key)] = append([]byte(nil), value...)
	return nil
}

// Delete implements Store.
func (s *Mem) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, string(key))
	return nil
}

// Scan implements Store.
func (s *Mem) Scan(prefix []byte, fn func(key, value []byte) error) error {
	for _, k := range s.sortedKeys(prefix) {
		s.mu.Lock()
		v, ok := s.m[k]
		s.mu.Unlock()
		if !ok {
			continue // deleted mid-scan
		}
		if err := fn([]byte(k), v); err != nil {
			return err
		}
	}
	return nil
}

// ScanKeys implements Store.
func (s *Mem) ScanKeys(prefix []byte, fn func(key []byte) error) error {
	for _, k := range s.sortedKeys(prefix) {
		if err := fn([]byte(k)); err != nil {
			return err
		}
	}
	return nil
}

func (s *Mem) sortedKeys(prefix []byte) []string {
	s.mu.Lock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		if bytes.HasPrefix([]byte(k), prefix) {
			keys = append(keys, k)
		}
	}
	s.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Compact implements Store; the map never holds dead records.
func (s *Mem) Compact() error { return nil }

// Stats implements Store.
func (s *Mem) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Keys: int64(len(s.m)), Gets: s.gets}
	for k, v := range s.m {
		st.Bytes += int64(len(k) + len(v))
	}
	st.Resident = st.Bytes
	return st
}

// Close implements Store.
func (s *Mem) Close() error { return nil }
