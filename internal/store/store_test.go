package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// both runs a subtest against the mem oracle and the disk backend.
func both(t *testing.T, fn func(t *testing.T, s Store)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) { fn(t, NewMem()) })
	t.Run("disk", func(t *testing.T) {
		d, err := OpenDisk(t.TempDir(), DiskOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		fn(t, d)
	})
}

func TestStoreBasics(t *testing.T) {
	both(t, func(t *testing.T, s Store) {
		if _, ok, err := s.Get([]byte("absent")); err != nil || ok {
			t.Fatalf("Get(absent) = ok=%v err=%v", ok, err)
		}
		if err := s.Put([]byte("a"), []byte("1")); err != nil {
			t.Fatal(err)
		}
		if err := s.Put([]byte("a"), []byte("2")); err != nil {
			t.Fatal(err) // overwrite
		}
		v, ok, err := s.Get([]byte("a"))
		if err != nil || !ok || string(v) != "2" {
			t.Fatalf("Get(a) = %q ok=%v err=%v", v, ok, err)
		}
		if err := s.Delete([]byte("a")); err != nil {
			t.Fatal(err)
		}
		if err := s.Delete([]byte("a")); err != nil {
			t.Fatal(err) // idempotent
		}
		if _, ok, _ := s.Get([]byte("a")); ok {
			t.Fatal("deleted key still resolves")
		}
		if err := s.Put([]byte("empty"), nil); err != nil {
			t.Fatal(err)
		}
		v, ok, err = s.Get([]byte("empty"))
		if err != nil || !ok || len(v) != 0 {
			t.Fatalf("Get(empty) = %q ok=%v err=%v", v, ok, err)
		}
	})
}

func TestStoreScanOrder(t *testing.T) {
	both(t, func(t *testing.T, s Store) {
		for _, id := range []uint64{42, 7, 0, 1000, 8} {
			if err := s.Put(U64Key('d', id), []byte(fmt.Sprint(id))); err != nil {
				t.Fatal(err)
			}
		}
		s.Put([]byte("p-token"), []byte("x")) // other namespace, excluded
		var got []string
		err := s.Scan([]byte{'d'}, func(k, v []byte) error {
			got = append(got, string(v))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		want := []string{"0", "7", "8", "42", "1000"}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("scan order = %v, want %v", got, want)
		}
		var keys int
		if err := s.ScanKeys([]byte{'d'}, func(k []byte) error { keys++; return nil }); err != nil {
			t.Fatal(err)
		}
		if keys != 5 {
			t.Fatalf("ScanKeys saw %d keys, want 5", keys)
		}
		if err := DropPrefix(s, []byte{'d'}); err != nil {
			t.Fatal(err)
		}
		if st := s.Stats(); st.Keys != 1 {
			t.Fatalf("after DropPrefix Keys = %d, want 1", st.Keys)
		}
	})
}

// TestStoreDifferential drives both backends through one random
// workload and requires identical contents at every step.
func TestStoreDifferential(t *testing.T) {
	mem := NewMem()
	disk, err := OpenDisk(t.TempDir(), DiskOptions{SegmentBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	rng := rand.New(rand.NewSource(2016))
	for op := 0; op < 4000; op++ {
		key := U64Key(byte('a'+rng.Intn(3)), uint64(rng.Intn(200)))
		switch rng.Intn(4) {
		case 0:
			if err := mem.Delete(key); err != nil {
				t.Fatal(err)
			}
			if err := disk.Delete(key); err != nil {
				t.Fatal(err)
			}
		default:
			val := make([]byte, rng.Intn(300))
			rng.Read(val)
			if err := mem.Put(key, val); err != nil {
				t.Fatal(err)
			}
			if err := disk.Put(key, val); err != nil {
				t.Fatal(err)
			}
		}
		if op == 2000 {
			if err := disk.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	requireEqual(t, mem, disk)

	// Compaction preserves contents and reclaims dead bytes.
	before := disk.Stats().Bytes
	if err := disk.Compact(); err != nil {
		t.Fatal(err)
	}
	if after := disk.Stats().Bytes; after >= before {
		t.Fatalf("compaction did not shrink segments: %d -> %d", before, after)
	}
	requireEqual(t, mem, disk)
}

func requireEqual(t *testing.T, want, got Store) {
	t.Helper()
	type kv struct{ k, v string }
	collect := func(s Store) []kv {
		var out []kv
		if err := s.Scan(nil, func(k, v []byte) error {
			out = append(out, kv{string(k), string(v)})
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	w, g := collect(want), collect(got)
	if len(w) != len(g) {
		t.Fatalf("stores diverge: %d vs %d keys", len(w), len(g))
	}
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("stores diverge at %d: %q=%q vs %q=%q", i, w[i].k, w[i].v, g[i].k, g[i].v)
		}
	}
}

// TestDiskReplay closes and reopens a store and requires the locator
// to rebuild exactly, including deletions and overwrites.
func TestDiskReplay(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50; i++ {
		if err := d.Put(U64Key('d', i), bytes.Repeat([]byte{byte(i)}, 20)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 50; i += 3 {
		if err := d.Delete(U64Key('d', i)); err != nil {
			t.Fatal(err)
		}
	}
	d.Put(U64Key('d', 7), []byte("rewritten"))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenDisk(dir, DiskOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := uint64(0); i < 50; i++ {
		v, ok, err := r.Get(U64Key('d', i))
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if ok {
				t.Fatalf("deleted key %d survived replay", i)
			}
			continue
		}
		want := bytes.Repeat([]byte{byte(i)}, 20)
		if i == 7 {
			want = []byte("rewritten")
		}
		if !ok || !bytes.Equal(v, want) {
			t.Fatalf("key %d = %q ok=%v after replay", i, v, ok)
		}
	}
}

// TestDiskTornTail truncates the newest segment at every byte offset
// and requires reopening to recover exactly the records whose frames
// survived whole — the store-level mirror of the WAL's torn-tail
// discipline.
func TestDiskTornTail(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{}) // one segment: every record in it
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	for i := uint64(0); i < n; i++ {
		if err := d.Put(U64Key('d', i), bytes.Repeat([]byte{byte('A' + i)}, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "seg-000001.dat")
	image, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	recSize := len(image) / n
	if recSize*n != len(image) {
		t.Fatalf("uneven segment: %d bytes / %d records", len(image), n)
	}
	for cut := 0; cut <= len(image); cut++ {
		if err := os.WriteFile(seg, image[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := OpenDisk(dir, DiskOptions{})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		wantLive := cut / recSize // records fully inside the cut
		if got := int(r.Stats().Keys); got != wantLive {
			r.Close()
			t.Fatalf("cut %d: recovered %d records, want %d", cut, got, wantLive)
		}
		for i := 0; i < wantLive; i++ {
			v, ok, err := r.Get(U64Key('d', uint64(i)))
			if err != nil || !ok || !bytes.Equal(v, bytes.Repeat([]byte{byte('A' + i)}, 10)) {
				r.Close()
				t.Fatalf("cut %d: record %d = %q ok=%v err=%v", cut, i, v, ok, err)
			}
		}
		// The torn tail is truncated: appends restart on a clean boundary.
		if err := r.Put([]byte("new"), []byte("after-tear")); err != nil {
			r.Close()
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		r.Close()
	}
}

// TestDiskCorruptMidFile flips one byte in each record's frame and
// requires replay to stop at the corruption, never resurrect it.
func TestDiskCorruptMidFile(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	for i := uint64(0); i < n; i++ {
		if err := d.Put(U64Key('d', i), bytes.Repeat([]byte{byte(i + 1)}, 16)); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()
	seg := filepath.Join(dir, "seg-000001.dat")
	image, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	recSize := len(image) / n
	for rec := 0; rec < n; rec++ {
		corrupt := append([]byte(nil), image...)
		corrupt[rec*recSize+diskHeader] ^= 0x5a // flip a key byte under the CRC
		if err := os.WriteFile(seg, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := OpenDisk(dir, DiskOptions{})
		if err != nil {
			t.Fatalf("rec %d: %v", rec, err)
		}
		if got := int(r.Stats().Keys); got != rec {
			r.Close()
			t.Fatalf("corrupting record %d recovered %d records, want %d", rec, got, rec)
		}
		r.Close()
	}
}

// TestDiskReset wipes existing segments: the store is derived state,
// so recovery rebuilds it from the WAL rather than trusting segments
// that may run ahead of the log's durable prefix.
func TestDiskReset(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d.Put([]byte("stale"), []byte("x"))
	d.Close()
	r, err := OpenDisk(dir, DiskOptions{Reset: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if st := r.Stats(); st.Keys != 0 {
		t.Fatalf("reset store still holds %d keys", st.Keys)
	}
	if _, ok, _ := r.Get([]byte("stale")); ok {
		t.Fatal("reset store resolves a stale key")
	}
}

func TestDiskResidentBelowBytes(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	val := make([]byte, 4096)
	for i := uint64(0); i < 64; i++ {
		if err := d.Put(U64Key('d', i), val); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.Resident*4 > st.Bytes {
		t.Fatalf("locator not sparse: resident=%d of bytes=%d", st.Resident, st.Bytes)
	}
}

func TestLRU(t *testing.T) {
	l := NewLRU[int, string](2)
	l.Put(1, "a")
	l.Put(2, "b")
	if v, ok := l.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) = %q ok=%v", v, ok)
	}
	l.Put(3, "c") // evicts 2 (1 was just used)
	if _, ok := l.Get(2); ok {
		t.Fatal("LRU kept the least recently used entry")
	}
	if _, ok := l.Get(1); !ok {
		t.Fatal("LRU evicted the recently used entry")
	}
	l.Put(1, "a2")
	if v, _ := l.Get(1); v != "a2" {
		t.Fatalf("replace failed: %q", v)
	}
	l.Remove(1)
	if _, ok := l.Get(1); ok {
		t.Fatal("Remove left the entry")
	}
	hits, misses := l.Counters()
	if hits == 0 || misses == 0 {
		t.Fatalf("counters idle: hits=%d misses=%d", hits, misses)
	}
	l.Clear()
	if l.Len() != 0 {
		t.Fatal("Clear left entries")
	}
}
