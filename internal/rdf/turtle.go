package rdf

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
	"unicode"
)

// TurtleDecoder reads a practical subset of Turtle (RDF 1.1): @prefix
// and @base directives (and their SPARQL-style PREFIX/BASE forms),
// prefixed names, 'a' for rdf:type, predicate lists (';'), object
// lists (','), blank nodes (labelled and anonymous '[]' property
// lists), and the literal forms of N-Triples plus numeric and boolean
// shorthand. Collections '(...)' are not supported (rare in LOD
// entity dumps).
//
// Published LOD datasets are overwhelmingly Turtle or N-Triples; this
// decoder lets the pipeline ingest both.
type TurtleDecoder struct {
	r        *bufio.Reader
	prefixes map[string]string
	base     string
	line     int

	// tokenizer state
	tok     string
	tokKind ttKind
	peeked  bool

	// pending triples emitted by blank-node property lists
	pending []Triple
	anonSeq int
}

type ttKind int

const (
	tkEOF       ttKind = iota
	tkIRI              // <...>
	tkPName            // prefix:local or prefix: or :local
	tkLiteral          // "..." with optional @lang or ^^type (already decoded)
	tkPunct            // . ; , [ ] ( )
	tkA                // the keyword 'a'
	tkNumber           // numeric shorthand
	tkBool             // true/false
	tkDirective        // @prefix / @base / PREFIX / BASE
)

// NewTurtleDecoder returns a decoder reading Turtle from r.
func NewTurtleDecoder(r io.Reader) *TurtleDecoder {
	return &TurtleDecoder{
		r: bufio.NewReaderSize(r, 64<<10),
		prefixes: map[string]string{
			"rdf": "http://www.w3.org/1999/02/22-rdf-syntax-ns#",
		},
	}
}

// errf builds a positioned parse error.
func (d *TurtleDecoder) errf(format string, args ...any) error {
	return &ParseError{Line: d.line + 1, Msg: "turtle: " + fmt.Sprintf(format, args...)}
}

// DecodeAll parses the whole stream.
func (d *TurtleDecoder) DecodeAll() ([]Triple, error) {
	var out []Triple
	for {
		ts, err := d.Decode()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, ts...)
	}
}

// Decode parses the next statement, returning the triples it yields
// (a statement with predicate/object lists yields several). io.EOF
// signals the end of the stream.
func (d *TurtleDecoder) Decode() ([]Triple, error) {
	if len(d.pending) > 0 {
		out := d.pending
		d.pending = nil
		return out, nil
	}
	kind, tok, err := d.peek()
	if err != nil {
		return nil, err
	}
	if kind == tkEOF {
		return nil, io.EOF
	}
	if kind == tkDirective {
		d.next()
		if err := d.directive(tok); err != nil {
			return nil, err
		}
		return d.Decode()
	}
	subj, err := d.subject()
	if err != nil {
		return nil, err
	}
	// "[ ... ] ." — a blank-node property list may stand alone as a
	// statement, with no further predicate list.
	var triples []Triple
	if k, t, err := d.peek(); err == nil && subj.IsBlank() && k == tkPunct && t == "." {
		d.next()
		out := d.pending
		d.pending = nil
		return out, nil
	}
	triples, err = d.predicateObjectList(subj)
	if err != nil {
		return nil, err
	}
	if err := d.expectPunct("."); err != nil {
		return nil, err
	}
	triples = append(triples, d.pending...)
	d.pending = nil
	return triples, nil
}

func (d *TurtleDecoder) directive(tok string) error {
	lower := strings.ToLower(strings.TrimPrefix(tok, "@"))
	switch lower {
	case "prefix":
		kind, name, err := d.next()
		if err != nil {
			return err
		}
		if kind != tkPName || !strings.HasSuffix(name, ":") {
			return d.errf("@prefix wants 'name:', got %q", name)
		}
		kind, iri, err := d.next()
		if err != nil {
			return err
		}
		if kind != tkIRI {
			return d.errf("@prefix wants an IRI, got %q", iri)
		}
		d.prefixes[strings.TrimSuffix(name, ":")] = d.resolve(iri)
	case "base":
		kind, iri, err := d.next()
		if err != nil {
			return err
		}
		if kind != tkIRI {
			return d.errf("@base wants an IRI, got %q", iri)
		}
		d.base = d.resolve(iri)
	default:
		return d.errf("unknown directive %q", tok)
	}
	// '@prefix'/'@base' end with '.', SPARQL-style PREFIX/BASE do not.
	if strings.HasPrefix(tok, "@") {
		return d.expectPunct(".")
	}
	return nil
}

func (d *TurtleDecoder) subject() (Term, error) {
	kind, tok, err := d.next()
	if err != nil {
		return Term{}, err
	}
	switch kind {
	case tkIRI:
		return NewIRI(d.resolve(tok)), nil
	case tkPName:
		if strings.HasPrefix(tok, "_:") {
			return NewBlank(tok[2:]), nil
		}
		iri, err := d.expand(tok)
		if err != nil {
			return Term{}, err
		}
		return NewIRI(iri), nil
	case tkPunct:
		if tok == "[" {
			return d.anonSubject()
		}
	}
	return Term{}, d.errf("bad subject token %q", tok)
}

// anonSubject handles "[ p o ; ... ] ." — an anonymous blank node with
// its own property list.
func (d *TurtleDecoder) anonSubject() (Term, error) {
	bn := d.freshBlank()
	if k, t, err := d.peek(); err == nil && k == tkPunct && t == "]" {
		d.next()
		return bn, nil
	}
	ts, err := d.predicateObjectList(bn)
	if err != nil {
		return Term{}, err
	}
	if err := d.expectPunct("]"); err != nil {
		return Term{}, err
	}
	d.pending = append(d.pending, ts...)
	return bn, nil
}

func (d *TurtleDecoder) freshBlank() Term {
	d.anonSeq++
	return NewBlank(fmt.Sprintf("anon%d", d.anonSeq))
}

func (d *TurtleDecoder) predicateObjectList(subj Term) ([]Triple, error) {
	var out []Triple
	for {
		pred, err := d.predicate()
		if err != nil {
			return nil, err
		}
		for {
			obj, extra, err := d.object()
			if err != nil {
				return nil, err
			}
			out = append(out, Triple{Subject: subj, Predicate: pred, Object: obj})
			out = append(out, extra...)
			k, t, err := d.peek()
			if err != nil {
				return nil, err
			}
			if k == tkPunct && t == "," {
				d.next()
				continue
			}
			break
		}
		k, t, err := d.peek()
		if err != nil {
			return nil, err
		}
		if k == tkPunct && t == ";" {
			d.next()
			// A trailing ';' before '.' or ']' is legal Turtle.
			if k2, t2, err := d.peek(); err == nil && k2 == tkPunct && (t2 == "." || t2 == "]") {
				break
			}
			continue
		}
		break
	}
	return out, nil
}

func (d *TurtleDecoder) predicate() (Term, error) {
	kind, tok, err := d.next()
	if err != nil {
		return Term{}, err
	}
	switch kind {
	case tkA:
		return NewIRI(RDFType), nil
	case tkIRI:
		return NewIRI(d.resolve(tok)), nil
	case tkPName:
		if strings.HasPrefix(tok, "_:") {
			return Term{}, d.errf("blank node cannot be a predicate")
		}
		iri, err := d.expand(tok)
		if err != nil {
			return Term{}, err
		}
		return NewIRI(iri), nil
	}
	return Term{}, d.errf("bad predicate token %q", tok)
}

// object returns the object term plus any triples produced by a nested
// anonymous blank node.
func (d *TurtleDecoder) object() (Term, []Triple, error) {
	kind, tok, err := d.next()
	if err != nil {
		return Term{}, nil, err
	}
	switch kind {
	case tkIRI:
		return NewIRI(d.resolve(tok)), nil, nil
	case tkPName:
		if strings.HasPrefix(tok, "_:") {
			return NewBlank(tok[2:]), nil, nil
		}
		iri, err := d.expand(tok)
		if err != nil {
			return Term{}, nil, err
		}
		return NewIRI(iri), nil, nil
	case tkLiteral:
		return d.literalFromToken(tok)
	case tkNumber:
		dt := "http://www.w3.org/2001/XMLSchema#integer"
		if strings.ContainsAny(tok, ".eE") {
			dt = "http://www.w3.org/2001/XMLSchema#decimal"
		}
		return NewTypedLiteral(tok, dt), nil, nil
	case tkBool:
		return NewTypedLiteral(tok, "http://www.w3.org/2001/XMLSchema#boolean"), nil, nil
	case tkPunct:
		if tok == "[" {
			bn := d.freshBlank()
			if k, t, err := d.peek(); err == nil && k == tkPunct && t == "]" {
				d.next()
				return bn, nil, nil
			}
			ts, err := d.predicateObjectList(bn)
			if err != nil {
				return Term{}, nil, err
			}
			if err := d.expectPunct("]"); err != nil {
				return Term{}, nil, err
			}
			return bn, ts, nil
		}
	}
	return Term{}, nil, d.errf("bad object token %q", tok)
}

// literalFromToken decodes the raw literal token captured by the
// lexer: lexical\x00lang or lexical\x01datatypeToken.
func (d *TurtleDecoder) literalFromToken(tok string) (Term, []Triple, error) {
	if i := strings.IndexByte(tok, 0); i >= 0 {
		return NewLangLiteral(tok[:i], tok[i+1:]), nil, nil
	}
	if i := strings.IndexByte(tok, 1); i >= 0 {
		dtTok := tok[i+1:]
		var dt string
		if strings.HasPrefix(dtTok, "<") {
			dt = d.resolve(strings.Trim(dtTok, "<>"))
		} else {
			var err error
			dt, err = d.expand(dtTok)
			if err != nil {
				return Term{}, nil, err
			}
		}
		return NewTypedLiteral(tok[:i], dt), nil, nil
	}
	return NewLiteral(tok), nil, nil
}

func (d *TurtleDecoder) expand(pname string) (string, error) {
	i := strings.IndexByte(pname, ':')
	if i < 0 {
		return "", d.errf("prefixed name %q lacks ':'", pname)
	}
	ns, ok := d.prefixes[pname[:i]]
	if !ok {
		return "", d.errf("undefined prefix %q", pname[:i])
	}
	return ns + pname[i+1:], nil
}

// resolve applies @base to relative IRIs (best-effort: absolute IRIs
// pass through).
func (d *TurtleDecoder) resolve(iri string) string {
	if d.base == "" || strings.Contains(iri, "://") || strings.HasPrefix(iri, "urn:") {
		return iri
	}
	if strings.HasPrefix(iri, "#") || !strings.Contains(iri, ":") {
		return d.base + iri
	}
	return iri
}

func (d *TurtleDecoder) expectPunct(p string) error {
	kind, tok, err := d.next()
	if err != nil {
		return err
	}
	if kind != tkPunct || tok != p {
		return d.errf("expected %q, got %q", p, tok)
	}
	return nil
}

// --- lexer ---------------------------------------------------------

func (d *TurtleDecoder) peek() (ttKind, string, error) {
	if !d.peeked {
		k, t, err := d.lex()
		if err != nil {
			return 0, "", err
		}
		d.tokKind, d.tok, d.peeked = k, t, true
	}
	return d.tokKind, d.tok, nil
}

func (d *TurtleDecoder) next() (ttKind, string, error) {
	k, t, err := d.peek()
	d.peeked = false
	return k, t, err
}

func (d *TurtleDecoder) readByte() (byte, bool) {
	b, err := d.r.ReadByte()
	if err != nil {
		return 0, false
	}
	if b == '\n' {
		d.line++
	}
	return b, true
}

func (d *TurtleDecoder) unread(b byte) {
	if b == '\n' {
		d.line--
	}
	d.r.UnreadByte()
}

func (d *TurtleDecoder) lex() (ttKind, string, error) {
	// Skip whitespace and comments.
	for {
		b, ok := d.readByte()
		if !ok {
			return tkEOF, "", nil
		}
		if b == '#' {
			for {
				c, ok := d.readByte()
				if !ok {
					return tkEOF, "", nil
				}
				if c == '\n' {
					break
				}
			}
			continue
		}
		if b == ' ' || b == '\t' || b == '\n' || b == '\r' {
			continue
		}
		switch b {
		case '<':
			return d.lexIRI()
		case '"', '\'':
			return d.lexLiteral(b)
		case '.', ';', ',', '[', ']', '(', ')':
			// '.' may start a decimal number (rare); treat as punct —
			// Turtle numbers in LOD start with a digit or sign.
			return tkPunct, string(b), nil
		case '@':
			word := d.lexWord()
			if word == "prefix" || word == "base" {
				return tkDirective, "@" + word, nil
			}
			return 0, "", d.errf("unexpected @%s", word)
		}
		if b == '+' || b == '-' || (b >= '0' && b <= '9') {
			d.unread(b)
			return d.lexNumber()
		}
		// Bare word: 'a', true/false, PREFIX/BASE, or a prefixed name.
		d.unread(b)
		return d.lexName()
	}
}

func (d *TurtleDecoder) lexIRI() (ttKind, string, error) {
	var sb strings.Builder
	for {
		b, ok := d.readByte()
		if !ok {
			return 0, "", d.errf("unterminated IRI")
		}
		if b == '>' {
			v, err := unescape(sb.String())
			if err != nil {
				return 0, "", d.errf("IRI: %v", err)
			}
			return tkIRI, v, nil
		}
		sb.WriteByte(b)
	}
}

// lexLiteral handles short and long forms with either quote character.
func (d *TurtleDecoder) lexLiteral(q byte) (ttKind, string, error) {
	long := false
	b1, ok1 := d.readByte()
	if ok1 && b1 == q {
		b2, ok2 := d.readByte()
		if ok2 && b2 == q {
			long = true
		} else {
			if ok2 {
				d.unread(b2)
			}
			// empty short literal
			return d.lexLiteralSuffix("")
		}
	} else if ok1 {
		d.unread(b1)
	}

	var sb strings.Builder
	quoteRun := 0
	for {
		b, ok := d.readByte()
		if !ok {
			return 0, "", d.errf("unterminated literal")
		}
		if b == '\\' {
			quoteRun = 0
			esc, ok := d.readByte()
			if !ok {
				return 0, "", d.errf("dangling escape")
			}
			r, err := decodeStreamEscape(d, esc)
			if err != nil {
				return 0, "", err
			}
			sb.WriteRune(r)
			continue
		}
		if b == q {
			if !long {
				return d.lexLiteralSuffix(sb.String())
			}
			quoteRun++
			if quoteRun == 3 {
				s := sb.String()
				return d.lexLiteralSuffix(s[:len(s)-2])
			}
			sb.WriteByte(b)
			continue
		}
		quoteRun = 0
		if !long && (b == '\n' || b == '\r') {
			return 0, "", d.errf("newline in short literal")
		}
		sb.WriteByte(b)
	}
}

// lexLiteralSuffix captures an optional @lang or ^^datatype after a
// literal, encoding them into the token (see literalFromToken).
func (d *TurtleDecoder) lexLiteralSuffix(lex string) (ttKind, string, error) {
	b, ok := d.readByte()
	if !ok {
		return tkLiteral, lex, nil
	}
	switch b {
	case '@':
		lang := d.lexWordExt("-")
		if lang == "" {
			return 0, "", d.errf("empty language tag")
		}
		return tkLiteral, lex + "\x00" + lang, nil
	case '^':
		b2, ok := d.readByte()
		if !ok || b2 != '^' {
			return 0, "", d.errf("expected ^^ before datatype")
		}
		b3, ok := d.readByte()
		if !ok {
			return 0, "", d.errf("missing datatype")
		}
		if b3 == '<' {
			_, iri, err := d.lexIRI()
			if err != nil {
				return 0, "", err
			}
			return tkLiteral, lex + "\x01<" + iri + ">", nil
		}
		d.unread(b3)
		name := d.lexWordExt(":._-")
		if name == "" {
			return 0, "", d.errf("missing datatype")
		}
		return tkLiteral, lex + "\x01" + name, nil
	default:
		d.unread(b)
		return tkLiteral, lex, nil
	}
}

func (d *TurtleDecoder) lexNumber() (ttKind, string, error) {
	var sb strings.Builder
	for {
		b, ok := d.readByte()
		if !ok {
			break
		}
		if (b >= '0' && b <= '9') || b == '+' || b == '-' || b == '.' || b == 'e' || b == 'E' {
			sb.WriteByte(b)
			continue
		}
		d.unread(b)
		break
	}
	s := sb.String()
	// A trailing '.' is the statement terminator, not part of the number.
	if strings.HasSuffix(s, ".") {
		s = s[:len(s)-1]
		d.r.UnreadByte() // put the '.' back (never a newline)
	}
	if s == "" || s == "+" || s == "-" {
		return 0, "", d.errf("malformed number")
	}
	return tkNumber, s, nil
}

// lexWord reads [A-Za-z]+.
func (d *TurtleDecoder) lexWord() string { return d.lexWordExt("") }

func (d *TurtleDecoder) lexWordExt(extra string) string {
	var sb strings.Builder
	for {
		b, ok := d.readByte()
		if !ok {
			break
		}
		r := rune(b)
		if unicode.IsLetter(r) || unicode.IsDigit(r) || strings.IndexByte(extra, b) >= 0 {
			sb.WriteByte(b)
			continue
		}
		d.unread(b)
		break
	}
	return sb.String()
}

// lexName reads a bare name: 'a', booleans, SPARQL directives, blank
// nodes (_:x) and prefixed names (p:local, :local, p:).
func (d *TurtleDecoder) lexName() (ttKind, string, error) {
	var sb strings.Builder
	for {
		b, ok := d.readByte()
		if !ok {
			break
		}
		if isNameByte(b) {
			sb.WriteByte(b)
			continue
		}
		d.unread(b)
		break
	}
	s := sb.String()
	switch {
	case s == "":
		b, _ := d.readByte()
		return 0, "", d.errf("unexpected character %q", b)
	case s == "a":
		return tkA, s, nil
	case s == "true" || s == "false":
		return tkBool, s, nil
	case strings.EqualFold(s, "prefix") && !strings.Contains(s, ":"):
		return tkDirective, s, nil
	case strings.EqualFold(s, "base") && !strings.Contains(s, ":"):
		return tkDirective, s, nil
	case strings.HasPrefix(s, "_:"):
		return tkPName, s, nil
	case strings.Contains(s, ":"):
		return tkPName, s, nil
	default:
		return 0, "", d.errf("unexpected token %q", s)
	}
}

// isNameByte reports bytes legal inside a bare name. '.' is excluded:
// it terminates the statement (dotted local names need IRI syntax).
func isNameByte(b byte) bool {
	return b == ':' || b == '_' || b == '-' ||
		(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9') ||
		b >= 0x80 // UTF-8 continuation/lead bytes in local names
}

// decodeStreamEscape mirrors decodeEscape for the streaming lexer.
func decodeStreamEscape(d *TurtleDecoder, c byte) (rune, error) {
	switch c {
	case 't':
		return '\t', nil
	case 'n':
		return '\n', nil
	case 'r':
		return '\r', nil
	case 'b':
		return '\b', nil
	case 'f':
		return '\f', nil
	case '"':
		return '"', nil
	case '\'':
		return '\'', nil
	case '\\':
		return '\\', nil
	case 'u', 'U':
		n := 4
		if c == 'U' {
			n = 8
		}
		var v rune
		for i := 0; i < n; i++ {
			hb, ok := d.readByte()
			if !ok {
				return 0, d.errf("truncated unicode escape")
			}
			var digit rune
			switch {
			case hb >= '0' && hb <= '9':
				digit = rune(hb - '0')
			case hb >= 'a' && hb <= 'f':
				digit = rune(hb-'a') + 10
			case hb >= 'A' && hb <= 'F':
				digit = rune(hb-'A') + 10
			default:
				return 0, d.errf("invalid hex digit %q", hb)
			}
			v = v<<4 | digit
		}
		return v, nil
	default:
		return 0, d.errf("invalid escape \\%c", c)
	}
}

// ParseTurtleString parses a complete Turtle document from a string.
func ParseTurtleString(doc string) ([]Triple, error) {
	return NewTurtleDecoder(strings.NewReader(doc)).DecodeAll()
}
