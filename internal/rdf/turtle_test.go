package rdf

import (
	"errors"
	"strings"
	"testing"
)

func parseTTL(t *testing.T, doc string) []Triple {
	t.Helper()
	ts, err := ParseTurtleString(doc)
	if err != nil {
		t.Fatalf("ParseTurtleString: %v", err)
	}
	return ts
}

func TestTurtleBasic(t *testing.T) {
	ts := parseTTL(t, `
@prefix ex: <http://ex.org/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .

ex:Paris a ex:City ;
    rdfs:label "Paris"@fr , "Paris"@en ;
    ex:population 2161000 ;
    ex:country ex:France .
`)
	if len(ts) != 5 {
		t.Fatalf("got %d triples, want 5:\n%v", len(ts), ts)
	}
	if ts[0].Predicate.Value != RDFType || ts[0].Object != NewIRI("http://ex.org/City") {
		t.Errorf("'a' not expanded: %v", ts[0])
	}
	if ts[1].Object != NewLangLiteral("Paris", "fr") || ts[2].Object != NewLangLiteral("Paris", "en") {
		t.Errorf("object list wrong: %v %v", ts[1].Object, ts[2].Object)
	}
	if ts[3].Object.Datatype != "http://www.w3.org/2001/XMLSchema#integer" || ts[3].Object.Value != "2161000" {
		t.Errorf("numeric shorthand: %#v", ts[3].Object)
	}
	if ts[4].Object != NewIRI("http://ex.org/France") {
		t.Errorf("resource object: %v", ts[4].Object)
	}
	for _, tr := range ts {
		if tr.Subject != NewIRI("http://ex.org/Paris") {
			t.Errorf("subject drifted: %v", tr.Subject)
		}
	}
}

func TestTurtleSparqlDirectives(t *testing.T) {
	ts := parseTTL(t, `
PREFIX ex: <http://ex.org/>
BASE <http://base.org/>
ex:a ex:p <rel> .
`)
	if len(ts) != 1 {
		t.Fatalf("triples=%v", ts)
	}
	if ts[0].Object != NewIRI("http://base.org/rel") {
		t.Errorf("base resolution: %v", ts[0].Object)
	}
}

func TestTurtleLiterals(t *testing.T) {
	ts := parseTTL(t, `
@prefix ex: <http://ex.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:a ex:p "plain" .
ex:a ex:p 'single' .
ex:a ex:p """long
"quoted" text""" .
ex:a ex:p "typed"^^xsd:token .
ex:a ex:p "iri-typed"^^<http://ex.org/dt> .
ex:a ex:p 3.14 .
ex:a ex:p true .
ex:a ex:p "esc\t\"x\"" .
`)
	if len(ts) != 8 {
		t.Fatalf("got %d triples", len(ts))
	}
	if ts[0].Object != NewLiteral("plain") || ts[1].Object != NewLiteral("single") {
		t.Errorf("short literals: %v %v", ts[0].Object, ts[1].Object)
	}
	if want := "long\n\"quoted\" text"; ts[2].Object.Value != want {
		t.Errorf("long literal = %q, want %q", ts[2].Object.Value, want)
	}
	if ts[3].Object.Datatype != "http://www.w3.org/2001/XMLSchema#token" {
		t.Errorf("pname datatype: %#v", ts[3].Object)
	}
	if ts[4].Object.Datatype != "http://ex.org/dt" {
		t.Errorf("iri datatype: %#v", ts[4].Object)
	}
	if ts[5].Object.Value != "3.14" || ts[5].Object.Datatype != "http://www.w3.org/2001/XMLSchema#decimal" {
		t.Errorf("decimal: %#v", ts[5].Object)
	}
	if ts[6].Object.Value != "true" {
		t.Errorf("boolean: %#v", ts[6].Object)
	}
	if ts[7].Object.Value != "esc\t\"x\"" {
		t.Errorf("escapes: %q", ts[7].Object.Value)
	}
}

func TestTurtleBlankNodes(t *testing.T) {
	ts := parseTTL(t, `
@prefix ex: <http://ex.org/> .
_:x ex:p ex:a .
ex:a ex:q [ ex:inner "v" ] .
[ ex:standalone "w" ] .
`)
	if len(ts) != 4 {
		t.Fatalf("got %d triples:\n%v", len(ts), ts)
	}
	if !ts[0].Subject.IsBlank() || ts[0].Subject.Value != "x" {
		t.Errorf("labelled blank subject: %v", ts[0].Subject)
	}
	// ex:a ex:q _:anonN plus _:anonN ex:inner "v".
	if !ts[1].Object.IsBlank() {
		t.Errorf("anon object: %v", ts[1].Object)
	}
	inner := ts[2]
	if inner.Subject != ts[1].Object || inner.Object != NewLiteral("v") {
		t.Errorf("nested property list: %v", inner)
	}
	if !ts[3].Subject.IsBlank() || ts[3].Object != NewLiteral("w") {
		t.Errorf("standalone anon subject: %v", ts[3])
	}
}

func TestTurtleComments(t *testing.T) {
	ts := parseTTL(t, `
# leading comment
@prefix ex: <http://ex.org/> . # trailing
ex:a ex:p ex:b . # another
`)
	if len(ts) != 1 {
		t.Fatalf("triples=%v", ts)
	}
}

func TestTurtleErrors(t *testing.T) {
	bad := []string{
		`ex:a ex:p ex:b .`,                          // undefined prefix
		`@prefix ex: <http://x/> . ex:a _:b ex:c .`, // blank predicate
		`@prefix ex: <http://x/> . ex:a ex:p "unterminated .`,
		`@prefix ex: <http://x/> . ex:a ex:p ex:b`,      // missing dot
		`@unknown <http://x/> .`,                        // bad directive
		`@prefix ex <http://x/> .`,                      // prefix without colon
		`@prefix ex: "notaniri" .`,                      // prefix non-IRI
		`@prefix ex: <http://x/> . ex:a ex:p "x"^^ 4 .`, // bad datatype
		`@prefix ex: <http://x/> . ex:a ex:p "x"@ .`,    // empty lang
	}
	for _, doc := range bad {
		if _, err := ParseTurtleString(doc); err == nil {
			t.Errorf("accepted invalid turtle: %s", doc)
		} else {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Errorf("error for %q is not *ParseError: %v", doc, err)
			}
		}
	}
}

func TestTurtleEquivalentToNTriples(t *testing.T) {
	// The same graph in both syntaxes must parse identically (modulo
	// statement order, which both preserve here).
	nt := `<http://ex.org/a> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex.org/T> .
<http://ex.org/a> <http://ex.org/name> "Alice" .
<http://ex.org/a> <http://ex.org/knows> <http://ex.org/b> .
`
	ttl := `@prefix ex: <http://ex.org/> .
ex:a a ex:T ; ex:name "Alice" ; ex:knows ex:b .
`
	fromNT, err := ParseString(nt)
	if err != nil {
		t.Fatal(err)
	}
	fromTTL := parseTTL(t, ttl)
	if len(fromNT) != len(fromTTL) {
		t.Fatalf("lengths differ: %d vs %d", len(fromNT), len(fromTTL))
	}
	for i := range fromNT {
		if fromNT[i] != fromTTL[i] {
			t.Errorf("triple %d: NT %v vs TTL %v", i, fromNT[i], fromTTL[i])
		}
	}
}

func TestTurtleLargeRoundTrip(t *testing.T) {
	// Serialize a chunk of N-Triples, re-read as Turtle (N-Triples is a
	// subset of Turtle).
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		sb.WriteString(`<http://ex.org/s` + string(rune('a'+i%26)) + `> <http://ex.org/p> "v` + strings.Repeat("x", i%7) + `" .` + "\n")
	}
	fromNT, err := ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	fromTTL, err := ParseTurtleString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(fromNT) != len(fromTTL) {
		t.Fatalf("NT-as-Turtle mismatch: %d vs %d", len(fromNT), len(fromTTL))
	}
}

func TestTurtleEmptyAndEOF(t *testing.T) {
	ts := parseTTL(t, "")
	if len(ts) != 0 {
		t.Errorf("empty doc gave %v", ts)
	}
	ts = parseTTL(t, "# only a comment\n")
	if len(ts) != 0 {
		t.Errorf("comment-only doc gave %v", ts)
	}
}
