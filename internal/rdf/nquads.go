package rdf

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Quad is a triple with the graph label of its source — the shape of
// Web-crawl corpora such as the Billion Triple Challenge datasets,
// where the fourth term records which dataset published the statement.
type Quad struct {
	Triple
	// Graph is the graph label IRI, or the zero Term for statements in
	// the default graph.
	Graph Term
}

// QuadDecoder reads N-Quads: one statement per line, with an optional
// graph term before the final '.'. Lines without a graph term parse as
// default-graph statements, so any N-Triples document is also a valid
// N-Quads document.
type QuadDecoder struct {
	r    *bufio.Reader
	line int
	// Strict mirrors Decoder.Strict.
	Strict bool
}

// NewQuadDecoder returns a QuadDecoder reading from r.
func NewQuadDecoder(r io.Reader) *QuadDecoder {
	return &QuadDecoder{r: bufio.NewReaderSize(r, 64<<10)}
}

// Decode returns the next quad, or io.EOF at end of stream.
func (d *QuadDecoder) Decode() (Quad, error) {
	for {
		d.line++
		raw, err := d.r.ReadString('\n')
		if err != nil && err != io.EOF {
			return Quad{}, fmt.Errorf("rdf: read: %w", err)
		}
		atEOF := err == io.EOF
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			if atEOF {
				return Quad{}, io.EOF
			}
			continue
		}
		q, perr := d.parseLine(line)
		if perr != nil {
			return Quad{}, perr
		}
		return q, nil
	}
}

// DecodeAll reads the remaining stream.
func (d *QuadDecoder) DecodeAll() ([]Quad, error) {
	var out []Quad
	for {
		q, err := d.Decode()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, q)
	}
}

func (d *QuadDecoder) errf(format string, args ...any) *ParseError {
	return &ParseError{Line: d.line, Msg: "nquads: " + fmt.Sprintf(format, args...)}
}

func (d *QuadDecoder) parseLine(line string) (Quad, error) {
	// UTF-8 by definition, like N-Triples (see Decoder.parseLine).
	if !utf8.ValidString(line) {
		return Quad{}, d.errf("invalid UTF-8 in statement")
	}
	p := &lineParser{s: line}
	subj, err := p.term()
	if err != nil {
		return Quad{}, d.errf("subject: %v", err)
	}
	if !subj.IsResource() {
		return Quad{}, d.errf("subject must be IRI or blank node")
	}
	p.skipWS()
	pred, err := p.term()
	if err != nil {
		return Quad{}, d.errf("predicate: %v", err)
	}
	if !pred.IsIRI() {
		return Quad{}, d.errf("predicate must be IRI")
	}
	p.skipWS()
	obj, err := p.term()
	if err != nil {
		return Quad{}, d.errf("object: %v", err)
	}
	p.skipWS()
	q := Quad{Triple: Triple{Subject: subj, Predicate: pred, Object: obj}}
	if !p.done() && p.peek() != '.' {
		graph, err := p.term()
		if err != nil {
			return Quad{}, d.errf("graph label: %v", err)
		}
		if !graph.IsResource() {
			return Quad{}, d.errf("graph label must be IRI or blank node")
		}
		q.Graph = graph
		p.skipWS()
	}
	if !p.consume('.') {
		return Quad{}, d.errf("expected terminating '.', got %q", p.rest())
	}
	p.skipWS()
	if !p.done() {
		return Quad{}, d.errf("trailing content after '.': %q", p.rest())
	}
	if d.Strict && subj.IsIRI() && !strings.Contains(subj.Value, ":") {
		return Quad{}, d.errf("relative IRI %q", subj.Value)
	}
	return q, nil
}

// String renders the quad in N-Quads syntax.
func (q Quad) String() string {
	if q.Graph == (Term{}) {
		return q.Triple.String()
	}
	return q.Subject.String() + " " + q.Predicate.String() + " " +
		q.Object.String() + " " + q.Graph.String() + " ."
}

// ParseQuadsString parses a complete N-Quads document from a string.
func ParseQuadsString(doc string) ([]Quad, error) {
	return NewQuadDecoder(strings.NewReader(doc)).DecodeAll()
}
