package rdf

import (
	"strings"
	"testing"
)

// FuzzNTriplesRoundTrip feeds arbitrary documents to the N-Triples
// decoder and checks that (a) it never panics, and (b) whatever it
// accepts survives a serialize→reparse round trip unchanged — the
// property loaders and the owl:sameAs ground-truth path rely on.
func FuzzNTriplesRoundTrip(f *testing.F) {
	seeds := []string{
		"",
		"<http://a> <http://p> <http://b> .",
		"<http://a> <http://p> \"lit\" .",
		"<http://a> <http://p> \"l\"@en .",
		"<http://a> <http://p> \"5\"^^<http://www.w3.org/2001/XMLSchema#int> .",
		"_:b0 <http://p> _:b1 .",
		"# comment\n\n<http://a> <http://p> \"x\\n\\\"y\\\"\" .",
		"<http://a> <http://p> \"\\u00e9\\U0001F600\" .",
		"<http://ex/é> <http://p> \"café 東京\" .",
		"<http://a> <http://p> \"unterminated",
		"malformed line without terms .",
		"<http://a> <http://p> <http://b> . trailing",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		triples, err := ParseString(doc)
		if err != nil {
			return // rejected input: only the no-panic property applies
		}
		out, err := WriteString(triples)
		if err != nil {
			t.Fatalf("accepted triples failed to serialize: %v", err)
		}
		again, err := ParseString(out)
		if err != nil {
			t.Fatalf("serialized form rejected: %v\ndoc: %q\nout: %q", err, doc, out)
		}
		if len(again) != len(triples) {
			t.Fatalf("round trip changed triple count: %d -> %d\ndoc: %q\nout: %q",
				len(triples), len(again), doc, out)
		}
		for i := range triples {
			if !triples[i].Subject.Equal(again[i].Subject) ||
				!triples[i].Predicate.Equal(again[i].Predicate) ||
				!triples[i].Object.Equal(again[i].Object) {
				t.Fatalf("triple %d changed by round trip:\n  before %v\n  after  %v",
					i, triples[i], again[i])
			}
		}
	})
}

// FuzzQuadAndTurtleDecoders drives the N-Quads and Turtle decoders
// with the same arbitrary input: they must never panic, and the quad
// decoder's triples must round-trip through the N-Triples writer like
// plain triples do.
func FuzzQuadAndTurtleDecoders(f *testing.F) {
	seeds := []string{
		"",
		"<http://a> <http://p> <http://b> <http://g> .",
		"<http://a> <http://p> \"x\" .",
		"@prefix ex: <http://ex/> .\nex:a ex:p ex:b .",
		"@base <http://base/> .\n<a> <p> \"v\" ; <q> \"w\" .",
		"ex:a ex:p [ ex:q \"nested\" ] .",
		"<http://a> <http://p> ( \"lists\" \"too\" ) .",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		quads, qerr := NewQuadDecoder(strings.NewReader(doc)).DecodeAll()
		if qerr == nil {
			ts := make([]Triple, len(quads))
			for i, q := range quads {
				ts[i] = q.Triple
			}
			if _, err := WriteString(ts); err != nil {
				t.Fatalf("accepted quads failed to serialize: %v", err)
			}
		}
		_, _ = NewTurtleDecoder(strings.NewReader(doc)).DecodeAll()
	})
}
