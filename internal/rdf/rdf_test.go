package rdf

import (
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://ex.org/a"), "<http://ex.org/a>"},
		{NewBlank("b0"), "_:b0"},
		{NewLiteral("hello"), `"hello"`},
		{NewLangLiteral("bonjour", "fr"), `"bonjour"@fr`},
		{NewTypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer"), `"42"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{NewTypedLiteral("plain", XSDString), `"plain"`},
		{NewLiteral("a\"b\\c\nd"), `"a\"b\\c\nd"`},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String(%v) = %s, want %s", c.term, got, c.want)
		}
	}
}

func TestTermKindString(t *testing.T) {
	if IRI.String() != "IRI" || Blank.String() != "Blank" || Literal.String() != "Literal" {
		t.Errorf("kind names wrong: %s %s %s", IRI, Blank, Literal)
	}
	if got := TermKind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind = %s", got)
	}
}

func TestTermPredicates(t *testing.T) {
	iri := NewIRI("http://ex.org/x")
	bl := NewBlank("n1")
	lit := NewLiteral("v")
	if !iri.IsIRI() || !iri.IsResource() || iri.IsBlank() || iri.IsLiteral() {
		t.Error("IRI predicate flags wrong")
	}
	if !bl.IsBlank() || !bl.IsResource() || bl.IsIRI() || bl.IsLiteral() {
		t.Error("blank predicate flags wrong")
	}
	if !lit.IsLiteral() || lit.IsResource() || lit.IsIRI() || lit.IsBlank() {
		t.Error("literal predicate flags wrong")
	}
}

func TestLocalName(t *testing.T) {
	cases := []struct {
		iri, want string
	}{
		{"http://ex.org/resource/Paris", "Paris"},
		{"http://ex.org/onto#City", "City"},
		{"http://ex.org/resource/Paris/", "Paris"},
		{"urn:uuid:1234", "urn:uuid:1234"},
		{"plain", "plain"},
	}
	for _, c := range cases {
		if got := NewIRI(c.iri).LocalName(); got != c.want {
			t.Errorf("LocalName(%s) = %s, want %s", c.iri, got, c.want)
		}
	}
	if got := NewLiteral("x y").LocalName(); got != "x y" {
		t.Errorf("LocalName(literal) = %q", got)
	}
}

func TestTripleValidate(t *testing.T) {
	good := NewTriple(NewIRI("http://a"), NewIRI("http://p"), NewLiteral("v"))
	if err := good.Validate(); err != nil {
		t.Errorf("valid triple rejected: %v", err)
	}
	badSubj := NewTriple(NewLiteral("v"), NewIRI("http://p"), NewLiteral("v"))
	if err := badSubj.Validate(); err == nil {
		t.Error("literal subject accepted")
	}
	badPred := NewTriple(NewIRI("http://a"), NewBlank("b"), NewLiteral("v"))
	if err := badPred.Validate(); err == nil {
		t.Error("blank predicate accepted")
	}
}

func TestDecodeBasic(t *testing.T) {
	doc := `
# a comment
<http://ex.org/a> <http://ex.org/p> <http://ex.org/b> .
<http://ex.org/a> <http://ex.org/name> "Alice" .
_:n1 <http://ex.org/knows> _:n2 .
<http://ex.org/a> <http://ex.org/bio> "line1\nline2"@en .
<http://ex.org/a> <http://ex.org/age> "30"^^<http://www.w3.org/2001/XMLSchema#integer> .
`
	ts, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if len(ts) != 5 {
		t.Fatalf("got %d triples, want 5", len(ts))
	}
	if ts[0].Object != NewIRI("http://ex.org/b") {
		t.Errorf("triple 0 object = %v", ts[0].Object)
	}
	if ts[1].Object != NewLiteral("Alice") {
		t.Errorf("triple 1 object = %v", ts[1].Object)
	}
	if !ts[2].Subject.IsBlank() || ts[2].Subject.Value != "n1" {
		t.Errorf("triple 2 subject = %v", ts[2].Subject)
	}
	if ts[3].Object.Lang != "en" || ts[3].Object.Value != "line1\nline2" {
		t.Errorf("triple 3 object = %#v", ts[3].Object)
	}
	if ts[4].Object.Datatype != "http://www.w3.org/2001/XMLSchema#integer" {
		t.Errorf("triple 4 datatype = %q", ts[4].Object.Datatype)
	}
}

func TestDecodeUnicodeEscapes(t *testing.T) {
	doc := `<http://ex.org/a> <http://ex.org/p> "Zürich \U0001F600" .`
	ts, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if want := "Zürich \U0001F600"; ts[0].Object.Value != want {
		t.Errorf("got %q, want %q", ts[0].Object.Value, want)
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := []string{
		`<http://a> <http://p> <http://b>`,         // missing dot
		`<http://a> <http://p> .`,                  // missing object
		`"lit" <http://p> <http://b> .`,            // literal subject
		`<http://a> _:b <http://b> .`,              // blank predicate
		`<http://a> <http://p> "unterminated .`,    // unterminated literal
		`<http://a> <http://p> "x"^^bad .`,         // non-IRI datatype
		`<http://a> <http://p> "x"@ .`,             // empty lang
		`<http://a <http://p> <http://b> .`,        // unterminated IRI: swallows rest, missing '.'
		`<http://a> <http://p> <http://b> . extra`, // trailing garbage
		`<http://a> <http://p> "x\qz" .`,           // bad escape
		`<http://a> <http://p> "x\u12" .`,          // truncated unicode escape
		`_: <http://p> <http://b> .`,               // empty blank label
		`? <http://p> <http://b> .`,                // junk subject
	}
	for _, doc := range bad {
		if _, err := ParseString(doc); err == nil {
			t.Errorf("accepted invalid statement: %s", doc)
		} else {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Errorf("error for %q is not *ParseError: %v", doc, err)
			}
		}
	}
}

func TestParseErrorLineNumbers(t *testing.T) {
	doc := "<http://a> <http://p> <http://b> .\n\nbroken line\n"
	_, err := ParseString(doc)
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %v", err)
	}
	if pe.Line != 3 {
		t.Errorf("error line = %d, want 3", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 3") {
		t.Errorf("Error() = %q", pe.Error())
	}
}

func TestStrictMode(t *testing.T) {
	d := NewDecoder(strings.NewReader(`<rel> <http://p> <http://b> .`))
	d.Strict = true
	if _, err := d.Decode(); err == nil {
		t.Error("strict mode accepted relative IRI")
	}
	d = NewDecoder(strings.NewReader(`<http://a> <http://p> "x"@bad_tag! .`))
	d.Strict = true
	if _, err := d.Decode(); err == nil {
		t.Error("strict mode accepted malformed language tag")
	}
	// Lenient mode accepts both.
	ts, err := ParseString(`<rel> <http://p> "x"@bad_tag! .`)
	if err != nil || len(ts) != 1 {
		t.Errorf("lenient mode rejected: %v", err)
	}
}

func TestDecodeNoTrailingNewline(t *testing.T) {
	d := NewDecoder(strings.NewReader(`<http://a> <http://p> "v" .`))
	tr, err := d.Decode()
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if tr.Object.Value != "v" {
		t.Errorf("object = %v", tr.Object)
	}
	if _, err := d.Decode(); err != io.EOF {
		t.Errorf("want io.EOF, got %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ts := []Triple{
		NewTriple(NewIRI("http://ex.org/a"), NewIRI("http://ex.org/p"), NewIRI("http://ex.org/b")),
		NewTriple(NewBlank("x"), NewIRI("http://ex.org/p"), NewLiteral("tab\there \"quoted\"")),
		NewTriple(NewIRI("http://ex.org/a"), NewIRI("http://ex.org/p"), NewLangLiteral("héllo", "fr-CA")),
		NewTriple(NewIRI("http://ex.org/a"), NewIRI("http://ex.org/p"), NewTypedLiteral("3.14", "http://www.w3.org/2001/XMLSchema#decimal")),
	}
	doc, err := WriteString(ts)
	if err != nil {
		t.Fatalf("WriteString: %v", err)
	}
	back, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString(round-trip): %v", err)
	}
	if len(back) != len(ts) {
		t.Fatalf("round trip length %d != %d", len(back), len(ts))
	}
	for i := range ts {
		if back[i] != ts[i] {
			t.Errorf("triple %d: got %v want %v", i, back[i], ts[i])
		}
	}
}

func TestEncoderRejectsInvalid(t *testing.T) {
	var sb strings.Builder
	enc := NewEncoder(&sb)
	bad := NewTriple(NewLiteral("v"), NewIRI("http://p"), NewLiteral("v"))
	if err := enc.Encode(bad); err == nil {
		t.Fatal("encoder accepted invalid triple")
	}
	// Error is sticky.
	good := NewTriple(NewIRI("http://a"), NewIRI("http://p"), NewLiteral("v"))
	if err := enc.Encode(good); err == nil {
		t.Error("sticky error not reported")
	}
}

// Property: any literal string round-trips through encode/parse unchanged.
func TestLiteralRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		// N-Triples statements are line-oriented; the escaper must make any
		// string safe, including embedded newlines and quotes.
		tr := NewTriple(NewIRI("http://ex.org/s"), NewIRI("http://ex.org/p"), NewLiteral(s))
		doc, err := WriteString([]Triple{tr})
		if err != nil {
			return false
		}
		back, err := ParseString(doc)
		if err != nil || len(back) != 1 {
			return false
		}
		return back[0].Object.Value == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: term String() is injective over distinct kinds for same value.
func TestTermStringDistinguishesKinds(t *testing.T) {
	f := func(v string) bool {
		if strings.ContainsAny(v, "<>\"\\\n\r\t ") || v == "" {
			return true // skip values illegal in IRIs; covered elsewhere
		}
		i, b, l := NewIRI(v).String(), NewBlank(v).String(), NewLiteral(v).String()
		return i != b && b != l && i != l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuadDecode(t *testing.T) {
	doc := `
<http://a/s> <http://a/p> "v" <http://graphs.example/dbp> .
<http://a/s2> <http://a/p> <http://a/o> .
_:b <http://a/p> "w"@en _:g .
`
	qs, err := ParseQuadsString(doc)
	if err != nil {
		t.Fatalf("ParseQuadsString: %v", err)
	}
	if len(qs) != 3 {
		t.Fatalf("got %d quads", len(qs))
	}
	if qs[0].Graph != NewIRI("http://graphs.example/dbp") {
		t.Errorf("graph=%v", qs[0].Graph)
	}
	if qs[1].Graph != (Term{}) {
		t.Errorf("default graph not zero: %v", qs[1].Graph)
	}
	if !qs[2].Graph.IsBlank() {
		t.Errorf("blank graph label: %v", qs[2].Graph)
	}
	// String round-trips.
	back, err := ParseQuadsString(qs[0].String() + "\n" + qs[1].String())
	if err != nil || len(back) != 2 || back[0] != qs[0] || back[1] != qs[1] {
		t.Errorf("round trip failed: %v %v", back, err)
	}
}

func TestQuadDecodeErrors(t *testing.T) {
	bad := []string{
		`<http://a/s> <http://a/p> "v" "litgraph" .`, // literal graph label
		`<http://a/s> <http://a/p> "v" <http://g> extra .`,
		`<http://a/s> <http://a/p> .`,
	}
	for _, doc := range bad {
		if _, err := ParseQuadsString(doc); err == nil {
			t.Errorf("accepted invalid quads: %s", doc)
		}
	}
	// Every valid N-Triples doc is valid N-Quads.
	qs, err := ParseQuadsString(`<http://a> <http://p> <http://b> .`)
	if err != nil || len(qs) != 1 {
		t.Errorf("N-Triples-as-N-Quads failed: %v %v", qs, err)
	}
}
