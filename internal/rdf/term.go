// Package rdf implements a minimal RDF data model and an N-Triples
// parser/serializer, sufficient for representing Web-of-Data knowledge
// bases as used by Minoan ER.
//
// The model follows the RDF 1.1 abstract syntax: a graph is a set of
// triples (subject, predicate, object) where subjects are IRIs or blank
// nodes, predicates are IRIs, and objects are IRIs, blank nodes, or
// literals (optionally tagged with a language or a datatype IRI).
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the three kinds of RDF terms.
type TermKind int

const (
	// IRI is an absolute IRI reference such as <http://example.org/a>.
	IRI TermKind = iota
	// Blank is a blank node such as _:b0.
	Blank
	// Literal is a (possibly language-tagged or datatyped) literal.
	Literal
)

// String returns the name of the kind.
func (k TermKind) String() string {
	switch k {
	case IRI:
		return "IRI"
	case Blank:
		return "Blank"
	case Literal:
		return "Literal"
	default:
		return fmt.Sprintf("TermKind(%d)", int(k))
	}
}

// Common vocabulary IRIs used throughout the system.
const (
	// RDFType is the rdf:type predicate.
	RDFType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	// OWLSameAs links descriptions of the same real-world entity.
	OWLSameAs = "http://www.w3.org/2002/07/owl#sameAs"
	// RDFSLabel is the conventional human-readable name predicate.
	RDFSLabel = "http://www.w3.org/2000/01/rdf-schema#label"
	// XSDString is the default literal datatype.
	XSDString = "http://www.w3.org/2001/XMLSchema#string"
)

// Term is one RDF term. The zero value is the empty IRI.
//
// Value holds the IRI text, the blank node label (without "_:"), or the
// literal lexical form, depending on Kind. Lang and Datatype are only
// meaningful for literals and are mutually exclusive per RDF 1.1.
type Term struct {
	Kind     TermKind
	Value    string
	Lang     string
	Datatype string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewBlank returns a blank-node term with the given label (no "_:" prefix).
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// NewLiteral returns a plain literal term.
func NewLiteral(lex string) Term { return Term{Kind: Literal, Value: lex} }

// NewLangLiteral returns a language-tagged literal.
func NewLangLiteral(lex, lang string) Term {
	return Term{Kind: Literal, Value: lex, Lang: lang}
}

// NewTypedLiteral returns a datatyped literal.
func NewTypedLiteral(lex, datatype string) Term {
	return Term{Kind: Literal, Value: lex, Datatype: datatype}
}

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == Blank }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// IsResource reports whether the term can appear as a triple subject.
func (t Term) IsResource() bool { return t.Kind == IRI || t.Kind == Blank }

// Equal reports whether two terms are identical under RDF term equality.
func (t Term) Equal(o Term) bool { return t == o }

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	case Literal:
		s := `"` + escapeLiteral(t.Value) + `"`
		switch {
		case t.Lang != "":
			return s + "@" + t.Lang
		case t.Datatype != "" && t.Datatype != XSDString:
			return s + "^^<" + t.Datatype + ">"
		default:
			return s
		}
	default:
		return fmt.Sprintf("<!invalid term kind %d>", int(t.Kind))
	}
}

// Triple is a single RDF statement.
type Triple struct {
	Subject   Term
	Predicate Term
	Object    Term
}

// NewTriple builds a triple from its three terms.
func NewTriple(s, p, o Term) Triple { return Triple{Subject: s, Predicate: p, Object: o} }

// String renders the triple as one N-Triples line (without newline).
func (tr Triple) String() string {
	return tr.Subject.String() + " " + tr.Predicate.String() + " " + tr.Object.String() + " ."
}

// Validate checks the RDF positional constraints: the subject must be a
// resource and the predicate must be an IRI.
func (tr Triple) Validate() error {
	if !tr.Subject.IsResource() {
		return fmt.Errorf("rdf: subject must be IRI or blank node, got %s", tr.Subject.Kind)
	}
	if !tr.Predicate.IsIRI() {
		return fmt.Errorf("rdf: predicate must be IRI, got %s", tr.Predicate.Kind)
	}
	return nil
}

func escapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\\\"\n\r\t") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// LocalName returns the fragment or last path segment of an IRI, the part
// after the final '#' or '/'. For non-IRI terms it returns Value verbatim.
// Token blocking uses this to extract name evidence from URIs (the
// "infix" of the prefix-infix-suffix scheme).
func (t Term) LocalName() string {
	if t.Kind != IRI {
		return t.Value
	}
	v := strings.TrimRight(t.Value, "/#")
	if i := strings.LastIndexAny(v, "/#"); i >= 0 {
		return v[i+1:]
	}
	return v
}
