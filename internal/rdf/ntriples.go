package rdf

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// ParseError describes a syntax error at a specific line of an N-Triples
// stream.
type ParseError struct {
	Line int    // 1-based line number
	Msg  string // human-readable description
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("rdf: line %d: %s", e.Line, e.Msg)
}

// Decoder reads triples from an N-Triples stream, one statement per line.
// Comment lines (starting with '#') and blank lines are skipped.
type Decoder struct {
	r    *bufio.Reader
	line int
	// Strict causes Decode to reject relative IRIs and malformed language
	// tags. When false (the default) the decoder is lenient, matching the
	// messy reality of published LOD dumps.
	Strict bool
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReaderSize(r, 64<<10)}
}

// Decode returns the next triple, or io.EOF when the stream ends.
func (d *Decoder) Decode() (Triple, error) {
	for {
		d.line++
		raw, err := d.r.ReadString('\n')
		if err != nil && err != io.EOF {
			return Triple{}, fmt.Errorf("rdf: read: %w", err)
		}
		atEOF := err == io.EOF
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			if atEOF {
				return Triple{}, io.EOF
			}
			continue
		}
		t, perr := d.parseLine(line)
		if perr != nil {
			return Triple{}, perr
		}
		return t, nil
	}
}

// DecodeAll reads the remaining stream and returns all triples.
func (d *Decoder) DecodeAll() ([]Triple, error) {
	var out []Triple
	for {
		t, err := d.Decode()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}

func (d *Decoder) errf(format string, args ...any) *ParseError {
	return &ParseError{Line: d.line, Msg: fmt.Sprintf(format, args...)}
}

// parseLine parses one N-Triples statement (without trailing newline).
func (d *Decoder) parseLine(line string) (Triple, error) {
	// N-Triples documents are UTF-8 by definition; raw invalid bytes
	// would silently turn into U+FFFD on re-serialization, breaking
	// the parse → serialize round trip.
	if !utf8.ValidString(line) {
		return Triple{}, d.errf("invalid UTF-8 in statement")
	}
	p := &lineParser{s: line}
	subj, err := p.term()
	if err != nil {
		return Triple{}, d.errf("subject: %v", err)
	}
	if !subj.IsResource() {
		return Triple{}, d.errf("subject must be IRI or blank node")
	}
	p.skipWS()
	pred, err := p.term()
	if err != nil {
		return Triple{}, d.errf("predicate: %v", err)
	}
	if !pred.IsIRI() {
		return Triple{}, d.errf("predicate must be IRI")
	}
	p.skipWS()
	obj, err := p.term()
	if err != nil {
		return Triple{}, d.errf("object: %v", err)
	}
	p.skipWS()
	if !p.consume('.') {
		return Triple{}, d.errf("expected terminating '.', got %q", p.rest())
	}
	p.skipWS()
	if !p.done() {
		return Triple{}, d.errf("trailing content after '.': %q", p.rest())
	}
	if d.Strict {
		if subj.IsIRI() && !strings.Contains(subj.Value, ":") {
			return Triple{}, d.errf("relative IRI %q", subj.Value)
		}
		if obj.IsLiteral() && obj.Lang != "" && !validLangTag(obj.Lang) {
			return Triple{}, d.errf("malformed language tag %q", obj.Lang)
		}
	}
	return Triple{Subject: subj, Predicate: pred, Object: obj}, nil
}

// lineParser is a cursor over one statement.
type lineParser struct {
	s string
	i int
}

func (p *lineParser) done() bool   { return p.i >= len(p.s) }
func (p *lineParser) rest() string { return p.s[p.i:] }
func (p *lineParser) peek() byte   { return p.s[p.i] }
func (p *lineParser) advance()     { p.i++ }
func (p *lineParser) skipWS()      { p.skip(" \t") }
func (p *lineParser) skip(cs string) {
	for p.i < len(p.s) && strings.IndexByte(cs, p.s[p.i]) >= 0 {
		p.i++
	}
}

func (p *lineParser) consume(c byte) bool {
	if p.i < len(p.s) && p.s[p.i] == c {
		p.i++
		return true
	}
	return false
}

func (p *lineParser) term() (Term, error) {
	if p.done() {
		return Term{}, errors.New("unexpected end of statement")
	}
	switch p.peek() {
	case '<':
		return p.iri()
	case '_':
		return p.blank()
	case '"':
		return p.literal()
	default:
		return Term{}, fmt.Errorf("unexpected character %q", p.peek())
	}
}

func (p *lineParser) iri() (Term, error) {
	p.advance() // '<'
	start := p.i
	for p.i < len(p.s) && p.s[p.i] != '>' {
		p.i++
	}
	if p.done() {
		return Term{}, errors.New("unterminated IRI")
	}
	v, err := unescape(p.s[start:p.i])
	if err != nil {
		return Term{}, fmt.Errorf("IRI: %w", err)
	}
	p.advance() // '>'
	return NewIRI(v), nil
}

func (p *lineParser) blank() (Term, error) {
	if p.i+1 >= len(p.s) || p.s[p.i+1] != ':' {
		return Term{}, errors.New("blank node must start with _:")
	}
	p.i += 2
	start := p.i
	for p.i < len(p.s) && !isWS(p.s[p.i]) && p.s[p.i] != '.' {
		p.i++
	}
	if p.i == start {
		return Term{}, errors.New("empty blank node label")
	}
	return NewBlank(p.s[start:p.i]), nil
}

func (p *lineParser) literal() (Term, error) {
	p.advance() // opening '"'
	var b strings.Builder
	for {
		if p.done() {
			return Term{}, errors.New("unterminated literal")
		}
		c := p.peek()
		if c == '"' {
			p.advance()
			break
		}
		if c == '\\' {
			p.advance()
			if p.done() {
				return Term{}, errors.New("dangling escape in literal")
			}
			r, err := decodeEscape(p)
			if err != nil {
				return Term{}, err
			}
			b.WriteRune(r)
			continue
		}
		b.WriteByte(c)
		p.advance()
	}
	lex := b.String()
	// Optional language tag or datatype.
	if !p.done() && p.peek() == '@' {
		p.advance()
		start := p.i
		for p.i < len(p.s) && !isWS(p.s[p.i]) {
			p.i++
		}
		if p.i == start {
			return Term{}, errors.New("empty language tag")
		}
		return NewLangLiteral(lex, p.s[start:p.i]), nil
	}
	if strings.HasPrefix(p.rest(), "^^") {
		p.i += 2
		if p.done() || p.peek() != '<' {
			return Term{}, errors.New("datatype must be an IRI")
		}
		dt, err := p.iri()
		if err != nil {
			return Term{}, fmt.Errorf("datatype: %w", err)
		}
		return NewTypedLiteral(lex, dt.Value), nil
	}
	return NewLiteral(lex), nil
}

// decodeEscape consumes the character(s) after a backslash.
func decodeEscape(p *lineParser) (rune, error) {
	c := p.peek()
	p.advance()
	switch c {
	case 't':
		return '\t', nil
	case 'n':
		return '\n', nil
	case 'r':
		return '\r', nil
	case 'b':
		return '\b', nil
	case 'f':
		return '\f', nil
	case '"':
		return '"', nil
	case '\'':
		return '\'', nil
	case '\\':
		return '\\', nil
	case 'u':
		return hexEscape(p, 4)
	case 'U':
		return hexEscape(p, 8)
	default:
		return 0, fmt.Errorf("invalid escape \\%c", c)
	}
}

func hexEscape(p *lineParser, n int) (rune, error) {
	if p.i+n > len(p.s) {
		return 0, errors.New("truncated unicode escape")
	}
	var v rune
	for k := 0; k < n; k++ {
		c := p.s[p.i]
		p.advance()
		var d rune
		switch {
		case c >= '0' && c <= '9':
			d = rune(c - '0')
		case c >= 'a' && c <= 'f':
			d = rune(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = rune(c-'A') + 10
		default:
			return 0, fmt.Errorf("invalid hex digit %q in unicode escape", c)
		}
		v = v<<4 | d
	}
	if !utf8.ValidRune(v) {
		return utf8.RuneError, nil
	}
	return v, nil
}

// unescape decodes \uXXXX and \UXXXXXXXX escapes inside IRIs.
func unescape(s string) (string, error) {
	if !strings.Contains(s, "\\") {
		return s, nil
	}
	p := &lineParser{s: s}
	var b strings.Builder
	for !p.done() {
		c := p.peek()
		if c != '\\' {
			b.WriteByte(c)
			p.advance()
			continue
		}
		p.advance()
		if p.done() {
			return "", errors.New("dangling escape")
		}
		r, err := decodeEscape(p)
		if err != nil {
			return "", err
		}
		b.WriteRune(r)
	}
	return b.String(), nil
}

func isWS(c byte) bool { return c == ' ' || c == '\t' }

func validLangTag(tag string) bool {
	parts := strings.Split(tag, "-")
	for i, part := range parts {
		if part == "" {
			return false
		}
		for _, r := range part {
			alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
			digit := r >= '0' && r <= '9'
			if i == 0 && !alpha {
				return false
			}
			if !alpha && !digit {
				return false
			}
		}
	}
	return true
}

// Encoder writes triples in N-Triples syntax, one per line.
type Encoder struct {
	w   *bufio.Writer
	err error
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: bufio.NewWriterSize(w, 64<<10)}
}

// Encode writes one triple. The first error encountered is sticky.
func (e *Encoder) Encode(t Triple) error {
	if e.err != nil {
		return e.err
	}
	if err := t.Validate(); err != nil {
		e.err = err
		return err
	}
	if _, err := e.w.WriteString(t.String()); err != nil {
		e.err = fmt.Errorf("rdf: write: %w", err)
		return e.err
	}
	if err := e.w.WriteByte('\n'); err != nil {
		e.err = fmt.Errorf("rdf: write: %w", err)
	}
	return e.err
}

// Flush writes any buffered output to the underlying writer.
func (e *Encoder) Flush() error {
	if e.err != nil {
		return e.err
	}
	if err := e.w.Flush(); err != nil {
		e.err = fmt.Errorf("rdf: flush: %w", err)
	}
	return e.err
}

// ParseString parses a complete N-Triples document held in a string.
func ParseString(doc string) ([]Triple, error) {
	return NewDecoder(strings.NewReader(doc)).DecodeAll()
}

// WriteString serializes triples to an N-Triples document string.
func WriteString(ts []Triple) (string, error) {
	var sb strings.Builder
	enc := NewEncoder(&sb)
	for _, t := range ts {
		if err := enc.Encode(t); err != nil {
			return "", err
		}
	}
	if err := enc.Flush(); err != nil {
		return "", err
	}
	return sb.String(), nil
}
