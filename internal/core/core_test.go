package core

import (
	"testing"

	"repro/internal/blocking"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/kb"
	"repro/internal/match"
	"repro/internal/metablocking"
	"repro/internal/tokenize"
)

// pipeline builds matcher + pruned edges for a generated world.
func pipeline(t *testing.T, w *datagen.World) (*match.Matcher, []metablocking.Edge) {
	t.Helper()
	col := blocking.TokenBlocking(w.Collection, tokenize.Default()).Purge(0).Filter(0.8)
	g := metablocking.Build(col, metablocking.ECBS)
	edges := g.Prune(metablocking.WNP, metablocking.PruneOptions{Assignments: col.Assignments()})
	return match.NewMatcher(w.Collection, match.DefaultOptions()), edges
}

func TestResolverBudget(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(41, 150, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	m, edges := pipeline(t, w)
	res := NewResolver(m, edges, Config{Budget: 50}).Run()
	if res.Comparisons != 50 {
		t.Errorf("comparisons=%d, want exactly 50", res.Comparisons)
	}
	if len(res.Trace) != res.Comparisons {
		t.Errorf("trace length %d != comparisons %d", len(res.Trace), res.Comparisons)
	}
	// Unlimited budget drains the queue and resolves most of the world.
	full := NewResolver(m, edges, Config{}).Run()
	q := eval.EvaluateMatches(w.Collection, w.Truth, full.MatchedPairs(m))
	if q.Recall < 0.8 {
		t.Errorf("full-run recall %.3f too low (%+v)", q.Recall, q)
	}
	if q.Precision < 0.70 {
		t.Errorf("full-run precision %.3f too low (%+v)", q.Precision, q)
	}
}

func TestSchedulerFrontLoadsMatches(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(42, 300, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	m, edges := pipeline(t, w)
	res := NewResolver(m, edges, Config{}).Run()
	// Progressive property: the first half of the trace must contain
	// clearly more matches than the second half.
	half := len(res.Trace) / 2
	first, second := 0, 0
	for i, s := range res.Trace {
		if s.Matched {
			if i < half {
				first++
			} else {
				second++
			}
		}
	}
	if first <= second {
		t.Errorf("matches not front-loaded: first=%d second=%d", first, second)
	}
}

func TestNeighborDiscoveryRecoversPeriphery(t *testing.T) {
	// Periphery KBs: token blocking misses many matches; discovery via
	// neighbor evidence must recover some of them.
	cfg := datagen.Config{
		Seed:        7,
		NumEntities: 250,
		KBs: []datagen.KBConfig{
			{Name: "centerA", Coverage: 1, Profile: datagen.Center()},
			{Name: "periphX", Coverage: 1, Profile: datagen.Periphery()},
		},
		LinksPerEntity: 3,
	}
	w, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, edges := pipeline(t, w)

	with := NewResolver(m, edges, Config{}).Run()
	without := NewResolver(m, edges, Config{DisableDiscovery: true}).Run()

	qWith := eval.EvaluateMatches(w.Collection, w.Truth, with.MatchedPairs(m))
	qWithout := eval.EvaluateMatches(w.Collection, w.Truth, without.MatchedPairs(m))
	if with.Discovered == 0 {
		t.Error("no comparisons were discovered")
	}
	if qWith.Recall <= qWithout.Recall {
		t.Errorf("discovery did not improve recall: with=%.3f without=%.3f",
			qWith.Recall, qWithout.Recall)
	}
}

func TestBenefitModelGains(t *testing.T) {
	c := kb.NewCollection()
	for i := 0; i < 6; i++ {
		kbName := "a"
		if i%2 == 1 {
			kbName = "b"
		}
		c.Add(&kb.Description{URI: string(rune('u' + i)), KB: kbName,
			Attrs: []kb.Attribute{{Predicate: "p", Value: "v"}}})
	}
	m := match.NewMatcher(c, match.DefaultOptions())
	cl := match.NewClusters(6)

	if g := (Quantity{}).Gain(0, 1, cl, m); g != 1 {
		t.Errorf("Quantity singleton gain=%v", g)
	}
	if g := (AttributeCompleteness{}).Gain(0, 1, cl, m); g != 2 {
		t.Errorf("AC singleton gain=%v", g)
	}
	if g := (EntityCoverage{}).Gain(0, 1, cl, m); g != 1 {
		t.Errorf("EC singleton gain=%v", g)
	}
	cl.Merge(0, 1)
	cl.Merge(2, 3)
	// Merging two resolved clusters: quantity counts 4 new pairs,
	// attribute completeness 0 new descriptions, coverage 0 entities.
	if g := (Quantity{}).Gain(0, 2, cl, m); g != 4 {
		t.Errorf("Quantity cluster gain=%v", g)
	}
	if g := (AttributeCompleteness{}).Gain(0, 2, cl, m); g != 0 {
		t.Errorf("AC cluster gain=%v", g)
	}
	if g := (EntityCoverage{}).Gain(0, 2, cl, m); g != 0 {
		t.Errorf("EC cluster gain=%v", g)
	}
	// Extending a cluster with a singleton.
	if g := (AttributeCompleteness{}).Gain(0, 4, cl, m); g != 1 {
		t.Errorf("AC extend gain=%v", g)
	}
	if g := (EntityCoverage{}).Gain(0, 4, cl, m); g != 0 {
		t.Errorf("EC extend gain=%v", g)
	}
}

func TestRelationshipCompletenessGain(t *testing.T) {
	c := kb.NewCollection()
	// a0 -> a1 ; b0 -> b1 (links within KBs).
	c.Add(&kb.Description{URI: "a0", KB: "a", Links: []string{"a1"},
		Attrs: []kb.Attribute{{Predicate: "p", Value: "x"}}})
	c.Add(&kb.Description{URI: "a1", KB: "a",
		Attrs: []kb.Attribute{{Predicate: "p", Value: "y"}}})
	c.Add(&kb.Description{URI: "b0", KB: "b", Links: []string{"b1"},
		Attrs: []kb.Attribute{{Predicate: "p", Value: "x"}}})
	c.Add(&kb.Description{URI: "b1", KB: "b",
		Attrs: []kb.Attribute{{Predicate: "p", Value: "y"}}})
	m := match.NewMatcher(c, match.DefaultOptions())
	cl := match.NewClusters(4)
	rc := RelationshipCompleteness{}
	// Nothing resolved: matching (0,2) resolves 0 links — their
	// neighbors (1 and 3) are still singletons.
	if g := rc.Gain(0, 2, cl, m); g != 0 {
		t.Errorf("gain before neighbor resolution = %v", g)
	}
	cl.Merge(1, 3) // resolve the neighbor pair first
	// Now matching (0,2): each endpoint is newly resolved and has one
	// link to a resolved description → gain 2.
	if g := rc.Gain(0, 2, cl, m); g != 2 {
		t.Errorf("gain after neighbor resolution = %v, want 2", g)
	}
	// Bias follows the frontier.
	if b := rc.Bias(0, 2, cl, m); b != 1 {
		t.Errorf("bias=%v, want 1 (all neighbors resolved)", b)
	}
	if b := rc.Bias(1, 3, cl, m); b != 0 {
		t.Errorf("bias for link-less pair=%v", b)
	}
	if rc.Gain(0, 2, cl, nil) != 0 || rc.Bias(0, 2, cl, nil) != 0 {
		t.Error("nil matcher should be harmless")
	}
}

func TestModelNames(t *testing.T) {
	names := map[string]bool{}
	for _, m := range Models() {
		if m.Name() == "" {
			t.Error("empty model name")
		}
		if names[m.Name()] {
			t.Errorf("duplicate model name %s", m.Name())
		}
		names[m.Name()] = true
	}
	if len(names) != 4 {
		t.Errorf("Models()=%d, want 4", len(names))
	}
}

func TestResolverDeterministic(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(43, 120, datagen.Center(), datagen.Periphery()))
	if err != nil {
		t.Fatal(err)
	}
	m, edges := pipeline(t, w)
	r1 := NewResolver(m, edges, Config{Budget: 200}).Run()
	r2 := NewResolver(m, edges, Config{Budget: 200}).Run()
	if len(r1.Trace) != len(r2.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(r1.Trace), len(r2.Trace))
	}
	for i := range r1.Trace {
		if r1.Trace[i] != r2.Trace[i] {
			t.Fatalf("step %d differs: %+v vs %+v", i, r1.Trace[i], r2.Trace[i])
		}
	}
}

func TestNoRepeatedComparisons(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(44, 100, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	m, edges := pipeline(t, w)
	res := NewResolver(m, edges, Config{}).Run()
	seen := map[blocking.Pair]bool{}
	for _, s := range res.Trace {
		p := blocking.MakePair(s.A, s.B)
		if seen[p] && !s.Recheck {
			t.Fatalf("pair %v compared twice without new evidence", p)
		}
		if !seen[p] && s.Recheck {
			t.Fatalf("pair %v marked recheck on first comparison", p)
		}
		seen[p] = true
	}
}

func TestGainAccounting(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(45, 100, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	m, edges := pipeline(t, w)
	res := NewResolver(m, edges, Config{Benefit: AttributeCompleteness{}}).Run()
	sum := 0.0
	for _, s := range res.Trace {
		sum += s.Gain
	}
	if sum != res.TotalGain {
		t.Errorf("TotalGain=%v, trace sum=%v", res.TotalGain, sum)
	}
	// Attribute-completeness gain is bounded by the number of
	// descriptions.
	if res.TotalGain > float64(w.Collection.Len()) {
		t.Errorf("gain %v exceeds descriptions %d", res.TotalGain, w.Collection.Len())
	}
	if res.String() == "" {
		t.Error("empty String")
	}
}

func TestEmptyEdges(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(46, 20, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	m := match.NewMatcher(w.Collection, match.DefaultOptions())
	res := NewResolver(m, nil, Config{}).Run()
	if res.Comparisons != 0 || res.Matches != 0 {
		t.Errorf("empty edge list produced work: %+v", res)
	}
}

func TestRunResumesSession(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(47, 150, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	m, edges := pipeline(t, w)

	// One run with budget 2k.
	whole := NewResolver(m, edges, Config{Budget: 2000}).Run()

	// Two runs of 1k on the same resolver.
	r := NewResolver(m, edges, Config{Budget: 1000})
	first := r.Run()
	second := r.Run()
	if first.Comparisons != 1000 {
		t.Fatalf("first leg executed %d", first.Comparisons)
	}
	combined := append(append([]Step(nil), first.Trace...), second.Trace...)
	if len(combined) != len(whole.Trace) {
		t.Fatalf("split trace %d != whole %d", len(combined), len(whole.Trace))
	}
	for i := range combined {
		if combined[i] != whole.Trace[i] {
			t.Fatalf("step %d differs after resume: %+v vs %+v", i, combined[i], whole.Trace[i])
		}
	}
	if first.Matches+second.Matches != whole.Matches {
		t.Errorf("match counts differ: %d+%d vs %d", first.Matches, second.Matches, whole.Matches)
	}
}
