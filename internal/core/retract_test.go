package core

import (
	"fmt"
	"testing"

	"repro/internal/blocking"
	"repro/internal/datagen"
	"repro/internal/match"
	"repro/internal/metablocking"
	"repro/internal/tokenize"
)

// retractWorld builds the linked two-KB workload, tombstones a spread
// of ids, and returns the rebuilt matcher and re-pruned edges over the
// survivors plus the pre-eviction resolver inputs.
func retractWorld(t *testing.T, seed int64, n, evictEvery int) (pre, post *match.Matcher, preEdges, postEdges []metablocking.Edge) {
	t.Helper()
	w, err := datagen.Generate(datagen.Config{
		Seed:        seed,
		NumEntities: n,
		KBs: []datagen.KBConfig{
			{Name: "alpha", Coverage: 1, Profile: datagen.Center()},
			{Name: "betaKB", Coverage: 1, Profile: datagen.Periphery()},
		},
		LinksPerEntity: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	col := w.Collection
	frontEdges := func() []metablocking.Edge {
		bl := blocking.TokenBlocking(col, tokenize.Default()).Purge(0).Filter(0.8)
		g := metablocking.Build(bl, metablocking.ECBS)
		return g.Prune(metablocking.WNP, metablocking.PruneOptions{Assignments: bl.Assignments()})
	}
	pre = match.NewMatcher(col, match.DefaultOptions())
	preEdges = frontEdges()
	for id := 0; id < col.Len(); id += evictEvery {
		col.Evict(id)
	}
	post = match.NewMatcher(col, match.DefaultOptions())
	postEdges = frontEdges()
	return pre, post, preEdges, postEdges
}

// TestRetractFreshEqualsNewResolver pins the bit-identity half of the
// contract: retracting a resolver that has executed nothing yields a
// resolver indistinguishable from NewResolver over the surviving
// corpus — the full progressive trace agrees step for step, for any
// worker count and any budget.
func TestRetractFreshEqualsNewResolver(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, budget := range []int{7, 0} {
			t.Run(fmt.Sprintf("workers=%d/budget=%d", workers, budget), func(t *testing.T) {
				_, post, preEdges, postEdges := retractWorld(t, 551, 130, 7)
				cfg := DefaultConfig()
				cfg.Workers = workers

				r := NewResolver(post, preEdges, cfg) // seeded pre-eviction
				r.Retract(post, postEdges, nil)
				got := r.RunBudget(budget)

				want := NewResolver(post, postEdges, cfg).RunBudget(budget)
				if len(got.Trace) != len(want.Trace) {
					t.Fatalf("%d steps, want %d", len(got.Trace), len(want.Trace))
				}
				for i := range want.Trace {
					if got.Trace[i] != want.Trace[i] {
						t.Fatalf("step %d = %+v, want %+v", i, got.Trace[i], want.Trace[i])
					}
				}
			})
		}
	}
}

// TestRetractAfterRun pins the monotone semantics of mid-session
// eviction: after spending budget, retracting with the surviving
// history keeps surviving matches resolved, never touches a dead id
// again, never re-spends an executed surviving pair (except as an
// explicit recheck), and keeps Pending an upper bound on the
// executable comparisons.
func TestRetractAfterRun(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			pre, post, preEdges, postEdges := retractWorld(t, 552, 140, 6)
			col := post.Collection()
			cfg := DefaultConfig()
			cfg.Workers = workers

			r := NewResolver(pre, preEdges, cfg)
			mid := r.RunBudget(60)

			// The surviving history: steps whose endpoints are both alive.
			var steps []Step
			for _, s := range mid.Trace {
				if col.Alive(s.A) && col.Alive(s.B) {
					steps = append(steps, s)
				}
			}
			if len(steps) == len(mid.Trace) {
				t.Fatal("eviction removed no executed steps — workload too easy")
			}
			r.Retract(post, postEdges, steps)

			if p, e := r.Pending(), executable(r); p < e {
				t.Fatalf("Pending=%d undercounts %d executable after retract", p, e)
			}
			// Surviving matches stay resolved.
			for _, s := range steps {
				if s.Matched && !r.Clusters().Same(s.A, s.B) {
					t.Fatalf("surviving match (%d,%d) lost by retract", s.A, s.B)
				}
			}

			rest := r.RunBudget(0)
			executed := make(map[blocking.Pair]bool, len(steps))
			for _, s := range steps {
				executed[blocking.MakePair(s.A, s.B)] = true
			}
			for _, s := range rest.Trace {
				if !col.Alive(s.A) || !col.Alive(s.B) {
					t.Fatalf("post-retract step touches evicted id: %+v", s)
				}
				if executed[blocking.MakePair(s.A, s.B)] && !s.Recheck {
					t.Fatalf("executed pair (%d,%d) re-spent without a recheck flag", s.A, s.B)
				}
			}
			if e := executable(r); e != 0 {
				t.Fatalf("drained resolver left %d executable pairs", e)
			}
		})
	}
}
