package core

import (
	"testing"

	"repro/internal/blocking"
	"repro/internal/kb"
	"repro/internal/match"
	"repro/internal/metablocking"
	"repro/internal/tokenize"
)

// filmWorld reproduces the moviekb scenario as a fixture: a
// somehow-similar pair that fails on value similarity until its
// neighbors (the directors) resolve.
func filmWorld(t *testing.T) (*match.Matcher, []metablocking.Edge, blocking.Pair) {
	t.Helper()
	c := kb.NewCollection()
	add := func(kbn, uri string, attrs map[string]string, links ...string) {
		d := &kb.Description{URI: uri, KB: kbn, Links: links}
		for _, k := range []string{"label", "name", "title", "year", "style", "genre", "born"} {
			if v, ok := attrs[k]; ok {
				d.Attrs = append(d.Attrs, kb.Attribute{Predicate: k, Value: v})
			}
		}
		c.Add(d)
	}
	add("imdb", "http://i/nm0634240", map[string]string{"name": "Christopher Nolan", "born": "London 1970"})
	add("imdb", "http://i/tt1375666", map[string]string{"title": "Inception", "genre": "dream heist thriller"}, "http://i/nm0634240")
	add("imdb", "http://i/tt0816692", map[string]string{"title": "Yildizlararasi uzay epic", "year": "2014"}, "http://i/nm0634240")
	add("wiki", "http://w/Christopher_Nolan", map[string]string{"label": "Christopher Nolan", "born": "London"})
	add("wiki", "http://w/Inception_film", map[string]string{"label": "Inception", "genre": "heist dream"}, "http://w/Christopher_Nolan")
	add("wiki", "http://w/Interstellar", map[string]string{"label": "Interstellar", "year": "2014", "style": "epic"}, "http://w/Christopher_Nolan")

	col := blocking.TokenBlocking(c, tokenize.Default())
	g := metablocking.Build(col, metablocking.ECBS)
	edges := g.Prune(metablocking.WNP, metablocking.PruneOptions{Assignments: col.Assignments()})
	m := match.NewMatcher(c, match.DefaultOptions())
	hi, _ := c.IDOf("imdb", "http://i/tt0816692")
	hw, _ := c.IDOf("wiki", "http://w/Interstellar")
	return m, edges, blocking.MakePair(hi, hw)
}

func TestRecheckRescuesHardPair(t *testing.T) {
	// Pin the execution order with explicit edge weights: the hard pair
	// runs FIRST (before any neighbor evidence exists) and fails; once
	// the director pair resolves, the update phase must re-open it and
	// the re-check must succeed.
	m, _, hard := filmWorld(t)
	c := m.Collection()
	ni, _ := c.IDOf("imdb", "http://i/nm0634240")
	nw, _ := c.IDOf("wiki", "http://w/Christopher_Nolan")
	edges := []metablocking.Edge{
		{A: hard.A, B: hard.B, Weight: 10}, // forced to the front
		{A: ni, B: nw, Weight: 5},
	}
	res := NewResolver(m, edges, Config{}).Run()

	if len(res.Trace) < 3 {
		t.Fatalf("trace too short: %+v", res.Trace)
	}
	first := res.Trace[0]
	if blocking.MakePair(first.A, first.B) != hard || first.Matched {
		t.Fatalf("hard pair should fail first: %+v", first)
	}
	var rescued *Step
	for i := range res.Trace {
		s := &res.Trace[i]
		if blocking.MakePair(s.A, s.B) == hard && s.Matched {
			rescued = s
		}
	}
	if rescued == nil {
		t.Fatalf("hard pair never rescued; trace=%+v", res.Trace)
	}
	if !rescued.Recheck {
		t.Errorf("rescue was not a re-check: %+v", rescued)
	}
	if res.Rechecks == 0 {
		t.Error("no re-checks recorded")
	}
}

func TestDisableDiscoveryAlsoDisablesRechecks(t *testing.T) {
	// With discovery off, no re-check steps may appear. (The hard pair
	// can still match on its *first* comparison when the scheduler
	// happens to order the director pair earlier — neighbor evidence in
	// the score itself is not part of discovery.)
	m, edges, _ := filmWorld(t)
	res := NewResolver(m, edges, Config{DisableDiscovery: true}).Run()
	for _, s := range res.Trace {
		if s.Recheck {
			t.Fatalf("recheck executed with discovery disabled: %+v", s)
		}
	}
	if res.Rechecks != 0 || res.Discovered != 0 {
		t.Errorf("counters nonzero with discovery disabled: %+v", res)
	}
}

func TestRecheckTerminates(t *testing.T) {
	// Re-checks must not loop: the run drains even though failed pairs
	// keep receiving boosts from adjacent merges.
	m, edges, _ := filmWorld(t)
	res := NewResolver(m, edges, Config{}).Run()
	if res.Comparisons > 10*len(edges)+100 {
		t.Errorf("suspiciously many comparisons (%d for %d edges) — recheck loop?",
			res.Comparisons, len(edges))
	}
}
