package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/blocking"
	"repro/internal/container"
	"repro/internal/match"
	"repro/internal/metablocking"
)

// Config tunes the progressive resolver.
type Config struct {
	// Budget is the maximum number of comparisons to execute
	// (0 = unlimited: run until the queue drains).
	Budget int
	// Benefit selects the targeted benefit model
	// (nil = AttributeCompleteness, the paper's headline model).
	Benefit BenefitModel
	// NeighborBoost is the priority added to a queued or discovered
	// pair each time a pair of its neighbors is resolved (default 0.4).
	NeighborBoost float64
	// BiasWeight scales the benefit model's scheduling bias relative
	// to the evidence weight (default 0.25).
	BiasWeight float64
	// DisableDiscovery stops the update phase from enqueuing
	// comparisons that blocking never proposed (between neighbors of a
	// confirmed match). Discovery is on by default; it is what recovers
	// somehow-similar periphery matches.
	DisableDiscovery bool
	// Workers sets how many goroutines speculatively precompute value
	// similarities for upcoming comparisons (see parallel.go). 0 or 1
	// runs the sequential reference loop; n > 1 runs the speculative-
	// score/serial-commit engine with n scoring workers. Every setting
	// produces a bit-identical trace.
	Workers int
	// Normalized marks the config as fully specified: zero numeric
	// fields are taken literally instead of being replaced by the
	// documented defaults. DefaultConfig returns a normalized config,
	// so the idiomatic way to request a true zero — say BiasWeight 0
	// for pure evidence-order scheduling — is to start from
	// DefaultConfig and zero the field. A nil Benefit always means
	// AttributeCompleteness.
	Normalized bool
}

// DefaultConfig returns the documented defaults, normalized: zero a
// field of the result to get a literal zero instead of the default.
func DefaultConfig() Config {
	return Config{
		Benefit:       AttributeCompleteness{},
		NeighborBoost: 0.4,
		BiasWeight:    0.25,
		Normalized:    true,
	}
}

func (c Config) withDefaults() Config {
	if c.Benefit == nil {
		c.Benefit = AttributeCompleteness{}
	}
	if c.Normalized {
		return c
	}
	if c.NeighborBoost == 0 {
		c.NeighborBoost = 0.4
	}
	if c.BiasWeight == 0 {
		c.BiasWeight = 0.25
	}
	c.Normalized = true
	return c
}

// Step records one executed comparison.
type Step struct {
	A, B int
	// Score is the combined match score at execution time.
	Score float64
	// Matched reports whether the pair cleared the threshold.
	Matched bool
	// Merged reports whether the match united two distinct clusters.
	Merged bool
	// Discovered reports whether the pair came from neighbor-evidence
	// discovery rather than from blocking.
	Discovered bool
	// Recheck reports whether this is a re-examination of a pair that
	// failed earlier and has since gained neighbor evidence.
	Recheck bool
	// Gain is the targeted benefit realized by this step.
	Gain float64
}

// StepInfo reports the step's pair, score, and outcome; it satisfies
// internal/cluster's StepLike so traces feed the clusterers directly.
func (s Step) StepInfo() (int, int, float64, bool) {
	return s.A, s.B, s.Score, s.Matched
}

// Result summarizes a progressive run.
type Result struct {
	// Trace lists every executed comparison in order.
	Trace []Step
	// Clusters is the final resolution state.
	Clusters *match.Clusters
	// Comparisons executed (== len(Trace)).
	Comparisons int
	// Matches confirmed (cluster-merging or not).
	Matches int
	// Discovered counts executed comparisons that blocking missed.
	Discovered int
	// Rechecks counts re-examinations triggered by new neighbor
	// evidence on previously failed pairs.
	Rechecks int
	// TotalGain is the cumulative targeted benefit.
	TotalGain float64
}

// MatchedPairs returns the distinct matched pairs implied by the final
// clusters (transitive closure), restricted to cross-KB pairs when the
// collection spans several KBs.
func (r *Result) MatchedPairs(m *match.Matcher) []blocking.Pair {
	col := m.Collection()
	cross := col.NumLiveKBs() > 1
	raw := r.Clusters.Pairs(col, cross)
	out := make([]blocking.Pair, len(raw))
	for i, p := range raw {
		out[i] = blocking.Pair{A: p[0], B: p[1]}
	}
	return out
}

// Timings reports the cumulative wall-clock time the resolver has
// spent in each stage of the progressive loop, summed over every Run
// since construction (Retract and Reseed do not reset it). The three
// stages partition the commit path: Schedule is queue maintenance —
// pops, lazy revalidation, reinsertion; Match is similarity evaluation
// and the match decision (on the parallel engine this includes time the
// committer waits for a speculative score); Update is benefit
// accounting, cluster merging, and neighbor-evidence propagation.
// Timings is read on the goroutine that runs the resolver — it is not
// synchronized for concurrent readers.
type Timings struct {
	Schedule time.Duration `json:"scheduleNs"`
	Match    time.Duration `json:"matchNs"`
	Update   time.Duration `json:"updateNs"`
}

// Resolver runs the progressive schedule → match → update loop.
type Resolver struct {
	matcher *match.Matcher
	cfg     Config

	heap   *container.Heap[entry]
	states map[uint64]*pairState
	cl     *match.Clusters
	maxW   float64
	tim    Timings
	// spec is the speculative scoring engine, non-nil when
	// cfg.Workers > 1 (see parallel.go). The commit path below is the
	// same either way; spec only changes where ValueSim values come
	// from.
	spec *speculator
}

// entry is one heap slot: the pair's state (popping dereferences it
// directly — no map lookup on the hot path) and its priority at push
// time. The slot stays at 16 bytes, which matters — pops sift a slot
// down the whole heap, and the heap holds every pruned edge plus
// every boost reinsertion.
type entry struct {
	st   *pairState
	prio float64
}

// pairKey packs a normalized pair into one word, so the scheduler's
// update-phase map hashes and compares a single uint64 instead of a
// two-word struct. Description ids are array indexes and fit 32 bits
// with room to spare.
func pairKey(p blocking.Pair) uint64 {
	return uint64(uint32(p.A))<<32 | uint64(uint32(p.B))
}

// keyPair is the inverse of pairKey.
func keyPair(k uint64) blocking.Pair {
	return blocking.Pair{A: int(k >> 32), B: int(uint32(k))}
}

type pairState struct {
	pair       blocking.Pair // immutable after construction
	base       float64       // normalized meta-blocking weight
	boost      float64       // accumulated neighbor-evidence priority
	done       bool
	discovered bool // true when blocking never proposed this pair
	recheck    bool // re-opened by neighbor evidence after failing
	// inflight marks the pair as handed to a speculation wave whose
	// results are not merged back yet (parallel engine only; read and
	// written by the committer goroutine exclusively).
	inflight bool
	// vsim memoizes the pair's value similarity once it has been
	// computed, so a recheck is free. Value similarity is
	// cluster-independent: the memo can never go stale.
	vsim    float64
	hasVsim bool
	// nsim is the speculatively scored neighbor similarity, exact only
	// while the cluster version still equals nsimVer — unlike vsim it
	// depends on the evolving merge state, so the committer revalidates
	// the stamp before trusting it (parallel engine only).
	nsim    float64
	nsimVer uint64
	hasNsim bool
}

// NewResolver prepares a progressive run over the pruned comparison
// list from meta-blocking. Edges should be the output of Graph.Prune
// (any order; the scheduler orders them).
func NewResolver(m *match.Matcher, edges []metablocking.Edge, cfg Config) *Resolver {
	cfg = cfg.withDefaults()
	r := &Resolver{
		matcher: m,
		cfg:     cfg,
		states:  make(map[uint64]*pairState, len(edges)),
		cl:      match.NewClustersFor(m.Collection()),
	}
	for _, e := range edges {
		if e.Weight > r.maxW {
			r.maxW = e.Weight
		}
	}
	if r.maxW == 0 {
		r.maxW = 1
	}
	// States come from one slab (its capacity is fixed, so the interior
	// pointers stay valid) and the heap is built with one O(n) heapify
	// instead of n pushes.
	slab := make([]pairState, len(edges))
	used := 0
	entries := make([]entry, 0, len(edges))
	for _, e := range edges {
		p := blocking.MakePair(e.A, e.B)
		k := pairKey(p)
		if _, dup := r.states[k]; dup {
			continue
		}
		st := &slab[used]
		used++
		st.pair = p
		st.base = e.Weight / r.maxW
		r.states[k] = st
		entries = append(entries, entry{st: st, prio: r.priority(p, st)})
	}
	r.heap = container.NewHeapFrom(func(a, b entry) bool { return a.prio > b.prio }, entries) // max-heap
	return r
}

// priority computes a pair's current scheduling priority.
func (r *Resolver) priority(p blocking.Pair, st *pairState) float64 {
	return st.base + st.boost + r.cfg.BiasWeight*r.cfg.Benefit.Bias(p.A, p.B, r.cl, r.matcher)
}

// Clusters exposes the current resolution state (live during Run).
func (r *Resolver) Clusters() *match.Clusters { return r.cl }

// Pending returns the number of queued (not yet executed) comparisons.
// Stale heap entries may inflate the count; it is an upper bound.
func (r *Resolver) Pending() int { return r.heap.Len() }

// Run executes the progressive loop until the budget is exhausted or
// the queue drains, returning the trace of this call. The resolver
// keeps its state: calling Run again continues the same pay-as-you-go
// session with a fresh budget, exactly as the paper's "until the cost
// budget is consumed" loop resumes when more budget arrives. Traces of
// successive calls concatenate to the trace of one larger-budget run.
func (r *Resolver) Run() *Result { return r.RunBudget(r.cfg.Budget) }

// RunBudget is Run with a per-call budget override (0 = unlimited),
// for resumable sessions whose legs have different budgets.
func (r *Resolver) RunBudget(budget int) *Result {
	return r.RunBudgetContext(context.Background(), budget)
}

// RunBudgetContext is RunBudget with cancellation: the loop checks ctx
// between commit waves — before each comparison is popped — and stops
// early when the context is done, returning the trace executed so far.
// Cancellation never corrupts the resolver: every completed comparison
// is fully committed, so a later Run continues exactly where the
// cancelled one stopped, and the concatenated traces still equal one
// uninterrupted run's. The caller learns about the interruption from
// ctx.Err(); the partial Result itself carries no error.
func (r *Resolver) RunBudgetContext(ctx context.Context, budget int) *Result {
	if r.spec == nil && r.cfg.Workers > 1 {
		r.spec = newSpeculator(r, r.cfg.Workers)
	}
	done := ctx.Done() // nil for Background: the check below vanishes
	res := &Result{Clusters: r.cl}
	for budget == 0 || res.Comparisons < budget {
		if done != nil {
			select {
			case <-done:
				return res
			default:
			}
		}
		if r.spec != nil {
			remaining := 0
			if budget > 0 {
				remaining = budget - res.Comparisons
			}
			r.spec.prepare(remaining)
		}
		step, ok := r.next()
		if !ok {
			break
		}
		res.Comparisons++
		if step.Matched {
			res.Matches++
		}
		if step.Discovered {
			res.Discovered++
		}
		if step.Recheck {
			res.Rechecks++
		}
		res.TotalGain += step.Gain
		res.Trace = append(res.Trace, step)
	}
	return res
}

// Timings returns the cumulative per-stage wall-clock counters. Call
// it from the goroutine that runs the resolver, between Runs.
func (r *Resolver) Timings() Timings { return r.tim }

// next pops, validates, executes, and propagates one comparison.
func (r *Resolver) next() (Step, bool) {
	start := time.Now()
	for {
		e, ok := r.heap.Pop()
		if !ok {
			r.tim.Schedule += time.Since(start)
			return Step{}, false
		}
		st := e.st
		if st.done {
			continue // stale entry
		}
		p := st.pair
		// Lazy revalidation: priorities drift as the state evolves; if
		// this entry is stale-high, reinsert at its current priority.
		cur := r.priority(p, st)
		if cur < e.prio-1e-9 {
			r.heap.Push(entry{st: st, prio: cur})
			continue
		}
		// Skip pairs already resolved transitively — their comparison
		// spends budget without any possible benefit. A speculative
		// score it may have received is dead weight in its state, never
		// consulted again.
		if r.cl.Same(p.A, p.B) {
			st.done = true
			continue
		}
		r.tim.Schedule += time.Since(start)
		return r.execute(p, st), true
	}
}

func (r *Resolver) execute(p blocking.Pair, st *pairState) Step {
	st.done = true
	t0 := time.Now()
	// valueSim may block on an in-flight wave, which also fills the
	// pair's speculative neighbor score — check its stamp only after.
	v := r.valueSim(p, st)
	var score float64
	var matched bool
	if st.hasNsim && st.nsimVer == r.cl.UF().Version() {
		// No merge landed since the wave launched: the speculative
		// neighbor score is exactly what DecideValue would recompute.
		score, matched = r.matcher.DecideScored(p.A, p.B, v, st.nsim, r.cl)
	} else {
		score, matched = r.matcher.DecideValue(p.A, p.B, v, r.cl)
	}
	r.tim.Match += time.Since(t0)
	step := Step{A: p.A, B: p.B, Score: score, Matched: matched,
		Discovered: st.discovered, Recheck: st.recheck}
	if !matched {
		return step
	}
	t1 := time.Now()
	step.Gain = r.cfg.Benefit.Gain(p.A, p.B, r.cl, r.matcher)
	step.Merged = r.cl.Merge(p.A, p.B)
	if step.Merged {
		r.propagate(p.A, p.B)
	}
	r.tim.Update += time.Since(t1)
	return step
}

// valueSim returns the pair's value similarity: memoized from an
// earlier execution (a recheck re-decides the pair, but its value
// evidence cannot have changed), from the speculative score cache
// when the parallel engine runs, or computed inline. ValueSim is
// deterministic and cluster-independent, so every source yields the
// same float.
func (r *Resolver) valueSim(p blocking.Pair, st *pairState) float64 {
	if st.hasVsim {
		return st.vsim
	}
	if r.spec != nil {
		return r.spec.valueSim(st)
	}
	v := r.matcher.ValueSim(p.A, p.B)
	st.vsim, st.hasVsim = v, true
	return v
}

// propagate is the update phase: a confirmed match (a, b) is evidence
// for every pair formed from a-side and b-side neighbors (the matcher's
// neighborhoods already combine both link directions). Queued pairs get
// a priority boost; unseen cross-KB pairs are discovered and enqueued
// with the boost as their whole priority.
func (r *Resolver) propagate(a, b int) {
	for _, x := range r.matcher.Neighbors(a) {
		for _, y := range r.matcher.Neighbors(b) {
			if x == y {
				continue
			}
			r.boost(blocking.MakePair(x, y))
		}
	}
}

func (r *Resolver) boost(p blocking.Pair) {
	col := r.matcher.Collection()
	if col.NumLiveKBs() > 1 && !col.CrossKB(p.A, p.B) {
		return
	}
	k := pairKey(p)
	st := r.states[k]
	if st == nil {
		if r.cfg.DisableDiscovery {
			return
		}
		st = &pairState{pair: p, discovered: true} // no blocking evidence
		r.states[k] = st
	}
	if st.done {
		// The pair was already compared and failed (matched pairs are
		// resolved and filtered above). New neighbor evidence re-opens
		// it: the paper's update phase promotes re-comparison of pairs
		// influenced by fresh matches. Re-executions spend budget like
		// any comparison and terminate because boosts only arise from
		// cluster merges, which are finite.
		if r.cl.Same(p.A, p.B) || r.cfg.DisableDiscovery {
			return
		}
		st.done = false
		st.recheck = true
	}
	st.boost += r.cfg.NeighborBoost
	r.heap.Push(entry{st: st, prio: r.priority(p, st)})
	if r.spec != nil && !st.hasVsim {
		r.spec.noteFresh(st)
	}
}

// String renders a result summary.
func (r *Result) String() string {
	return fmt.Sprintf("comparisons=%d matches=%d discovered=%d gain=%.1f %s",
		r.Comparisons, r.Matches, r.Discovered, r.TotalGain, r.Clusters)
}
