package core

import (
	"fmt"

	"repro/internal/blocking"
	"repro/internal/container"
	"repro/internal/match"
	"repro/internal/metablocking"
)

// Config tunes the progressive resolver.
type Config struct {
	// Budget is the maximum number of comparisons to execute
	// (0 = unlimited: run until the queue drains).
	Budget int
	// Benefit selects the targeted benefit model
	// (nil = AttributeCompleteness, the paper's headline model).
	Benefit BenefitModel
	// NeighborBoost is the priority added to a queued or discovered
	// pair each time a pair of its neighbors is resolved (default 0.4).
	NeighborBoost float64
	// BiasWeight scales the benefit model's scheduling bias relative
	// to the evidence weight (default 0.25).
	BiasWeight float64
	// DisableDiscovery stops the update phase from enqueuing
	// comparisons that blocking never proposed (between neighbors of a
	// confirmed match). Discovery is on by default; it is what recovers
	// somehow-similar periphery matches.
	DisableDiscovery bool
}

func (c Config) withDefaults() Config {
	if c.Benefit == nil {
		c.Benefit = AttributeCompleteness{}
	}
	if c.NeighborBoost == 0 {
		c.NeighborBoost = 0.4
	}
	if c.BiasWeight == 0 {
		c.BiasWeight = 0.25
	}
	return c
}

// Step records one executed comparison.
type Step struct {
	A, B int
	// Score is the combined match score at execution time.
	Score float64
	// Matched reports whether the pair cleared the threshold.
	Matched bool
	// Merged reports whether the match united two distinct clusters.
	Merged bool
	// Discovered reports whether the pair came from neighbor-evidence
	// discovery rather than from blocking.
	Discovered bool
	// Recheck reports whether this is a re-examination of a pair that
	// failed earlier and has since gained neighbor evidence.
	Recheck bool
	// Gain is the targeted benefit realized by this step.
	Gain float64
}

// StepInfo reports the step's pair, score, and outcome; it satisfies
// internal/cluster's StepLike so traces feed the clusterers directly.
func (s Step) StepInfo() (int, int, float64, bool) {
	return s.A, s.B, s.Score, s.Matched
}

// Result summarizes a progressive run.
type Result struct {
	// Trace lists every executed comparison in order.
	Trace []Step
	// Clusters is the final resolution state.
	Clusters *match.Clusters
	// Comparisons executed (== len(Trace)).
	Comparisons int
	// Matches confirmed (cluster-merging or not).
	Matches int
	// Discovered counts executed comparisons that blocking missed.
	Discovered int
	// Rechecks counts re-examinations triggered by new neighbor
	// evidence on previously failed pairs.
	Rechecks int
	// TotalGain is the cumulative targeted benefit.
	TotalGain float64
}

// MatchedPairs returns the distinct matched pairs implied by the final
// clusters (transitive closure), restricted to cross-KB pairs when the
// collection spans several KBs.
func (r *Result) MatchedPairs(m *match.Matcher) []blocking.Pair {
	col := m.Collection()
	cross := col.NumKBs() > 1
	raw := r.Clusters.Pairs(col, cross)
	out := make([]blocking.Pair, len(raw))
	for i, p := range raw {
		out[i] = blocking.Pair{A: p[0], B: p[1]}
	}
	return out
}

// Resolver runs the progressive schedule → match → update loop.
type Resolver struct {
	matcher *match.Matcher
	cfg     Config

	heap   *container.Heap[entry]
	states map[blocking.Pair]*pairState
	cl     *match.Clusters
	maxW   float64
}

type entry struct {
	pair blocking.Pair
	prio float64
}

type pairState struct {
	base       float64 // normalized meta-blocking weight
	boost      float64 // accumulated neighbor-evidence priority
	done       bool
	discovered bool // true when blocking never proposed this pair
	recheck    bool // re-opened by neighbor evidence after failing
}

// NewResolver prepares a progressive run over the pruned comparison
// list from meta-blocking. Edges should be the output of Graph.Prune
// (any order; the scheduler orders them).
func NewResolver(m *match.Matcher, edges []metablocking.Edge, cfg Config) *Resolver {
	cfg = cfg.withDefaults()
	r := &Resolver{
		matcher: m,
		cfg:     cfg,
		heap:    container.NewHeap(func(a, b entry) bool { return a.prio > b.prio }), // max-heap
		states:  make(map[blocking.Pair]*pairState, len(edges)),
		cl:      match.NewClustersFor(m.Collection()),
	}
	for _, e := range edges {
		if e.Weight > r.maxW {
			r.maxW = e.Weight
		}
	}
	if r.maxW == 0 {
		r.maxW = 1
	}
	for _, e := range edges {
		p := blocking.MakePair(e.A, e.B)
		if _, dup := r.states[p]; dup {
			continue
		}
		st := &pairState{base: e.Weight / r.maxW}
		r.states[p] = st
		r.heap.Push(entry{pair: p, prio: r.priority(p, st)})
	}
	return r
}

// priority computes a pair's current scheduling priority.
func (r *Resolver) priority(p blocking.Pair, st *pairState) float64 {
	return st.base + st.boost + r.cfg.BiasWeight*r.cfg.Benefit.Bias(p.A, p.B, r.cl, r.matcher)
}

// Clusters exposes the current resolution state (live during Run).
func (r *Resolver) Clusters() *match.Clusters { return r.cl }

// Pending returns the number of queued (not yet executed) comparisons.
// Stale heap entries may inflate the count; it is an upper bound.
func (r *Resolver) Pending() int { return r.heap.Len() }

// Run executes the progressive loop until the budget is exhausted or
// the queue drains, returning the trace of this call. The resolver
// keeps its state: calling Run again continues the same pay-as-you-go
// session with a fresh budget, exactly as the paper's "until the cost
// budget is consumed" loop resumes when more budget arrives. Traces of
// successive calls concatenate to the trace of one larger-budget run.
func (r *Resolver) Run() *Result { return r.RunBudget(r.cfg.Budget) }

// RunBudget is Run with a per-call budget override (0 = unlimited),
// for resumable sessions whose legs have different budgets.
func (r *Resolver) RunBudget(budget int) *Result {
	res := &Result{Clusters: r.cl}
	for budget == 0 || res.Comparisons < budget {
		step, ok := r.next()
		if !ok {
			break
		}
		res.Comparisons++
		if step.Matched {
			res.Matches++
		}
		if step.Discovered {
			res.Discovered++
		}
		if step.Recheck {
			res.Rechecks++
		}
		res.TotalGain += step.Gain
		res.Trace = append(res.Trace, step)
	}
	return res
}

// next pops, validates, executes, and propagates one comparison.
func (r *Resolver) next() (Step, bool) {
	for {
		e, ok := r.heap.Pop()
		if !ok {
			return Step{}, false
		}
		st := r.states[e.pair]
		if st == nil || st.done {
			continue // stale entry
		}
		// Lazy revalidation: priorities drift as the state evolves; if
		// this entry is stale-high, reinsert at its current priority.
		cur := r.priority(e.pair, st)
		if cur < e.prio-1e-9 {
			r.heap.Push(entry{pair: e.pair, prio: cur})
			continue
		}
		// Skip pairs already resolved transitively — their comparison
		// spends budget without any possible benefit.
		if r.cl.Same(e.pair.A, e.pair.B) {
			st.done = true
			continue
		}
		return r.execute(e.pair, st), true
	}
}

func (r *Resolver) execute(p blocking.Pair, st *pairState) Step {
	st.done = true
	score, matched := r.matcher.Decide(p.A, p.B, r.cl)
	step := Step{A: p.A, B: p.B, Score: score, Matched: matched,
		Discovered: st.discovered, Recheck: st.recheck}
	if !matched {
		return step
	}
	step.Gain = r.cfg.Benefit.Gain(p.A, p.B, r.cl, r.matcher)
	step.Merged = r.cl.Merge(p.A, p.B)
	if step.Merged {
		r.propagate(p.A, p.B)
	}
	return step
}

// propagate is the update phase: a confirmed match (a, b) is evidence
// for every pair formed from a-side and b-side neighbors (the matcher's
// neighborhoods already combine both link directions). Queued pairs get
// a priority boost; unseen cross-KB pairs are discovered and enqueued
// with the boost as their whole priority.
func (r *Resolver) propagate(a, b int) {
	for _, x := range r.matcher.Neighbors(a) {
		for _, y := range r.matcher.Neighbors(b) {
			if x == y {
				continue
			}
			r.boost(blocking.MakePair(x, y))
		}
	}
}

func (r *Resolver) boost(p blocking.Pair) {
	col := r.matcher.Collection()
	if col.NumKBs() > 1 && !col.CrossKB(p.A, p.B) {
		return
	}
	st := r.states[p]
	if st == nil {
		if r.cfg.DisableDiscovery {
			return
		}
		st = &pairState{discovered: true} // no blocking evidence
		r.states[p] = st
	}
	if st.done {
		// The pair was already compared and failed (matched pairs are
		// resolved and filtered above). New neighbor evidence re-opens
		// it: the paper's update phase promotes re-comparison of pairs
		// influenced by fresh matches. Re-executions spend budget like
		// any comparison and terminate because boosts only arise from
		// cluster merges, which are finite.
		if r.cl.Same(p.A, p.B) || r.cfg.DisableDiscovery {
			return
		}
		st.done = false
		st.recheck = true
	}
	st.boost += r.cfg.NeighborBoost
	r.heap.Push(entry{pair: p, prio: r.priority(p, st)})
}

// String renders a result summary.
func (r *Result) String() string {
	return fmt.Sprintf("comparisons=%d matches=%d discovered=%d gain=%.1f %s",
		r.Comparisons, r.Matches, r.Discovered, r.TotalGain, r.Clusters)
}
