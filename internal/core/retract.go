package core

import (
	"repro/internal/blocking"
	"repro/internal/container"
	"repro/internal/match"
	"repro/internal/metablocking"
)

// Retract rebuilds the resolver after descriptions left the corpus: m
// is a matcher rebuilt over the survivors (evicted documents have
// decayed out of the IDF weights), edges is the freshly re-pruned
// comparison list over the surviving blocking graph, and steps is the
// surviving execution history — the session's cumulative trace with
// every step touching an evicted description removed, in its original
// execution order.
//
// Unlike Reseed — which keeps the cluster state because ingestion is
// monotonic — eviction can split clusters: a match chain a—b—c loses
// its middle when b leaves. Retract therefore rebuilds the resolution
// state from first principles by replaying the surviving history:
//
//   - Clusters restart as singletons; each surviving matched step
//     re-merges its pair, so matches among survivors stay resolved —
//     including pairs like (a, c) above whose direct match was
//     redundant while b connected them — while clusters held together
//     only by evicted members fall apart.
//   - Each replayed merge re-runs the update phase (propagate):
//     neighbor boosts and discovered pairs are re-derived from the
//     surviving evidence alone, so priority credit and discovery that
//     flowed from an evicted description's matches vanish with it.
//   - Executed pairs stay executed (never re-spent); executed-but-
//     failed pairs still retained by the new pruning re-open as
//     rechecks, exactly as Reseed does — their value similarity was
//     decided under the departed corpus's IDF weights.
//   - Pairs touching evicted descriptions leave the queue entirely:
//     the new edge list cannot contain them, the replay never
//     recreates them, and their states are discarded.
//   - The speculative engine is quiesced and discarded; the next Run
//     re-creates it against the retracted queue.
//
// When steps is empty — nothing executed yet — the retracted resolver
// is indistinguishable from NewResolver(m, edges, cfg): the same
// states, the same heap layout, the same priorities. That is what
// makes evict-then-resolve bit-identical to a from-scratch session
// over the surviving corpus.
func (r *Resolver) Retract(m *match.Matcher, edges []metablocking.Edge, steps []Step) {
	if r.spec != nil {
		r.spec.shutdown()
		r.spec = nil
	}
	r.matcher = m
	r.cl = match.NewClustersFor(m.Collection())

	r.maxW = 0
	for _, e := range edges {
		if e.Weight > r.maxW {
			r.maxW = e.Weight
		}
	}
	if r.maxW == 0 {
		r.maxW = 1
	}

	// Fresh states for the retained comparisons, heapified in edge
	// order — byte for byte the NewResolver construction.
	r.states = make(map[uint64]*pairState, len(edges))
	slab := make([]pairState, len(edges))
	used := 0
	entries := make([]entry, 0, len(edges))
	edgeStates := make([]*pairState, 0, len(edges))
	for _, e := range edges {
		p := blocking.MakePair(e.A, e.B)
		k := pairKey(p)
		if _, dup := r.states[k]; dup {
			continue
		}
		st := &slab[used]
		used++
		st.pair = p
		st.base = e.Weight / r.maxW
		r.states[k] = st
		edgeStates = append(edgeStates, st)
		entries = append(entries, entry{st: st, prio: r.priority(p, st)})
	}
	r.heap = container.NewHeapFrom(func(a, b entry) bool { return a.prio > b.prio }, entries)

	// Replay the surviving history through the live machinery: done
	// flags mark budget already spent, merges rebuild the clusters, and
	// each merge re-runs propagate — the same boosts, discoveries, and
	// recheck re-openings the update phase produced originally, minus
	// everything that flowed through an evicted description. Extra heap
	// entries pushed for already-queued pairs are harmless: the heap is
	// lazy, and stale or duplicate slots are skipped on pop.
	for _, s := range steps {
		p := blocking.MakePair(s.A, s.B)
		k := pairKey(p)
		st := r.states[k]
		if st == nil {
			// Executed but no longer retained by pruning (or never
			// proposed by blocking): keep the history so the pair is not
			// re-discovered as fresh.
			st = &pairState{pair: p, discovered: s.Discovered}
			r.states[k] = st
		}
		st.done = true
		st.recheck = false
		if s.Matched && r.cl.Merge(p.A, p.B) {
			r.propagate(p.A, p.B)
		}
	}

	// Executed-but-failed pairs still retained by the new pruning:
	// their decision was made under the departed corpus's IDF weights,
	// so they re-open as rechecks (Reseed's rule), unless the replay
	// already re-opened or transitively resolved them.
	for _, st := range edgeStates {
		if st.done && !r.cl.Same(st.pair.A, st.pair.B) {
			st.done = false
			st.recheck = true
			r.heap.Push(entry{st: st, prio: r.priority(st.pair, st)})
		}
	}
}
