// The parallel matching engine: speculative scoring, serial commit.
//
// The progressive loop's dominant cost is value similarity — TF-IDF
// cosine over token evidence — while everything that orders and
// commits comparisons (priorities, heap maintenance, neighbor
// similarity, cluster merges, boost propagation) depends on the
// evolving cluster state and must stay sequential to preserve the
// paper's schedule. The engine splits each step accordingly:
//
//   - Scoring phase (parallel): workers precompute ValueSim in
//     pipelined waves, streamed from a priority-sorted snapshot of
//     the queued pairs plus the pairs the update phase boosts or
//     discovers as the run evolves. Value similarity is independent
//     of the cluster state, so a speculative score is never wrong —
//     at worst it is wasted, when a merge resolves the pair
//     transitively before it is popped.
//   - Commit phase (serial): the resolver's unmodified pop →
//     revalidate → decide → merge → propagate loop runs on one
//     goroutine, reading speculative scores instead of recomputing
//     them; scores for pairs invalidated by merges are left dead in
//     their pair state and never consulted.
//
// Because the commit path is the sequential algorithm itself and
// ValueSim is deterministic, the trace is bit-identical to the
// sequential resolver for any worker count and any budget — the same
// discipline the repo's front-end engines follow, and the same
// decomposition Theoretically-Efficient Parallel DBSCAN applies to
// clustering (arXiv:1912.06255): parallelize the state-independent
// distance work, serialize the state mutation order.
package core

import (
	"sort"
	"sync"
)

// maxInflight bounds how many cursor waves may be scoring
// concurrently: one being merged, one in flight behind it. Fresh
// waves (just-boosted pairs, see prepare) may push the total to
// maxPending. The waves channel is buffered to maxPending so
// collector goroutines can never block, even if the resolver is
// abandoned mid-run.
const (
	maxInflight = 2
	maxPending  = maxInflight + 2
)

// waveItem is one speculation slot: the committer fills st before
// launch, a single worker writes v and ns, and the committer reads
// them after the wave's channel handoff — no slot is ever shared.
type waveItem struct {
	st *pairState
	v  float64
	ns float64 // neighbor similarity, exact only at the wave's version
}

// wave is one launched batch of speculation slots plus the cluster
// version the committer stamped at launch. Value similarity is
// cluster-independent and always exact; neighbor similarity is read
// off the live union-find and is exact only while no merge lands —
// i.e. while the cluster version still equals ver. The committer
// checks that at use and recomputes inline otherwise, so a stale
// speculation costs one redundant computation, never a wrong trace.
type wave struct {
	items []waveItem
	ver   uint64
}

// speculator coordinates the scoring workers for one resolver. All of
// its methods run on the committer goroutine; only the strided loop
// inside launch runs on workers, and each worker touches nothing but
// the immutable matcher, the pairs of its slots, and the slots' v
// fields. No locks and no shared maps: wave hand-off is one buffered
// channel, and all bookkeeping lives in the pair states the committer
// already owns.
//
// Speculation draws from two sources. The queue is a one-time
// snapshot of every pair waiting in the heap when the engine starts,
// in scheduling-priority order: the resolver will execute almost all
// of them, in roughly this order, so a cursor streaming the queue
// through pipelined waves keeps the workers exactly where the
// committer is about to be. The fresh list collects pairs the update
// phase boosts or discovers mid-run — the only pairs the snapshot
// cannot know — and jumps the cursor, because a just-boosted pair
// tends to pop within a step or two.
type speculator struct {
	r        *Resolver
	workers  int
	waveSize int
	queue    []*pairState // initial pairs, highest priority first
	cursor   int          // next queue index to hand to a wave
	fresh    []*pairState // pairs the update phase just pushed
	waves    chan wave
	pending  int // waves launched but not merged
}

func newSpeculator(r *Resolver, workers int) *speculator {
	// Snapshot the heap. Pruned edges arrive sorted by weight, and for
	// the common benefit models the initial bias is uniform, so the
	// heapified array is usually already in priority order and the
	// sort below is a verification pass; when a model's initial bias
	// reorders pairs, it pays one O(n log n) sort. Order only steers
	// speculation accuracy, never the trace.
	items := r.heap.Items()
	snap := make([]entry, len(items))
	copy(snap, items)
	if !sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i].prio > snap[j].prio }) {
		sort.SliceStable(snap, func(i, j int) bool { return snap[i].prio > snap[j].prio })
	}
	queue := make([]*pairState, len(snap))
	for i, e := range snap {
		queue[i] = e.st
	}
	return &speculator{
		r:        r,
		workers:  workers,
		waveSize: workers * 64,
		queue:    queue,
		waves:    make(chan wave, maxPending),
	}
}

// prepare runs before every pop: it merges any completed waves and
// keeps up to maxInflight waves scoring ahead of the committer.
// remaining caps the speculation depth under a finite budget
// (0 = unlimited) so a budget-1 leg never scores a full wave.
func (s *speculator) prepare(remaining int) {
	s.drain(false)
	size := s.waveSize
	if remaining > 0 && size > 2*remaining+8 {
		// Pops skip stale and transitively-resolved entries, so keep a
		// small margin beyond the budget itself.
		size = 2*remaining + 8
	}
	// Freshly boosted pairs pop soonest, often on the very next step;
	// they get a micro-wave of their own immediately, beyond the
	// cursor-wave cap, rather than waiting for a slot. A boost burst
	// after a hub merge can exceed the wave size — never drop the
	// overflow, it is the best-qualified speculation there is.
	if len(s.fresh) > 0 && s.pending < maxPending {
		out := make([]waveItem, 0, len(s.fresh))
		for _, st := range s.fresh {
			s.take(st, &out)
		}
		s.fresh = s.fresh[:0]
		if len(out) > 0 {
			s.launch(out)
		}
	}
	for s.pending < maxInflight && s.cursor < len(s.queue) {
		out := make([]waveItem, 0, size)
		for s.cursor < len(s.queue) && len(out) < size {
			s.take(s.queue[s.cursor], &out)
			s.cursor++
		}
		if len(out) == 0 {
			return
		}
		s.launch(out)
	}
}

// take appends the pair's slot to the wave being built and marks it
// in flight, unless it is already scored, in flight, executed, or
// resolved transitively.
func (s *speculator) take(st *pairState, out *[]waveItem) {
	if st.done || st.hasVsim || st.inflight {
		return
	}
	if s.r.cl.Same(st.pair.A, st.pair.B) {
		return // will be skipped, not executed
	}
	st.inflight = true
	*out = append(*out, waveItem{st: st})
}

// noteFresh records a pair the update phase just pushed, so the next
// wave scores it before anything else.
func (s *speculator) noteFresh(st *pairState) {
	s.fresh = append(s.fresh, st)
}

// launch starts one wave: workers score disjoint strides of the wave
// into their own slots, and a collector hands the completed wave to
// the committer through the buffered channel. Each slot gets the
// pair's value similarity (always exact) and its neighbor similarity
// read lock-free off the live cluster state, stamped with the cluster
// version at launch — exact for as long as that version holds.
func (s *speculator) launch(items []waveItem) {
	var wg sync.WaitGroup
	workers := s.workers
	if workers > len(items) {
		workers = len(items)
	}
	m := s.r.matcher
	uf := s.r.cl.UF()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(items); i += workers {
				p := items[i].st.pair
				items[i].v = m.ValueSim(p.A, p.B)
				items[i].ns = m.NeighborSimRead(p.A, p.B, uf)
			}
		}(w)
	}
	wv := wave{items: items, ver: uf.Version()}
	go func() {
		wg.Wait()
		s.waves <- wv
	}()
	s.pending++
}

// drain merges completed waves into the pair states; when block is
// set it waits for at least one in-flight wave to finish.
func (s *speculator) drain(block bool) {
	for s.pending > 0 {
		var wv wave
		if block {
			wv = <-s.waves
			block = false
		} else {
			select {
			case wv = <-s.waves:
			default:
				return
			}
		}
		s.pending--
		for _, it := range wv.items {
			it.st.inflight = false
			it.st.vsim, it.st.hasVsim = it.v, true
			it.st.nsim, it.st.nsimVer, it.st.hasNsim = it.ns, wv.ver, true
		}
	}
}

// shutdown waits out every in-flight wave, leaving no goroutine
// reading the matcher and no slot marked in flight — the quiescence
// Reseed needs before it swaps the matcher and invalidates the value
// memos the waves were filling.
func (s *speculator) shutdown() {
	for s.pending > 0 {
		s.drain(true)
	}
}

// valueSim hands the committer the pair's value similarity: from the
// state's memo, from a wave still in flight (waiting for it), or
// computed inline on a speculation miss.
func (s *speculator) valueSim(st *pairState) float64 {
	for st.inflight {
		s.drain(true)
	}
	if st.hasVsim {
		return st.vsim
	}
	v := s.r.matcher.ValueSim(st.pair.A, st.pair.B)
	st.vsim, st.hasVsim = v, true
	return v
}
