package core

import (
	"fmt"
	"testing"

	"repro/internal/blocking"
	"repro/internal/datagen"
	"repro/internal/kb"
	"repro/internal/match"
	"repro/internal/metablocking"
	"repro/internal/tokenize"
)

// TestReseedFreshEqualsNewResolver pins the property the streaming
// equivalence proof rests on: reseeding a resolver that has executed
// nothing is indistinguishable from constructing it fresh over the new
// matcher and edge list — the trace is bit-identical for any worker
// count and budget.
func TestReseedFreshEqualsNewResolver(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(92, 150, datagen.Center(), datagen.Periphery()))
	if err != nil {
		t.Fatal(err)
	}
	full := w.Collection
	frontEnd := func(col *kb.Collection) (*match.Matcher, []metablocking.Edge) {
		bl := blocking.TokenBlocking(col, tokenize.Default()).Purge(0).Filter(0.8)
		g := metablocking.Build(bl, metablocking.ECBS)
		edges := g.Prune(metablocking.WNP, metablocking.PruneOptions{Assignments: bl.Assignments()})
		return match.NewMatcher(col, match.DefaultOptions()), edges
	}
	for _, workers := range []int{1, 4} {
		for _, budget := range []int{7, 0} {
			t.Run(fmt.Sprintf("workers=%d/budget=%d", workers, budget), func(t *testing.T) {
				cfg := Config{Workers: workers}
				// One collection, grown in place: the resolver is seeded
				// over the first two thirds, then reseeded after the
				// rest arrives — before anything runs.
				col := kb.NewCollection()
				for id := 0; id < full.Len()*2/3; id++ {
					d := full.Desc(id)
					col.Add(&kb.Description{URI: d.URI, KB: d.KB, Types: d.Types, Attrs: d.Attrs, Links: d.Links})
				}
				m1, edges1 := frontEnd(col)
				r := NewResolver(m1, edges1, cfg)
				for id := full.Len() * 2 / 3; id < full.Len(); id++ {
					d := full.Desc(id)
					col.Add(&kb.Description{URI: d.URI, KB: d.KB, Types: d.Types, Attrs: d.Attrs, Links: d.Links})
				}
				m2, edges2 := frontEnd(col)
				r.Reseed(m2, edges2)
				got := r.RunBudget(budget)
				want := NewResolver(m2, edges2, cfg).RunBudget(budget)
				sameTrace(t, "reseed-fresh", want, got)
			})
		}
	}
}

// TestReseedKeepsHistory checks the mid-session contract: matches
// found before a reseed stay resolved, executed pairs are not
// re-queued, and the run completes cleanly with the new matcher.
func TestReseedKeepsHistory(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(93, 150, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	m, edges := pipeline(t, w)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			r := NewResolver(m, edges, Config{Workers: workers})
			first := r.RunBudget(40)
			if first.Matches == 0 {
				t.Fatal("first leg found no matches — workload too easy to mean anything")
			}
			merged := make(map[[2]int]bool)
			for _, s := range first.Trace {
				if s.Matched {
					merged[[2]int{s.A, s.B}] = true
				}
			}
			// Reseed with the same matcher and edges (a degenerate
			// ingest) and drain.
			r.Reseed(m, edges)
			rest := r.RunBudget(0)
			for _, s := range rest.Trace {
				if merged[[2]int{s.A, s.B}] {
					t.Fatalf("pair (%d,%d) re-executed after reseed", s.A, s.B)
				}
			}
			for p := range merged {
				if !r.Clusters().Same(p[0], p[1]) {
					t.Fatalf("match (%d,%d) lost by reseed", p[0], p[1])
				}
			}
		})
	}
}

// TestReseedGrowsClusters checks that reseeding onto a grown
// collection extends the cluster state without disturbing existing
// merges, including the KB-exclusivity masks.
func TestReseedGrowsClusters(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(94, 100, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	m, edges := pipeline(t, w)
	r := NewResolver(m, edges, Config{})
	res := r.RunBudget(0)
	if res.Matches == 0 {
		t.Fatal("no matches")
	}
	col := m.Collection()
	before := col.Len()
	// Grow the collection and reseed with an empty edge delta.
	col.Add(&kb.Description{URI: "http://x/new1", KB: "extraKB",
		Attrs: []kb.Attribute{{Predicate: "p", Value: "entirely fresh tokens"}}})
	col.Add(&kb.Description{URI: "http://x/new2", KB: "extraKB",
		Attrs: []kb.Attribute{{Predicate: "p", Value: "other new tokens"}}})
	m2 := match.NewMatcher(col, match.DefaultOptions())
	r.Reseed(m2, []metablocking.Edge{})
	if got := r.Clusters().UF().Len(); got != col.Len() {
		t.Fatalf("clusters cover %d ids, want %d", got, col.Len())
	}
	for id := before; id < col.Len(); id++ {
		if r.Clusters().Size(id) != 1 {
			t.Fatalf("new id %d not a singleton", id)
		}
	}
}
