package core

import (
	"sort"

	"repro/internal/blocking"
	"repro/internal/container"
	"repro/internal/match"
	"repro/internal/metablocking"
)

// Reseed replaces the resolver's comparison queue after an ingest: m
// is a matcher rebuilt over the grown collection (IDF weights are
// global, so every value similarity may have shifted) and edges is the
// freshly pruned comparison list. The cluster state and the execution
// history survive; everything schedule-related is rebuilt:
//
//   - Clusters grow to cover the new descriptions (existing merges are
//     kept — resolution is monotonic across ingests).
//   - Every retained edge gets a state with its new normalized base
//     weight. Matched pairs stay resolved and are never re-executed.
//     Pairs that failed an earlier comparison but are still retained
//     re-open as rechecks: their value similarity was computed under
//     the smaller corpus's IDF weights, and the batch may have changed
//     it — exactly the evidence-driven re-examination the paper's
//     update phase performs. Queued pairs that re-pruning no longer
//     retains are dropped, unless neighbor evidence discovered them —
//     discovery is matcher-driven, not blocking-driven, so those stay
//     queued.
//   - Memoized value similarities are invalidated wholesale: the new
//     matcher's IDF weights make them stale.
//   - The speculative engine is quiesced and discarded; the next Run
//     re-creates it against the reseeded queue.
//
// When nothing has been executed yet, the reseeded resolver is
// indistinguishable from NewResolver(m, edges, cfg): the same states,
// the same heap layout (entries in edge order, Floyd-heapified), the
// same priorities — which is what makes ingest-then-resolve
// bit-identical to a from-scratch session.
func (r *Resolver) Reseed(m *match.Matcher, edges []metablocking.Edge) {
	if r.spec != nil {
		r.spec.shutdown()
		r.spec = nil
	}
	r.matcher = m
	r.cl.GrowFor(m.Collection())

	r.maxW = 0
	for _, e := range edges {
		if e.Weight > r.maxW {
			r.maxW = e.Weight
		}
	}
	if r.maxW == 0 {
		r.maxW = 1
	}

	old := r.states
	r.states = make(map[uint64]*pairState, len(edges))
	slab := make([]pairState, len(edges))
	used := 0
	entries := make([]entry, 0, len(edges))
	for _, e := range edges {
		p := blocking.MakePair(e.A, e.B)
		k := pairKey(p)
		if _, dup := r.states[k]; dup {
			continue
		}
		st := old[k]
		if st == nil {
			st = &slab[used]
			used++
			st.pair = p
		} else {
			delete(old, k)
			st.hasVsim, st.vsim, st.inflight = false, 0, false
			st.hasNsim = false
		}
		st.base = e.Weight / r.maxW
		if st.done && !r.cl.Same(p.A, p.B) {
			// Executed but unmatched, and still retained: the ingest
			// changed the IDF landscape its decision was made under, so
			// it gets re-examined — the streaming form of a recheck.
			st.done = false
			st.recheck = true
		}
		r.states[k] = st
		if !st.done {
			entries = append(entries, entry{st: st, prio: r.priority(p, st)})
		}
	}

	// Survivors outside the new edge list: executed pairs keep their
	// history (a recheck must not re-discover them as fresh pairs), and
	// discovered pairs stay queued — their evidence came from the
	// update phase, which re-pruning does not speak for.
	leftovers := make([]*pairState, 0)
	for k, st := range old {
		if !st.done && !st.discovered {
			continue
		}
		st.hasVsim, st.vsim, st.inflight = false, 0, false
		st.hasNsim = false
		r.states[k] = st
		if !st.done {
			leftovers = append(leftovers, st)
		}
	}
	sort.Slice(leftovers, func(i, j int) bool {
		return pairKey(leftovers[i].pair) < pairKey(leftovers[j].pair)
	})
	for _, st := range leftovers {
		entries = append(entries, entry{st: st, prio: r.priority(st.pair, st)})
	}
	r.heap = container.NewHeapFrom(func(a, b entry) bool { return a.prio > b.prio }, entries)
}
