package core

import (
	"context"
	"testing"

	"repro/internal/datagen"
)

// TestRunBudgetContextCancel pins the resolver's cancellation contract:
// a dead context stops the run at the next comparison boundary, the
// partial result is the same prefix an equal budget would have
// produced, and the queue stays resumable.
func TestRunBudgetContextCancel(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(71, 150, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	m, edges := pipeline(t, w)

	// Pre-cancelled: zero comparisons, nothing consumed.
	r := NewResolver(m, edges, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := r.RunBudgetContext(ctx, 0)
	if res.Comparisons != 0 || len(res.Trace) != 0 {
		t.Fatalf("cancelled run executed %d comparisons", res.Comparisons)
	}
	if r.Pending() == 0 {
		t.Fatal("cancelled run drained the queue")
	}

	// An interrupted run resumes: cancelled leg + live drain equals one
	// uninterrupted run, trace for trace.
	if got := r.RunBudget(40); got.Comparisons != 40 {
		t.Fatalf("budget leg ran %d comparisons, want 40", got.Comparisons)
	}
	res = r.RunBudgetContext(ctx, 0) // dead ctx again: a no-op leg
	if res.Comparisons != 0 {
		t.Fatalf("second cancelled leg executed %d comparisons", res.Comparisons)
	}
	rest := r.RunBudgetContext(context.Background(), 0)

	m2, edges2 := pipeline(t, w)
	whole := NewResolver(m2, edges2, Config{}).Run()
	if 40+rest.Comparisons != whole.Comparisons {
		t.Fatalf("legs total %d comparisons, whole run %d", 40+rest.Comparisons, whole.Comparisons)
	}
	for i, s := range rest.Trace {
		if whole.Trace[40+i] != s {
			t.Fatalf("trace diverges at resumed step %d", i)
		}
	}
}

// TestResolverTimings sanity-checks the per-stage counters: a drained
// run spends time in schedule, match, and update, and the counters
// accumulate monotonically across legs.
func TestResolverTimings(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(73, 150, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	m, edges := pipeline(t, w)
	r := NewResolver(m, edges, Config{})
	if tm := r.Timings(); tm.Schedule != 0 || tm.Match != 0 || tm.Update != 0 {
		t.Fatalf("fresh resolver has nonzero timings %+v", tm)
	}
	r.RunBudget(50)
	first := r.Timings()
	if first.Schedule <= 0 || first.Match <= 0 {
		t.Fatalf("after 50 comparisons, timings %+v", first)
	}
	r.RunBudget(0)
	second := r.Timings()
	if second.Schedule < first.Schedule || second.Match < first.Match || second.Update < first.Update {
		t.Fatalf("timings went backwards: %+v then %+v", first, second)
	}
	if second.Update <= 0 {
		t.Error("drained run never spent time in update")
	}
}
