// Package core implements Minoan ER's primary contribution: the
// progressive entity-resolution loop. A Scheduler orders the candidate
// comparisons produced by blocking and meta-blocking so that the most
// beneficial ones run first under a comparison budget; an update phase
// propagates every confirmed match as neighbor evidence, re-boosting —
// and, crucially, *discovering* — comparisons between the neighbors of
// the matched pair; and pluggable benefit models redefine "beneficial"
// along the three data-quality axes the paper introduces (attribute
// completeness, entity coverage, relationship completeness) in
// contrast to the pair-quantity benefit of progressive relational ER.
package core

import (
	"repro/internal/match"
)

// BenefitModel defines what the progressive loop tries to maximize.
//
// Gain returns the benefit realized by confirming the match (a, b)
// given the clustering state *before* the merge; the resolver sums
// gains into the benefit curve. Bias returns a number in [0, 1] used
// to steer scheduling toward pairs that would realize benefit under
// this model right now; it is recomputed lazily as the state evolves.
type BenefitModel interface {
	Name() string
	Gain(a, b int, cl *match.Clusters, m *match.Matcher) float64
	Bias(a, b int, cl *match.Clusters, m *match.Matcher) float64
}

// Quantity is the benefit of prior progressive ER work ([1] Altowim et
// al.): every newly resolved pair counts 1. Merging clusters of sizes
// s1 and s2 resolves s1·s2 new pairs.
type Quantity struct{}

// Name implements BenefitModel.
func (Quantity) Name() string { return "quantity" }

// Gain implements BenefitModel.
func (Quantity) Gain(a, b int, cl *match.Clusters, _ *match.Matcher) float64 {
	return float64(cl.Size(a) * cl.Size(b))
}

// Bias implements BenefitModel: quantity is indifferent — pure
// evidence order.
func (Quantity) Bias(a, b int, cl *match.Clusters, _ *match.Matcher) float64 { return 0 }

// AttributeCompleteness targets the number of descriptions resolved:
// every description that leaves the singleton state gains one unit of
// profile completeness (its attributes are merged into a richer
// profile of the real-world entity).
type AttributeCompleteness struct{}

// Name implements BenefitModel.
func (AttributeCompleteness) Name() string { return "attribute-completeness" }

// Gain implements BenefitModel.
func (AttributeCompleteness) Gain(a, b int, cl *match.Clusters, _ *match.Matcher) float64 {
	g := 0.0
	if cl.Size(a) == 1 {
		g++
	}
	if cl.Size(b) == 1 {
		g++
	}
	return g
}

// Bias implements BenefitModel: prefer pairs that pull unresolved
// descriptions in.
func (AttributeCompleteness) Bias(a, b int, cl *match.Clusters, _ *match.Matcher) float64 {
	return AttributeCompleteness{}.Gain(a, b, cl, nil) / 2
}

// EntityCoverage targets the number of distinct real-world entities
// resolved: a merge of two singletons surfaces a new resolved entity
// (+1); extending an existing cluster adds no coverage; merging two
// resolved clusters reduces the count (two apparent entities turn out
// to be one) and scores 0 here — coverage cannot go below what was
// truly there.
type EntityCoverage struct{}

// Name implements BenefitModel.
func (EntityCoverage) Name() string { return "entity-coverage" }

// Gain implements BenefitModel.
func (EntityCoverage) Gain(a, b int, cl *match.Clusters, _ *match.Matcher) float64 {
	if cl.Size(a) == 1 && cl.Size(b) == 1 {
		return 1
	}
	return 0
}

// Bias implements BenefitModel: spread across untouched descriptions.
func (EntityCoverage) Bias(a, b int, cl *match.Clusters, _ *match.Matcher) float64 {
	return EntityCoverage{}.Gain(a, b, cl, nil)
}

// RelationshipCompleteness targets resolved entity graphs: a link
// between two descriptions is resolved once both endpoints belong to
// resolved (non-singleton) clusters. The gain of a match is the number
// of incident links that become resolved by it.
type RelationshipCompleteness struct{}

// Name implements BenefitModel.
func (RelationshipCompleteness) Name() string { return "relationship-completeness" }

// Gain implements BenefitModel.
func (RelationshipCompleteness) Gain(a, b int, cl *match.Clusters, m *match.Matcher) float64 {
	if m == nil {
		return 0
	}
	gain := 0.0
	count := func(id int, becomesResolved bool) {
		if !becomesResolved {
			return
		}
		for _, n := range m.Neighbors(id) {
			// The neighbor endpoint must be resolved already, or become
			// resolved by this same merge.
			if cl.Size(n) > 1 || n == a || n == b || cl.Same(n, a) || cl.Same(n, b) {
				gain++
			}
		}
	}
	count(a, cl.Size(a) == 1)
	count(b, cl.Size(b) == 1)
	return gain
}

// Bias implements BenefitModel: prefer pairs on the frontier of the
// already-resolved region — their links complete graphs immediately.
func (RelationshipCompleteness) Bias(a, b int, cl *match.Clusters, m *match.Matcher) float64 {
	if m == nil {
		return 0
	}
	resolvedNeighbors := func(id int) float64 {
		ns := m.Neighbors(id)
		if len(ns) == 0 {
			return 0
		}
		hit := 0
		for _, n := range ns {
			if cl.Size(n) > 1 {
				hit++
			}
		}
		return float64(hit) / float64(len(ns))
	}
	return (resolvedNeighbors(a) + resolvedNeighbors(b)) / 2
}

// Models lists the four benefit models, quantity first (the baseline
// semantics of prior work).
func Models() []BenefitModel {
	return []BenefitModel{Quantity{}, AttributeCompleteness{}, EntityCoverage{}, RelationshipCompleteness{}}
}
