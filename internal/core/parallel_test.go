package core

import (
	"strconv"
	"testing"

	"repro/internal/datagen"
	"repro/internal/match"
	"repro/internal/metablocking"
)

// hardWorld builds the center+periphery workload with links: the one
// where discovery and rechecks actually fire, so trace equality covers
// every Step field, not just the easy ones.
func hardWorld(t *testing.T, seed int64, n int) (*match.Matcher, []metablocking.Edge) {
	t.Helper()
	cfg := datagen.Config{
		Seed:        seed,
		NumEntities: n,
		KBs: []datagen.KBConfig{
			{Name: "centerA", Coverage: 1, Profile: datagen.Center()},
			{Name: "periphX", Coverage: 1, Profile: datagen.Periphery()},
		},
		LinksPerEntity: 3,
	}
	w, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pipeline(t, w)
}

func sameTrace(t *testing.T, label string, seq, par *Result) {
	t.Helper()
	if len(seq.Trace) != len(par.Trace) {
		t.Fatalf("%s: trace length %d != sequential %d", label, len(par.Trace), len(seq.Trace))
	}
	for i := range seq.Trace {
		if seq.Trace[i] != par.Trace[i] {
			t.Fatalf("%s: step %d differs:\n  sequential %+v\n  parallel   %+v",
				label, i, seq.Trace[i], par.Trace[i])
		}
	}
	if seq.Comparisons != par.Comparisons || seq.Matches != par.Matches ||
		seq.Discovered != par.Discovered || seq.Rechecks != par.Rechecks ||
		seq.TotalGain != par.TotalGain {
		t.Fatalf("%s: summaries differ:\n  sequential %+v\n  parallel   %+v", label, seq, par)
	}
}

// TestParallelTraceBitIdentical is the differential suite of the
// speculative-score/serial-commit engine: for every benefit model,
// discovery setting, and budget, the parallel trace must equal the
// sequential resolver's step for step in every field, for every worker
// count. CI runs it under -race, which also exercises the engine's
// synchronization.
func TestParallelTraceBitIdentical(t *testing.T) {
	m, edges := hardWorld(t, 99, 130)
	sawDiscovered, sawRecheck := false, false
	for _, model := range Models() {
		for _, noDisc := range []bool{false, true} {
			for _, budget := range []int{1, 7, 0} {
				base := Config{Benefit: model, DisableDiscovery: noDisc, Budget: budget}
				seq := NewResolver(m, edges, base).Run()
				for _, s := range seq.Trace {
					sawDiscovered = sawDiscovered || s.Discovered
					sawRecheck = sawRecheck || s.Recheck
				}
				for _, workers := range []int{1, 2, 4, 8} {
					cfg := base
					cfg.Workers = workers
					par := NewResolver(m, edges, cfg).Run()
					label := sprintfCase(model.Name(), noDisc, budget, workers)
					sameTrace(t, label, seq, par)
				}
			}
		}
	}
	// The matrix must have exercised the hard step kinds, or the
	// equality above proves less than it claims.
	if !sawDiscovered {
		t.Error("no sequential trace contained a discovered comparison")
	}
	if !sawRecheck {
		t.Error("no sequential trace contained a recheck")
	}
}

func sprintfCase(model string, noDisc bool, budget, workers int) string {
	disc := "discovery"
	if noDisc {
		disc = "no-discovery"
	}
	return model + "/" + disc + "/budget=" + itoa(budget) + "/workers=" + itoa(workers)
}

func itoa(n int) string {
	if n == 0 {
		return "inf"
	}
	return strconv.Itoa(n)
}

// TestParallelResumeLegs drives the parallel engine through uneven
// budget legs on one resolver — in-flight speculation waves cross leg
// boundaries — and requires the concatenated trace to equal one
// sequential run with the summed budget.
func TestParallelResumeLegs(t *testing.T) {
	m, edges := hardWorld(t, 100, 120)
	seq := NewResolver(m, edges, Config{}).Run()

	r := NewResolver(m, edges, Config{Workers: 4})
	var combined []Step
	for _, leg := range []int{1, 7, 13, 40} {
		combined = append(combined, r.RunBudget(leg).Trace...)
	}
	combined = append(combined, r.RunBudget(0).Trace...)
	if len(combined) != len(seq.Trace) {
		t.Fatalf("leg traces concatenate to %d steps, sequential has %d", len(combined), len(seq.Trace))
	}
	for i := range combined {
		if combined[i] != seq.Trace[i] {
			t.Fatalf("step %d differs across legs: %+v vs %+v", i, combined[i], seq.Trace[i])
		}
	}
}

// executable counts pairs that could be compared right now: tracked,
// not done, not already resolved transitively. Pending is documented
// as an upper bound on this.
func executable(r *Resolver) int {
	n := 0
	for k, st := range r.states {
		if p := keyPair(k); !st.done && !r.cl.Same(p.A, p.B) {
			n++
		}
	}
	return n
}

// TestPendingNeverUndercounts checks the documented upper-bound
// property of Pending as the heap accumulates stale entries (boost
// reinsertion and lazy revalidation both duplicate entries): at every
// checkpoint Pending must be at least the number of executable
// comparisons, and a drained resolver must leave none executable.
func TestPendingNeverUndercounts(t *testing.T) {
	for _, noDisc := range []bool{false, true} {
		for _, seed := range []int64{7, 8, 9} {
			m, edges := hardWorld(t, seed, 90)
			r := NewResolver(m, edges, Config{DisableDiscovery: noDisc})
			for {
				if p, e := r.Pending(), executable(r); p < e {
					t.Fatalf("seed=%d noDisc=%v: Pending=%d undercounts %d executable", seed, noDisc, p, e)
				}
				if res := r.RunBudget(25); res.Comparisons == 0 {
					break
				}
			}
			if e := executable(r); e != 0 {
				t.Fatalf("seed=%d noDisc=%v: drained resolver left %d executable pairs", seed, noDisc, e)
			}
		}
	}
}

// TestConfigExplicitZero is the regression suite for the zero-value
// config trap: zeroing a field of DefaultConfig must stick, while the
// zero Config keeps getting the documented defaults.
func TestConfigExplicitZero(t *testing.T) {
	if d := (Config{}).withDefaults(); d.NeighborBoost != 0.4 || d.BiasWeight != 0.25 {
		t.Fatalf("zero Config no longer defaults: %+v", d)
	}
	cfg := DefaultConfig()
	cfg.BiasWeight = 0
	cfg.NeighborBoost = 0
	if d := cfg.withDefaults(); d.BiasWeight != 0 || d.NeighborBoost != 0 {
		t.Fatalf("explicit zeros overwritten: %+v", d)
	}
	if d := (Config{}).withDefaults(); d.Benefit == nil {
		t.Fatal("nil Benefit not defaulted")
	}

	// Semantics: DefaultConfig ≡ zero Config, and a true-zero bias
	// actually changes the schedule relative to the default (the old
	// ε-hack in the ablations existed precisely because 0 could not).
	m, edges := hardWorld(t, 11, 100)
	def := NewResolver(m, edges, Config{}).Run()
	norm := NewResolver(m, edges, DefaultConfig()).Run()
	sameTrace(t, "DefaultConfig vs zero Config", def, norm)

	zeroed := DefaultConfig()
	zeroed.BiasWeight = 0
	zeroBias := NewResolver(m, edges, zeroed).Run()
	differs := len(zeroBias.Trace) != len(def.Trace)
	for i := 0; !differs && i < len(def.Trace); i++ {
		differs = zeroBias.Trace[i] != def.Trace[i]
	}
	if !differs {
		t.Error("BiasWeight=0 produced the default-bias trace; explicit zero had no effect")
	}
}
