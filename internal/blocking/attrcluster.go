package blocking

import (
	"sort"
	"strconv"

	"repro/internal/container"
	"repro/internal/kb"
	"repro/internal/similarity"
	"repro/internal/tokenize"
)

// AttributeClustering builds blocks like TokenBlocking but partitions
// the key space by clusters of semantically similar attributes: each
// attribute (predicate) of each KB is connected to its most similar
// attribute in every other KB (by Jaccard over the token sets of their
// values), connected components become attribute clusters, and a token
// only blocks two descriptions together if it appears under attributes
// of the same cluster.
//
// This trades a little recall for much higher precision than plain
// token blocking on heterogeneous KBs: "london" as a birthplace no
// longer collides with "london" as a publisher name. URI-infix tokens
// form their own dedicated cluster. Attributes whose best cross-KB
// similarity is zero fall into a shared "glue" cluster, preserving the
// schema-agnostic guarantee that every token is still a key.
func AttributeClustering(src *kb.Collection, opts tokenize.Options) *Collection {
	type attrKey struct {
		kb   int
		pred string
	}
	// 1. Collect the token profile of every (KB, predicate) attribute.
	profiles := make(map[attrKey]map[string]struct{})
	for id := 0; id < src.Len(); id++ {
		if !src.Alive(id) {
			continue
		}
		d := src.Desc(id)
		k := src.KBOf(id)
		for _, a := range d.Attrs {
			ak := attrKey{kb: k, pred: a.Predicate}
			set := profiles[ak]
			if set == nil {
				set = make(map[string]struct{})
				profiles[ak] = set
			}
			for _, tok := range tokenize.Tokens(a.Value, opts) {
				set[tok] = struct{}{}
			}
		}
	}
	attrs := make([]attrKey, 0, len(profiles))
	for ak := range profiles {
		attrs = append(attrs, ak)
	}
	sort.Slice(attrs, func(i, j int) bool {
		if attrs[i].kb != attrs[j].kb {
			return attrs[i].kb < attrs[j].kb
		}
		return attrs[i].pred < attrs[j].pred
	})
	index := make(map[attrKey]int, len(attrs))
	for i, ak := range attrs {
		index[ak] = i
	}

	// 2. Link every attribute to its best match in each other KB.
	uf := container.NewUnionFind(len(attrs) + 1)
	glue := len(attrs) // virtual node for unmatched attributes
	for i, ai := range attrs {
		bestSim := 0.0
		bestJ := -1
		for j, aj := range attrs {
			if ai.kb == aj.kb {
				continue
			}
			s := similarity.Jaccard(profiles[ai], profiles[aj])
			if s > bestSim {
				bestSim, bestJ = s, j
			}
		}
		if bestJ >= 0 {
			uf.Union(i, bestJ)
		} else {
			uf.Union(i, glue)
		}
	}

	// 3. Token blocking with cluster-qualified keys.
	byKey := make(map[string][]int)
	clusterName := func(i int) string {
		// Stable cluster label: the canonical representative's index.
		return "c" + strconv.Itoa(uf.Find(i))
	}
	for id := 0; id < src.Len(); id++ {
		if !src.Alive(id) {
			continue
		}
		d := src.Desc(id)
		k := src.KBOf(id)
		// URI tokens go to a dedicated cluster shared by all KBs.
		for _, tok := range tokenize.URITokens(d.URI, opts) {
			byKey["uri\x00"+tok] = append(byKey["uri\x00"+tok], id)
		}
		for _, a := range d.Attrs {
			ai, ok := index[attrKey{kb: k, pred: a.Predicate}]
			if !ok {
				continue
			}
			cl := clusterName(ai)
			for _, tok := range tokenize.Tokens(a.Value, opts) {
				byKey[cl+"\x00"+tok] = append(byKey[cl+"\x00"+tok], id)
			}
		}
	}
	return assemble(src, byKey)
}
