// Package blocking implements the schema-agnostic blocking layer of
// Minoan ER: token blocking (every token of every value and of the URI
// infix is a block key), attribute-clustering blocking (token keys
// partitioned by clusters of similar attributes), and the standard
// block-cleaning steps — block purging and block filtering — that
// discard oversized, low-evidence blocks before meta-blocking.
package blocking

import (
	"fmt"
	"sort"

	"repro/internal/kb"
	"repro/internal/tokenize"
)

// Block is one block: the set of description ids that share a key.
// Entities are sorted ascending and duplicate-free.
type Block struct {
	Key      string
	Entities []int
}

// Size returns the number of descriptions in the block.
func (b *Block) Size() int { return len(b.Entities) }

// Comparisons returns the number of distinct pairs the block induces.
// In clean–clean settings cross counts only cross-KB pairs; pass nil
// to count all pairs (dirty ER).
func (b *Block) Comparisons(c *kb.Collection, cleanClean bool) int {
	n := len(b.Entities)
	if !cleanClean || c == nil {
		return n * (n - 1) / 2
	}
	// Count pairs spanning different KBs: total pairs minus same-KB
	// pairs. KB counts fit a stack array in the common case — this runs
	// once per block per pipeline pass, and a heap map here dominated
	// the cleaning stages' allocation profile.
	total := n * (n - 1) / 2
	if nk := c.NumKBs(); nk <= 16 {
		var perKB [16]int
		for _, id := range b.Entities {
			perKB[c.KBOf(id)]++
		}
		for _, k := range perKB[:nk] {
			total -= k * (k - 1) / 2
		}
		return total
	}
	perKB := make(map[int]int)
	for _, id := range b.Entities {
		perKB[c.KBOf(id)]++
	}
	for _, k := range perKB {
		total -= k * (k - 1) / 2
	}
	return total
}

// Collection is a set of blocks over a kb.Collection.
type Collection struct {
	Blocks []Block
	// Source is the underlying description collection.
	Source *kb.Collection
	// CleanClean records whether comparisons are restricted to cross-KB
	// pairs (true when the source has more than one KB).
	CleanClean bool
}

// TokenBlocking builds one block per token appearing in any attribute
// value or URI infix of any live description. Blocks with fewer than
// two descriptions (or, in clean–clean settings, no cross-KB pair) are
// dropped — they induce no comparisons. Evicted descriptions are
// invisible: the result equals token blocking over a collection that
// never held them.
func TokenBlocking(src *kb.Collection, opts tokenize.Options) *Collection {
	byKey := make(map[string][]int)
	for id := 0; id < src.Len(); id++ {
		if !src.Alive(id) {
			continue
		}
		for _, tok := range src.Tokens(id, opts) {
			byKey[tok] = append(byKey[tok], id)
		}
	}
	return assemble(src, byKey)
}

// assemble turns a key→ids map into a sorted, pruned Collection.
func assemble(src *kb.Collection, byKey map[string][]int) *Collection {
	col := &Collection{Source: src, CleanClean: src.NumLiveKBs() > 1}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic block order
	for _, k := range keys {
		ids := dedupSorted(byKey[k])
		if len(ids) < 2 {
			continue
		}
		b := Block{Key: k, Entities: ids}
		if b.Comparisons(src, col.CleanClean) == 0 {
			continue
		}
		col.Blocks = append(col.Blocks, b)
	}
	return col
}

func dedupSorted(ids []int) []int {
	sort.Ints(ids)
	out := ids[:0]
	for i, v := range ids {
		if i == 0 || v != ids[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// NumBlocks returns the number of blocks.
func (col *Collection) NumBlocks() int { return len(col.Blocks) }

// TotalComparisons returns the aggregate number of pairwise comparisons
// across blocks, counting a pair once per block it appears in (the
// pre-meta-blocking cost, including repetitions).
func (col *Collection) TotalComparisons() int {
	total := 0
	for i := range col.Blocks {
		total += col.Blocks[i].Comparisons(col.Source, col.CleanClean)
	}
	return total
}

// Assignments returns the total number of entity-to-block placements
// (the "block assignments" size measure Σ|b|).
func (col *Collection) Assignments() int {
	total := 0
	for i := range col.Blocks {
		total += len(col.Blocks[i].Entities)
	}
	return total
}

// Pair is an unordered candidate comparison (A < B by construction).
type Pair struct {
	A, B int
}

// MakePair normalizes an unordered pair.
func MakePair(a, b int) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// DistinctPairs enumerates every distinct candidate pair induced by the
// blocks (each pair once, even if it co-occurs in many blocks),
// respecting the clean–clean restriction. Pairs are returned in
// deterministic order.
func (col *Collection) DistinctPairs() []Pair {
	seen := make(map[Pair]struct{})
	var out []Pair
	for i := range col.Blocks {
		b := &col.Blocks[i]
		for x := 0; x < len(b.Entities); x++ {
			for y := x + 1; y < len(b.Entities); y++ {
				a, bid := b.Entities[x], b.Entities[y]
				if col.CleanClean && !col.Source.CrossKB(a, bid) {
					continue
				}
				p := MakePair(a, bid)
				if _, dup := seen[p]; dup {
					continue
				}
				seen[p] = struct{}{}
				out = append(out, p)
			}
		}
	}
	return out
}

// EntityIndex maps each description id to the indices (into Blocks) of
// the blocks that contain it — the inverted structure meta-blocking
// traverses.
func (col *Collection) EntityIndex() [][]int32 {
	idx := make([][]int32, col.Source.Len())
	for bi := range col.Blocks {
		for _, id := range col.Blocks[bi].Entities {
			idx[id] = append(idx[id], int32(bi))
		}
	}
	return idx
}

// Stats summarizes a block collection.
type Stats struct {
	Blocks      int
	Assignments int
	Comparisons int
	MaxSize     int
	AvgSize     float64
}

// Stats computes summary statistics.
func (col *Collection) Stats() Stats {
	s := Stats{Blocks: len(col.Blocks)}
	for i := range col.Blocks {
		n := col.Blocks[i].Size()
		s.Assignments += n
		if n > s.MaxSize {
			s.MaxSize = n
		}
	}
	s.Comparisons = col.TotalComparisons()
	if s.Blocks > 0 {
		s.AvgSize = float64(s.Assignments) / float64(s.Blocks)
	}
	return s
}

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("blocks=%d assignments=%d comparisons=%d max=%d avg=%.1f",
		s.Blocks, s.Assignments, s.Comparisons, s.MaxSize, s.AvgSize)
}
