package blocking

import (
	"sort"

	"repro/internal/kb"
	"repro/internal/tokenize"
)

// SortedNeighborhood implements the schema-agnostic sorted-neighborhood
// adaptation for RDF data: every (token, description) pair is sorted
// by token, and a window of the given size slides over the resulting
// description sequence; descriptions co-occurring in a window become
// candidates. Compared to token blocking it bounds the cost of
// high-frequency tokens by construction — a token shared by a thousand
// descriptions contributes windows, not a quadratic block — at the
// price of possibly separating matches that sort far apart under the
// same token.
//
// Window must be ≥ 2; the conventional setting is 3–5. The output
// reuses the Collection shape: each window becomes a pseudo-block, so
// every downstream stage (cleaning, meta-blocking, scheduling) applies
// unchanged.
func SortedNeighborhood(src *kb.Collection, opts tokenize.Options, window int) *Collection {
	if window < 2 {
		window = 2
	}
	type entry struct {
		token string
		id    int
	}
	var entries []entry
	for id := 0; id < src.Len(); id++ {
		if !src.Alive(id) {
			continue
		}
		for _, tok := range src.Tokens(id, opts) {
			entries = append(entries, entry{token: tok, id: id})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].token != entries[j].token {
			return entries[i].token < entries[j].token
		}
		return entries[i].id < entries[j].id
	})

	col := &Collection{Source: src, CleanClean: src.NumLiveKBs() > 1}
	// Slide the window over the sorted sequence; emit one pseudo-block
	// per window position whose contents aren't subsumed by the
	// previous window (consecutive positions share window-1 members, so
	// a block is only useful when it pairs the newcomer with the rest).
	for start := 0; start+window <= len(entries); start++ {
		ids := make([]int, 0, window)
		seen := make(map[int]struct{}, window)
		for k := start; k < start+window; k++ {
			if _, dup := seen[entries[k].id]; dup {
				continue
			}
			seen[entries[k].id] = struct{}{}
			ids = append(ids, entries[k].id)
		}
		if len(ids) < 2 {
			continue
		}
		sort.Ints(ids)
		b := Block{Key: entries[start].token, Entities: ids}
		if b.Comparisons(src, col.CleanClean) == 0 {
			continue
		}
		col.Blocks = append(col.Blocks, b)
	}
	return col
}
