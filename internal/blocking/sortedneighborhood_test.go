package blocking

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/kb"
	"repro/internal/tokenize"
)

func TestSortedNeighborhoodBasic(t *testing.T) {
	c := twoKB() // alpha beta | gamma | alpha delta | gamma beta
	col := SortedNeighborhood(c, tokenize.Default(), 2)
	if col.NumBlocks() == 0 {
		t.Fatal("no windows produced")
	}
	// Window 2 over sorted (token, id) pairs must put the two "alpha"
	// holders (0 and 2) together.
	pairs := map[Pair]bool{}
	for _, p := range col.DistinctPairs() {
		pairs[p] = true
	}
	if !pairs[MakePair(0, 2)] {
		t.Errorf("alpha pair missing: %v", pairs)
	}
	for p := range pairs {
		if !c.CrossKB(p.A, p.B) {
			t.Errorf("same-KB pair %v in clean-clean setting", p)
		}
	}
}

func TestSortedNeighborhoodWindowBoundsCost(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(71, 300, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	opts := tokenize.Default()
	tok := TokenBlocking(w.Collection, opts)
	sn := SortedNeighborhood(w.Collection, opts, 4)
	tokPairs := len(tok.DistinctPairs())
	snPairs := len(sn.DistinctPairs())
	if snPairs >= tokPairs {
		t.Errorf("sorted neighborhood (%d pairs) should cost less than token blocking (%d)",
			snPairs, tokPairs)
	}
	// And it must still find most of the matches.
	found := 0
	for _, p := range sn.DistinctPairs() {
		if w.Truth.Match(p.A, p.B) {
			found++
		}
	}
	pc := float64(found) / float64(w.Truth.CrossKBMatchingPairs(w.Collection))
	if pc < 0.7 {
		t.Errorf("window=4 PC=%.3f too low", pc)
	}
	// Wider windows only add candidates.
	sn6 := SortedNeighborhood(w.Collection, opts, 6)
	if len(sn6.DistinctPairs()) < snPairs {
		t.Error("wider window produced fewer candidates")
	}
}

func TestSortedNeighborhoodMinWindow(t *testing.T) {
	c := twoKB()
	col := SortedNeighborhood(c, tokenize.Default(), 0) // clamped to 2
	if col.NumBlocks() == 0 {
		t.Fatal("clamped window produced nothing")
	}
}

func TestSortedNeighborhoodEmpty(t *testing.T) {
	col := SortedNeighborhood(kb.NewCollection(), tokenize.Default(), 3)
	if col.NumBlocks() != 0 {
		t.Errorf("empty collection gave %d blocks", col.NumBlocks())
	}
}
