package blocking

import (
	"math"
	"sort"
)

// Purge removes oversized blocks — high-frequency tokens such as
// "city" place thousands of descriptions together and carry almost no
// matching evidence, yet dominate the comparison cost.
//
// maxSize caps block cardinality explicitly; pass 0 to choose the cap
// automatically with AutoPurgeSize. Returns a new Collection; the
// receiver is unchanged.
func (col *Collection) Purge(maxSize int) *Collection {
	if maxSize <= 0 {
		maxSize = col.AutoPurgeSize()
	}
	out := &Collection{Source: col.Source, CleanClean: col.CleanClean}
	for i := range col.Blocks {
		if col.Blocks[i].Size() <= maxSize {
			out.Blocks = append(out.Blocks, col.Blocks[i])
		}
	}
	return out
}

// AutoPurgeSize picks a block-cardinality cap: the smallest size S
// such that blocks of size ≤ S still hold at least 90% of all
// entity-to-block assignments. Oversized blocks above the cap carry a
// thin slice of the assignment mass but — comparisons growing
// quadratically in block size — the bulk of the cost; dropping them
// loses little completeness (an entity in a huge block almost always
// co-occurs with its duplicates in smaller, rarer-key blocks too, the
// rationale of block purging in Papadakis et al.).
func (col *Collection) AutoPurgeSize() int {
	hist := make(map[int]int)
	for i := range col.Blocks {
		hist[col.Blocks[i].Size()]++
	}
	return AutoPurgeSizeFromHistogram(hist)
}

// AutoPurgeSizeFromHistogram computes AutoPurgeSize from a block-size
// histogram (size → number of blocks of that size). Split out so
// parallel engines can merge per-shard histograms and still pick
// exactly the sequential cap: every quantity involved is an integer
// far below 2⁵³, so the float arithmetic is exact in any summation
// order.
func AutoPurgeSizeFromHistogram(hist map[int]int) int {
	if len(hist) == 0 {
		return 0
	}
	const coverage = 0.90
	total := 0.0
	sizes := make([]int, 0, len(hist))
	for n, cnt := range hist {
		sizes = append(sizes, n)
		total += float64(n) * float64(cnt)
	}
	sort.Ints(sizes)
	cum := 0.0
	for _, n := range sizes {
		cum += float64(n) * float64(hist[n])
		if cum >= coverage*total {
			return n
		}
	}
	return sizes[len(sizes)-1]
}

// SizeRanks ranks the blocks by size, ties broken by block index: the
// returned slice maps each block index to its rank, a permutation of
// [0, len(Blocks)). Block filtering keeps each entity's smallest-rank
// blocks; the rank order is total, so every engine — sequential or
// sharded — selects the same blocks.
func (col *Collection) SizeRanks() []int {
	order := make([]int, len(col.Blocks))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := col.Blocks[order[a]].Size(), col.Blocks[order[b]].Size()
		if sa != sb {
			return sa < sb
		}
		return order[a] < order[b]
	})
	rank := make([]int, len(col.Blocks))
	for r, bi := range order {
		rank[bi] = r
	}
	return rank
}

// FilterLimit returns how many of an entity's n blocks block filtering
// retains: ⌈ratio·n⌉.
func FilterLimit(ratio float64, n int) int {
	return int(math.Ceil(ratio * float64(n)))
}

// Filter applies block filtering: each description is retained only in
// the ⌈ratio·|blocks(e)|⌉ smallest of its blocks. Smaller blocks carry
// stronger evidence (rarer keys), so trimming each entity's largest
// blocks removes weak candidates at minimal recall cost. ratio must be
// in (0, 1]; the canonical setting is 0.8.
//
// Returns a new Collection; blocks left with fewer than two
// descriptions (or no cross-KB pair) are dropped.
func (col *Collection) Filter(ratio float64) *Collection {
	if ratio <= 0 || ratio > 1 {
		ratio = 0.8
	}
	rank := col.SizeRanks()

	// For each entity, keep the blocks with the smallest ranks.
	idx := col.EntityIndex()
	keep := make([]map[int]struct{}, len(idx)) // entity → kept block indices
	for e, blocks := range idx {
		if len(blocks) == 0 {
			continue
		}
		limit := FilterLimit(ratio, len(blocks))
		bs := append([]int32(nil), blocks...)
		sort.Slice(bs, func(a, b int) bool { return rank[bs[a]] < rank[bs[b]] })
		keep[e] = make(map[int]struct{}, limit)
		for _, bi := range bs[:limit] {
			keep[e][int(bi)] = struct{}{}
		}
	}

	out := &Collection{Source: col.Source, CleanClean: col.CleanClean}
	for bi := range col.Blocks {
		var members []int
		for _, id := range col.Blocks[bi].Entities {
			if _, ok := keep[id][bi]; ok {
				members = append(members, id)
			}
		}
		if len(members) < 2 {
			continue
		}
		nb := Block{Key: col.Blocks[bi].Key, Entities: members}
		if nb.Comparisons(col.Source, col.CleanClean) == 0 {
			continue
		}
		out.Blocks = append(out.Blocks, nb)
	}
	return out
}
