package blocking

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/datagen"
	"repro/internal/kb"
	"repro/internal/tokenize"
)

// twoKB builds a tiny clean-clean collection with known token overlap.
func twoKB() *kb.Collection {
	c := kb.NewCollection()
	c.Add(&kb.Description{URI: "http://a.org/x1", KB: "a",
		Attrs: []kb.Attribute{{Predicate: "p", Value: "alpha beta"}}})
	c.Add(&kb.Description{URI: "http://a.org/x2", KB: "a",
		Attrs: []kb.Attribute{{Predicate: "p", Value: "gamma"}}})
	c.Add(&kb.Description{URI: "http://b.org/y1", KB: "b",
		Attrs: []kb.Attribute{{Predicate: "q", Value: "alpha delta"}}})
	c.Add(&kb.Description{URI: "http://b.org/y2", KB: "b",
		Attrs: []kb.Attribute{{Predicate: "q", Value: "gamma beta"}}})
	return c
}

func TestTokenBlockingBasic(t *testing.T) {
	col := TokenBlocking(twoKB(), tokenize.Default())
	if !col.CleanClean {
		t.Error("two KBs should be clean-clean")
	}
	byKey := map[string][]int{}
	for _, b := range col.Blocks {
		byKey[b.Key] = b.Entities
	}
	// "alpha" blocks x1(0) and y1(2); "beta" blocks 0 and 3; "gamma" 1 and 3.
	if got := byKey["alpha"]; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("alpha block = %v", got)
	}
	if got := byKey["beta"]; len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("beta block = %v", got)
	}
	// "delta" appears once: no block.
	if _, ok := byKey["delta"]; ok {
		t.Error("singleton token produced a block")
	}
	// Blocks are sorted by key.
	keys := make([]string, 0, len(col.Blocks))
	for _, b := range col.Blocks {
		keys = append(keys, b.Key)
	}
	if !sort.StringsAreSorted(keys) {
		t.Errorf("blocks not key-sorted: %v", keys)
	}
}

func TestTokenBlockingDropsSameKBOnlyBlocks(t *testing.T) {
	c := kb.NewCollection()
	c.Add(&kb.Description{URI: "u1", KB: "a", Attrs: []kb.Attribute{{Predicate: "p", Value: "shared"}}})
	c.Add(&kb.Description{URI: "u2", KB: "a", Attrs: []kb.Attribute{{Predicate: "p", Value: "shared"}}})
	c.Add(&kb.Description{URI: "u3", KB: "b", Attrs: []kb.Attribute{{Predicate: "p", Value: "other"}}})
	col := TokenBlocking(c, tokenize.Default())
	for _, b := range col.Blocks {
		if b.Key == "shared" {
			t.Error("clean-clean blocking kept a same-KB-only block")
		}
	}
}

func TestBlockComparisons(t *testing.T) {
	c := twoKB()
	b := Block{Key: "k", Entities: []int{0, 1, 2, 3}} // 2 from each KB
	if got := b.Comparisons(c, false); got != 6 {
		t.Errorf("dirty comparisons=%d, want 6", got)
	}
	if got := b.Comparisons(c, true); got != 4 {
		t.Errorf("clean-clean comparisons=%d, want 4", got)
	}
	if got := b.Comparisons(nil, true); got != 6 {
		t.Errorf("nil collection should count all pairs, got %d", got)
	}
}

func TestDistinctPairs(t *testing.T) {
	col := TokenBlocking(twoKB(), tokenize.Default())
	pairs := col.DistinctPairs()
	want := map[Pair]bool{{A: 0, B: 2}: true, {A: 0, B: 3}: true, {A: 1, B: 3}: true}
	if len(pairs) != len(want) {
		t.Fatalf("pairs=%v, want %v", pairs, want)
	}
	for _, p := range pairs {
		if !want[p] {
			t.Errorf("unexpected pair %v", p)
		}
		if p.A >= p.B {
			t.Errorf("pair %v not normalized", p)
		}
	}
}

func TestEntityIndex(t *testing.T) {
	col := TokenBlocking(twoKB(), tokenize.Default())
	idx := col.EntityIndex()
	if len(idx) != 4 {
		t.Fatalf("index size %d", len(idx))
	}
	// Every listed block must actually contain the entity.
	for e, blocks := range idx {
		for _, bi := range blocks {
			found := false
			for _, id := range col.Blocks[bi].Entities {
				if id == e {
					found = true
				}
			}
			if !found {
				t.Errorf("entity %d listed in block %d that lacks it", e, bi)
			}
		}
	}
}

func TestPurge(t *testing.T) {
	c := kb.NewCollection()
	// "common" appears in 6 descriptions; "rare" in 2.
	for i := 0; i < 3; i++ {
		c.Add(&kb.Description{URI: string(rune('a' + i)), KB: "a",
			Attrs: []kb.Attribute{{Predicate: "p", Value: "common"}}})
		c.Add(&kb.Description{URI: string(rune('x' + i)), KB: "b",
			Attrs: []kb.Attribute{{Predicate: "p", Value: "common"}}})
	}
	c.Add(&kb.Description{URI: "r1", KB: "a", Attrs: []kb.Attribute{{Predicate: "p", Value: "rare"}}})
	c.Add(&kb.Description{URI: "r2", KB: "b", Attrs: []kb.Attribute{{Predicate: "p", Value: "rare"}}})
	col := TokenBlocking(c, tokenize.Default())
	purged := col.Purge(3)
	for _, b := range purged.Blocks {
		if b.Size() > 3 {
			t.Errorf("block %q size %d survived purge(3)", b.Key, b.Size())
		}
	}
	if purged.NumBlocks() != 1 || purged.Blocks[0].Key != "rare" {
		t.Errorf("purge kept %v", purged.Blocks)
	}
	// Original untouched.
	if col.NumBlocks() != 2 {
		t.Error("Purge mutated its receiver")
	}
}

func TestAutoPurge(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(1, 300, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	col := TokenBlocking(w.Collection, tokenize.Default())
	size := col.AutoPurgeSize()
	if size <= 1 {
		t.Fatalf("AutoPurgeSize=%d", size)
	}
	purged := col.Purge(0)
	if purged.TotalComparisons() > col.TotalComparisons() {
		t.Error("purging increased comparisons")
	}
	if purged.NumBlocks() == 0 {
		t.Error("purging removed every block")
	}
}

func TestAutoPurgeEmpty(t *testing.T) {
	col := &Collection{Source: kb.NewCollection()}
	if got := col.AutoPurgeSize(); got != 0 {
		t.Errorf("empty AutoPurgeSize=%d", got)
	}
}

func TestFilter(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(2, 200, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	col := TokenBlocking(w.Collection, tokenize.Default())
	filtered := col.Filter(0.5)
	if filtered.TotalComparisons() >= col.TotalComparisons() {
		t.Errorf("filter(0.5) comparisons %d !< %d", filtered.TotalComparisons(), col.TotalComparisons())
	}
	// Each entity appears in at most ceil(0.5*original) blocks.
	before := col.EntityIndex()
	after := filtered.EntityIndex()
	for e := range after {
		if len(before[e]) == 0 {
			continue
		}
		limit := (len(before[e]) + 1) / 2
		if len(after[e]) > limit {
			t.Errorf("entity %d in %d blocks after filter, limit %d", e, len(after[e]), limit)
		}
	}
	// Invalid ratio falls back to 0.8 without panicking.
	if def := col.Filter(0); def.NumBlocks() == 0 {
		t.Error("default-ratio filter removed everything")
	}
}

func TestAttributeClustering(t *testing.T) {
	c := kb.NewCollection()
	// KB a: name + city. KB b: title + place. name≈title, city≈place by values.
	c.Add(&kb.Description{URI: "a1", KB: "a", Attrs: []kb.Attribute{
		{Predicate: "name", Value: "turing prize"}, {Predicate: "city", Value: "london"}}})
	c.Add(&kb.Description{URI: "a2", KB: "a", Attrs: []kb.Attribute{
		{Predicate: "name", Value: "church award"}, {Predicate: "city", Value: "paris"}}})
	c.Add(&kb.Description{URI: "b1", KB: "b", Attrs: []kb.Attribute{
		{Predicate: "title", Value: "turing prize"}, {Predicate: "place", Value: "london"}}})
	// "london" the publisher: must NOT block with city london.
	c.Add(&kb.Description{URI: "b2", KB: "b", Attrs: []kb.Attribute{
		{Predicate: "title", Value: "london calling"}, {Predicate: "place", Value: "madrid"}}})
	col := AttributeClustering(c, tokenize.Default())

	pairs := map[Pair]bool{}
	for _, p := range col.DistinctPairs() {
		pairs[p] = true
	}
	if !pairs[MakePair(0, 2)] {
		t.Error("a1-b1 (turing/london) not blocked")
	}
	// Plain token blocking WOULD pair a1 with b2 via "london"; attribute
	// clustering must separate city-london from title-london.
	if pairs[MakePair(0, 3)] {
		t.Error("attribute clustering failed to separate london-as-city from london-as-title")
	}
}

func TestAttributeClusteringSingleKB(t *testing.T) {
	// With one KB no cross-KB attribute matches exist: everything goes
	// to the glue cluster and behaves like token blocking.
	c := kb.NewCollection()
	c.Add(&kb.Description{URI: "u1", KB: "k", Attrs: []kb.Attribute{{Predicate: "p", Value: "alpha"}}})
	c.Add(&kb.Description{URI: "u2", KB: "k", Attrs: []kb.Attribute{{Predicate: "q", Value: "alpha"}}})
	col := AttributeClustering(c, tokenize.Default())
	if col.NumBlocks() != 1 {
		t.Fatalf("blocks=%d, want 1 glue block", col.NumBlocks())
	}
}

func TestStatsString(t *testing.T) {
	col := TokenBlocking(twoKB(), tokenize.Default())
	s := col.Stats()
	if s.Blocks != col.NumBlocks() || s.Comparisons != col.TotalComparisons() {
		t.Errorf("stats %+v inconsistent", s)
	}
	if s.String() == "" {
		t.Error("empty Stats.String")
	}
}

// Property: block membership is symmetric evidence — for every distinct
// pair (a,b) there exists a block containing both; and no pair violates
// the clean-clean restriction.
func TestDistinctPairsSound(t *testing.T) {
	f := func(seed int64) bool {
		w, err := datagen.Generate(datagen.TwoKBs(seed, 40, datagen.Periphery(), datagen.Center()))
		if err != nil {
			return false
		}
		col := TokenBlocking(w.Collection, tokenize.Default())
		idx := col.EntityIndex()
		for _, p := range col.DistinctPairs() {
			if !w.Collection.CrossKB(p.A, p.B) {
				return false
			}
			shared := false
			for _, ba := range idx[p.A] {
				for _, bb := range idx[p.B] {
					if ba == bb {
						shared = true
					}
				}
			}
			if !shared {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: purging and filtering only ever shrink the comparison cost
// and never invent new pairs.
func TestCleaningMonotone(t *testing.T) {
	f := func(seed int64) bool {
		w, err := datagen.Generate(datagen.TwoKBs(seed, 60, datagen.Center(), datagen.Periphery()))
		if err != nil {
			return false
		}
		col := TokenBlocking(w.Collection, tokenize.Default())
		basePairs := map[Pair]bool{}
		for _, p := range col.DistinctPairs() {
			basePairs[p] = true
		}
		for _, derived := range []*Collection{col.Purge(0), col.Filter(0.8), col.Purge(0).Filter(0.8)} {
			if derived.TotalComparisons() > col.TotalComparisons() {
				return false
			}
			for _, p := range derived.DistinctPairs() {
				if !basePairs[p] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
