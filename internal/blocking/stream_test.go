package blocking

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/kb"
	"repro/internal/tokenize"
)

// streamWorld builds a generated two-KB collection large enough that
// purge caps and filter ranks make nontrivial decisions.
func streamWorld(t *testing.T, seed int64, n int) *kb.Collection {
	t.Helper()
	w, err := datagen.Generate(datagen.TwoKBs(seed, n, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	return w.Collection
}

// sameBlocks requires two block collections to agree exactly: headers,
// key order, and every member list.
func sameBlocks(t *testing.T, label string, got, want *Collection) {
	t.Helper()
	if got.CleanClean != want.CleanClean {
		t.Fatalf("%s: CleanClean %v, want %v", label, got.CleanClean, want.CleanClean)
	}
	if len(got.Blocks) != len(want.Blocks) {
		t.Fatalf("%s: %d blocks, want %d", label, len(got.Blocks), len(want.Blocks))
	}
	for i := range want.Blocks {
		g, w := &got.Blocks[i], &want.Blocks[i]
		if g.Key != w.Key {
			t.Fatalf("%s: block %d key %q, want %q", label, i, g.Key, w.Key)
		}
		if len(g.Entities) != len(w.Entities) {
			t.Fatalf("%s: block %q has %d members, want %d", label, g.Key, len(g.Entities), len(w.Entities))
		}
		for j := range w.Entities {
			if g.Entities[j] != w.Entities[j] {
				t.Fatalf("%s: block %q member %d = %d, want %d", label, g.Key, j, g.Entities[j], w.Entities[j])
			}
		}
	}
}

// TestStreamMatchesMaterialized is the stage-by-stage differential
// between the iterator-composed front-end and the materialized
// reference: the stream source must equal TokenBlocking, and each
// stream transform (Purge with fixed and automatic caps, Filter) must
// equal the corresponding Collection method, composed in the same
// orders the engines compose them.
func TestStreamMatchesMaterialized(t *testing.T) {
	src := streamWorld(t, 11, 150)
	opts := tokenize.Default()
	ref := TokenBlocking(src, opts)

	sameBlocks(t, "source", TokenBlockingStream(src, opts).Collect(), ref)
	sameBlocks(t, "adapter", ref.Stream().Collect(), ref)

	for _, sizeCap := range []int{0, 8, 40} {
		got := TokenBlockingStream(src, opts).Purge(sizeCap).Collect()
		sameBlocks(t, "purge", got, ref.Purge(sizeCap))
	}
	for _, ratio := range []float64{0.5, 0.8, 1} {
		got := TokenBlockingStream(src, opts).Filter(ratio).Collect()
		sameBlocks(t, "filter", got, ref.Filter(ratio))
	}

	// The full chain, as pipeline.Run composes it.
	got := TokenBlockingStream(src, opts).Purge(0).Filter(0.8).Collect()
	sameBlocks(t, "chain", got, ref.Purge(0).Filter(0.8))
}

// TestStreamReplay checks the contract two-pass transforms rely on:
// ranging a composed stream again yields the identical sequence, and
// the memoized analyses (purge histogram, filter verdicts) hold across
// replays.
func TestStreamReplay(t *testing.T) {
	src := streamWorld(t, 12, 100)
	s := TokenBlockingStream(src, tokenize.Default()).Purge(0).Filter(0.8)
	first := s.Collect()
	second := s.Collect()
	sameBlocks(t, "replay", second, first)
}

// TestStreamEarlyStop checks that a consumer can stop mid-iteration:
// yield returning false must halt the walk without panicking anywhere
// in the transform chain, and a subsequent full replay still sees
// every block.
func TestStreamEarlyStop(t *testing.T) {
	src := streamWorld(t, 13, 80)
	s := TokenBlockingStream(src, tokenize.Default()).Purge(0).Filter(0.8)
	want := s.Collect()
	if len(want.Blocks) < 2 {
		t.Fatal("world too small to test early stop")
	}
	seen := 0
	s.Blocks(func(b *Block) bool {
		seen++
		return seen < 2
	})
	if seen != 2 {
		t.Fatalf("early stop saw %d blocks, want 2", seen)
	}
	sameBlocks(t, "after early stop", s.Collect(), want)
}

// TestMergeRunsStream splits a sorted block sequence into interleaved
// runs and requires the lazy k-way merge to reproduce the original
// order, including empty runs.
func TestMergeRunsStream(t *testing.T) {
	src := streamWorld(t, 14, 60)
	ref := TokenBlocking(src, tokenize.Default())
	runs := make([][]Block, 4)
	for i, b := range ref.Blocks {
		runs[i%3] = append(runs[i%3], b) // runs[3] stays empty
	}
	for i := range runs {
		// Each run must be internally sorted for the merge contract.
		for j := 1; j < len(runs[i]); j++ {
			if runs[i][j-1].Key >= runs[i][j].Key {
				t.Fatal("test runs not sorted")
			}
		}
	}
	got := MergeRunsStream(src, ref.CleanClean, runs).Collect()
	sameBlocks(t, "merge", got, ref)
}
