package blocking

import (
	"sort"

	"repro/internal/kb"
	"repro/internal/tokenize"
)

// Stream is a replayable sequence of blocks in ascending key order —
// the iterator-composed stage boundary of the blocking front-end.
// Instead of each stage materializing a full Collection for the next,
// stages compose as stream transforms (Purge, Filter) over one
// underlying generator, and only the final consumer decides what to
// hold: Collect materializes, the graph builder folds blocks as they
// are yielded.
//
// Ranging is pull-based and replayable: calling Blocks again replays
// the sequence from the stream's underlying state, which is how
// inherently two-pass transforms (the purge histogram, the filter
// ranks) work without materializing their input. The yielded *Block is
// owned by the stream and valid only until yield returns; its Entities
// may alias shared storage (postings, upstream blocks), exactly as
// materialized collections alias them today. Streams are not safe for
// concurrent iteration.
type Stream struct {
	// Source is the underlying description collection.
	Source *kb.Collection
	// CleanClean records whether comparisons are restricted to
	// cross-KB pairs.
	CleanClean bool
	// Blocks drives one iteration: it calls yield once per block in
	// ascending key order, stopping early if yield returns false.
	Blocks func(yield func(b *Block) bool)
}

// Stream adapts a materialized Collection to the stream boundary.
func (col *Collection) Stream() Stream {
	return Stream{Source: col.Source, CleanClean: col.CleanClean,
		Blocks: func(yield func(b *Block) bool) {
			for i := range col.Blocks {
				if !yield(&col.Blocks[i]) {
					return
				}
			}
		}}
}

// Collect materializes the stream into a Collection — the one point in
// an iterator-composed pipeline where block headers are held. Entities
// alias whatever the stream yielded.
func (s Stream) Collect() *Collection {
	col := &Collection{Source: s.Source, CleanClean: s.CleanClean}
	s.Blocks(func(b *Block) bool {
		col.Blocks = append(col.Blocks, *b)
		return true
	})
	return col
}

// TokenBlockingStream is token blocking as a stream source: the
// inverted token index is built once (it must exist — grouping is not
// streamable), but no []Block is ever materialized; blocks are yielded
// in ascending key order with the same pruning TokenBlocking applies
// (fewer than two members, or no comparisons, dropped).
func TokenBlockingStream(src *kb.Collection, opts tokenize.Options) Stream {
	byKey := make(map[string][]int)
	for id := 0; id < src.Len(); id++ {
		if !src.Alive(id) {
			continue
		}
		for _, tok := range src.Tokens(id, opts) {
			byKey[tok] = append(byKey[tok], id)
		}
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	cleanClean := src.NumLiveKBs() > 1
	return Stream{Source: src, CleanClean: cleanClean,
		Blocks: func(yield func(b *Block) bool) {
			for _, k := range keys {
				ids := dedupSorted(byKey[k])
				byKey[k] = ids // idempotent; keeps replays cheap
				if len(ids) < 2 {
					continue
				}
				b := Block{Key: k, Entities: ids}
				if b.Comparisons(src, cleanClean) == 0 {
					continue
				}
				if !yield(&b) {
					return
				}
			}
		}}
}

// MergeRunsStream yields the k-way merge of sorted-by-key block runs
// lazily, in ascending key order. Keys must be globally distinct across
// runs (each token owned by one run), so the merge order is total. The
// shared-memory engine's stream front door: its merge partitions stay
// where they were built and blocks flow to the transforms one at a
// time, instead of being concatenated into one materialized slice.
func MergeRunsStream(src *kb.Collection, cleanClean bool, runs [][]Block) Stream {
	live := make([][]Block, 0, len(runs))
	for _, r := range runs {
		if len(r) > 0 {
			live = append(live, r)
		}
	}
	return Stream{Source: src, CleanClean: cleanClean,
		Blocks: func(yield func(b *Block) bool) {
			cur := make([]int, len(live))
			for {
				min := -1
				for r := range live {
					if cur[r] == len(live[r]) {
						continue
					}
					if min < 0 || live[r][cur[r]].Key < live[min][cur[min]].Key {
						min = r
					}
				}
				if min < 0 {
					return
				}
				if !yield(&live[min][cur[min]]) {
					return
				}
				cur[min]++
			}
		}}
}

// IndexStream assembles raw blocks lazily from an inverted index: keys
// in ascending order, postings resolved through look (which may layer
// an uncommitted overlay over committed postings). It is the streaming
// ingest/evict path's equivalent of TokenBlockingStream — identical to
// a from-scratch token blocking over the live source, in linear time.
// Postings must already be sorted and duplicate-free.
func IndexStream(src *kb.Collection, keys []string, look func(tok string) ([]int, bool)) Stream {
	cleanClean := src.NumLiveKBs() > 1
	return Stream{Source: src, CleanClean: cleanClean,
		Blocks: func(yield func(b *Block) bool) {
			for _, tok := range keys {
				ids, _ := look(tok)
				if len(ids) < 2 {
					continue
				}
				b := Block{Key: tok, Entities: ids}
				if b.Comparisons(src, cleanClean) == 0 {
					continue
				}
				if !yield(&b) {
					return
				}
			}
		}}
}

// Purge is block purging as a stream transform: blocks above the size
// cap are dropped as they flow past. With maxSize ≤ 0 the cap is
// chosen automatically — one extra replay of the upstream builds the
// size histogram, memoized across replays of the result.
func (s Stream) Purge(maxSize int) Stream {
	limit, resolved := maxSize, maxSize > 0
	out := s
	out.Blocks = func(yield func(b *Block) bool) {
		if !resolved {
			hist := make(map[int]int)
			s.Blocks(func(b *Block) bool {
				hist[b.Size()]++
				return true
			})
			limit = AutoPurgeSizeFromHistogram(hist)
			resolved = true
		}
		s.Blocks(func(b *Block) bool {
			if b.Size() > limit {
				return true
			}
			return yield(b)
		})
	}
	return out
}

// Filter is block filtering as a stream transform: each description is
// retained only in the ⌈ratio·|blocks(e)|⌉ smallest of its blocks. The
// first iteration runs the analysis passes over the upstream — block
// sizes and ranks, an exact-size entity→position index, per-entity
// selection — and memoizes the verdicts; every iteration then rebuilds
// surviving members as blocks flow past, without the upstream ever
// being materialized. Results are identical to Collection.Filter.
func (s Stream) Filter(ratio float64) Stream {
	if ratio <= 0 || ratio > 1 {
		ratio = 0.8
	}
	st := &filterState{}
	out := s
	out.Blocks = func(yield func(b *Block) bool) {
		if !st.ready {
			st.analyze(s, ratio)
		}
		// Per-entity cursor over its kept positions (ascending); blocks
		// arrive in ascending position order, so each row is walked once.
		cur := make([]int32, len(st.klen))
		copy(cur, st.start[:len(st.klen)])
		pos := int32(-1)
		s.Blocks(func(b *Block) bool {
			pos++
			if st.keepCnt[pos] < 2 {
				return true // cursors catch up lazily
			}
			members := make([]int, 0, st.keepCnt[pos])
			for _, id := range b.Entities {
				end := st.start[id] + st.klen[id]
				for cur[id] < end && st.slab[cur[id]] < pos {
					cur[id]++
				}
				if cur[id] < end && st.slab[cur[id]] == pos {
					members = append(members, id)
					cur[id]++
				}
			}
			nb := Block{Key: b.Key, Entities: members}
			if nb.Comparisons(s.Source, s.CleanClean) == 0 {
				return true
			}
			return yield(&nb)
		})
	}
	return out
}

// filterState is the memoized analysis of a Filter transform: the
// entity→position CSR (slab rows, kept prefix per entity) and the
// per-position surviving member counts.
type filterState struct {
	ready   bool
	start   []int32 // entity → slab row offset (len = entities + 1)
	klen    []int32 // entity → kept prefix length of its row
	slab    []int32 // rows of block positions; kept prefix ascending
	keepCnt []int32 // position → surviving member count
}

func (st *filterState) analyze(s Stream, ratio float64) {
	numEnts := s.Source.Len()

	// Pass A: per-position sizes and per-entity assignment counts.
	var sizes []int32
	counts := make([]int32, numEnts)
	s.Blocks(func(b *Block) bool {
		sizes = append(sizes, int32(b.Size()))
		for _, id := range b.Entities {
			counts[id]++
		}
		return true
	})

	// Ranks by (size, position) — identical to Collection.SizeRanks,
	// since stream position is block index.
	order := make([]int32, len(sizes))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		if sizes[order[a]] != sizes[order[b]] {
			return sizes[order[a]] < sizes[order[b]]
		}
		return order[a] < order[b]
	})
	rank := make([]int32, len(sizes))
	for r, p := range order {
		rank[p] = int32(r)
	}

	// Pass B: exact-size CSR fill of entity → positions.
	st.start = make([]int32, numEnts+1)
	pos := int32(0)
	for id := 0; id < numEnts; id++ {
		st.start[id] = pos
		pos += counts[id]
		counts[id] = st.start[id] // repurposed as fill cursor
	}
	st.start[numEnts] = pos
	st.slab = make([]int32, pos)
	bi := int32(-1)
	s.Blocks(func(b *Block) bool {
		bi++
		for _, id := range b.Entities {
			st.slab[counts[id]] = bi
			counts[id]++
		}
		return true
	})

	// Selection: sort each row by rank, keep the limit smallest, then
	// restore ascending position order over the kept prefix. The ranks
	// are a permutation — a strict total order — so the kept set
	// matches the materialized Filter's.
	st.klen = make([]int32, numEnts)
	st.keepCnt = make([]int32, len(sizes))
	for id := 0; id < numEnts; id++ {
		row := st.slab[st.start[id]:st.start[id+1]]
		if len(row) == 0 {
			continue
		}
		limit := FilterLimit(ratio, len(row))
		sort.Slice(row, func(a, b int) bool { return rank[row[a]] < rank[row[b]] })
		kept := row[:limit]
		sort.Slice(kept, func(a, b int) bool { return kept[a] < kept[b] })
		st.klen[id] = int32(limit)
		for _, p := range kept {
			st.keepCnt[p]++
		}
	}
	st.ready = true
}
