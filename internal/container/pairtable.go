package container

// PairTable maps packed pair keys to dense int32 handles with open
// addressing — the dedup index of blocking-graph construction. Keys
// must be nonzero (a canonical pair a < b packs to a nonzero word, so
// zero is free as the empty-slot sentinel). Compared to a Go map it
// stores 12 bytes per slot flat, so the doubling growth of a build's
// dedup index allocates roughly half the bytes.
//
// The zero value is ready to use.
type PairTable struct {
	keys []uint64
	vals []int32
	n    int
}

// Len returns the number of stored keys.
func (t *PairTable) Len() int { return t.n }

// Get returns the handle stored under key, if any.
func (t *PairTable) Get(key uint64) (int32, bool) {
	if t.n == 0 {
		return 0, false
	}
	mask := uint64(len(t.keys) - 1)
	for i := hashPair(key) & mask; ; i = (i + 1) & mask {
		k := t.keys[i]
		if k == key {
			return t.vals[i], true
		}
		if k == 0 {
			return 0, false
		}
	}
}

// Put stores val under key. The key must not already be present — the
// graph builders only Put after a failed Get.
func (t *PairTable) Put(key uint64, val int32) {
	if 4*(t.n+1) > 3*len(t.keys) {
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	i := hashPair(key) & mask
	for t.keys[i] != 0 {
		i = (i + 1) & mask
	}
	t.keys[i] = key
	t.vals[i] = val
	t.n++
}

func (t *PairTable) grow() {
	newCap := 1 << 10
	if len(t.keys) > 0 {
		newCap = 2 * len(t.keys)
	}
	keys := make([]uint64, newCap)
	vals := make([]int32, newCap)
	mask := uint64(newCap - 1)
	for i, k := range t.keys {
		if k == 0 {
			continue
		}
		j := hashPair(k) & mask
		for keys[j] != 0 {
			j = (j + 1) & mask
		}
		keys[j] = k
		vals[j] = t.vals[i]
	}
	t.keys, t.vals = keys, vals
}

// hashPair spreads a packed pair key (Fibonacci multiplicative
// hashing); the high bits feed the table index after masking, so mix
// them down.
func hashPair(key uint64) uint64 {
	h := key * 0x9E3779B97F4A7C15
	return h ^ (h >> 29)
}
