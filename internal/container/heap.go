package container

// Heap is a generic binary heap ordered by a user-supplied less
// function. The progressive scheduler uses a max-heap of pending
// comparisons keyed by estimated benefit.
type Heap[T any] struct {
	items []T
	less  func(a, b T) bool
}

// NewHeap returns an empty heap ordered by less. For a max-heap pass a
// "greater" function.
func NewHeap[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// NewHeapFrom returns a heap over items, taking ownership of the
// slice and heapifying it in place with Floyd's sift-down — O(n)
// instead of the O(n log n) of pushing items one by one. Bulk builds
// (the progressive scheduler seeding every pruned edge) use it.
func NewHeapFrom[T any](less func(a, b T) bool, items []T) *Heap[T] {
	h := &Heap[T]{items: items, less: less}
	for i := len(items)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
	return h
}

// Len returns the number of items in the heap.
func (h *Heap[T]) Len() int { return len(h.items) }

// Push adds an item.
func (h *Heap[T]) Push(v T) {
	h.items = append(h.items, v)
	h.up(len(h.items) - 1)
}

// Peek returns the minimum item without removing it. It reports false
// if the heap is empty.
func (h *Heap[T]) Peek() (T, bool) {
	if len(h.items) == 0 {
		var zero T
		return zero, false
	}
	return h.items[0], true
}

// Pop removes and returns the minimum item. It reports false if the
// heap is empty.
func (h *Heap[T]) Pop() (T, bool) {
	if len(h.items) == 0 {
		var zero T
		return zero, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	var zero T
	h.items[last] = zero // release reference
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return top, true
}

// Items exposes the heap's backing slice in heap order (partially
// sorted: every element is ≤ its parent under less-reversed order).
// Callers must treat it as read-only and must not retain it across
// mutations. The parallel matching engine scans a prefix of it to pick
// speculation candidates — an approximation of the top of the heap
// that never needs to be exact.
func (h *Heap[T]) Items() []T { return h.items }

// Reset empties the heap, retaining allocated capacity.
func (h *Heap[T]) Reset() {
	var zero T
	for i := range h.items {
		h.items[i] = zero
	}
	h.items = h.items[:0]
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.items[i], h.items[p]) {
			return
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(h.items[l], h.items[smallest]) {
			smallest = l
		}
		if r < n && h.less(h.items[r], h.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}

// BoundedTopK keeps the k largest items seen (by less: a<b means a ranks
// lower). Cardinality pruning in meta-blocking (CEP/CNP) uses it to retain
// the top-weighted edges without sorting the full edge set.
type BoundedTopK[T any] struct {
	k    int
	heap *Heap[T] // min-heap of the current top k
}

// NewBoundedTopK returns a collector for the k largest items.
func NewBoundedTopK[T any](k int, less func(a, b T) bool) *BoundedTopK[T] {
	return &BoundedTopK[T]{k: k, heap: NewHeap(less)}
}

// Offer considers v for the top-k set.
func (b *BoundedTopK[T]) Offer(v T) {
	if b.k <= 0 {
		return
	}
	if b.heap.Len() < b.k {
		b.heap.Push(v)
		return
	}
	if smallest, _ := b.heap.Peek(); b.heap.less(smallest, v) {
		b.heap.Pop()
		b.heap.Push(v)
	}
}

// Len returns how many items are currently retained (≤ k).
func (b *BoundedTopK[T]) Len() int { return b.heap.Len() }

// Threshold returns the smallest retained item, the entry bar for the
// top-k set. It reports false when empty.
func (b *BoundedTopK[T]) Threshold() (T, bool) { return b.heap.Peek() }

// Drain removes and returns all retained items in ascending order.
func (b *BoundedTopK[T]) Drain() []T {
	out := make([]T, 0, b.heap.Len())
	for {
		v, ok := b.heap.Pop()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}
