package container

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestUnionFindBasics(t *testing.T) {
	u := NewUnionFind(5)
	if u.Len() != 5 || u.Sets() != 5 {
		t.Fatalf("Len=%d Sets=%d, want 5,5", u.Len(), u.Sets())
	}
	if !u.Union(0, 1) {
		t.Error("first union reported no merge")
	}
	if u.Union(1, 0) {
		t.Error("repeated union reported a merge")
	}
	if !u.Same(0, 1) || u.Same(0, 2) {
		t.Error("Same wrong after union")
	}
	u.Union(2, 3)
	u.Union(0, 3)
	if u.Sets() != 2 {
		t.Errorf("Sets=%d, want 2", u.Sets())
	}
	if u.SetSize(1) != 4 {
		t.Errorf("SetSize=%d, want 4", u.SetSize(1))
	}
	if u.SetSize(4) != 1 {
		t.Errorf("singleton SetSize=%d, want 1", u.SetSize(4))
	}
}

func TestUnionFindGrow(t *testing.T) {
	u := NewUnionFind(2)
	u.Union(0, 1)
	u.Grow(4)
	if u.Len() != 4 || u.Sets() != 3 {
		t.Fatalf("after grow Len=%d Sets=%d, want 4,3", u.Len(), u.Sets())
	}
	u.Grow(2) // shrink is a no-op
	if u.Len() != 4 {
		t.Errorf("shrink changed Len to %d", u.Len())
	}
	if !u.Same(0, 1) {
		t.Error("grow lost existing union")
	}
}

func TestUnionFindComponents(t *testing.T) {
	u := NewUnionFind(6)
	u.Union(4, 2)
	u.Union(2, 0)
	u.Union(5, 3)
	comps := u.Components(2)
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2: %v", len(comps), comps)
	}
	// Ordered by smallest member; members ascending.
	want0, want1 := []int{0, 2, 4}, []int{3, 5}
	if !equalInts(comps[0], want0) || !equalInts(comps[1], want1) {
		t.Errorf("components = %v, want [%v %v]", comps, want0, want1)
	}
	all := u.Components(1)
	if len(all) != 3 {
		t.Errorf("minSize=1 gave %d components, want 3", len(all))
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Property: after any sequence of unions, Sets() equals n minus the
// number of effective merges, and Same is an equivalence relation
// consistent with a naive reference implementation.
func TestUnionFindMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		u := NewUnionFind(n)
		ref := make([]int, n) // naive labels
		for i := range ref {
			ref[i] = i
		}
		merges := 0
		for k := 0; k < 3*n; k++ {
			x, y := rng.Intn(n), rng.Intn(n)
			got := u.Union(x, y)
			want := ref[x] != ref[y]
			if got != want {
				return false
			}
			if want {
				merges++
				old, nw := ref[x], ref[y]
				for i := range ref {
					if ref[i] == old {
						ref[i] = nw
					}
				}
			}
		}
		if u.Sets() != n-merges {
			return false
		}
		for k := 0; k < n; k++ {
			x, y := rng.Intn(n), rng.Intn(n)
			if u.Same(x, y) != (ref[x] == ref[y]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestUnionFindVersion pins the revalidation contract: only merging
// Unions bump the version — repeated unions and Find's path
// compression never do, because neither changes membership.
func TestUnionFindVersion(t *testing.T) {
	u := NewUnionFind(6)
	if u.Version() != 0 {
		t.Fatalf("fresh forest at version %d", u.Version())
	}
	u.Union(0, 1)
	u.Union(2, 3)
	if u.Version() != 2 {
		t.Fatalf("Version=%d after two merges, want 2", u.Version())
	}
	u.Union(1, 0) // no merge
	u.Find(3)     // compression only
	if u.Version() != 2 {
		t.Fatalf("Version=%d after a no-op union and a Find, want 2", u.Version())
	}
	u.Union(0, 3)
	if u.Version() != 3 {
		t.Fatalf("Version=%d, want 3", u.Version())
	}
}

// TestUnionFindSameReadConcurrent drives SameRead readers against a
// single writer running Find (path compression) and Union — the
// parallel matching engine's access pattern. The race detector proves
// the atomic discipline; the assertions prove reads bracketed by an
// unchanged version are exact, and that racing only path compression
// never changes an answer.
func TestUnionFindSameReadConcurrent(t *testing.T) {
	const n = 512
	u := NewUnionFind(n)
	rng := rand.New(rand.NewSource(42))

	stop := make(chan struct{})
	errs := make(chan string, 4)
	for w := 0; w < 4; w++ {
		go func(seed int64) {
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				x, y := r.Intn(n), r.Intn(n)
				v0 := u.Version()
				got := u.SameRead(x, y)
				// Bracketed exactness: if no merge landed around the read,
				// it must agree with a second read — the writer below only
				// compresses paths between merges.
				if u.Version() == v0 && u.SameRead(x, y) != got {
					select {
					case errs <- "SameRead unstable at a fixed version":
					default:
					}
					return
				}
			}
		}(int64(w))
	}
	for i := 0; i < 4*n; i++ {
		if i%3 == 0 {
			u.Union(rng.Intn(n), rng.Intn(n))
		} else {
			u.Find(rng.Intn(n)) // compression traffic between merges
		}
	}
	close(stop)
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	// Quiesced, the read path must agree with Find everywhere.
	for i := 0; i < n; i++ {
		x, y := rng.Intn(n), rng.Intn(n)
		if u.SameRead(x, y) != u.Same(x, y) {
			t.Fatalf("SameRead(%d,%d) disagrees with Same after quiescence", x, y)
		}
	}
}

func TestHeapOrdering(t *testing.T) {
	h := NewHeap(func(a, b int) bool { return a < b })
	if _, ok := h.Pop(); ok {
		t.Error("Pop on empty heap reported ok")
	}
	if _, ok := h.Peek(); ok {
		t.Error("Peek on empty heap reported ok")
	}
	for _, v := range []int{5, 1, 4, 1, 5, 9, 2, 6} {
		h.Push(v)
	}
	if top, _ := h.Peek(); top != 1 {
		t.Errorf("Peek=%d, want 1", top)
	}
	want := []int{1, 1, 2, 4, 5, 5, 6, 9}
	for i, w := range want {
		v, ok := h.Pop()
		if !ok || v != w {
			t.Fatalf("Pop %d = %d,%v, want %d", i, v, ok, w)
		}
	}
	if h.Len() != 0 {
		t.Errorf("Len=%d after draining", h.Len())
	}
}

func TestHeapReset(t *testing.T) {
	h := NewHeap(func(a, b int) bool { return a < b })
	h.Push(3)
	h.Push(1)
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Len=%d after Reset", h.Len())
	}
	h.Push(7)
	if v, _ := h.Pop(); v != 7 {
		t.Errorf("heap unusable after Reset: got %d", v)
	}
}

// Property: heap drains any random input in sorted order.
func TestHeapSortsProperty(t *testing.T) {
	f := func(xs []int) bool {
		h := NewHeap(func(a, b int) bool { return a < b })
		for _, x := range xs {
			h.Push(x)
		}
		var got []int
		for {
			v, ok := h.Pop()
			if !ok {
				break
			}
			got = append(got, v)
		}
		if len(got) != len(xs) {
			return false
		}
		return sort.IntsAreSorted(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBoundedTopK(t *testing.T) {
	tk := NewBoundedTopK(3, func(a, b float64) bool { return a < b })
	for _, v := range []float64{0.1, 0.9, 0.5, 0.7, 0.3, 0.8} {
		tk.Offer(v)
	}
	if tk.Len() != 3 {
		t.Fatalf("Len=%d, want 3", tk.Len())
	}
	if thr, _ := tk.Threshold(); thr != 0.7 {
		t.Errorf("Threshold=%v, want 0.7", thr)
	}
	got := tk.Drain()
	want := []float64{0.7, 0.8, 0.9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Drain=%v, want %v", got, want)
		}
	}
}

func TestBoundedTopKZeroK(t *testing.T) {
	tk := NewBoundedTopK(0, func(a, b int) bool { return a < b })
	tk.Offer(1)
	if tk.Len() != 0 {
		t.Errorf("k=0 retained %d items", tk.Len())
	}
}

// Property: BoundedTopK retains exactly the k largest values.
func TestBoundedTopKProperty(t *testing.T) {
	f := func(xs []int, k8 uint8) bool {
		k := int(k8%10) + 1
		tk := NewBoundedTopK(k, func(a, b int) bool { return a < b })
		for _, x := range xs {
			tk.Offer(x)
		}
		got := tk.Drain()
		sorted := append([]int(nil), xs...)
		sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
		if k > len(sorted) {
			k = len(sorted)
		}
		want := append([]int(nil), sorted[:k]...)
		sort.Ints(want)
		return equalInts(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSparseSet(t *testing.T) {
	s := NewSparseSet(10)
	if s.Capacity() != 10 || s.Len() != 0 {
		t.Fatalf("fresh set Cap=%d Len=%d", s.Capacity(), s.Len())
	}
	if !s.Add(3) || !s.Add(7) || s.Add(3) {
		t.Error("Add return values wrong")
	}
	if !s.Contains(3) || !s.Contains(7) || s.Contains(4) {
		t.Error("Contains wrong")
	}
	if s.Contains(-1) || s.Contains(100) {
		t.Error("out-of-range Contains should be false")
	}
	if got := s.Sorted(); !equalInts(got, []int{3, 7}) {
		t.Errorf("Sorted=%v", got)
	}
	s.Clear()
	if s.Len() != 0 || s.Contains(3) {
		t.Error("Clear did not empty the set")
	}
	// Reuse after clear: stale sparse entries must not cause false positives.
	if !s.Add(7) || s.Contains(3) {
		t.Error("stale entry visible after Clear")
	}
}

func TestBitset(t *testing.T) {
	b := NewBitset(130)
	if b.Len() != 130 || b.Count() != 0 {
		t.Fatalf("fresh bitset Len=%d Count=%d", b.Len(), b.Count())
	}
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i)
	}
	for _, i := range []int{0, 63, 64, 129} {
		if !b.Test(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if b.Test(1) || b.Test(128) {
		t.Error("unset bit reads as set")
	}
	if b.Count() != 4 {
		t.Errorf("Count=%d, want 4", b.Count())
	}
	b.Clear(64)
	if b.Test(64) || b.Count() != 3 {
		t.Error("Clear failed")
	}
	b.Reset()
	if b.Count() != 0 {
		t.Errorf("Count=%d after Reset", b.Count())
	}
}

// Property: SparseSet agrees with map[int]bool under random ops.
func TestSparseSetMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const capacity = 50
		s := NewSparseSet(capacity)
		ref := make(map[int]bool)
		for op := 0; op < 300; op++ {
			v := rng.Intn(capacity)
			switch rng.Intn(3) {
			case 0:
				added := s.Add(v)
				if added == ref[v] {
					return false
				}
				ref[v] = true
			case 1:
				if s.Contains(v) != ref[v] {
					return false
				}
			case 2:
				if rng.Intn(10) == 0 {
					s.Clear()
					ref = make(map[int]bool)
				}
			}
			if s.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestNewHeapFrom checks Floyd heapification against one-by-one
// pushes: same multiset in, same sorted drain out.
func TestNewHeapFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		items := make([]int, n)
		for i := range items {
			items[i] = rng.Intn(50) // duplicates likely
		}
		h := NewHeapFrom(func(a, b int) bool { return a < b }, append([]int(nil), items...))
		if h.Len() != n {
			t.Fatalf("Len=%d, want %d", h.Len(), n)
		}
		var drained []int
		for {
			v, ok := h.Pop()
			if !ok {
				break
			}
			drained = append(drained, v)
		}
		want := append([]int(nil), items...)
		sort.Ints(want)
		if len(drained) != len(want) {
			t.Fatalf("drained %d items, want %d", len(drained), len(want))
		}
		for i := range want {
			if drained[i] != want[i] {
				t.Fatalf("trial %d: drain[%d]=%d, want %d", trial, i, drained[i], want[i])
			}
		}
	}
}

// TestHeapItems checks the read-only view: heap order (every element
// ≥ its children under the max ordering), all elements present, and a
// descending input left untouched by heapify (the property the
// matching engine's snapshot relies on).
func TestHeapItems(t *testing.T) {
	h := NewHeap(func(a, b int) bool { return a > b }) // max-heap
	for _, v := range []int{5, 1, 9, 3, 9, 2} {
		h.Push(v)
	}
	items := h.Items()
	if len(items) != h.Len() {
		t.Fatalf("Items len %d != Len %d", len(items), h.Len())
	}
	for i := range items {
		for _, c := range []int{2*i + 1, 2*i + 2} {
			if c < len(items) && items[i] < items[c] {
				t.Fatalf("heap property violated at %d: %v", i, items)
			}
		}
	}
	desc := []int{9, 7, 5, 5, 3, 1, 0}
	hd := NewHeapFrom(func(a, b int) bool { return a > b }, append([]int(nil), desc...))
	for i, v := range hd.Items() {
		if v != desc[i] {
			t.Fatalf("descending input reordered by heapify: %v", hd.Items())
		}
	}
}

// TestPairTable drives the open-addressed pair index differentially
// against a Go map across several doubling boundaries: every Put must
// be visible to Get, absent keys must miss, and Len must track the
// live count. Keys come from a fixed-seed generator so runs are
// reproducible; clustered key patterns (consecutive packed pairs)
// exercise the linear-probe chains.
func TestPairTable(t *testing.T) {
	var pt PairTable
	if _, ok := pt.Get(42); ok {
		t.Fatal("zero-value table claims to hold a key")
	}
	if pt.Len() != 0 {
		t.Fatalf("zero-value Len = %d", pt.Len())
	}

	rng := rand.New(rand.NewSource(7))
	ref := make(map[uint64]int32)
	// A mix of random keys and dense runs of consecutive keys — the
	// latter is what canonical pair packing produces for one hub node's
	// edges, the worst case for probe clustering.
	keys := make([]uint64, 0, 5000)
	for len(keys) < 4000 {
		k := rng.Uint64()
		if k == 0 {
			continue
		}
		keys = append(keys, k)
	}
	base := uint64(1) << 32
	for i := uint64(0); i < 1000; i++ {
		keys = append(keys, base+i)
	}
	for i, k := range keys {
		if _, dup := ref[k]; dup {
			continue
		}
		if _, ok := pt.Get(k); ok {
			t.Fatalf("key %#x present before Put", k)
		}
		pt.Put(k, int32(i))
		ref[k] = int32(i)
		if v, ok := pt.Get(k); !ok || v != int32(i) {
			t.Fatalf("Get(%#x) after Put = %d, %v; want %d", k, v, ok, i)
		}
	}
	if pt.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", pt.Len(), len(ref))
	}
	for k, want := range ref {
		if v, ok := pt.Get(k); !ok || v != want {
			t.Fatalf("Get(%#x) = %d, %v; want %d", k, v, ok, want)
		}
	}
	for i := 0; i < 2000; i++ {
		k := rng.Uint64()
		if k == 0 {
			continue
		}
		if _, hit := ref[k]; hit {
			continue
		}
		if v, ok := pt.Get(k); ok {
			t.Fatalf("absent key %#x returned %d", k, v)
		}
	}
}
