package container

import (
	"math/bits"
	"sort"
)

// SparseSet is an integer set over a bounded universe [0, cap) with O(1)
// insert, membership, and clear. Blocking uses one as a scratch set when
// intersecting block contents: Clear is constant-time, so the same set
// can be reused across millions of block intersections without
// reallocating.
type SparseSet struct {
	dense  []int32 // members, in insertion order
	sparse []int32 // sparse[v] = index of v in dense, if member
}

// NewSparseSet returns an empty set over the universe [0, capacity).
func NewSparseSet(capacity int) *SparseSet {
	return &SparseSet{sparse: make([]int32, capacity)}
}

// Len returns the number of members.
func (s *SparseSet) Len() int { return len(s.dense) }

// Capacity returns the universe size.
func (s *SparseSet) Capacity() int { return len(s.sparse) }

// Add inserts v, reporting whether it was newly added.
// v must be in [0, Capacity()).
func (s *SparseSet) Add(v int) bool {
	if s.Contains(v) {
		return false
	}
	s.sparse[v] = int32(len(s.dense))
	s.dense = append(s.dense, int32(v))
	return true
}

// Contains reports membership of v. Out-of-range v is simply absent.
func (s *SparseSet) Contains(v int) bool {
	if v < 0 || v >= len(s.sparse) {
		return false
	}
	i := s.sparse[v]
	return int(i) < len(s.dense) && s.dense[i] == int32(v)
}

// Clear empties the set in O(1).
func (s *SparseSet) Clear() { s.dense = s.dense[:0] }

// Members returns the members in insertion order. The returned slice is
// valid until the next mutation.
func (s *SparseSet) Members() []int32 { return s.dense }

// Sorted returns the members as a fresh ascending []int.
func (s *SparseSet) Sorted() []int {
	out := make([]int, len(s.dense))
	for i, v := range s.dense {
		out[i] = int(v)
	}
	sort.Ints(out)
	return out
}

// Bitset is a fixed-size bit vector. The blocking graph uses bitsets to
// deduplicate candidate pairs per node without hashing.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns an all-zero bitset of n bits.
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b *Bitset) Clear(i int) { b.words[i>>6] &^= 1 << (uint(i) & 63) }

// Test reports bit i.
func (b *Bitset) Test(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Reset zeroes all bits.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}
