// Package container provides the small data structures the resolution
// pipeline is built on: a disjoint-set forest for match clustering, a
// generic binary heap for comparison scheduling, and compact integer
// sets for block manipulation.
package container

// UnionFind is a disjoint-set forest over integer identifiers 0..n-1
// with union by size and path compression. It clusters entity
// descriptions as matches are discovered.
//
// The zero value is an empty forest; use NewUnionFind or Grow to size it.
type UnionFind struct {
	parent []int32
	size   []int32
	sets   int
}

// NewUnionFind returns a forest of n singleton sets.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{}
	u.Grow(n)
	return u
}

// Grow extends the forest so that ids 0..n-1 are valid, adding new
// elements as singletons. Shrinking is not supported; smaller n is a no-op.
func (u *UnionFind) Grow(n int) {
	for i := len(u.parent); i < n; i++ {
		u.parent = append(u.parent, int32(i))
		u.size = append(u.size, 1)
		u.sets++
	}
}

// Len returns the number of elements in the forest.
func (u *UnionFind) Len() int { return len(u.parent) }

// Sets returns the current number of disjoint sets.
func (u *UnionFind) Sets() int { return u.sets }

// Find returns the canonical representative of x's set.
func (u *UnionFind) Find(x int) int {
	root := x
	for int(u.parent[root]) != root {
		root = int(u.parent[root])
	}
	// Path compression.
	for int(u.parent[x]) != root {
		u.parent[x], x = int32(root), int(u.parent[x])
	}
	return root
}

// Union merges the sets containing x and y and reports whether a merge
// happened (false if they were already in the same set).
func (u *UnionFind) Union(x, y int) bool {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return false
	}
	if u.size[rx] < u.size[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = int32(rx)
	u.size[rx] += u.size[ry]
	u.sets--
	return true
}

// Same reports whether x and y are in the same set.
func (u *UnionFind) Same(x, y int) bool { return u.Find(x) == u.Find(y) }

// SetSize returns the size of the set containing x.
func (u *UnionFind) SetSize(x int) int { return int(u.size[u.Find(x)]) }

// Components returns every set with at least minSize members, each as a
// slice of member ids in increasing order. Sets are ordered by their
// smallest member, giving deterministic output.
func (u *UnionFind) Components(minSize int) [][]int {
	groups := make(map[int][]int)
	for i := 0; i < len(u.parent); i++ {
		r := u.Find(i)
		groups[r] = append(groups[r], i)
	}
	var out [][]int
	for i := 0; i < len(u.parent); i++ {
		r := u.Find(i)
		if members, ok := groups[r]; ok {
			if len(members) >= minSize {
				out = append(out, members)
			}
			delete(groups, r)
		}
	}
	return out
}
