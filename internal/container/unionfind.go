// Package container provides the small data structures the resolution
// pipeline is built on: a disjoint-set forest for match clustering, a
// generic binary heap for comparison scheduling, and compact integer
// sets for block manipulation.
package container

import "sync/atomic"

// UnionFind is a disjoint-set forest over integer identifiers 0..n-1
// with union by size and path compression. It clusters entity
// descriptions as matches are discovered.
//
// Mutation (Find's path compression, Union, Grow) is single-writer,
// but every parent write is an atomic store, so any number of
// goroutines may run SameRead concurrently with the writer — the
// lock-free read path the parallel matching engine's speculative
// neighbor-similarity scoring uses. Version orders those reads against
// the merge history.
//
// The zero value is an empty forest; use NewUnionFind or Grow to size it.
type UnionFind struct {
	parent []int32
	size   []int32
	sets   int
	// version counts the merging Unions applied so far. A reader that
	// saw the same Version before and after a batch of SameRead calls
	// knows the membership relation did not change under it (path
	// compression does not bump the version — it never changes
	// membership).
	version uint64
}

// NewUnionFind returns a forest of n singleton sets.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{}
	u.Grow(n)
	return u
}

// Grow extends the forest so that ids 0..n-1 are valid, adding new
// elements as singletons. Shrinking is not supported; smaller n is a no-op.
// Unlike Find/Union, Grow may reallocate the parent array and must not
// run while SameRead readers are active (the resolver quiesces its
// speculation waves before growing).
func (u *UnionFind) Grow(n int) {
	for i := len(u.parent); i < n; i++ {
		u.parent = append(u.parent, int32(i))
		u.size = append(u.size, 1)
		u.sets++
	}
}

// Len returns the number of elements in the forest.
func (u *UnionFind) Len() int { return len(u.parent) }

// Sets returns the current number of disjoint sets.
func (u *UnionFind) Sets() int { return u.sets }

// Version returns the number of merging Unions applied so far. Two
// equal readings bracket a window in which the membership relation was
// constant — the revalidation handle for speculative work computed off
// SameRead while the writer kept merging.
func (u *UnionFind) Version() uint64 { return u.version }

// Find returns the canonical representative of x's set.
func (u *UnionFind) Find(x int) int {
	root := x
	for int(u.parent[root]) != root {
		root = int(u.parent[root])
	}
	// Path compression. Writes are atomic stores so concurrent SameRead
	// root chases never tear; the writer's own reads need no ordering —
	// it is the only mutator.
	for int(u.parent[x]) != root {
		next := int(u.parent[x])
		atomic.StoreInt32(&u.parent[x], int32(root))
		x = next
	}
	return root
}

// Union merges the sets containing x and y and reports whether a merge
// happened (false if they were already in the same set).
func (u *UnionFind) Union(x, y int) bool {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return false
	}
	if u.size[rx] < u.size[ry] {
		rx, ry = ry, rx
	}
	atomic.StoreInt32(&u.parent[ry], int32(rx))
	u.size[rx] += u.size[ry]
	u.sets--
	u.version++
	return true
}

// Same reports whether x and y are in the same set.
func (u *UnionFind) Same(x, y int) bool { return u.Find(x) == u.Find(y) }

// SameRead reports whether x and y are in the same set without
// mutating the forest: root chases use atomic loads and skip path
// compression, so any number of SameRead calls may run concurrently
// with the single writer. A call racing a Union may settle on either
// side of it; callers needing exactness bracket their reads with
// Version. Racing only path compression is exact — compression moves
// parent pointers toward the same root it never changes.
func (u *UnionFind) SameRead(x, y int) bool { return u.findRead(x) == u.findRead(y) }

// findRead is Find's read-only form: every parent hop is an atomic
// load and nothing is written. Parent chains stay acyclic under
// compression and union-by-size, so the chase always terminates at a
// root that represented x's set at some instant during the call.
func (u *UnionFind) findRead(x int) int {
	for {
		p := int(atomic.LoadInt32(&u.parent[x]))
		if p == x {
			return x
		}
		x = p
	}
}

// SetSize returns the size of the set containing x.
func (u *UnionFind) SetSize(x int) int { return int(u.size[u.Find(x)]) }

// Components returns every set with at least minSize members, each as a
// slice of member ids in increasing order. Sets are ordered by their
// smallest member, giving deterministic output.
func (u *UnionFind) Components(minSize int) [][]int {
	groups := make(map[int][]int)
	for i := 0; i < len(u.parent); i++ {
		r := u.Find(i)
		groups[r] = append(groups[r], i)
	}
	var out [][]int
	for i := 0; i < len(u.parent); i++ {
		r := u.Find(i)
		if members, ok := groups[r]; ok {
			if len(members) >= minSize {
				out = append(out, members)
			}
			delete(groups, r)
		}
	}
	return out
}
