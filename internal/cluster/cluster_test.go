package cluster

import (
	"testing"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/kb"
	"repro/internal/match"
	"repro/internal/metablocking"
	"repro/internal/tokenize"
)

func TestAlgorithmStrings(t *testing.T) {
	if TransitiveClosure.String() != "transitive-closure" ||
		Center.String() != "center" || UniqueMapping.String() != "unique-mapping" {
		t.Error("names wrong")
	}
	if Algorithm(99).String() == "" {
		t.Error("unknown algorithm renders empty")
	}
	if len(Algorithms()) != 3 {
		t.Error("Algorithms() incomplete")
	}
}

func TestTransitiveClosureChains(t *testing.T) {
	ms := []Match{{A: 0, B: 1, Score: 0.9}, {A: 1, B: 2, Score: 0.8}}
	cl := Cluster(TransitiveClosure, ms, nil, 4)
	if !cl.Same(0, 2) {
		t.Error("closure did not chain")
	}
}

func TestCenterRefusesSatelliteChains(t *testing.T) {
	// 0-1 strongest (0 center, 1 satellite); 1-2 would chain through a
	// satellite and must be dropped; 0-3 attaches 3 to the center.
	ms := []Match{
		{A: 0, B: 1, Score: 0.9},
		{A: 1, B: 2, Score: 0.8},
		{A: 0, B: 3, Score: 0.7},
	}
	cl := Cluster(Center, ms, nil, 5)
	if !cl.Same(0, 1) || !cl.Same(0, 3) {
		t.Error("center cluster wrong membership")
	}
	if cl.Same(1, 2) || cl.Same(0, 2) {
		t.Error("satellite chained")
	}
}

func TestUniqueMappingOnePartnerPerKB(t *testing.T) {
	c := kb.NewCollection()
	a0 := c.Add(&kb.Description{URI: "a0", KB: "a"})
	b0 := c.Add(&kb.Description{URI: "b0", KB: "b"})
	b1 := c.Add(&kb.Description{URI: "b1", KB: "b"})
	x0 := c.Add(&kb.Description{URI: "x0", KB: "x"})
	ms := []Match{
		{A: a0, B: b0, Score: 0.9},
		{A: a0, B: b1, Score: 0.8}, // second partner in KB b: dropped
		{A: a0, B: x0, Score: 0.7}, // partner in a third KB: allowed
	}
	cl := Cluster(UniqueMapping, ms, c, c.Len())
	if !cl.Same(a0, b0) || !cl.Same(a0, x0) {
		t.Error("accepted pairs missing")
	}
	if cl.Same(a0, b1) {
		t.Error("second partner in the same KB accepted")
	}
}

func TestUniqueMappingNilCollection(t *testing.T) {
	ms := []Match{{A: 0, B: 1, Score: 0.9}, {A: 0, B: 2, Score: 0.8}}
	cl := Cluster(UniqueMapping, ms, nil, 3)
	if !cl.Same(0, 1) || cl.Same(0, 2) {
		t.Error("nil-collection degradation wrong")
	}
}

func TestScoreOrderDecides(t *testing.T) {
	// With reversed input order, the higher-scoring pair must still win
	// the unique-mapping slot.
	c := kb.NewCollection()
	a0 := c.Add(&kb.Description{URI: "a0", KB: "a"})
	b0 := c.Add(&kb.Description{URI: "b0", KB: "b"})
	b1 := c.Add(&kb.Description{URI: "b1", KB: "b"})
	ms := []Match{
		{A: a0, B: b1, Score: 0.5},
		{A: a0, B: b0, Score: 0.9},
	}
	cl := Cluster(UniqueMapping, ms, c, c.Len())
	if !cl.Same(a0, b0) || cl.Same(a0, b1) {
		t.Error("score ordering ignored")
	}
}

// On a dirty workload, center clustering and unique mapping must beat
// transitive closure on precision.
func TestClusteringImprovesDirtyPrecision(t *testing.T) {
	w, err := datagen.Generate(datagen.DirtyKB(17, 250, 2))
	if err != nil {
		t.Fatal(err)
	}
	col := blocking.TokenBlocking(w.Collection, tokenize.Default()).Purge(0).Filter(0.8)
	g := metablocking.Build(col, metablocking.ECBS)
	edges := g.Prune(metablocking.WNP, metablocking.PruneOptions{Assignments: col.Assignments()})
	m := match.NewMatcher(w.Collection, match.DefaultOptions())
	res := core.NewResolver(m, edges, core.Config{}).Run()
	matches := FromSteps(res.Trace)

	prf := func(alg Algorithm) eval.MatchQuality {
		cl := Cluster(alg, matches, w.Collection, w.Collection.Len())
		var pairs []blocking.Pair
		for _, p := range cl.Pairs(w.Collection, false) {
			pairs = append(pairs, blocking.Pair{A: p[0], B: p[1]})
		}
		return eval.EvaluateMatches(w.Collection, w.Truth, pairs)
	}
	tc := prf(TransitiveClosure)
	ce := prf(Center)
	if ce.Precision <= tc.Precision {
		t.Errorf("center precision %.3f !> closure %.3f", ce.Precision, tc.Precision)
	}
	if ce.F1 < tc.F1-0.05 {
		t.Errorf("center F1 %.3f collapsed vs closure %.3f", ce.F1, tc.F1)
	}
}

func TestFromSteps(t *testing.T) {
	steps := []core.Step{
		{A: 0, B: 1, Score: 0.8, Matched: true},
		{A: 1, B: 2, Score: 0.2, Matched: false},
	}
	ms := FromSteps(steps)
	if len(ms) != 1 || ms[0] != (Match{A: 0, B: 1, Score: 0.8}) {
		t.Errorf("FromSteps=%v", ms)
	}
}
