// Package cluster turns a scored list of confirmed matches into entity
// clusters. Transitive closure — what a bare union-find gives — is the
// fastest choice but propagates every false positive; the alternatives
// implemented here (center clustering, unique mapping) come from the
// ER clustering literature (surveyed in the authors' book, Christophides
// et al. 2015) and trade a little recall for substantially higher
// precision by refusing to chain weak matches.
//
// All algorithms consume the same input — matches with scores, sorted
// internally by descending score — and emit a match.Clusters value, so
// they drop into the pipeline behind any matcher.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/kb"
	"repro/internal/match"
)

// Match is one scored confirmed pair.
type Match struct {
	A, B  int
	Score float64
}

// Algorithm selects the clustering strategy.
type Algorithm int

const (
	// TransitiveClosure unions every matched pair (the default).
	TransitiveClosure Algorithm = iota
	// Center builds star-shaped clusters: processing matches by
	// descending score, a node becomes a cluster center the first time
	// it appears; later matches only attach unassigned satellites to
	// centers, never chain satellite to satellite.
	Center
	// UniqueMapping enforces the clean–clean constraint greedily: each
	// description accepts at most one partner per other KB, taken in
	// descending score order (stable-marriage-flavored greedy).
	UniqueMapping
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case TransitiveClosure:
		return "transitive-closure"
	case Center:
		return "center"
	case UniqueMapping:
		return "unique-mapping"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Algorithms lists all clustering strategies, for sweeps.
func Algorithms() []Algorithm {
	return []Algorithm{TransitiveClosure, Center, UniqueMapping}
}

// Cluster groups the matches with the chosen algorithm over a
// collection of n descriptions. col may be nil except for
// UniqueMapping, which needs KB identities; with nil col UniqueMapping
// degrades to one partner total per description.
func Cluster(alg Algorithm, matches []Match, col *kb.Collection, n int) *match.Clusters {
	ordered := append([]Match(nil), matches...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Score != ordered[j].Score {
			return ordered[i].Score > ordered[j].Score
		}
		if ordered[i].A != ordered[j].A {
			return ordered[i].A < ordered[j].A
		}
		return ordered[i].B < ordered[j].B
	})
	var cl *match.Clusters
	if col != nil {
		cl = match.NewClustersFor(col)
	} else {
		cl = match.NewClusters(n)
	}
	switch alg {
	case Center:
		clusterCenter(cl, ordered, n)
	case UniqueMapping:
		clusterUnique(cl, ordered, col)
	default:
		for _, m := range ordered {
			cl.Merge(m.A, m.B)
		}
	}
	return cl
}

func clusterCenter(cl *match.Clusters, ordered []Match, n int) {
	const (
		free = iota
		center
		satellite
	)
	role := make([]uint8, n)
	for _, m := range ordered {
		ra, rb := role[m.A], role[m.B]
		switch {
		case ra == free && rb == free:
			// The first (highest-scoring) appearance wins: A becomes the
			// center, B its satellite.
			role[m.A], role[m.B] = center, satellite
			cl.Merge(m.A, m.B)
		case ra == center && rb == free:
			role[m.B] = satellite
			cl.Merge(m.A, m.B)
		case rb == center && ra == free:
			role[m.A] = satellite
			cl.Merge(m.A, m.B)
			// Satellite–satellite and center–center matches are dropped:
			// that refusal to chain is what blocks false-positive bridges.
		}
	}
}

func clusterUnique(cl *match.Clusters, ordered []Match, col *kb.Collection) {
	type slot struct {
		id int
		kb int
	}
	taken := make(map[slot]bool)
	kbOf := func(id int) int {
		if col == nil {
			return 0
		}
		return col.KBOf(id)
	}
	for _, m := range ordered {
		sa := slot{id: m.A, kb: kbOf(m.B)}
		sb := slot{id: m.B, kb: kbOf(m.A)}
		if taken[sa] || taken[sb] {
			continue
		}
		taken[sa], taken[sb] = true, true
		cl.Merge(m.A, m.B)
	}
}

// StepLike decouples this package from internal/core: anything that
// can report (a, b, score, matched) feeds the clusterers.
type StepLike interface {
	StepInfo() (a, b int, score float64, matched bool)
}

// FromSteps extracts the scored matches from a progressive trace (only
// steps that confirmed a match).
func FromSteps[S StepLike](steps []S) []Match {
	var out []Match
	for _, s := range steps {
		a, b, score, matched := s.StepInfo()
		if matched {
			out = append(out, Match{A: a, B: b, Score: score})
		}
	}
	return out
}
