package metablocking

import (
	"sort"

	"repro/internal/blocking"
)

// NewGraphShell returns an empty Graph over col's descriptions with the
// per-node block counts precomputed. External builders (the MapReduce
// realization in internal/parblock) add aggregated edge statistics with
// AddEdgeStat and then call Finish — producing a graph identical to
// what Build computes sequentially.
func NewGraphShell(col *blocking.Collection) *Graph {
	g := &Graph{NumNodes: col.Source.Len(), nBlock: col.NumBlocks(), nLive: col.Source.NumAlive()}
	g.blocks = make([]int32, g.NumNodes)
	for i := range col.Blocks {
		for _, id := range col.Blocks[i].Entities {
			g.blocks[id]++
		}
	}
	return g
}

// AddEdgeStat records one distinct pair's aggregated evidence: its
// common-block count (CBS) and its Σ 1/||b|| (ARCS numerator).
func (g *Graph) AddEdgeStat(a, b, cbs int, arcs float64) {
	if a > b {
		a, b = b, a
	}
	g.Edges = append(g.Edges, Edge{A: a, B: b})
	g.common = append(g.common, cbs)
	g.arcs = append(g.arcs, arcs)
}

// Finish sorts the edges canonically, computes node degrees, and
// applies the weighting scheme. Call exactly once after the last
// AddEdgeStat.
func (g *Graph) Finish(scheme Scheme) {
	order := make([]int, len(g.Edges))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		ex, ey := g.Edges[order[x]], g.Edges[order[y]]
		if ex.A != ey.A {
			return ex.A < ey.A
		}
		return ex.B < ey.B
	})
	edges := make([]Edge, len(g.Edges))
	common := make([]int, len(g.common))
	arcs := make([]float64, len(g.arcs))
	for i, o := range order {
		edges[i] = g.Edges[o]
		common[i] = g.common[o]
		arcs[i] = g.arcs[o]
	}
	g.Edges, g.common, g.arcs = edges, common, arcs
	g.degree = make([]int32, g.NumNodes)
	for _, e := range g.Edges {
		g.degree[e.A]++
		g.degree[e.B]++
	}
	g.reweigh(scheme)
}

// NewGraphFromStats builds a Graph directly from fully aggregated edge
// statistics already in canonical (A, B) ascending order — the bulk
// entry point for the shared-memory parallel builder
// (internal/parmeta), which aggregates and sorts its shards itself.
// common[i] and arcs[i] belong to edges[i]; the slices are adopted,
// not copied. Weights are not computed: call Reweigh (or ReweighRange
// over shards) afterwards.
func NewGraphFromStats(col *blocking.Collection, edges []Edge, common []int, arcs []float64) *Graph {
	g := NewGraphShell(col)
	g.Edges, g.common, g.arcs = edges, common, arcs
	g.degree = make([]int32, g.NumNodes)
	for _, e := range g.Edges {
		g.degree[e.A]++
		g.degree[e.B]++
	}
	return g
}

// SortEdges orders edges by descending weight, ties by ascending
// (A, B) — the consumption order of a budget-driven matcher.
func SortEdges(es []Edge) { sortEdges(es) }
