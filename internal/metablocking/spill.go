package metablocking

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/store"
)

// Graph spilling: between streaming passes the blocking graph is the
// session's largest idle structure — its edge and evidence arrays are
// only read inside an ingest/evict window (structural diff, reweigh,
// re-prune), while matching and serving read the retained-edge list,
// never the graph. With a store attached, the session pages the CSR
// arrays out at stage boundaries — after the front-end build, when
// matching takes over, around a compaction epoch — and back in when
// the next streaming pass begins, so a burst of passes pays the round
// trip once; the scalar statistics (node counts, block count, cached
// edge count and footprint) stay hot so /status and CNP budget
// resolution never touch the store.
//
// Arrays are encoded raw little-endian, floats via IEEE-754 bits, so a
// spill/load round trip is bit-exact — the differential suites run
// identically whether or not the graph ever left the heap. The 'g'
// keyspace holds exactly one graph: a compaction's replacement graph
// overwrites it, and the superseded graph is never loaded again (a
// failed swap poisons the session before another pass could try).

const graphTag = 'g'

func graphKey(field byte) []byte { return []byte{graphTag, field} }

// Spill writes the graph's arrays to the store and drops them from the
// heap, caching NumEdges and Footprint for the hot-path gauges.
// Idempotent while spilled.
func (g *Graph) Spill(s store.Store) error {
	if g.spilled {
		return nil
	}
	g.spEdges = len(g.Edges)
	g.spFoot = g.Footprint()

	// Put copies (or frames) the value before returning, so one scratch
	// buffer serves all five fields — a streaming session spills every
	// pass, and per-spill allocations would be pure GC pressure.
	buf := g.scratch(24 * len(g.Edges))
	for i, e := range g.Edges {
		binary.LittleEndian.PutUint64(buf[24*i:], uint64(e.A))
		binary.LittleEndian.PutUint64(buf[24*i+8:], uint64(e.B))
		binary.LittleEndian.PutUint64(buf[24*i+16:], math.Float64bits(e.Weight))
	}
	if err := s.Put(graphKey('E'), buf); err != nil {
		return err
	}
	buf = g.scratch(8 * len(g.common))
	for i, v := range g.common {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
	}
	if err := s.Put(graphKey('c'), buf); err != nil {
		return err
	}
	buf = g.scratch(8 * len(g.arcs))
	for i, v := range g.arcs {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	if err := s.Put(graphKey('a'), buf); err != nil {
		return err
	}
	if err := s.Put(graphKey('b'), g.encodeInt32s(g.blocks)); err != nil {
		return err
	}
	if err := s.Put(graphKey('d'), g.encodeInt32s(g.degree)); err != nil {
		return err
	}
	g.spill = s
	g.spilled = true
	g.Edges, g.common, g.arcs, g.blocks, g.degree = nil, nil, nil, nil, nil
	return nil
}

// Load pages the spilled arrays back in. Idempotent while resident.
func (g *Graph) Load() error {
	if !g.spilled {
		return nil
	}
	buf, err := g.loadField('E')
	if err != nil {
		return err
	}
	if len(buf) != 24*g.spEdges {
		return fmt.Errorf("metablocking: spilled edges hold %d bytes, want %d", len(buf), 24*g.spEdges)
	}
	g.Edges = make([]Edge, g.spEdges)
	for i := range g.Edges {
		g.Edges[i] = Edge{
			A:      int(int64(binary.LittleEndian.Uint64(buf[24*i:]))),
			B:      int(int64(binary.LittleEndian.Uint64(buf[24*i+8:]))),
			Weight: math.Float64frombits(binary.LittleEndian.Uint64(buf[24*i+16:])),
		}
	}
	if buf, err = g.loadField('c'); err != nil {
		return err
	}
	g.common = make([]int, len(buf)/8)
	for i := range g.common {
		g.common[i] = int(int64(binary.LittleEndian.Uint64(buf[8*i:])))
	}
	if buf, err = g.loadField('a'); err != nil {
		return err
	}
	g.arcs = make([]float64, len(buf)/8)
	for i := range g.arcs {
		g.arcs[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	if buf, err = g.loadField('b'); err != nil {
		return err
	}
	g.blocks = decodeInt32s(buf)
	if buf, err = g.loadField('d'); err != nil {
		return err
	}
	g.degree = decodeInt32s(buf)
	g.spilled = false
	return nil
}

// Spilled reports whether the graph's arrays currently live in the store.
func (g *Graph) Spilled() bool { return g.spilled }

func (g *Graph) loadField(field byte) ([]byte, error) {
	buf, ok, err := g.spill.Get(graphKey(field))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("metablocking: spilled graph field %q missing from store", field)
	}
	return buf, nil
}

// scratch returns the reused spill encode buffer grown to n bytes.
func (g *Graph) scratch(n int) []byte {
	if cap(g.spillBuf) < n {
		g.spillBuf = make([]byte, n)
	}
	return g.spillBuf[:n]
}

func (g *Graph) encodeInt32s(vs []int32) []byte {
	buf := g.scratch(4 * len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	return buf
}

func decodeInt32s(buf []byte) []int32 {
	vs := make([]int32, len(buf)/4)
	for i := range vs {
		vs[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return vs
}
