package metablocking

import (
	"fmt"
	"testing"

	"repro/internal/blocking"
	"repro/internal/datagen"
	"repro/internal/kb"
	"repro/internal/tokenize"
)

// TestUpdateMatchesRebuildOnEviction drives Graph.Update down its
// block-shrinkage path: descriptions are tombstoned in waves and after
// each wave the incrementally updated graph must be bit-identical to a
// from-scratch Build over the surviving blocks, for every weighting
// scheme, with and without block cleaning. Edges whose blocks lost
// members re-accumulate; edges orphaned by the departure drop.
func TestUpdateMatchesRebuildOnEviction(t *testing.T) {
	for _, clean := range []bool{false, true} {
		for _, scheme := range Schemes() {
			t.Run(fmt.Sprintf("clean=%v/%v", clean, scheme), func(t *testing.T) {
				w, err := datagen.Generate(datagen.TwoKBs(171, 160, datagen.Center(), datagen.Periphery()))
				if err != nil {
					t.Fatal(err)
				}
				src := w.Collection
				blocksOf := func() *blocking.Collection {
					if clean {
						return cleanedBlocks(src)
					}
					return blocking.TokenBlocking(src, tokenize.Default())
				}
				prevBlocks := blocksOf()
				g := Build(prevBlocks, scheme)
				// Waves: a spread of ids, always leaving both KBs alive.
				order := interleaved(src)
				waves := [][]int{
					order[3:7],
					{order[0], order[len(order)-1]},
					order[20:29],
				}
				for wi, wave := range waves {
					for _, id := range wave {
						src.Evict(id)
					}
					curBlocks := blocksOf()
					if !curBlocks.CleanClean {
						t.Fatal("wave emptied a KB — workload broken for this test")
					}
					stats := g.Update(prevBlocks, curBlocks, scheme)
					if stats.Rebuilt {
						t.Fatalf("wave %d: eviction fell back to a full rebuild", wi)
					}
					if stats.BlocksRemoved+stats.BlocksChanged == 0 {
						t.Fatalf("wave %d: eviction changed no blocks — workload too easy", wi)
					}
					want := Build(curBlocks, scheme)
					graphsIdentical(t, fmt.Sprintf("wave %d", wi), want, g)
					if g.LiveNodes() != src.NumAlive() {
						t.Fatalf("wave %d: LiveNodes=%d, want %d", wi, g.LiveNodes(), src.NumAlive())
					}
					prevBlocks = curBlocks
				}
			})
		}
	}
}

// TestUpdateEvictionTouchesOnlyDelta pins the efficiency contract of
// the deletion path: evicting a handful of descriptions recomputes a
// small neighborhood of the graph, not the whole edge set.
func TestUpdateEvictionTouchesOnlyDelta(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(172, 300, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	src := w.Collection
	prevBlocks := cleanedBlocks(src)
	g := Build(prevBlocks, ECBS)
	total := g.NumEdges()
	for _, id := range interleaved(src)[:4] {
		src.Evict(id)
	}
	curBlocks := cleanedBlocks(src)
	stats := g.Update(prevBlocks, curBlocks, ECBS)
	if stats.Rebuilt {
		t.Fatal("unexpected full rebuild")
	}
	if stats.EdgesTouched == 0 {
		t.Fatal("eviction touched no edges — workload too easy to mean anything")
	}
	if stats.EdgesTouched >= total/2 {
		t.Fatalf("evicting 4 of %d descriptions touched %d of %d edges — not delta-proportional",
			src.Len(), stats.EdgesTouched, total)
	}
	graphsIdentical(t, "evict-delta", Build(curBlocks, ECBS), g)
}

// TestUpdateKBDepartureFlip covers the documented fallback in reverse:
// when eviction empties all KBs but one, the surviving corpus is dirty
// ER — the pair semantics of every block change and the update
// degrades to one full rebuild, still bit-identical.
func TestUpdateKBDepartureFlip(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(173, 80, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	src := w.Collection
	prevBlocks := blocking.TokenBlocking(src, tokenize.Default())
	if !prevBlocks.CleanClean {
		t.Fatal("two-KB collection unexpectedly dirty")
	}
	g := Build(prevBlocks, ECBS)
	secondKB := src.KBName(1)
	for _, id := range src.LiveIDsOfKB(secondKB) {
		src.Evict(id)
	}
	if src.NumLiveKBs() != 1 {
		t.Fatalf("live KBs = %d after emptying %q", src.NumLiveKBs(), secondKB)
	}
	curBlocks := blocking.TokenBlocking(src, tokenize.Default())
	if curBlocks.CleanClean {
		t.Fatal("single live KB still clean–clean")
	}
	stats := g.Update(prevBlocks, curBlocks, ECBS)
	if !stats.Rebuilt {
		t.Fatal("clean–clean → dirty flip must trigger a full rebuild")
	}
	graphsIdentical(t, "kb-departure", Build(curBlocks, ECBS), g)
}

// TestTombstonedBuildEqualsCompacted is the "never held them" proof at
// the graph layer: a Build over a tombstoned collection equals, under
// the order-preserving id mapping, a Build over a compacted collection
// that never contained the evicted descriptions — same blocks, same
// edges, identical float statistics and weights.
func TestTombstonedBuildEqualsCompacted(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(174, 120, datagen.Center(), datagen.Periphery()))
	if err != nil {
		t.Fatal(err)
	}
	src := w.Collection
	for _, id := range interleaved(src)[5:17] {
		src.Evict(id)
	}
	// Order-preserving map: tombstoned id → compacted id.
	compact := kb.NewCollection()
	idMap := make(map[int]int)
	for id := 0; id < src.Len(); id++ {
		if !src.Alive(id) {
			continue
		}
		d := src.Desc(id)
		idMap[id] = compact.Add(&kb.Description{URI: d.URI, KB: d.KB, Types: d.Types, Attrs: d.Attrs, Links: d.Links})
	}
	for _, scheme := range Schemes() {
		got := Build(cleanedBlocks(src), scheme)
		want := Build(cleanedBlocks(compact), scheme)
		if len(got.Edges) != len(want.Edges) {
			t.Fatalf("%v: %d edges, want %d", scheme, len(got.Edges), len(want.Edges))
		}
		for i := range got.Edges {
			ge, we := got.Edges[i], want.Edges[i]
			if idMap[ge.A] != we.A || idMap[ge.B] != we.B {
				t.Fatalf("%v: edge %d maps to (%d,%d), want (%d,%d)",
					scheme, i, idMap[ge.A], idMap[ge.B], we.A, we.B)
			}
			if ge.Weight != we.Weight {
				t.Fatalf("%v: edge %d weight %v, want %v (not bit-identical)", scheme, i, ge.Weight, we.Weight)
			}
			if got.common[i] != want.common[i] || got.arcs[i] != want.arcs[i] {
				t.Fatalf("%v: edge %d stats differ", scheme, i)
			}
		}
	}
}
