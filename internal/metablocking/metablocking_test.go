package metablocking

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/blocking"
	"repro/internal/datagen"
	"repro/internal/kb"
	"repro/internal/tokenize"
)

// fixture: KB a = {0:"x y", 1:"y z"}, KB b = {2:"x y", 3:"w z"}.
// Blocks: x:{0,2} y:{0,1,2} z:{1,3} w:{-} (singleton dropped).
func fixture(t *testing.T) *blocking.Collection {
	t.Helper()
	c := kb.NewCollection()
	c.Add(&kb.Description{URI: "a0", KB: "a", Attrs: []kb.Attribute{{Predicate: "p", Value: "xx yy"}}})
	c.Add(&kb.Description{URI: "a1", KB: "a", Attrs: []kb.Attribute{{Predicate: "p", Value: "yy zz"}}})
	c.Add(&kb.Description{URI: "b2", KB: "b", Attrs: []kb.Attribute{{Predicate: "p", Value: "xx yy"}}})
	c.Add(&kb.Description{URI: "b3", KB: "b", Attrs: []kb.Attribute{{Predicate: "p", Value: "ww zz"}}})
	return blocking.TokenBlocking(c, tokenize.Default())
}

func edgeMap(es []Edge) map[[2]int]float64 {
	m := make(map[[2]int]float64, len(es))
	for _, e := range es {
		m[[2]int{e.A, e.B}] = e.Weight
	}
	return m
}

func TestBuildCBS(t *testing.T) {
	g := Build(fixture(t), CBS)
	// Candidate cross-KB pairs: (0,2) via xx+yy, (0,3) none... check:
	// blocks: xx:{0,2}, yy:{0,1,2}, zz:{1,3}. Cross-KB pairs: (0,2) twice,
	// (1,2) once, (1,3) once.
	em := edgeMap(g.Edges)
	if len(em) != 3 {
		t.Fatalf("edges=%v", em)
	}
	if em[[2]int{0, 2}] != 2 || em[[2]int{1, 2}] != 1 || em[[2]int{1, 3}] != 1 {
		t.Errorf("CBS weights wrong: %v", em)
	}
}

func TestWeightingSchemes(t *testing.T) {
	col := fixture(t)
	g := Build(col, JS)
	em := edgeMap(g.Edges)
	// |B0|=2 (xx,yy), |B2|=2, common=2 → JS = 2/(2+2-2) = 1.
	if math.Abs(em[[2]int{0, 2}]-1) > 1e-9 {
		t.Errorf("JS(0,2)=%v, want 1", em[[2]int{0, 2}])
	}
	// |B1|=2 (yy,zz), |B3|=1 (zz), common=1 → JS = 1/2.
	if math.Abs(em[[2]int{1, 3}]-0.5) > 1e-9 {
		t.Errorf("JS(1,3)=%v, want 0.5", em[[2]int{1, 3}])
	}

	g.Reweigh(ARCS)
	em = edgeMap(g.Edges)
	// xx has 1 comparison, yy has 2 cross-KB comparisons, zz has 1.
	// ARCS(0,2) = 1/1 + 1/2 = 1.5; ARCS(1,3) = 1/1 = 1.
	if math.Abs(em[[2]int{0, 2}]-1.5) > 1e-9 {
		t.Errorf("ARCS(0,2)=%v, want 1.5", em[[2]int{0, 2}])
	}
	if math.Abs(em[[2]int{1, 3}]-1.0) > 1e-9 {
		t.Errorf("ARCS(1,3)=%v, want 1", em[[2]int{1, 3}])
	}
}

func TestSchemeOrdering(t *testing.T) {
	// On every scheme, the "obviously right" pair (0,2) — two shared
	// rare tokens — must outweigh (1,2) — one shared frequent token.
	col := fixture(t)
	for _, s := range Schemes() {
		g := Build(col, s)
		em := edgeMap(g.Edges)
		if em[[2]int{0, 2}] < em[[2]int{1, 2}] {
			t.Errorf("%v: weight(0,2)=%v < weight(1,2)=%v", s, em[[2]int{0, 2}], em[[2]int{1, 2}])
		}
	}
}

func TestSchemeStrings(t *testing.T) {
	if CBS.String() != "CBS" || ECBS.String() != "ECBS" || JS.String() != "JS" ||
		EJS.String() != "EJS" || ARCS.String() != "ARCS" {
		t.Error("scheme names wrong")
	}
	if WEP.String() != "WEP" || CEP.String() != "CEP" || WNP.String() != "WNP" || CNP.String() != "CNP" {
		t.Error("pruning names wrong")
	}
	if Scheme(99).String() == "" || Pruning(99).String() == "" {
		t.Error("unknown enums should still render")
	}
}

func TestWEP(t *testing.T) {
	g := Build(fixture(t), CBS)
	kept := g.Prune(WEP, PruneOptions{})
	// Weights 2,1,1; mean = 4/3; only (0,2) survives.
	if len(kept) != 1 || kept[0].A != 0 || kept[0].B != 2 {
		t.Errorf("WEP kept %v", kept)
	}
}

func TestCEP(t *testing.T) {
	g := Build(fixture(t), CBS)
	kept := g.Prune(CEP, PruneOptions{K: 2})
	if len(kept) != 2 {
		t.Fatalf("CEP(K=2) kept %d edges", len(kept))
	}
	if kept[0].Weight < kept[1].Weight {
		t.Error("edges not sorted by descending weight")
	}
	if kept[0].A != 0 || kept[0].B != 2 {
		t.Errorf("heaviest edge wrong: %v", kept[0])
	}
	// Default budget from assignments.
	col := fixture(t)
	kept = g.Prune(CEP, PruneOptions{Assignments: col.Assignments()})
	if len(kept) == 0 || len(kept) > g.NumEdges() {
		t.Errorf("CEP default kept %d", len(kept))
	}
}

func TestWNPAndReciprocal(t *testing.T) {
	g := Build(fixture(t), CBS)
	either := g.Prune(WNP, PruneOptions{})
	both := g.Prune(WNP, PruneOptions{Reciprocal: true})
	if len(both) > len(either) {
		t.Errorf("reciprocal WNP kept more (%d) than redefined (%d)", len(both), len(either))
	}
	// Node 3's only edge is (1,3): locally retained. Node 1 has edges
	// (1,2) and (1,3) with equal weight 1 → both ≥ mean → retained.
	// So (1,3) survives reciprocal WNP.
	found := false
	for _, e := range both {
		if e.A == 1 && e.B == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("reciprocal WNP lost (1,3): %v", both)
	}
}

func TestCNP(t *testing.T) {
	g := Build(fixture(t), CBS)
	kept := g.Prune(CNP, PruneOptions{KPerNode: 1})
	// Every node keeps its single heaviest edge; union of those.
	if len(kept) == 0 {
		t.Fatal("CNP kept nothing")
	}
	top := kept[0]
	if top.A != 0 || top.B != 2 {
		t.Errorf("CNP top edge %v", top)
	}
	// KPerNode large → everything survives.
	all := g.Prune(CNP, PruneOptions{KPerNode: 100})
	if len(all) != g.NumEdges() {
		t.Errorf("CNP with huge k kept %d of %d", len(all), g.NumEdges())
	}
}

func TestPruneEmptyGraph(t *testing.T) {
	g := &Graph{}
	for _, alg := range Prunings() {
		if kept := g.Prune(alg, PruneOptions{}); len(kept) != 0 {
			t.Errorf("%v on empty graph kept %d", alg, len(kept))
		}
	}
}

// Properties over generated workloads: pruning output is a subset of
// the graph's edges, contains no duplicates, is sorted by weight, and
// WEP/WNP never drop the globally heaviest edge.
func TestPruningInvariants(t *testing.T) {
	f := func(seed int64) bool {
		w, err := datagen.Generate(datagen.TwoKBs(seed, 50, datagen.Center(), datagen.Periphery()))
		if err != nil {
			return false
		}
		col := blocking.TokenBlocking(w.Collection, tokenize.Default())
		assignments := col.Assignments()
		for _, s := range Schemes() {
			g := Build(col, s)
			if g.NumEdges() == 0 {
				continue
			}
			// Non-negative weights.
			maxW, maxIdx := -1.0, -1
			for i, e := range g.Edges {
				if e.Weight < 0 {
					return false
				}
				if e.Weight > maxW {
					maxW, maxIdx = e.Weight, i
				}
			}
			all := make(map[[2]int]bool, g.NumEdges())
			for _, e := range g.Edges {
				all[[2]int{e.A, e.B}] = true
			}
			for _, alg := range Prunings() {
				kept := g.Prune(alg, PruneOptions{Assignments: assignments})
				seen := map[[2]int]bool{}
				for i, e := range kept {
					k := [2]int{e.A, e.B}
					if !all[k] || seen[k] {
						return false
					}
					seen[k] = true
					if i > 0 && kept[i-1].Weight < e.Weight {
						return false
					}
				}
				if alg == WEP || alg == WNP {
					if !seen[[2]int{g.Edges[maxIdx].A, g.Edges[maxIdx].B}] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// Meta-blocking's purpose: retained comparisons shrink substantially
// while most ground-truth pairs that blocking found survive pruning.
func TestPruningKeepsMatches(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(77, 400, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	col := blocking.TokenBlocking(w.Collection, tokenize.Default()).Purge(0).Filter(0.8)
	g := Build(col, ECBS)
	kept := g.Prune(WNP, PruneOptions{})
	if len(kept) >= g.NumEdges() {
		t.Fatalf("WNP pruned nothing: %d of %d", len(kept), g.NumEdges())
	}
	matchesBefore, matchesAfter := 0, 0
	for _, e := range g.Edges {
		if w.Truth.Match(e.A, e.B) {
			matchesBefore++
		}
	}
	for _, e := range kept {
		if w.Truth.Match(e.A, e.B) {
			matchesAfter++
		}
	}
	if matchesBefore == 0 {
		t.Fatal("blocking found no matches — workload broken")
	}
	ratio := float64(matchesAfter) / float64(matchesBefore)
	if ratio < 0.9 {
		t.Errorf("WNP kept only %.2f of matches (%d/%d)", ratio, matchesAfter, matchesBefore)
	}
}

// TestBuildStreamMatchesBuild is the graph half of the iterator-
// composed stage differential: folding blocks from a stream must
// produce a graph bit-identical — edges, canonical order, float
// weights, per-node counters — to building from the materialized
// collection, for every weighting scheme, on both a hand fixture and a
// generated world flowing through the full purge/filter chain.
func TestBuildStreamMatchesBuild(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(21, 120, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	gen := blocking.TokenBlocking(w.Collection, tokenize.Default()).Purge(0).Filter(0.8)
	genStream := blocking.TokenBlockingStream(w.Collection, tokenize.Default()).Purge(0).Filter(0.8)
	for _, tc := range []struct {
		name   string
		col    *blocking.Collection
		stream blocking.Stream
	}{
		{"fixture", fixture(t), fixture(t).Stream()},
		{"generated", gen, genStream},
	} {
		for _, scheme := range []Scheme{CBS, ECBS, JS, EJS, ARCS} {
			want := Build(tc.col, scheme)
			got := BuildStream(tc.stream, scheme)
			if got.NumNodes != want.NumNodes || got.NumEdges() != want.NumEdges() {
				t.Fatalf("%s/%v: graph shape %d nodes %d edges, want %d/%d",
					tc.name, scheme, got.NumNodes, got.NumEdges(), want.NumNodes, want.NumEdges())
			}
			for i := range want.Edges {
				if got.Edges[i] != want.Edges[i] {
					t.Fatalf("%s/%v: edge %d = %+v, want %+v", tc.name, scheme, i, got.Edges[i], want.Edges[i])
				}
			}
			for id := 0; id < want.NumNodes; id++ {
				if got.blocks[id] != want.blocks[id] || got.degree[id] != want.degree[id] {
					t.Fatalf("%s/%v: node %d counters (%d,%d), want (%d,%d)", tc.name, scheme, id,
						got.blocks[id], got.degree[id], want.blocks[id], want.degree[id])
				}
			}
		}
	}
}
