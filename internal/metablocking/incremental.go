package metablocking

import (
	"sort"

	"repro/internal/blocking"
)

// Incremental graph maintenance for streaming ingestion.
//
// After new descriptions arrive, block cleaning is recomputed globally
// (it is linear and its decisions are global), but the blocking graph —
// whose construction enumerates every pair of every block and is the
// front-end's superlinear stage — is updated in place: only the edges
// incident to blocks whose membership changed are recomputed. The
// update is bit-identical to a from-scratch Build over the new block
// collection because every per-edge float accumulation is replayed in
// the same canonical order Build uses (ascending block index, one term
// per co-occurrence), and all other statistics are integers.

// UpdateStats reports how much work an incremental update did — the
// observable evidence that ingestion is proportional to the delta.
type UpdateStats struct {
	// BlocksAdded, BlocksRemoved, BlocksChanged count blocks whose
	// membership differs between the old and new collections.
	BlocksAdded, BlocksRemoved, BlocksChanged int
	// EdgesTouched is how many distinct edges were recomputed.
	EdgesTouched int
	// Rebuilt reports that the update fell back to a full Build —
	// taken only when the clean–clean setting itself flipped (a second
	// KB appeared, or eviction emptied all KBs but one), which changes
	// the pair semantics of every block.
	Rebuilt bool

	// DirtyNodes lists every node whose neighborhood changed —
	// endpoints of touched edges, plus (after FinishUpdate) endpoints
	// of edges whose weight moved bitwise. A node absent from this list
	// has the same incident edges with the same weights as before the
	// update, so its node-centric pruning verdicts are unchanged — the
	// input locality-aware re-pruning runs on. Sorted and
	// duplicate-free after FinishUpdate; meaningless when Rebuilt.
	DirtyNodes []int32
	// OldToNew maps each pre-update edge index to its post-update index
	// (-1 when the edge was dropped). Nil means the edge list is
	// positionally unchanged — and always nil when Rebuilt.
	OldToNew []int32
}

// Update transforms g — which must equal Build(oldCol, anyScheme) up to
// weights — into Build(newCol, scheme), bit-identically: the same edges
// in the same order with the same float statistics and weights. Only
// edges incident to changed blocks are recomputed; per-node aggregates
// and weights are refreshed globally (linear work).
func (g *Graph) Update(oldCol, newCol *blocking.Collection, scheme Scheme) UpdateStats {
	st := g.UpdateStructure(oldCol, newCol, scheme)
	g.FinishUpdate(&st, func() { g.reweigh(scheme) })
	return st
}

// FinishUpdate completes an incremental update after UpdateStructure:
// it snapshots the carried-through weights, runs the caller's reweigh
// (sequential, or sharded — the shared-memory engine's path), then
// bitwise-compares old and new weights and extends st.DirtyNodes with
// the endpoints of every edge whose weight moved. Global-normalizer
// schemes (ECBS's block total, EJS's edge total) shift every weight
// when the totals change, so the dirty set saturates and locality-aware
// re-pruning falls back to a full pass automatically — the fallback is
// a property of the weights, not a special case. No-op when the update
// fell back to a rebuild.
func (g *Graph) FinishUpdate(st *UpdateStats, reweigh func()) {
	if st.Rebuilt {
		return
	}
	old := make([]float64, len(g.Edges))
	for i := range g.Edges {
		old[i] = g.Edges[i].Weight
	}
	reweigh()
	for i := range g.Edges {
		if g.Edges[i].Weight != old[i] {
			e := &g.Edges[i]
			st.DirtyNodes = append(st.DirtyNodes, int32(e.A), int32(e.B))
		}
	}
	st.DirtyNodes = dedupInt32(st.DirtyNodes)
}

// dedupInt32 sorts xs and drops duplicates in place.
func dedupInt32(xs []int32) []int32 {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	out := xs[:0]
	for i, v := range xs {
		if i == 0 || v != xs[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// UpdateStructure is Update without the final reweigh pass: it brings
// the edge list, per-edge statistics, and per-node aggregates to the
// Build(newCol) state but leaves the weights stale. Callers must
// reweigh afterwards (sequentially via Reweigh, or sharded via
// ReweighRange — the shared-memory engine's path). When the update
// falls back to a full rebuild (Rebuilt in the stats), the weights are
// already current under scheme.
func (g *Graph) UpdateStructure(oldCol, newCol *blocking.Collection, scheme Scheme) UpdateStats {
	if oldCol.CleanClean != newCol.CleanClean {
		// The comparable-pair semantics of every block changed (the
		// collection crossed the one-KB ↔ many-KB boundary — a second
		// KB appearing on ingest, or eviction emptying all KBs but
		// one): every block's comparison count and pair set is
		// different, so there is no delta to exploit.
		*g = *Build(newCol, scheme)
		return UpdateStats{Rebuilt: true}
	}

	stats := UpdateStats{}
	touched := make(map[uint64]struct{})
	note := func(b *blocking.Block, col *blocking.Collection) {
		for x := 0; x < len(b.Entities); x++ {
			for y := x + 1; y < len(b.Entities); y++ {
				a, bb := b.Entities[x], b.Entities[y]
				if col.CleanClean && !col.Source.CrossKB(a, bb) {
					continue
				}
				if a > bb {
					a, bb = bb, a
				}
				touched[edgeKey(int32(a), int32(bb))] = struct{}{}
			}
		}
	}

	// Merge-walk the two collections by block key (each is sorted with
	// distinct keys). A block counts as changed when its membership
	// differs; its pairs — old and new — are the touched neighborhood.
	oi, ni := 0, 0
	for oi < len(oldCol.Blocks) || ni < len(newCol.Blocks) {
		switch {
		case ni == len(newCol.Blocks) || (oi < len(oldCol.Blocks) && oldCol.Blocks[oi].Key < newCol.Blocks[ni].Key):
			stats.BlocksRemoved++
			note(&oldCol.Blocks[oi], oldCol)
			oi++
		case oi == len(oldCol.Blocks) || newCol.Blocks[ni].Key < oldCol.Blocks[oi].Key:
			stats.BlocksAdded++
			note(&newCol.Blocks[ni], newCol)
			ni++
		default: // same key
			if !sameInts(oldCol.Blocks[oi].Entities, newCol.Blocks[ni].Entities) {
				stats.BlocksChanged++
				note(&oldCol.Blocks[oi], oldCol)
				note(&newCol.Blocks[ni], newCol)
			}
			oi++
			ni++
		}
	}
	stats.EdgesTouched = len(touched)
	// Both endpoints of every touched edge — present, added, or removed
	// — have a changed neighborhood. (The key IS the endpoint pair, so
	// removed edges contribute theirs too.) FinishUpdate dedups after
	// appending the weight-dirty endpoints.
	stats.DirtyNodes = make([]int32, 0, 2*len(touched))
	for k := range touched {
		stats.DirtyNodes = append(stats.DirtyNodes, int32(k>>32), int32(uint32(k)))
	}

	numNodes := newCol.Source.Len()
	// Per-node block counts and the block total are integer recounts
	// over the new collection — exact in any order, linear work.
	g.NumNodes = numNodes
	g.nLive = newCol.Source.NumAlive()
	g.nBlock = newCol.NumBlocks()
	g.blocks = make([]int32, numNodes)
	for i := range newCol.Blocks {
		for _, id := range newCol.Blocks[i].Entities {
			g.blocks[id]++
		}
	}

	if len(touched) > 0 {
		stats.OldToNew = g.applyTouched(newCol, touched)
	}

	// Degrees are integer recounts over the merged edge list.
	g.degree = make([]int32, numNodes)
	for i := range g.Edges {
		g.degree[g.Edges[i].A]++
		g.degree[g.Edges[i].B]++
	}
	return stats
}

// applyTouched recomputes every touched edge's statistics from the new
// collection and merges the results into the sorted edge arrays. It
// returns the old-index → new-index mapping (-1 for dropped edges).
// Pass-through edges keep their old weight so that FinishUpdate's
// bitwise weight comparison sees exactly which weights the reweigh
// moved; touched edges get weight 0 (stale either way until reweigh).
func (g *Graph) applyTouched(newCol *blocking.Collection, touched map[uint64]struct{}) []int32 {
	// Canonical recomputation needs, per touched edge, the blocks
	// containing both endpoints in ascending block order — the order
	// Build folds evidence in. The entity→blocks index and per-block
	// comparison counts are linear to build.
	idx := newCol.EntityIndex()
	inv := make([]float64, len(newCol.Blocks))
	for bi := range newCol.Blocks {
		if cmp := newCol.Blocks[bi].Comparisons(newCol.Source, newCol.CleanClean); cmp > 0 {
			inv[bi] = 1 / float64(cmp)
		}
	}

	keys := make([]uint64, 0, len(touched))
	for k := range touched {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	// Recompute each touched edge: intersect the endpoints' block lists
	// (both ascending) and fold 1/||b|| per common block in block order
	// — the exact float accumulation sequence a from-scratch Build
	// performs for that edge, since each edge's accumulator only ever
	// receives its own terms.
	newRecs := make([]edgeStat, 0, len(keys))
	for _, k := range keys {
		a, b := int32(k>>32), int32(uint32(k))
		rec := edgeStat{a: a, b: b}
		ba, bb := idx[a], idx[b]
		x, y := 0, 0
		for x < len(ba) && y < len(bb) {
			switch {
			case ba[x] < bb[y]:
				x++
			case ba[x] > bb[y]:
				y++
			default:
				rec.common++
				rec.arcs += inv[ba[x]]
				x++
				y++
			}
		}
		newRecs = append(newRecs, rec)
	}

	// Merge into the sorted arrays: untouched edges are copied through,
	// touched edges are replaced (or dropped when their evidence
	// vanished), new edges are inserted at their sorted position.
	edges := make([]Edge, 0, len(g.Edges)+len(newRecs))
	common := make([]int, 0, cap(edges))
	arcs := make([]float64, 0, cap(edges))
	oldToNew := make([]int32, len(g.Edges))
	ei, ri := 0, 0
	emit := func(a, b int32, c int32, s float64, w float64) {
		edges = append(edges, Edge{A: int(a), B: int(b), Weight: w})
		common = append(common, int(c))
		arcs = append(arcs, s)
	}
	for ei < len(g.Edges) || ri < len(newRecs) {
		var ek uint64
		if ei < len(g.Edges) {
			ek = edgeKey(int32(g.Edges[ei].A), int32(g.Edges[ei].B))
		}
		switch {
		case ri == len(newRecs) || (ei < len(g.Edges) && ek < keys[ri]):
			if _, isTouched := touched[ek]; isTouched {
				// Replaced or dropped below — cannot happen: touched
				// existing edges always compare equal to their key.
				panic("metablocking: touched edge out of merge order")
			}
			emit(int32(g.Edges[ei].A), int32(g.Edges[ei].B),
				int32(g.common[ei]), g.arcs[ei], g.Edges[ei].Weight)
			oldToNew[ei] = int32(len(edges) - 1)
			ei++
		case ei == len(g.Edges) || keys[ri] < ek:
			r := &newRecs[ri]
			if r.common > 0 {
				emit(r.a, r.b, r.common, r.arcs, 0)
			}
			ri++
		default: // same edge: recomputed stats win
			r := &newRecs[ri]
			if r.common > 0 {
				emit(r.a, r.b, r.common, r.arcs, 0)
				oldToNew[ei] = int32(len(edges) - 1)
			} else {
				oldToNew[ei] = -1
			}
			ei++
			ri++
		}
	}
	g.Edges, g.common, g.arcs = edges, common, arcs
	return oldToNew
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
