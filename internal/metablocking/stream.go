package metablocking

import (
	"sort"

	"repro/internal/blocking"
	"repro/internal/container"
)

// statSegBits sizes the segments of the edge-stat pool: segments are
// fixed arrays, so the accumulator grows without ever copying — the
// append-doubling churn of a flat record slice used to be the single
// largest allocation term of graph construction.
const statSegBits = 14

// statPool is a segmented arena of edgeStat records addressed by dense
// int32 handles. Records never move, so handles stored in the dedup
// map stay valid as the pool grows.
type statPool struct {
	segs [][]edgeStat
	n    int32
}

func (p *statPool) alloc(a, b int32) int32 {
	i := p.n
	s := int(i) >> statSegBits
	if s == len(p.segs) {
		p.segs = append(p.segs, make([]edgeStat, 1<<statSegBits))
	}
	p.segs[s][i&(1<<statSegBits-1)] = edgeStat{a: a, b: b}
	p.n++
	return i
}

func (p *statPool) at(i int32) *edgeStat {
	return &p.segs[i>>statSegBits][i&(1<<statSegBits-1)]
}

// BuildStream constructs the blocking graph from a block stream — the
// iterator-composed stage boundary — folding each block's evidence as
// it is yielded, in stream order (the canonical block order every
// parallel builder replays). Nothing upstream needs to be
// materialized; the graph's own output arrays are allocated at their
// exact final size. Build(col, scheme) ≡ BuildStream(col.Stream(),
// scheme).
func BuildStream(s blocking.Stream, scheme Scheme) *Graph {
	g := &Graph{NumNodes: s.Source.Len(), nLive: s.Source.NumAlive()}
	g.blocks = make([]int32, g.NumNodes)
	var idx container.PairTable
	var pool statPool
	nBlock := 0
	s.Blocks(func(b *blocking.Block) bool {
		nBlock++
		cmp := b.Comparisons(s.Source, s.CleanClean)
		for _, id := range b.Entities {
			g.blocks[id]++
		}
		if cmp == 0 {
			return true
		}
		inv := 1 / float64(cmp)
		ents := b.Entities
		for x := 0; x < len(ents); x++ {
			for y := x + 1; y < len(ents); y++ {
				a, bb := ents[x], ents[y]
				if s.CleanClean && !s.Source.CrossKB(a, bb) {
					continue
				}
				if a > bb {
					a, bb = bb, a
				}
				key := edgeKey(int32(a), int32(bb))
				j, ok := idx.Get(key)
				if !ok {
					j = pool.alloc(int32(a), int32(bb))
					idx.Put(key, j)
				}
				r := pool.at(j)
				r.common++
				r.arcs += inv
			}
		}
		return true
	})
	g.nBlock = nBlock

	// Canonical (A, B) order via an index permutation — the records
	// themselves never move or copy.
	order := make([]int32, pool.n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(x, y int) bool {
		rx, ry := pool.at(order[x]), pool.at(order[y])
		if rx.a != ry.a {
			return rx.a < ry.a
		}
		return rx.b < ry.b
	})
	g.Edges = make([]Edge, len(order))
	g.common = make([]int, len(order))
	g.arcs = make([]float64, len(order))
	g.degree = make([]int32, g.NumNodes)
	for i, o := range order {
		r := pool.at(o)
		g.Edges[i] = Edge{A: int(r.a), B: int(r.b)}
		g.common[i] = int(r.common)
		g.arcs[i] = r.arcs
		g.degree[r.a]++
		g.degree[r.b]++
	}
	g.reweigh(scheme)
	return g
}
