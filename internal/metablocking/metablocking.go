// Package metablocking restructures a block collection into its
// blocking graph and prunes it, eliminating the repeated and
// low-evidence comparisons that token blocking inevitably produces.
//
// Nodes are description ids; an edge connects every distinct candidate
// pair (each pair once, however many blocks it co-occurs in). Edges are
// weighted by co-occurrence evidence under one of five schemes (CBS,
// ECBS, JS, EJS, ARCS) and pruned by one of four algorithms:
//
//	WEP — weight edge pruning: keep edges above the global mean weight.
//	CEP — cardinality edge pruning: keep the globally top-K edges.
//	WNP — weight node pruning: keep edges above a node-local threshold.
//	CNP — cardinality node pruning: keep each node's top-k edges.
//
// The node-centric schemes retain an edge if either endpoint retains
// it (the "redefined" variants of Papadakis et al.); Reciprocal
// switches them to requiring both endpoints.
package metablocking

import (
	"fmt"
	"math"
	"sort"
	"unsafe"

	"repro/internal/blocking"
	"repro/internal/container"
	"repro/internal/store"
)

// Scheme selects the edge-weighting function.
type Scheme int

const (
	// CBS weighs an edge by its number of common blocks.
	CBS Scheme = iota
	// ECBS is CBS discounted by how many blocks each endpoint occupies:
	// CBS·log(|B|/|Ba|)·log(|B|/|Bb|).
	ECBS
	// JS is the Jaccard coefficient of the endpoints' block sets.
	JS
	// EJS is JS boosted by endpoint degrees:
	// JS·log(|E|/deg(a))·log(|E|/deg(b)).
	EJS
	// ARCS sums the reciprocal comparison cardinality of common blocks:
	// Σ 1/||b||; co-occurrence in small blocks is strong evidence.
	ARCS
)

// String returns the scheme's conventional acronym.
func (s Scheme) String() string {
	switch s {
	case CBS:
		return "CBS"
	case ECBS:
		return "ECBS"
	case JS:
		return "JS"
	case EJS:
		return "EJS"
	case ARCS:
		return "ARCS"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Schemes lists all weighting schemes, for sweeps.
func Schemes() []Scheme { return []Scheme{CBS, ECBS, JS, EJS, ARCS} }

// Edge is one weighted candidate comparison (A < B).
type Edge struct {
	A, B   int
	Weight float64
}

// Graph is the blocking graph of a block collection.
type Graph struct {
	// Edges holds every distinct candidate pair, sorted by (A, B).
	Edges []Edge
	// NumNodes is the size of the underlying description collection.
	NumNodes int

	common []int     // common-block count per edge
	arcs   []float64 // Σ 1/||b|| per edge
	blocks []int32   // blocks-per-node |Bv|
	degree []int32   // distinct neighbors per node
	nBlock int       // total number of blocks
	nLive  int       // live (non-tombstoned) source descriptions

	// Spill state (see spill.go); zero while the arrays are resident.
	spill    store.Store
	spilled  bool
	spEdges  int    // len(Edges) at spill time
	spFoot   int    // Footprint at spill time
	spillBuf []byte // reused encode buffer; Put consumes it before return
}

// LiveNodes returns how many of the graph's nodes are live source
// descriptions. NumNodes keeps counting every allocated id — tombstoned
// ids stay valid array indexes — but averages that mean "per
// description" (CNP's default per-node budget) must divide by the live
// count, or departed descriptions would dilute them. Equal to NumNodes
// until something is evicted.
func (g *Graph) LiveNodes() int {
	if g.nLive > 0 || g.NumNodes == 0 {
		return g.nLive
	}
	return g.NumNodes
}

// edgeStat is one distinct pair's aggregated evidence during graph
// construction: endpoints (a < b), common-block count, and the ARCS
// numerator. Flat records indexed through a compact key map keep the
// accumulation allocation-free per occurrence — the pointer-heavy
// map[Pair]*stat variant cost ~2× in both time and bytes.
type edgeStat struct {
	a, b   int32
	common int32
	arcs   float64
}

// edgeKey packs a canonical pair (a < b) into one map key.
func edgeKey(a, b int32) uint64 {
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// Build constructs the blocking graph and computes edge weights under
// the given scheme. Evidence is folded in block order, one occurrence
// at a time — the float accumulation order every parallel builder must
// replay to stay bit-identical. It is BuildStream over the collection's
// stream adapter; a collection is just one source of blocks.
func Build(col *blocking.Collection, scheme Scheme) *Graph {
	return BuildStream(col.Stream(), scheme)
}

// Reweigh recomputes edge weights under a different scheme without
// rebuilding the graph.
func (g *Graph) Reweigh(scheme Scheme) { g.reweigh(scheme) }

// ReweighRange recomputes the weights of edges [lo, hi) under scheme.
// Each edge's weight reads only that edge's statistics and immutable
// per-node aggregates, so disjoint ranges may be reweighed
// concurrently — the shared-memory parallel engine (internal/parmeta)
// shards Reweigh with it, producing weights bit-identical to the
// sequential pass.
func (g *Graph) ReweighRange(scheme Scheme, lo, hi int) { g.reweighRange(scheme, lo, hi) }

func (g *Graph) reweigh(scheme Scheme) { g.reweighRange(scheme, 0, len(g.Edges)) }

func (g *Graph) reweighRange(scheme Scheme, lo, hi int) {
	nEdges := float64(len(g.Edges))
	for i := lo; i < hi; i++ {
		e := &g.Edges[i]
		cbs := float64(g.common[i])
		ba, bb := float64(g.blocks[e.A]), float64(g.blocks[e.B])
		switch scheme {
		case CBS:
			e.Weight = cbs
		case ECBS:
			e.Weight = cbs * safeLog(float64(g.nBlock)/ba) * safeLog(float64(g.nBlock)/bb)
		case JS:
			e.Weight = cbs / (ba + bb - cbs)
		case EJS:
			js := cbs / (ba + bb - cbs)
			e.Weight = js * safeLog(nEdges/float64(g.degree[e.A])) * safeLog(nEdges/float64(g.degree[e.B]))
		case ARCS:
			e.Weight = g.arcs[i]
		}
	}
}

// safeLog guards against log of ratios ≤ 1 collapsing evidence to
// zero or negative: weights must stay non-negative.
func safeLog(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log(x)
}

// NumEdges returns the number of distinct candidate comparisons,
// served from the cached count while the arrays are spilled.
func (g *Graph) NumEdges() int {
	if g.spilled {
		return g.spEdges
	}
	return len(g.Edges)
}

// Footprint returns the graph's approximate heap footprint in bytes:
// the edge records plus the per-edge and per-node weighting evidence
// it retains for incremental reweighing. An observability gauge (the
// server's /status memory panel), not an accounting truth — it counts
// the backing arrays the graph owns, not allocator overhead.
func (g *Graph) Footprint() int {
	if g.spilled {
		return g.spFoot
	}
	const edgeSize = int(unsafe.Sizeof(Edge{}))
	return len(g.Edges)*edgeSize + len(g.common)*8 + len(g.arcs)*8 +
		len(g.blocks)*4 + len(g.degree)*4
}

// Pruning selects the pruning algorithm.
type Pruning int

const (
	// WEP keeps edges whose weight is at least the global mean.
	WEP Pruning = iota
	// CEP keeps the K globally heaviest edges, K = Σ|b|/2 by default.
	CEP
	// WNP keeps edges at or above the mean weight of either endpoint's
	// neighborhood.
	WNP
	// CNP keeps edges in the top-k of either endpoint, k = avg blocks
	// per entity.
	CNP
)

// String returns the pruning algorithm's acronym.
func (p Pruning) String() string {
	switch p {
	case WEP:
		return "WEP"
	case CEP:
		return "CEP"
	case WNP:
		return "WNP"
	case CNP:
		return "CNP"
	default:
		return fmt.Sprintf("Pruning(%d)", int(p))
	}
}

// Prunings lists all pruning algorithms, for sweeps.
func Prunings() []Pruning { return []Pruning{WEP, CEP, WNP, CNP} }

// PruneOptions tunes pruning.
type PruneOptions struct {
	// K overrides CEP's edge budget (0 = Σ block assignments / 2).
	K int
	// KPerNode overrides CNP's per-node budget (0 = ⌈assignments/|V|⌉).
	KPerNode int
	// Reciprocal requires both endpoints to retain an edge in WNP/CNP
	// instead of either.
	Reciprocal bool
	// Assignments is Σ|b| of the source blocks, used for default
	// budgets. Required when K or KPerNode are 0 and pruning is
	// cardinality-based.
	Assignments int
}

// Prune returns the retained edges under the chosen algorithm, sorted
// by descending weight (ties by (A,B) ascending) — the order a
// budget-driven matcher would consume them in.
func (g *Graph) Prune(alg Pruning, opts PruneOptions) []Edge {
	var kept []Edge
	switch alg {
	case WEP:
		kept = g.pruneWEP()
	case CEP:
		kept = g.pruneCEP(opts)
	case WNP:
		kept = g.pruneWNP(opts.Reciprocal)
	case CNP:
		kept = g.pruneCNP(opts)
	}
	sortEdges(kept)
	return kept
}

func sortEdges(es []Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Weight != es[j].Weight {
			return es[i].Weight > es[j].Weight
		}
		if es[i].A != es[j].A {
			return es[i].A < es[j].A
		}
		return es[i].B < es[j].B
	})
}

func (g *Graph) pruneWEP() []Edge {
	if len(g.Edges) == 0 {
		return nil
	}
	sum := 0.0
	for _, e := range g.Edges {
		sum += e.Weight
	}
	mean := sum / float64(len(g.Edges))
	var kept []Edge
	for _, e := range g.Edges {
		if e.Weight >= mean {
			kept = append(kept, e)
		}
	}
	return kept
}

func (g *Graph) pruneCEP(opts PruneOptions) []Edge {
	k := opts.K
	if k <= 0 {
		k = opts.Assignments / 2
	}
	if k <= 0 {
		k = len(g.Edges)
	}
	top := container.NewBoundedTopK(k, func(a, b Edge) bool {
		if a.Weight != b.Weight {
			return a.Weight < b.Weight
		}
		// Deterministic tie-break: later (A,B) ranks lower.
		if a.A != b.A {
			return a.A > b.A
		}
		return a.B > b.B
	})
	for _, e := range g.Edges {
		top.Offer(e)
	}
	return top.Drain()
}

// Per-endpoint retention verdicts of the node-centric algorithms. Two
// bits per edge instead of a count: locality-aware re-pruning needs to
// know *which* endpoint retained an edge, so a dirty node can flip its
// own bit without recomputing the other side. Shared with the parallel
// engine (internal/parmeta), whose verdicts must be memo-compatible.
const (
	KeptByA uint8 = 1 << iota
	KeptByB
)

func (g *Graph) pruneWNP(reciprocal bool) []Edge {
	flags := make([]uint8, len(g.Edges))
	g.wnpFlags(flags)
	return g.collect(flags, reciprocal)
}

// wnpFlags fills per-endpoint retention bits for weight node pruning
// without materializing any adjacency. Each node's incident weights are
// accumulated in ascending edge-index order — exactly the order the
// materialized neighborhood walk summed them in — so the means, and
// therefore every verdict, are bit-identical to the reference.
func (g *Graph) wnpFlags(flags []uint8) {
	sum := make([]float64, g.NumNodes)
	cnt := make([]int32, g.NumNodes)
	for _, e := range g.Edges {
		sum[e.A] += e.Weight
		cnt[e.A]++
		sum[e.B] += e.Weight
		cnt[e.B]++
	}
	for v := range sum {
		if cnt[v] > 0 {
			sum[v] /= float64(cnt[v]) // now the neighborhood mean
		}
	}
	for i := range g.Edges {
		e := &g.Edges[i]
		if e.Weight >= sum[e.A] {
			flags[i] |= KeptByA
		}
		if e.Weight >= sum[e.B] {
			flags[i] |= KeptByB
		}
	}
}

// ResolveK returns CNP's effective per-node budget under opts —
// opts.KPerNode when pinned, else the paper's BC-derived default
// ceil(assignments / live nodes). Exported so locality-aware
// re-pruning can detect that an update shifted the default k (the
// memoized verdicts are then invalid for CNP and a full pass runs).
func (g *Graph) ResolveK(opts PruneOptions) int {
	k := opts.KPerNode
	if live := g.LiveNodes(); k <= 0 && live > 0 {
		k = (opts.Assignments + live - 1) / live
	}
	if k <= 0 {
		k = 1
	}
	return k
}

func (g *Graph) pruneCNP(opts PruneOptions) []Edge {
	flags := make([]uint8, len(g.Edges))
	g.cnpFlags(g.ResolveK(opts), flags)
	return g.collect(flags, opts.Reciprocal)
}

// cnpFlags fills per-endpoint retention bits for cardinality node
// pruning using a slab of bounded min-heaps — one row per node, sized
// min(k, deg(v)) — instead of materialized neighborhoods plus a heap
// allocation per node. The comparator (weight, then higher edge index
// loses ties) is a strict total order, so the per-node top-k *set* is
// unique and the verdicts match the reference bit for bit.
func (g *Graph) cnpFlags(k int, flags []uint8) {
	start := make([]int32, g.NumNodes+1)
	pos := int32(0)
	for v := 0; v < g.NumNodes; v++ {
		start[v] = pos
		c := int32(g.degree[v])
		if c > int32(k) {
			c = int32(k)
		}
		pos += c
	}
	start[g.NumNodes] = pos
	heap := make([]int32, pos)
	hlen := make([]int32, g.NumNodes)

	// less reports a's edge ranking strictly below b's.
	less := func(a, b int32) bool {
		ea, eb := &g.Edges[a], &g.Edges[b]
		if ea.Weight != eb.Weight {
			return ea.Weight < eb.Weight
		}
		return a > b
	}
	offer := func(v int, ei int32) {
		h := heap[start[v]:start[v+1]]
		n := hlen[v]
		if int(n) < len(h) {
			// Push and sift up.
			h[n] = ei
			i := n
			for i > 0 {
				p := (i - 1) / 2
				if !less(h[i], h[p]) {
					break
				}
				h[i], h[p] = h[p], h[i]
				i = p
			}
			hlen[v] = n + 1
			return
		}
		if n == 0 || !less(h[0], ei) {
			return // not better than the current minimum
		}
		// Replace the root and sift down.
		h[0] = ei
		i := int32(0)
		for {
			l := 2*i + 1
			if l >= n {
				break
			}
			m := l
			if r := l + 1; r < n && less(h[r], h[l]) {
				m = r
			}
			if !less(h[m], h[i]) {
				break
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	for i := range g.Edges {
		e := &g.Edges[i]
		offer(e.A, int32(i))
		offer(e.B, int32(i))
	}
	for v := 0; v < g.NumNodes; v++ {
		h := heap[start[v] : start[v]+hlen[v]]
		for _, ei := range h {
			if g.Edges[ei].A == v {
				flags[ei] |= KeptByA
			} else {
				flags[ei] |= KeptByB
			}
		}
	}
}

func (g *Graph) collect(flags []uint8, reciprocal bool) []Edge {
	both := KeptByA | KeptByB
	keep := func(f uint8) bool {
		if reciprocal {
			return f == both
		}
		return f != 0
	}
	n := 0
	for _, f := range flags {
		if keep(f) {
			n++
		}
	}
	kept := make([]Edge, 0, n)
	for i, f := range flags {
		if keep(f) {
			kept = append(kept, g.Edges[i])
		}
	}
	return kept
}
