package metablocking

import (
	"fmt"
	"testing"

	"repro/internal/blocking"
	"repro/internal/datagen"
	"repro/internal/kb"
	"repro/internal/tokenize"
)

// graphsIdentical asserts got equals want bit for bit: the same edges
// in the same order with identical float statistics and weights, and
// identical node aggregates — the contract that makes an incremental
// update indistinguishable from a from-scratch Build.
func graphsIdentical(t *testing.T, label string, want, got *Graph) {
	t.Helper()
	if got.NumNodes != want.NumNodes || got.nBlock != want.nBlock {
		t.Fatalf("%s: nodes/blocks = (%d,%d), want (%d,%d)", label, got.NumNodes, got.nBlock, want.NumNodes, want.nBlock)
	}
	if len(got.Edges) != len(want.Edges) {
		t.Fatalf("%s: %d edges, want %d", label, len(got.Edges), len(want.Edges))
	}
	for i := range want.Edges {
		if got.Edges[i] != want.Edges[i] {
			t.Fatalf("%s: edge %d = %+v, want %+v", label, i, got.Edges[i], want.Edges[i])
		}
		if got.common[i] != want.common[i] {
			t.Fatalf("%s: edge %d common = %d, want %d", label, i, got.common[i], want.common[i])
		}
		if got.arcs[i] != want.arcs[i] {
			t.Fatalf("%s: edge %d arcs = %v, want %v (not bit-identical)", label, i, got.arcs[i], want.arcs[i])
		}
	}
	for id := 0; id < want.NumNodes; id++ {
		if got.blocks[id] != want.blocks[id] {
			t.Fatalf("%s: node %d blocks = %d, want %d", label, id, got.blocks[id], want.blocks[id])
		}
		if got.degree[id] != want.degree[id] {
			t.Fatalf("%s: node %d degree = %d, want %d", label, id, got.degree[id], want.degree[id])
		}
	}
}

// interleaved returns src's description ids reordered round-robin
// across KBs, so every growth prefix spans all KBs — the steady-state
// streaming shape (the single-KB → clean–clean flip has its own test).
func interleaved(src *kb.Collection) []int {
	perKB := make([][]int, src.NumKBs())
	for id := 0; id < src.Len(); id++ {
		k := src.KBOf(id)
		perKB[k] = append(perKB[k], id)
	}
	var out []int
	for i := 0; len(out) < src.Len(); i++ {
		for _, ids := range perKB {
			if i < len(ids) {
				out = append(out, ids[i])
			}
		}
	}
	return out
}

// prefixCollection copies the first n descriptions of order into a
// fresh collection — the corpus as it looked before the last ingest
// batch.
func prefixCollection(t *testing.T, src *kb.Collection, order []int, n int) *kb.Collection {
	t.Helper()
	out := kb.NewCollection()
	for _, id := range order[:n] {
		d := src.Desc(id)
		out.Add(&kb.Description{URI: d.URI, KB: d.KB, Types: d.Types, Attrs: d.Attrs, Links: d.Links})
	}
	if out.Len() != n {
		t.Fatalf("prefix collapsed: %d descriptions, want %d", out.Len(), n)
	}
	return out
}

// cleanedBlocks runs the front-end cleaning chain the pipeline applies
// before graph construction.
func cleanedBlocks(src *kb.Collection) *blocking.Collection {
	col := blocking.TokenBlocking(src, tokenize.Default())
	return col.Purge(0).Filter(0.8)
}

// TestUpdateMatchesRebuild grows a corpus in cuts and checks that
// updating the graph incrementally at each cut is bit-identical to
// rebuilding it from scratch, for every weighting scheme, with and
// without block cleaning.
func TestUpdateMatchesRebuild(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(77, 160, datagen.Center(), datagen.Periphery()))
	if err != nil {
		t.Fatal(err)
	}
	full := w.Collection
	order := interleaved(full)
	cuts := []int{full.Len() / 3, full.Len() * 2 / 3, full.Len() - 1, full.Len()}
	for _, clean := range []bool{false, true} {
		blocksOf := func(src *kb.Collection) *blocking.Collection {
			if clean {
				return cleanedBlocks(src)
			}
			return blocking.TokenBlocking(src, tokenize.Default())
		}
		for _, scheme := range Schemes() {
			t.Run(fmt.Sprintf("clean=%v/%v", clean, scheme), func(t *testing.T) {
				prev := prefixCollection(t, full, order, cuts[0])
				prevBlocks := blocksOf(prev)
				g := Build(prevBlocks, scheme)
				for _, cut := range cuts[1:] {
					cur := prefixCollection(t, full, order, cut)
					curBlocks := blocksOf(cur)
					stats := g.Update(prevBlocks, curBlocks, scheme)
					if stats.Rebuilt {
						t.Fatalf("cut %d: unexpected full rebuild", cut)
					}
					graphsIdentical(t, fmt.Sprintf("cut %d", cut), Build(curBlocks, scheme), g)
					prevBlocks = curBlocks
				}
			})
		}
	}
}

// TestUpdateTouchesOnlyDelta pins the efficiency contract: a small
// ingest batch touches a small neighborhood of the graph, not the
// whole edge set.
func TestUpdateTouchesOnlyDelta(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(78, 300, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	full := w.Collection
	order := interleaved(full)
	n := full.Len()
	prev := prefixCollection(t, full, order, n-4)
	prevBlocks := cleanedBlocks(prev)
	g := Build(prevBlocks, ECBS)
	curBlocks := cleanedBlocks(prefixCollection(t, full, order, n))
	stats := g.Update(prevBlocks, curBlocks, ECBS)
	if stats.Rebuilt {
		t.Fatal("unexpected full rebuild")
	}
	if stats.EdgesTouched == 0 {
		t.Fatal("ingest touched no edges — workload too easy to mean anything")
	}
	if total := g.NumEdges(); stats.EdgesTouched >= total/2 {
		t.Fatalf("ingesting 4 of %d descriptions touched %d of %d edges — not delta-proportional",
			n, stats.EdgesTouched, total)
	}
	graphsIdentical(t, "delta", Build(curBlocks, ECBS), g)
}

// TestUpdateCleanCleanFlip covers the documented fallback: when the
// second KB arrives, the pair semantics of every block change and the
// update degrades to one full rebuild — still bit-identical.
func TestUpdateCleanCleanFlip(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(79, 80, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	full := w.Collection
	// In natural insertion order the first KB's descriptions precede
	// the second's; find the single-KB prefix.
	identity := make([]int, full.Len())
	for i := range identity {
		identity[i] = i
	}
	oneKB := 1
	for oneKB < full.Len() && full.KBOf(oneKB) == full.KBOf(0) {
		oneKB++
	}
	if oneKB < 2 || oneKB == full.Len() {
		t.Skip("generator produced no usable single-KB prefix")
	}
	prev := prefixCollection(t, full, identity, oneKB)
	prevBlocks := blocking.TokenBlocking(prev, tokenize.Default())
	if prevBlocks.CleanClean {
		t.Fatal("prefix unexpectedly clean–clean")
	}
	g := Build(prevBlocks, ECBS)
	curBlocks := blocking.TokenBlocking(full, tokenize.Default())
	if !curBlocks.CleanClean {
		t.Fatal("full collection unexpectedly dirty")
	}
	stats := g.Update(prevBlocks, curBlocks, ECBS)
	if !stats.Rebuilt {
		t.Fatal("clean–clean flip must trigger a full rebuild")
	}
	graphsIdentical(t, "flip", Build(curBlocks, ECBS), g)
}
