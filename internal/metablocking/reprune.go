package metablocking

import "repro/internal/container"

// Locality-aware re-pruning for the node-centric algorithms.
//
// WNP and CNP verdicts are per-endpoint facts: an edge survives because
// a specific endpoint retained it, and that endpoint's verdicts depend
// only on its own incident edges and their weights. After an
// incremental update, a node whose neighborhood did not change — no
// incident edge added, dropped, or reweighed bitwise (UpdateStats.
// DirtyNodes lists exactly the others) — would re-derive the exact
// same verdicts, so its memoized retention bits can be reused and only
// the dirty neighborhoods are recomputed. Global-normalizer schemes
// (ECBS, EJS) shift every weight when their totals move, saturating the
// dirty set; the fallback to a full pass is then automatic, a property
// of the weights rather than a special case.

// PruneMemo carries the per-edge retention bits of a node-centric prune
// so a later incremental update can re-derive only the dirty
// neighborhoods. Flags[i] holds the KeptByA/KeptByB verdicts of
// g.Edges[i]; the memo is positionally bound to the edge list it was
// computed over and must be Remapped across structural updates.
type PruneMemo struct {
	// Alg is the pruning algorithm the verdicts belong to (WNP or CNP).
	Alg Pruning
	// Reciprocal records the retention rule the edges were collected
	// under; a memo is only reusable under the same rule.
	Reciprocal bool
	// K is the effective CNP per-node budget the verdicts were computed
	// with (zero for WNP). If an update shifts the effective budget —
	// the default k tracks assignments and live nodes — every node's
	// top-k is suspect and the memo must not be reused.
	K int
	// Flags holds the per-edge retention bits, parallel to g.Edges.
	Flags []uint8
}

// PruneMemoized is Prune plus a reusable memo for the node-centric
// algorithms. For WEP and CEP — whose verdicts hang on global
// aggregates with no per-node locality to exploit — it returns a nil
// memo and defers to Prune. The kept edges are bit-identical to
// Prune's under the same options.
func (g *Graph) PruneMemoized(alg Pruning, opts PruneOptions) ([]Edge, *PruneMemo) {
	var memo *PruneMemo
	switch alg {
	case WNP:
		flags := make([]uint8, len(g.Edges))
		g.wnpFlags(flags)
		memo = &PruneMemo{Alg: alg, Reciprocal: opts.Reciprocal, Flags: flags}
	case CNP:
		k := g.ResolveK(opts)
		flags := make([]uint8, len(g.Edges))
		g.cnpFlags(k, flags)
		memo = &PruneMemo{Alg: alg, Reciprocal: opts.Reciprocal, K: k, Flags: flags}
	default:
		return g.Prune(alg, opts), nil
	}
	kept := g.collect(memo.Flags, memo.Reciprocal)
	sortEdges(kept)
	return kept, memo
}

// Remap rebases the memo onto a post-update edge index space: oldToNew
// is UpdateStats.OldToNew (nil = positionally unchanged), newLen the
// updated graph's edge count. Verdict bits follow their surviving
// edges; inserted edges start with no verdicts — their endpoints are
// dirty by construction, so RepruneLocal derives them. Always returns
// a fresh memo; the receiver is not mutated.
func (m *PruneMemo) Remap(oldToNew []int32, newLen int) *PruneMemo {
	flags := make([]uint8, newLen)
	if oldToNew == nil {
		copy(flags, m.Flags)
	} else {
		for oi, f := range m.Flags {
			if ni := oldToNew[oi]; ni >= 0 {
				flags[ni] = f
			}
		}
	}
	return &PruneMemo{Alg: m.Alg, Reciprocal: m.Reciprocal, K: m.K, Flags: flags}
}

// RepruneStats reports how much work a re-prune did — the evidence it
// stayed proportional to the touched neighborhoods.
type RepruneStats struct {
	// Full reports that the pass fell back to a full re-prune (memo
	// missing or invalidated); the remaining fields are then zero.
	Full bool
	// DirtyNodes and TotalNodes size the recomputed neighborhood set
	// against the graph.
	DirtyNodes, TotalNodes int
	// VisitedEdges counts edge visits during verdict re-derivation
	// (each dirty incidence once per dirty endpoint); TotalEdges is
	// what a full node-centric pass would have visited twice.
	VisitedEdges, TotalEdges int
}

// RepruneLocal re-derives the node-centric verdicts of the dirty nodes
// only, reusing the memoized bits everywhere else, and returns the
// retained edges — bit-identical to a full Prune(memo.Alg, ...) under
// the memo's options — plus the work accounting. memo.Flags must
// already be remapped to g's current edge list (see Remap); dirty is
// UpdateStats.DirtyNodes. The memo is updated in place and remains
// valid for the next round.
//
// The scan to gather dirty incidences is linear and cheap (integer
// compares, no float work); the superlinear part of node-centric
// pruning — per-neighborhood means and top-k heaps — runs only over
// the dirty rows.
func (g *Graph) RepruneLocal(memo *PruneMemo, dirty []int32) ([]Edge, RepruneStats) {
	if len(memo.Flags) != len(g.Edges) {
		panic("metablocking: PruneMemo not remapped to the current edge list")
	}
	st := RepruneStats{
		DirtyNodes: len(dirty),
		TotalNodes: g.NumNodes,
		TotalEdges: len(g.Edges),
	}

	words := make([]uint64, (g.NumNodes+63)/64)
	for _, v := range dirty {
		words[v>>6] |= 1 << (uint(v) & 63)
	}
	isDirty := func(v int) bool { return words[v>>6]>>(uint(v)&63)&1 == 1 }

	// Gather each dirty node's incident edges in ascending edge order —
	// the accumulation order the full pass uses per node, so float sums
	// replay bit-identically. Exact two-pass fill: count, prefix, fill.
	cnt := make([]int32, g.NumNodes+1)
	for i := range g.Edges {
		e := &g.Edges[i]
		if isDirty(e.A) {
			cnt[e.A+1]++
		}
		if isDirty(e.B) {
			cnt[e.B+1]++
		}
	}
	for v := 0; v < g.NumNodes; v++ {
		cnt[v+1] += cnt[v]
	}
	slab := make([]int32, cnt[g.NumNodes])
	cur := make([]int32, g.NumNodes)
	copy(cur, cnt[:g.NumNodes])
	for i := range g.Edges {
		e := &g.Edges[i]
		if isDirty(e.A) {
			slab[cur[e.A]] = int32(i)
			cur[e.A]++
		}
		if isDirty(e.B) {
			slab[cur[e.B]] = int32(i)
			cur[e.B]++
		}
	}
	st.VisitedEdges = len(slab)

	flags := memo.Flags
	for _, v := range dirty {
		row := slab[cnt[v]:cnt[v+1]]
		// Clear v's own verdicts; the other endpoint's bits stand.
		for _, ei := range row {
			if g.Edges[ei].A == int(v) {
				flags[ei] &^= KeptByA
			} else {
				flags[ei] &^= KeptByB
			}
		}
		switch memo.Alg {
		case WNP:
			sum := 0.0
			for _, ei := range row {
				sum += g.Edges[ei].Weight
			}
			if len(row) == 0 {
				continue
			}
			mean := sum / float64(len(row))
			for _, ei := range row {
				if g.Edges[ei].Weight >= mean {
					if g.Edges[ei].A == int(v) {
						flags[ei] |= KeptByA
					} else {
						flags[ei] |= KeptByB
					}
				}
			}
		case CNP:
			top := container.NewBoundedTopK(memo.K, func(a, b int32) bool {
				ea, eb := &g.Edges[a], &g.Edges[b]
				if ea.Weight != eb.Weight {
					return ea.Weight < eb.Weight
				}
				return a > b // ties: higher edge index loses
			})
			for _, ei := range row {
				top.Offer(ei)
			}
			for _, ei := range top.Drain() {
				if g.Edges[ei].A == int(v) {
					flags[ei] |= KeptByA
				} else {
					flags[ei] |= KeptByB
				}
			}
		default:
			panic("metablocking: RepruneLocal on a non-node-centric memo")
		}
	}

	kept := g.collect(flags, memo.Reciprocal)
	sortEdges(kept)
	return kept, st
}
