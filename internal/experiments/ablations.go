package experiments

import (
	"repro/internal/blocking"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/match"
	"repro/internal/metablocking"
	"repro/internal/tokenize"
)

// Ablations isolate the contribution of each design choice the
// pipeline makes. They are not part of the paper's evaluation but
// ground the defaults recorded in DESIGN.md.

// A1BlockingMethods swaps the blocking layer (token / attribute
// clustering / sorted neighborhood) and measures the end-to-end
// effect on resolution quality and cost.
func A1BlockingMethods(seed int64, n int) *Table {
	w := mustGenerate(datagen.TwoKBs(seed, n, datagen.Center(), datagen.Center()))
	opts := tokenize.Default()
	methods := []struct {
		name string
		col  *blocking.Collection
	}{
		{"token", blocking.TokenBlocking(w.Collection, opts)},
		{"attr-cluster", blocking.AttributeClustering(w.Collection, opts)},
		{"sorted-nbhd(4)", blocking.SortedNeighborhood(w.Collection, opts, 4)},
	}
	t := &Table{
		ID:     "A1",
		Title:  "Ablation: blocking method vs end-to-end resolution",
		Header: []string{"method", "candidates", "executed", "recall", "precision", "F1"},
	}
	matcher := match.NewMatcher(w.Collection, match.DefaultOptions())
	for _, mth := range methods {
		col := mth.col.Purge(0).Filter(0.8)
		g := metablocking.Build(col, metablocking.ECBS)
		edges := g.Prune(metablocking.WNP, metablocking.PruneOptions{Assignments: col.Assignments()})
		res := core.NewResolver(matcher, edges, core.Config{}).Run()
		q := eval.EvaluateMatches(w.Collection, w.Truth, res.MatchedPairs(matcher))
		t.Rows = append(t.Rows, []string{
			mth.name, itoa(len(col.DistinctPairs())), itoa(res.Comparisons),
			f3(q.Recall), f3(q.Precision), f3(q.F1),
		})
	}
	t.Notes = "token blocking is the paper's choice; the alternatives trade recall for cost"
	return t
}

// A2NeighborWeight sweeps the neighbor-evidence weight on the hard
// center+periphery workload — the knob behind the update phase's
// recall/precision balance.
func A2NeighborWeight(seed int64, n int) *Table {
	cfg := datagen.Config{
		Seed:        seed,
		NumEntities: n,
		KBs: []datagen.KBConfig{
			{Name: "centerA", Coverage: 1, Profile: datagen.Center()},
			{Name: "periphX", Coverage: 1, Profile: datagen.Periphery()},
		},
		LinksPerEntity: 3,
	}
	w := mustGenerate(cfg)
	t := &Table{
		ID:     "A2",
		Title:  "Ablation: neighbor-evidence weight (update-phase strength)",
		Header: []string{"weight", "comparisons", "discovered", "recall", "precision", "F1"},
	}
	// DefaultOptions is normalized, so the literal 0 below truly
	// disables neighbor evidence (no ε workaround needed).
	for _, nw := range []float64{0, 0.25, 0.5, 0.75} {
		mopts := match.DefaultOptions()
		mopts.NeighborWeight = nw
		matcher := match.NewMatcher(w.Collection, mopts)
		col := blocking.TokenBlocking(w.Collection, tokenize.Default()).Purge(0).Filter(0.8)
		g := metablocking.Build(col, metablocking.ECBS)
		edges := g.Prune(metablocking.WNP, metablocking.PruneOptions{Assignments: col.Assignments()})
		res := core.NewResolver(matcher, edges, core.Config{}).Run()
		q := eval.EvaluateMatches(w.Collection, w.Truth, res.MatchedPairs(matcher))
		label := f3(nw)
		if nw < 0.001 {
			label = "off"
		}
		t.Rows = append(t.Rows, []string{
			label, itoa(res.Comparisons), itoa(res.Discovered),
			f3(q.Recall), f3(q.Precision), f3(q.F1),
		})
	}
	t.Notes = "expected shape: recall rises with the weight; precision holds until the weight dominates"
	return t
}

// A3SchedulerComponents disables the scheduler's moving parts one at a
// time: benefit bias, neighbor boost, discovery, and all three —
// reducing it to a static weight-order run.
func A3SchedulerComponents(seed int64, n int) *Table {
	w := mustGenerate(datagen.TwoKBs(seed, n, datagen.Center(), datagen.Periphery()))
	s := buildStack(w)
	total := w.Truth.CrossKBMatchingPairs(w.Collection)
	horizon := len(s.edges)
	t := &Table{
		ID:     "A3",
		Title:  "Ablation: scheduler components (recall AUC over the edge horizon)",
		Header: []string{"variant", "comparisons", "matches", "AUC", "final recall"},
	}
	// DefaultConfig is normalized: zeroing a field disables that
	// component outright (the pre-normalization harness needed an ε
	// because a literal 0 meant "use default").
	noBias := core.DefaultConfig()
	noBias.BiasWeight = 0
	noBoost := core.DefaultConfig()
	noBoost.NeighborBoost = 0
	static := core.DefaultConfig()
	static.BiasWeight, static.NeighborBoost, static.DisableDiscovery = 0, 0, true
	variants := []struct {
		name string
		cfg  core.Config
	}{
		{"full", core.Config{}},
		{"no bias", noBias},
		{"no boost", noBoost},
		{"no discovery", core.Config{DisableDiscovery: true}},
		{"static order", static},
	}
	for _, v := range variants {
		res := core.NewResolver(s.m, s.edges, v.cfg).Run()
		curve := eval.RecallCurve(truthOutcomes(res, w), total, 0)
		t.Rows = append(t.Rows, []string{
			v.name, itoa(res.Comparisons), itoa(res.Matches),
			f3(curve.AUC(horizon)), f3(curve.Final()),
		})
	}
	t.Notes = "expected shape: each removed component costs AUC and/or final recall"
	return t
}

// A4SchemeProgressive measures how the meta-blocking weighting scheme
// feeds through to progressive quality: the scheduler's initial
// priorities are the normalized edge weights.
func A4SchemeProgressive(seed int64, n int) *Table {
	w := mustGenerate(datagen.TwoKBs(seed, n, datagen.Center(), datagen.Center()))
	col := blocking.TokenBlocking(w.Collection, tokenize.Default()).Purge(0).Filter(0.8)
	matcher := match.NewMatcher(w.Collection, match.DefaultOptions())
	total := w.Truth.CrossKBMatchingPairs(w.Collection)
	t := &Table{
		ID:     "A4",
		Title:  "Ablation: weighting scheme vs progressive quality",
		Header: []string{"scheme", "edges", "AUC", "final recall"},
	}
	for _, scheme := range metablocking.Schemes() {
		g := metablocking.Build(col, scheme)
		edges := g.Prune(metablocking.WNP, metablocking.PruneOptions{Assignments: col.Assignments()})
		res := core.NewResolver(matcher, edges, core.Config{}).Run()
		curve := eval.RecallCurve(truthOutcomes(res, w), total, 0)
		t.Rows = append(t.Rows, []string{
			scheme.String(), itoa(len(edges)), f3(curve.AUC(len(edges))), f3(curve.Final()),
		})
	}
	t.Notes = "expected shape: evidence-aware schemes (ECBS/JS/EJS) match or beat CBS"
	return t
}

// A5PruningReciprocal contrasts redefined (either endpoint) and
// reciprocal (both endpoints) node-centric pruning.
func A5PruningReciprocal(seed int64, n int) *Table {
	w := mustGenerate(datagen.TwoKBs(seed, n, datagen.Center(), datagen.Center()))
	col := blocking.TokenBlocking(w.Collection, tokenize.Default()).Purge(0).Filter(0.8)
	g := metablocking.Build(col, metablocking.ECBS)
	t := &Table{
		ID:     "A5",
		Title:  "Ablation: redefined vs reciprocal node-centric pruning",
		Header: []string{"pruning", "mode", "kept", "PC", "PQ"},
	}
	for _, alg := range []metablocking.Pruning{metablocking.WNP, metablocking.CNP} {
		for _, reciprocal := range []bool{false, true} {
			kept := g.Prune(alg, metablocking.PruneOptions{
				Assignments: col.Assignments(), Reciprocal: reciprocal,
			})
			q := eval.EvaluateEdges(w.Collection, w.Truth, kept)
			mode := "either"
			if reciprocal {
				mode = "both"
			}
			t.Rows = append(t.Rows, []string{alg.String(), mode, itoa(len(kept)), f3(q.PC), f4(q.PQ)})
		}
	}
	t.Notes = "expected shape: reciprocal keeps fewer comparisons at higher PQ, losing a little PC"
	return t
}

// A6Clustering compares match-clustering algorithms on dirty ER, where
// transitive closure amplifies every false positive.
func A6Clustering(seed int64, n int) *Table {
	w := mustGenerate(datagen.DirtyKB(seed, n, 2))
	s := buildStack(w)
	res := core.NewResolver(s.m, s.edges, core.Config{}).Run()
	matches := cluster.FromSteps(res.Trace)
	t := &Table{
		ID:     "A6",
		Title:  "Ablation: match clustering on dirty ER",
		Header: []string{"algorithm", "clusters", "recall", "precision", "F1"},
	}
	for _, alg := range cluster.Algorithms() {
		cl := cluster.Cluster(alg, matches, w.Collection, w.Collection.Len())
		var pairs []blocking.Pair
		for _, p := range cl.Pairs(w.Collection, false) {
			pairs = append(pairs, blocking.Pair{A: p[0], B: p[1]})
		}
		q := eval.EvaluateMatches(w.Collection, w.Truth, pairs)
		t.Rows = append(t.Rows, []string{
			alg.String(), itoa(len(cl.Resolved())), f3(q.Recall), f3(q.Precision), f3(q.F1),
		})
	}
	t.Notes = "expected shape: center/unique-mapping beat transitive closure on precision"
	return t
}

// AllAblations runs every ablation at laptop scale.
func AllAblations(seed int64) []*Table {
	return []*Table{
		A1BlockingMethods(seed, 300),
		A2NeighborWeight(seed, 300),
		A3SchedulerComponents(seed, 300),
		A4SchemeProgressive(seed, 300),
		A5PruningReciprocal(seed, 300),
		A6Clustering(seed, 300),
	}
}
