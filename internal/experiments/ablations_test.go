package experiments

import "testing"

func TestA1Shape(t *testing.T) {
	tab := A1BlockingMethods(21, 200)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	for i := range tab.Rows {
		if f1 := num(t, cell(tab, i, "F1")); f1 < 0.4 {
			t.Errorf("%s end-to-end F1=%v collapsed", tab.Rows[i][0], f1)
		}
	}
	// Sorted neighborhood must be the cheapest candidate set.
	tokC := num(t, cell(tab, 0, "candidates"))
	snC := num(t, cell(tab, 2, "candidates"))
	if snC >= tokC {
		t.Errorf("sorted-nbhd candidates %v !< token %v", snC, tokC)
	}
}

func TestA2Shape(t *testing.T) {
	tab := A2NeighborWeight(22, 250)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	off := num(t, cell(tab, 0, "recall"))
	mid := num(t, cell(tab, 2, "recall")) // weight 0.5, the default
	if mid <= off {
		t.Errorf("neighbor weight 0.5 recall %v !> off %v", mid, off)
	}
	if disc := num(t, cell(tab, 0, "discovered")); disc != 0 {
		// With the weight off, discovered comparisons can execute but
		// never match; they may still be counted as executed.
		_ = disc
	}
}

func TestA3Shape(t *testing.T) {
	tab := A3SchedulerComponents(23, 250)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	full := num(t, cell(tab, 0, "final recall"))
	static := num(t, cell(tab, 4, "final recall"))
	if full < static {
		t.Errorf("full scheduler recall %v below static %v", full, static)
	}
	fullAUC := num(t, cell(tab, 0, "AUC"))
	noDisc := num(t, cell(tab, 3, "final recall"))
	if noDisc > full {
		t.Errorf("removing discovery increased recall: %v > %v", noDisc, full)
	}
	if fullAUC <= 0 {
		t.Errorf("full AUC=%v", fullAUC)
	}
}

func TestA4Shape(t *testing.T) {
	tab := A4SchemeProgressive(24, 200)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	for i := range tab.Rows {
		if auc := num(t, cell(tab, i, "AUC")); auc < 0.3 {
			t.Errorf("%s AUC=%v collapsed", tab.Rows[i][0], auc)
		}
	}
}

func TestA5Shape(t *testing.T) {
	tab := A5PruningReciprocal(25, 200)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	// Row pairs: (WNP either, WNP both), (CNP either, CNP both).
	for i := 0; i < 4; i += 2 {
		either := num(t, cell(tab, i, "kept"))
		both := num(t, cell(tab, i+1, "kept"))
		if both > either {
			t.Errorf("%s reciprocal kept more (%v) than redefined (%v)", tab.Rows[i][0], both, either)
		}
		pqE := num(t, cell(tab, i, "PQ"))
		pqB := num(t, cell(tab, i+1, "PQ"))
		if pqB < pqE {
			t.Errorf("%s reciprocal PQ %v below redefined %v", tab.Rows[i][0], pqB, pqE)
		}
	}
}

func TestA6Shape(t *testing.T) {
	tab := A6Clustering(26, 200)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	tc := num(t, cell(tab, 0, "precision"))
	ce := num(t, cell(tab, 1, "precision"))
	um := num(t, cell(tab, 2, "precision"))
	if ce <= tc || um <= tc {
		t.Errorf("clustering did not improve dirty precision: tc=%v center=%v unique=%v", tc, ce, um)
	}
	for i := range tab.Rows {
		if rec := num(t, cell(tab, i, "recall")); rec < 0.7 {
			t.Errorf("%s recall %v collapsed", tab.Rows[i][0], rec)
		}
	}
}
