// Package experiments regenerates the reconstructed evaluation of the
// paper (see DESIGN.md §3): one function per table/figure, each
// returning a printable Table whose rows the benchmarks and the bench
// CLI reproduce. Experiments are deterministic in their seed.
package experiments

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/mapreduce"
	"repro/internal/match"
	"repro/internal/metablocking"
	"repro/internal/parblock"
	"repro/internal/parmeta"
	"repro/internal/tokenize"
)

// Table is one experiment's result in printable form.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "-- %s\n", t.Notes)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func f3(x float64) string { return strconv.FormatFloat(x, 'f', 3, 64) }
func f4(x float64) string { return strconv.FormatFloat(x, 'f', 4, 64) }
func itoa(x int) string   { return strconv.Itoa(x) }
func ms(d time.Duration) string {
	return strconv.FormatFloat(float64(d.Microseconds())/1000, 'f', 1, 64)
}

// stack bundles the shared pipeline stages for one workload.
type stack struct {
	world *datagen.World
	raw   *blocking.Collection // token blocking, uncleaned
	col   *blocking.Collection // purged + filtered
	graph *metablocking.Graph
	edges []metablocking.Edge
	m     *match.Matcher
}

func buildStack(w *datagen.World) *stack {
	raw := blocking.TokenBlocking(w.Collection, tokenize.Default())
	col := raw.Purge(0).Filter(0.8)
	g := metablocking.Build(col, metablocking.ECBS)
	edges := g.Prune(metablocking.WNP, metablocking.PruneOptions{Assignments: col.Assignments()})
	return &stack{
		world: w, raw: raw, col: col, graph: g, edges: edges,
		m: match.NewMatcher(w.Collection, match.DefaultOptions()),
	}
}

func mustGenerate(cfg datagen.Config) *datagen.World {
	w, err := datagen.Generate(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: generator config invalid: %v", err))
	}
	return w
}

// truthOutcomes marks each executed comparison that confirmed a
// ground-truth match.
func truthOutcomes(res *core.Result, w *datagen.World) []bool {
	out := make([]bool, len(res.Trace))
	for i, s := range res.Trace {
		out[i] = s.Matched && w.Truth.Match(s.A, s.B)
	}
	return out
}

// F1Pipeline traces Figure 1: every stage of the Minoan ER workflow on
// a quickstart workload, reporting what each stage contributes.
func F1Pipeline(seed int64, n int) *Table {
	w := mustGenerate(datagen.TwoKBs(seed, n, datagen.Center(), datagen.Periphery()))
	t := &Table{
		ID:     "F1",
		Title:  "Minoan ER pipeline, stage by stage (Figure 1)",
		Header: []string{"stage", "output", "candidates", "PC", "PQ"},
	}
	brute := eval.BruteForceComparisons(w.Collection)
	t.Rows = append(t.Rows, []string{"input", fmt.Sprintf("%d descriptions / %d KBs", w.Collection.Len(), w.Collection.NumKBs()), itoa(brute), "1.000", f3(float64(w.Truth.CrossKBMatchingPairs(w.Collection)) / float64(brute))})

	raw := blocking.TokenBlocking(w.Collection, tokenize.Default())
	qRaw := eval.EvaluateBlocks(raw, w.Truth)
	t.Rows = append(t.Rows, []string{"blocking", fmt.Sprintf("%d blocks", raw.NumBlocks()), itoa(qRaw.Candidates), f3(qRaw.PC), f3(qRaw.PQ)})

	col := raw.Purge(0).Filter(0.8)
	qCleaned := eval.EvaluateBlocks(col, w.Truth)
	t.Rows = append(t.Rows, []string{"block cleaning", fmt.Sprintf("%d blocks", col.NumBlocks()), itoa(qCleaned.Candidates), f3(qCleaned.PC), f3(qCleaned.PQ)})

	g := metablocking.Build(col, metablocking.ECBS)
	edges := g.Prune(metablocking.WNP, metablocking.PruneOptions{Assignments: col.Assignments()})
	qPruned := eval.EvaluateEdges(w.Collection, w.Truth, edges)
	t.Rows = append(t.Rows, []string{"meta-blocking", fmt.Sprintf("%d edges", len(edges)), itoa(qPruned.Candidates), f3(qPruned.PC), f3(qPruned.PQ)})

	m := match.NewMatcher(w.Collection, match.DefaultOptions())
	res := core.NewResolver(m, edges, core.Config{}).Run()
	q := eval.EvaluateMatches(w.Collection, w.Truth, res.MatchedPairs(m))
	t.Rows = append(t.Rows, []string{"schedule+match+update", fmt.Sprintf("%d matches (%d discovered cmps)", res.Matches, res.Discovered), itoa(res.Comparisons), f3(q.Recall), f3(q.Precision)})
	t.Notes = "final row: PC column = recall, PQ column = precision of resolved pairs"
	return t
}

// T1Blocking compares token blocking and attribute-clustering blocking
// across workload sizes: PC stays near 1 in the center of the cloud
// while RR removes the bulk of the brute-force comparisons.
func T1Blocking(seed int64, sizes []int) *Table {
	t := &Table{
		ID:     "T1",
		Title:  "Blocking on highly similar (center) KB pairs",
		Header: []string{"entities", "method", "blocks", "candidates", "PC", "PQ", "RR"},
	}
	for _, n := range sizes {
		w := mustGenerate(datagen.TwoKBs(seed, n, datagen.Center(), datagen.Center()))
		tok := blocking.TokenBlocking(w.Collection, tokenize.Default())
		qTok := eval.EvaluateBlocks(tok, w.Truth)
		t.Rows = append(t.Rows, []string{itoa(n), "token", itoa(tok.NumBlocks()), itoa(qTok.Candidates), f3(qTok.PC), f4(qTok.PQ), f3(qTok.RR)})
		ac := blocking.AttributeClustering(w.Collection, tokenize.Default())
		qAC := eval.EvaluateBlocks(ac, w.Truth)
		t.Rows = append(t.Rows, []string{itoa(n), "attr-cluster", itoa(ac.NumBlocks()), itoa(qAC.Candidates), f3(qAC.PC), f4(qAC.PQ), f3(qAC.RR)})
	}
	t.Notes = "expected shape: PC≈1 for token blocking; attr-cluster trades a little PC for higher PQ"
	return t
}

// T2BlockCleaning isolates block purging and block filtering.
func T2BlockCleaning(seed int64, n int) *Table {
	w := mustGenerate(datagen.TwoKBs(seed, n, datagen.Center(), datagen.Center()))
	t := &Table{
		ID:     "T2",
		Title:  "Block cleaning: purging and filtering",
		Header: []string{"variant", "blocks", "candidates", "PC", "PQ", "RR"},
	}
	raw := blocking.TokenBlocking(w.Collection, tokenize.Default())
	variants := []struct {
		name string
		col  *blocking.Collection
	}{
		{"none", raw},
		{"purge", raw.Purge(0)},
		{"filter(0.8)", raw.Filter(0.8)},
		{"purge+filter", raw.Purge(0).Filter(0.8)},
	}
	for _, v := range variants {
		q := eval.EvaluateBlocks(v.col, w.Truth)
		t.Rows = append(t.Rows, []string{v.name, itoa(v.col.NumBlocks()), itoa(q.Candidates), f3(q.PC), f4(q.PQ), f3(q.RR)})
	}
	t.Notes = "expected shape: candidates shrink monotonically with little PC loss"
	return t
}

// T3MetaBlocking sweeps the weighting × pruning grid.
func T3MetaBlocking(seed int64, n int) *Table {
	w := mustGenerate(datagen.TwoKBs(seed, n, datagen.Center(), datagen.Center()))
	col := blocking.TokenBlocking(w.Collection, tokenize.Default()).Purge(0).Filter(0.8)
	base := eval.EvaluateBlocks(col, w.Truth)
	t := &Table{
		ID:     "T3",
		Title:  "Meta-blocking: weighting schemes × pruning algorithms",
		Header: []string{"scheme", "pruning", "kept", "kept%", "PC", "PQ"},
		Notes: fmt.Sprintf("before pruning: %d candidates, PC=%s — pruning retains a fraction at modest PC cost",
			base.Candidates, f3(base.PC)),
	}
	opts := metablocking.PruneOptions{Assignments: col.Assignments()}
	for _, scheme := range metablocking.Schemes() {
		g := metablocking.Build(col, scheme)
		for _, alg := range metablocking.Prunings() {
			kept := g.Prune(alg, opts)
			q := eval.EvaluateEdges(w.Collection, w.Truth, kept)
			t.Rows = append(t.Rows, []string{
				scheme.String(), alg.String(), itoa(len(kept)),
				f3(float64(len(kept)) / float64(g.NumEdges())),
				f3(q.PC), f4(q.PQ),
			})
		}
	}
	return t
}

// F2Progressive draws the progressive recall curves: Minoan ER's
// scheduler vs the baselines at increasing budget fractions.
func F2Progressive(seed int64, n int) *Table {
	w := mustGenerate(datagen.TwoKBs(seed, n, datagen.Center(), datagen.Center()))
	s := buildStack(w)
	total := w.Truth.CrossKBMatchingPairs(w.Collection)
	horizon := len(s.edges)

	minoan := core.NewResolver(s.m, s.edges, core.Config{}).Run()
	curves := []struct {
		name  string
		curve eval.Curve
	}{
		{"minoan", eval.RecallCurve(truthOutcomes(minoan, w), total, 0)},
		{"weight-order", eval.RecallCurve(truthOutcomes(baseline.Execute(s.m, baseline.WeightOrder(s.edges), false, 0), w), total, 0)},
		{"density", eval.RecallCurve(truthOutcomes(baseline.Execute(s.m, baseline.DensityOrder(s.col, s.graph), false, 0), w), total, 0)},
		{"block-order", eval.RecallCurve(truthOutcomes(baseline.Execute(s.m, baseline.BlockOrder(s.col), false, 0), w), total, 0)},
		{"random", eval.RecallCurve(truthOutcomes(baseline.Execute(s.m, baseline.RandomOrder(s.col.DistinctPairs(), seed), false, 0), w), total, 0)},
	}
	t := &Table{
		ID:     "F2",
		Title:  "Progressive recall vs comparison budget (fractions of pruned-edge count)",
		Header: []string{"method", "10%", "25%", "50%", "75%", "100%", "AUC"},
	}
	for _, c := range curves {
		t.Rows = append(t.Rows, []string{
			c.name,
			f3(c.curve.At(horizon / 10)), f3(c.curve.At(horizon / 4)),
			f3(c.curve.At(horizon / 2)), f3(c.curve.At(3 * horizon / 4)),
			f3(c.curve.At(horizon)), f3(c.curve.AUC(horizon)),
		})
	}
	t.Notes = "expected shape: minoan dominates at every budget; random is the floor"
	return t
}

// F3Benefits runs the scheduler once per benefit model and reports the
// cumulative targeted benefit at budget fractions — the three
// data-quality benefits behave differently from quantity.
func F3Benefits(seed int64, n int) *Table {
	w := mustGenerate(datagen.TwoKBs(seed, n, datagen.Center(), datagen.Center()))
	s := buildStack(w)
	horizon := len(s.edges)
	t := &Table{
		ID:     "F3",
		Title:  "Targeted benefit vs budget, per benefit model (normalized to final)",
		Header: []string{"model", "2%", "5%", "10%", "25%", "final(abs)"},
	}
	for _, model := range core.Models() {
		res := core.NewResolver(s.m, s.edges, core.Config{Benefit: model}).Run()
		var curve eval.Curve
		cum := 0.0
		for i, step := range res.Trace {
			cum += step.Gain
			curve = append(curve, eval.CurvePoint{Comparisons: i + 1, Value: cum})
		}
		final := curve.Final()
		norm := func(k int) string {
			if final == 0 {
				return "0.000"
			}
			return f3(curve.At(k) / final)
		}
		t.Rows = append(t.Rows, []string{
			model.Name(), norm(horizon / 50), norm(horizon / 20), norm(horizon / 10),
			norm(horizon / 4), f3(final),
		})
	}
	t.Notes = "expected shape: every model realizes most of its benefit in the first budget quartile"
	return t
}

// T4NeighborEvidence measures the update phase on a center+periphery
// cloud: recall with and without neighbor-evidence discovery.
func T4NeighborEvidence(seed int64, n int) *Table {
	cfg := datagen.Config{
		Seed:        seed,
		NumEntities: n,
		KBs: []datagen.KBConfig{
			{Name: "centerA", Coverage: 1, Profile: datagen.Center()},
			{Name: "periphX", Coverage: 1, Profile: datagen.Periphery()},
		},
		LinksPerEntity: 3,
	}
	w := mustGenerate(cfg)
	s := buildStack(w)
	t := &Table{
		ID:     "T4",
		Title:  "Neighbor evidence on somehow-similar (periphery) descriptions",
		Header: []string{"variant", "comparisons", "discovered", "matches", "recall", "precision"},
	}
	for _, v := range []struct {
		name    string
		disable bool
	}{{"with update phase", false}, {"without update phase", true}} {
		res := core.NewResolver(s.m, s.edges, core.Config{DisableDiscovery: v.disable}).Run()
		q := eval.EvaluateMatches(w.Collection, w.Truth, res.MatchedPairs(s.m))
		t.Rows = append(t.Rows, []string{
			v.name, itoa(res.Comparisons), itoa(res.Discovered), itoa(res.Matches),
			f3(q.Recall), f3(q.Precision),
		})
	}
	t.Notes = "expected shape: the update phase strictly increases recall via discovered comparisons"
	return t
}

// T5Parallel measures MapReduce blocking + meta-blocking wall time as
// workers increase (the Hadoop-parallelism claim of [4], laptop scale).
func T5Parallel(seed int64, n int, workers []int) *Table {
	w := mustGenerate(datagen.TwoKBs(seed, n, datagen.Center(), datagen.Center()))
	t := &Table{
		ID:     "T5",
		Title:  "Parallel blocking + meta-blocking (in-process MapReduce)",
		Header: []string{"workers", "block(ms)", "graph(ms)", "prune(ms)", "total(ms)", "speedup"},
	}
	var baselineMs float64
	for _, wk := range workers {
		cfg := mapreduce.Config{Workers: wk}
		t0 := time.Now()
		col, err := parblock.TokenBlocking(context.Background(), w.Collection, tokenize.Default(), cfg)
		if err != nil {
			panic(err)
		}
		t1 := time.Now()
		g, err := parblock.Graph(context.Background(), col, metablocking.ECBS, cfg)
		if err != nil {
			panic(err)
		}
		t2 := time.Now()
		if _, err = parblock.PruneNodeCentric(context.Background(), g, metablocking.WNP, metablocking.PruneOptions{}, cfg); err != nil {
			panic(err)
		}
		t3 := time.Now()
		total := t3.Sub(t0)
		if baselineMs == 0 {
			baselineMs = float64(total.Microseconds())
		}
		t.Rows = append(t.Rows, []string{
			itoa(wk), ms(t1.Sub(t0)), ms(t2.Sub(t1)), ms(t3.Sub(t2)), ms(total),
			f3(baselineMs / float64(total.Microseconds())),
		})
	}
	t.Notes = "expected shape: wall time falls as workers grow, tapering from shuffle overhead"
	return t
}

// T7ParallelShared measures the shared-memory meta-blocking engine
// (internal/parmeta) against the sequential reference: blocking-graph
// build + WNP pruning wall time as workers grow. Unlike T5 there is no
// serialized shuffle — sharded accumulation with lock-free merges — so
// on multicore hosts speedup should track cores closely; on a single
// CPU the sweep degenerates to goroutine-scheduling overhead.
func T7ParallelShared(seed int64, n int, workers []int) *Table {
	w := mustGenerate(datagen.TwoKBs(seed, n, datagen.Center(), datagen.Center()))
	col := blocking.TokenBlocking(w.Collection, tokenize.Default()).Purge(0).Filter(0.8)
	opts := metablocking.PruneOptions{Assignments: col.Assignments()}
	t := &Table{
		ID:     "T7",
		Title:  "Shared-memory parallel meta-blocking (internal/parmeta)",
		Header: []string{"workers", "build(ms)", "prune(ms)", "total(ms)", "speedup", "edges"},
	}
	var baselineUs float64
	for _, wk := range workers {
		t0 := time.Now()
		g := parmeta.Build(col, metablocking.ECBS, wk)
		t1 := time.Now()
		kept := parmeta.Prune(g, metablocking.WNP, opts, wk)
		t2 := time.Now()
		totalUs := float64(t2.Sub(t0).Microseconds())
		if totalUs == 0 {
			totalUs = 1
		}
		if baselineUs == 0 {
			baselineUs = totalUs
		}
		t.Rows = append(t.Rows, []string{
			itoa(wk), ms(t1.Sub(t0)), ms(t2.Sub(t1)), ms(t2.Sub(t0)),
			f3(baselineUs / totalUs), itoa(len(kept)),
		})
	}
	t.Notes = "workers=1 is the sequential reference engine; retained edges are identical at every width"
	return t
}

// F4Scalability sweeps entity count: comparisons after each stage and
// end-to-end wall time must grow near-linearly, against the quadratic
// brute force.
func F4Scalability(seed int64, sizes []int) *Table {
	t := &Table{
		ID:     "F4",
		Title:  "Scalability with entity count",
		Header: []string{"entities", "brute", "blocked", "pruned", "recall", "wall(ms)"},
	}
	for _, n := range sizes {
		w := mustGenerate(datagen.TwoKBs(seed, n, datagen.Center(), datagen.Center()))
		t0 := time.Now()
		s := buildStack(w)
		res := core.NewResolver(s.m, s.edges, core.Config{}).Run()
		wall := time.Since(t0)
		q := eval.EvaluateMatches(w.Collection, w.Truth, res.MatchedPairs(s.m))
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(eval.BruteForceComparisons(w.Collection)),
			itoa(s.raw.TotalComparisons()), itoa(len(s.edges)),
			f3(q.Recall), ms(wall),
		})
	}
	t.Notes = "expected shape: pruned comparisons grow ~linearly while brute force grows quadratically"
	return t
}

// T6DirtyER resolves duplicates within a single KB (dirty ER), the
// "within sources" half of the paper's problem statement.
func T6DirtyER(seed int64, n int) *Table {
	w := mustGenerate(datagen.DirtyKB(seed, n, 2))
	s := buildStack(w)
	res := core.NewResolver(s.m, s.edges, core.Config{}).Run()
	q := eval.EvaluateMatches(w.Collection, w.Truth, res.MatchedPairs(s.m))
	blockQ := eval.EvaluateBlocks(s.col, w.Truth)
	t := &Table{
		ID:     "T6",
		Title:  "Dirty ER within a single KB",
		Header: []string{"stage", "candidates", "PC/recall", "PQ/precision"},
		Rows: [][]string{
			{"blocking(clean)", itoa(blockQ.Candidates), f3(blockQ.PC), f4(blockQ.PQ)},
			{"resolution", itoa(res.Comparisons), f3(q.Recall), f3(q.Precision)},
		},
		Notes: "expected shape: same pipeline handles within-KB duplicates without configuration",
	}
	return t
}

// All runs every experiment with laptop-scale defaults.
func All(seed int64) []*Table {
	return []*Table{
		F1Pipeline(seed, 300),
		T1Blocking(seed, []int{200, 400}),
		T2BlockCleaning(seed, 400),
		T3MetaBlocking(seed, 300),
		F2Progressive(seed, 300),
		F3Benefits(seed, 300),
		T4NeighborEvidence(seed, 300),
		T5Parallel(seed, 400, []int{1, 2, 4, 8}),
		T7ParallelShared(seed, 400, []int{1, 2, 4, 8}),
		F4Scalability(seed, []int{100, 200, 400, 800}),
		T6DirtyER(seed, 300),
	}
}
