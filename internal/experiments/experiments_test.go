package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func cell(t *Table, row int, col string) string {
	for i, h := range t.Header {
		if h == col {
			return t.Rows[row][i]
		}
	}
	return ""
}

func num(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestF1PipelineShape(t *testing.T) {
	tab := F1Pipeline(1, 150)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows=%d, want 5 stages", len(tab.Rows))
	}
	// Meta-blocking candidates must be below raw blocking candidates.
	blockCands := num(t, cell(tab, 1, "candidates"))
	prunedCands := num(t, cell(tab, 3, "candidates"))
	if prunedCands >= blockCands {
		t.Errorf("meta-blocking did not reduce candidates: %v -> %v", blockCands, prunedCands)
	}
	// Final recall must be positive.
	if rec := num(t, cell(tab, 4, "PC")); rec <= 0.3 {
		t.Errorf("pipeline recall %v too low", rec)
	}
}

func TestT1Shape(t *testing.T) {
	tab := T1Blocking(1, []int{150})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	tokPC := num(t, cell(tab, 0, "PC"))
	tokRR := num(t, cell(tab, 0, "RR"))
	if tokPC < 0.95 {
		t.Errorf("token blocking PC=%v, want ≈1 in the center", tokPC)
	}
	if tokRR < 0.2 {
		// Raw token blocking over a Zipf-heavy vocabulary keeps big
		// head-token blocks; cleaning (T2) is what restores RR.
		t.Errorf("token blocking RR=%v, want some reduction", tokRR)
	}
	acPQ := num(t, cell(tab, 1, "PQ"))
	tokPQ := num(t, cell(tab, 0, "PQ"))
	if acPQ < tokPQ {
		t.Errorf("attribute clustering PQ=%v below token blocking PQ=%v", acPQ, tokPQ)
	}
}

func TestT2Shape(t *testing.T) {
	tab := T2BlockCleaning(2, 200)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	prev := num(t, cell(tab, 0, "candidates"))
	last := num(t, cell(tab, 3, "candidates"))
	if last >= prev {
		t.Errorf("purge+filter did not shrink candidates: %v -> %v", prev, last)
	}
	// PC after full cleaning must stay close to raw PC.
	if drop := num(t, cell(tab, 0, "PC")) - num(t, cell(tab, 3, "PC")); drop > 0.1 {
		t.Errorf("cleaning lost %v PC", drop)
	}
}

func TestT3Shape(t *testing.T) {
	tab := T3MetaBlocking(3, 200)
	if len(tab.Rows) != 20 { // 5 schemes × 4 prunings
		t.Fatalf("rows=%d, want 20", len(tab.Rows))
	}
	for i := range tab.Rows {
		keptFrac := num(t, cell(tab, i, "kept%"))
		if keptFrac <= 0 || keptFrac > 1 {
			t.Errorf("row %d kept%%=%v outside (0,1]", i, keptFrac)
		}
		pc := num(t, cell(tab, i, "PC"))
		if pc < 0.3 {
			t.Errorf("row %d (%s/%s) PC=%v collapsed", i, tab.Rows[i][0], tab.Rows[i][1], pc)
		}
	}
}

func TestF2Shape(t *testing.T) {
	tab := F2Progressive(4, 200)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	var minoanAUC, randomAUC float64
	for i := range tab.Rows {
		switch tab.Rows[i][0] {
		case "minoan":
			minoanAUC = num(t, cell(tab, i, "AUC"))
		case "random":
			randomAUC = num(t, cell(tab, i, "AUC"))
		}
	}
	if minoanAUC <= randomAUC {
		t.Errorf("minoan AUC %v does not beat random %v", minoanAUC, randomAUC)
	}
}

func TestF3Shape(t *testing.T) {
	tab := F3Benefits(5, 200)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	for i := range tab.Rows {
		quarter := num(t, cell(tab, i, "25%"))
		if quarter < 0.5 {
			t.Errorf("model %s realizes only %v of benefit at quarter budget", tab.Rows[i][0], quarter)
		}
		if fin := num(t, cell(tab, i, "final(abs)")); fin <= 0 {
			t.Errorf("model %s final benefit %v", tab.Rows[i][0], fin)
		}
	}
}

func TestT4Shape(t *testing.T) {
	tab := T4NeighborEvidence(7, 250)
	with := num(t, cell(tab, 0, "recall"))
	without := num(t, cell(tab, 1, "recall"))
	if with <= without {
		t.Errorf("update phase recall %v !> %v", with, without)
	}
	if disc := num(t, cell(tab, 0, "discovered")); disc <= 0 {
		t.Errorf("no discovered comparisons: %v", disc)
	}
}

func TestT5Shape(t *testing.T) {
	tab := T5Parallel(8, 150, []int{1, 4})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	// Timing is environment-dependent; assert structure only.
	if num(t, cell(tab, 0, "speedup")) != 1.0 {
		t.Errorf("first speedup row should be 1.0")
	}
	if num(t, cell(tab, 1, "total(ms)")) <= 0 {
		t.Error("non-positive wall time")
	}
}

func TestF4Shape(t *testing.T) {
	tab := F4Scalability(9, []int{100, 200})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	b1 := num(t, cell(tab, 0, "brute"))
	b2 := num(t, cell(tab, 1, "brute"))
	p1 := num(t, cell(tab, 0, "pruned"))
	p2 := num(t, cell(tab, 1, "pruned"))
	// Brute force quadruples when entities double; pruned comparisons
	// must grow far slower.
	if b2 < 3.5*b1 {
		t.Errorf("brute force not quadratic: %v -> %v", b1, b2)
	}
	if p2 > 3*p1 {
		t.Errorf("pruned comparisons grew too fast: %v -> %v", p1, p2)
	}
}

func TestT6Shape(t *testing.T) {
	tab := T6DirtyER(10, 200)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	if rec := num(t, cell(tab, 1, "PC/recall")); rec < 0.5 {
		t.Errorf("dirty ER recall %v too low", rec)
	}
}

func TestTablePrinting(t *testing.T) {
	tab := &Table{
		ID: "X", Title: "demo",
		Header: []string{"a", "bee"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  "note",
	}
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== X: demo ==", "a    bee", "333", "-- note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
