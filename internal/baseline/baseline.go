// Package baseline implements the comparison orders Minoan ER's
// progressive scheduler is evaluated against:
//
//   - Random order — the floor every progressive method must beat.
//   - Block order — pairs in the order blocking enumerates them (a
//     non-progressive batch workflow consuming candidates as they come).
//   - Weight order — meta-blocking edges by descending weight with no
//     update phase: "static progressive", the strongest non-iterative
//     order.
//   - Density order — an adaptation of progressive relational ER
//     (Altowim et al., PVLDB 2014) to the blocking world: blocks are
//     scheduled by expected duplicates per comparison (their mean edge
//     weight), maximizing the *quantity* of resolved pairs early; no
//     neighbor evidence, no discovery.
//
// Every baseline runs through Execute, which applies the same matcher
// under the same budget but performs no update phase — isolating the
// contribution of Minoan ER's scheduling and propagation.
package baseline

import (
	"math/rand"
	"sort"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/metablocking"
)

// RandomOrder returns the pairs in a seed-determined random order.
func RandomOrder(pairs []blocking.Pair, seed int64) []blocking.Pair {
	out := append([]blocking.Pair(nil), pairs...)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// BlockOrder returns the distinct pairs in block-enumeration order.
func BlockOrder(col *blocking.Collection) []blocking.Pair {
	return col.DistinctPairs()
}

// WeightOrder returns the pruned meta-blocking edges as a pair
// sequence; Prune already sorts by descending weight.
func WeightOrder(edges []metablocking.Edge) []blocking.Pair {
	out := make([]blocking.Pair, len(edges))
	for i, e := range edges {
		out[i] = blocking.MakePair(e.A, e.B)
	}
	return out
}

// DensityOrder schedules whole blocks by expected duplicates per
// comparison — the quantity-benefit strategy of progressive relational
// ER adapted to schema-agnostic blocks. Within a collection, blocks
// are ranked by mean pair weight (taken from the graph's edges);
// each block's pairs are then emitted in weight order, skipping pairs
// already emitted by an earlier block.
func DensityOrder(col *blocking.Collection, g *metablocking.Graph) []blocking.Pair {
	weight := make(map[blocking.Pair]float64, len(g.Edges))
	for _, e := range g.Edges {
		weight[blocking.Pair{A: e.A, B: e.B}] = e.Weight
	}
	type scored struct {
		idx     int
		density float64
	}
	blocksByDensity := make([]scored, 0, len(col.Blocks))
	pairsOf := make([][]blocking.Pair, len(col.Blocks))
	for bi := range col.Blocks {
		b := &col.Blocks[bi]
		var ps []blocking.Pair
		total := 0.0
		for x := 0; x < len(b.Entities); x++ {
			for y := x + 1; y < len(b.Entities); y++ {
				p := blocking.MakePair(b.Entities[x], b.Entities[y])
				w, ok := weight[p]
				if !ok {
					continue
				}
				ps = append(ps, p)
				total += w
			}
		}
		if len(ps) == 0 {
			continue
		}
		sort.Slice(ps, func(i, j int) bool {
			if weight[ps[i]] != weight[ps[j]] {
				return weight[ps[i]] > weight[ps[j]]
			}
			if ps[i].A != ps[j].A {
				return ps[i].A < ps[j].A
			}
			return ps[i].B < ps[j].B
		})
		pairsOf[bi] = ps
		blocksByDensity = append(blocksByDensity, scored{idx: bi, density: total / float64(len(ps))})
	}
	sort.SliceStable(blocksByDensity, func(i, j int) bool {
		if blocksByDensity[i].density != blocksByDensity[j].density {
			return blocksByDensity[i].density > blocksByDensity[j].density
		}
		return blocksByDensity[i].idx < blocksByDensity[j].idx
	})
	seen := make(map[blocking.Pair]struct{}, len(weight))
	var out []blocking.Pair
	for _, s := range blocksByDensity {
		for _, p := range pairsOf[s.idx] {
			if _, dup := seen[p]; dup {
				continue
			}
			seen[p] = struct{}{}
			out = append(out, p)
		}
	}
	return out
}

// Execute runs the matcher over the ordered pairs under a budget,
// without any update phase: no priority boosts, no discovery. When
// useNeighborEvidence is true the matcher still *sees* the evolving
// clusters when scoring (a fair middle ground); when false each pair
// is judged on value similarity alone.
func Execute(m *match.Matcher, order []blocking.Pair, useNeighborEvidence bool, budget int) *core.Result {
	cl := match.NewClustersFor(m.Collection())
	res := &core.Result{Clusters: cl}
	for _, p := range order {
		if budget > 0 && res.Comparisons >= budget {
			break
		}
		if cl.Same(p.A, p.B) {
			continue // transitively resolved; skip like the scheduler does
		}
		res.Comparisons++
		state := cl
		if !useNeighborEvidence {
			state = nil
		}
		score, matched := m.Decide(p.A, p.B, state)
		step := core.Step{A: p.A, B: p.B, Score: score, Matched: matched}
		if matched {
			res.Matches++
			step.Merged = cl.Merge(p.A, p.B)
		}
		res.Trace = append(res.Trace, step)
	}
	return res
}
