package baseline

import (
	"reflect"
	"testing"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/match"
	"repro/internal/metablocking"
	"repro/internal/tokenize"
)

type fixture struct {
	w     *datagen.World
	col   *blocking.Collection
	graph *metablocking.Graph
	edges []metablocking.Edge
	m     *match.Matcher
}

func setup(t *testing.T, seed int64, n int) *fixture {
	t.Helper()
	w, err := datagen.Generate(datagen.TwoKBs(seed, n, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	col := blocking.TokenBlocking(w.Collection, tokenize.Default()).Purge(0).Filter(0.8)
	g := metablocking.Build(col, metablocking.ECBS)
	edges := g.Prune(metablocking.WNP, metablocking.PruneOptions{Assignments: col.Assignments()})
	return &fixture{w: w, col: col, graph: g, edges: edges,
		m: match.NewMatcher(w.Collection, match.DefaultOptions())}
}

func TestRandomOrderIsPermutation(t *testing.T) {
	f := setup(t, 51, 60)
	pairs := f.col.DistinctPairs()
	shuffled := RandomOrder(pairs, 1)
	if len(shuffled) != len(pairs) {
		t.Fatalf("length changed: %d vs %d", len(shuffled), len(pairs))
	}
	set := map[blocking.Pair]int{}
	for _, p := range pairs {
		set[p]++
	}
	for _, p := range shuffled {
		set[p]--
	}
	for p, n := range set {
		if n != 0 {
			t.Fatalf("pair %v count %d after shuffle", p, n)
		}
	}
	// Deterministic per seed; different across seeds.
	again := RandomOrder(pairs, 1)
	if !reflect.DeepEqual(shuffled, again) {
		t.Error("same seed gave different order")
	}
	other := RandomOrder(pairs, 2)
	if reflect.DeepEqual(shuffled, other) && len(pairs) > 10 {
		t.Error("different seeds gave identical order")
	}
	// Input untouched.
	if !reflect.DeepEqual(pairs, f.col.DistinctPairs()) {
		t.Error("RandomOrder mutated its input")
	}
}

func TestWeightOrder(t *testing.T) {
	f := setup(t, 52, 60)
	order := WeightOrder(f.edges)
	if len(order) != len(f.edges) {
		t.Fatalf("length %d != %d", len(order), len(f.edges))
	}
	for i, e := range f.edges {
		if order[i] != blocking.MakePair(e.A, e.B) {
			t.Fatalf("order[%d]=%v != edge %v", i, order[i], e)
		}
	}
}

func TestDensityOrderCoversGraph(t *testing.T) {
	f := setup(t, 53, 80)
	order := DensityOrder(f.col, f.graph)
	if len(order) != f.graph.NumEdges() {
		t.Fatalf("density order has %d pairs, graph has %d edges", len(order), f.graph.NumEdges())
	}
	seen := map[blocking.Pair]bool{}
	for _, p := range order {
		if seen[p] {
			t.Fatalf("pair %v repeated", p)
		}
		seen[p] = true
	}
}

func TestExecuteBudgetAndSkip(t *testing.T) {
	f := setup(t, 54, 80)
	order := WeightOrder(f.edges)
	res := Execute(f.m, order, false, 30)
	if res.Comparisons != 30 && res.Comparisons != len(res.Trace) {
		t.Errorf("comparisons=%d trace=%d", res.Comparisons, len(res.Trace))
	}
	if res.Comparisons > 30 {
		t.Errorf("budget exceeded: %d", res.Comparisons)
	}
	// Unlimited run: no pair compared twice, transitive skips respected.
	full := Execute(f.m, order, false, 0)
	seen := map[blocking.Pair]bool{}
	for _, s := range full.Trace {
		p := blocking.MakePair(s.A, s.B)
		if seen[p] {
			t.Fatalf("pair %v compared twice", p)
		}
		seen[p] = true
	}
}

func TestSchedulerBeatsBaselinesEarly(t *testing.T) {
	// The core claim (F2): at small budgets, Minoan ER's scheduler
	// achieves at least the recall of random and block order.
	f := setup(t, 55, 250)
	budget := len(f.edges) / 4
	truthOutcomes := func(res *core.Result) []bool {
		out := make([]bool, len(res.Trace))
		for i, s := range res.Trace {
			out[i] = s.Matched && f.w.Truth.Match(s.A, s.B)
		}
		return out
	}
	total := f.w.Truth.CrossKBMatchingPairs(f.w.Collection)

	minoan := core.NewResolver(f.m, f.edges, core.Config{Budget: budget}).Run()
	random := Execute(f.m, RandomOrder(f.col.DistinctPairs(), 99), false, budget)
	blockO := Execute(f.m, BlockOrder(f.col), false, budget)

	rMinoan := eval.RecallCurve(truthOutcomes(minoan), total, 0).Final()
	rRandom := eval.RecallCurve(truthOutcomes(random), total, 0).Final()
	rBlock := eval.RecallCurve(truthOutcomes(blockO), total, 0).Final()

	if rMinoan < rRandom {
		t.Errorf("scheduler recall %.3f below random %.3f at budget %d", rMinoan, rRandom, budget)
	}
	if rMinoan < rBlock {
		t.Errorf("scheduler recall %.3f below block order %.3f at budget %d", rMinoan, rBlock, budget)
	}
}
