package kb

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/store"
)

// Cold descriptions: with a store attached, a Collection keeps only the
// id-addressed hot state resident — URIs, KB indices, liveness, the
// token cache — and moves description bodies (types, attributes, links)
// behind the storage boundary. Bodies page back in through a small LRU
// of decoded descriptions; everything that only needs identity or
// liveness (Evict, CrossKB, LiveIDsOfKB) never touches the store.
//
// Bodies live under 13-byte sort-preserving keys: the 'D' namespace
// tag, a big-endian compaction epoch, and the big-endian id. Epochs
// keep a compacted collection's rewrite separate from its predecessor:
// Compact writes survivors under epoch+1 while the old epoch stays
// intact until the swap commits and DropCold clears it — the same
// prepare/commit shape as the WAL checkpoint it rides along with.

// descTag is the store key namespace for description bodies.
const descTag = 'D'

// DefaultDescCache is the default capacity of the decoded-description
// LRU when AttachStore is given no size.
const DefaultDescCache = 256

func descKey(epoch uint32, id int) []byte {
	var k [13]byte
	k[0] = descTag
	binary.BigEndian.PutUint32(k[1:5], epoch)
	binary.BigEndian.PutUint64(k[5:], uint64(id))
	return k[:]
}

func epochPrefix(epoch uint32) []byte {
	var k [5]byte
	k[0] = descTag
	binary.BigEndian.PutUint32(k[1:5], epoch)
	return k[:]
}

// descCache is the mutex-wrapped LRU of decoded descriptions. The lock
// matters: WarmTokens pages bodies in from worker goroutines.
type descCache struct {
	mu  sync.Mutex
	lru *store.LRU[int, *Description]
}

func newDescCache(size int) *descCache {
	if size <= 0 {
		size = DefaultDescCache
	}
	return &descCache{lru: store.NewLRU[int, *Description](size)}
}

func (dc *descCache) get(id int) (*Description, bool) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	return dc.lru.Get(id)
}

func (dc *descCache) put(id int, d *Description) {
	dc.mu.Lock()
	dc.lru.Put(id, d)
	dc.mu.Unlock()
}

func (dc *descCache) remove(id int) {
	dc.mu.Lock()
	dc.lru.Remove(id)
	dc.mu.Unlock()
}

func (dc *descCache) counters() (hits, misses int64) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	return dc.lru.Counters()
}

// AttachStore moves description bodies behind the storage boundary:
// every body already resident is spilled to the store under the given
// epoch, and every later Add writes through. cacheSize bounds the LRU
// of decoded descriptions (≤ 0 means DefaultDescCache).
func (c *Collection) AttachStore(s store.Store, epoch uint32, cacheSize int) error {
	c.cold = s
	c.epoch = epoch
	c.cacheSize = cacheSize
	c.cache = newDescCache(cacheSize)
	c.uris = make([]string, len(c.descs))
	for id, d := range c.descs {
		if d == nil {
			continue
		}
		c.uris[id] = d.URI
		if err := s.Put(descKey(epoch, id), encodeDesc(d)); err != nil {
			return err
		}
		c.descs[id] = nil
	}
	return nil
}

// Spilled reports whether description bodies live behind a store.
func (c *Collection) Spilled() bool { return c.cold != nil }

// ColdEpoch returns the store epoch this collection's bodies live under.
func (c *Collection) ColdEpoch() uint32 { return c.epoch }

// DropCold deletes this collection's description bodies from the store
// — called on the superseded collection once a compaction swap commits,
// or on the abandoned one when the swap fails.
func (c *Collection) DropCold() error {
	if c.cold == nil {
		return nil
	}
	return store.DropPrefix(c.cold, epochPrefix(c.epoch))
}

// CacheStats returns the decoded-description LRU's cumulative hit and
// miss counts (zero without a store).
func (c *Collection) CacheStats() (hits, misses int64) {
	if c.cache == nil {
		return 0, 0
	}
	return c.cache.counters()
}

// ColdErr returns the first store error the collection absorbed on a
// path with no error return (a page-in inside Desc, a write-through
// inside Add). The session checks it after every mutation wave and
// poisons itself: once a cold read has been answered with a stub, the
// in-memory state can no longer be trusted to match the log.
func (c *Collection) ColdErr() error {
	c.coldMu.Lock()
	defer c.coldMu.Unlock()
	return c.coldErr
}

func (c *Collection) setColdErr(err error) {
	c.coldMu.Lock()
	if c.coldErr == nil {
		c.coldErr = err
	}
	c.coldMu.Unlock()
}

// pageIn resolves a spilled description: LRU first, then a store read
// and decode. Safe under concurrent readers (WarmTokens workers).
func (c *Collection) pageIn(id int) *Description {
	if d, ok := c.cache.get(id); ok {
		return d
	}
	buf, ok, err := c.cold.Get(descKey(c.epoch, id))
	if err == nil && !ok {
		err = fmt.Errorf("kb: cold description %d missing from store (epoch %d)", id, c.epoch)
	}
	var d *Description
	if err == nil {
		d, err = decodeDesc(buf, c.uris[id], c.kbNames[c.kbOf[id]])
	}
	if err != nil {
		c.setColdErr(err)
		return &Description{URI: c.uris[id], KB: c.kbNames[c.kbOf[id]]}
	}
	c.cache.put(id, d)
	return d
}

// putCold writes a description body through to the store.
func (c *Collection) putCold(id int, d *Description) {
	if err := c.cold.Put(descKey(c.epoch, id), encodeDesc(d)); err != nil {
		c.setColdErr(err)
	}
}

// concatStrs and concatAttrs build the merged slices of a read-modify-
// write Add on a spilled description: always a fresh backing array, so
// the previously cached value is never mutated under a reader.
func concatStrs(a, b []string) []string {
	if len(a)+len(b) == 0 {
		return nil
	}
	out := make([]string, 0, len(a)+len(b))
	return append(append(out, a...), b...)
}

func concatAttrs(a, b []Attribute) []Attribute {
	if len(a)+len(b) == 0 {
		return nil
	}
	out := make([]Attribute, 0, len(a)+len(b))
	return append(append(out, a...), b...)
}

// encodeDesc serializes a description body — types, attributes, links,
// each a uvarint count of length-prefixed strings. URI and KB are not
// encoded: they stay in the hot arrays and are re-attached on decode.
func encodeDesc(d *Description) []byte {
	size := 8
	for _, s := range d.Types {
		size += len(s) + 2
	}
	for _, a := range d.Attrs {
		size += len(a.Predicate) + len(a.Value) + 4
	}
	for _, s := range d.Links {
		size += len(s) + 2
	}
	b := make([]byte, 0, size)
	b = binary.AppendUvarint(b, uint64(len(d.Types)))
	for _, s := range d.Types {
		b = appendColdStr(b, s)
	}
	b = binary.AppendUvarint(b, uint64(len(d.Attrs)))
	for _, a := range d.Attrs {
		b = appendColdStr(b, a.Predicate)
		b = appendColdStr(b, a.Value)
	}
	b = binary.AppendUvarint(b, uint64(len(d.Links)))
	for _, s := range d.Links {
		b = appendColdStr(b, s)
	}
	return b
}

func appendColdStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func decodeDesc(buf []byte, uri, kbName string) (*Description, error) {
	d := &Description{URI: uri, KB: kbName}
	n, buf, err := readColdCount(buf)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var s string
		if s, buf, err = readColdStr(buf); err != nil {
			return nil, err
		}
		d.Types = append(d.Types, s)
	}
	if n, buf, err = readColdCount(buf); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var p, v string
		if p, buf, err = readColdStr(buf); err != nil {
			return nil, err
		}
		if v, buf, err = readColdStr(buf); err != nil {
			return nil, err
		}
		d.Attrs = append(d.Attrs, Attribute{Predicate: p, Value: v})
	}
	if n, buf, err = readColdCount(buf); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var s string
		if s, buf, err = readColdStr(buf); err != nil {
			return nil, err
		}
		d.Links = append(d.Links, s)
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("kb: %d trailing bytes after description body", len(buf))
	}
	return d, nil
}

func readColdCount(buf []byte) (int, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 || v > uint64(len(buf)) {
		return 0, nil, fmt.Errorf("kb: corrupt description body (count)")
	}
	return int(v), buf[n:], nil
}

func readColdStr(buf []byte) (string, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 || v > uint64(len(buf)-n) {
		return "", nil, fmt.Errorf("kb: corrupt description body (string)")
	}
	return string(buf[n : n+int(v)]), buf[n+int(v):], nil
}
