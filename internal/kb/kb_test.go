package kb

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/tokenize"
)

const sampleNT = `
<http://kb1.org/Paris> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://kb1.org/City> .
<http://kb1.org/Paris> <http://www.w3.org/2000/01/rdf-schema#label> "Paris" .
<http://kb1.org/Paris> <http://kb1.org/country> <http://kb1.org/France> .
<http://kb1.org/Paris> <http://kb1.org/population> "2161000" .
<http://kb1.org/France> <http://www.w3.org/2000/01/rdf-schema#label> "France" .
<http://kb1.org/Paris> <http://www.w3.org/2002/07/owl#sameAs> <http://kb2.org/paris_fr> .
`

func loadSample(t *testing.T) *Collection {
	t.Helper()
	c := NewCollection()
	if err := c.Load("kb1", strings.NewReader(sampleNT)); err != nil {
		t.Fatalf("Load: %v", err)
	}
	return c
}

func TestLoadTriples(t *testing.T) {
	c := loadSample(t)
	if c.Len() != 2 {
		t.Fatalf("Len=%d, want 2 (Paris, France)", c.Len())
	}
	id, ok := c.IDOf("kb1", "http://kb1.org/Paris")
	if !ok {
		t.Fatal("Paris not found")
	}
	d := c.Desc(id)
	if len(d.Types) != 1 || d.Types[0] != "http://kb1.org/City" {
		t.Errorf("Types=%v", d.Types)
	}
	if len(d.Attrs) != 2 {
		t.Errorf("Attrs=%v, want label+population", d.Attrs)
	}
	// owl:sameAs must not become a link; country must.
	if len(d.Links) != 1 || d.Links[0] != "http://kb1.org/France" {
		t.Errorf("Links=%v", d.Links)
	}
	if d.Label() != "Paris" {
		t.Errorf("Label=%q", d.Label())
	}
}

func TestLabelFallsBackToURI(t *testing.T) {
	d := &Description{URI: "http://kb1.org/Berlin_City", KB: "kb1"}
	if d.Label() != "Berlin_City" {
		t.Errorf("Label=%q, want URI infix", d.Label())
	}
}

func TestAddMerges(t *testing.T) {
	c := NewCollection()
	id1 := c.Add(&Description{URI: "u", KB: "a", Attrs: []Attribute{{"p", "v1"}}})
	id2 := c.Add(&Description{URI: "u", KB: "a", Attrs: []Attribute{{"p", "v2"}}})
	if id1 != id2 {
		t.Fatalf("same KB+URI got distinct ids %d, %d", id1, id2)
	}
	if len(c.Desc(id1).Attrs) != 2 {
		t.Errorf("merge lost attributes: %v", c.Desc(id1).Attrs)
	}
	// Same URI in a different KB is a distinct description.
	id3 := c.Add(&Description{URI: "u", KB: "b"})
	if id3 == id1 {
		t.Error("cross-KB same URI collapsed")
	}
	if !c.CrossKB(id1, id3) || c.CrossKB(id1, id2) {
		t.Error("CrossKB wrong")
	}
	if c.NumKBs() != 2 || c.KBName(0) != "a" || c.KBName(1) != "b" {
		t.Errorf("KB bookkeeping wrong: %d %s %s", c.NumKBs(), c.KBName(0), c.KBName(1))
	}
}

func TestNeighbors(t *testing.T) {
	c := loadSample(t)
	paris, _ := c.IDOf("kb1", "http://kb1.org/Paris")
	france, _ := c.IDOf("kb1", "http://kb1.org/France")
	if got := c.Neighbors(paris); !reflect.DeepEqual(got, []int{france}) {
		t.Errorf("Neighbors(Paris)=%v, want [%d]", got, france)
	}
	if got := c.Neighbors(france); got != nil {
		t.Errorf("Neighbors(France)=%v, want nil", got)
	}
}

func TestNeighborsSkipsDanglingAndSelf(t *testing.T) {
	c := NewCollection()
	id := c.Add(&Description{URI: "a", KB: "k", Links: []string{"missing", "a", "b", "b"}})
	c.Add(&Description{URI: "b", KB: "k"})
	got := c.Neighbors(id)
	b, _ := c.IDOf("k", "b")
	if !reflect.DeepEqual(got, []int{b}) {
		t.Errorf("Neighbors=%v, want [%d]", got, b)
	}
}

func TestDescriptionTokens(t *testing.T) {
	d := &Description{
		URI: "http://kb1.org/New_York_City",
		KB:  "kb1",
		Attrs: []Attribute{
			{"http://kb1.org/label", "New York"},
			{"http://kb1.org/nick", "Big Apple"},
		},
	}
	got := d.Tokens(tokenize.Default())
	want := []string{"new", "york", "city", "big", "apple"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokens=%v, want %v", got, want)
	}
}

func TestCollectionTokenCache(t *testing.T) {
	c := loadSample(t)
	paris, _ := c.IDOf("kb1", "http://kb1.org/Paris")
	opts := tokenize.Default()
	t1 := c.Tokens(paris, opts)
	t2 := c.Tokens(paris, opts)
	if !reflect.DeepEqual(t1, t2) {
		t.Error("cache returned different tokens")
	}
	// Changing options invalidates the cache.
	opts2 := opts
	opts2.MinLength = 6 // drops "paris" (5 runes)
	t3 := c.Tokens(paris, opts2)
	if reflect.DeepEqual(t1, t3) {
		t.Error("options change did not rebuild cache")
	}
}

// TestAddPreservesTokenCache pins the append-only cache discipline
// incremental ingestion relies on: adding a fresh description leaves
// existing cached token slices untouched (same backing array), and a
// merge-Add invalidates only the merged id's slot.
func TestAddPreservesTokenCache(t *testing.T) {
	c := loadSample(t)
	opts := tokenize.Default()
	paris, _ := c.IDOf("kb1", "http://kb1.org/Paris")
	before := c.Tokens(paris, opts)

	// Appending a new description must not reset the cache.
	nid := c.Add(&Description{URI: "http://kb1.org/Nice", KB: "kb1",
		Attrs: []Attribute{{"http://kb1.org/label", "Nice Riviera"}}})
	after := c.Tokens(paris, opts)
	if len(before) == 0 || &before[0] != &after[0] {
		t.Error("Add of a new description rebuilt the existing token cache")
	}
	if got := c.Tokens(nid, opts); len(got) == 0 {
		t.Errorf("new id has no tokens: %v", got)
	}

	// A merge-Add invalidates the merged id only.
	nice := c.Tokens(nid, opts)
	c.Add(&Description{URI: "http://kb1.org/Paris", KB: "kb1",
		Attrs: []Attribute{{"http://kb1.org/nick", "lutetia"}}})
	merged := c.Tokens(paris, opts)
	found := false
	for _, tok := range merged {
		if tok == "lutetia" {
			found = true
		}
	}
	if !found {
		t.Errorf("merged tokens %v missing new evidence", merged)
	}
	if got := c.Tokens(nid, opts); &got[0] != &nice[0] {
		t.Error("merge-Add invalidated an unrelated id's cache entry")
	}
}

// TestCompact pins the id-space compaction contract: live descriptions
// move into a fresh collection under dense ids in old-id order, the
// returned mapping marks tombstones with -1, lookups and KB bookkeeping
// work against the new ids, the token cache is carried over (no
// re-tokenization), and the compacted collection starts with no
// tombstones and nothing pending.
func TestCompact(t *testing.T) {
	c := NewCollection()
	opts := tokenize.Default()
	var ids []int
	for _, u := range []string{"a", "b", "c", "d", "e"} {
		ids = append(ids, c.Add(&Description{URI: u, KB: "k1",
			Attrs: []Attribute{{"p", "value " + u}}}))
	}
	other := c.Add(&Description{URI: "a", KB: "k2",
		Attrs: []Attribute{{"p", "other kb"}}})
	cached := c.Tokens(ids[2], opts) // warm one slot of the cache
	c.Evict(ids[1])
	c.Evict(ids[3])
	c.TakeEvicted() // a session would have consumed these already

	nc, oldToNew := c.Compact()
	if len(oldToNew) != c.Len() {
		t.Fatalf("mapping covers %d ids, want %d", len(oldToNew), c.Len())
	}
	want := []int{0, -1, 1, -1, 2, 3}
	if !reflect.DeepEqual(oldToNew, want) {
		t.Fatalf("oldToNew=%v, want %v (dense, old-id order, -1 for tombstones)", oldToNew, want)
	}
	if nc.Len() != 4 || nc.NumAlive() != 4 || nc.Tombstones() != 0 {
		t.Fatalf("compacted: Len=%d NumAlive=%d Tombstones=%d, want 4/4/0",
			nc.Len(), nc.NumAlive(), nc.Tombstones())
	}
	if nc.HasMerged() || nc.HasEvicted() {
		t.Fatal("compacted collection starts with pending merges or evictions")
	}
	for oid, nid := range oldToNew {
		if nid < 0 {
			continue
		}
		if nc.Desc(nid) != c.Desc(oid) {
			t.Fatalf("id %d→%d does not share the description", oid, nid)
		}
	}
	if got, ok := nc.IDOf("k2", "a"); !ok || got != oldToNew[other] {
		t.Fatalf("IDOf(k2,a)=%d,%v — byURI index broken", got, ok)
	}
	if nc.NumKBs() != 2 || nc.NumLiveKBs() != 2 {
		t.Fatalf("KB bookkeeping: NumKBs=%d NumLiveKBs=%d, want 2/2", nc.NumKBs(), nc.NumLiveKBs())
	}
	// The warmed cache slot must carry over — same backing array, so
	// compaction never pays a re-tokenization.
	carried := nc.Tokens(oldToNew[ids[2]], opts)
	if len(cached) == 0 || &carried[0] != &cached[0] {
		t.Fatal("token cache not carried across compaction")
	}
	// The original is untouched — compaction is a pure read.
	if c.NumAlive() != 4 || c.Tombstones() != 2 {
		t.Fatalf("source mutated: NumAlive=%d Tombstones=%d", c.NumAlive(), c.Tombstones())
	}
}

func TestTakeMerged(t *testing.T) {
	c := loadSample(t)
	if got := c.TakeMerged(); got != nil {
		t.Fatalf("fresh collection reports merged ids %v", got)
	}
	paris, _ := c.IDOf("kb1", "http://kb1.org/Paris")
	c.Add(&Description{URI: "http://kb1.org/Paris", KB: "kb1"})
	c.Add(&Description{URI: "http://kb1.org/Paris", KB: "kb1"})
	c.Add(&Description{URI: "http://kb1.org/Brandnew", KB: "kb1"})
	got := c.TakeMerged()
	if !reflect.DeepEqual(got, []int{paris}) {
		t.Fatalf("TakeMerged=%v, want [%d] (deduplicated, new ids excluded)", got, paris)
	}
	if again := c.TakeMerged(); again != nil {
		t.Fatalf("TakeMerged did not reset: %v", again)
	}
}

func TestStats(t *testing.T) {
	c := loadSample(t)
	s := c.Stats()
	if s.Descriptions != 2 || s.KBs != 1 {
		t.Errorf("Stats=%+v", s)
	}
	if s.Attributes != 3 || s.Links != 1 {
		t.Errorf("Stats=%+v", s)
	}
	if !strings.Contains(s.String(), "descriptions=2") {
		t.Errorf("String=%q", s.String())
	}
}

func TestGroundTruthClasses(t *testing.T) {
	g := NewGroundTruth()
	g.AddClass(0, 1)
	g.AddClass(2, 3)
	g.AddClass(1, 2) // merges both classes
	if !g.Match(0, 3) {
		t.Error("merged class not matching")
	}
	if g.Match(0, 4) || g.Match(4, 5) {
		t.Error("unknown ids must not match")
	}
	if g.ClassOf(0) != g.ClassOf(3) {
		t.Error("ClassOf differs within a class")
	}
	if g.ClassOf(99) != -1 {
		t.Error("unknown ClassOf should be -1")
	}
	classes := g.Classes()
	if len(classes) != 1 || !reflect.DeepEqual(classes[0], []int{0, 1, 2, 3}) {
		t.Errorf("Classes=%v", classes)
	}
	if g.NumMatchingPairs() != 6 {
		t.Errorf("NumMatchingPairs=%d, want 6", g.NumMatchingPairs())
	}
}

func TestGroundTruthCrossKBPairs(t *testing.T) {
	c := NewCollection()
	a0 := c.Add(&Description{URI: "x", KB: "a"})
	a1 := c.Add(&Description{URI: "y", KB: "a"})
	b0 := c.Add(&Description{URI: "x", KB: "b"})
	g := NewGroundTruth()
	g.AddClass(a0, a1, b0) // 3 pairs total, 2 cross-KB
	if got := g.CrossKBMatchingPairs(c); got != 2 {
		t.Errorf("CrossKBMatchingPairs=%d, want 2", got)
	}
}

func TestLoadSameAs(t *testing.T) {
	c := NewCollection()
	c.Add(&Description{URI: "http://kb1.org/Paris", KB: "kb1"})
	c.Add(&Description{URI: "http://kb2.org/paris_fr", KB: "kb2"})
	triples, err := rdf.ParseString(
		`<http://kb1.org/Paris> <http://www.w3.org/2002/07/owl#sameAs> <http://kb2.org/paris_fr> .
<http://kb1.org/Paris> <http://www.w3.org/2002/07/owl#sameAs> <http://kb3.org/missing> .`)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroundTruth()
	missing := g.LoadSameAs(c, triples)
	if missing != 1 {
		t.Errorf("missing=%d, want 1", missing)
	}
	a, _ := c.IDOf("kb1", "http://kb1.org/Paris")
	b, _ := c.IDOf("kb2", "http://kb2.org/paris_fr")
	if !g.Match(a, b) {
		t.Error("sameAs pair not matched")
	}
}

func TestParseSameAs(t *testing.T) {
	c := NewCollection()
	c.Add(&Description{URI: "a", KB: "k1"})
	c.Add(&Description{URI: "b", KB: "k2"})
	g := NewGroundTruth()
	_, err := g.ParseSameAs(c, strings.NewReader(`<a> <http://www.w3.org/2002/07/owl#sameAs> <b> .`))
	if err != nil {
		t.Fatalf("ParseSameAs: %v", err)
	}
	if g.NumMatchingPairs() != 1 {
		t.Errorf("pairs=%d", g.NumMatchingPairs())
	}
	if _, err := g.ParseSameAs(c, strings.NewReader("garbage")); err == nil {
		t.Error("malformed stream accepted")
	}
}

func TestLoadErrors(t *testing.T) {
	c := NewCollection()
	if err := c.Load("bad", strings.NewReader("not ntriples")); err == nil {
		t.Error("Load accepted garbage")
	}
}

func TestDebugDump(t *testing.T) {
	c := loadSample(t)
	var sb strings.Builder
	c.DebugDump(&sb, 1)
	out := sb.String()
	if !strings.Contains(out, "Paris") || strings.Contains(out, "France\" ") {
		t.Errorf("DebugDump output unexpected:\n%s", out)
	}
}

func TestBlankNodeSubjects(t *testing.T) {
	c := NewCollection()
	err := c.Load("k", strings.NewReader(`_:b1 <http://p/label> "anon" .`))
	if err != nil {
		t.Fatal(err)
	}
	id, ok := c.IDOf("k", "_:b1")
	if !ok {
		t.Fatal("blank subject not loaded")
	}
	if c.Desc(id).Attrs[0].Value != "anon" {
		t.Error("blank node attrs wrong")
	}
}

func TestBuildProfile(t *testing.T) {
	c := loadSample(t)
	p := c.BuildProfile(tokenize.Default())
	if len(p.PerKB) != 1 || p.PerKB[0].Name != "kb1" {
		t.Fatalf("PerKB=%v", p.PerKB)
	}
	kp := p.PerKB[0]
	if kp.Descriptions != 2 || kp.Predicates != 2 {
		t.Errorf("profile=%+v", kp)
	}
	if kp.AttrsPerDesc != 1.5 { // 3 attrs over 2 descriptions
		t.Errorf("AttrsPerDesc=%v", kp.AttrsPerDesc)
	}
	if p.DistinctTokens == 0 {
		t.Error("no tokens profiled")
	}
	// Paris links France: one description with degree 1 each.
	if p.DegreeHistogram[1] != 2 {
		t.Errorf("degree histogram=%v", p.DegreeHistogram)
	}
	var sb strings.Builder
	p.Fprint(&sb)
	if !strings.Contains(sb.String(), "kb1") || !strings.Contains(sb.String(), "distinct tokens") {
		t.Errorf("Fprint output:\n%s", sb.String())
	}
}

func TestLoadQuads(t *testing.T) {
	c := NewCollection()
	doc := `
<http://dbp/Paris> <http://dbp/name> "Paris" <http://graphs/dbp> .
<http://geo/2988> <http://geo/label> "Paris" <http://graphs/geo> .
<http://x/extra> <http://x/p> "default graph" .
`
	if err := c.LoadQuads("crawl", strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	if c.NumKBs() != 3 {
		t.Fatalf("NumKBs=%d, want 3 (two graphs + default)", c.NumKBs())
	}
	a, okA := c.IDOf("http://graphs/dbp", "http://dbp/Paris")
	b, okB := c.IDOf("http://graphs/geo", "http://geo/2988")
	if !okA || !okB {
		t.Fatal("graph-named KBs missing")
	}
	if !c.CrossKB(a, b) {
		t.Error("different graphs should be different KBs")
	}
	if _, ok := c.IDOf("crawl", "http://x/extra"); !ok {
		t.Error("default-graph statement lost")
	}
	if err := c.LoadQuads("crawl", strings.NewReader("garbage")); err == nil {
		t.Error("malformed quads accepted")
	}
}

func TestWarmTokens(t *testing.T) {
	c := loadSample(t)
	opts := tokenize.Default()
	// The warmed cache must hold exactly what lazy Tokens computes.
	var want [][]string
	for id := 0; id < c.Len(); id++ {
		want = append(want, c.descs[id].Tokens(opts))
	}
	got := c.WarmTokens(opts, 4)
	if len(got) != c.Len() {
		t.Fatalf("WarmTokens returned %d rows, want %d", len(got), c.Len())
	}
	for id := range want {
		if len(want[id]) == 0 && len(got[id]) == 0 {
			continue // lazy nil vs warmed empty slice both mean "no tokens"
		}
		if !reflect.DeepEqual(got[id], want[id]) {
			t.Errorf("id %d: warmed tokens %v, want %v", id, got[id], want[id])
		}
	}
	// After warming, concurrent Tokens reads are cache hits — race-free
	// under -race by construction.
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for id := 0; id < c.Len(); id++ {
				c.Tokens(id, opts)
			}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	// Changing options invalidates and rewarms.
	plain := tokenize.Options{MinLength: 1}
	rewarmed := c.WarmTokens(plain, 2)
	for id := 0; id < c.Len(); id++ {
		if !reflect.DeepEqual(rewarmed[id], c.Tokens(id, plain)) {
			t.Errorf("id %d: rewarmed tokens diverge from Tokens", id)
		}
	}
}

func TestEvictTombstones(t *testing.T) {
	c := NewCollection()
	add := func(kbName, uri string, links ...string) int {
		return c.Add(&Description{URI: uri, KB: kbName, Links: links,
			Attrs: []Attribute{{Predicate: "p", Value: "value of " + uri}}})
	}
	a0 := add("alpha", "http://a/0", "http://a/1")
	a1 := add("alpha", "http://a/1")
	b0 := add("betaKB", "http://b/0")
	b1 := add("betaKB", "http://a/1") // same URI, other KB

	if !c.Evict(a1) {
		t.Fatal("evicting a live id reported false")
	}
	if c.Evict(a1) || c.Evict(-1) || c.Evict(99) {
		t.Fatal("evicting dead or out-of-range ids must be a no-op")
	}
	if c.Alive(a1) || !c.Alive(a0) {
		t.Fatal("tombstone flags wrong")
	}
	if c.NumAlive() != 3 || c.Len() != 4 {
		t.Fatalf("NumAlive=%d Len=%d, want 3/4", c.NumAlive(), c.Len())
	}
	if _, ok := c.IDOf("alpha", "http://a/1"); ok {
		t.Fatal("evicted description still resolves by KB+URI")
	}
	if ids := c.IDsOfURI("http://a/1"); len(ids) != 1 || ids[0] != b1 {
		t.Fatalf("IDsOfURI after evict = %v, want [%d]", ids, b1)
	}
	if ns := c.Neighbors(a0); len(ns) != 0 {
		t.Fatalf("link to an evicted description still resolves: %v", ns)
	}
	if got := c.TakeEvicted(); len(got) != 1 || got[0] != a1 {
		t.Fatalf("TakeEvicted = %v, want [%d]", got, a1)
	}
	if c.HasEvicted() {
		t.Fatal("TakeEvicted did not drain")
	}

	// KB liveness: evicting betaKB's only member drops the live count.
	if c.NumLiveKBs() != 2 {
		t.Fatalf("NumLiveKBs = %d, want 2", c.NumLiveKBs())
	}
	c.Evict(b0)
	c.Evict(b1)
	if c.NumLiveKBs() != 1 {
		t.Fatalf("NumLiveKBs after emptying betaKB = %d, want 1", c.NumLiveKBs())
	}
	if !c.HasKB("betaKB") || c.HasKB("nosuch") {
		t.Fatal("HasKB wrong")
	}
	if ids := c.LiveIDsOfKB("betaKB"); ids != nil {
		t.Fatalf("LiveIDsOfKB of an emptied KB = %v, want nil", ids)
	}
	if ids := c.LiveIDsOfKB("alpha"); len(ids) != 1 || ids[0] != a0 {
		t.Fatalf("LiveIDsOfKB(alpha) = %v", ids)
	}
	if st := c.Stats(); st.Descriptions != 1 || st.KBs != 1 {
		t.Fatalf("stats over survivors = %+v", st)
	}

	// Re-adding an evicted KB+URI opens a fresh id; the KB comes back
	// to life.
	back := c.Add(&Description{URI: "http://b/0", KB: "betaKB"})
	if back == b0 {
		t.Fatal("re-add reused a tombstoned id")
	}
	if !c.Alive(back) || c.NumLiveKBs() != 2 {
		t.Fatalf("re-added description not live (liveKBs=%d)", c.NumLiveKBs())
	}

	// Token cache entries of tombstones can be dropped and lazily
	// rebuilt for live ids only.
	opts := tokenize.Default()
	c.Tokens(a0, opts)
	c.DropTokens([]int{a0, a1, -3, 99})
	if toks := c.Tokens(a0, opts); len(toks) == 0 {
		t.Fatal("dropped live id no longer tokenizes")
	}
}
