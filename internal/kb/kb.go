// Package kb models entity descriptions and knowledge bases for entity
// resolution over the Web of Data.
//
// A Description is the unit of resolution: one subject URI together
// with its attribute–value pairs (literals) and its links to other
// descriptions (object properties). A Collection assigns dense integer
// ids to descriptions across one or more KBs, indexes neighbors, and
// caches token evidence — everything downstream (blocking,
// meta-blocking, matching, progressive scheduling) works on ids.
package kb

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/tokenize"
)

// Attribute is one predicate–value pair of a description. Only literal
// values carry token evidence; object properties become Links instead.
// The JSON tags are part of the public wire format (minoaner.Attribute
// aliases this type); golden fixtures pin them.
type Attribute struct {
	Predicate string `json:"predicate"`
	Value     string `json:"value"`
}

// Description is one entity description: the RDF resource rooted at URI
// within a single knowledge base.
type Description struct {
	URI   string
	KB    string      // name of the source knowledge base
	Types []string    // rdf:type objects
	Attrs []Attribute // literal-valued predicates
	Links []string    // URIs of linked (neighbor) descriptions
}

// Label returns the best human-readable name: the first rdfs:label
// attribute if present, else the URI infix.
func (d *Description) Label() string {
	for _, a := range d.Attrs {
		if a.Predicate == rdf.RDFSLabel {
			return a.Value
		}
	}
	return tokenize.URIInfix(d.URI)
}

// Tokens returns the description's schema-agnostic token evidence:
// tokens of every attribute value plus the URI infix tokens,
// deduplicated, in first-occurrence order.
func (d *Description) Tokens(opts tokenize.Options) []string {
	seen := make(map[string]struct{}, 16)
	var out []string
	add := func(toks []string) {
		for _, t := range toks {
			if _, dup := seen[t]; dup {
				continue
			}
			seen[t] = struct{}{}
			out = append(out, t)
		}
	}
	add(tokenize.URITokens(d.URI, opts))
	for _, a := range d.Attrs {
		add(tokenize.Tokens(a.Value, opts))
	}
	return out
}

// Collection is an id-addressed set of descriptions drawn from one or
// more knowledge bases. Ids are dense, 0..Len()-1, assigned in insertion
// order. Ids are never reused: removal is by tombstone (Evict), which
// keeps every surviving id — and therefore every downstream structure
// indexed by id — stable while the evicted description stops resolving
// by URI, stops linking, and stops counting.
type Collection struct {
	descs    []*Description
	byURI    map[string]int
	anyURI   map[string][]int // URI → ids across KBs
	kbOf     []int            // id → kb index
	kbNames  []string         // kb index → name
	kbIndex  map[string]int
	kbLive   []int      // kb index → live description count
	liveKBs  int        // KBs with at least one live description
	tokens   [][]string // id → cached token evidence (built lazily)
	tokOpts  tokenize.Options
	hasToken bool
	merged   []int  // existing ids extended by Add since the last TakeMerged
	dead     []bool // id → tombstoned by Evict (nil while nothing evicted)
	numDead  int
	evicted  []int // ids tombstoned since the last TakeEvicted

	// Cold-description state (see cold.go); all nil/zero without a store.
	cold      store.Store
	epoch     uint32     // store key epoch for this collection's bodies
	uris      []string   // id → URI, kept hot while bodies are spilled
	cache     *descCache // LRU of decoded descriptions
	cacheSize int
	coldMu    sync.Mutex
	coldErr   error // first store failure on a no-error-return path
}

// NewCollection returns an empty collection.
func NewCollection() *Collection {
	return &Collection{
		byURI:   make(map[string]int),
		anyURI:  make(map[string][]int),
		kbIndex: make(map[string]int),
	}
}

// Add inserts a description and returns its id. Adding a URI that
// already exists in the same KB merges the attributes, types and links
// into the existing description and returns its id.
//
// The token cache survives an Add: a fresh id gets an empty slot
// (tokenized lazily), and a merged id has only its own slot
// invalidated — the append-only discipline incremental ingestion
// relies on to keep delta tokenization proportional to the delta.
func (c *Collection) Add(d *Description) int {
	if id, ok := c.byURI[key(d.KB, d.URI)]; ok {
		if c.cold != nil {
			// Spilled bodies are immutable once decoded (concurrent
			// readers may hold the cached pointer): merge into a fresh
			// description, write it through, and replace the cache slot.
			old := c.Desc(id)
			nd := &Description{URI: old.URI, KB: old.KB,
				Types: concatStrs(old.Types, d.Types),
				Attrs: concatAttrs(old.Attrs, d.Attrs),
				Links: concatStrs(old.Links, d.Links),
			}
			c.putCold(id, nd)
			c.cache.put(id, nd)
		} else {
			ex := c.descs[id]
			ex.Types = append(ex.Types, d.Types...)
			ex.Attrs = append(ex.Attrs, d.Attrs...)
			ex.Links = append(ex.Links, d.Links...)
		}
		if c.hasToken {
			c.tokens[id] = nil
		}
		c.merged = append(c.merged, id)
		return id
	}
	id := len(c.descs)
	if c.cold != nil {
		c.descs = append(c.descs, nil)
		c.uris = append(c.uris, d.URI)
		c.putCold(id, d)
		c.cache.put(id, d) // fresh ids are tokenized next — keep them warm
	} else {
		c.descs = append(c.descs, d)
	}
	c.byURI[key(d.KB, d.URI)] = id
	c.anyURI[d.URI] = append(c.anyURI[d.URI], id)
	ki, ok := c.kbIndex[d.KB]
	if !ok {
		ki = len(c.kbNames)
		c.kbNames = append(c.kbNames, d.KB)
		c.kbIndex[d.KB] = ki
		c.kbLive = append(c.kbLive, 0)
	}
	if c.kbLive[ki] == 0 {
		c.liveKBs++
	}
	c.kbLive[ki]++
	c.kbOf = append(c.kbOf, ki)
	if c.hasToken {
		c.tokens = append(c.tokens, nil)
	}
	if c.dead != nil {
		c.dead = append(c.dead, false)
	}
	return id
}

// Evict tombstones a description: its id stays allocated (so every
// id-indexed structure remains valid) but the description stops
// resolving by URI or KB+URI, stops being anyone's neighbor, and is
// skipped by blocking, matching, and statistics. Its KB+URI may be
// re-added later under a fresh id. Reports whether the id was live;
// evicting an out-of-range or already-dead id is a no-op.
func (c *Collection) Evict(id int) bool {
	if id < 0 || id >= len(c.descs) || !c.Alive(id) {
		return false
	}
	if c.dead == nil {
		c.dead = make([]bool, len(c.descs))
	}
	c.dead[id] = true
	c.numDead++
	// Key removal needs only identity, which stays hot — eviction never
	// pages a spilled body back in.
	uri := c.URIOf(id)
	delete(c.byURI, key(c.kbNames[c.kbOf[id]], uri))
	if ids := c.anyURI[uri]; len(ids) > 0 {
		kept := make([]int, 0, len(ids)-1)
		for _, x := range ids {
			if x != id {
				kept = append(kept, x)
			}
		}
		if len(kept) == 0 {
			delete(c.anyURI, uri)
		} else {
			c.anyURI[uri] = kept
		}
	}
	if c.cache != nil {
		c.cache.remove(id)
	}
	ki := c.kbOf[id]
	c.kbLive[ki]--
	if c.kbLive[ki] == 0 {
		c.liveKBs--
	}
	c.evicted = append(c.evicted, id)
	return true
}

// Compact returns a copy of the collection holding only the live
// descriptions, re-assigned dense ids in the same relative order,
// together with the old→new id mapping (-1 for tombstoned ids). The
// copy shares the description values (they are immutable under the
// append-only Add discipline) and inherits the token cache, so
// compaction never re-tokenizes; it starts with no pending merges,
// evictions, or tombstones — a collection that never held the departed
// descriptions. The receiver is left untouched.
//
// Long-lived sessions with eviction (TTL windows especially) call this
// when tombstone density crosses a threshold: ids are never reused
// within a collection, so every id-indexed structure — token cache,
// per-node graph arrays, cluster state — otherwise keeps paying for
// descriptions that left long ago.
func (c *Collection) Compact() (*Collection, []int) {
	nc := NewCollection()
	if c.cold != nil {
		// Survivors rewrite under the next epoch: the old epoch's records
		// stay untouched until the swap commits and the caller DropColds
		// this collection — invalidating store offsets and token cache
		// slots together, never one without the other.
		nc.cold = c.cold
		nc.epoch = c.epoch + 1
		nc.cacheSize = c.cacheSize
		nc.cache = newDescCache(c.cacheSize)
	}
	oldToNew := make([]int, len(c.descs))
	for id := range c.descs {
		if !c.Alive(id) {
			oldToNew[id] = -1
			continue
		}
		oldToNew[id] = nc.Add(c.Desc(id))
	}
	nc.merged = nil // distinct live KB+URI pairs: the Adds never merged
	if c.hasToken {
		nc.tokens = make([][]string, len(nc.descs))
		nc.tokOpts = c.tokOpts
		nc.hasToken = true
		for id, nid := range oldToNew {
			if nid >= 0 {
				nc.tokens[nid] = c.tokens[id]
			}
		}
	}
	return nc, oldToNew
}

// Tombstones returns how many ids are tombstoned — the numerator of
// the compaction-density test.
func (c *Collection) Tombstones() int { return c.numDead }

// Alive reports whether the id is live (not tombstoned by Evict).
func (c *Collection) Alive(id int) bool { return c.numDead == 0 || !c.dead[id] }

// NumAlive returns the number of live descriptions.
func (c *Collection) NumAlive() int { return len(c.descs) - c.numDead }

// NumLiveKBs returns how many KBs still contribute at least one live
// description — the count that decides clean–clean semantics once
// descriptions can leave.
func (c *Collection) NumLiveKBs() int {
	if c.numDead == 0 {
		return len(c.kbNames)
	}
	return c.liveKBs
}

// HasKB reports whether a KB of this name has ever contributed
// descriptions (live or evicted).
func (c *Collection) HasKB(name string) bool {
	_, ok := c.kbIndex[name]
	return ok
}

// LiveIDsOfKB returns the live description ids of the named KB,
// ascending. Unknown names return nil.
func (c *Collection) LiveIDsOfKB(name string) []int {
	ki, ok := c.kbIndex[name]
	if !ok || c.kbLive[ki] == 0 {
		return nil
	}
	out := make([]int, 0, c.kbLive[ki])
	for id := 0; id < len(c.descs); id++ {
		if c.kbOf[id] == ki && c.Alive(id) {
			out = append(out, id)
		}
	}
	return out
}

// DropTokens clears the cached token evidence of the given ids. The
// streaming front-end calls it once evicted descriptions have been
// spliced out of its inverted index, so tombstones stop pinning token
// slices; a live id dropped by mistake is merely re-tokenized lazily.
func (c *Collection) DropTokens(ids []int) {
	if !c.hasToken {
		return
	}
	for _, id := range ids {
		if id >= 0 && id < len(c.tokens) {
			c.tokens[id] = nil
		}
	}
}

// HasEvicted reports whether any evictions are pending for TakeEvicted.
func (c *Collection) HasEvicted() bool { return len(c.evicted) > 0 }

// TakeEvicted returns the ids tombstoned since the last call,
// deduplicated and ascending, and resets the list — the eviction
// counterpart of TakeMerged, consumed by the incremental front-end to
// splice the departed ids out of its inverted index.
func (c *Collection) TakeEvicted() []int {
	if len(c.evicted) == 0 {
		return nil
	}
	ids := DedupSortedInts(c.evicted)
	c.evicted = nil
	return ids
}

// HasMerged reports whether any merge-Adds are pending for TakeMerged.
func (c *Collection) HasMerged() bool { return len(c.merged) > 0 }

// PendingMerges returns how many merge-Adds are pending for
// TakeMerged (counting repeats). Comparing it across a load tells
// whether the load merged anything, independent of merges already
// stranded by an earlier failed pass.
func (c *Collection) PendingMerges() int { return len(c.merged) }

// TakeMerged returns the ids of existing descriptions that Add has
// extended (same KB and URI re-added) since the last call, deduplicated
// and ascending, and resets the list. Incremental blocking uses it to
// find descriptions whose token evidence may have grown: Add only ever
// appends attributes, types, and links, so a merged description's token
// set is a superset of what it was.
func (c *Collection) TakeMerged() []int {
	if len(c.merged) == 0 {
		return nil
	}
	ids := DedupSortedInts(c.merged)
	c.merged = nil
	return ids
}

// DedupSortedInts returns the ids sorted ascending with duplicates
// removed, leaving the input untouched — shared by the merge/eviction
// bookkeeping here and the incremental front-end's id lists.
func DedupSortedInts(ids []int) []int {
	out := append([]int(nil), ids...)
	sort.Ints(out)
	w := 0
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

func key(kb, uri string) string { return kb + "\x00" + uri }

// Len returns the number of descriptions.
func (c *Collection) Len() int { return len(c.descs) }

// Desc returns the description with the given id, paging its body in
// from the store when spilled. Safe for concurrent readers between
// mutations (page-ins go through a locked cache).
func (c *Collection) Desc(id int) *Description {
	if d := c.descs[id]; d != nil {
		return d
	}
	return c.pageIn(id)
}

// URIOf returns the URI of id without paging in the description body.
func (c *Collection) URIOf(id int) string {
	if c.cold != nil {
		return c.uris[id]
	}
	return c.descs[id].URI
}

// KBOf returns the KB index of a description id.
func (c *Collection) KBOf(id int) int { return c.kbOf[id] }

// KBName returns the name of KB index k.
func (c *Collection) KBName(k int) string { return c.kbNames[k] }

// NumKBs returns how many distinct KBs contribute descriptions.
func (c *Collection) NumKBs() int { return len(c.kbNames) }

// IDOf returns the id of the description with the given KB and URI.
func (c *Collection) IDOf(kbName, uri string) (int, bool) {
	id, ok := c.byURI[key(kbName, uri)]
	return id, ok
}

// IDsOfURI returns all ids (across KBs) whose description has this
// URI, in insertion order. The returned slice is shared; do not
// mutate it.
func (c *Collection) IDsOfURI(uri string) []int { return c.anyURI[uri] }

// CrossKB reports whether ids a and b come from different KBs. In
// clean–clean ER only cross-KB pairs are comparable.
func (c *Collection) CrossKB(a, b int) bool { return c.kbOf[a] != c.kbOf[b] }

// Tokens returns the (cached) token evidence for id, tokenized with opts.
// The cache is rebuilt when opts change or descriptions were added.
func (c *Collection) Tokens(id int, opts tokenize.Options) []string {
	if !c.hasToken || c.tokOpts != opts {
		c.tokens = make([][]string, len(c.descs))
		c.tokOpts = opts
		c.hasToken = true
	}
	if c.tokens[id] == nil {
		toks := c.Desc(id).Tokens(opts)
		if toks == nil {
			toks = []string{}
		}
		c.tokens[id] = toks
	}
	return c.tokens[id]
}

// WarmTokens fills the whole token cache for opts with the given
// parallelism and returns it as an id-indexed slice. Tokens itself
// fills the cache lazily per id, which is unsafe under concurrent
// callers; WarmTokens resets the cache single-threaded, then lets each
// worker tokenize a disjoint id range — after it returns, concurrent
// Tokens calls with the same opts are read-only and race-free. The
// parallel blocking engine primes the cache with it before sharding.
func (c *Collection) WarmTokens(opts tokenize.Options, workers int) [][]string {
	if workers < 1 {
		workers = 1
	}
	if !c.hasToken || c.tokOpts != opts {
		c.tokens = make([][]string, len(c.descs))
		c.tokOpts = opts
		c.hasToken = true
	}
	n := len(c.descs)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for id := lo; id < hi; id++ {
				if c.tokens[id] != nil || !c.Alive(id) {
					continue
				}
				toks := c.Desc(id).Tokens(opts)
				if toks == nil {
					toks = []string{}
				}
				c.tokens[id] = toks
			}
		}(lo, hi)
	}
	wg.Wait()
	return c.tokens
}

// Neighbors returns the ids of descriptions linked from id. Links whose
// target URI is not present in the collection are skipped. Targets are
// resolved in the same KB first, then in any KB.
func (c *Collection) Neighbors(id int) []int {
	d := c.Desc(id)
	if len(d.Links) == 0 {
		return nil
	}
	var out []int
	seen := make(map[int]struct{}, len(d.Links))
	for _, target := range d.Links {
		nid, ok := c.IDOf(d.KB, target)
		if !ok {
			continue
		}
		if nid == id {
			continue
		}
		if _, dup := seen[nid]; dup {
			continue
		}
		seen[nid] = struct{}{}
		out = append(out, nid)
	}
	return out
}

// DescriptionsFromTriples folds RDF triples into descriptions of the
// named KB, one per subject in first-appearance order, without adding
// them anywhere. Literal objects become attributes, rdf:type objects
// become types, owl:sameAs triples are skipped (they are ground truth,
// not evidence), and other resource objects become links. LoadTriples
// adds the result to a collection; the write-ahead-logged ingest path
// serializes it first, so what the log replays is exactly what the
// collection absorbed.
func DescriptionsFromTriples(kbName string, triples []rdf.Triple) []*Description {
	pending := make(map[string]*Description)
	order := make([]string, 0, len(triples))
	for _, t := range triples {
		if !t.Subject.IsResource() || t.Predicate.Value == rdf.OWLSameAs {
			continue
		}
		subj := subjectKey(t.Subject)
		d, ok := pending[subj]
		if !ok {
			d = &Description{URI: subj, KB: kbName}
			pending[subj] = d
			order = append(order, subj)
		}
		switch {
		case t.Predicate.Value == rdf.RDFType && t.Object.IsIRI():
			d.Types = append(d.Types, t.Object.Value)
		case t.Object.IsLiteral():
			d.Attrs = append(d.Attrs, Attribute{Predicate: t.Predicate.Value, Value: t.Object.Value})
		case t.Object.IsResource():
			d.Links = append(d.Links, subjectKey(t.Object))
		}
	}
	out := make([]*Description, len(order))
	for i, subj := range order {
		out[i] = pending[subj]
	}
	return out
}

// DescriptionsFromQuads folds N-Quads statements into descriptions,
// mapping each named graph to its own KB (default-graph statements to
// defaultKB), preserving statement order within each graph and graph
// first-appearance order across them — the same grouping LoadQuads
// applies.
func DescriptionsFromQuads(defaultKB string, quads []rdf.Quad) []*Description {
	perGraph := make(map[string][]rdf.Triple)
	var order []string
	for _, q := range quads {
		name := defaultKB
		if q.Graph != (rdf.Term{}) {
			name = q.Graph.Value
		}
		if _, seen := perGraph[name]; !seen {
			order = append(order, name)
		}
		perGraph[name] = append(perGraph[name], q.Triple)
	}
	var out []*Description
	for _, name := range order {
		out = append(out, DescriptionsFromTriples(name, perGraph[name])...)
	}
	return out
}

// LoadTriples folds RDF triples into the collection as descriptions of
// the named KB (see DescriptionsFromTriples for the folding rules).
func (c *Collection) LoadTriples(kbName string, triples []rdf.Triple) {
	for _, d := range DescriptionsFromTriples(kbName, triples) {
		c.Add(d)
	}
}

func subjectKey(t rdf.Term) string {
	if t.IsBlank() {
		return "_:" + t.Value
	}
	return t.Value
}

// Load reads an N-Triples stream into the collection as KB kbName.
func (c *Collection) Load(kbName string, r io.Reader) error {
	triples, err := rdf.NewDecoder(r).DecodeAll()
	if err != nil {
		return fmt.Errorf("kb: load %s: %w", kbName, err)
	}
	c.LoadTriples(kbName, triples)
	return nil
}

// LoadQuads reads an N-Quads stream, mapping each named graph to its
// own knowledge base (named by the graph IRI) — the natural reading of
// Web-crawl corpora like BTC, where the graph label records the
// publishing dataset. Default-graph statements go to defaultKB.
func (c *Collection) LoadQuads(defaultKB string, r io.Reader) error {
	quads, err := rdf.NewQuadDecoder(r).DecodeAll()
	if err != nil {
		return fmt.Errorf("kb: load quads: %w", err)
	}
	for _, d := range DescriptionsFromQuads(defaultKB, quads) {
		c.Add(d)
	}
	return nil
}

// LoadTurtle reads a Turtle stream into the collection as KB kbName.
func (c *Collection) LoadTurtle(kbName string, r io.Reader) error {
	triples, err := rdf.NewTurtleDecoder(r).DecodeAll()
	if err != nil {
		return fmt.Errorf("kb: load %s: %w", kbName, err)
	}
	c.LoadTriples(kbName, triples)
	return nil
}

// Stats summarizes a collection for reporting.
type Stats struct {
	Descriptions int
	KBs          int
	Attributes   int
	Links        int
	Predicates   int
}

// Stats computes summary statistics over the live descriptions.
func (c *Collection) Stats() Stats {
	s := Stats{Descriptions: c.NumAlive(), KBs: c.NumLiveKBs()}
	preds := make(map[string]struct{})
	for id := range c.descs {
		if !c.Alive(id) {
			continue
		}
		d := c.Desc(id)
		s.Attributes += len(d.Attrs)
		s.Links += len(d.Links)
		for _, a := range d.Attrs {
			preds[a.Predicate] = struct{}{}
		}
	}
	s.Predicates = len(preds)
	return s
}

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("descriptions=%d kbs=%d attributes=%d links=%d predicates=%d",
		s.Descriptions, s.KBs, s.Attributes, s.Links, s.Predicates)
}

// GroundTruth holds the known real-world equivalence classes over
// description ids, used only for evaluation (never by the algorithms).
type GroundTruth struct {
	classOf map[int]int   // id → class
	classes map[int][]int // class → member ids
	next    int
}

// NewGroundTruth returns an empty ground truth.
func NewGroundTruth() *GroundTruth {
	return &GroundTruth{classOf: make(map[int]int), classes: make(map[int][]int)}
}

// AddClass registers that all the given ids describe one real-world
// entity. Ids may appear in only one class; re-adding extends the class.
func (g *GroundTruth) AddClass(ids ...int) {
	cls := -1
	for _, id := range ids {
		if c, ok := g.classOf[id]; ok {
			cls = c
			break
		}
	}
	if cls == -1 {
		cls = g.next
		g.next++
	}
	for _, id := range ids {
		if old, ok := g.classOf[id]; ok && old != cls {
			// Merge old class into cls.
			for _, m := range g.classes[old] {
				g.classOf[m] = cls
				g.classes[cls] = append(g.classes[cls], m)
			}
			delete(g.classes, old)
			continue
		}
		if _, ok := g.classOf[id]; !ok {
			g.classOf[id] = cls
			g.classes[cls] = append(g.classes[cls], id)
		}
	}
}

// Match reports whether ids a and b describe the same real-world entity.
func (g *GroundTruth) Match(a, b int) bool {
	ca, ok := g.classOf[a]
	if !ok {
		return false
	}
	cb, ok := g.classOf[b]
	return ok && ca == cb
}

// ClassOf returns the class id of a description, or -1 if unknown.
func (g *GroundTruth) ClassOf(id int) int {
	if c, ok := g.classOf[id]; ok {
		return c
	}
	return -1
}

// Classes returns every class with at least two members (the only ones
// that generate matching pairs), each sorted ascending, ordered by
// smallest member.
func (g *GroundTruth) Classes() [][]int {
	var out [][]int
	for _, members := range g.classes {
		if len(members) < 2 {
			continue
		}
		m := append([]int(nil), members...)
		sort.Ints(m)
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// NumMatchingPairs returns the total number of distinct matching pairs
// implied by the equivalence classes.
func (g *GroundTruth) NumMatchingPairs() int {
	total := 0
	for _, members := range g.classes {
		n := len(members)
		total += n * (n - 1) / 2
	}
	return total
}

// CrossKBMatchingPairs counts matching pairs that span two different
// KBs of the collection — the denominator for clean–clean recall.
func (g *GroundTruth) CrossKBMatchingPairs(c *Collection) int {
	total := 0
	for _, members := range g.classes {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if c.CrossKB(members[i], members[j]) {
					total++
				}
			}
		}
	}
	return total
}

// LoadSameAs ingests owl:sameAs triples as ground truth: both subject
// and object URIs are looked up in any KB of the collection and their
// ids are placed in one class. Unresolvable URIs are reported.
func (g *GroundTruth) LoadSameAs(c *Collection, triples []rdf.Triple) (missing int) {
	for _, t := range triples {
		if t.Predicate.Value != rdf.OWLSameAs || !t.Subject.IsResource() || !t.Object.IsResource() {
			continue
		}
		as := c.IDsOfURI(subjectKey(t.Subject))
		bs := c.IDsOfURI(subjectKey(t.Object))
		if len(as) == 0 || len(bs) == 0 {
			missing++
			continue
		}
		ids := make([]int, 0, len(as)+len(bs))
		ids = append(ids, as...)
		ids = append(ids, bs...)
		g.AddClass(ids...)
	}
	return missing
}

// ParseSameAs reads an N-Triples stream of owl:sameAs links into the
// ground truth.
func (g *GroundTruth) ParseSameAs(c *Collection, r io.Reader) (int, error) {
	triples, err := rdf.NewDecoder(r).DecodeAll()
	if err != nil {
		return 0, fmt.Errorf("kb: ground truth: %w", err)
	}
	return g.LoadSameAs(c, triples), nil
}

// DebugDump writes a human-readable listing of the collection, for
// example programs and troubleshooting.
func (c *Collection) DebugDump(w io.Writer, max int) {
	n := len(c.descs)
	if max > 0 && max < n {
		n = max
	}
	for id := 0; id < n; id++ {
		if !c.Alive(id) {
			continue
		}
		d := c.Desc(id)
		fmt.Fprintf(w, "[%d] %s (%s)\n", id, d.URI, d.KB)
		for _, a := range d.Attrs {
			fmt.Fprintf(w, "    %s = %q\n", shortPred(a.Predicate), a.Value)
		}
		for _, l := range d.Links {
			fmt.Fprintf(w, "    --> %s\n", l)
		}
	}
}

func shortPred(p string) string {
	if i := strings.LastIndexAny(p, "/#"); i >= 0 && i+1 < len(p) {
		return p[i+1:]
	}
	return p
}
