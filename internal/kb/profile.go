package kb

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/tokenize"
)

// Profile summarizes a collection the way LOD surveys characterize
// datasets: per-KB sizes, attribute/link densities, token-frequency
// skew, and link-degree distribution. The datagen CLI prints one so
// synthetic workloads can be sanity-checked against the
// center/periphery shape they are meant to have.
type Profile struct {
	PerKB []KBProfile
	// TokenOccurrences maps distinct-token counts: Tokens[k] tokens
	// appear in exactly k descriptions (k capped at 10, last bucket
	// "10+").
	TokenOccurrences [11]int
	DistinctTokens   int
	// DegreeHistogram[d] counts descriptions with combined link degree
	// d (capped at 10).
	DegreeHistogram [11]int
}

// KBProfile is one knowledge base's slice of the profile.
type KBProfile struct {
	Name          string
	Descriptions  int
	AttrsPerDesc  float64
	LinksPerDesc  float64
	TokensPerDesc float64
	Predicates    int
}

// BuildProfile computes a Profile with the given tokenizer options.
func (c *Collection) BuildProfile(opts tokenize.Options) *Profile {
	p := &Profile{}
	type agg struct {
		descs, attrs, links, tokens int
		preds                       map[string]struct{}
	}
	perKB := make([]agg, c.NumKBs())
	tokenDF := make(map[string]int)
	inDegree := make(map[int]int)
	for id := 0; id < c.Len(); id++ {
		d := c.Desc(id)
		k := c.KBOf(id)
		a := &perKB[k]
		if a.preds == nil {
			a.preds = make(map[string]struct{})
		}
		a.descs++
		a.attrs += len(d.Attrs)
		for _, at := range d.Attrs {
			a.preds[at.Predicate] = struct{}{}
		}
		toks := c.Tokens(id, opts)
		a.tokens += len(toks)
		for _, t := range toks {
			tokenDF[t]++
		}
		ns := c.Neighbors(id)
		a.links += len(ns)
		for _, n := range ns {
			inDegree[n]++
		}
	}
	for k := range perKB {
		a := &perKB[k]
		kp := KBProfile{Name: c.KBName(k), Descriptions: a.descs, Predicates: len(a.preds)}
		if a.descs > 0 {
			kp.AttrsPerDesc = float64(a.attrs) / float64(a.descs)
			kp.LinksPerDesc = float64(a.links) / float64(a.descs)
			kp.TokensPerDesc = float64(a.tokens) / float64(a.descs)
		}
		p.PerKB = append(p.PerKB, kp)
	}
	sort.Slice(p.PerKB, func(i, j int) bool { return p.PerKB[i].Name < p.PerKB[j].Name })
	p.DistinctTokens = len(tokenDF)
	for _, df := range tokenDF {
		p.TokenOccurrences[bucket(df)]++
	}
	for id := 0; id < c.Len(); id++ {
		deg := len(c.Neighbors(id)) + inDegree[id]
		p.DegreeHistogram[bucket(deg)]++
	}
	return p
}

func bucket(x int) int {
	if x > 10 {
		return 10
	}
	return x
}

// Fprint renders the profile as readable text.
func (p *Profile) Fprint(w io.Writer) {
	fmt.Fprintln(w, "KB profile:")
	fmt.Fprintf(w, "  %-12s %8s %8s %8s %8s %8s\n",
		"kb", "descs", "attrs/d", "links/d", "toks/d", "preds")
	for _, kp := range p.PerKB {
		fmt.Fprintf(w, "  %-12s %8d %8.2f %8.2f %8.2f %8d\n",
			kp.Name, kp.Descriptions, kp.AttrsPerDesc, kp.LinksPerDesc, kp.TokensPerDesc, kp.Predicates)
	}
	fmt.Fprintf(w, "  distinct tokens: %d\n", p.DistinctTokens)
	fmt.Fprint(w, "  token df histogram (1..10+):")
	for i := 1; i <= 10; i++ {
		fmt.Fprintf(w, " %d", p.TokenOccurrences[i])
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, "  link degree histogram (0..10+):")
	for i := 0; i <= 10; i++ {
		fmt.Fprintf(w, " %d", p.DegreeHistogram[i])
	}
	fmt.Fprintln(w)
}
