package kb

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/store"
	"repro/internal/tokenize"
)

func coldDesc(kb string, i int) *Description {
	return &Description{
		URI:   fmt.Sprintf("http://%s.example.org/e%d", kb, i),
		KB:    kb,
		Types: []string{fmt.Sprintf("http://schema.org/T%d", i%3)},
		Attrs: []Attribute{
			{Predicate: "http://www.w3.org/2000/01/rdf-schema#label", Value: fmt.Sprintf("Entity %d common", i)},
			{Predicate: "http://schema.org/note", Value: fmt.Sprintf("note %d from %s", i, kb)},
		},
		Links: []string{fmt.Sprintf("http://%s.example.org/e%d", kb, (i+1)%16)},
	}
}

// coldVariants returns one legacy collection and one per store backend,
// all loaded identically by the given script.
func coldVariants(t *testing.T, cacheSize int, script func(c *Collection)) map[string]*Collection {
	t.Helper()
	out := map[string]*Collection{"legacy": NewCollection()}
	for _, backend := range []string{"mem", "disk"} {
		c := NewCollection()
		var s store.Store
		if backend == "mem" {
			s = store.NewMem()
		} else {
			d, err := store.OpenDisk(t.TempDir(), store.DiskOptions{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { d.Close() })
			s = d
		}
		if err := c.AttachStore(s, 0, cacheSize); err != nil {
			t.Fatal(err)
		}
		out[backend] = c
	}
	for name, c := range out {
		script(c)
		if err := c.ColdErr(); err != nil {
			t.Fatalf("%s: cold error after script: %v", name, err)
		}
	}
	return out
}

// requireSameCollections asserts every observable read of the
// collections agrees with the legacy (all-resident) reference.
func requireSameCollections(t *testing.T, cs map[string]*Collection) {
	t.Helper()
	ref := cs["legacy"]
	opts := tokenize.Options{}
	for name, c := range cs {
		if name == "legacy" {
			continue
		}
		if c.Len() != ref.Len() || c.NumAlive() != ref.NumAlive() || c.NumLiveKBs() != ref.NumLiveKBs() {
			t.Fatalf("%s: shape diverges: len=%d/%d alive=%d/%d", name, c.Len(), ref.Len(), c.NumAlive(), ref.NumAlive())
		}
		if c.Stats() != ref.Stats() {
			t.Fatalf("%s: stats diverge:\n got %v\nwant %v", name, c.Stats(), ref.Stats())
		}
		for id := 0; id < ref.Len(); id++ {
			if c.Alive(id) != ref.Alive(id) {
				t.Fatalf("%s: liveness of %d diverges", name, id)
			}
			if !ref.Alive(id) {
				continue
			}
			want, got := ref.Desc(id), c.Desc(id)
			if got.URI != want.URI || got.KB != want.KB ||
				!reflect.DeepEqual(got.Types, want.Types) ||
				!reflect.DeepEqual(got.Attrs, want.Attrs) ||
				!reflect.DeepEqual(append([]string(nil), got.Links...), append([]string(nil), want.Links...)) {
				t.Fatalf("%s: description %d diverges:\n got %+v\nwant %+v", name, id, got, want)
			}
			if c.URIOf(id) != want.URI {
				t.Fatalf("%s: URIOf(%d) = %q, want %q", name, id, c.URIOf(id), want.URI)
			}
			if !reflect.DeepEqual(c.Tokens(id, opts), ref.Tokens(id, opts)) {
				t.Fatalf("%s: tokens of %d diverge", name, id)
			}
			if !reflect.DeepEqual(c.Neighbors(id), ref.Neighbors(id)) {
				t.Fatalf("%s: neighbors of %d diverge: %v vs %v", name, id, c.Neighbors(id), ref.Neighbors(id))
			}
		}
	}
}

// TestColdDifferential proves a store-backed collection is observably
// identical to the legacy all-resident one across adds, merges and
// evictions — with a cache far smaller than the corpus, so most reads
// really page in from the store.
func TestColdDifferential(t *testing.T) {
	cs := coldVariants(t, 4, func(c *Collection) {
		for i := 0; i < 16; i++ {
			c.Add(coldDesc("dbpedia", i))
			c.Add(coldDesc("freebase", i))
		}
		for i := 0; i < 16; i += 2 { // merge-Adds: bodies grow
			d := coldDesc("dbpedia", i)
			d.Attrs = append(d.Attrs, Attribute{Predicate: "http://schema.org/extra", Value: fmt.Sprintf("merged %d", i)})
			c.Add(d)
		}
		for _, id := range []int{3, 7, 20} {
			c.Evict(id)
		}
		c.TakeMerged()
		c.TakeEvicted()
	})
	requireSameCollections(t, cs)

	// Merged bodies must contain the merged attribute even after the
	// cache slot has been recycled.
	for name, c := range cs {
		d := c.Desc(0)
		found := false
		for _, a := range d.Attrs {
			if a.Value == "merged 0" {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: merge lost on spilled body: %+v", name, d.Attrs)
		}
	}
}

// TestColdCompactSurvivors is the stale-cache regression: compacting a
// store-backed collection rewrites survivors under a new epoch, and
// every survivor must read back its full body afterwards — a compaction
// that copied spilled stubs, or left the token cache pointing at the
// old epoch's offsets, fails this. Run with -race: WarmTokens pages
// bodies in concurrently after the epoch switch.
func TestColdCompactSurvivors(t *testing.T) {
	cs := coldVariants(t, 4, func(c *Collection) {
		for i := 0; i < 16; i++ {
			c.Add(coldDesc("dbpedia", i))
			c.Add(coldDesc("freebase", i))
		}
	})
	opts := tokenize.Options{}
	for name, c := range cs {
		c.WarmTokens(opts, 4) // populate token cache pre-compaction
		for id := 8; id < 16; id++ {
			c.Evict(id)
		}
		nc, oldToNew := c.Compact()
		if err := nc.ColdErr(); err != nil {
			t.Fatalf("%s: compaction: %v", name, err)
		}
		if nc.Spilled() != c.Spilled() {
			t.Fatalf("%s: compaction dropped the store attachment", name)
		}
		if nc.Spilled() && nc.ColdEpoch() != c.ColdEpoch()+1 {
			t.Fatalf("%s: compaction kept epoch %d", name, nc.ColdEpoch())
		}
		// The superseded epoch is dropped exactly as the session does
		// after the swap commits; survivors must not depend on it.
		if err := c.DropCold(); err != nil {
			t.Fatalf("%s: DropCold: %v", name, err)
		}
		nc.WarmTokens(opts, 4)
		for id := 0; id < c.Len(); id++ {
			nid := oldToNew[id]
			if !c.Alive(id) {
				if nid != -1 {
					t.Fatalf("%s: dead id %d mapped to %d", name, id, nid)
				}
				continue
			}
			d := nc.Desc(nid)
			if d.URI != c.URIOf(id) {
				t.Fatalf("%s: survivor %d→%d URI %q, want %q", name, id, nid, d.URI, c.URIOf(id))
			}
			if len(d.Attrs) != 2 || len(d.Types) != 1 || len(d.Links) != 1 {
				t.Fatalf("%s: survivor %d→%d lost its body: %+v", name, id, nid, d)
			}
			if len(nc.Tokens(nid, opts)) == 0 {
				t.Fatalf("%s: survivor %d→%d has no tokens", name, id, nid)
			}
		}
		if err := nc.ColdErr(); err != nil {
			t.Fatalf("%s: post-compaction reads: %v", name, err)
		}
	}
}

// TestColdAttachSpillsResident attaches a store to a collection that
// already holds descriptions (the recovery path replays into a fresh
// collection, but an explicit corpus load may precede attachment).
func TestColdAttachSpillsResident(t *testing.T) {
	c := NewCollection()
	for i := 0; i < 8; i++ {
		c.Add(coldDesc("dbpedia", i))
	}
	s := store.NewMem()
	if err := c.AttachStore(s, 0, 2); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Keys != 8 {
		t.Fatalf("attach spilled %d bodies, want 8", st.Keys)
	}
	for i := 0; i < 8; i++ {
		if got := c.Desc(i); got.URI != coldDesc("dbpedia", i).URI || len(got.Attrs) != 2 {
			t.Fatalf("desc %d lost on attach: %+v", i, got)
		}
	}
	hits, misses := c.CacheStats()
	if hits+misses == 0 {
		t.Fatal("cache counters idle after spilled reads")
	}
}

func TestColdEncodeRoundTrip(t *testing.T) {
	for _, d := range []*Description{
		{URI: "u", KB: "k"},
		{URI: "u", KB: "k", Types: []string{"t1", ""}, Attrs: []Attribute{{"p", "v"}, {"", ""}}, Links: []string{"l1", "l2", ""}},
		coldDesc("dbpedia", 3),
	} {
		got, err := decodeDesc(encodeDesc(d), d.URI, d.KB)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, d) {
			t.Fatalf("round trip diverges:\n got %+v\nwant %+v", got, d)
		}
	}
	// Corrupt bodies must error, never panic.
	full := encodeDesc(coldDesc("dbpedia", 1))
	for cut := 0; cut < len(full); cut++ {
		if _, err := decodeDesc(full[:cut], "u", "k"); err == nil {
			t.Fatalf("truncated body at %d decoded cleanly", cut)
		}
	}
}
