package eval

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/blocking"
	"repro/internal/kb"
	"repro/internal/metablocking"
	"repro/internal/tokenize"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// world: 2 KBs × 2 descriptions; (0,2) and (1,3) are true matches.
func world(t *testing.T) (*kb.Collection, *kb.GroundTruth) {
	t.Helper()
	c := kb.NewCollection()
	c.Add(&kb.Description{URI: "a0", KB: "a", Attrs: []kb.Attribute{{Predicate: "p", Value: "foo bar"}}})
	c.Add(&kb.Description{URI: "a1", KB: "a", Attrs: []kb.Attribute{{Predicate: "p", Value: "baz qux"}}})
	c.Add(&kb.Description{URI: "b0", KB: "b", Attrs: []kb.Attribute{{Predicate: "p", Value: "foo bar"}}})
	c.Add(&kb.Description{URI: "b1", KB: "b", Attrs: []kb.Attribute{{Predicate: "p", Value: "baz nop"}}})
	g := kb.NewGroundTruth()
	g.AddClass(0, 2)
	g.AddClass(1, 3)
	return c, g
}

func TestBruteForceComparisons(t *testing.T) {
	c, _ := world(t)
	if got := BruteForceComparisons(c); got != 4 {
		t.Errorf("clean-clean brute=%d, want 4", got)
	}
	d := kb.NewCollection()
	for i := 0; i < 5; i++ {
		d.Add(&kb.Description{URI: string(rune('a' + i)), KB: "k"})
	}
	if got := BruteForceComparisons(d); got != 10 {
		t.Errorf("dirty brute=%d, want 10", got)
	}
}

func TestEvaluatePairs(t *testing.T) {
	c, g := world(t)
	pairs := []blocking.Pair{{A: 0, B: 2}, {A: 0, B: 3}} // 1 match, 1 non-match
	q := EvaluatePairs(c, g, pairs)
	if !approx(q.PC, 0.5) || !approx(q.PQ, 0.5) || !approx(q.RR, 0.5) {
		t.Errorf("quality=%+v", q)
	}
	if q.Matches != 1 || q.TotalMatches != 2 || q.BruteForce != 4 {
		t.Errorf("counts=%+v", q)
	}
	if !strings.Contains(q.String(), "PC=0.5000") {
		t.Errorf("String=%q", q.String())
	}
}

func TestEvaluateBlocksAndEdges(t *testing.T) {
	c, g := world(t)
	col := blocking.TokenBlocking(c, tokenize.Default())
	q := EvaluateBlocks(col, g)
	// foo,bar block (0,2); baz blocks (1,3). PC=1.
	if !approx(q.PC, 1) {
		t.Errorf("PC=%v, want 1", q.PC)
	}
	graph := metablocking.Build(col, metablocking.CBS)
	qe := EvaluateEdges(c, g, graph.Edges)
	if qe.Candidates != q.Candidates || qe.Matches != q.Matches {
		t.Errorf("edges quality %+v != blocks quality %+v", qe, q)
	}
}

func TestEvaluateMatches(t *testing.T) {
	c, g := world(t)
	pred := []blocking.Pair{{A: 0, B: 2}, {A: 0, B: 3}}
	m := EvaluateMatches(c, g, pred)
	if m.TP != 1 || m.FP != 1 || m.FN != 1 {
		t.Fatalf("counts=%+v", m)
	}
	if !approx(m.Precision, 0.5) || !approx(m.Recall, 0.5) || !approx(m.F1, 0.5) {
		t.Errorf("PRF=%+v", m)
	}
	if !strings.Contains(m.String(), "F1=0.5000") {
		t.Errorf("String=%q", m.String())
	}
	empty := EvaluateMatches(c, g, nil)
	if empty.Precision != 0 || empty.Recall != 0 || empty.F1 != 0 {
		t.Errorf("empty prediction=%+v", empty)
	}
}

func TestRecallCurve(t *testing.T) {
	// Matches at comparisons 1 and 4 out of 2 total matches.
	outcomes := []bool{true, false, false, true, false}
	c := RecallCurve(outcomes, 2, 0)
	if got := c.At(0); got != 0 {
		t.Errorf("At(0)=%v", got)
	}
	if got := c.At(1); !approx(got, 0.5) {
		t.Errorf("At(1)=%v, want 0.5", got)
	}
	if got := c.At(3); !approx(got, 0.5) {
		t.Errorf("At(3)=%v, want 0.5", got)
	}
	if got := c.At(4); !approx(got, 1) {
		t.Errorf("At(4)=%v, want 1", got)
	}
	if !approx(c.Final(), 1) {
		t.Errorf("Final=%v", c.Final())
	}
	if RecallCurve(outcomes, 0, 0) != nil {
		t.Error("zero total matches should give nil curve")
	}
}

func TestAUC(t *testing.T) {
	// Early match: recall 1 after comparison 1 of 4 → AUC = 3/4.
	early := RecallCurve([]bool{true, false, false, false}, 1, 0)
	if got := early.AUC(4); !approx(got, 0.75) {
		t.Errorf("early AUC=%v, want 0.75", got)
	}
	// Late match: recall 1 only at the very end → AUC = 0.
	late := RecallCurve([]bool{false, false, false, true}, 1, 0)
	if got := late.AUC(4); !approx(got, 0) {
		t.Errorf("late AUC=%v, want 0", got)
	}
	if got := Curve(nil).AUC(10); got != 0 {
		t.Errorf("nil curve AUC=%v", got)
	}
	if got := early.AUC(0); got != 0 {
		t.Errorf("zero horizon AUC=%v", got)
	}
	// AUC beyond the curve extends the final value.
	if got := early.AUC(8); !approx(got, 7.0/8.0) {
		t.Errorf("extended AUC=%v, want 0.875", got)
	}
}

func TestRecallCurveDownsampling(t *testing.T) {
	outcomes := make([]bool, 10000)
	for i := 0; i < 10000; i += 100 {
		outcomes[i] = true
	}
	c := RecallCurve(outcomes, 100, 50)
	if len(c) > 200 { // match points are always kept
		t.Errorf("curve has %d points", len(c))
	}
	if !approx(c.Final(), 1) {
		t.Errorf("Final=%v", c.Final())
	}
}

// Property: recall curves are monotone non-decreasing in [0,1], and
// AUC is within [0,1] and monotone in prefix quality.
func TestCurveProperties(t *testing.T) {
	f := func(raw []bool) bool {
		total := 0
		for _, b := range raw {
			if b {
				total++
			}
		}
		if total == 0 {
			return RecallCurve(raw, total, 0) == nil
		}
		c := RecallCurve(raw, total, 0)
		prev := 0.0
		for _, p := range c {
			if p.Value < prev-1e-12 || p.Value > 1+1e-12 {
				return false
			}
			prev = p.Value
		}
		if !approx(c.Final(), 1) {
			return false
		}
		auc := c.AUC(len(raw))
		return auc >= -1e-12 && auc <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEvaluateClustersPerfect(t *testing.T) {
	g := kb.NewGroundTruth()
	g.AddClass(0, 1)
	g.AddClass(2, 3, 4)
	q := EvaluateClusters(g, [][]int{{0, 1}, {2, 3, 4}})
	if !approx(q.Purity, 1) || !approx(q.InversePurity, 1) || !approx(q.F, 1) {
		t.Errorf("perfect clustering scored %+v", q)
	}
	if q.ExactMatch != 2 || q.TruthClasses != 2 {
		t.Errorf("exact=%d/%d", q.ExactMatch, q.TruthClasses)
	}
}

func TestEvaluateClustersMixedAndSplit(t *testing.T) {
	g := kb.NewGroundTruth()
	g.AddClass(0, 1)
	g.AddClass(2, 3)
	// One big mixed cluster: purity 0.5, inverse purity 1.
	q := EvaluateClusters(g, [][]int{{0, 1, 2, 3}})
	if !approx(q.Purity, 0.5) || !approx(q.InversePurity, 1) {
		t.Errorf("mixed cluster %+v", q)
	}
	if q.ExactMatch != 0 {
		t.Errorf("exact=%d", q.ExactMatch)
	}
	// Fully split: purity 1, inverse purity 0.5.
	q = EvaluateClusters(g, [][]int{{0}, {1}, {2}, {3}})
	if !approx(q.Purity, 1) || !approx(q.InversePurity, 0.5) {
		t.Errorf("split clusters %+v", q)
	}
	// Empty truth.
	empty := EvaluateClusters(kb.NewGroundTruth(), [][]int{{0, 1}})
	if empty.Purity != 0 || empty.F != 0 {
		t.Errorf("empty truth %+v", empty)
	}
	if q.String() == "" {
		t.Error("empty String")
	}
}
