// Package eval computes the quality measures the experiments report:
// pairs completeness / pairs quality / reduction ratio for blocking and
// meta-blocking, precision / recall / F1 for matching, and progressive
// recall curves with normalized area-under-curve for the scheduler.
package eval

import (
	"fmt"
	"math"

	"repro/internal/blocking"
	"repro/internal/kb"
	"repro/internal/metablocking"
)

// BlockingQuality summarizes a candidate-pair set against ground truth.
type BlockingQuality struct {
	// PC (pairs completeness) is the fraction of ground-truth matching
	// pairs covered by the candidates — blocking recall.
	PC float64
	// PQ (pairs quality) is the fraction of candidates that match —
	// blocking precision.
	PQ float64
	// RR (reduction ratio) is 1 − candidates/bruteForce.
	RR float64
	// Candidates is the number of distinct candidate pairs.
	Candidates int
	// Matches is the number of ground-truth pairs among the candidates.
	Matches int
	// TotalMatches is the number of comparable ground-truth pairs.
	TotalMatches int
	// BruteForce is the comparison count without blocking.
	BruteForce int
}

// String renders the measures on one line.
func (q BlockingQuality) String() string {
	return fmt.Sprintf("PC=%.4f PQ=%.4f RR=%.4f candidates=%d matches=%d/%d brute=%d",
		q.PC, q.PQ, q.RR, q.Candidates, q.Matches, q.TotalMatches, q.BruteForce)
}

// BruteForceComparisons returns the comparison count of the exhaustive
// baseline: all cross-KB pairs in clean–clean settings, all pairs
// otherwise.
func BruteForceComparisons(c *kb.Collection) int {
	n := c.Len()
	total := n * (n - 1) / 2
	if c.NumKBs() <= 1 {
		return total
	}
	perKB := make([]int, c.NumKBs())
	for id := 0; id < n; id++ {
		perKB[c.KBOf(id)]++
	}
	for _, k := range perKB {
		total -= k * (k - 1) / 2
	}
	return total
}

// comparableMatches counts ground-truth pairs that the setting permits
// (cross-KB only in clean–clean).
func comparableMatches(c *kb.Collection, g *kb.GroundTruth) int {
	if c.NumKBs() > 1 {
		return g.CrossKBMatchingPairs(c)
	}
	return g.NumMatchingPairs()
}

// EvaluatePairs scores an arbitrary candidate-pair set.
func EvaluatePairs(c *kb.Collection, g *kb.GroundTruth, pairs []blocking.Pair) BlockingQuality {
	q := BlockingQuality{
		Candidates:   len(pairs),
		TotalMatches: comparableMatches(c, g),
		BruteForce:   BruteForceComparisons(c),
	}
	for _, p := range pairs {
		if g.Match(p.A, p.B) {
			q.Matches++
		}
	}
	if q.TotalMatches > 0 {
		q.PC = float64(q.Matches) / float64(q.TotalMatches)
	}
	if q.Candidates > 0 {
		q.PQ = float64(q.Matches) / float64(q.Candidates)
	}
	if q.BruteForce > 0 {
		q.RR = 1 - float64(q.Candidates)/float64(q.BruteForce)
	}
	return q
}

// EvaluateBlocks scores a block collection's distinct candidate pairs.
func EvaluateBlocks(col *blocking.Collection, g *kb.GroundTruth) BlockingQuality {
	return EvaluatePairs(col.Source, g, col.DistinctPairs())
}

// EvaluateEdges scores a pruned edge list from meta-blocking.
func EvaluateEdges(c *kb.Collection, g *kb.GroundTruth, edges []metablocking.Edge) BlockingQuality {
	pairs := make([]blocking.Pair, len(edges))
	for i, e := range edges {
		pairs[i] = blocking.Pair{A: e.A, B: e.B}
	}
	return EvaluatePairs(c, g, pairs)
}

// MatchQuality summarizes a predicted match set.
type MatchQuality struct {
	Precision float64
	Recall    float64
	F1        float64
	TP        int
	FP        int
	FN        int
}

// String renders the measures on one line.
func (m MatchQuality) String() string {
	return fmt.Sprintf("P=%.4f R=%.4f F1=%.4f tp=%d fp=%d fn=%d",
		m.Precision, m.Recall, m.F1, m.TP, m.FP, m.FN)
}

// EvaluateMatches scores predicted matching pairs against the
// comparable ground-truth pairs.
func EvaluateMatches(c *kb.Collection, g *kb.GroundTruth, predicted []blocking.Pair) MatchQuality {
	var m MatchQuality
	for _, p := range predicted {
		if g.Match(p.A, p.B) {
			m.TP++
		} else {
			m.FP++
		}
	}
	total := comparableMatches(c, g)
	m.FN = total - m.TP
	if m.TP+m.FP > 0 {
		m.Precision = float64(m.TP) / float64(m.TP+m.FP)
	}
	if total > 0 {
		m.Recall = float64(m.TP) / float64(total)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// CurvePoint is one point of a progressive quality curve.
type CurvePoint struct {
	// Comparisons executed so far.
	Comparisons int
	// Value of the tracked measure (e.g. recall) after them.
	Value float64
}

// Curve is a monotone progressive-quality curve.
type Curve []CurvePoint

// At returns the curve value after k comparisons (step interpolation).
func (c Curve) At(k int) float64 {
	v := 0.0
	for _, p := range c {
		if p.Comparisons > k {
			break
		}
		v = p.Value
	}
	return v
}

// Final returns the last value of the curve (0 for an empty curve).
func (c Curve) Final() float64 {
	if len(c) == 0 {
		return 0
	}
	return c[len(c)-1].Value
}

// AUC returns the normalized area under the curve over the comparison
// range [0, horizon]: 1 means the final value was reached immediately,
// 0 means nothing was ever gained. A good progressive scheduler
// maximizes AUC, not just the final value.
func (c Curve) AUC(horizon int) float64 {
	if horizon <= 0 || len(c) == 0 {
		return 0
	}
	area := 0.0
	prevX, prevV := 0, 0.0
	for _, p := range c {
		x := p.Comparisons
		if x > horizon {
			x = horizon
		}
		area += float64(x-prevX) * prevV
		prevX, prevV = x, p.Value
		if p.Comparisons >= horizon {
			break
		}
	}
	area += float64(horizon-prevX) * prevV
	return area / float64(horizon)
}

// RecallCurve builds the progressive recall curve from an ordered
// stream of (pair, isMatch) outcomes: recall after each comparison,
// downsampled to at most maxPoints points (0 = keep all).
func RecallCurve(outcomes []bool, totalMatches, maxPoints int) Curve {
	if totalMatches <= 0 {
		return nil
	}
	stride := 1
	if maxPoints > 0 && len(outcomes) > maxPoints {
		stride = (len(outcomes) + maxPoints - 1) / maxPoints
	}
	var curve Curve
	found := 0
	for i, hit := range outcomes {
		if hit {
			found++
		}
		last := i == len(outcomes)-1
		if hit || last || (i+1)%stride == 0 {
			curve = append(curve, CurvePoint{
				Comparisons: i + 1,
				Value:       float64(found) / float64(totalMatches),
			})
		}
	}
	return dedupCurve(curve)
}

func dedupCurve(c Curve) Curve {
	out := c[:0]
	for i, p := range c {
		if i+1 < len(c) && c[i+1].Comparisons == p.Comparisons {
			continue // keep the later point at the same x
		}
		if len(out) > 0 && math.Abs(out[len(out)-1].Value-p.Value) < 1e-15 && i+1 < len(c) {
			continue // drop interior plateau points
		}
		out = append(out, p)
	}
	return out
}
