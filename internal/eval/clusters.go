package eval

import (
	"fmt"

	"repro/internal/kb"
)

// ClusterQuality evaluates a clustering at the cluster level, beyond
// pairwise precision/recall: purity asks whether predicted clusters
// mix real-world entities, inverse purity whether real-world entities
// are fragmented across clusters, and ExactMatch counts ground-truth
// classes reproduced exactly.
type ClusterQuality struct {
	// Purity: Σ over predicted clusters of their dominant-class member
	// count, over total clustered descriptions. 1 = no cluster mixes
	// entities.
	Purity float64
	// InversePurity: same with roles swapped — 1 = no entity is split
	// across clusters.
	InversePurity float64
	// F is the harmonic mean of Purity and InversePurity.
	F float64
	// ExactMatch counts predicted clusters identical to a truth class.
	ExactMatch int
	// Predicted and TruthClasses are the cluster counts compared.
	Predicted    int
	TruthClasses int
}

// String renders the measures on one line.
func (c ClusterQuality) String() string {
	return fmt.Sprintf("purity=%.4f invPurity=%.4f F=%.4f exact=%d/%d predicted=%d",
		c.Purity, c.InversePurity, c.F, c.ExactMatch, c.TruthClasses, c.Predicted)
}

// EvaluateClusters scores predicted clusters (each a set of description
// ids, as returned by match.Clusters.Resolved) against the ground
// truth's classes. Only descriptions belonging to a truth class of
// size ≥ 2 participate; singletons on either side are ignored, since
// neither purity direction is meaningful for them.
func EvaluateClusters(g *kb.GroundTruth, predicted [][]int) ClusterQuality {
	truth := g.Classes()
	q := ClusterQuality{Predicted: len(predicted), TruthClasses: len(truth)}
	if len(truth) == 0 {
		return q
	}
	inTruth := make(map[int]int) // id → truth class index
	truthTotal := 0
	for ci, members := range truth {
		truthTotal += len(members)
		for _, id := range members {
			inTruth[id] = ci
		}
	}

	// Purity: dominant truth class per predicted cluster.
	clusterOf := make(map[int]int) // id → predicted cluster index
	dominantSum := 0
	predTotal := 0
	for pi, members := range predicted {
		counts := make(map[int]int)
		n := 0
		for _, id := range members {
			clusterOf[id] = pi
			if ci, ok := inTruth[id]; ok {
				counts[ci]++
				n++
			}
		}
		predTotal += n
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		dominantSum += best
	}
	if predTotal > 0 {
		q.Purity = float64(dominantSum) / float64(predTotal)
	}

	// Inverse purity: dominant predicted cluster per truth class.
	invSum := 0
	for _, members := range truth {
		counts := make(map[int]int)
		for _, id := range members {
			if pi, ok := clusterOf[id]; ok {
				counts[pi]++
			}
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		invSum += best
	}
	q.InversePurity = float64(invSum) / float64(truthTotal)

	if q.Purity+q.InversePurity > 0 {
		q.F = 2 * q.Purity * q.InversePurity / (q.Purity + q.InversePurity)
	}

	// Exact matches: identical member sets.
	truthSets := make(map[string]bool, len(truth))
	for _, members := range truth {
		truthSets[setKey(members)] = true
	}
	for _, members := range predicted {
		if truthSets[setKey(members)] {
			q.ExactMatch++
		}
	}
	return q
}

// setKey canonicalizes a sorted member list (Resolved and Classes both
// return ascending members).
func setKey(members []int) string {
	b := make([]byte, 0, len(members)*4)
	for _, m := range members {
		for m > 0 {
			b = append(b, byte('0'+m%10))
			m /= 10
		}
		b = append(b, ',')
	}
	return string(b)
}
