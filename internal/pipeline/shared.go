package pipeline

import (
	"sort"
	"sync"

	"repro/internal/blocking"
	"repro/internal/kb"
	"repro/internal/mapreduce"
	"repro/internal/metablocking"
	"repro/internal/parmeta"
	"repro/internal/tokenize"
)

// Shared is the shared-memory parallel engine: every front-end stage
// shards its input over contiguous ranges, merges per-shard state
// under an ownership partition (each partition touched by exactly one
// goroutine — no locks on the accumulation maps), and reassembles
// results in shard order so the output replays the sequential
// iteration order exactly. Graph construction and pruning delegate to
// internal/parmeta, which follows the same discipline.
//
// All stages are bit-identical to the Sequential reference for any
// worker count — same blocks in the same order, same float weights —
// which the differential tests in this package assert.
type Shared struct {
	// Workers is the parallelism (> 1).
	Workers int
}

// Name implements Engine.
func (Shared) Name() string { return "shared" }

// partsPerWorker oversubscribes merge partitions relative to workers
// so the dynamic schedule stays balanced when token or entity
// frequencies are skewed.
const partsPerWorker = 4

// Stream implements Engine: the per-partition sorted block runs are
// built in parallel (see blockRuns), then yielded through a lazy k-way
// merge — blocks stay in their partitions and flow to the cleaning
// transforms one at a time, instead of being concatenated into one
// materialized slice.
func (e Shared) Stream(src *kb.Collection, opts tokenize.Options) (blocking.Stream, error) {
	runs := e.blockRuns(src, opts)
	return blocking.MergeRunsStream(src, src.NumLiveKBs() > 1, runs), nil
}

// TokenBlocking implements Engine: blockRuns' partitions merged into
// the global key order in parallel — the materialized reference for
// the stream path.
func (e Shared) TokenBlocking(src *kb.Collection, opts tokenize.Options) (*blocking.Collection, error) {
	col := &blocking.Collection{Source: src, CleanClean: src.NumLiveKBs() > 1}
	col.Blocks = mergeBlockRuns(e.blockRuns(src, opts), e.Workers)
	return col, nil
}

// blockRuns is the parallel half of token blocking: per-worker
// tokenization and local inverted indexes over contiguous id ranges,
// then a lock-free merge under a token-hash partition (each token owned
// by one partition, id lists concatenated in shard order — already
// sorted, since shards are ascending id ranges). Each partition's
// blocks come out sorted by key, with the blocks that induce no
// comparisons already pruned.
func (e Shared) blockRuns(src *kb.Collection, opts tokenize.Options) [][]blocking.Block {
	if src.Len() == 0 {
		return nil
	}
	cleanClean := src.NumLiveKBs() > 1
	// Tokenize in parallel, priming the collection's token cache for
	// the rest of the pipeline (the matcher reads the same evidence).
	tokens := src.WarmTokens(opts, e.Workers)

	// Map: each worker scans a contiguous id range and deals (token,
	// id) into per-partition local inverted indexes. Ids are appended
	// in ascending order within a shard by construction.
	shards := mapreduce.Ranges(src.Len(), e.Workers)
	nParts := e.Workers * partsPerWorker
	emits := make([][]map[string][]int, len(shards))
	var wg sync.WaitGroup
	for s, r := range shards {
		wg.Add(1)
		go func(s int, r mapreduce.Range) {
			defer wg.Done()
			parts := make([]map[string][]int, nParts)
			for id := r.Lo; id < r.Hi; id++ {
				if !src.Alive(id) {
					continue // tombstoned; the cache may still hold its tokens
				}
				for _, tok := range tokens[id] {
					p := tokenPartition(tok, nParts)
					m := parts[p]
					if m == nil {
						m = make(map[string][]int)
						parts[p] = m
					}
					m[tok] = append(m[tok], id)
				}
			}
			emits[s] = parts
		}(s, r)
	}
	wg.Wait()

	// Merge: each partition is owned by one goroutine. Concatenating a
	// token's id lists in shard order yields a sorted, duplicate-free
	// entity list (each description emits a token at most once, and
	// shard s's ids all precede shard s+1's), so no re-sort or dedup is
	// needed — only the sequential builder's pruning of blocks that
	// induce no comparisons.
	runs := make([][]blocking.Block, nParts)
	mapreduce.ForEach(nParts, e.Workers, func(p int) {
		merged := make(map[string][]int)
		for s := range emits {
			for tok, ids := range emits[s][p] {
				merged[tok] = append(merged[tok], ids...)
			}
		}
		keys := make([]string, 0, len(merged))
		for tok := range merged {
			keys = append(keys, tok)
		}
		sort.Strings(keys)
		var run []blocking.Block
		for _, tok := range keys {
			ids := merged[tok]
			if len(ids) < 2 {
				continue
			}
			b := blocking.Block{Key: tok, Entities: ids}
			if b.Comparisons(src, cleanClean) == 0 {
				continue
			}
			run = append(run, b)
		}
		runs[p] = run
	})
	return runs
}

// tokenPartition hashes a token to a merge partition (inline FNV-1a;
// allocation-free, unlike hashing through a []byte conversion). The
// choice of hash only affects load balance, never results: every token
// lands in exactly one partition either way.
func tokenPartition(tok string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(tok); i++ {
		h ^= uint32(tok[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

// mergeBlockRuns merges sorted-by-key block runs into one sorted
// slice, pairwise and in parallel. Keys are globally distinct (each
// token hashes to one partition), so the comparator is a strict total
// order and the result equals a full sort.
func mergeBlockRuns(runs [][]blocking.Block, workers int) []blocking.Block {
	live := runs[:0]
	for _, r := range runs {
		if len(r) > 0 {
			live = append(live, r)
		}
	}
	for len(live) > 1 {
		nPairs := (len(live) + 1) / 2
		next := make([][]blocking.Block, nPairs)
		mapreduce.ForEach(nPairs, workers, func(i int) {
			a := live[2*i]
			if 2*i+1 == len(live) {
				next[i] = a
				return
			}
			b := live[2*i+1]
			dst := make([]blocking.Block, 0, len(a)+len(b))
			x, y := 0, 0
			for x < len(a) && y < len(b) {
				if a[x].Key < b[y].Key {
					dst = append(dst, a[x])
					x++
				} else {
					dst = append(dst, b[y])
					y++
				}
			}
			dst = append(dst, a[x:]...)
			dst = append(dst, b[y:]...)
			next[i] = dst
		})
		live = next
	}
	if len(live) == 0 {
		return nil
	}
	return live[0]
}

// Purge implements Engine: a sharded block-size histogram picks the
// automatic cap (integer-exact, so merge order is irrelevant), then a
// sharded keep pass reassembles the surviving blocks in block order.
func (e Shared) Purge(col *blocking.Collection, maxSize int) (*blocking.Collection, error) {
	if maxSize <= 0 {
		shards := mapreduce.Ranges(len(col.Blocks), e.Workers)
		hists := make([]map[int]int, len(shards))
		var wg sync.WaitGroup
		for s, r := range shards {
			wg.Add(1)
			go func(s int, r mapreduce.Range) {
				defer wg.Done()
				h := make(map[int]int)
				for bi := r.Lo; bi < r.Hi; bi++ {
					h[col.Blocks[bi].Size()]++
				}
				hists[s] = h
			}(s, r)
		}
		wg.Wait()
		merged := make(map[int]int)
		for _, h := range hists {
			for n, cnt := range h {
				merged[n] += cnt
			}
		}
		maxSize = blocking.AutoPurgeSizeFromHistogram(merged)
	}
	out := &blocking.Collection{Source: col.Source, CleanClean: col.CleanClean}
	out.Blocks = keepBlocks(col, e.Workers, func(b *blocking.Block) bool {
		return b.Size() <= maxSize
	})
	return out, nil
}

// keepBlocks filters col.Blocks with pred over contiguous shards and
// concatenates the survivors in shard order — the sequential scan
// order.
func keepBlocks(col *blocking.Collection, workers int, pred func(b *blocking.Block) bool) []blocking.Block {
	shards := mapreduce.Ranges(len(col.Blocks), workers)
	parts := make([][]blocking.Block, len(shards))
	var wg sync.WaitGroup
	for s, r := range shards {
		wg.Add(1)
		go func(s int, r mapreduce.Range) {
			defer wg.Done()
			var kept []blocking.Block
			for bi := r.Lo; bi < r.Hi; bi++ {
				if pred(&col.Blocks[bi]) {
					kept = append(kept, col.Blocks[bi])
				}
			}
			parts[s] = kept
		}(s, r)
	}
	wg.Wait()
	return concatBlocks(parts)
}

// concatBlocks concatenates per-shard block slices in shard order —
// the sequential scan order, since shards are contiguous ascending
// ranges.
func concatBlocks(parts [][]blocking.Block) []blocking.Block {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]blocking.Block, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Filter implements Engine: the size ranks are computed once (cheap,
// and total — ties break by block index), the entity→blocks index is
// built as a deterministic parallel CSR, each entity's smallest-rank
// assignments are marked over disjoint entity ranges, and the blocks
// are rebuilt over disjoint block ranges. Identical to the sequential
// Filter for any worker count.
func (e Shared) Filter(col *blocking.Collection, ratio float64) (*blocking.Collection, error) {
	if ratio <= 0 || ratio > 1 {
		ratio = 0.8
	}
	rank := col.SizeRanks()
	start, csr := entityCSR(col, e.Workers)

	// kept[slot] marks assignment slots (entity × block, in the CSR
	// layout) that survive filtering. Entity ranges are disjoint, so
	// the writes are race-free.
	kept := make([]bool, len(csr))
	numEnts := col.Source.Len()
	var wg sync.WaitGroup
	for _, r := range mapreduce.Ranges(numEnts, e.Workers) {
		wg.Add(1)
		go func(r mapreduce.Range) {
			defer wg.Done()
			var pos []int
			for id := r.Lo; id < r.Hi; id++ {
				lo, hi := int(start[id]), int(start[id+1])
				n := hi - lo
				if n == 0 {
					continue
				}
				limit := blocking.FilterLimit(ratio, n)
				pos = pos[:0]
				for i := 0; i < n; i++ {
					pos = append(pos, lo+i)
				}
				// Ranks are a permutation — a strict total order — so
				// the selected set matches the sequential engine's.
				sort.Slice(pos, func(a, b int) bool {
					return rank[csr[pos[a]]] < rank[csr[pos[b]]]
				})
				for _, p := range pos[:limit] {
					kept[p] = true
				}
			}
		}(r)
	}
	wg.Wait()

	// Rebuild the blocks over disjoint block shards: membership of id
	// in block bi is kept[slot of bi in id's CSR row] (rows are
	// ascending, so the slot is a binary search away).
	out := &blocking.Collection{Source: col.Source, CleanClean: col.CleanClean}
	shards := mapreduce.Ranges(len(col.Blocks), e.Workers)
	parts := make([][]blocking.Block, len(shards))
	var rwg sync.WaitGroup
	for s, r := range shards {
		rwg.Add(1)
		go func(s int, r mapreduce.Range) {
			defer rwg.Done()
			var rebuilt []blocking.Block
			for bi := r.Lo; bi < r.Hi; bi++ {
				var members []int
				for _, id := range col.Blocks[bi].Entities {
					row := csr[start[id]:start[id+1]]
					slot := sort.Search(len(row), func(i int) bool { return int(row[i]) >= bi })
					if kept[int(start[id])+slot] {
						members = append(members, id)
					}
				}
				if len(members) < 2 {
					continue
				}
				nb := blocking.Block{Key: col.Blocks[bi].Key, Entities: members}
				if nb.Comparisons(col.Source, col.CleanClean) == 0 {
					continue
				}
				rebuilt = append(rebuilt, nb)
			}
			parts[s] = rebuilt
		}(s, r)
	}
	rwg.Wait()
	out.Blocks = concatBlocks(parts)
	return out, nil
}

// entityCSR builds the entity→blocks index in CSR form:
// csr[start[id]:start[id+1]] lists the block indices containing id, in
// ascending order. Construction shards contiguous block ranges;
// per-entity, per-shard cursor ranges are disjoint, so the fill is
// lock-free and the layout is identical for any worker count — the
// same discipline as parmeta's edge adjacency.
func entityCSR(col *blocking.Collection, workers int) (start, csr []int32) {
	numEnts := col.Source.Len()
	shards := mapreduce.Ranges(len(col.Blocks), workers)
	counts := make([][]int32, len(shards))
	var wg sync.WaitGroup
	for s, r := range shards {
		wg.Add(1)
		go func(s int, r mapreduce.Range) {
			defer wg.Done()
			c := make([]int32, numEnts)
			for bi := r.Lo; bi < r.Hi; bi++ {
				for _, id := range col.Blocks[bi].Entities {
					c[id]++
				}
			}
			counts[s] = c
		}(s, r)
	}
	wg.Wait()

	start = make([]int32, numEnts+1)
	pos := int32(0)
	for id := 0; id < numEnts; id++ {
		start[id] = pos
		for s := range counts {
			c := counts[s][id]
			counts[s][id] = pos
			pos += c
		}
	}
	start[numEnts] = pos

	csr = make([]int32, pos)
	var fwg sync.WaitGroup
	for s, r := range shards {
		fwg.Add(1)
		go func(s int, r mapreduce.Range) {
			defer fwg.Done()
			cur := counts[s]
			for bi := r.Lo; bi < r.Hi; bi++ {
				for _, id := range col.Blocks[bi].Entities {
					csr[cur[id]] = int32(bi)
					cur[id]++
				}
			}
		}(s, r)
	}
	fwg.Wait()
	return start, csr
}

// Build implements Engine via the sharded builder in internal/parmeta.
func (e Shared) Build(col *blocking.Collection, scheme metablocking.Scheme) (*metablocking.Graph, error) {
	return parmeta.Build(col, scheme, e.Workers), nil
}

// Prune implements Engine via the sharded pruner in internal/parmeta.
func (e Shared) Prune(g *metablocking.Graph, alg metablocking.Pruning, opts metablocking.PruneOptions) ([]metablocking.Edge, error) {
	return parmeta.Prune(g, alg, opts, e.Workers), nil
}

// PruneMemoized implements the optional memoPruner capability: the
// sharded prune plus the retention memo that seeds locality-aware
// re-pruning, memo-compatible with the sequential engine's bit for bit.
func (e Shared) PruneMemoized(g *metablocking.Graph, alg metablocking.Pruning, opts metablocking.PruneOptions) ([]metablocking.Edge, *metablocking.PruneMemo, error) {
	kept, memo := parmeta.PruneMemoized(g, alg, opts, e.Workers)
	return kept, memo, nil
}

// Ingest implements Engine: the shared incremental pass with the
// stages where parallel deltas pay delegated per-stage — the batch is
// tokenized on the worker pool (WarmTokens only fills the new and
// invalidated cache slots), cleaning runs through this engine's
// sharded Purge/Filter, the graph update runs parmeta.Update (the
// sequential structural diff, proportional to the delta, plus a
// reweigh sharded across workers), and pruning runs the sharded
// pruner.
func (e Shared) Ingest(st *State) error {
	warm := func() { st.src.WarmTokens(st.opt.Tokenize, e.Workers) }
	return ingest(e, st, warm,
		func(g *metablocking.Graph, oldCol, newCol *blocking.Collection) metablocking.UpdateStats {
			return parmeta.Update(g, oldCol, newCol, st.opt.Scheme, e.Workers)
		})
}

// Evict implements Engine: the shared decremental pass. The index
// splice is sequential (proportional to the departed descriptions'
// tokens), while cleaning, the reweigh half of the graph update, and
// pruning run this engine's sharded stages.
func (e Shared) Evict(st *State) error {
	return evict(e, st,
		func(g *metablocking.Graph, oldCol, newCol *blocking.Collection) metablocking.UpdateStats {
			return parmeta.Update(g, oldCol, newCol, st.opt.Scheme, e.Workers)
		})
}
