package pipeline

import (
	"fmt"
	"testing"

	"repro/internal/datagen"
	"repro/internal/kb"
	"repro/internal/metablocking"
	"repro/internal/tokenize"
)

// TestEvictMatchesFromScratch is the front-end half of the deletion
// guarantee: tombstoning descriptions in the source and folding the
// departures through Engine.Evict in waves leaves the state's Front
// equal to a from-scratch Run over the surviving corpus —
// bit-identically on the sequential and shared engines, within the
// documented float round-off on MapReduce — for every engine.
func TestEvictMatchesFromScratch(t *testing.T) {
	opt := Options{
		Tokenize:    tokenize.Default(),
		FilterRatio: 0.8,
		Scheme:      metablocking.ECBS,
		Pruning:     metablocking.WNP,
	}
	engines := []struct {
		name  string
		e     Engine
		exact bool
	}{
		{"sequential", Sequential{}, true},
		{"shared-2", Shared{Workers: 2}, true},
		{"shared-4", Shared{Workers: 4}, true},
		{"mapreduce-2", MapReduce{Workers: 2}, false},
	}
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			w, err := datagen.Generate(datagen.TwoKBs(431, 150, datagen.Center(), datagen.Periphery()))
			if err != nil {
				t.Fatal(err)
			}
			src := w.Collection
			st, err := Start(eng.e, src, opt)
			if err != nil {
				t.Fatal(err)
			}
			order := interleavedIDs(src)
			waves := [][]int{order[4:10], {order[0]}, order[30:45]}
			for wi, wave := range waves {
				for _, id := range wave {
					src.Evict(id)
				}
				if err := eng.e.Evict(st); err != nil {
					t.Fatal(err)
				}
				if st.LastUpdate.Rebuilt {
					t.Fatalf("wave %d: eviction fell back to a full graph rebuild", wi)
				}
				// The oracle: a from-scratch pass over the same surviving
				// corpus on the same engine.
				want, err := Run(eng.e, src, opt)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("%s/wave=%d", eng.name, wi)
				sameCollection(t, label, want.Blocks, st.Front.Blocks)
				sameEdges(t, want.Edges, st.Front.Edges, eng.exact)
			}
			// The final state must also match the sequential reference.
			wantSeq, err := Run(Sequential{}, src, opt)
			if err != nil {
				t.Fatal(err)
			}
			sameCollection(t, eng.name+"/vs-sequential", wantSeq.Blocks, st.Front.Blocks)
			sameEdges(t, wantSeq.Edges, st.Front.Edges, eng.exact)
		})
	}
}

// TestEvictInterleavedWithIngest alternates growth and shrinkage —
// the steady state of a sliding-window session — and checks the state
// equals a from-scratch pass after every step, including evicting a
// description that an earlier ingest batch merged into.
func TestEvictInterleavedWithIngest(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(432, 120, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	full := w.Collection
	order := interleavedIDs(full)
	n := full.Len()
	opt := Options{
		Tokenize:    tokenize.Default(),
		FilterRatio: 0.8,
		Scheme:      metablocking.ARCS,
		Pruning:     metablocking.CNP,
	}
	for _, eng := range []Engine{Sequential{}, Shared{Workers: 4}} {
		t.Run(eng.Name(), func(t *testing.T) {
			grown := kb.NewCollection()
			addRange(grown, full, order, 0, n/2)
			st, err := Start(eng, grown, opt)
			if err != nil {
				t.Fatal(err)
			}
			check := func(label string) {
				t.Helper()
				want, err := Run(eng, grown, opt)
				if err != nil {
					t.Fatal(err)
				}
				sameCollection(t, label, want.Blocks, st.Front.Blocks)
				sameEdges(t, want.Edges, st.Front.Edges, true)
			}

			// Ingest a batch that extends existing descriptions…
			addRange(grown, full, order, n/2, 3*n/4)
			d := full.Desc(order[2])
			grown.Add(&kb.Description{URI: d.URI, KB: d.KB, Attrs: []kb.Attribute{
				{Predicate: "late", Value: "lateinfo mergenote"},
			}})
			mergedID, _ := grown.IDOf(d.KB, d.URI)
			if err := eng.Ingest(st); err != nil {
				t.Fatal(err)
			}
			check("after-ingest")

			// …evict some early ids, including the merged description…
			for _, id := range []int{mergedID, 1, 5, 9} {
				grown.Evict(id)
			}
			if err := eng.Evict(st); err != nil {
				t.Fatal(err)
			}
			check("after-evict")

			// …grow again: tokens the departed descriptions carried can
			// return under new carriers.
			addRange(grown, full, order, 3*n/4, n)
			if err := eng.Ingest(st); err != nil {
				t.Fatal(err)
			}
			check("after-regrow")

			// Re-adding an evicted KB+URI opens a fresh id, not the dead one.
			grown.Add(&kb.Description{URI: d.URI, KB: d.KB, Types: d.Types, Attrs: d.Attrs, Links: d.Links})
			if backID, _ := grown.IDOf(d.KB, d.URI); backID == mergedID {
				t.Fatal("re-added description reused a tombstoned id")
			}
			if err := eng.Ingest(st); err != nil {
				t.Fatal(err)
			}
			check("after-readd")
		})
	}
}

// TestRestartOverTombstonedSource is the regression for the index
// resurrection bug: a State started over a collection that already
// carries tombstones builds its lazy inverted index on the first
// streaming operation, and that index must be born without the dead
// ids — otherwise the first ingest would resurrect them into blocks.
func TestRestartOverTombstonedSource(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(434, 80, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	src := w.Collection
	opt := Options{Tokenize: tokenize.Default(), FilterRatio: 0.8,
		Scheme: metablocking.ECBS, Pruning: metablocking.WNP}

	// Session 1 evicts and commits.
	st1, err := Start(Sequential{}, src, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{2, 3, 10, 11} {
		src.Evict(id)
	}
	if err := (Sequential{}).Evict(st1); err != nil {
		t.Fatal(err)
	}

	// Session 2 starts over the tombstoned collection and streams: the
	// dead ids must stay invisible to its fresh index.
	st2, err := Start(Sequential{}, src, opt)
	if err != nil {
		t.Fatal(err)
	}
	src.Add(&kb.Description{URI: "http://late/x", KB: src.KBName(0),
		Attrs: []kb.Attribute{{Predicate: "p", Value: "late arrival tokens"}}})
	if err := (Sequential{}).Ingest(st2); err != nil {
		t.Fatal(err)
	}
	want, err := Run(Sequential{}, src, opt)
	if err != nil {
		t.Fatal(err)
	}
	sameCollection(t, "restart", want.Blocks, st2.Front.Blocks)
	sameEdges(t, want.Edges, st2.Front.Edges, true)
	for i := range st2.Front.Blocks.Blocks {
		for _, id := range st2.Front.Blocks.Blocks[i].Entities {
			if !src.Alive(id) {
				t.Fatalf("block %q resurrected dead id %d", st2.Front.Blocks.Blocks[i].Key, id)
			}
		}
	}
}

// TestEvictEdgeCases pins the degenerate paths: evicting with nothing
// pending, tombstoning an id the state never folded in, double
// tombstones, and evicting the corpus down to empty must all leave the
// state consistent with a from-scratch pass.
func TestEvictEdgeCases(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(433, 40, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	src := w.Collection
	opt := Options{Tokenize: tokenize.Default(), FilterRatio: 0.8,
		Scheme: metablocking.ECBS, Pruning: metablocking.WNP}
	st, err := Start(Sequential{}, src, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Nothing pending: a no-op that leaves Front untouched.
	before := st.Front
	if err := (Sequential{}).Evict(st); err != nil {
		t.Fatal(err)
	}
	if st.Front != before {
		t.Fatal("no-op evict replaced the front-end state")
	}

	// Double tombstone: the second Evict call is a no-op in the source,
	// so only one id reaches the state.
	if !src.Evict(3) || src.Evict(3) {
		t.Fatal("collection double-evict not idempotent")
	}
	// An id added and tombstoned before the state ever saw it.
	ghost := src.Add(&kb.Description{URI: "http://ghost/x", KB: src.KBName(0),
		Attrs: []kb.Attribute{{Predicate: "p", Value: "ghostly unique tokens"}}})
	src.Evict(ghost)
	if err := (Sequential{}).Evict(st); err != nil {
		t.Fatal(err)
	}
	// Fold the (now tombstoned) addition through an ingest as well; it
	// must be invisible.
	if err := (Sequential{}).Ingest(st); err != nil {
		t.Fatal(err)
	}
	want, err := Run(Sequential{}, src, opt)
	if err != nil {
		t.Fatal(err)
	}
	sameCollection(t, "ghost", want.Blocks, st.Front.Blocks)
	sameEdges(t, want.Edges, st.Front.Edges, true)

	// Evict everything: the front-end collapses to zero blocks and zero
	// edges without error.
	for id := 0; id < src.Len(); id++ {
		src.Evict(id)
	}
	if err := (Sequential{}).Evict(st); err != nil {
		t.Fatal(err)
	}
	if st.Front.Blocks.NumBlocks() != 0 || len(st.Front.Edges) != 0 || st.Front.Graph.NumEdges() != 0 {
		t.Fatalf("emptied corpus left %d blocks, %d graph edges, %d pruned edges",
			st.Front.Blocks.NumBlocks(), st.Front.Graph.NumEdges(), len(st.Front.Edges))
	}
	if !st.InSync() {
		t.Fatal("emptied state not in sync")
	}
}
