package pipeline

import (
	"repro/internal/blocking"
	"repro/internal/kb"
	"repro/internal/metablocking"
	"repro/internal/tokenize"
)

// Sequential is the single-threaded reference engine: it runs the
// canonical implementations in internal/blocking and
// internal/metablocking unchanged. Every other engine is defined as
// "bit-identical to Sequential".
type Sequential struct{}

// Name implements Engine.
func (Sequential) Name() string { return "sequential" }

// Stream implements Engine.
func (Sequential) Stream(src *kb.Collection, opts tokenize.Options) (blocking.Stream, error) {
	return blocking.TokenBlockingStream(src, opts), nil
}

// TokenBlocking implements Engine.
func (Sequential) TokenBlocking(src *kb.Collection, opts tokenize.Options) (*blocking.Collection, error) {
	return blocking.TokenBlocking(src, opts), nil
}

// Purge implements Engine.
func (Sequential) Purge(col *blocking.Collection, maxSize int) (*blocking.Collection, error) {
	return col.Purge(maxSize), nil
}

// Filter implements Engine.
func (Sequential) Filter(col *blocking.Collection, ratio float64) (*blocking.Collection, error) {
	return col.Filter(ratio), nil
}

// Build implements Engine.
func (Sequential) Build(col *blocking.Collection, scheme metablocking.Scheme) (*metablocking.Graph, error) {
	return metablocking.Build(col, scheme), nil
}

// Prune implements Engine.
func (Sequential) Prune(g *metablocking.Graph, alg metablocking.Pruning, opts metablocking.PruneOptions) ([]metablocking.Edge, error) {
	return g.Prune(alg, opts), nil
}

// PruneMemoized implements the optional memoPruner capability: Prune
// plus the retention memo that seeds locality-aware re-pruning.
func (Sequential) PruneMemoized(g *metablocking.Graph, alg metablocking.Pruning, opts metablocking.PruneOptions) ([]metablocking.Edge, *metablocking.PruneMemo, error) {
	kept, memo := g.PruneMemoized(alg, opts)
	return kept, memo, nil
}

// Ingest implements Engine: the single-threaded reference realization
// of the incremental pass — every other engine's Ingest must produce
// the same state.
func (Sequential) Ingest(st *State) error {
	return ingest(Sequential{}, st, nil,
		func(g *metablocking.Graph, oldCol, newCol *blocking.Collection) metablocking.UpdateStats {
			return g.Update(oldCol, newCol, st.opt.Scheme)
		})
}

// Evict implements Engine: the single-threaded reference realization
// of the decremental pass — every other engine's Evict must produce
// the same state.
func (Sequential) Evict(st *State) error {
	return evict(Sequential{}, st,
		func(g *metablocking.Graph, oldCol, newCol *blocking.Collection) metablocking.UpdateStats {
			return g.Update(oldCol, newCol, st.opt.Scheme)
		})
}
