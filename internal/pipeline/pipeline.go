// Package pipeline is the engine layer of the resolution front-end: it
// dispatches every stage before matching — token blocking, block
// purging, block filtering, blocking-graph construction, and pruning —
// through one Engine interface with three interchangeable
// realizations:
//
//   - Sequential: the single-threaded reference implementations in
//     internal/blocking and internal/metablocking — the oracle every
//     other engine is differentially tested against.
//   - Shared: the shared-memory parallel engine — sharded token
//     blocking and block cleaning (this package) plus the sharded
//     graph build and pruning of internal/parmeta.
//   - MapReduce: the paper's cluster dataflow simulated on the
//     in-process MapReduce engine (internal/parblock), kept for
//     didactic runs and cross-engine differential tests.
//
// Sequential and Shared are bit-identical on every stage — the same
// blocks in the same order, the same edges with the same float
// weights — for any worker count; the differential tests in this
// package and in internal/parmeta assert it. MapReduce produces the
// same blocks and the same retained comparisons, with edge weights
// equal up to round-off (its reducers re-serialize and re-sum float
// evidence in shuffle order — a property it has had since it was the
// paper's didactic dataflow, bounded at 1e-9 by its tests). Select
// picks the engine a Config implies, and Run drives a full front-end
// pass through any engine uniformly, replacing the per-stage dispatch
// ladders that used to live in minoaner.Start.
package pipeline

import (
	"fmt"

	"repro/internal/blocking"
	"repro/internal/kb"
	"repro/internal/metablocking"
	"repro/internal/parmeta"
	"repro/internal/store"
	"repro/internal/tokenize"
)

// Engine runs the pipeline front-end stages. Implementations must
// match the Sequential reference on every stage: blocking and cleaning
// return the same blocks in the same order, Build returns the same
// edges, Prune retains the same edges in the same output order (Shared
// to the bit, MapReduce up to float round-off in weights).
type Engine interface {
	// Name identifies the engine in logs, benchmarks, and test labels.
	Name() string
	// Stream produces the engine's token-blocking output as a
	// replayable block stream — the iterator-composed stage boundary
	// Run feeds to the cleaning transforms, so intermediate stage
	// outputs are never materialized. Must yield exactly
	// TokenBlocking's blocks in the same (ascending key) order.
	Stream(src *kb.Collection, opts tokenize.Options) (blocking.Stream, error)
	// TokenBlocking tokenizes every description and builds one block
	// per token (blocks inducing no comparisons are dropped). The
	// materialized counterpart of Stream, kept as the differential
	// reference the stream path is tested against.
	TokenBlocking(src *kb.Collection, opts tokenize.Options) (*blocking.Collection, error)
	// Purge removes oversized blocks (maxSize 0 = automatic cap).
	Purge(col *blocking.Collection, maxSize int) (*blocking.Collection, error)
	// Filter retains each description only in its ⌈ratio·|blocks|⌉
	// smallest blocks.
	Filter(col *blocking.Collection, ratio float64) (*blocking.Collection, error)
	// Build constructs the weighted blocking graph.
	Build(col *blocking.Collection, scheme metablocking.Scheme) (*metablocking.Graph, error)
	// Prune returns the retained comparisons, sorted by descending
	// weight (ties by ascending (A, B)).
	Prune(g *metablocking.Graph, alg metablocking.Pruning, opts metablocking.PruneOptions) ([]metablocking.Edge, error)
	// Ingest folds every description added to the state's source since
	// the last Start or Ingest into the front-end incrementally: delta
	// tokenization, append-only inverted-index extension, global (but
	// linear) re-cleaning, a graph update confined to the blocks the
	// batch touched, and re-pruning. st.Front afterwards equals a
	// from-scratch Run over the grown source — bit-identically on the
	// sequential and shared engines, up to the documented float
	// round-off on MapReduce-built graphs.
	Ingest(st *State) error
	// Evict splices every description tombstoned in the state's source
	// since the last pass out of the front-end incrementally: the
	// departed ids leave the inverted index (copy-on-delete of only the
	// postings they appeared in), cleaning re-runs, the graph update
	// runs down its block-shrinkage path — edges whose blocks lost
	// members re-accumulate, orphaned edges drop — and the comparison
	// list is re-pruned. st.Front afterwards equals a from-scratch Run
	// over the surviving source, with the same bit-identity contract as
	// Ingest.
	Evict(st *State) error
}

// Select resolves a (workers, mapReduce) configuration to its engine —
// the mapping minoaner.Config documents: workers ≤ 0 means one worker
// per CPU, 1 worker is the sequential reference, more than one is the
// shared-memory engine unless mapReduce routes the stages through the
// in-process MapReduce dataflow instead.
func Select(workers int, mapReduce bool) Engine {
	w := parmeta.Workers(workers)
	if w <= 1 {
		return Sequential{}
	}
	if mapReduce {
		return MapReduce{Workers: w}
	}
	return Shared{Workers: w}
}

// Options configures a full front-end pass.
type Options struct {
	// Tokenize controls token extraction for blocking.
	Tokenize tokenize.Options
	// PurgeMaxBlockSize caps block size (0 = automatic; negative =
	// skip purging).
	PurgeMaxBlockSize int
	// FilterRatio keeps each description in this fraction of its
	// smallest blocks (≤ 0 = skip filtering).
	FilterRatio float64
	// Scheme is the edge-weighting scheme.
	Scheme metablocking.Scheme
	// Pruning is the pruning algorithm.
	Pruning metablocking.Pruning
	// Reciprocal requires both endpoints to retain an edge in
	// node-centric pruning.
	Reciprocal bool
	// KPerNode pins CNP's per-node budget (0 = the paper's default,
	// ⌈assignments/|V|⌉). The default shifts as a streaming session
	// ingests — assignments and live nodes both move — which invalidates
	// every node's memoized top-k and forces locality-aware re-pruning
	// into its full-pass fallback; pinning the budget keeps the memo
	// live across deltas.
	KPerNode int
	// Store, when set, moves the streaming index's posting lists and
	// the blocking graph's arrays behind the storage boundary: only the
	// sorted token list and the graph's scalar statistics stay resident
	// between passes (see coldindex.go). Nil keeps everything in RAM.
	Store store.Store
	// PostingCache bounds the LRU of decoded posting lists in store
	// mode (≤ 0 = DefaultPostingCache).
	PostingCache int
}

// pruneOptions assembles the engine-facing pruning options of a pass
// over a cleaned collection with the given Σ|b|.
func (opt Options) pruneOptions(assignments int) metablocking.PruneOptions {
	return metablocking.PruneOptions{
		KPerNode:    opt.KPerNode,
		Reciprocal:  opt.Reciprocal,
		Assignments: assignments,
	}
}

// FrontEnd is the output of a full front-end pass: the cleaned block
// collection, the weighted blocking graph, and the retained
// comparisons in scheduling order.
type FrontEnd struct {
	Blocks *blocking.Collection
	Graph  *metablocking.Graph
	Edges  []metablocking.Edge
}

// Run drives blocking → purging → filtering → graph build → pruning
// through one engine. The result is identical for every engine and
// worker count.
//
// The stage boundaries are iterator-composed: the engine's block
// stream flows through the purge and filter transforms, and only the
// final cleaned collection is materialized (the incremental state and
// the matcher need it). The raw and purged intermediates — the bulk of
// front-end peak memory under the old slice-per-stage handoff — never
// exist. Cleaning transforms are bit-identical to the engines'
// materialized stage methods, which the differential suite asserts.
func Run(e Engine, src *kb.Collection, opt Options) (*FrontEnd, error) {
	fe, _, err := runFront(e, src, opt, false)
	return fe, err
}

// memoPruner is the optional engine capability behind locality-aware
// re-pruning: a prune that also returns the per-edge retention memo.
// The sequential and shared engines implement it; the MapReduce engine
// does not — the paper's cluster realization never defined an
// incremental dataflow, so its sessions always re-prune in full.
type memoPruner interface {
	PruneMemoized(g *metablocking.Graph, alg metablocking.Pruning, opts metablocking.PruneOptions) ([]metablocking.Edge, *metablocking.PruneMemo, error)
}

// runFront is Run plus the pruning memo: when wantMemo is set and the
// engine supports memoized pruning, the returned memo seeds a
// session's locality-aware re-pruning (nil otherwise — full re-prunes
// remain correct, just not delta-proportional).
func runFront(e Engine, src *kb.Collection, opt Options, wantMemo bool) (*FrontEnd, *metablocking.PruneMemo, error) {
	s, err := e.Stream(src, opt.Tokenize)
	if err != nil {
		return nil, nil, fmt.Errorf("pipeline(%s): blocking: %w", e.Name(), err)
	}
	if opt.PurgeMaxBlockSize >= 0 {
		s = s.Purge(opt.PurgeMaxBlockSize)
	}
	if opt.FilterRatio > 0 {
		s = s.Filter(opt.FilterRatio)
	}
	col := s.Collect()
	g, err := e.Build(col, opt.Scheme)
	if err != nil {
		return nil, nil, fmt.Errorf("pipeline(%s): graph build: %w", e.Name(), err)
	}
	popts := opt.pruneOptions(col.Assignments())
	var edges []metablocking.Edge
	var memo *metablocking.PruneMemo
	if mp, ok := e.(memoPruner); ok && wantMemo {
		edges, memo, err = mp.PruneMemoized(g, opt.Pruning, popts)
	} else {
		edges, err = e.Prune(g, opt.Pruning, popts)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("pipeline(%s): pruning: %w", e.Name(), err)
	}
	return &FrontEnd{Blocks: col, Graph: g, Edges: edges}, memo, nil
}
