package pipeline

import (
	"fmt"
	"sort"

	"repro/internal/blocking"
	"repro/internal/kb"
	"repro/internal/metablocking"
	"repro/internal/store"
)

// State is the resumable front-end of a streaming resolution session:
// everything an engine needs to fold newly arrived descriptions into
// the blocking and meta-blocking results without redoing the
// superlinear work. Start builds it; Engine.Ingest advances it.
//
// The state owns the full inverted token index (postings for every
// token, including singletons that induce no block yet — a later batch
// can grow them into real blocks), the last cleaned block collection
// (the diff baseline for the incremental graph update), and the live
// blocking graph. Front always holds the latest front-end outputs; it
// is equal — bit for bit on the sequential and shared engines — to
// what a from-scratch Run over the same source would return.
type State struct {
	// Front is the latest front-end result: the cleaned blocks, the
	// blocking graph, and the pruned comparisons in scheduling order.
	Front *FrontEnd
	// LastUpdate reports the most recent ingest's incremental graph
	// work — the evidence it stayed proportional to the delta.
	LastUpdate metablocking.UpdateStats
	// LastReprune reports the most recent pass's re-pruning work:
	// locality-aware (dirty neighborhoods only) or the full-pass
	// fallback — the evidence re-pruning stayed proportional to the
	// touched neighborhoods.
	LastReprune metablocking.RepruneStats

	src *kb.Collection
	opt Options
	n   int // source descriptions folded in so far

	// postings maps each token to the ascending ids that carry it —
	// the raw inverted index blocking assembles blocks from. Slices
	// are append-only: mid-list insertion (a merged description gaining
	// a token) copies, because cleaned blocks may alias the backing
	// arrays. Nil in store mode: posting lists then live behind
	// Options.Store and page in through pcache (see coldindex.go).
	postings map[string][]int
	keys     []string // sorted distinct tokens
	indexed  bool     // the inverted index has been materialized

	store   store.Store               // nil → resident postings
	pcache  *store.LRU[string, []int] // decoded postings (store mode)
	nPost   int                       // total posting entries (store mode)
	postErr error                     // first store failure inside a pass

	// pendingMerged carries merged-description ids taken from the
	// source by an ingest that later failed, so a retry still splices
	// them in (splicing is idempotent — ids insert only if absent).
	pendingMerged []int

	// pendingEvicted carries tombstoned ids taken from the source by an
	// evict pass that later failed, so a retry still splices them out
	// (removal is idempotent — ids are removed only if present).
	pendingEvicted []int

	cleaned *blocking.Collection // diff baseline for the graph update

	// memo holds the per-edge retention verdicts of the last prune when
	// the engine supports memoized pruning and the algorithm is
	// node-centric; nil otherwise, and after any pass that could not
	// reseed it — refront then re-prunes in full.
	memo *metablocking.PruneMemo
}

// InSync reports that the state already covers every description,
// merge, and eviction in its source — an ingest or evict now would be
// a no-op.
func (st *State) InSync() bool {
	return st.src.Len() == st.n && !st.src.HasMerged() &&
		len(st.pendingMerged) == 0 && !st.PendingEvictions()
}

// PendingEvictions reports whether the source holds tombstoned
// descriptions the state has not spliced out yet.
func (st *State) PendingEvictions() bool {
	return st.src.HasEvicted() || len(st.pendingEvicted) > 0
}

// PendingIngest reports whether the source holds additions or merges
// the state has not folded in yet.
func (st *State) PendingIngest() bool {
	return st.src.Len() != st.n || st.src.HasMerged() || len(st.pendingMerged) > 0
}

// Covered returns how many source descriptions the state has folded in.
func (st *State) Covered() int { return st.n }

// IndexFootprint reports the streaming inverted index's size: distinct
// tokens and total posting entries. Both are 0 before the first real
// streaming pass — the index is built lazily, so sessions that never
// stream pay nothing and report nothing.
func (st *State) IndexFootprint() (tokens, postings int) {
	if st.store != nil {
		return len(st.keys), st.nPost
	}
	for _, p := range st.postings {
		postings += len(p)
	}
	return len(st.postings), postings
}

// Start runs a full front-end pass through the engine and returns the
// resumable state, with Front holding the pass's outputs. Descriptions
// added to src afterwards are folded in by Engine.Ingest. The
// streaming index is built lazily on the first real ingest, so
// sessions that never stream pay nothing for it.
func Start(e Engine, src *kb.Collection, opt Options) (*State, error) {
	fe, memo, err := runFront(e, src, opt, true)
	if err != nil {
		return nil, err
	}
	st := &State{
		Front:   fe,
		src:     src,
		opt:     opt,
		n:       src.Len(),
		cleaned: fe.Blocks,
		memo:    memo,
		store:   opt.Store,
	}
	if opt.Store != nil {
		size := opt.PostingCache
		if size <= 0 {
			size = DefaultPostingCache
		}
		st.pcache = store.NewLRU[string, []int](size)
	}
	src.TakeMerged()  // the full pass covered every description
	src.TakeEvicted() // and skipped every tombstone
	return st, nil
}

// buildIndex materializes the raw inverted index over the live
// descriptions covered so far — including singleton postings, which a
// later batch can grow into real blocks. Tombstoned ids are never
// indexed, so evictions pending at this moment (and ids evicted before
// a re-Start) need no splice: the index is born without them. Runs
// once, on the first real streaming operation; the token cache is hot
// after Start's blocking pass, so this is one scan.
func (st *State) buildIndex() error {
	st.indexed = true
	postings := make(map[string][]int)
	for id := 0; id < st.n; id++ {
		if !st.src.Alive(id) {
			continue
		}
		for _, tok := range st.src.Tokens(id, st.opt.Tokenize) {
			if _, seen := postings[tok]; !seen {
				st.keys = append(st.keys, tok)
			}
			postings[tok] = append(postings[tok], id)
		}
	}
	sort.Strings(st.keys)
	if st.store != nil {
		// The token list stays hot; the lists flush behind the boundary.
		return st.flushIndex(postings)
	}
	st.postings = postings
	return nil
}

// updateFn is an engine's incremental graph-update hook: it transforms
// g from Build(oldCol) to Build(newCol) in place (structural diff plus
// a reweigh, sharded or not).
type updateFn func(g *metablocking.Graph, oldCol, newCol *blocking.Collection) metablocking.UpdateStats

// refront is the shared tail of the incremental passes (ingest and
// evict): stream the raw blocks straight off the overlaid inverted
// index (identical to a from-scratch token blocking over the live
// source, in linear time), compose the cleaning transforms over the
// stream (global but linear — the purge cap and filter ranks shift
// with every delta — yet no raw or purged collection is ever
// materialized), drive the delta graph update, and re-prune. The
// update mutates the graph in place, so the diff baseline advances
// with it in the same step — if pruning fails, a retry diffs from the
// collection the graph actually reflects.
func refront(e Engine, st *State, kind string, keys []string,
	look func(tok string) ([]int, bool), update updateFn) (*FrontEnd, error) {
	s := blocking.IndexStream(st.src, keys, look)
	if st.opt.PurgeMaxBlockSize >= 0 {
		s = s.Purge(st.opt.PurgeMaxBlockSize)
	}
	if st.opt.FilterRatio > 0 {
		s = s.Filter(st.opt.FilterRatio)
	}
	col := s.Collect()

	g := st.Front.Graph
	st.LastUpdate = update(g, st.cleaned, col)
	st.cleaned = col
	popts := st.opt.pruneOptions(col.Assignments())

	// Locality-aware re-pruning: when the last pass left a memo whose
	// verdicts are still comparable — same algorithm and retention rule,
	// the graph updated in place rather than rebuilt, and (for CNP) an
	// effective per-node budget the delta did not shift — only the dirty
	// neighborhoods re-derive their verdicts. Bit-identical to the full
	// prune by construction (the differential suite asserts it), so the
	// fallback below is a performance path, never a correctness one.
	if st.memo != nil && !st.LastUpdate.Rebuilt &&
		st.memo.Alg == st.opt.Pruning && st.memo.Reciprocal == st.opt.Reciprocal &&
		(st.memo.Alg != metablocking.CNP || g.ResolveK(popts) == st.memo.K) {
		memo := st.memo.Remap(st.LastUpdate.OldToNew, len(g.Edges))
		edges, rst := g.RepruneLocal(memo, st.LastUpdate.DirtyNodes)
		st.memo = memo
		st.LastReprune = rst
		return &FrontEnd{Blocks: col, Graph: g, Edges: edges}, nil
	}

	// Full re-prune — reseeding the memo when the engine can, so one
	// invalidated pass (a rebuild, a shifted CNP budget) does not
	// permanently demote the session to full re-prunes.
	st.memo = nil
	st.LastReprune = metablocking.RepruneStats{Full: true}
	var edges []metablocking.Edge
	var err error
	if mp, ok := e.(memoPruner); ok {
		edges, st.memo, err = mp.PruneMemoized(g, st.opt.Pruning, popts)
	} else {
		edges, err = e.Prune(g, st.opt.Pruning, popts)
	}
	if err != nil {
		st.memo = nil
		return nil, fmt.Errorf("pipeline(%s): %s pruning: %w", e.Name(), kind, err)
	}
	return &FrontEnd{Blocks: col, Graph: g, Edges: edges}, nil
}

// ingest is the incremental front-end pass shared by every engine:
// delta tokenization, append-only extension of the inverted index,
// re-assembly of the raw blocks (linear), engine-dispatched cleaning,
// the delta graph update (via the engine's update hook — structural
// diff plus a full reweigh), and engine-dispatched pruning. warm
// optionally pre-fills the source's token cache in parallel.
func ingest(e Engine, st *State, warm func(), update updateFn) error {
	n := st.src.Len()
	if n < st.n {
		return fmt.Errorf("pipeline(%s): ingest: source shrank from %d to %d descriptions", e.Name(), st.n, n)
	}
	merged := append(st.src.TakeMerged(), st.pendingMerged...)
	st.pendingMerged = merged // restored to nil only when the pass commits
	if n == st.n && len(merged) == 0 {
		return nil // nothing arrived: the state is already current
	}
	if warm != nil {
		warm()
	}
	if !st.indexed {
		if err := st.buildIndex(); err != nil {
			return fmt.Errorf("pipeline(%s): ingest: index build: %w", e.Name(), err)
		}
	}
	if err := st.loadGraph(); err != nil {
		return fmt.Errorf("pipeline(%s): ingest: graph load: %w", e.Name(), err)
	}

	// Extend the inverted index into an overlay: st.postings and
	// st.keys are only written at commit time, after every fallible
	// stage has succeeded, so a failed ingest leaves the state intact
	// and retryable. (Appending to a posting may write into shared
	// spare capacity beyond the committed slice's length — invisible to
	// the committed state, and a retry overwrites the same slots.)
	upd := make(map[string][]int)
	look := func(tok string) ([]int, bool) {
		if p, ok := upd[tok]; ok {
			return p, true
		}
		return st.getPosting(tok)
	}
	// New ids append in ascending order, so postings stay sorted and
	// duplicate-free without re-sorting. Ids tombstoned before they
	// were ever folded in are skipped — the index never learns them.
	var newKeys []string
	for id := st.n; id < n; id++ {
		if !st.src.Alive(id) {
			continue
		}
		for _, tok := range st.src.Tokens(id, st.opt.Tokenize) {
			p, seen := look(tok)
			if !seen {
				newKeys = append(newKeys, tok)
			}
			upd[tok] = append(p, id)
		}
	}
	// Merged descriptions only ever gain tokens; splice their id into
	// the postings of tokens they did not carry before.
	for _, id := range merged {
		if id >= st.n || !st.src.Alive(id) {
			continue // new since the last pass (already fully indexed) or gone
		}
		for _, tok := range st.src.Tokens(id, st.opt.Tokenize) {
			p, seen := look(tok)
			if !seen {
				newKeys = append(newKeys, tok)
				upd[tok] = []int{id}
				continue
			}
			at := sort.SearchInts(p, id)
			if at < len(p) && p[at] == id {
				continue // already indexed under this token
			}
			// Copy-on-insert: cleaned blocks may alias the old backing.
			np := make([]int, 0, len(p)+1)
			np = append(np, p[:at]...)
			np = append(np, id)
			np = append(np, p[at:]...)
			upd[tok] = np
		}
	}
	keys := st.keys
	if len(newKeys) > 0 {
		sort.Strings(newKeys)
		keys = mergeKeys(st.keys, newKeys)
	}

	fe, err := refront(e, st, "ingest", keys, look, update)
	if err != nil {
		return err
	}
	if err := st.checkPostErr("ingest"); err != nil {
		return err
	}

	// Commit: every fallible stage succeeded. (The index overlay is
	// discarded on any earlier error; a retry rebuilds it from the
	// committed postings, so a failed ingest is always retryable.)
	if err := st.commitPostings(upd); err != nil {
		return err
	}
	st.keys = keys
	st.pendingMerged = nil
	st.n = n
	st.Front = fe
	// The graph stays resident through a streaming burst — the next
	// pass would only page it straight back in. The session spills it
	// at stage boundaries (Start, Resume, compaction), where matching
	// takes over and the arrays go idle.
	return nil
}

// mergeKeys merges two sorted, disjoint key slices.
func mergeKeys(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
