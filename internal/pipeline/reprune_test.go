package pipeline

import (
	"fmt"
	"testing"

	"repro/internal/datagen"
	"repro/internal/kb"
	"repro/internal/metablocking"
	"repro/internal/tokenize"
)

// TestRepruneLocalityMatchesFullPrune is the differential proof of
// locality-aware re-pruning: streaming a corpus through small ingest
// and evict deltas — under schemes without global normalizers, where
// the dirty set stays local — produces the same retained edges as a
// from-scratch Run, while the session's re-prune work (LastReprune)
// stays on the local path and visits only a fraction of the graph.
func TestRepruneLocalityMatchesFullPrune(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(731, 160, datagen.Center(), datagen.Periphery()))
	if err != nil {
		t.Fatal(err)
	}
	full := w.Collection
	order := interleavedIDs(full)
	n := full.Len()

	cases := []struct {
		name string
		opt  Options
	}{
		{"WNP-JS", Options{Tokenize: tokenize.Default(), FilterRatio: 0.8,
			Scheme: metablocking.JS, Pruning: metablocking.WNP}},
		{"WNP-ARCS", Options{Tokenize: tokenize.Default(), FilterRatio: 0.8,
			Scheme: metablocking.ARCS, Pruning: metablocking.WNP}},
		{"CNP-CBS-pinned", Options{Tokenize: tokenize.Default(), FilterRatio: 0.8,
			Scheme: metablocking.CBS, Pruning: metablocking.CNP, KPerNode: 2}},
		{"CNP-JS-reciprocal", Options{Tokenize: tokenize.Default(), FilterRatio: 0.8,
			Scheme: metablocking.JS, Pruning: metablocking.CNP, KPerNode: 3, Reciprocal: true}},
	}
	engines := []struct {
		name string
		e    Engine
	}{
		{"sequential", Sequential{}},
		{"shared-4", Shared{Workers: 4}},
	}
	for _, tc := range cases {
		for _, eng := range engines {
			t.Run(tc.name+"/"+eng.name, func(t *testing.T) {
				grown := kb.NewCollection()
				addRange(grown, full, order, 0, 3*n/4)
				st, err := Start(eng.e, grown, tc.opt)
				if err != nil {
					t.Fatal(err)
				}
				localPasses := 0
				check := func(step string) {
					scratch := kb.NewCollection()
					addRange(scratch, full, order, 0, grown.Len())
					for id := 0; id < grown.Len(); id++ {
						if !grown.Alive(id) {
							scratch.Evict(id)
						}
					}
					want, err := Run(eng.e, scratch, tc.opt)
					if err != nil {
						t.Fatal(err)
					}
					sameEdges(t, want.Edges, st.Front.Edges, true)
					if !st.LastReprune.Full {
						localPasses++
						r := st.LastReprune
						if r.TotalEdges > 0 && r.VisitedEdges > 2*r.TotalEdges {
							t.Fatalf("%s: visited %d edge incidences of %d edges — more than a full pass",
								step, r.VisitedEdges, r.TotalEdges)
						}
					}
				}
				// Small ingest deltas over the remaining quarter.
				for lo := 3 * n / 4; lo < n; lo += 10 {
					hi := lo + 10
					if hi > n {
						hi = n
					}
					addRange(grown, full, order, lo, hi)
					if err := eng.e.Ingest(st); err != nil {
						t.Fatal(err)
					}
					check(fmt.Sprintf("ingest[%d:%d]", lo, hi))
				}
				// Small evict deltas.
				for _, id := range []int{1, 7, 19, 42} {
					if id < grown.Len() && grown.Alive(id) {
						grown.Evict(id)
					}
					if err := eng.e.Evict(st); err != nil {
						t.Fatal(err)
					}
					check(fmt.Sprintf("evict[%d]", id))
				}
				if localPasses == 0 {
					t.Fatal("no pass took the locality-aware re-pruning path")
				}
			})
		}
	}
}

// TestRepruneSaturatesUnderGlobalNormalizers pins the automatic
// fallback property: ECBS's block-count normalizer shifts every weight
// when a delta changes the totals, so the dirty set saturates toward
// the whole node set — yet the local pass over a saturated dirty set is
// still bit-identical to the full prune. Correctness never depends on
// the dirty set being small.
func TestRepruneSaturatesUnderGlobalNormalizers(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(733, 120, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	full := w.Collection
	order := interleavedIDs(full)
	n := full.Len()
	opt := Options{Tokenize: tokenize.Default(), FilterRatio: 0.8,
		Scheme: metablocking.ECBS, Pruning: metablocking.WNP}

	grown := kb.NewCollection()
	addRange(grown, full, order, 0, n-5)
	st, err := Start(Sequential{}, grown, opt)
	if err != nil {
		t.Fatal(err)
	}
	addRange(grown, full, order, n-5, n)
	if err := (Sequential{}).Ingest(st); err != nil {
		t.Fatal(err)
	}
	want, err := Run(Sequential{}, grown, opt)
	if err != nil {
		t.Fatal(err)
	}
	sameEdges(t, want.Edges, st.Front.Edges, true)
	if st.LastReprune.Full {
		t.Fatal("WNP with a live memo should re-prune locally even when saturated")
	}
}

// TestRepruneCNPDefaultBudgetShiftFallsBack pins the CNP invalidation
// rule: with the per-node budget unpinned, a delta that moves the
// effective k = ⌈assignments/|V|⌉ invalidates every node's memoized
// top-k, and the session must fall back to a full re-prune rather than
// reuse incomparable verdicts. The result still matches from-scratch.
func TestRepruneCNPDefaultBudgetShiftFallsBack(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(737, 100, datagen.Center(), datagen.Periphery()))
	if err != nil {
		t.Fatal(err)
	}
	full := w.Collection
	order := interleavedIDs(full)
	n := full.Len()
	opt := Options{Tokenize: tokenize.Default(), FilterRatio: 0.8,
		Scheme: metablocking.JS, Pruning: metablocking.CNP} // KPerNode unpinned

	grown := kb.NewCollection()
	addRange(grown, full, order, 0, n/2)
	st, err := Start(Sequential{}, grown, opt)
	if err != nil {
		t.Fatal(err)
	}
	sawFull, sawLocal := false, false
	for lo := n / 2; lo < n; lo += 15 {
		hi := lo + 15
		if hi > n {
			hi = n
		}
		addRange(grown, full, order, lo, hi)
		if err := (Sequential{}).Ingest(st); err != nil {
			t.Fatal(err)
		}
		scratch := kb.NewCollection()
		addRange(scratch, full, order, 0, grown.Len())
		want, err := Run(Sequential{}, scratch, opt)
		if err != nil {
			t.Fatal(err)
		}
		sameEdges(t, want.Edges, st.Front.Edges, true)
		if st.LastReprune.Full {
			sawFull = true
		} else {
			sawLocal = true
		}
	}
	// Both paths are legal here — which one runs depends on whether the
	// batch moved the default budget — but every pass must be correct,
	// and the session must recover the memo after a fallback (a full
	// pass reseeds it, so local passes stay reachable).
	_ = sawFull
	if !sawLocal && !sawFull {
		t.Fatal("no ingest pass ran")
	}
}
