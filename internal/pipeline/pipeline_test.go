package pipeline

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/blocking"
	"repro/internal/datagen"
	"repro/internal/kb"
	"repro/internal/metablocking"
	"repro/internal/tokenize"
)

// worlds returns the differential workloads: a clean–clean two-KB
// world and a dirty single-KB world with duplicates — the two ER
// settings of the paper, which exercise the cross-KB comparison filter
// and the partition skew differently.
func worlds(t testing.TB) map[string]*kb.Collection {
	t.Helper()
	srcs := make(map[string]*kb.Collection)
	for name, cfg := range map[string]datagen.Config{
		"cleanclean": datagen.TwoKBs(2016, 220, datagen.Center(), datagen.Center()),
		"dirty":      datagen.DirtyKB(2016, 220, 3),
	} {
		w, err := datagen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		srcs[name] = w.Collection
	}
	return srcs
}

// tokenizeCombos are the option combinations the differential tests
// sweep: the pipeline default plus variations flipping each lever that
// changes the token stream shape.
func tokenizeCombos() map[string]tokenize.Options {
	plain := tokenize.Options{MinLength: 1}
	noCamel := tokenize.Default()
	noCamel.SplitCamelCase = false
	keepStops := tokenize.Default()
	keepStops.DropStopWords = false
	shortTokens := tokenize.Default()
	shortTokens.MinLength = 1
	shortTokens.MaxLength = 6
	return map[string]tokenize.Options{
		"default":     tokenize.Default(),
		"plain":       plain,
		"noCamel":     noCamel,
		"keepStops":   keepStops,
		"shortTokens": shortTokens,
	}
}

var workerCounts = []int{1, 2, 4, 8}

// engineFor returns the engine under test for a worker count: the
// sequential reference at 1, the shared-memory engine above.
func engineFor(workers int) Engine {
	if workers == 1 {
		return Sequential{}
	}
	return Shared{Workers: workers}
}

// cleaningEngines lists every engine whose Purge/Filter must match the
// sequential reference exactly — including the MapReduce dataflow
// jobs, which no longer delegate to it.
func cleaningEngines(workers int) []Engine {
	es := []Engine{engineFor(workers)}
	if workers > 1 {
		es = append(es, MapReduce{Workers: workers})
	}
	return es
}

func sameCollection(t *testing.T, label string, want, got *blocking.Collection) {
	t.Helper()
	if got.CleanClean != want.CleanClean {
		t.Fatalf("%s: CleanClean=%v, want %v", label, got.CleanClean, want.CleanClean)
	}
	if len(got.Blocks) != len(want.Blocks) {
		t.Fatalf("%s: %d blocks, want %d", label, len(got.Blocks), len(want.Blocks))
	}
	for i := range want.Blocks {
		w, g := &want.Blocks[i], &got.Blocks[i]
		if g.Key != w.Key {
			t.Fatalf("%s: block %d key %q, want %q", label, i, g.Key, w.Key)
		}
		if len(g.Entities) != len(w.Entities) {
			t.Fatalf("%s: block %d (%q): %d entities, want %d", label, i, w.Key, len(g.Entities), len(w.Entities))
		}
		for j := range w.Entities {
			if g.Entities[j] != w.Entities[j] {
				t.Fatalf("%s: block %d (%q) entity %d = %d, want %d", label, i, w.Key, j, g.Entities[j], w.Entities[j])
			}
		}
	}
}

// sameEdges compares pruned edge lists. With exact set, weights must
// match bit for bit; otherwise endpoints must match and weights agree
// within the relative tolerance the MapReduce engine's own
// differential tests use.
func sameEdges(t *testing.T, want, got []metablocking.Edge, exact bool) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d pruned edges, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if exact {
			if g != w {
				t.Fatalf("edge %d = %+v, want %+v", i, g, w)
			}
			continue
		}
		if g.A != w.A || g.B != w.B {
			t.Fatalf("edge %d = (%d,%d), want (%d,%d)", i, g.A, g.B, w.A, w.B)
		}
		if math.Abs(g.Weight-w.Weight) > 1e-9*(1+math.Abs(w.Weight)) {
			t.Fatalf("edge %d weight = %v, want %v", i, g.Weight, w.Weight)
		}
	}
}

// TestTokenBlockingMatchesSequential asserts that the sharded token
// blocking produces the sequential reference's collection — same
// blocks, same order, same entity lists — for every tokenize option
// combination and worker count, on both ER settings.
func TestTokenBlockingMatchesSequential(t *testing.T) {
	for world, src := range worlds(t) {
		for optName, opts := range tokenizeCombos() {
			want := blocking.TokenBlocking(src, opts)
			for _, workers := range workerCounts {
				label := fmt.Sprintf("%s/%s/workers=%d", world, optName, workers)
				t.Run(label, func(t *testing.T) {
					got, err := engineFor(workers).TokenBlocking(src, opts)
					if err != nil {
						t.Fatal(err)
					}
					sameCollection(t, label, want, got)
				})
			}
		}
	}
}

// TestCleaningMatchesSequential runs block purging (automatic and
// explicit caps) and block filtering (several ratios) through the
// shared engine and compares against the sequential reference, for
// every worker count.
func TestCleaningMatchesSequential(t *testing.T) {
	for world, src := range worlds(t) {
		raw := blocking.TokenBlocking(src, tokenize.Default())
		for _, maxSize := range []int{0, 3, 25} {
			want := raw.Purge(maxSize)
			for _, workers := range workerCounts {
				for _, eng := range cleaningEngines(workers) {
					label := fmt.Sprintf("%s/purge=%d/%s/workers=%d", world, maxSize, eng.Name(), workers)
					t.Run(label, func(t *testing.T) {
						got, err := eng.Purge(raw, maxSize)
						if err != nil {
							t.Fatal(err)
						}
						sameCollection(t, label, want, got)
					})
				}
			}
		}
		purged := raw.Purge(0)
		for _, ratio := range []float64{0.5, 0.8, 1.0} {
			want := purged.Filter(ratio)
			for _, workers := range workerCounts {
				for _, eng := range cleaningEngines(workers) {
					label := fmt.Sprintf("%s/filter=%.1f/%s/workers=%d", world, ratio, eng.Name(), workers)
					t.Run(label, func(t *testing.T) {
						got, err := eng.Filter(purged, ratio)
						if err != nil {
							t.Fatal(err)
						}
						sameCollection(t, label, want, got)
					})
				}
			}
		}
	}
}

// TestRunMatchesSequential drives the full front-end — blocking,
// cleaning, graph build, pruning — through every engine and asserts
// bit-identical outputs end to end: the cleaned collection and the
// pruned edge list, float weights included.
func TestRunMatchesSequential(t *testing.T) {
	for world, src := range worlds(t) {
		for _, cse := range []struct {
			scheme  metablocking.Scheme
			pruning metablocking.Pruning
		}{
			{metablocking.ECBS, metablocking.WNP},
			{metablocking.ARCS, metablocking.CEP},
			{metablocking.JS, metablocking.CNP},
			{metablocking.CBS, metablocking.WEP},
		} {
			opt := Options{
				Tokenize:    tokenize.Default(),
				FilterRatio: 0.8,
				Scheme:      cse.scheme,
				Pruning:     cse.pruning,
			}
			want, err := Run(Sequential{}, src, opt)
			if err != nil {
				t.Fatal(err)
			}
			engines := []Engine{
				Shared{Workers: 2},
				Shared{Workers: 4},
				Shared{Workers: 8},
				MapReduce{Workers: 4},
			}
			for _, eng := range engines {
				label := fmt.Sprintf("%s/%v/%v/%s", world, cse.scheme, cse.pruning, eng.Name())
				if sh, ok := eng.(Shared); ok {
					label = fmt.Sprintf("%s-%d", label, sh.Workers)
				}
				// The shared-memory engine is bit-identical; the
				// MapReduce engine re-serializes and re-sums float
				// evidence in shuffle order, so its weights agree only
				// within round-off (the tolerance its own differential
				// tests use).
				_, exact := eng.(Shared)
				t.Run(label, func(t *testing.T) {
					got, err := Run(eng, src, opt)
					if err != nil {
						t.Fatal(err)
					}
					sameCollection(t, label, want.Blocks, got.Blocks)
					sameEdges(t, want.Edges, got.Edges, exact)
				})
			}
		}
	}
}

// TestRunSkipsOptionalStages checks the purge/filter gating: negative
// PurgeMaxBlockSize skips purging, non-positive FilterRatio skips
// filtering — on every engine, identically.
func TestRunSkipsOptionalStages(t *testing.T) {
	src := worlds(t)["cleanclean"]
	opt := Options{
		Tokenize:          tokenize.Default(),
		PurgeMaxBlockSize: -1,
		FilterRatio:       -1,
		Scheme:            metablocking.ECBS,
		Pruning:           metablocking.WNP,
	}
	want := blocking.TokenBlocking(src, opt.Tokenize)
	for _, eng := range []Engine{Sequential{}, Shared{Workers: 4}, MapReduce{Workers: 2}} {
		fe, err := Run(eng, src, opt)
		if err != nil {
			t.Fatal(err)
		}
		sameCollection(t, eng.Name(), want, fe.Blocks)
	}
}

// TestSelect checks the Config → engine mapping.
func TestSelect(t *testing.T) {
	if got := Select(1, false).Name(); got != "sequential" {
		t.Errorf("Select(1, false) = %s, want sequential", got)
	}
	if got := Select(1, true).Name(); got != "sequential" {
		t.Errorf("Select(1, true) = %s, want sequential (MapReduce needs >1 workers)", got)
	}
	if got := Select(4, false).Name(); got != "shared" {
		t.Errorf("Select(4, false) = %s, want shared", got)
	}
	if got := Select(4, true).Name(); got != "mapreduce" {
		t.Errorf("Select(4, true) = %s, want mapreduce", got)
	}
	if eng, ok := Select(0, false).(Shared); ok {
		if eng.Workers < 1 {
			t.Errorf("Select(0, false) resolved %d workers", eng.Workers)
		}
	}
}

// TestEmptyAndDegenerate covers empty sources and collections with no
// blocks on the shared engine.
func TestEmptyAndDegenerate(t *testing.T) {
	eng := Shared{Workers: 4}
	empty := kb.NewCollection()
	col, err := eng.TokenBlocking(empty, tokenize.Default())
	if err != nil {
		t.Fatal(err)
	}
	if col.NumBlocks() != 0 {
		t.Fatalf("empty source produced %d blocks", col.NumBlocks())
	}
	if col, err = eng.Purge(col, 0); err != nil || col.NumBlocks() != 0 {
		t.Fatalf("purge of empty collection: blocks=%d err=%v", col.NumBlocks(), err)
	}
	if col, err = eng.Filter(col, 0.8); err != nil || col.NumBlocks() != 0 {
		t.Fatalf("filter of empty collection: blocks=%d err=%v", col.NumBlocks(), err)
	}
}

// TestStressDeterminism reruns the shared front-end with an
// oversubscribed worker count; under -race this is the concurrency
// stress, and every repetition must reproduce the reference bits.
func TestStressDeterminism(t *testing.T) {
	src := worlds(t)["dirty"]
	opt := Options{
		Tokenize:    tokenize.Default(),
		FilterRatio: 0.8,
		Scheme:      metablocking.EJS,
		Pruning:     metablocking.CNP,
	}
	want, err := Run(Sequential{}, src, opt)
	if err != nil {
		t.Fatal(err)
	}
	reps := 6
	if testing.Short() {
		reps = 2
	}
	for rep := 0; rep < reps; rep++ {
		got, err := Run(Shared{Workers: 7}, src, opt)
		if err != nil {
			t.Fatal(err)
		}
		sameCollection(t, fmt.Sprintf("rep %d", rep), want.Blocks, got.Blocks)
		if len(got.Edges) != len(want.Edges) {
			t.Fatalf("rep %d: %d edges, want %d", rep, len(got.Edges), len(want.Edges))
		}
		for i := range want.Edges {
			if got.Edges[i] != want.Edges[i] {
				t.Fatalf("rep %d: edge %d = %+v, want %+v", rep, i, got.Edges[i], want.Edges[i])
			}
		}
	}
}
