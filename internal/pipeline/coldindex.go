package pipeline

import (
	"encoding/binary"
	"fmt"

	"repro/internal/store"
)

// Cold postings: with a store attached (Options.Store), the streaming
// inverted index keeps only its sorted token list hot — the store's
// locator maps each token to its segment offset — and the posting lists
// themselves live behind the storage boundary, paging in through a
// small LRU of decoded postings. The overlay discipline of ingest and
// evict is unchanged: passes read through lookups that consult the
// overlay first, and only a committed pass writes the store, so a
// failed pass still leaves the index intact and retryable (up to store
// write errors at commit time, which the session treats as fatal).
//
// Decoded postings are fresh slices, never mutated in place — a commit
// replaces the cache entry — so the copy-on-insert invariant cleaned
// blocks rely on holds trivially in store mode.

// postTag is the store key namespace for posting lists.
const postTag = 'p'

// DefaultPostingCache is the default capacity of the decoded-posting
// LRU when Options.Store is set without a size.
const DefaultPostingCache = 4096

func postKey(tok string) []byte {
	k := make([]byte, 1+len(tok))
	k[0] = postTag
	copy(k[1:], tok)
	return k
}

// encodePosting serializes an ascending id list as uvarint deltas.
func encodePosting(p []int) []byte {
	b := make([]byte, 0, 2+2*len(p))
	b = binary.AppendUvarint(b, uint64(len(p)))
	prev := 0
	for _, id := range p {
		b = binary.AppendUvarint(b, uint64(id-prev))
		prev = id
	}
	return b
}

func decodePosting(buf []byte) ([]int, error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 || n > uint64(len(buf)) {
		return nil, fmt.Errorf("pipeline: corrupt posting (count)")
	}
	buf = buf[w:]
	p := make([]int, 0, n)
	prev := 0
	for i := uint64(0); i < n; i++ {
		d, w := binary.Uvarint(buf)
		if w <= 0 {
			return nil, fmt.Errorf("pipeline: corrupt posting (delta)")
		}
		buf = buf[w:]
		prev += int(d)
		p = append(p, prev)
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("pipeline: %d trailing bytes after posting", len(buf))
	}
	return p, nil
}

// getPosting resolves a token's committed posting list: the resident
// map in legacy mode; the LRU, then the store, in store mode. Store
// failures park in st.postErr (the lookup signature has no error
// return) and fail the pass at its next checkpoint.
func (st *State) getPosting(tok string) ([]int, bool) {
	if st.store == nil {
		p, ok := st.postings[tok]
		return p, ok
	}
	if p, ok := st.pcache.Get(tok); ok {
		return p, true
	}
	buf, ok, err := st.store.Get(postKey(tok))
	if err != nil {
		st.setPostErr(err)
		return nil, false
	}
	if !ok {
		return nil, false
	}
	p, err := decodePosting(buf)
	if err != nil {
		st.setPostErr(err)
		return nil, false
	}
	st.pcache.Put(tok, p)
	return p, true
}

func (st *State) setPostErr(err error) {
	if st.postErr == nil {
		st.postErr = err
	}
}

// checkPostErr surfaces a store failure absorbed by a lookup inside
// the pass; the caller returns it before committing anything.
func (st *State) checkPostErr(kind string) error {
	if st.postErr != nil {
		err := st.postErr
		st.postErr = nil
		return fmt.Errorf("pipeline: %s: posting store: %w", kind, err)
	}
	return nil
}

// commitPostings applies a pass's posting overlay to the committed
// index. Empty lists are deletions (evict drains them); nPost tracks
// the total entry count the resident map used to answer by iteration.
func (st *State) commitPostings(upd map[string][]int) error {
	if st.store == nil {
		for tok, p := range upd {
			if len(p) == 0 {
				delete(st.postings, tok)
				continue
			}
			st.postings[tok] = p
		}
		return nil
	}
	for tok, p := range upd {
		old, _ := st.getPosting(tok)
		if err := st.checkPostErr("commit"); err != nil {
			return err
		}
		if len(p) == 0 {
			if err := st.store.Delete(postKey(tok)); err != nil {
				return fmt.Errorf("pipeline: commit: posting store: %w", err)
			}
			st.pcache.Remove(tok)
			st.nPost -= len(old)
			continue
		}
		if err := st.store.Put(postKey(tok), encodePosting(p)); err != nil {
			return fmt.Errorf("pipeline: commit: posting store: %w", err)
		}
		st.pcache.Put(tok, p)
		st.nPost += len(p) - len(old)
	}
	return nil
}

// flushIndex writes a freshly built index to the store, clearing any
// stale postings first (a session re-Start after compaction rebuilds
// the index while the store still holds the superseded one).
func (st *State) flushIndex(postings map[string][]int) error {
	if err := store.DropPrefix(st.store, []byte{postTag}); err != nil {
		return err
	}
	st.pcache.Clear()
	st.nPost = 0
	for tok, p := range postings {
		if err := st.store.Put(postKey(tok), encodePosting(p)); err != nil {
			return err
		}
		st.nPost += len(p)
	}
	return nil
}

// spillGraph pages the blocking graph out; loadGraph pages it back in
// at the start of a streaming pass (a no-op while it is already
// resident, so back-to-back passes pay the round trip once per burst).
// Both no-op in legacy mode.
func (st *State) spillGraph() error {
	if st.store == nil || st.Front == nil {
		return nil
	}
	return st.Front.Graph.Spill(st.store)
}

func (st *State) loadGraph() error {
	if st.Front == nil {
		return nil
	}
	return st.Front.Graph.Load()
}

// SpillGraph pages the blocking graph's arrays out to the store until
// the next streaming pass needs them — called by the session at stage
// boundaries: after Start's front-end build, when matching takes over,
// and around a compaction epoch. No-op without a store.
func (st *State) SpillGraph() error { return st.spillGraph() }

// CacheStats returns the decoded-posting LRU's cumulative hit and miss
// counts (zero without a store).
func (st *State) CacheStats() (hits, misses int64) {
	if st.pcache == nil {
		return 0, 0
	}
	return st.pcache.Counters()
}
