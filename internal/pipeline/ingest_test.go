package pipeline

import (
	"fmt"
	"testing"

	"repro/internal/blocking"
	"repro/internal/datagen"
	"repro/internal/kb"
	"repro/internal/metablocking"
	"repro/internal/tokenize"
)

// interleavedIDs reorders src's ids round-robin across KBs so every
// ingest batch spans all KBs (the steady-state streaming shape).
func interleavedIDs(src *kb.Collection) []int {
	perKB := make([][]int, src.NumKBs())
	for id := 0; id < src.Len(); id++ {
		perKB[src.KBOf(id)] = append(perKB[src.KBOf(id)], id)
	}
	var out []int
	for i := 0; len(out) < src.Len(); i++ {
		for _, ids := range perKB {
			if i < len(ids) {
				out = append(out, ids[i])
			}
		}
	}
	return out
}

func copyDesc(d *kb.Description) *kb.Description {
	return &kb.Description{URI: d.URI, KB: d.KB, Types: d.Types, Attrs: d.Attrs, Links: d.Links}
}

// addRange copies descriptions order[lo:hi] of full into dst.
func addRange(dst, full *kb.Collection, order []int, lo, hi int) {
	for _, id := range order[lo:hi] {
		dst.Add(copyDesc(full.Desc(id)))
	}
}

// TestIngestMatchesFromScratch is the front-end half of the streaming
// equivalence guarantee: growing a source collection through
// Engine.Ingest in K batches leaves the state's Front equal to a
// from-scratch Run over the same corpus — bit-identically on the
// sequential and shared engines, within the documented float round-off
// on MapReduce — for every batch split and engine.
func TestIngestMatchesFromScratch(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(421, 180, datagen.Center(), datagen.Periphery()))
	if err != nil {
		t.Fatal(err)
	}
	full := w.Collection
	order := interleavedIDs(full)
	opt := Options{
		Tokenize:    tokenize.Default(),
		FilterRatio: 0.8,
		Scheme:      metablocking.ECBS,
		Pruning:     metablocking.WNP,
	}
	engines := []struct {
		name  string
		e     Engine
		exact bool
	}{
		{"sequential", Sequential{}, true},
		{"shared-2", Shared{Workers: 2}, true},
		{"shared-4", Shared{Workers: 4}, true},
		{"mapreduce-2", MapReduce{Workers: 2}, false},
	}
	for _, k := range []int{2, 3, 5} {
		for _, eng := range engines {
			label := fmt.Sprintf("K=%d/%s", k, eng.name)
			t.Run(label, func(t *testing.T) {
				grown := kb.NewCollection()
				n := full.Len()
				addRange(grown, full, order, 0, n/k)
				st, err := Start(eng.e, grown, opt)
				if err != nil {
					t.Fatal(err)
				}
				for b := 1; b <= k; b++ {
					lo, hi := b*n/k, (b+1)*n/k
					if b == k {
						hi = n
					}
					if lo < hi {
						addRange(grown, full, order, lo, hi)
					}
					if err := eng.e.Ingest(st); err != nil {
						t.Fatal(err)
					}
					// The oracle: a from-scratch pass over an identical
					// corpus on the same engine.
					scratch := kb.NewCollection()
					addRange(scratch, full, order, 0, grown.Len())
					want, err := Run(eng.e, scratch, opt)
					if err != nil {
						t.Fatal(err)
					}
					sameCollection(t, label, want.Blocks, st.Front.Blocks)
					sameEdges(t, want.Edges, st.Front.Edges, eng.exact)
					if st.Covered() != grown.Len() {
						t.Fatalf("state covers %d descriptions, want %d", st.Covered(), grown.Len())
					}
				}
				// Across engines the final state must also match the
				// sequential reference.
				wantSeq, err := Run(Sequential{}, grown, opt)
				if err != nil {
					t.Fatal(err)
				}
				sameCollection(t, label+"/vs-sequential", wantSeq.Blocks, st.Front.Blocks)
				sameEdges(t, wantSeq.Edges, st.Front.Edges, eng.exact)
			})
		}
	}
}

// TestIngestMergedDescriptions covers the merge path: re-adding an
// existing KB+URI during an ingest batch extends the description, and
// the spliced inverted index still reproduces the from-scratch state.
func TestIngestMergedDescriptions(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(422, 90, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	full := w.Collection
	order := interleavedIDs(full)
	opt := Options{
		Tokenize:    tokenize.Default(),
		FilterRatio: 0.8,
		Scheme:      metablocking.ARCS,
		Pruning:     metablocking.CNP,
	}
	n := full.Len()
	extend := func(col *kb.Collection) {
		// Extend three early descriptions with fresh attribute values —
		// new tokens that must be spliced into existing postings.
		for i, id := range []int{0, 1, 2} {
			d := full.Desc(order[id])
			col.Add(&kb.Description{URI: d.URI, KB: d.KB, Attrs: []kb.Attribute{
				{Predicate: "late", Value: fmt.Sprintf("lateinfo extranote%d", i)},
			}})
		}
	}
	for _, eng := range []Engine{Sequential{}, Shared{Workers: 4}} {
		t.Run(eng.Name(), func(t *testing.T) {
			grown := kb.NewCollection()
			addRange(grown, full, order, 0, n/2)
			st, err := Start(eng, grown, opt)
			if err != nil {
				t.Fatal(err)
			}
			addRange(grown, full, order, n/2, n)
			extend(grown)
			if err := eng.Ingest(st); err != nil {
				t.Fatal(err)
			}
			scratch := kb.NewCollection()
			addRange(scratch, full, order, 0, n)
			extend(scratch)
			want, err := Run(eng, scratch, opt)
			if err != nil {
				t.Fatal(err)
			}
			sameCollection(t, eng.Name(), want.Blocks, st.Front.Blocks)
			sameEdges(t, want.Edges, st.Front.Edges, true)
		})
	}
}

// TestIngestNothingNew checks the degenerate ingest: no additions
// since the last pass leaves the front-end unchanged.
func TestIngestNothingNew(t *testing.T) {
	w, err := datagen.Generate(datagen.TwoKBs(423, 60, datagen.Center(), datagen.Center()))
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Tokenize: tokenize.Default(), FilterRatio: 0.8,
		Scheme: metablocking.ECBS, Pruning: metablocking.WNP}
	st, err := Start(Sequential{}, w.Collection, opt)
	if err != nil {
		t.Fatal(err)
	}
	before := st.Front
	if err := (Sequential{}).Ingest(st); err != nil {
		t.Fatal(err)
	}
	sameCollection(t, "no-op", before.Blocks, st.Front.Blocks)
	sameEdges(t, before.Edges, st.Front.Edges, true)
}

// TestIngestSingletonGrowth pins the reason the state keeps singleton
// postings: a token carried by one description must become a real
// block when a later batch brings its second carrier.
func TestIngestSingletonGrowth(t *testing.T) {
	col := kb.NewCollection()
	add := func(kbName, uri, val string) {
		col.Add(&kb.Description{URI: uri, KB: kbName, Attrs: []kb.Attribute{{Predicate: "p", Value: val}}})
	}
	add("a", "a1", "uniquetoken alpha")
	add("b", "b1", "alpha beta")
	opt := Options{Tokenize: tokenize.Default(), Scheme: metablocking.CBS, Pruning: metablocking.WEP}
	st, err := Start(Sequential{}, col, opt)
	if err != nil {
		t.Fatal(err)
	}
	add("b", "b2", "uniquetoken beta")
	if err := (Sequential{}).Ingest(st); err != nil {
		t.Fatal(err)
	}
	found := false
	for i := range st.Front.Blocks.Blocks {
		if st.Front.Blocks.Blocks[i].Key == "uniquetoken" {
			found = true
			if got := st.Front.Blocks.Blocks[i].Entities; len(got) != 2 || got[0] != 0 || got[1] != 2 {
				t.Fatalf("uniquetoken block entities = %v, want [0 2]", got)
			}
		}
	}
	if !found {
		t.Fatal("singleton token never grew into a block")
	}
	want := blocking.TokenBlocking(col, opt.Tokenize)
	sameCollection(t, "singleton", want, st.Front.Blocks)
}
