package pipeline

import (
	"repro/internal/blocking"
	"repro/internal/kb"
	"repro/internal/mapreduce"
	"repro/internal/metablocking"
	"repro/internal/parblock"
	"repro/internal/tokenize"
)

// MapReduce is the cluster-dataflow engine: blocking, graph
// construction, and node-centric pruning run as in-process MapReduce
// jobs (internal/parblock), mirroring the paper's companion Hadoop
// realization. Stages the dataflow never defined — block cleaning and
// edge-centric pruning — delegate to the sequential reference, exactly
// as the original per-stage dispatch in minoaner.Start did. Kept for
// didactic runs and cross-engine differential tests; the Shared engine
// is the fast path on one machine.
type MapReduce struct {
	// Workers is the number of concurrent map/reduce tasks (> 1).
	Workers int
}

// Name implements Engine.
func (MapReduce) Name() string { return "mapreduce" }

func (e MapReduce) cfg() mapreduce.Config { return mapreduce.Config{Workers: e.Workers} }

// TokenBlocking implements Engine.
func (e MapReduce) TokenBlocking(src *kb.Collection, opts tokenize.Options) (*blocking.Collection, error) {
	return parblock.TokenBlocking(src, opts, e.cfg())
}

// Purge implements Engine.
func (e MapReduce) Purge(col *blocking.Collection, maxSize int) (*blocking.Collection, error) {
	return col.Purge(maxSize), nil
}

// Filter implements Engine.
func (e MapReduce) Filter(col *blocking.Collection, ratio float64) (*blocking.Collection, error) {
	return col.Filter(ratio), nil
}

// Build implements Engine.
func (e MapReduce) Build(col *blocking.Collection, scheme metablocking.Scheme) (*metablocking.Graph, error) {
	return parblock.Graph(col, scheme, e.cfg())
}

// Prune implements Engine.
func (e MapReduce) Prune(g *metablocking.Graph, alg metablocking.Pruning, opts metablocking.PruneOptions) ([]metablocking.Edge, error) {
	if alg == metablocking.WNP || alg == metablocking.CNP {
		return parblock.PruneNodeCentric(g, alg, opts, e.cfg())
	}
	return g.Prune(alg, opts), nil
}
