package pipeline

import (
	"context"

	"repro/internal/blocking"
	"repro/internal/kb"
	"repro/internal/mapreduce"
	"repro/internal/metablocking"
	"repro/internal/parblock"
	"repro/internal/tokenize"
)

// MapReduce is the cluster-dataflow engine: blocking, block cleaning,
// graph construction, and node-centric pruning run as MapReduce jobs
// (internal/parblock), mirroring the paper's companion Hadoop
// realization. Only edge-centric pruning — a global top-K/mean the
// dataflow never defined — delegates to the sequential reference. The
// Runner decides where tasks execute: in-process goroutines (nil /
// LocalRunner, the single-node fast path) or `minoaner worker`
// subprocesses (ProcRunner) — the dataflow and its output are
// identical either way. Kept bit-identical to the Shared engine's
// results by the cross-engine differential tests.
type MapReduce struct {
	// Workers is the number of concurrent map/reduce tasks (> 1).
	Workers int
	// Runner executes the dataflow tasks (nil = in-process).
	Runner mapreduce.Runner
	// Totals, when non-nil, accumulates every job's counters across the
	// engine's lifetime — the source of the /status mrRetries and
	// mrShuffleBytes gauges.
	Totals *mapreduce.Counters

	// ctx cancels in-flight dataflow jobs; set via WithContext, never
	// mutated on a shared engine value.
	ctx context.Context
}

// WithContext returns a copy of the engine whose dataflow jobs run
// under ctx — cancellation stops an in-flight pass and surfaces
// ctx.Err(). Engines without a cancellable phase return themselves.
func WithContext(e Engine, ctx context.Context) Engine {
	if mr, ok := e.(MapReduce); ok {
		mr.ctx = ctx
		return mr
	}
	return e
}

// Name implements Engine.
func (MapReduce) Name() string { return "mapreduce" }

func (e MapReduce) cfg() mapreduce.Config {
	return mapreduce.Config{Workers: e.Workers, Runner: e.Runner, Totals: e.Totals}
}

func (e MapReduce) context() context.Context {
	if e.ctx != nil {
		return e.ctx
	}
	return context.Background()
}

// Stream implements Engine: the token-blocking dataflow job runs to
// completion — a shuffle barrier has no lazy form — and its output
// collection is adapted to the stream boundary, so the cleaning
// transforms downstream still compose without further materialization.
func (e MapReduce) Stream(src *kb.Collection, opts tokenize.Options) (blocking.Stream, error) {
	col, err := parblock.TokenBlocking(e.context(), src, opts, e.cfg())
	if err != nil {
		return blocking.Stream{}, err
	}
	return col.Stream(), nil
}

// TokenBlocking implements Engine.
func (e MapReduce) TokenBlocking(src *kb.Collection, opts tokenize.Options) (*blocking.Collection, error) {
	return parblock.TokenBlocking(e.context(), src, opts, e.cfg())
}

// Purge implements Engine via the histogram + keep dataflow jobs.
func (e MapReduce) Purge(col *blocking.Collection, maxSize int) (*blocking.Collection, error) {
	return parblock.Purge(e.context(), col, maxSize, e.cfg())
}

// Filter implements Engine via the rank + assignment dataflow jobs.
func (e MapReduce) Filter(col *blocking.Collection, ratio float64) (*blocking.Collection, error) {
	return parblock.Filter(e.context(), col, ratio, e.cfg())
}

// Build implements Engine.
func (e MapReduce) Build(col *blocking.Collection, scheme metablocking.Scheme) (*metablocking.Graph, error) {
	return parblock.Graph(e.context(), col, scheme, e.cfg())
}

// Prune implements Engine.
func (e MapReduce) Prune(g *metablocking.Graph, alg metablocking.Pruning, opts metablocking.PruneOptions) ([]metablocking.Edge, error) {
	if alg == metablocking.WNP || alg == metablocking.CNP {
		return parblock.PruneNodeCentric(e.context(), g, alg, opts, e.cfg())
	}
	return g.Prune(alg, opts), nil
}

// Ingest implements Engine: the shared incremental pass with cleaning
// and pruning dispatched through this engine's dataflow jobs. The
// paper's cluster realization never defined an incremental dataflow,
// so the index extension and graph diff run the sequential reference —
// the deltas are small by construction.
func (e MapReduce) Ingest(st *State) error {
	return ingest(e, st, nil,
		func(g *metablocking.Graph, oldCol, newCol *blocking.Collection) metablocking.UpdateStats {
			return g.Update(oldCol, newCol, st.opt.Scheme)
		})
}

// Evict implements Engine: the decremental pass with cleaning and
// pruning dispatched through this engine's dataflow jobs; the index
// splice and graph diff run the sequential reference, exactly as in
// Ingest — the deltas are small by construction.
func (e MapReduce) Evict(st *State) error {
	return evict(e, st,
		func(g *metablocking.Graph, oldCol, newCol *blocking.Collection) metablocking.UpdateStats {
			return g.Update(oldCol, newCol, st.opt.Scheme)
		})
}
