package pipeline

import (
	"fmt"
	"sort"

	"repro/internal/kb"
)

// evict is the decremental front-end pass shared by every engine — the
// deletion mirror of ingest. The source's tombstoned ids are spliced
// out of the inverted index (copy-on-delete, touching only the
// postings of tokens the departed descriptions carried), the raw
// blocks are re-assembled, cleaning re-runs through the engine, the
// blocking graph is driven down its block-shrinkage path — edges whose
// blocks lost members re-accumulate, orphaned edges drop — and the
// comparison list is re-pruned. st.Front afterwards equals a
// from-scratch Run over the surviving source: the evicted
// descriptions are indistinguishable from ones the corpus never held.
func evict(e Engine, st *State, update updateFn) error {
	// Un-folded live additions or merges would be silently dropped from
	// the committed front-end; fail loudly instead, like ingest's
	// source-shrank check. (The session layer always ingests before
	// evicting; tombstoned tail ids are fine — they were never and will
	// never be indexed.)
	if st.src.HasMerged() || len(st.pendingMerged) > 0 {
		return fmt.Errorf("pipeline(%s): evict: unfolded merges pending — ingest before evicting", e.Name())
	}
	for id := st.n; id < st.src.Len(); id++ {
		if st.src.Alive(id) {
			return fmt.Errorf("pipeline(%s): evict: unfolded additions pending — ingest before evicting", e.Name())
		}
	}
	evicted := append(st.src.TakeEvicted(), st.pendingEvicted...)
	st.pendingEvicted = evicted // restored to nil only when the pass commits
	if len(evicted) == 0 {
		return nil // nothing left: the state is already current
	}
	if !st.indexed {
		// First streaming operation of the session. buildIndex skips
		// tombstones, so the index is born without the ids pending
		// eviction — for them the splice below finds nothing to do, by
		// design; the splice works for ids indexed by earlier passes.
		if err := st.buildIndex(); err != nil {
			return fmt.Errorf("pipeline(%s): evict: index build: %w", e.Name(), err)
		}
	}
	if err := st.loadGraph(); err != nil {
		return fmt.Errorf("pipeline(%s): evict: graph load: %w", e.Name(), err)
	}

	// Splice into an overlay: st.postings and st.keys are only written
	// at commit time, after every fallible stage has succeeded, so a
	// failed evict leaves the state intact and retryable. Only the
	// postings of tokens carried by an evicted description are copied;
	// every other token's posting — and the blocks aliasing it — is
	// untouched.
	upd := make(map[string][]int)
	look := func(tok string) ([]int, bool) {
		if p, ok := upd[tok]; ok {
			return p, true
		}
		return st.getPosting(tok)
	}
	emptied := 0
	for _, id := range kb.DedupSortedInts(evicted) {
		if id >= st.n {
			continue // tombstoned before it was ever folded in
		}
		for _, tok := range st.src.Tokens(id, st.opt.Tokenize) {
			p, ok := look(tok)
			if !ok {
				continue
			}
			at := sort.SearchInts(p, id)
			if at >= len(p) || p[at] != id {
				continue // already spliced (a retried pass)
			}
			// Copy-on-delete: cleaned blocks may alias the old backing.
			np := make([]int, 0, len(p)-1)
			np = append(np, p[:at]...)
			np = append(np, p[at+1:]...)
			if len(np) == 0 {
				emptied++
			}
			upd[tok] = np
		}
	}

	fe, err := refront(e, st, "evict", st.keys, look, update)
	if err != nil {
		return err
	}
	if err := st.checkPostErr("evict"); err != nil {
		return err
	}

	// Commit: drained postings disappear from the index; the sorted key
	// list shrinks with them, so the linear re-assembly never pays for
	// tokens only departed descriptions carried.
	if err := st.commitPostings(upd); err != nil {
		return err
	}
	if emptied > 0 {
		kept := st.keys[:0]
		for _, tok := range st.keys {
			if p, ok := upd[tok]; ok && len(p) == 0 {
				continue // drained this pass
			}
			kept = append(kept, tok)
		}
		st.keys = kept
	}
	st.src.DropTokens(evicted) // tombstones stop pinning token slices
	st.pendingEvicted = nil
	st.Front = fe
	// Resident until a stage boundary, like the ingest commit: the
	// session spills when the streaming burst ends, not between passes.
	return nil
}
