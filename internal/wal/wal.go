// Package wal is the durability layer of a streaming resolution
// session: an append-only, checksum-framed write-ahead log of the
// mutation batches (ingests, evictions, session starts, checkpoints)
// that the public layer already streams. Recovery is replay — the log
// records exactly the inputs of the incremental path, so feeding the
// surviving prefix back through Session.Ingest/Evict reconstructs the
// state a from-scratch session over that prefix would hold; the
// golden-digest differential suite at the repo root proves it at every
// byte boundary of a torn tail.
//
// # Frame format
//
// One record is one frame:
//
//	[u32 payload length, little endian]
//	[u32 CRC32C over type byte + payload, little endian]
//	[u8  record type]
//	[payload]
//
// The CRC uses the Castagnoli polynomial (hardware-accelerated on
// amd64/arm64). A reader stops cleanly at the first frame whose header
// is short, whose payload is truncated, whose length field is
// implausible, or whose checksum fails — a torn or corrupted tail
// never poisons the valid prefix, and Open truncates the file back to
// that prefix so new appends land on a clean boundary.
//
// # Fsync policy
//
// Appends always reach the kernel before Append returns (a process
// crash — SIGKILL included — loses nothing already appended); the
// policy decides when the log additionally reaches the disk, the line
// that matters for power loss:
//
//   - SyncWave: fsync on Commit — the server calls it once per commit
//     wave, so one wave is one durable unit (the default).
//   - SyncAlways: fsync inside every Append.
//   - SyncOff: never fsync; the OS flushes on its own schedule.
//
// # Checkpoints
//
// Checkpoint atomically replaces the log with a single checkpoint
// record (write to a temp file, fsync, rename, fsync the directory),
// so a log whose history has been folded into a compact state — the
// session's id-space compaction epochs — stops growing with history.
// A crash anywhere during the rotation leaves either the old log or
// the new one, both valid.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"
)

// Policy selects when appended records are fsynced to disk. The zero
// value is SyncWave.
type Policy int

const (
	// SyncWave defers the fsync to Commit — the server's per-wave
	// durability point.
	SyncWave Policy = iota
	// SyncAlways fsyncs inside every Append.
	SyncAlways
	// SyncOff never fsyncs; appends still reach the kernel.
	SyncOff
)

// String returns the flag spelling of the policy (always / wave / off).
func (p Policy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncOff:
		return "off"
	default:
		return "wave"
	}
}

// ParsePolicy maps the flag spelling back to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "wave":
		return SyncWave, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, wave, or off)", s)
}

// Record types. The tag travels inside the checksum, so a flipped tag
// is a detected corruption, not a misdispatch.
const (
	// TypeIngest carries one ingest batch (JSON []Description wire
	// types).
	TypeIngest byte = 1
	// TypeEvict carries one eviction (JSON refs or a KB name).
	TypeEvict byte = 2
	// TypeStart marks a Session start: records before it replay as
	// pre-Start loads (the TTL window's batch 0), records after it as
	// streaming mutations.
	TypeStart byte = 3
	// TypeCheckpoint carries a full compact state (live descriptions
	// plus their TTL ages); it is only ever the first record of a log.
	TypeCheckpoint byte = 4
)

// Record is one decoded log record.
type Record struct {
	Type    byte
	Payload []byte
}

const (
	headerSize = 9 // u32 length + u32 crc + u8 type
	logName    = "wal.log"
)

// maxPayload bounds a frame's length field both ways: an appended
// payload over it could not be re-read (readers treat implausible
// lengths as corruption — a corrupted length must not provoke a giant
// allocation), so Append refuses it with ErrFrameTooLarge before the
// length is narrowed to the frame's 32-bit field. 1 GiB sits far above
// any real batch (the server caps request bodies well below it). A var
// only so the boundary test can lower it without gigabyte allocations.
var maxPayload = 1 << 30

// MaxPayload reports the frame payload cap — the budget the session
// layer splits oversized ingest batches under so every logged record
// stays replayable.
func MaxPayload() int { return maxPayload }

// ErrFrameTooLarge reports a payload no frame can carry: appending it
// would either overflow the frame's 32-bit length field or write a
// record every reader rejects as corrupt. Nothing is appended. Callers
// split their batches under MaxPayload instead. Test with errors.Is.
var ErrFrameTooLarge = errors.New("wal: record exceeds frame cap")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Stats are the operator-facing gauges of a live log, surfaced on the
// server's /status endpoint.
type Stats struct {
	// Bytes is the current size of the log file.
	Bytes int64 `json:"bytes"`
	// Records counts records appended since the last checkpoint (or
	// since Open, counting the replayed prefix, when no checkpoint has
	// rotated the log yet).
	Records int64 `json:"records"`
	// Checkpoints counts log rotations performed by this handle.
	Checkpoints int64 `json:"checkpoints"`
	// LastSyncUnixNano is the wall-clock time of the last fsync (0 when
	// the log has never synced).
	LastSyncUnixNano int64 `json:"lastSyncUnixNano"`
}

// Log is an open write-ahead log: records appended by one owner
// goroutine (the session's mutation path), never concurrently.
type Log struct {
	dir    string
	f      *os.File
	bw     *bufio.Writer
	policy Policy
	hdr    [headerSize]byte

	size        int64
	records     int64
	checkpoints int64
	lastSync    time.Time
	dirty       bool // bytes appended since the last fsync
}

// Open opens (creating if needed) the log in dir, replay-reads the
// valid record prefix, truncates any torn tail, and returns the log
// positioned for appending together with the surviving records. The
// caller replays the records through its normal mutation path before
// appending new ones.
func Open(dir string, policy Policy) (*Log, []Record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	path := filepath.Join(dir, logName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	recs, valid, err := readFrames(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: read %s: %w", path, err)
	}
	// Drop the torn tail so new frames start on a valid boundary.
	if fi, err := f.Stat(); err == nil && fi.Size() > valid {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{
		dir:     dir,
		f:       f,
		bw:      bufio.NewWriter(f),
		policy:  policy,
		size:    valid,
		records: int64(len(recs)),
	}
	return l, recs, nil
}

// readFrames decodes frames from the start of f until the first torn,
// truncated, or corrupt one, returning the valid records and the byte
// offset at which they end. Only I/O failures are errors: a bad frame
// is the expected shape of a crash and ends the scan cleanly.
func readFrames(f *os.File) ([]Record, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	br := bufio.NewReader(f)
	var recs []Record
	var valid int64
	hdr := make([]byte, headerSize)
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return recs, valid, nil // clean end, or a torn header
			}
			return nil, 0, err
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		typ := hdr[8]
		if length > uint32(maxPayload) {
			return recs, valid, nil // implausible length: corrupt frame
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return recs, valid, nil // torn payload
			}
			return nil, 0, err
		}
		crc := crc32.Update(crc32.Checksum([]byte{typ}, castagnoli), castagnoli, payload)
		if crc != sum {
			return recs, valid, nil // checksum failure: stop at the last good frame
		}
		recs = append(recs, Record{Type: typ, Payload: payload})
		valid += headerSize + int64(length)
	}
}

// Append frames one record onto the log. The frame reaches the kernel
// before Append returns; under SyncAlways it also reaches the disk.
func (l *Log) Append(typ byte, payload []byte) error {
	if l.f == nil {
		return errors.New("wal: log is closed")
	}
	if len(payload) > maxPayload {
		return fmt.Errorf("%w: record of %d bytes over the %d-byte cap", ErrFrameTooLarge, len(payload), maxPayload)
	}
	binary.LittleEndian.PutUint32(l.hdr[0:4], uint32(len(payload)))
	crc := crc32.Update(crc32.Checksum([]byte{typ}, castagnoli), castagnoli, payload)
	binary.LittleEndian.PutUint32(l.hdr[4:8], crc)
	l.hdr[8] = typ
	if _, err := l.bw.Write(l.hdr[:]); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.bw.Write(payload); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if err := l.bw.Flush(); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += headerSize + int64(len(payload))
	l.records++
	l.dirty = true
	if l.policy == SyncAlways {
		return l.sync()
	}
	return nil
}

// Commit makes everything appended so far durable under the SyncWave
// policy (one call per server commit wave). Under SyncAlways the data
// already is and under SyncOff it never deliberately is; both are
// no-ops.
func (l *Log) Commit() error {
	if l.f == nil {
		return errors.New("wal: log is closed")
	}
	if l.policy != SyncWave || !l.dirty {
		return nil
	}
	return l.sync()
}

func (l *Log) sync() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.dirty = false
	l.lastSync = time.Now()
	return nil
}

// Checkpoint atomically replaces the log with a single TypeCheckpoint
// record holding payload: the new file is written and fsynced aside,
// renamed over the log, and the directory fsynced, so a crash at any
// point leaves one valid log — old or new. The handle continues
// appending to the new file. The record counter restarts at 1 (the
// checkpoint itself).
func (l *Log) Checkpoint(payload []byte) error {
	if l.f == nil {
		return errors.New("wal: log is closed")
	}
	if len(payload) > maxPayload {
		return fmt.Errorf("%w: checkpoint of %d bytes over the %d-byte cap", ErrFrameTooLarge, len(payload), maxPayload)
	}
	path := filepath.Join(l.dir, logName)
	tmpPath := path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	crc := crc32.Update(crc32.Checksum([]byte{TypeCheckpoint}, castagnoli), castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	hdr[8] = TypeCheckpoint
	if _, err := tmp.Write(hdr[:]); err == nil {
		_, err = tmp.Write(payload)
		if err == nil {
			err = tmp.Sync()
		}
	} else {
		err = fmt.Errorf("write: %w", err)
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	// Swap the append handle onto the new file.
	nf, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: checkpoint: reopen: %w", err)
	}
	newSize := int64(headerSize + len(payload))
	if _, err := nf.Seek(newSize, io.SeekStart); err != nil {
		nf.Close()
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	l.f.Close()
	l.f = nf
	l.bw = bufio.NewWriter(nf)
	l.size = newSize
	l.records = 1
	l.checkpoints++
	l.dirty = false
	l.lastSync = time.Now() // the rotation fsynced file and directory
	return nil
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats returns the log's current gauges.
func (l *Log) Stats() Stats {
	return Stats{
		Bytes:            l.size,
		Records:          l.records,
		Checkpoints:      l.checkpoints,
		LastSyncUnixNano: unixNano(l.lastSync),
	}
}

func unixNano(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// Close flushes, fsyncs (whatever the policy — closing is a durability
// point), and closes the log. A closed log refuses further appends.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.bw.Flush()
	if serr := l.f.Sync(); err == nil {
		err = serr
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	if err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}
