package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func appendAll(t *testing.T, l *Log, recs []Record) {
	t.Helper()
	for _, r := range recs {
		if err := l.Append(r.Type, r.Payload); err != nil {
			t.Fatal(err)
		}
	}
}

func sameRecords(t *testing.T, label string, want, got []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("%s: record %d = (%d, %q), want (%d, %q)",
				label, i, got[i].Type, got[i].Payload, want[i].Type, want[i].Payload)
		}
	}
}

func testRecords() []Record {
	return []Record{
		{Type: TypeIngest, Payload: []byte(`[{"kb":"a","uri":"x"}]`)},
		{Type: TypeStart, Payload: nil},
		{Type: TypeIngest, Payload: []byte(`[{"kb":"b","uri":"y","attrs":[{"predicate":"p","value":"v"}]}]`)},
		{Type: TypeEvict, Payload: []byte(`{"refs":[{"kb":"a","uri":"x"}]}`)},
	}
}

func TestRoundTrip(t *testing.T) {
	for _, policy := range []Policy{SyncAlways, SyncWave, SyncOff} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, recs, err := Open(dir, policy)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 0 {
				t.Fatalf("fresh log has %d records", len(recs))
			}
			want := testRecords()
			appendAll(t, l, want)
			if err := l.Commit(); err != nil {
				t.Fatal(err)
			}
			st := l.Stats()
			if st.Records != int64(len(want)) || st.Bytes == 0 {
				t.Errorf("stats = %+v, want %d records", st, len(want))
			}
			if policy != SyncOff && st.LastSyncUnixNano == 0 {
				t.Errorf("policy %s never fsynced", policy)
			}
			if policy == SyncOff && st.LastSyncUnixNano != 0 {
				t.Error("policy off fsynced")
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			if err := l.Append(TypeIngest, nil); err == nil {
				t.Error("append on a closed log accepted")
			}

			l2, got, err := Open(dir, policy)
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			sameRecords(t, "reopen", want, got)
			if s := l2.Stats(); s.Records != int64(len(want)) {
				t.Errorf("reopened record count = %d, want %d", s.Records, len(want))
			}
		})
	}
}

// TestTornTailEveryByte is the frame reader's crash proof: for every
// possible truncation point of a multi-record log, the reader recovers
// exactly the records whose frames survive in full, and the reopened
// log appends cleanly on that boundary.
func TestTornTailEveryByte(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords()
	// Frame boundaries, for computing how many records survive a cut.
	bounds := []int64{0}
	for _, r := range want {
		if err := l.Append(r.Type, r.Payload); err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, l.Stats().Bytes)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(raw); cut++ {
		survivors := 0
		for _, b := range bounds[1:] {
			if int64(cut) >= b {
				survivors++
			}
		}
		tdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(tdir, logName), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		tl, got, err := Open(tdir, SyncOff)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		sameRecords(t, fmt.Sprintf("cut %d", cut), want[:survivors], got)
		// The torn tail must be gone: appending and reopening yields
		// the surviving prefix plus the new record.
		if err := tl.Append(TypeStart, []byte("post-crash")); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := tl.Close(); err != nil {
			t.Fatal(err)
		}
		_, again, err := Open(tdir, SyncOff)
		if err != nil {
			t.Fatalf("cut %d: reopen after append: %v", cut, err)
		}
		sameRecords(t, fmt.Sprintf("cut %d + append", cut),
			append(append([]Record(nil), want[:survivors]...), Record{Type: TypeStart, Payload: []byte("post-crash")}), again)
	}
}

// TestCorruptByte flips each byte of the log in turn: recovery must
// stop cleanly at (or before) the frame holding the flip and never
// error, allocate wildly, or return a record that fails its checksum.
func TestCorruptByte(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords()
	bounds := []int64{0}
	for _, r := range want {
		if err := l.Append(r.Type, r.Payload); err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, l.Stats().Bytes)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}

	for pos := 0; pos < len(raw); pos++ {
		// The flip lands inside frame f: every record before f must
		// survive; f and everything after must not.
		frame := 0
		for frame+1 < len(bounds) && int64(pos) >= bounds[frame+1] {
			frame++
		}
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0xff
		tdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(tdir, logName), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		tl, got, err := Open(tdir, SyncOff)
		if err != nil {
			t.Fatalf("flip at %d: %v", pos, err)
		}
		tl.Close()
		sameRecords(t, fmt.Sprintf("flip at %d", pos), want[:frame], got)
	}
}

func TestCheckpointRotation(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, SyncWave)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, testRecords())
	grown := l.Stats().Bytes

	chk := []byte(`{"descs":[{"kb":"b","uri":"y"}]}`)
	if err := l.Checkpoint(chk); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Records != 1 || st.Checkpoints != 1 {
		t.Errorf("post-checkpoint stats = %+v, want 1 record, 1 checkpoint", st)
	}
	if st.Bytes >= grown {
		t.Errorf("checkpoint did not shrink the log: %d -> %d bytes", grown, st.Bytes)
	}
	if _, err := os.Stat(filepath.Join(dir, logName+".tmp")); !os.IsNotExist(err) {
		t.Error("checkpoint left its temp file behind")
	}

	// Appends continue on the rotated file and survive a reopen.
	post := Record{Type: TypeIngest, Payload: []byte(`[{"kb":"c","uri":"z"}]`)}
	if err := l.Append(post.Type, post.Payload); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, err := Open(dir, SyncWave)
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, "after rotation", []Record{{Type: TypeCheckpoint, Payload: chk}, post}, got)
}

// TestImplausibleLength plants a frame whose length field decodes to
// gigabytes: the reader must stop cleanly instead of allocating it.
func TestImplausibleLength(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	good := Record{Type: TypeIngest, Payload: []byte("ok")}
	if err := l.Append(good.Type, good.Payload); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, logName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, TypeIngest}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, got, err := Open(dir, SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, "after implausible length", []Record{good}, got)
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
	}{{"always", SyncAlways}, {"wave", SyncWave}, {"off", SyncOff}} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Errorf("Policy(%v).String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestOversizedRecordRefused(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Claim the impossible size without allocating it.
	if err := l.Append(TypeIngest, make([]byte, 0, 0)[:0]); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Records != 1 {
		t.Fatalf("empty payload refused: %+v", st)
	}
}

// TestFrameCapBoundary lowers the frame cap (a var for exactly this)
// and walks the boundary: an at-cap payload frames and re-reads, one
// byte over is refused with the typed ErrFrameTooLarge — on Append and
// on Checkpoint — and a refused record leaves the log byte-identical,
// still appendable, and still recoverable. The old check produced an
// untyped error callers could only string-match; worse, without any
// check the length cast to the frame's 32-bit field would have written
// a wrapped length and corrupted everything after it.
func TestFrameCapBoundary(t *testing.T) {
	old := maxPayload
	maxPayload = 64
	t.Cleanup(func() { maxPayload = old })
	if MaxPayload() != 64 {
		t.Fatalf("MaxPayload() = %d, want the injected 64", MaxPayload())
	}

	dir := t.TempDir()
	l, _, err := Open(dir, SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	atCap := bytes.Repeat([]byte{'a'}, maxPayload)
	if err := l.Append(TypeIngest, atCap); err != nil {
		t.Fatalf("at-cap append: %v", err)
	}
	sizeBefore := l.Stats().Bytes

	over := bytes.Repeat([]byte{'b'}, maxPayload+1)
	if err := l.Append(TypeIngest, over); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("over-cap append = %v, want ErrFrameTooLarge", err)
	}
	if err := l.Checkpoint(over); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("over-cap checkpoint = %v, want ErrFrameTooLarge", err)
	}
	if st := l.Stats(); st.Bytes != sizeBefore || st.Records != 1 {
		t.Fatalf("refused record moved the log: %+v", st)
	}

	// The log is still healthy: appends continue, recovery sees exactly
	// the accepted frames.
	if err := l.Append(TypeEvict, []byte("after")); err != nil {
		t.Fatalf("append after refusal: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := Open(dir, SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, "after refused over-cap frames", []Record{
		{Type: TypeIngest, Payload: atCap},
		{Type: TypeEvict, Payload: []byte("after")},
	}, recs)
}
