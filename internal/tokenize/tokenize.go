// Package tokenize extracts the schema-agnostic token evidence that
// Minoan ER's blocking layer operates on. Tokens come from attribute
// values and — following the prefix-infix-suffix insight for Linked
// Data — from the informative "infix" part of entity URIs.
//
// The tokenizer is deliberately aggressive and lossy: blocking only
// needs *recall* of shared evidence between matching descriptions, so
// it lower-cases, strips punctuation, splits camelCase, and folds
// common stop words away.
package tokenize

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Options controls tokenization. The zero value is NOT useful; use
// Default() or fill every field intentionally.
type Options struct {
	// MinLength drops tokens shorter than this many runes.
	MinLength int
	// MaxLength truncates tokens longer than this many runes (0 = no cap).
	MaxLength int
	// SplitCamelCase breaks "NewYorkCity" into {new, york, city}. URIs in
	// LOD frequently concatenate words this way.
	SplitCamelCase bool
	// DropStopWords removes high-frequency function words that carry no
	// identity evidence and would otherwise create huge useless blocks.
	DropStopWords bool
	// DropNumbersUnder drops pure-digit tokens with fewer digits than
	// this (0 disables). Short numbers (years aside) are noisy evidence.
	DropNumbersUnder int
}

// Default returns the options used throughout the Minoan ER pipeline.
func Default() Options {
	return Options{
		MinLength:        2,
		MaxLength:        40,
		SplitCamelCase:   true,
		DropStopWords:    true,
		DropNumbersUnder: 2,
	}
}

// stopWords is a compact English stop-word list. Schema-agnostic token
// blocking over Web data is dominated by English-labelled KBs; this
// list removes only unambiguous function words.
var stopWords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "but": true, "by": true, "for": true, "from": true,
	"has": true, "have": true, "he": true, "her": true, "his": true,
	"in": true, "is": true, "it": true, "its": true, "of": true,
	"on": true, "or": true, "she": true, "that": true, "the": true,
	"their": true, "they": true, "this": true, "to": true, "was": true,
	"were": true, "which": true, "with": true,
}

// Tokens splits a literal value into normalized tokens per opts.
// The result preserves first-occurrence order and contains no duplicates.
func Tokens(value string, opts Options) []string {
	if value == "" {
		return nil
	}
	var out []string
	seen := make(map[string]struct{}, 8)
	emit := func(tok string) {
		tok = normalize(tok, opts)
		if tok == "" {
			return
		}
		if _, dup := seen[tok]; dup {
			return
		}
		seen[tok] = struct{}{}
		out = append(out, tok)
	}
	for _, word := range splitWords(value) {
		if opts.SplitCamelCase {
			for _, part := range splitCamel(word) {
				emit(part)
			}
		} else {
			emit(word)
		}
	}
	return out
}

// TokenSet returns the tokens of value as a set.
func TokenSet(value string, opts Options) map[string]struct{} {
	toks := Tokens(value, opts)
	set := make(map[string]struct{}, len(toks))
	for _, t := range toks {
		set[t] = struct{}{}
	}
	return set
}

// URITokens extracts tokens from an entity URI's infix: the local name
// after the namespace (prefix) with any numeric version suffix removed.
// For example http://dbpedia.org/resource/New_York_City_2 yields
// {new, york, city}.
func URITokens(uri string, opts Options) []string {
	infix := URIInfix(uri)
	return Tokens(infix, opts)
}

// URIInfix returns the informative middle of a URI per the
// prefix-infix-suffix scheme: strip the namespace prefix (scheme + host
// + path up to the last '/' or '#') and a trailing purely-numeric or
// very short suffix segment.
func URIInfix(uri string) string {
	v := strings.TrimRight(uri, "/#")
	if i := strings.LastIndexAny(v, "/#"); i >= 0 {
		v = v[i+1:]
	}
	// Strip a trailing numeric disambiguation suffix: Name_123 → Name.
	if j := strings.LastIndexAny(v, "_-"); j > 0 {
		tail := v[j+1:]
		if tail != "" && allDigits(tail) {
			v = v[:j]
		}
	}
	return v
}

func allDigits(s string) bool {
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return s != ""
}

// splitWords breaks a string at any rune that is not a letter or digit.
func splitWords(s string) []string {
	return strings.FieldsFunc(s, func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// splitCamel splits mixed-case words at lower→upper boundaries and
// letter/digit boundaries: "NewYork2City" → ["New","York","2","City"].
// All-upper acronyms stay intact ("USA" → ["USA"]).
func splitCamel(s string) []string {
	runes := []rune(s)
	if len(runes) < 2 {
		return []string{s}
	}
	var parts []string
	start := 0
	for i := 1; i < len(runes); i++ {
		prev, cur := runes[i-1], runes[i]
		boundary := (unicode.IsLower(prev) && unicode.IsUpper(cur)) ||
			(unicode.IsLetter(prev) && unicode.IsDigit(cur)) ||
			(unicode.IsDigit(prev) && unicode.IsLetter(cur)) ||
			// Acronym followed by a word: "HTTPServer" → "HTTP","Server".
			(i+1 < len(runes) && unicode.IsUpper(prev) && unicode.IsUpper(cur) && unicode.IsLower(runes[i+1]))
		if boundary {
			parts = append(parts, string(runes[start:i]))
			start = i
		}
	}
	parts = append(parts, string(runes[start:]))
	return parts
}

func normalize(tok string, opts Options) string {
	tok = strings.ToLower(tok)
	// Truncate before the length gate, so MinLength holds for what is
	// actually emitted (with MaxLength < MinLength every token drops —
	// degenerate, but coherent). One rune scan: this is the tokenize
	// hot path under WarmTokens and delta ingestion.
	n := utf8.RuneCountInString(tok)
	if opts.MaxLength > 0 && n > opts.MaxLength {
		tok = string([]rune(tok)[:opts.MaxLength])
		n = opts.MaxLength
	}
	if n < opts.MinLength {
		return ""
	}
	if opts.DropStopWords && stopWords[tok] {
		return ""
	}
	if opts.DropNumbersUnder > 0 && allDigits(tok) && len(tok) < opts.DropNumbersUnder {
		return ""
	}
	return tok
}
