package tokenize

import (
	"reflect"
	"testing"
	"unicode/utf8"
)

// FuzzTokens drives the tokenizer with arbitrary byte strings and
// option combinations and checks its invariants: no panics, pure
// determinism, no duplicates, no empty tokens, and the documented
// length bounds. CI runs the seed corpus; `go test -fuzz=FuzzTokens
// ./internal/tokenize` explores further.
func FuzzTokens(f *testing.F) {
	seeds := []string{
		"",
		"New_York_City_2",
		"NewYorkCity and the the the",
		"http://dbpedia.org/resource/Athens",
		"ΚΝΩΣΣΟΣ café naïve 東京 12 1234",
		"a-b_c.d,e;f:g!h?i(j)k[l]m{n}o",
		"\x00\xff\xfe invalid \x80 utf8",
		"MiXeDCase123Numbers456tail",
		strings40 + strings40 + strings40,
	}
	for _, s := range seeds {
		f.Add(s, 2, 40, true, true, 2)
	}
	f.Add("short min", 0, 0, false, false, 0)
	f.Fuzz(func(t *testing.T, value string, minLen, maxLen int, camel, stops bool, dropNum int) {
		// Bound the options to sane magnitudes; the fields are small
		// config knobs, not arbitrary integers.
		opts := Options{
			MinLength:        clamp(minLen, 0, 16),
			MaxLength:        clamp(maxLen, 0, 64),
			SplitCamelCase:   camel,
			DropStopWords:    stops,
			DropNumbersUnder: clamp(dropNum, 0, 8),
		}
		first := Tokens(value, opts)
		second := Tokens(value, opts)
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("tokenize not deterministic: %q -> %v then %v", value, first, second)
		}
		seen := make(map[string]struct{}, len(first))
		for _, tok := range first {
			if tok == "" {
				t.Fatalf("empty token from %q", value)
			}
			if _, dup := seen[tok]; dup {
				t.Fatalf("duplicate token %q from %q", tok, value)
			}
			seen[tok] = struct{}{}
			n := utf8.RuneCountInString(tok)
			if opts.MinLength > 0 && n < opts.MinLength {
				t.Fatalf("token %q shorter than MinLength %d (input %q)", tok, opts.MinLength, value)
			}
			if opts.MaxLength > 0 && n > opts.MaxLength {
				t.Fatalf("token %q longer than MaxLength %d (input %q)", tok, opts.MaxLength, value)
			}
		}
		// URI extraction must hold the same invariants on the same input.
		if uriToks := URITokens(value, opts); len(uriToks) > 0 && uriToks[0] == "" {
			t.Fatalf("empty URI token from %q", value)
		}
		_ = URIInfix(value)
	})
}

const strings40 = "aaaaaaaaaabbbbbbbbbbccccccccccdddddddddd"

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
