package tokenize

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokensBasic(t *testing.T) {
	opts := Default()
	cases := []struct {
		in   string
		want []string
	}{
		{"New York City", []string{"new", "york", "city"}},
		{"the cat and the hat", []string{"cat", "hat"}},
		{"", nil},
		{"  ,;  ", nil},
		{"Hello, World! Hello", []string{"hello", "world"}},
		{"U.S.A.", nil}, // single letters dropped by MinLength
		{"AC/DC rocks", []string{"ac", "dc", "rocks"}},
	}
	for _, c := range cases {
		if got := Tokens(c.in, opts); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokens(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokensCamelCase(t *testing.T) {
	opts := Default()
	got := Tokens("NewYorkCity", opts)
	want := []string{"new", "york", "city"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("camel split = %v, want %v", got, want)
	}
	// Acronym + word boundary.
	got = Tokens("HTTPServer", opts)
	want = []string{"http", "server"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("acronym split = %v, want %v", got, want)
	}
	// Disabled camel splitting keeps the word whole.
	opts.SplitCamelCase = false
	got = Tokens("NewYorkCity", opts)
	want = []string{"newyorkcity"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("no-split = %v, want %v", got, want)
	}
}

func TestTokensDigits(t *testing.T) {
	opts := Default()
	got := Tokens("Apollo 11 landed 1969", opts)
	want := []string{"apollo", "11", "landed", "1969"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
	opts.DropNumbersUnder = 4
	got = Tokens("Apollo 11 landed 1969", opts)
	want = []string{"apollo", "landed", "1969"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestTokensMaxLength(t *testing.T) {
	opts := Default()
	opts.MaxLength = 5
	got := Tokens("abcdefghij", opts)
	if !reflect.DeepEqual(got, []string{"abcde"}) {
		t.Errorf("got %v", got)
	}
}

func TestTokenSet(t *testing.T) {
	s := TokenSet("alpha beta alpha", Default())
	if len(s) != 2 {
		t.Fatalf("set size %d, want 2", len(s))
	}
	if _, ok := s["alpha"]; !ok {
		t.Error("missing alpha")
	}
}

func TestURIInfix(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"http://dbpedia.org/resource/New_York_City", "New_York_City"},
		{"http://dbpedia.org/resource/Paris_2", "Paris"},
		{"http://ex.org/onto#Person", "Person"},
		{"http://ex.org/id/item-42", "item"},
		{"http://ex.org/x/", "x"},
		{"nocolonplain", "nocolonplain"},
	}
	for _, c := range cases {
		if got := URIInfix(c.in); got != c.want {
			t.Errorf("URIInfix(%s) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestURITokens(t *testing.T) {
	got := URITokens("http://dbpedia.org/resource/New_York_City_3", Default())
	want := []string{"new", "york", "city"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("URITokens = %v, want %v", got, want)
	}
}

// Property: tokenization is idempotent — tokenizing the join of tokens
// reproduces the same token set.
func TestTokensIdempotent(t *testing.T) {
	opts := Default()
	f := func(s string) bool {
		first := Tokens(s, opts)
		joined := ""
		for i, tok := range first {
			if i > 0 {
				joined += " "
			}
			joined += tok
		}
		second := Tokens(joined, opts)
		return reflect.DeepEqual(first, second)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: no duplicates, and every token is already normalized
// (lower-case, length within bounds, not a stop word).
func TestTokensInvariants(t *testing.T) {
	opts := Default()
	f := func(s string) bool {
		seen := map[string]bool{}
		for _, tok := range Tokens(s, opts) {
			if seen[tok] {
				return false
			}
			seen[tok] = true
			n := len([]rune(tok))
			if n < opts.MinLength || (opts.MaxLength > 0 && n > opts.MaxLength) {
				return false
			}
			if stopWords[tok] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
