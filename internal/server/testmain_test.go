package server

import (
	"os"
	"testing"

	"repro/internal/mapreduce"
)

// TestMain doubles this test binary as a MapReduce worker so sessions
// built on the proc runner (MINOANER_MR_RUNNER=proc in CI) can spawn
// workers; without the hook a spawned worker would recursively run the
// test suite.
func TestMain(m *testing.M) {
	mapreduce.InitTestWorker()
	os.Exit(m.Run())
}
