package server

import (
	"context"
	"crypto/sha256"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/rdf"
)

// TestSoakConsistentEpochs hammers the snapshot endpoints from many
// readers while a mutator cycles ingest → resume → evict, and asserts
// the epoch contract: every response names an epoch, and two responses
// for the same endpoint naming the same epoch are byte-identical — no
// read ever observes a half-applied wave. Run under -race this is also
// the lock-free read path's data-race proof.
func TestSoakConsistentEpochs(t *testing.T) {
	w := testWorld(t, 23, 60)
	doc, err := rdf.WriteString(w.Triples("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	doc2, err := rdf.WriteString(w.Triples("betaKB"))
	if err != nil {
		t.Fatal(err)
	}
	srv, ts, _ := startServed(t, 30, map[string]string{"alpha": doc, "betaKB": doc2})

	// seen maps endpoint+epoch to the body hash first observed there;
	// a second differing hash is a consistency violation.
	var mu sync.Mutex
	seen := map[string][32]byte{}
	var reads int
	observe := func(endpoint string, epoch string, body []byte) {
		key := endpoint + "@" + epoch
		sum := sha256.Sum256(body)
		mu.Lock()
		defer mu.Unlock()
		reads++
		if prev, ok := seen[key]; ok {
			if prev != sum {
				t.Errorf("two different bodies for %s", key)
			}
			return
		}
		seen[key] = sum
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	endpoints := []string{"/clusters", "/status", "/sameas?format=nt", "/sameas"}
	const readers = 8
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				ep := endpoints[(i+n)%len(endpoints)]
				resp, body := get(t, ts, ep, "")
				if resp.StatusCode != http.StatusOK {
					t.Errorf("reader %d: %s status %d", i, ep, resp.StatusCode)
					return
				}
				epoch := resp.Header.Get(epochHeader)
				if epoch == "" {
					t.Errorf("reader %d: %s missing epoch header", i, ep)
					return
				}
				observe(ep, epoch, body)
			}
		}(i)
	}

	// The mutator cycles: ingest a fresh description, spend budget,
	// every third round evict what the round before ingested.
	const rounds = 25
	for n := 0; n < rounds; n++ {
		uri := fmt.Sprintf("http://soak/%d", n)
		body := fmt.Sprintf(`[{"kb":"alpha","uri":"%s","attrs":[{"predicate":"p","value":"soak round %d"}]}]`, uri, n)
		resp, data := post(t, ts, "/ingest", "application/json", []byte(body))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("soak ingest %d: status %d\n%s", n, resp.StatusCode, data)
		}
		resp, data = post(t, ts, "/resume?budget=15", "", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("soak resume %d: status %d\n%s", n, resp.StatusCode, data)
		}
		if n%3 == 2 {
			prev := fmt.Sprintf("http://soak/%d", n-1)
			evict := fmt.Sprintf(`{"refs":[{"kb":"alpha","uri":"%s"}]}`, prev)
			resp, data = post(t, ts, "/evict", "application/json", []byte(evict))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("soak evict %d: status %d\n%s", n, resp.StatusCode, data)
			}
		}
	}
	close(stop)
	wg.Wait()

	if reads < readers {
		t.Fatalf("only %d reads landed during the soak", reads)
	}
	if got := srv.Epoch(); got < 2 {
		t.Fatalf("epoch never advanced past %d", got)
	}
	t.Logf("%d reads over %d distinct endpoint@epoch states, final epoch %d",
		reads, len(seen), srv.Epoch())
}

// TestReadsDuringWedgedWriter pins the lock-free claim directly: with
// the writer goroutine deliberately blocked mid-mutation, every read
// endpoint still answers promptly from the published snapshot, and the
// epoch holds still for the duration.
func TestReadsDuringWedgedWriter(t *testing.T) {
	w := testWorld(t, 29, 40)
	doc, err := rdf.WriteString(w.Triples("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	srv, ts, _ := startServed(t, 10, map[string]string{"alpha": doc})

	gate := make(chan struct{})
	started := make(chan struct{})
	wedged := make(chan error, 1)
	go func() {
		_, err := srv.do(context.Background(), func(context.Context) error {
			close(started)
			<-gate
			return nil
		})
		wedged <- err
	}()
	<-started // the writer is now inside apply, holding the Session

	client := &http.Client{Timeout: 5 * time.Second}
	epoch := srv.Epoch()
	for i := 0; i < 50; i++ {
		for _, ep := range []string{"/status", "/clusters", "/sameas?format=nt"} {
			resp, err := client.Get(ts.URL + ep)
			if err != nil {
				t.Fatalf("read %s while writer wedged: %v", ep, err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("read %s while writer wedged: status %d", ep, resp.StatusCode)
			}
			if got := resp.Header.Get(epochHeader); got != strconv.FormatUint(epoch, 10) {
				t.Fatalf("epoch moved to %s while the writer was wedged at %d", got, epoch)
			}
		}
	}

	close(gate)
	if err := <-wedged; err != nil {
		t.Fatalf("wedged op failed: %v", err)
	}
	if got := srv.Epoch(); got != epoch+1 {
		t.Fatalf("epoch %d after the wedged wave committed, want %d", got, epoch+1)
	}
}
