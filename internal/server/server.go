// Package server exposes a live minoaner Session over HTTP —
// resolution as a service.
//
// The design splits the read path from the write path the way HTAP
// systems do. Reads (GET /resolve, /clusters, /sameas, /status) are
// served from an immutable Snapshot of the session's cluster state
// held behind an atomic pointer: a reader loads the pointer and walks
// plain data — no lock, no channel, no contact with the resolver — so
// any number of concurrent readers proceed at memory speed while a
// mutation is in flight. Writes (POST /ingest, /evict, /resume) are
// validated in the handler, then enqueued to a single writer goroutine
// that owns the Session outright; it applies queued mutations in waves
// (amortizing the snapshot rebuild across a burst), captures a fresh
// Snapshot, and swaps the pointer, bumping the epoch. A response's
// epoch therefore names exactly one committed state: two reads
// reporting the same epoch saw byte-identical data, and no read ever
// observes a half-applied wave.
//
// Errors cross the wire by type, not by string: the sentinel errors of
// the public minoaner API map onto status codes (ErrBadBatch and RDF
// parse errors → 400, an oversized body → 413, ErrUnknownDescription/
// ErrUnknownKB → 404, ErrSessionClosed → 409, a closed server or
// cancelled request → 503, a desynced session → 500).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	minoaner "repro"
	"repro/internal/rdf"
)

// ErrClosed reports an operation on a server whose writer has shut
// down. Test with errors.Is.
var ErrClosed = errors.New("server closed")

// maxWave caps how many queued mutations one commit wave applies
// before swapping the snapshot, bounding the staleness a burst of
// writes can impose on readers.
const maxWave = 64

// DefaultMaxBody is the default cap on a mutation request body (a JSON
// batch or an N-Triples document): 64 MiB, far above any sane batch,
// far below a mistake. Config.MaxBody overrides it per server — the
// operator-facing knob is the serve command's -max-body flag.
const DefaultMaxBody int64 = 64 << 20

// Config tunes a Server beyond its Session. The zero value takes the
// documented defaults.
type Config struct {
	// MaxBody caps a mutation request body in bytes; a body outgrowing
	// it answers 413 (0 = DefaultMaxBody).
	MaxBody int64
}

// Server serves one live Session. Create with New, attach Handler to
// an http.Server, Close when done.
type Server struct {
	sess    *minoaner.Session
	maxBody int64
	snap    atomic.Pointer[epochView]
	ops     chan *op
	quit    chan struct{} // closed by Close: writer drains and exits
	done    chan struct{} // closed by the writer on exit

	// baseCtx scopes in-flight dataflow work (the MapReduce front end
	// honors it) to the server's lifetime, not the request's: a client
	// disconnecting mid-ingest must not cancel — and thereby poison —
	// a mutation already applying. Close cancels it, so shutdown still
	// stops a long-running pass.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	closeOnce sync.Once
}

// epochView pairs a Snapshot with the epoch that committed it. The
// struct is immutable once stored; the atomic pointer swap is the only
// synchronization between the writer and the readers.
type epochView struct {
	epoch uint64
	view  *minoaner.Snapshot
}

// op is one queued mutation: its request context (cancellation makes
// the writer skip or abandon it), the mutation itself, and a buffered
// reply channel the writer always answers on.
type op struct {
	ctx   context.Context
	apply func(context.Context) error
	reply chan opResult
}

type opResult struct {
	epoch uint64
	err   error
}

// New wraps a started Session in a Server and launches the writer
// goroutine. The caller must not touch the Session (or its Pipeline)
// afterwards: the writer goroutine is its single owner — that
// exclusivity is what lets readers go lock-free.
func New(sess *minoaner.Session) *Server { return NewWith(sess, Config{}) }

// NewWith is New with explicit server configuration.
func NewWith(sess *minoaner.Session, cfg Config) *Server {
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = DefaultMaxBody
	}
	s := &Server{
		sess:    sess,
		maxBody: cfg.MaxBody,
		ops:     make(chan *op, maxWave),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.snap.Store(&epochView{epoch: 1, view: sess.Snapshot()})
	go s.writer()
	return s
}

// Close shuts the writer down, failing queued mutations with ErrClosed,
// and waits for it to exit. Reads keep working against the last
// committed snapshot; mutations return 503.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.quit)
		s.baseCancel() // stop any in-flight dataflow pass
	})
	<-s.done
}

// Epoch returns the epoch of the currently published snapshot.
func (s *Server) Epoch() uint64 { return s.snap.Load().epoch }

// writer is the single goroutine that owns the Session: it applies
// mutations in waves and publishes one fresh snapshot per wave.
func (s *Server) writer() {
	defer close(s.done)
	for {
		select {
		case <-s.quit:
			s.drainOps()
			return
		case first := <-s.ops:
			wave := s.gather(first)
			errs := make([]error, len(wave))
			for i, o := range wave {
				if err := o.ctx.Err(); err != nil {
					errs[i] = err // client gave up while queued
					continue
				}
				errs[i] = o.apply(o.ctx)
			}
			// One commit wave = one durable unit: under fsync=wave the
			// whole burst reaches stable storage in a single sync before
			// anyone is acknowledged. If the sync fails, no op in the
			// wave may claim success — its record might not survive a
			// crash.
			if err := s.sess.SyncWAL(); err != nil {
				for i := range errs {
					if errs[i] == nil {
						errs[i] = err
					}
				}
			}
			next := &epochView{epoch: s.snap.Load().epoch + 1, view: s.sess.Snapshot()}
			s.snap.Store(next)
			for i, o := range wave {
				o.reply <- opResult{epoch: next.epoch, err: errs[i]}
			}
		}
	}
}

// gather batches the mutations already queued behind first into one
// commit wave, without blocking.
func (s *Server) gather(first *op) []*op {
	wave := []*op{first}
	for len(wave) < maxWave {
		select {
		case o := <-s.ops:
			wave = append(wave, o)
		default:
			return wave
		}
	}
	return wave
}

// drainOps answers every still-queued mutation with ErrClosed so no
// handler is left waiting after shutdown.
func (s *Server) drainOps() {
	for {
		select {
		case o := <-s.ops:
			o.reply <- opResult{err: ErrClosed}
		default:
			return
		}
	}
}

// do enqueues one mutation and waits for its commit wave. The reply
// channel is buffered and the writer (or drainOps) always answers, so
// the wait only falls through when the writer exited without seeing
// the op.
func (s *Server) do(ctx context.Context, apply func(context.Context) error) (uint64, error) {
	o := &op{ctx: ctx, apply: apply, reply: make(chan opResult, 1)}
	select {
	case s.ops <- o:
	case <-s.quit:
		return 0, ErrClosed
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	select {
	case r := <-o.reply:
		return r.epoch, r.err
	case <-s.done:
		return 0, ErrClosed
	}
}

// Handler returns the HTTP API. Method-qualified patterns make the
// mux answer 405 for wrong methods on known paths.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /resolve", s.handleResolve)
	mux.HandleFunc("GET /clusters", s.handleClusters)
	mux.HandleFunc("GET /sameas", s.handleSameAs)
	mux.HandleFunc("GET /status", s.handleStatus)
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("POST /evict", s.handleEvict)
	mux.HandleFunc("POST /resume", s.handleResume)
	return mux
}

// epochHeader names the response header carrying the snapshot epoch a
// response was served from — on every endpoint, including the
// N-Triples dump, whose body has no room for it.
const epochHeader = "Minoaner-Epoch"

type resolveEntry struct {
	Ref     minoaner.Ref     `json:"ref"`
	Cluster minoaner.Cluster `json:"cluster"`
}

type resolveResponse struct {
	Epoch   uint64         `json:"epoch"`
	URI     string         `json:"uri"`
	Results []resolveEntry `json:"results"`
}

// handleResolve answers GET /resolve?uri=…[&kb=…]: the cluster holding
// the description. Without kb, every KB's description carrying the URI
// answers, each with its cluster.
func (s *Server) handleResolve(w http.ResponseWriter, r *http.Request) {
	ev := s.snap.Load()
	uri := r.URL.Query().Get("uri")
	if uri == "" {
		writeError(w, ev.epoch, http.StatusBadRequest, errors.New("missing uri parameter"))
		return
	}
	var results []resolveEntry
	if kbName := r.URL.Query().Get("kb"); kbName != "" {
		cl, ok := ev.view.Cluster(kbName, uri)
		if !ok {
			writeError(w, ev.epoch, http.StatusNotFound,
				fmt.Errorf("no description %s in KB %s", uri, kbName))
			return
		}
		results = []resolveEntry{{Ref: minoaner.Ref{KB: kbName, URI: uri}, Cluster: cl}}
	} else {
		refs := ev.view.Refs(uri)
		if len(refs) == 0 {
			writeError(w, ev.epoch, http.StatusNotFound, fmt.Errorf("no description %s", uri))
			return
		}
		for _, ref := range refs {
			cl, _ := ev.view.Cluster(ref.KB, ref.URI)
			results = append(results, resolveEntry{Ref: ref, Cluster: cl})
		}
	}
	writeJSON(w, ev.epoch, http.StatusOK, resolveResponse{Epoch: ev.epoch, URI: uri, Results: results})
}

type clustersResponse struct {
	Epoch    uint64             `json:"epoch"`
	Clusters []minoaner.Cluster `json:"clusters"`
}

// handleClusters answers GET /clusters: every multi-member cluster of
// the current snapshot.
func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request) {
	ev := s.snap.Load()
	clusters := ev.view.Result().Clusters
	if clusters == nil {
		clusters = []minoaner.Cluster{} // a stable wire format never says null
	}
	writeJSON(w, ev.epoch, http.StatusOK, clustersResponse{Epoch: ev.epoch, Clusters: clusters})
}

type sameAsResponse struct {
	Epoch   uint64           `json:"epoch"`
	Matches []minoaner.Match `json:"matches"`
}

// handleSameAs answers GET /sameas, negotiating the representation:
// JSON (the default, or Accept: application/json) carries the scored
// matches; N-Triples (Accept: application/n-triples or text/plain, or
// ?format=nt) is the owl:sameAs dump — byte-identical to
// Result.SameAs, shared serializer and all.
func (s *Server) handleSameAs(w http.ResponseWriter, r *http.Request) {
	ev := s.snap.Load()
	ntriples := false
	switch format := r.URL.Query().Get("format"); format {
	case "nt", "ntriples", "n-triples":
		ntriples = true
	case "", "json":
		accept := r.Header.Get("Accept")
		ntriples = strings.Contains(accept, "application/n-triples") ||
			strings.Contains(accept, "text/plain")
	default:
		writeError(w, ev.epoch, http.StatusBadRequest,
			fmt.Errorf("unknown format %q (want nt or json)", format))
		return
	}
	if ntriples {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set(epochHeader, strconv.FormatUint(ev.epoch, 10))
		io.WriteString(w, ev.view.SameAs())
		return
	}
	matches := ev.view.Result().Matches
	if matches == nil {
		matches = []minoaner.Match{}
	}
	writeJSON(w, ev.epoch, http.StatusOK, sameAsResponse{Epoch: ev.epoch, Matches: matches})
}

type statusResponse struct {
	Epoch       uint64           `json:"epoch"`
	Pending     int              `json:"pending"`
	BudgetSpent int              `json:"budgetSpent"`
	Clusters    int              `json:"clusters"`
	Stats       minoaner.Stats   `json:"stats"`
	Timings     minoaner.Timings `json:"timings"`
	Gauges      minoaner.Gauges  `json:"gauges"`
}

// handleStatus answers GET /status: progress, queue depth, budget
// spent, per-stage timings, the front-end memory gauges (graph and
// streaming-index footprint, tombstone debt, compaction epochs), and
// the snapshot epoch.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	ev := s.snap.Load()
	st := ev.view.Stats()
	writeJSON(w, ev.epoch, http.StatusOK, statusResponse{
		Epoch:       ev.epoch,
		Pending:     ev.view.Pending(),
		BudgetSpent: st.Comparisons,
		Clusters:    len(ev.view.Result().Clusters),
		Stats:       st,
		Timings:     ev.view.Timings(),
		Gauges:      ev.view.Gauges(),
	})
}

type mutationResponse struct {
	Epoch    uint64 `json:"epoch"`
	Ingested int    `json:"ingested,omitempty"`
}

// handleIngest answers POST /ingest. Two representations, selected by
// Content-Type: a JSON array of descriptions (the default), or an
// N-Triples document (application/n-triples or text/plain) ingested
// into the KB named by the required ?kb= parameter.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	ctype := r.Header.Get("Content-Type")
	if strings.Contains(ctype, "application/n-triples") || strings.Contains(ctype, "text/plain") {
		kbName := r.URL.Query().Get("kb")
		if kbName == "" {
			writeError(w, s.Epoch(), http.StatusBadRequest,
				errors.New("N-Triples ingest needs a kb parameter"))
			return
		}
		doc, err := io.ReadAll(body)
		if err != nil {
			writeError(w, s.Epoch(), bodyStatus(err), err)
			return
		}
		epoch, err := s.do(r.Context(), func(context.Context) error {
			return s.sess.IngestKBContext(s.baseCtx, kbName, strings.NewReader(string(doc)))
		})
		if err != nil {
			writeError(w, epoch, errStatus(err), err)
			return
		}
		writeJSON(w, epoch, http.StatusOK, mutationResponse{Epoch: epoch})
		return
	}
	var batch []minoaner.Description
	if err := json.NewDecoder(body).Decode(&batch); err != nil {
		writeError(w, s.Epoch(), bodyStatus(err), fmt.Errorf("decode batch: %w", err))
		return
	}
	epoch, err := s.do(r.Context(), func(context.Context) error {
		return s.sess.IngestContext(s.baseCtx, batch)
	})
	if err != nil {
		writeError(w, epoch, errStatus(err), err)
		return
	}
	writeJSON(w, epoch, http.StatusOK, mutationResponse{Epoch: epoch, Ingested: len(batch)})
}

type evictRequest struct {
	Refs []minoaner.Ref `json:"refs,omitempty"`
	KB   string         `json:"kb,omitempty"`
}

// handleEvict answers POST /evict with a JSON body naming either
// individual descriptions ({"refs": […]}) or a whole knowledge base
// ({"kb": "name"}).
func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request) {
	var req evictRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody)).Decode(&req); err != nil {
		writeError(w, s.Epoch(), bodyStatus(err), fmt.Errorf("decode request: %w", err))
		return
	}
	if (len(req.Refs) == 0) == (req.KB == "") {
		writeError(w, s.Epoch(), http.StatusBadRequest,
			errors.New(`want exactly one of "refs" or "kb"`))
		return
	}
	epoch, err := s.do(r.Context(), func(context.Context) error {
		if req.KB != "" {
			return s.sess.EvictKBContext(s.baseCtx, req.KB)
		}
		return s.sess.EvictContext(s.baseCtx, req.Refs)
	})
	if err != nil {
		writeError(w, epoch, errStatus(err), err)
		return
	}
	writeJSON(w, epoch, http.StatusOK, mutationResponse{Epoch: epoch})
}

type resumeResponse struct {
	Epoch       uint64 `json:"epoch"`
	BudgetSpent int    `json:"budgetSpent"`
	Matches     int    `json:"matches"`
	Pending     int    `json:"pending"`
}

// handleResume answers POST /resume?budget=N (0 or absent = run to
// completion): it spends further comparison budget on the session,
// honoring request cancellation between comparisons so a disconnected
// client cannot wedge the writer.
func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	budget := 0
	if v := r.URL.Query().Get("budget"); v != "" {
		b, err := strconv.Atoi(v)
		if err != nil || b < 0 {
			writeError(w, s.Epoch(), http.StatusBadRequest,
				fmt.Errorf("bad budget %q (want a non-negative integer)", v))
			return
		}
		budget = b
	}
	epoch, err := s.do(r.Context(), func(ctx context.Context) error {
		_, err := s.sess.ResumeContext(ctx, budget)
		return err
	})
	if err != nil {
		writeError(w, epoch, errStatus(err), err)
		return
	}
	ev := s.snap.Load() // includes our wave; possibly later ones too
	st := ev.view.Stats()
	writeJSON(w, epoch, http.StatusOK, resumeResponse{
		Epoch:       epoch,
		BudgetSpent: st.Comparisons,
		Matches:     st.Matches,
		Pending:     ev.view.Pending(),
	})
}

// bodyStatus maps a request-body read error to its status: a body that
// outgrew MaxBytesReader is the client sending too much (413), anything
// else is a malformed request (400). The JSON decoder wraps the
// *http.MaxBytesError it hits mid-stream, so match with errors.As.
func bodyStatus(err error) int {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// errStatus maps an error to its HTTP status by type — the reason the
// public API grew sentinel errors.
func errStatus(err error) int {
	var parseErr *rdf.ParseError
	switch {
	case errors.Is(err, minoaner.ErrBadBatch), errors.As(err, &parseErr):
		return http.StatusBadRequest
	case errors.Is(err, minoaner.ErrUnknownDescription), errors.Is(err, minoaner.ErrUnknownKB):
		return http.StatusNotFound
	case errors.Is(err, minoaner.ErrSessionClosed):
		return http.StatusConflict
	case errors.Is(err, ErrClosed),
		errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	case errors.Is(err, minoaner.ErrDesynced):
		// A poisoned session is a server-side invariant failure: the
		// operator restarts (recovering via the WAL); clients retrying
		// would only see the same poison again.
		return http.StatusInternalServerError
	default:
		return http.StatusInternalServerError
	}
}

type errorResponse struct {
	Epoch uint64 `json:"epoch,omitempty"`
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, epoch uint64, status int, err error) {
	writeJSON(w, epoch, status, errorResponse{Epoch: epoch, Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, epoch uint64, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set(epochHeader, strconv.FormatUint(epoch, 10))
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v) // a failed write means the client went away; nothing to do
}
