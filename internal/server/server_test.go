package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	minoaner "repro"
	"repro/internal/datagen"
	"repro/internal/rdf"
)

// testWorld synthesizes a two-KB clean–clean corpus with links, so
// discovery and rechecks fire — the server must serve those faithfully
// too.
func testWorld(t *testing.T, seed int64, n int) *datagen.World {
	t.Helper()
	w, err := datagen.Generate(datagen.Config{
		Seed:        seed,
		NumEntities: n,
		KBs: []datagen.KBConfig{
			{Name: "alpha", Coverage: 1, Profile: datagen.Center()},
			{Name: "betaKB", Coverage: 1, Profile: datagen.Periphery()},
		},
		LinksPerEntity: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// docHalves renders one KB's triples as two N-Triples documents split
// at the subject level, for the streamed half of the differential
// interleavings.
func docHalves(t *testing.T, w *datagen.World, kbName string) (string, string) {
	t.Helper()
	triples := w.Triples(kbName)
	subjects := make(map[string]bool)
	var order []string
	for _, tr := range triples {
		if !subjects[tr.Subject.Value] {
			subjects[tr.Subject.Value] = true
			order = append(order, tr.Subject.Value)
		}
	}
	cut := make(map[string]bool)
	for _, s := range order[:len(order)/2] {
		cut[s] = true
	}
	var first, second []rdf.Triple
	for _, tr := range triples {
		if cut[tr.Subject.Value] {
			first = append(first, tr)
		} else {
			second = append(second, tr)
		}
	}
	a, err := rdf.WriteString(first)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rdf.WriteString(second)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// startServed loads the initial docs, starts the session, spends an
// initial budget, and wraps everything in a Server + httptest server.
func startServed(t *testing.T, budget int, docs map[string]string) (*Server, *httptest.Server, *minoaner.Pipeline) {
	t.Helper()
	return startServedWith(t, budget, docs, Config{})
}

// startServedWith is startServed with explicit server configuration.
func startServedWith(t *testing.T, budget int, docs map[string]string, cfg Config) (*Server, *httptest.Server, *minoaner.Pipeline) {
	t.Helper()
	p := minoaner.New(minoaner.Defaults())
	for name, doc := range docs {
		if err := p.LoadKB(name, strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
	}
	sess, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Resume(budget); err != nil {
		t.Fatal(err)
	}
	srv := NewWith(sess, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts, p
}

func get(t *testing.T, ts *httptest.Server, path string, accept string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func post(t *testing.T, ts *httptest.Server, path, contentType string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decode[T any](t *testing.T, data []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("decode %T: %v\n%s", v, err, data)
	}
	return v
}

// checkDifferential asserts, with the writer quiescent, that every
// read endpoint serves exactly what the underlying Session answers —
// the served-≡-session half of the correctness story (session ≡
// from-scratch is proven by the streaming suites).
func checkDifferential(t *testing.T, label string, srv *Server, ts *httptest.Server, uris map[string]string) {
	t.Helper()
	sn := srv.sess.Snapshot()
	want := sn.Result()

	// /clusters ≡ Snapshot.Result().Clusters.
	resp, body := get(t, ts, "/clusters", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: /clusters status %d", label, resp.StatusCode)
	}
	cr := decode[clustersResponse](t, body)
	if cr.Epoch != srv.Epoch() {
		t.Errorf("%s: /clusters epoch %d, server at %d", label, cr.Epoch, srv.Epoch())
	}
	wantClusters := want.Clusters
	if wantClusters == nil {
		wantClusters = []minoaner.Cluster{}
	}
	if !reflect.DeepEqual(cr.Clusters, wantClusters) {
		t.Errorf("%s: served clusters differ from session clusters", label)
	}

	// /sameas (N-Triples) ≡ Snapshot.SameAs ≡ Result.SameAs.
	resp, body = get(t, ts, "/sameas?format=nt", "")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("%s: sameas nt content type %q", label, ct)
	}
	if string(body) != sn.SameAs() {
		t.Errorf("%s: served sameAs differs from session sameAs", label)
	}

	// /sameas (JSON) ≡ Result.Matches.
	_, body = get(t, ts, "/sameas", "application/json")
	sr := decode[sameAsResponse](t, body)
	wantMatches := want.Matches
	if wantMatches == nil {
		wantMatches = []minoaner.Match{}
	}
	if !reflect.DeepEqual(sr.Matches, wantMatches) {
		t.Errorf("%s: served matches differ from session matches", label)
	}

	// /status ≡ Snapshot stats/pending.
	_, body = get(t, ts, "/status", "")
	st := decode[statusResponse](t, body)
	if st.Stats != sn.Stats() {
		t.Errorf("%s: served stats %+v, session %+v", label, st.Stats, sn.Stats())
	}
	if st.Pending != sn.Pending() {
		t.Errorf("%s: served pending %d, session %d", label, st.Pending, sn.Pending())
	}
	if st.BudgetSpent != sn.Stats().Comparisons {
		t.Errorf("%s: budgetSpent %d, comparisons %d", label, st.BudgetSpent, sn.Stats().Comparisons)
	}

	// /resolve, kb-qualified and kb-less, for every URI the corpus ever
	// held — including ones now evicted, which must 404 exactly when the
	// session no longer resolves them.
	for uri, kbName := range uris {
		wantCl, live := sn.Cluster(kbName, uri)
		resp, body = get(t, ts, "/resolve?kb="+kbName+"&uri="+uri, "")
		if !live {
			if resp.StatusCode != http.StatusNotFound {
				t.Errorf("%s: resolve %s/%s: status %d, want 404", label, kbName, uri, resp.StatusCode)
			}
		} else {
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: resolve %s/%s: status %d\n%s", label, kbName, uri, resp.StatusCode, body)
			}
			rr := decode[resolveResponse](t, body)
			if len(rr.Results) != 1 || !reflect.DeepEqual(rr.Results[0].Cluster, wantCl) {
				t.Errorf("%s: resolve %s/%s differs from session cluster", label, kbName, uri)
			}
		}

		wantRefs := sn.Refs(uri)
		resp, body = get(t, ts, "/resolve?uri="+uri, "")
		if len(wantRefs) == 0 {
			if resp.StatusCode != http.StatusNotFound {
				t.Errorf("%s: resolve %s: status %d, want 404", label, uri, resp.StatusCode)
			}
			continue
		}
		rr := decode[resolveResponse](t, body)
		if len(rr.Results) != len(wantRefs) {
			t.Errorf("%s: resolve %s: %d results, session has %d refs", label, uri, len(rr.Results), len(wantRefs))
			continue
		}
		for i, ref := range wantRefs {
			wantCl, _ := sn.Cluster(ref.KB, ref.URI)
			if rr.Results[i].Ref != ref || !reflect.DeepEqual(rr.Results[i].Cluster, wantCl) {
				t.Errorf("%s: resolve %s result %d differs from session", label, uri, i)
			}
		}
	}
}

// subjectsOf maps each subject URI of a document to its KB, feeding the
// resolve sweep.
func addSubjects(t *testing.T, uris map[string]string, kbName, doc string) {
	t.Helper()
	triples, err := rdf.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range triples {
		uris[tr.Subject.Value] = kbName
	}
}

// TestServedEqualsSession is the tentpole differential: across an
// interleaving of N-Triples ingest, JSON ingest, eviction, and resume
// legs, every read endpoint answers exactly what the underlying
// Session answers at that moment.
func TestServedEqualsSession(t *testing.T) {
	w := testWorld(t, 7, 80)
	alpha1, alpha2 := docHalves(t, w, "alpha")
	beta1, beta2 := docHalves(t, w, "betaKB")

	uris := map[string]string{}
	addSubjects(t, uris, "alpha", alpha1)
	addSubjects(t, uris, "alpha", alpha2)
	addSubjects(t, uris, "betaKB", beta1)
	addSubjects(t, uris, "betaKB", beta2)

	srv, ts, _ := startServed(t, 60, map[string]string{"alpha": alpha1, "betaKB": beta1})
	checkDifferential(t, "initial", srv, ts, uris)

	// Stream the second alpha half in as N-Triples.
	resp, body := post(t, ts, "/ingest?kb=alpha", "application/n-triples", []byte(alpha2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("nt ingest: status %d\n%s", resp.StatusCode, body)
	}
	checkDifferential(t, "after nt ingest", srv, ts, uris)

	// Spend another budget leg.
	resp, body = post(t, ts, "/resume?budget=40", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resume: status %d\n%s", resp.StatusCode, body)
	}
	checkDifferential(t, "after resume", srv, ts, uris)

	// Stream the second beta half in as a JSON description batch.
	batch := descriptionsOf(t, "betaKB", beta2)
	enc, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	resp, body = post(t, ts, "/ingest", "application/json", enc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("json ingest: status %d\n%s", resp.StatusCode, body)
	}
	mr := decode[mutationResponse](t, body)
	if mr.Ingested != len(batch) {
		t.Errorf("json ingest reported %d, want %d", mr.Ingested, len(batch))
	}
	checkDifferential(t, "after json ingest", srv, ts, uris)

	// Evict a handful of alpha descriptions.
	var victims []minoaner.Ref
	for uri, kbName := range uris {
		if kbName == "alpha" {
			victims = append(victims, minoaner.Ref{KB: "alpha", URI: uri})
			if len(victims) == 5 {
				break
			}
		}
	}
	enc, err = json.Marshal(evictRequest{Refs: victims})
	if err != nil {
		t.Fatal(err)
	}
	resp, body = post(t, ts, "/evict", "application/json", enc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evict: status %d\n%s", resp.StatusCode, body)
	}
	checkDifferential(t, "after evict", srv, ts, uris)

	// Drain the queue and check the settled state.
	resp, body = post(t, ts, "/resume", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: status %d\n%s", resp.StatusCode, body)
	}
	rr := decode[resumeResponse](t, body)
	if rr.Pending != 0 {
		t.Errorf("drained resume still pending %d", rr.Pending)
	}
	checkDifferential(t, "drained", srv, ts, uris)

	if got := srv.Epoch(); got < 6 {
		t.Errorf("epoch %d after five mutations, want ≥ 6", got)
	}
}

// descriptionsOf converts an N-Triples document into a Description
// batch the JSON ingest endpoint accepts, mirroring the loader's
// attribute/link/type split.
func descriptionsOf(t *testing.T, kbName, doc string) []minoaner.Description {
	t.Helper()
	triples, err := rdf.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	byURI := map[string]*minoaner.Description{}
	var order []string
	for _, tr := range triples {
		uri := tr.Subject.Value
		d := byURI[uri]
		if d == nil {
			d = &minoaner.Description{KB: kbName, URI: uri}
			byURI[uri] = d
			order = append(order, uri)
		}
		switch {
		case tr.Predicate.Value == rdf.OWLSameAs:
			// ground truth, not evidence — the loader skips it too
		case tr.Predicate.Value == rdf.RDFType:
			d.Types = append(d.Types, tr.Object.Value)
		case tr.Object.IsLiteral():
			d.Attrs = append(d.Attrs, minoaner.Attribute{Predicate: tr.Predicate.Value, Value: tr.Object.Value})
		default:
			d.Links = append(d.Links, tr.Object.Value)
		}
	}
	out := make([]minoaner.Description, 0, len(order))
	for _, uri := range order {
		out = append(out, *byURI[uri])
	}
	return out
}

// TestErrorMapping pins the sentinel-error → status-code contract of
// every mutation endpoint.
func TestErrorMapping(t *testing.T) {
	w := testWorld(t, 11, 30)
	doc, err := rdf.WriteString(w.Triples("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	srv, ts, p := startServed(t, 10, map[string]string{"alpha": doc})

	cases := []struct {
		name        string
		method      string
		path, ctype string
		body        string
		status      int
	}{
		{"bad json batch", "POST", "/ingest", "application/json", `{"not":"an array"}`, 400},
		{"empty kb in batch", "POST", "/ingest", "application/json", `[{"kb":"","uri":"x"}]`, 400},
		{"nt without kb", "POST", "/ingest?x=1", "application/n-triples", "<a> <b> <c> .", 400},
		{"nt parse error", "POST", "/ingest?kb=alpha", "application/n-triples", "not ntriples", 400},
		{"evict neither", "POST", "/evict", "application/json", `{}`, 400},
		{"evict both", "POST", "/evict", "application/json", `{"refs":[{"kb":"a","uri":"u"}],"kb":"alpha"}`, 400},
		{"evict unknown ref", "POST", "/evict", "application/json", `{"refs":[{"kb":"alpha","uri":"http://nope"}]}`, 404},
		{"evict unknown kb", "POST", "/evict", "application/json", `{"kb":"ghost"}`, 404},
		{"bad budget", "POST", "/resume?budget=minus", "", "", 400},
		{"negative budget", "POST", "/resume?budget=-3", "", "", 400},
		{"resolve without uri", "GET", "/resolve", "", "", 400},
		{"resolve unknown", "GET", "/resolve?uri=http://nope", "", "", 404},
		{"sameas bad format", "GET", "/sameas?format=xml", "", "", 400},
		{"wrong method", "GET", "/ingest", "", "", 405},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var body []byte
			if tc.method == "GET" {
				resp, body = get(t, ts, tc.path, "")
			} else {
				resp, body = post(t, ts, tc.path, tc.ctype, []byte(tc.body))
			}
			if resp.StatusCode != tc.status {
				t.Errorf("status %d, want %d\n%s", resp.StatusCode, tc.status, body)
			}
		})
	}

	// A superseded session maps to 409 Conflict: the server's session is
	// no longer the pipeline's current one.
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, ts, "/ingest", "application/json", []byte(`[{"kb":"alpha","uri":"http://new"}]`))
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("superseded session: status %d, want 409\n%s", resp.StatusCode, body)
	}

	// After Close, reads still serve the last snapshot; mutations 503.
	srv.Close()
	resp, _ = get(t, ts, "/status", "")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("read after close: status %d, want 200", resp.StatusCode)
	}
	resp, body = post(t, ts, "/resume", "", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("mutation after close: status %d, want 503\n%s", resp.StatusCode, body)
	}
}

// TestSameAsNegotiation covers the Accept-header half of content
// negotiation (the format parameter is covered by the differential).
func TestSameAsNegotiation(t *testing.T) {
	w := testWorld(t, 13, 40)
	doc, err := rdf.WriteString(w.Triples("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	doc2, err := rdf.WriteString(w.Triples("betaKB"))
	if err != nil {
		t.Fatal(err)
	}
	srv, ts, _ := startServed(t, 0, map[string]string{"alpha": doc, "betaKB": doc2})
	sn := srv.sess.Snapshot()
	if len(sn.Result().Matches) == 0 {
		t.Fatal("workload produced no matches; negotiation test needs some")
	}

	for _, accept := range []string{"application/n-triples", "text/plain", "text/plain, */*"} {
		resp, body := get(t, ts, "/sameas", accept)
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("Accept %q: content type %q", accept, ct)
		}
		if string(body) != sn.SameAs() {
			t.Errorf("Accept %q: body differs from SameAs()", accept)
		}
		// The N-Triples body must round-trip through the parser.
		if _, err := rdf.ParseString(string(body)); err != nil {
			t.Errorf("Accept %q: served N-Triples do not re-parse: %v", accept, err)
		}
		if resp.Header.Get(epochHeader) == "" {
			t.Errorf("Accept %q: missing %s header", accept, epochHeader)
		}
	}
	for _, accept := range []string{"", "application/json", "*/*"} {
		resp, _ := get(t, ts, "/sameas", accept)
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("Accept %q: content type %q", accept, ct)
		}
	}
}

// TestWaveBatching proves the writer coalesces queued mutations into
// one commit wave: many concurrent ingests advance the epoch by fewer
// swaps than mutations.
func TestWaveBatching(t *testing.T) {
	w := testWorld(t, 17, 30)
	doc, err := rdf.WriteString(w.Triples("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	srv, ts, _ := startServed(t, 5, map[string]string{"alpha": doc})
	before := srv.Epoch()

	const writers = 24
	done := make(chan uint64, writers)
	for i := 0; i < writers; i++ {
		go func(i int) {
			body := fmt.Sprintf(`[{"kb":"alpha","uri":"http://batch/%d","attrs":[{"predicate":"p","value":"wave batch %d"}]}]`, i, i)
			resp, data := post(t, ts, "/ingest", "application/json", []byte(body))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("ingest %d: status %d\n%s", i, resp.StatusCode, data)
				done <- 0
				return
			}
			done <- decode[mutationResponse](t, data).Epoch
		}(i)
	}
	epochs := make(map[uint64]bool)
	for i := 0; i < writers; i++ {
		if e := <-done; e > 0 {
			epochs[e] = true
		}
	}
	if t.Failed() {
		return
	}
	swaps := srv.Epoch() - before
	if swaps == 0 || swaps > writers {
		t.Fatalf("epoch advanced %d for %d mutations", swaps, writers)
	}
	// Every reply names a real committed epoch, and all 30 descriptions
	// made it in regardless of how the waves fell.
	sn := srv.sess.Snapshot()
	for i := 0; i < writers; i++ {
		uri := fmt.Sprintf("http://batch/%d", i)
		if len(sn.Refs(uri)) != 1 {
			t.Errorf("description %s missing after batched waves", uri)
		}
	}
	t.Logf("%d mutations committed in %d waves", writers, swaps)
}

// TestOversizedBody413 configures a low body cap and checks that a
// request body outgrowing it answers 413 on every mutation endpoint and
// both ingest content types — not the generic 400 the decode error used
// to collapse into. A body under the cap must keep working.
func TestOversizedBody413(t *testing.T) {
	const maxBody int64 = 512
	doc := "<http://x/a> <http://x/p> \"alpha one\" .\n<http://x/b> <http://x/p> \"alpha one\" .\n"
	_, ts, _ := startServedWith(t, 0, map[string]string{"alpha": doc}, Config{MaxBody: maxBody})

	var big bytes.Buffer
	for i := 0; big.Len() <= int(maxBody); i++ {
		fmt.Fprintf(&big, "<http://big/%d> <http://x/p> \"padding padding padding\" .\n", i)
	}
	bigBatch, err := json.Marshal([]minoaner.Description{{
		KB: "alpha", URI: "http://big/json",
		Attrs: []minoaner.Attribute{{Predicate: "p", Value: strings.Repeat("x ", int(maxBody))}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	bigEvict, err := json.Marshal(map[string]any{"kb": strings.Repeat("k", int(maxBody)+1)})
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		label, path, ctype string
		body               []byte
	}{
		{"ingest json", "/ingest", "application/json", bigBatch},
		{"ingest ntriples", "/ingest?kb=alpha", "application/n-triples", big.Bytes()},
		{"ingest text/plain", "/ingest?kb=alpha", "text/plain", big.Bytes()},
		{"evict json", "/evict", "application/json", bigEvict},
	} {
		resp, body := post(t, ts, tc.path, tc.ctype, tc.body)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status %d, want 413\n%s", tc.label, resp.StatusCode, body)
		}
	}

	// Under the cap everything still flows.
	small, _ := json.Marshal([]minoaner.Description{{KB: "alpha", URI: "http://small/1",
		Attrs: []minoaner.Attribute{{Predicate: "p", Value: "tiny"}}}})
	if resp, body := post(t, ts, "/ingest", "application/json", small); resp.StatusCode != http.StatusOK {
		t.Fatalf("small ingest: status %d\n%s", resp.StatusCode, body)
	}
}

// TestDesyncedStatus pins the wire mapping of a poisoned session: 500,
// the operator's cue to restart and recover from the WAL.
func TestDesyncedStatus(t *testing.T) {
	if got := errStatus(fmt.Errorf("wrap: %w", minoaner.ErrDesynced)); got != http.StatusInternalServerError {
		t.Fatalf("errStatus(ErrDesynced) = %d, want 500", got)
	}
}
