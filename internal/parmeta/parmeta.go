// Package parmeta is the shared-memory parallel meta-blocking engine:
// the multicore realization of blocking-graph construction, weighting,
// and pruning that internal/metablocking implements sequentially and
// internal/parblock simulates as MapReduce jobs.
//
// The engine shards work over contiguous block, edge, and node ranges
// and merges per-shard state lock-free: every partition of the edge
// space is owned by exactly one goroutine, so no mutex guards the
// accumulation maps, and floating-point evidence is summed in the same
// global block order as the sequential builder. Results are therefore
// bit-identical to internal/metablocking for every weighting scheme
// and pruning algorithm — the differential tests assert it — while
// Build and Prune scale with cores.
//
// Three properties make the sharding exact rather than merely
// approximately equivalent:
//
//  1. Block shards are contiguous and merged in shard order, so each
//     edge's CBS/ARCS accumulators see their per-block contributions
//     in exactly the sequential order (float addition is not
//     associative, so order is part of the contract).
//  2. The edge-space partition function is monotone in the smaller
//     endpoint, so sorted partitions concatenate directly into the
//     canonical (A, B) edge order with no global sort.
//  3. Node-centric pruning builds a deterministic CSR adjacency whose
//     per-node edge lists are index-ascending — the same order the
//     sequential engine appends them — so per-neighborhood float sums
//     and top-k selections replay exactly.
package parmeta

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/blocking"
	"repro/internal/container"
	"repro/internal/mapreduce"
	"repro/internal/metablocking"
)

// partsPerWorker oversubscribes edge-space partitions relative to
// workers so the dynamic merge schedule stays balanced when the
// entity-range partition is skewed (clean–clean graphs put every
// smaller endpoint in the first KB's id range).
const partsPerWorker = 4

// Workers resolves a worker-count option: values ≤ 0 mean one worker
// per available CPU (GOMAXPROCS), anything else is taken literally.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// occurrence is one pair co-occurrence emitted by the map phase:
// endpoints (a < b) and the block's reciprocal comparison count.
type occurrence struct {
	a, b int32
	inv  float64
}

// record is one distinct edge's aggregated evidence.
type record struct {
	a, b   int32
	common int32
	arcs   float64
}

// recSegBits sizes the segments of the per-partition record pools:
// fixed arrays that grow without copying, so accumulating a partition's
// records never pays append-doubling churn (the largest allocation term
// of the parallel build before pools).
const recSegBits = 12

// recPool is a segmented arena of records addressed by dense int32
// handles; records never move as the pool grows.
type recPool struct {
	segs [][]record
	n    int32
}

func (p *recPool) alloc(a, b int32) int32 {
	i := p.n
	s := int(i) >> recSegBits
	if s == len(p.segs) {
		p.segs = append(p.segs, make([]record, 1<<recSegBits))
	}
	p.segs[s][i&(1<<recSegBits-1)] = record{a: a, b: b}
	p.n++
	return i
}

func (p *recPool) at(i int32) *record {
	return &p.segs[i>>recSegBits][i&(1<<recSegBits-1)]
}

// buildChunkComparisons bounds how many pair occurrences a single
// map→merge round may buffer. Build streams the block range through
// rounds of at most this many comparisons, folding each round into
// persistent per-partition edge records, so peak memory is
// O(distinct edges + chunk) instead of O(comparisons) — the difference
// between the two is the whole point of meta-blocking, and on >10M-edge
// workloads the occurrence buffer used to dwarf the graph itself. A
// var, not a const, so tests can force many tiny rounds.
var buildChunkComparisons = 1 << 16

// chunkByComparisons cuts [0, len(cmps)) into contiguous block ranges
// each inducing at most budget comparisons (single blocks above the
// budget get a round of their own).
func chunkByComparisons(cmps []int, budget int) []mapreduce.Range {
	var out []mapreduce.Range
	lo, load := 0, 0
	for bi, c := range cmps {
		if bi > lo && load+c > budget {
			out = append(out, mapreduce.Range{Lo: lo, Hi: bi})
			lo, load = bi, 0
		}
		load += c
	}
	if lo < len(cmps) {
		out = append(out, mapreduce.Range{Lo: lo, Hi: len(cmps)})
	}
	return out
}

// Build constructs the blocking graph concurrently and computes edge
// weights under the given scheme. The result is identical — including
// float weights, bit for bit — to metablocking.Build for any worker
// count; workers ≤ 0 means GOMAXPROCS and 1 falls through to the
// sequential builder.
//
// The block range is processed in rounds (see buildChunkComparisons):
// each round's map phase deals its occurrences to entity-range
// partitions, and the merge phase folds them — shards in ascending
// order, occurrences one at a time — into per-partition flat records.
// Rounds and shards are both contiguous ascending block ranges, so
// every edge's float evidence accumulates in exactly the global block
// order of the sequential oracle.
func Build(col *blocking.Collection, scheme metablocking.Scheme, workers int) *metablocking.Graph {
	workers = Workers(workers)
	if workers == 1 || len(col.Blocks) == 0 {
		return metablocking.Build(col, scheme)
	}
	numNodes := col.Source.Len()
	nParts := workers * partsPerWorker

	// Per-block comparison counts, computed once in parallel: they
	// drive both the round planning and the map loops.
	cmps := make([]int, len(col.Blocks))
	var cwg sync.WaitGroup
	for _, r := range mapreduce.Ranges(len(col.Blocks), workers) {
		cwg.Add(1)
		go func(r mapreduce.Range) {
			defer cwg.Done()
			for bi := r.Lo; bi < r.Hi; bi++ {
				cmps[bi] = col.Blocks[bi].Comparisons(col.Source, col.CleanClean)
			}
		}(r)
	}
	cwg.Wait()

	// Persistent per-partition accumulators, and per-(shard, partition)
	// occurrence buffers reused across rounds.
	accIdx := make([]container.PairTable, nParts)
	pools := make([]recPool, nParts)
	emits := make([][][]occurrence, workers)
	for s := range emits {
		emits[s] = make([][]occurrence, nParts)
	}

	for _, round := range chunkByComparisons(cmps, buildChunkComparisons) {
		// Map: contiguous block shards within the round. Each worker
		// walks its blocks in order and deals every pair occurrence to
		// the entity-range partition of the smaller endpoint.
		shards := mapreduce.Ranges(round.Len(), workers)
		var wg sync.WaitGroup
		for s, sr := range shards {
			wg.Add(1)
			go func(s int, r mapreduce.Range) {
				defer wg.Done()
				parts := emits[s]
				for p := range parts {
					parts[p] = parts[p][:0]
				}
				for bi := round.Lo + r.Lo; bi < round.Lo+r.Hi; bi++ {
					if cmps[bi] == 0 {
						continue
					}
					inv := 1 / float64(cmps[bi])
					ents := col.Blocks[bi].Entities
					for x := 0; x < len(ents); x++ {
						for y := x + 1; y < len(ents); y++ {
							a, bb := ents[x], ents[y]
							if col.CleanClean && !col.Source.CrossKB(a, bb) {
								continue
							}
							if a > bb {
								a, bb = bb, a
							}
							p := a * nParts / numNodes
							parts[p] = append(parts[p], occurrence{a: int32(a), b: int32(bb), inv: inv})
						}
					}
				}
			}(s, sr)
		}
		wg.Wait()

		// Merge: each partition is owned by exactly one goroutine
		// (claimed off a shared counter), visiting shards in ascending
		// order so every edge's evidence accumulates in global block
		// order.
		nShards := len(shards)
		forEachPart(nParts, workers, func(p int) {
			idx := &accIdx[p]
			pool := &pools[p]
			for s := 0; s < nShards; s++ {
				for _, o := range emits[s][p] {
					key := uint64(uint32(o.a))<<32 | uint64(uint32(o.b))
					i, ok := idx.Get(key)
					if !ok {
						i = pool.alloc(o.a, o.b)
						idx.Put(key, i)
					}
					r := pool.at(i)
					r.common++
					r.arcs += o.inv
				}
			}
		})
	}

	// Records accumulated in first-occurrence order; sort each partition
	// into canonical (A, B) order once, after the last round — an index
	// permutation per partition, the pooled records never move.
	orders := make([][]int32, nParts)
	forEachPart(nParts, workers, func(p int) {
		pool := &pools[p]
		order := make([]int32, pool.n)
		for i := range order {
			order[i] = int32(i)
		}
		sort.Slice(order, func(x, y int) bool {
			rx, ry := pool.at(order[x]), pool.at(order[y])
			if rx.a != ry.a {
				return rx.a < ry.a
			}
			return rx.b < ry.b
		})
		orders[p] = order
	})

	// Assemble: the partition function is monotone in A, so sorted
	// partitions concatenate directly into canonical (A, B) order.
	total := 0
	offsets := make([]int, nParts)
	for p := range pools {
		offsets[p] = total
		total += int(pools[p].n)
	}
	edges := make([]metablocking.Edge, total)
	common := make([]int, total)
	arcs := make([]float64, total)
	forEachPart(nParts, workers, func(p int) {
		o := offsets[p]
		pool := &pools[p]
		for i, h := range orders[p] {
			r := pool.at(h)
			edges[o+i] = metablocking.Edge{A: int(r.a), B: int(r.b)}
			common[o+i] = int(r.common)
			arcs[o+i] = r.arcs
		}
	})

	g := metablocking.NewGraphFromStats(col, edges, common, arcs)
	Reweigh(g, scheme, workers)
	return g
}

// Update applies an incremental block-collection delta to the graph —
// Graph.Update's contract, bit-identical to a from-scratch Build over
// newCol — with the global reweigh pass sharded across workers. The
// structural diff itself is the sequential reference: its cost is
// proportional to the delta, so the linear reweigh is what parallelism
// buys back.
func Update(g *metablocking.Graph, oldCol, newCol *blocking.Collection, scheme metablocking.Scheme, workers int) metablocking.UpdateStats {
	stats := g.UpdateStructure(oldCol, newCol, scheme)
	g.FinishUpdate(&stats, func() { Reweigh(g, scheme, workers) })
	return stats
}

// Reweigh recomputes edge weights under a different scheme, sharding
// the edge range across workers. Identical to Graph.Reweigh for any
// worker count.
func Reweigh(g *metablocking.Graph, scheme metablocking.Scheme, workers int) {
	workers = Workers(workers)
	shards := mapreduce.Ranges(len(g.Edges), workers)
	if workers == 1 || len(shards) < 2 {
		g.Reweigh(scheme)
		return
	}
	var wg sync.WaitGroup
	for _, r := range shards {
		wg.Add(1)
		go func(r mapreduce.Range) {
			defer wg.Done()
			g.ReweighRange(scheme, r.Lo, r.Hi)
		}(r)
	}
	wg.Wait()
}

// Prune returns the retained edges under the chosen algorithm, sorted
// by descending weight (ties by (A, B) ascending) — the same contract,
// and the same edges, as Graph.Prune, for any worker count. Multiple
// Prune calls may run concurrently on one graph: pruning only reads
// the graph.
func Prune(g *metablocking.Graph, alg metablocking.Pruning, opts metablocking.PruneOptions, workers int) []metablocking.Edge {
	workers = Workers(workers)
	if workers == 1 || len(g.Edges) == 0 {
		return g.Prune(alg, opts)
	}
	var kept []metablocking.Edge
	switch alg {
	case metablocking.WEP:
		kept = pruneWEP(g, workers)
	case metablocking.CEP:
		kept = pruneCEP(g, opts, workers)
	case metablocking.WNP, metablocking.CNP:
		kept = pruneNode(g, alg, opts, workers)
	}
	sortEdgesParallel(kept, workers)
	return kept
}

func pruneWEP(g *metablocking.Graph, workers int) []metablocking.Edge {
	// The mean is summed sequentially in edge order: float addition is
	// not associative, and the threshold must match the sequential
	// engine bit for bit. The filter — the allocation-heavy part — is
	// what shards.
	sum := 0.0
	for _, e := range g.Edges {
		sum += e.Weight
	}
	mean := sum / float64(len(g.Edges))
	return collectShards(g, workers, func(i int) bool {
		return g.Edges[i].Weight >= mean
	})
}

// collectShards gathers the edges satisfying keep into one exact-size
// output slice: a sharded count pass sizes per-shard output ranges, a
// sharded fill pass writes them — no per-shard buffers, no concat copy.
// Shard ranges are contiguous and ascending, so the output order is the
// sequential scan order.
func collectShards(g *metablocking.Graph, workers int, keep func(i int) bool) []metablocking.Edge {
	shards := mapreduce.Ranges(len(g.Edges), workers)
	counts := make([]int, len(shards))
	var wg sync.WaitGroup
	for s, r := range shards {
		wg.Add(1)
		go func(s int, r mapreduce.Range) {
			defer wg.Done()
			n := 0
			for i := r.Lo; i < r.Hi; i++ {
				if keep(i) {
					n++
				}
			}
			counts[s] = n
		}(s, r)
	}
	wg.Wait()
	total := 0
	for s, n := range counts {
		counts[s] = total
		total += n
	}
	if total == 0 {
		return nil
	}
	out := make([]metablocking.Edge, total)
	var fwg sync.WaitGroup
	for s, r := range shards {
		fwg.Add(1)
		go func(s int, r mapreduce.Range) {
			defer fwg.Done()
			o := counts[s]
			for i := r.Lo; i < r.Hi; i++ {
				if keep(i) {
					out[o] = g.Edges[i]
					o++
				}
			}
		}(s, r)
	}
	fwg.Wait()
	return out
}

// cepLess ranks edges for cardinality edge pruning: lighter first,
// ties broken so that later (A, B) ranks lower — the sequential
// engine's deterministic tie-break. The order is total (edges are
// distinct pairs), so the global top-k set is unique no matter how the
// candidates are sharded.
func cepLess(a, b metablocking.Edge) bool {
	if a.Weight != b.Weight {
		return a.Weight < b.Weight
	}
	if a.A != b.A {
		return a.A > b.A
	}
	return a.B > b.B
}

func pruneCEP(g *metablocking.Graph, opts metablocking.PruneOptions, workers int) []metablocking.Edge {
	k := opts.K
	if k <= 0 {
		k = opts.Assignments / 2
	}
	if k <= 0 {
		k = len(g.Edges)
	}
	shards := mapreduce.Ranges(len(g.Edges), workers)
	winners := make([][]metablocking.Edge, len(shards))
	var wg sync.WaitGroup
	for s, r := range shards {
		wg.Add(1)
		go func(s int, r mapreduce.Range) {
			defer wg.Done()
			top := container.NewBoundedTopK(k, cepLess)
			for _, e := range g.Edges[r.Lo:r.Hi] {
				top.Offer(e)
			}
			winners[s] = top.Drain()
		}(s, r)
	}
	wg.Wait()
	// Every member of the global top-k survives its own shard's top-k,
	// so merging the shard winners through one more selection yields
	// exactly the sequential result.
	top := container.NewBoundedTopK(k, cepLess)
	for _, ws := range winners {
		for _, e := range ws {
			top.Offer(e)
		}
	}
	return top.Drain()
}

// pruneNode runs WNP or CNP: the halved incidence structure, per-node
// retention sharded over node ranges with atomic per-endpoint flag
// bits, then a sharded collect.
func pruneNode(g *metablocking.Graph, alg metablocking.Pruning, opts metablocking.PruneOptions, workers int) []metablocking.Edge {
	kept, _ := pruneNodeFlags(g, alg, opts, workers, false)
	return kept
}

// pruneNodeFlags is pruneNode's engine; with wantFlags it also returns
// the per-edge retention bits, narrowed to the uint8 encoding
// metablocking.PruneMemo stores (the atomic flag words only ever hold
// KeptByA|KeptByB).
func pruneNodeFlags(g *metablocking.Graph, alg metablocking.Pruning, opts metablocking.PruneOptions, workers int, wantFlags bool) ([]metablocking.Edge, []uint8) {
	inc := incidence(g, workers)
	kPerNode := 0
	if alg == metablocking.CNP {
		kPerNode = g.ResolveK(opts)
	}
	// Per-edge retention flags. An edge's two endpoints may land in
	// different node shards, each OR-ing its own bit into the same word,
	// hence the atomic Or (a plain |= on shared bytes would race).
	flags := make([]uint32, len(g.Edges))
	var wg sync.WaitGroup
	for _, r := range mapreduce.Ranges(g.NumNodes, workers) {
		wg.Add(1)
		go func(r mapreduce.Range) {
			defer wg.Done()
			for v := r.Lo; v < r.Hi; v++ {
				if inc.deg(v) == 0 {
					continue
				}
				switch alg {
				case metablocking.WNP:
					// Summed in index-ascending order — the sequential
					// neighborhood order — for a bit-identical mean.
					sum := 0.0
					n := 0
					inc.forEach(v, func(ei int32, isA bool) {
						sum += g.Edges[ei].Weight
						n++
					})
					mean := sum / float64(n)
					inc.forEach(v, func(ei int32, isA bool) {
						if g.Edges[ei].Weight >= mean {
							atomic.OrUint32(&flags[ei], endpointBit(isA))
						}
					})
				case metablocking.CNP:
					top := container.NewBoundedTopK(kPerNode, func(a, b int32) bool {
						ea, eb := g.Edges[a], g.Edges[b]
						if ea.Weight != eb.Weight {
							return ea.Weight < eb.Weight
						}
						return a > b
					})
					inc.forEach(v, func(ei int32, isA bool) {
						top.Offer(ei)
					})
					for _, ei := range top.Drain() {
						atomic.OrUint32(&flags[ei], endpointBit(g.Edges[ei].A == v))
					}
				}
			}
		}(r)
	}
	wg.Wait()

	both := uint32(metablocking.KeptByA | metablocking.KeptByB)
	kept := collectShards(g, workers, func(i int) bool {
		if opts.Reciprocal {
			return flags[i] == both
		}
		return flags[i] != 0
	})
	if !wantFlags {
		return kept, nil
	}
	f8 := make([]uint8, len(flags))
	for i, f := range flags {
		f8[i] = uint8(f)
	}
	return kept, f8
}

// PruneMemoized is Prune plus a reusable metablocking.PruneMemo for the
// node-centric algorithms — the parallel counterpart of
// Graph.PruneMemoized, memo-compatible with it bit for bit (the flag
// encoding is shared). WEP and CEP return a nil memo.
func PruneMemoized(g *metablocking.Graph, alg metablocking.Pruning, opts metablocking.PruneOptions, workers int) ([]metablocking.Edge, *metablocking.PruneMemo) {
	workers = Workers(workers)
	if workers == 1 || len(g.Edges) == 0 {
		return g.PruneMemoized(alg, opts)
	}
	switch alg {
	case metablocking.WNP, metablocking.CNP:
		kept, flags := pruneNodeFlags(g, alg, opts, workers, true)
		sortEdgesParallel(kept, workers)
		memo := &metablocking.PruneMemo{Alg: alg, Reciprocal: opts.Reciprocal, Flags: flags}
		if alg == metablocking.CNP {
			memo.K = g.ResolveK(opts)
		}
		return kept, memo
	}
	return Prune(g, alg, opts, workers), nil
}

func endpointBit(isA bool) uint32 {
	if isA {
		return uint32(metablocking.KeptByA)
	}
	return uint32(metablocking.KeptByB)
}

// incidenceIdx is the halved per-node incidence structure. Edges are
// sorted by (A, B), so each node's A-side incident edges are one
// contiguous run of edge indices — aStart[v]:aStart[v+1] IS the index
// list, no storage needed. Only the B side keeps an explicit CSR
// (bStart, bIdx), E entries instead of the 2E a full adjacency holds:
// the edge list stops being stored twice.
type incidenceIdx struct {
	aStart []int32
	bStart []int32
	bIdx   []int32
}

func (in *incidenceIdx) deg(v int) int {
	return int(in.aStart[v+1]-in.aStart[v]) + int(in.bStart[v+1]-in.bStart[v])
}

// forEach visits v's incident edge indices in ascending order — the
// sequential neighborhood order — merging the implicit A-run with the
// B list (both ascending, never overlapping: an edge's endpoints are
// distinct).
func (in *incidenceIdx) forEach(v int, fn func(ei int32, isA bool)) {
	ai, aEnd := in.aStart[v], in.aStart[v+1]
	bs := in.bIdx[in.bStart[v]:in.bStart[v+1]]
	j := 0
	for ai < aEnd || j < len(bs) {
		if ai < aEnd && (j == len(bs) || ai < bs[j]) {
			fn(ai, true)
			ai++
		} else {
			fn(bs[j], false)
			j++
		}
	}
}

// incidence builds the halved incidence structure. The B-side fill is
// sharded over contiguous edge ranges with disjoint per-node, per-shard
// cursor ranges, so it is lock-free and the layout is identical for any
// worker count; the A side is a prefix sum over the already-sorted edge
// list.
func incidence(g *metablocking.Graph, workers int) *incidenceIdx {
	in := &incidenceIdx{aStart: make([]int32, g.NumNodes+1)}
	for i := range g.Edges {
		in.aStart[g.Edges[i].A+1]++
	}
	for v := 0; v < g.NumNodes; v++ {
		in.aStart[v+1] += in.aStart[v]
	}

	shards := mapreduce.Ranges(len(g.Edges), workers)
	counts := make([][]int32, len(shards))
	var wg sync.WaitGroup
	for s, r := range shards {
		wg.Add(1)
		go func(s int, r mapreduce.Range) {
			defer wg.Done()
			c := make([]int32, g.NumNodes)
			for _, e := range g.Edges[r.Lo:r.Hi] {
				c[e.B]++
			}
			counts[s] = c
		}(s, r)
	}
	wg.Wait()

	in.bStart = make([]int32, g.NumNodes+1)
	pos := int32(0)
	for v := 0; v < g.NumNodes; v++ {
		in.bStart[v] = pos
		for s := range counts {
			c := counts[s][v]
			counts[s][v] = pos
			pos += c
		}
	}
	in.bStart[g.NumNodes] = pos

	in.bIdx = make([]int32, pos)
	var fwg sync.WaitGroup
	for s, r := range shards {
		fwg.Add(1)
		go func(s int, r mapreduce.Range) {
			defer fwg.Done()
			cur := counts[s]
			for i := r.Lo; i < r.Hi; i++ {
				e := &g.Edges[i]
				in.bIdx[cur[e.B]] = int32(i)
				cur[e.B]++
			}
		}(s, r)
	}
	fwg.Wait()
	return in
}

// edgeBefore is the retained-edge output order: descending weight,
// ties by ascending (A, B) — total, since edges are distinct pairs.
func edgeBefore(a, b metablocking.Edge) bool {
	if a.Weight != b.Weight {
		return a.Weight > b.Weight
	}
	if a.A != b.A {
		return a.A < b.A
	}
	return a.B < b.B
}

// sortEdgesParallel sorts es in the retained-edge output order with a
// chunked parallel merge sort. The comparator is total, so the result
// is identical to metablocking.SortEdges for any worker count.
func sortEdgesParallel(es []metablocking.Edge, workers int) {
	if len(es) < 2 {
		return
	}
	spans := mapreduce.Ranges(len(es), workers)
	if workers == 1 || len(spans) < 2 {
		metablocking.SortEdges(es)
		return
	}
	var wg sync.WaitGroup
	for _, r := range spans {
		wg.Add(1)
		go func(r mapreduce.Range) {
			defer wg.Done()
			metablocking.SortEdges(es[r.Lo:r.Hi])
		}(r)
	}
	wg.Wait()

	buf := make([]metablocking.Edge, len(es))
	src, dst := es, buf
	for len(spans) > 1 {
		next := make([]mapreduce.Range, 0, (len(spans)+1)/2)
		var mwg sync.WaitGroup
		for i := 0; i < len(spans); i += 2 {
			if i+1 == len(spans) {
				r := spans[i]
				mwg.Add(1)
				go func(r mapreduce.Range) {
					defer mwg.Done()
					copy(dst[r.Lo:r.Hi], src[r.Lo:r.Hi])
				}(r)
				next = append(next, r)
				break
			}
			a, b := spans[i], spans[i+1]
			mwg.Add(1)
			go func(a, b mapreduce.Range) {
				defer mwg.Done()
				mergeEdges(dst[a.Lo:b.Hi], src[a.Lo:a.Hi], src[b.Lo:b.Hi])
			}(a, b)
			next = append(next, mapreduce.Range{Lo: a.Lo, Hi: b.Hi})
		}
		mwg.Wait()
		spans = next
		src, dst = dst, src
	}
	if &src[0] != &es[0] {
		copy(es, src)
	}
}

func mergeEdges(dst, a, b []metablocking.Edge) {
	i, j := 0, 0
	for k := range dst {
		switch {
		case i == len(a):
			dst[k] = b[j]
			j++
		case j == len(b):
			dst[k] = a[i]
			i++
		case edgeBefore(b[j], a[i]):
			dst[k] = b[j]
			j++
		default:
			dst[k] = a[i]
			i++
		}
	}
}

// forEachPart runs fn(p) for every p in [0, nParts), distributing
// partitions dynamically over workers goroutines.
func forEachPart(nParts, workers int, fn func(p int)) {
	mapreduce.ForEach(nParts, workers, fn)
}

func concat(parts [][]metablocking.Edge) []metablocking.Edge {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return nil
	}
	out := make([]metablocking.Edge, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
