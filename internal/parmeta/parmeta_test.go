package parmeta

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/blocking"
	"repro/internal/datagen"
	"repro/internal/metablocking"
	"repro/internal/tokenize"
)

// worlds returns the differential workloads: a clean–clean two-KB
// world and a dirty single-KB world with duplicates — the two ER
// settings of the paper, which exercise the cross-KB comparison filter
// and the skew of the entity-range partition differently.
func worlds(t testing.TB) map[string]*blocking.Collection {
	t.Helper()
	cols := make(map[string]*blocking.Collection)
	for name, cfg := range map[string]datagen.Config{
		"cleanclean": datagen.TwoKBs(2016, 220, datagen.Center(), datagen.Center()),
		"dirty":      datagen.DirtyKB(2016, 220, 3),
	} {
		w, err := datagen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cols[name] = blocking.TokenBlocking(w.Collection, tokenize.Default()).Purge(0).Filter(0.8)
	}
	return cols
}

func sameGraph(t *testing.T, want, got *metablocking.Graph) {
	t.Helper()
	if got.NumNodes != want.NumNodes {
		t.Fatalf("NumNodes=%d, want %d", got.NumNodes, want.NumNodes)
	}
	if got.NumEdges() != want.NumEdges() {
		t.Fatalf("NumEdges=%d, want %d", got.NumEdges(), want.NumEdges())
	}
	for i := range want.Edges {
		if got.Edges[i] != want.Edges[i] {
			t.Fatalf("edge %d = %+v, want %+v", i, got.Edges[i], want.Edges[i])
		}
	}
}

func sameEdges(t *testing.T, label string, want, got []metablocking.Edge) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d edges, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: edge %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestBuildMatchesSequential asserts bit-identical graphs — edges,
// order, and float weights — for every scheme and worker count.
func TestBuildMatchesSequential(t *testing.T) {
	for name, col := range worlds(t) {
		for _, scheme := range metablocking.Schemes() {
			want := metablocking.Build(col, scheme)
			for _, workers := range []int{2, 3, 4, 8} {
				t.Run(fmt.Sprintf("%s/%v/workers=%d", name, scheme, workers), func(t *testing.T) {
					sameGraph(t, want, Build(col, scheme, workers))
				})
			}
		}
	}
}

// TestPruneMatchesSequential covers every scheme × pruning ×
// reciprocal combination: the parallel engine must retain exactly the
// sequential edge set, in the same order, with the same weights.
func TestPruneMatchesSequential(t *testing.T) {
	for name, col := range worlds(t) {
		opts := metablocking.PruneOptions{Assignments: col.Assignments()}
		for _, scheme := range metablocking.Schemes() {
			seq := metablocking.Build(col, scheme)
			par := Build(col, scheme, 4)
			for _, alg := range metablocking.Prunings() {
				for _, reciprocal := range []bool{false, true} {
					o := opts
					o.Reciprocal = reciprocal
					want := seq.Prune(alg, o)
					for _, workers := range []int{2, 4, 7} {
						label := fmt.Sprintf("%s/%v/%v/reciprocal=%v/workers=%d",
							name, scheme, alg, reciprocal, workers)
						t.Run(label, func(t *testing.T) {
							sameEdges(t, label, want, Prune(par, alg, o, workers))
						})
					}
				}
			}
		}
	}
}

// TestPruneOptionOverrides checks the explicit K / KPerNode budgets
// flow through the parallel engine identically.
func TestPruneOptionOverrides(t *testing.T) {
	col := worlds(t)["cleanclean"]
	g := Build(col, metablocking.ECBS, 4)
	seq := metablocking.Build(col, metablocking.ECBS)
	for _, opts := range []metablocking.PruneOptions{
		{K: 50},
		{K: 1},
		{KPerNode: 2},
		{KPerNode: 1, Reciprocal: true},
	} {
		for alg, o := range map[metablocking.Pruning]metablocking.PruneOptions{
			metablocking.CEP: opts,
			metablocking.CNP: opts,
		} {
			want := seq.Prune(alg, o)
			got := Prune(g, alg, o, 4)
			sameEdges(t, fmt.Sprintf("%v/%+v", alg, o), want, got)
		}
	}
}

// TestReweighMatchesSequential re-weighs one graph through every
// scheme in place, comparing against a sequentially re-weighed twin.
func TestReweighMatchesSequential(t *testing.T) {
	col := worlds(t)["cleanclean"]
	seq := metablocking.Build(col, metablocking.CBS)
	par := Build(col, metablocking.CBS, 4)
	for _, scheme := range []metablocking.Scheme{
		metablocking.ARCS, metablocking.EJS, metablocking.JS,
		metablocking.ECBS, metablocking.CBS,
	} {
		seq.Reweigh(scheme)
		Reweigh(par, scheme, 4)
		sameGraph(t, seq, par)
	}
}

// TestConcurrentPrunes runs several pruning algorithms on the same
// graph at once: Prune only reads the graph, so concurrent calls must
// be race-free and each still sequential-identical.
func TestConcurrentPrunes(t *testing.T) {
	col := worlds(t)["cleanclean"]
	g := Build(col, metablocking.ECBS, 4)
	seq := metablocking.Build(col, metablocking.ECBS)
	opts := metablocking.PruneOptions{Assignments: col.Assignments()}
	var wg sync.WaitGroup
	for _, alg := range metablocking.Prunings() {
		for rep := 0; rep < 3; rep++ {
			wg.Add(1)
			go func(alg metablocking.Pruning) {
				defer wg.Done()
				want := seq.Prune(alg, opts)
				got := Prune(g, alg, opts, 4)
				if len(got) != len(want) {
					t.Errorf("%v: %d edges, want %d", alg, len(got), len(want))
					return
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("%v: edge %d = %+v, want %+v", alg, i, got[i], want[i])
						return
					}
				}
			}(alg)
		}
	}
	wg.Wait()
}

// TestStressDeterminism hammers the full engine repeatedly with an
// oversubscribed worker count; under -race this is the concurrency
// stress test, and every repetition must reproduce the same result.
func TestStressDeterminism(t *testing.T) {
	col := worlds(t)["dirty"]
	opts := metablocking.PruneOptions{Assignments: col.Assignments()}
	ref := Prune(Build(col, metablocking.EJS, 6), metablocking.CNP, opts, 6)
	reps := 8
	if testing.Short() {
		reps = 2
	}
	for rep := 0; rep < reps; rep++ {
		got := Prune(Build(col, metablocking.EJS, 6), metablocking.CNP, opts, 6)
		sameEdges(t, fmt.Sprintf("rep %d", rep), ref, got)
	}
}

// TestChunkedBuildMatchesSequential shrinks the round budget so Build
// streams the block range through many map→merge rounds — the
// memory-capped path >10M-edge workloads take — and asserts the graph
// is still bit-identical for every scheme and worker count.
func TestChunkedBuildMatchesSequential(t *testing.T) {
	saved := buildChunkComparisons
	defer func() { buildChunkComparisons = saved }()
	for _, budget := range []int{1, 7, 64, 1024} {
		buildChunkComparisons = budget
		for name, col := range worlds(t) {
			for _, scheme := range []metablocking.Scheme{metablocking.ARCS, metablocking.ECBS} {
				want := metablocking.Build(col, scheme)
				for _, workers := range []int{2, 5} {
					t.Run(fmt.Sprintf("budget=%d/%s/%v/workers=%d", budget, name, scheme, workers), func(t *testing.T) {
						sameGraph(t, want, Build(col, scheme, workers))
					})
				}
			}
		}
	}
}

// TestChunkByComparisons checks the round planner: rounds are
// contiguous, cover every block, and respect the budget except for
// single oversized blocks.
func TestChunkByComparisons(t *testing.T) {
	cmps := []int{3, 3, 3, 10, 0, 0, 2, 5}
	rounds := chunkByComparisons(cmps, 6)
	lo := 0
	for _, r := range rounds {
		if r.Lo != lo {
			t.Fatalf("round %+v starts at %d, want %d", r, r.Lo, lo)
		}
		if r.Len() <= 0 {
			t.Fatalf("empty round %+v", r)
		}
		load := 0
		for bi := r.Lo; bi < r.Hi; bi++ {
			load += cmps[bi]
		}
		if load > 6 && r.Len() > 1 {
			t.Fatalf("round %+v holds %d comparisons over budget", r, load)
		}
		lo = r.Hi
	}
	if lo != len(cmps) {
		t.Fatalf("rounds end at %d, want %d", lo, len(cmps))
	}
	if rounds := chunkByComparisons(nil, 6); rounds != nil {
		t.Fatalf("chunking no blocks returned %+v", rounds)
	}
}

func TestWorkersOption(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0)=%d, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3)=%d, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5)=%d, want 5", got)
	}
}

// TestEmptyAndTiny covers degenerate inputs: no blocks, and fewer
// blocks than workers.
func TestEmptyAndTiny(t *testing.T) {
	empty := &blocking.Collection{Source: worlds(t)["cleanclean"].Source}
	g := Build(empty, metablocking.ECBS, 4)
	if g.NumEdges() != 0 {
		t.Errorf("empty collection produced %d edges", g.NumEdges())
	}
	if kept := Prune(g, metablocking.WEP, metablocking.PruneOptions{}, 4); len(kept) != 0 {
		t.Errorf("empty graph pruned to %d edges", len(kept))
	}

	col := worlds(t)["cleanclean"]
	tiny := &blocking.Collection{
		Blocks:     col.Blocks[:2],
		Source:     col.Source,
		CleanClean: col.CleanClean,
	}
	want := metablocking.Build(tiny, metablocking.JS)
	sameGraph(t, want, Build(tiny, metablocking.JS, 16))
}
