package parblock

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/blocking"
	"repro/internal/mapreduce"
)

// Block cleaning as MapReduce dataflow jobs, completing the cluster
// realization of the front-end: the paper's companion dataflow ([4])
// defines blocking, edge weighting, and node-centric pruning, and the
// purge/filter steps between them follow the same discipline here —
// block-keyed and entity-keyed passes whose shuffle order reproduces
// the sequential results exactly.

// Purge removes oversized blocks as a dataflow. With an automatic cap
// (maxSize ≤ 0) a histogram job aggregates block-size counts first —
// the same merged histogram the sequential AutoPurgeSize computes, so
// the cap is identical. The keep pass routes each surviving block by
// its padded index; the shuffle's key order is the original block
// order, so the output collection equals Collection.Purge.
func Purge(ctx context.Context, col *blocking.Collection, maxSize int, cfg mapreduce.Config) (*blocking.Collection, error) {
	if maxSize <= 0 {
		inputs := make([]string, len(col.Blocks))
		for i := range inputs {
			inputs[i] = strconv.Itoa(col.Blocks[i].Size())
		}
		hist, err := mapreduce.NewJob("purge-histogram", "")
		if err != nil {
			return nil, err
		}
		res, err := mapreduce.RunContext(ctx, hist, inputs, cfg)
		if err != nil {
			return nil, err
		}
		sizes := make(map[int]int, len(res.Output))
		for _, kv := range res.Output {
			size, err := unpad(kv.Key)
			if err != nil {
				return nil, fmt.Errorf("parblock: bad size key %q: %w", kv.Key, err)
			}
			cnt, err := strconv.Atoi(kv.Value)
			if err != nil {
				return nil, fmt.Errorf("parblock: bad size count %q: %w", kv.Value, err)
			}
			sizes[size] = cnt
		}
		maxSize = blocking.AutoPurgeSizeFromHistogram(sizes)
	}

	inputs := make([]string, len(col.Blocks))
	for i := range inputs {
		inputs[i] = strconv.Itoa(i) + "|" + strconv.Itoa(col.Blocks[i].Size())
	}
	keep, err := mapreduce.NewJob("purge-keep", jsonParams(purgeKeepParams{Max: maxSize}))
	if err != nil {
		return nil, err
	}
	res, err := mapreduce.RunContext(ctx, keep, inputs, cfg)
	if err != nil {
		return nil, err
	}
	out := &blocking.Collection{Source: col.Source, CleanClean: col.CleanClean}
	for _, kv := range res.Output {
		bi, err := unpad(kv.Key)
		if err != nil {
			return nil, fmt.Errorf("parblock: bad block key %q: %w", kv.Key, err)
		}
		out.Blocks = append(out.Blocks, col.Blocks[bi])
	}
	return out, nil
}

// sumValues is the integer-sum reducer/combiner.
func sumValues(key string, values []string, emit func(mapreduce.KV)) error {
	total := 0
	for _, v := range values {
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("bad count %q: %w", v, err)
		}
		total += n
	}
	emit(mapreduce.KV{Key: key, Value: strconv.Itoa(total)})
	return nil
}

// Filter applies block filtering as two dataflow jobs. The rank job
// sorts blocks by (size, index) through the shuffle — the engine's
// globally sorted output is the total size-rank order the sequential
// Filter uses. The assignment job routes every entity's placements to
// that entity's reducer, which keeps the ⌈ratio·n⌉ smallest-ranked
// ones (its value list arrives rank-sorted) and re-emits them keyed by
// block; the driver reassembles the surviving blocks in block order.
// Identical to Collection.Filter for any worker count.
func Filter(ctx context.Context, col *blocking.Collection, ratio float64, cfg mapreduce.Config) (*blocking.Collection, error) {
	if ratio <= 0 || ratio > 1 {
		ratio = 0.8
	}
	inputs := make([]string, len(col.Blocks))
	for i := range inputs {
		inputs[i] = strconv.Itoa(i) + "|" + strconv.Itoa(col.Blocks[i].Size())
	}

	rankJob, err := mapreduce.NewJob("filter-rank", "")
	if err != nil {
		return nil, err
	}
	ranked, err := mapreduce.RunContext(ctx, rankJob, inputs, cfg)
	if err != nil {
		return nil, err
	}
	rank := make([]int, len(col.Blocks))
	for r, kv := range ranked.Output {
		sep := strings.IndexByte(kv.Key, '|')
		if sep < 0 {
			return nil, fmt.Errorf("parblock: bad rank key %q", kv.Key)
		}
		bi, err := unpad(kv.Key[sep+1:])
		if err != nil {
			return nil, fmt.Errorf("parblock: bad rank key %q: %w", kv.Key, err)
		}
		rank[bi] = r
	}

	assignInputs := make([]string, len(col.Blocks))
	for i := range col.Blocks {
		enc, err := json.Marshal(assignInput{Block: i, Rank: rank[i], Entities: col.Blocks[i].Entities})
		if err != nil {
			return nil, fmt.Errorf("parblock: encode block %d: %w", i, err)
		}
		assignInputs[i] = string(enc)
	}
	assignJob, err := mapreduce.NewJob("filter-assign", jsonParams(filterAssignParams{Ratio: ratio}))
	if err != nil {
		return nil, err
	}
	res, err := mapreduce.RunContext(ctx, assignJob, assignInputs, cfg)
	if err != nil {
		return nil, err
	}

	// Output arrives sorted by (block, entity) — the rebuild order.
	out := &blocking.Collection{Source: col.Source, CleanClean: col.CleanClean}
	flush := func(bi int, members []int) {
		if len(members) < 2 {
			return
		}
		nb := blocking.Block{Key: col.Blocks[bi].Key, Entities: members}
		if nb.Comparisons(col.Source, col.CleanClean) == 0 {
			return
		}
		out.Blocks = append(out.Blocks, nb)
	}
	curBlock := -1
	var members []int
	for _, kv := range res.Output {
		bi, err := unpad(kv.Key)
		if err != nil {
			return nil, fmt.Errorf("parblock: bad filtered block key %q: %w", kv.Key, err)
		}
		id, err := unpad(kv.Value)
		if err != nil {
			return nil, fmt.Errorf("parblock: bad filtered entity %q: %w", kv.Value, err)
		}
		if bi != curBlock {
			if curBlock >= 0 {
				flush(curBlock, members)
			}
			curBlock, members = bi, nil
		}
		members = append(members, id)
	}
	if curBlock >= 0 {
		flush(curBlock, members)
	}
	return out, nil
}
