package parblock

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/blocking"
	"repro/internal/mapreduce"
	"repro/internal/metablocking"
)

// Every dataflow job is a registered factory with self-contained
// inputs: the map/reduce functions close over nothing but the job's
// parameters, so the identical job runs on an in-process runner or
// inside a `minoaner worker` subprocess that holds none of the
// driver's state. The drivers in this package serialize exactly what
// each job needs — token lists, entity ids with KB tags, edge triples
// — and job *outputs* are byte-identical to the closure-based
// originals, which is what keeps the differential matrix meaningful
// across runners.

func init() {
	mapreduce.Register("token-blocking", tokenBlockingJob)
	mapreduce.Register("edge-weighting", edgeWeightingJob)
	mapreduce.Register("node-pruning", nodePruningJob)
	mapreduce.Register("purge-histogram", purgeHistogramJob)
	mapreduce.Register("purge-keep", purgeKeepJob)
	mapreduce.Register("filter-rank", filterRankJob)
	mapreduce.Register("filter-assign", filterAssignJob)
}

// jsonParams marshals a factory's parameter struct; the parameter
// types here are all marshalable by construction.
func jsonParams(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic("parblock: unmarshalable job params: " + err.Error())
	}
	return string(b)
}

// tokenInput is one live description's token evidence.
type tokenInput struct {
	ID     int      `json:"id"`
	Tokens []string `json:"t"`
}

func tokenBlockingJob(string) (mapreduce.Job, error) {
	return mapreduce.Job{
		Name: "token-blocking",
		Map: func(input string, emit func(mapreduce.KV)) error {
			var rec tokenInput
			if err := json.Unmarshal([]byte(input), &rec); err != nil {
				return fmt.Errorf("bad input record %q: %w", input, err)
			}
			id := strconv.Itoa(rec.ID)
			for _, tok := range rec.Tokens {
				emit(mapreduce.KV{Key: tok, Value: id})
			}
			return nil
		},
		Reduce: func(key string, values []string, emit func(mapreduce.KV)) error {
			if len(values) < 2 {
				return nil
			}
			emit(mapreduce.KV{Key: key, Value: strings.Join(values, ",")})
			return nil
		},
	}, nil
}

// edgeBlockInput is one block: its sorted entity ids and — in
// clean-clean settings — each entity's KB tag, so a worker recomputes
// the block's comparison count and cross-KB tests without the
// collection.
type edgeBlockInput struct {
	Entities []int `json:"e"`
	KB       []int `json:"kb,omitempty"`
}

type edgeWeightParams struct {
	Clean bool `json:"clean"`
}

// blockComparisons mirrors blocking.Block.Comparisons over shipped KB
// tags: all pairs for dirty ER, cross-KB pairs only for clean-clean.
// Integer math — identical on both sides of the process boundary.
func blockComparisons(rec *edgeBlockInput, clean bool) int {
	n := len(rec.Entities)
	total := n * (n - 1) / 2
	if !clean {
		return total
	}
	perKB := make(map[int]int, 4)
	for _, k := range rec.KB {
		perKB[k]++
	}
	for _, k := range perKB {
		total -= k * (k - 1) / 2
	}
	return total
}

func edgeWeightingJob(params string) (mapreduce.Job, error) {
	var p edgeWeightParams
	if params != "" {
		if err := json.Unmarshal([]byte(params), &p); err != nil {
			return mapreduce.Job{}, err
		}
	}
	return mapreduce.Job{
		Name: "edge-weighting",
		Map: func(input string, emit func(mapreduce.KV)) error {
			var rec edgeBlockInput
			if err := json.Unmarshal([]byte(input), &rec); err != nil {
				return fmt.Errorf("bad block record %q: %w", input, err)
			}
			if p.Clean && len(rec.KB) != len(rec.Entities) {
				return fmt.Errorf("bad block record: %d entities, %d KB tags", len(rec.Entities), len(rec.KB))
			}
			cmp := blockComparisons(&rec, p.Clean)
			if cmp == 0 {
				return nil
			}
			inv := strconv.FormatFloat(1/float64(cmp), 'g', 17, 64)
			for x := 0; x < len(rec.Entities); x++ {
				for y := x + 1; y < len(rec.Entities); y++ {
					a, bb := rec.Entities[x], rec.Entities[y]
					if p.Clean && rec.KB[x] == rec.KB[y] {
						continue
					}
					if a > bb {
						a, bb = bb, a
					}
					// Entity-based strategy: the smaller endpoint's
					// reducer owns the edge.
					emit(mapreduce.KV{Key: pad(a), Value: pad(bb) + ":" + inv})
				}
			}
			return nil
		},
		Reduce: func(key string, values []string, emit func(mapreduce.KV)) error {
			type acc struct {
				cbs  int
				arcs float64
			}
			bag := make(map[string]*acc)
			for _, v := range values {
				i := strings.IndexByte(v, ':')
				if i < 0 {
					return fmt.Errorf("bad co-occurrence record %q", v)
				}
				inv, err := strconv.ParseFloat(v[i+1:], 64)
				if err != nil {
					return fmt.Errorf("bad weight in %q: %w", v, err)
				}
				a := bag[v[:i]]
				if a == nil {
					a = &acc{}
					bag[v[:i]] = a
				}
				a.cbs++
				a.arcs += inv
			}
			for mate, a := range bag {
				emit(mapreduce.KV{
					Key:   key + "|" + mate,
					Value: strconv.Itoa(a.cbs) + ":" + strconv.FormatFloat(a.arcs, 'g', 17, 64),
				})
			}
			return nil
		},
	}, nil
}

type nodePruneParams struct {
	Alg      int `json:"alg"`
	KPerNode int `json:"k,omitempty"`
}

func nodePruningJob(params string) (mapreduce.Job, error) {
	var p nodePruneParams
	if err := json.Unmarshal([]byte(params), &p); err != nil {
		return mapreduce.Job{}, err
	}
	alg := metablocking.Pruning(p.Alg)
	if alg != metablocking.WNP && alg != metablocking.CNP {
		return mapreduce.Job{}, fmt.Errorf("node-pruning: %v is not node-centric", alg)
	}
	type edge struct {
		a, b int
		w    float64
	}
	return mapreduce.Job{
		Name: "node-pruning",
		Map: func(input string, emit func(mapreduce.KV)) error {
			parts := strings.SplitN(input, "|", 3)
			if len(parts) != 3 {
				return fmt.Errorf("bad edge record %q", input)
			}
			a, err1 := strconv.Atoi(parts[0])
			b, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil {
				return fmt.Errorf("bad edge record %q", input)
			}
			v := input
			emit(mapreduce.KV{Key: pad(a), Value: v})
			emit(mapreduce.KV{Key: pad(b), Value: v})
			return nil
		},
		Reduce: func(key string, values []string, emit func(mapreduce.KV)) error {
			edges := make([]edge, 0, len(values))
			sum := 0.0
			for _, v := range values {
				parts := strings.SplitN(v, "|", 3)
				if len(parts) != 3 {
					return fmt.Errorf("bad incident edge %q", v)
				}
				a, err1 := strconv.Atoi(parts[0])
				b, err2 := strconv.Atoi(parts[1])
				w, err3 := strconv.ParseFloat(parts[2], 64)
				if err1 != nil || err2 != nil || err3 != nil {
					return fmt.Errorf("bad incident edge %q", v)
				}
				edges = append(edges, edge{a, b, w})
				sum += w
			}
			var retained []edge
			switch alg {
			case metablocking.WNP:
				mean := sum / float64(len(edges))
				for _, e := range edges {
					if e.w >= mean {
						retained = append(retained, e)
					}
				}
			case metablocking.CNP:
				// Descending weight, ties by ascending (a,b) — the
				// sequential tie-break.
				sort.Slice(edges, func(x, y int) bool {
					if edges[x].w != edges[y].w {
						return edges[x].w > edges[y].w
					}
					if edges[x].a != edges[y].a {
						return edges[x].a < edges[y].a
					}
					return edges[x].b < edges[y].b
				})
				k := p.KPerNode
				if k > len(edges) {
					k = len(edges)
				}
				retained = edges[:k]
			}
			for _, e := range retained {
				emit(mapreduce.KV{
					Key:   pad(e.a) + "|" + pad(e.b),
					Value: strconv.FormatFloat(e.w, 'g', 17, 64),
				})
			}
			return nil
		},
	}, nil
}

func purgeHistogramJob(string) (mapreduce.Job, error) {
	return mapreduce.Job{
		Name: "purge-histogram",
		Map: func(input string, emit func(mapreduce.KV)) error {
			size, err := strconv.Atoi(input)
			if err != nil {
				return fmt.Errorf("bad block record %q: %w", input, err)
			}
			emit(mapreduce.KV{Key: pad(size), Value: "1"})
			return nil
		},
		Combine: sumValues,
		Reduce:  sumValues,
	}, nil
}

type purgeKeepParams struct {
	Max int `json:"max"`
}

// splitBlockSize decodes a "blockIndex|size" record.
func splitBlockSize(input string) (bi, size int, err error) {
	sep := strings.IndexByte(input, '|')
	if sep < 0 {
		return 0, 0, fmt.Errorf("bad block record %q", input)
	}
	bi, err1 := strconv.Atoi(input[:sep])
	size, err2 := strconv.Atoi(input[sep+1:])
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("bad block record %q", input)
	}
	return bi, size, nil
}

func purgeKeepJob(params string) (mapreduce.Job, error) {
	var p purgeKeepParams
	if err := json.Unmarshal([]byte(params), &p); err != nil {
		return mapreduce.Job{}, err
	}
	return mapreduce.Job{
		Name: "purge-keep",
		Map: func(input string, emit func(mapreduce.KV)) error {
			bi, size, err := splitBlockSize(input)
			if err != nil {
				return err
			}
			if size <= p.Max {
				emit(mapreduce.KV{Key: pad(bi), Value: ""})
			}
			return nil
		},
		Reduce: func(key string, values []string, emit func(mapreduce.KV)) error {
			emit(mapreduce.KV{Key: key, Value: ""})
			return nil
		},
	}, nil
}

func filterRankJob(string) (mapreduce.Job, error) {
	return mapreduce.Job{
		Name: "filter-rank",
		Map: func(input string, emit func(mapreduce.KV)) error {
			bi, size, err := splitBlockSize(input)
			if err != nil {
				return err
			}
			emit(mapreduce.KV{Key: pad(size) + "|" + pad(bi), Value: ""})
			return nil
		},
		Reduce: func(key string, values []string, emit func(mapreduce.KV)) error {
			emit(mapreduce.KV{Key: key, Value: ""})
			return nil
		},
	}, nil
}

// assignInput is one ranked block and its entity placements.
type assignInput struct {
	Block    int   `json:"b"`
	Rank     int   `json:"r"`
	Entities []int `json:"e"`
}

type filterAssignParams struct {
	Ratio float64 `json:"ratio"`
}

func filterAssignJob(params string) (mapreduce.Job, error) {
	var p filterAssignParams
	if err := json.Unmarshal([]byte(params), &p); err != nil {
		return mapreduce.Job{}, err
	}
	return mapreduce.Job{
		Name: "filter-assign",
		Map: func(input string, emit func(mapreduce.KV)) error {
			var rec assignInput
			if err := json.Unmarshal([]byte(input), &rec); err != nil {
				return fmt.Errorf("bad block record %q: %w", input, err)
			}
			for _, id := range rec.Entities {
				emit(mapreduce.KV{Key: pad(id), Value: pad(rec.Rank) + "|" + pad(rec.Block)})
			}
			return nil
		},
		Reduce: func(key string, values []string, emit func(mapreduce.KV)) error {
			// Values are "rank|block" with fixed-width ranks: the
			// shuffle's string sort is the ascending rank order, so the
			// first ⌈ratio·n⌉ are exactly the blocks the sequential
			// Filter keeps for this entity.
			limit := blocking.FilterLimit(p.Ratio, len(values))
			for _, v := range values[:limit] {
				sep := strings.IndexByte(v, '|')
				if sep < 0 {
					return fmt.Errorf("bad assignment %q", v)
				}
				emit(mapreduce.KV{Key: v[sep+1:], Value: key})
			}
			return nil
		},
	}, nil
}
