package parblock

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/blocking"
	"repro/internal/mapreduce"
	"repro/internal/tokenize"
)

func sameBlocks(t *testing.T, label string, want, got *blocking.Collection) {
	t.Helper()
	if got.CleanClean != want.CleanClean {
		t.Fatalf("%s: CleanClean=%v, want %v", label, got.CleanClean, want.CleanClean)
	}
	if got.NumBlocks() != want.NumBlocks() {
		t.Fatalf("%s: %d blocks, want %d", label, got.NumBlocks(), want.NumBlocks())
	}
	for i := range want.Blocks {
		if got.Blocks[i].Key != want.Blocks[i].Key ||
			!reflect.DeepEqual(got.Blocks[i].Entities, want.Blocks[i].Entities) {
			t.Fatalf("%s: block %d differs: %v vs %v", label, i, got.Blocks[i], want.Blocks[i])
		}
	}
}

// TestDataflowPurgeMatchesSequential runs the purge dataflow — with
// automatic and explicit caps — against the sequential reference for
// several worker counts on both ER settings.
func TestDataflowPurgeMatchesSequential(t *testing.T) {
	w := workload(t, 61, 150)
	raw := blocking.TokenBlocking(w.Collection, tokenize.Default())
	for _, maxSize := range []int{0, 3, 25} {
		want := raw.Purge(maxSize)
		for _, workers := range []int{1, 3, 8} {
			label := fmt.Sprintf("purge=%d/workers=%d", maxSize, workers)
			got, err := Purge(context.Background(), raw, maxSize, mapreduce.Config{Workers: workers})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			sameBlocks(t, label, want, got)
		}
	}
}

// TestDataflowFilterMatchesSequential runs the two filter jobs against
// the sequential reference for several ratios and worker counts.
func TestDataflowFilterMatchesSequential(t *testing.T) {
	w := workload(t, 62, 150)
	purged := blocking.TokenBlocking(w.Collection, tokenize.Default()).Purge(0)
	for _, ratio := range []float64{0.5, 0.8, 1.0} {
		want := purged.Filter(ratio)
		for _, workers := range []int{1, 3, 8} {
			label := fmt.Sprintf("filter=%.1f/workers=%d", ratio, workers)
			got, err := Filter(context.Background(), purged, ratio, mapreduce.Config{Workers: workers})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			sameBlocks(t, label, want, got)
		}
	}
}

// TestDataflowCleaningChain chains purge and filter the way the engine
// runs them and checks the end state, including an empty collection.
func TestDataflowCleaningChain(t *testing.T) {
	w := workload(t, 63, 120)
	raw := blocking.TokenBlocking(w.Collection, tokenize.Default())
	want := raw.Purge(0).Filter(0.8)
	cfg := mapreduce.Config{Workers: 4}
	purged, err := Purge(context.Background(), raw, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Filter(context.Background(), purged, 0.8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameBlocks(t, "chain", want, got)

	empty := &blocking.Collection{Source: w.Collection, CleanClean: true}
	ep, err := Purge(context.Background(), empty, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ef, err := Filter(context.Background(), ep, 0.8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ef.NumBlocks() != 0 {
		t.Fatalf("empty collection produced %d blocks", ef.NumBlocks())
	}
}
