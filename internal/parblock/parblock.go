// Package parblock realizes blocking and meta-blocking as MapReduce
// jobs on the in-process engine, following the parallel meta-blocking
// dataflow of the paper's companion work [4] (Efthymiou et al., IEEE
// Big Data 2015): token blocking as one map/reduce pass, edge
// weighting with the entity-based strategy (each reducer sees one
// entity's co-occurrence bag), and node-centric pruning (WNP/CNP) as a
// further node-keyed pass. Results are identical to the sequential
// implementations in internal/blocking and internal/metablocking,
// which the tests assert.
package parblock

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/blocking"
	"repro/internal/kb"
	"repro/internal/mapreduce"
	"repro/internal/metablocking"
	"repro/internal/tokenize"
)

// TokenBlocking runs schema-agnostic token blocking as a MapReduce
// job: map emits (token, id) for every token of every description,
// reduce materializes one block per token, and the driver discards
// blocks that induce no comparisons.
func TokenBlocking(src *kb.Collection, opts tokenize.Options, cfg mapreduce.Config) (*blocking.Collection, error) {
	inputs := make([]string, 0, src.Len())
	for id := 0; id < src.Len(); id++ {
		if !src.Alive(id) {
			continue
		}
		inputs = append(inputs, strconv.Itoa(id))
	}
	job := mapreduce.Job{
		Name: "token-blocking",
		Map: func(input string, emit func(mapreduce.KV)) error {
			id, err := strconv.Atoi(input)
			if err != nil {
				return fmt.Errorf("bad input record %q: %w", input, err)
			}
			for _, tok := range src.Desc(id).Tokens(opts) {
				emit(mapreduce.KV{Key: tok, Value: input})
			}
			return nil
		},
		Reduce: func(key string, values []string, emit func(mapreduce.KV)) error {
			if len(values) < 2 {
				return nil
			}
			emit(mapreduce.KV{Key: key, Value: strings.Join(values, ",")})
			return nil
		},
	}
	res, err := mapreduce.Run(job, inputs, cfg)
	if err != nil {
		return nil, err
	}
	col := &blocking.Collection{Source: src, CleanClean: src.NumLiveKBs() > 1}
	for _, kv := range res.Output {
		ids, err := parseIDs(kv.Value)
		if err != nil {
			return nil, fmt.Errorf("parblock: block %q: %w", kv.Key, err)
		}
		b := blocking.Block{Key: kv.Key, Entities: ids}
		if b.Comparisons(src, col.CleanClean) == 0 {
			continue
		}
		col.Blocks = append(col.Blocks, b)
	}
	return col, nil
}

// parseIDs decodes a comma-joined id list; the shuffle sorts values as
// strings ("10" < "2"), so the result is re-sorted numerically.
func parseIDs(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	ids := make([]int, len(parts))
	for i, p := range parts {
		id, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}
	sort.Ints(ids)
	return ids, nil
}

// pad left-pads a numeric id to fixed width so string order equals
// numeric order in shuffle keys.
func pad(id int) string {
	return fmt.Sprintf("%012d", id)
}

func unpad(s string) (int, error) {
	t := strings.TrimLeft(s, "0")
	if t == "" {
		return 0, nil
	}
	return strconv.Atoi(t)
}

// Graph computes the blocking graph of a block collection with a
// MapReduce job per the entity-based strategy: map sends every
// comparison of every block to its smaller endpoint; that entity's
// reducer aggregates common-block counts (CBS) and reciprocal block
// cardinalities (ARCS) per co-occurring entity and emits one record
// per distinct edge. The driver assembles the graph and applies the
// scheme's weight formula through the shared sequential code path.
func Graph(col *blocking.Collection, scheme metablocking.Scheme, cfg mapreduce.Config) (*metablocking.Graph, error) {
	src := col.Source
	inputs := make([]string, len(col.Blocks))
	for i := range inputs {
		inputs[i] = strconv.Itoa(i)
	}
	job := mapreduce.Job{
		Name: "edge-weighting",
		Map: func(input string, emit func(mapreduce.KV)) error {
			bi, err := strconv.Atoi(input)
			if err != nil {
				return fmt.Errorf("bad block record %q: %w", input, err)
			}
			b := &col.Blocks[bi]
			cmp := b.Comparisons(src, col.CleanClean)
			if cmp == 0 {
				return nil
			}
			inv := strconv.FormatFloat(1/float64(cmp), 'g', 17, 64)
			for x := 0; x < len(b.Entities); x++ {
				for y := x + 1; y < len(b.Entities); y++ {
					a, bb := b.Entities[x], b.Entities[y]
					if col.CleanClean && !src.CrossKB(a, bb) {
						continue
					}
					if a > bb {
						a, bb = bb, a
					}
					// Entity-based strategy: the smaller endpoint's
					// reducer owns the edge.
					emit(mapreduce.KV{Key: pad(a), Value: pad(bb) + ":" + inv})
				}
			}
			return nil
		},
		Reduce: func(key string, values []string, emit func(mapreduce.KV)) error {
			type acc struct {
				cbs  int
				arcs float64
			}
			bag := make(map[string]*acc)
			for _, v := range values {
				i := strings.IndexByte(v, ':')
				if i < 0 {
					return fmt.Errorf("bad co-occurrence record %q", v)
				}
				inv, err := strconv.ParseFloat(v[i+1:], 64)
				if err != nil {
					return fmt.Errorf("bad weight in %q: %w", v, err)
				}
				a := bag[v[:i]]
				if a == nil {
					a = &acc{}
					bag[v[:i]] = a
				}
				a.cbs++
				a.arcs += inv
			}
			for mate, a := range bag {
				emit(mapreduce.KV{
					Key:   key + "|" + mate,
					Value: strconv.Itoa(a.cbs) + ":" + strconv.FormatFloat(a.arcs, 'g', 17, 64),
				})
			}
			return nil
		},
	}
	res, err := mapreduce.Run(job, inputs, cfg)
	if err != nil {
		return nil, err
	}

	g := metablocking.NewGraphShell(col)
	for _, kv := range res.Output {
		a, b, err := splitEdgeKey(kv.Key)
		if err != nil {
			return nil, err
		}
		i := strings.IndexByte(kv.Value, ':')
		if i < 0 {
			return nil, fmt.Errorf("parblock: bad edge value %q", kv.Value)
		}
		cbs, err := strconv.Atoi(kv.Value[:i])
		if err != nil {
			return nil, fmt.Errorf("parblock: bad CBS in %q: %w", kv.Value, err)
		}
		arcs, err := strconv.ParseFloat(kv.Value[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("parblock: bad ARCS in %q: %w", kv.Value, err)
		}
		g.AddEdgeStat(a, b, cbs, arcs)
	}
	g.Finish(scheme)
	return g, nil
}

func splitEdgeKey(key string) (int, int, error) {
	sep := strings.IndexByte(key, '|')
	if sep < 0 {
		return 0, 0, fmt.Errorf("parblock: bad edge key %q", key)
	}
	a, err := unpad(key[:sep])
	if err != nil {
		return 0, 0, fmt.Errorf("parblock: bad edge key %q: %w", key, err)
	}
	b, err := unpad(key[sep+1:])
	if err != nil {
		return 0, 0, fmt.Errorf("parblock: bad edge key %q: %w", key, err)
	}
	return a, b, nil
}

// PruneNodeCentric runs WNP or CNP as a node-keyed MapReduce job: map
// routes every edge to both endpoints, each node's reducer applies its
// local criterion (mean weight for WNP, top-k for CNP) and re-emits
// retained edges; the driver keeps edges retained by either endpoint
// (or both, when opts.Reciprocal). Results match the sequential
// Graph.Prune.
func PruneNodeCentric(g *metablocking.Graph, alg metablocking.Pruning, opts metablocking.PruneOptions, cfg mapreduce.Config) ([]metablocking.Edge, error) {
	if alg != metablocking.WNP && alg != metablocking.CNP {
		return nil, fmt.Errorf("parblock: %v is not node-centric; use the sequential Prune", alg)
	}
	inputs := make([]string, len(g.Edges))
	for i, e := range g.Edges {
		inputs[i] = fmt.Sprintf("%d|%d|%s", e.A, e.B, strconv.FormatFloat(e.Weight, 'g', 17, 64))
	}
	kPerNode := opts.KPerNode
	if alg == metablocking.CNP && kPerNode <= 0 {
		if live := g.LiveNodes(); live > 0 {
			kPerNode = (opts.Assignments + live - 1) / live
		}
		if kPerNode <= 0 {
			kPerNode = 1
		}
	}
	type edge struct {
		a, b int
		w    float64
	}
	job := mapreduce.Job{
		Name: "node-pruning",
		Map: func(input string, emit func(mapreduce.KV)) error {
			parts := strings.SplitN(input, "|", 3)
			if len(parts) != 3 {
				return fmt.Errorf("bad edge record %q", input)
			}
			a, err1 := strconv.Atoi(parts[0])
			b, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil {
				return fmt.Errorf("bad edge record %q", input)
			}
			v := input
			emit(mapreduce.KV{Key: pad(a), Value: v})
			emit(mapreduce.KV{Key: pad(b), Value: v})
			return nil
		},
		Reduce: func(key string, values []string, emit func(mapreduce.KV)) error {
			edges := make([]edge, 0, len(values))
			sum := 0.0
			for _, v := range values {
				parts := strings.SplitN(v, "|", 3)
				if len(parts) != 3 {
					return fmt.Errorf("bad incident edge %q", v)
				}
				a, err1 := strconv.Atoi(parts[0])
				b, err2 := strconv.Atoi(parts[1])
				w, err3 := strconv.ParseFloat(parts[2], 64)
				if err1 != nil || err2 != nil || err3 != nil {
					return fmt.Errorf("bad incident edge %q", v)
				}
				edges = append(edges, edge{a, b, w})
				sum += w
			}
			var retained []edge
			switch alg {
			case metablocking.WNP:
				mean := sum / float64(len(edges))
				for _, e := range edges {
					if e.w >= mean {
						retained = append(retained, e)
					}
				}
			case metablocking.CNP:
				// Descending weight, ties by ascending (a,b) — the
				// sequential tie-break.
				sort.Slice(edges, func(x, y int) bool {
					if edges[x].w != edges[y].w {
						return edges[x].w > edges[y].w
					}
					if edges[x].a != edges[y].a {
						return edges[x].a < edges[y].a
					}
					return edges[x].b < edges[y].b
				})
				k := kPerNode
				if k > len(edges) {
					k = len(edges)
				}
				retained = edges[:k]
			}
			for _, e := range retained {
				emit(mapreduce.KV{
					Key:   pad(e.a) + "|" + pad(e.b),
					Value: strconv.FormatFloat(e.w, 'g', 17, 64),
				})
			}
			return nil
		},
	}
	res, err := mapreduce.Run(job, inputs, cfg)
	if err != nil {
		return nil, err
	}
	need := 1
	if opts.Reciprocal {
		need = 2
	}
	count := make(map[string]int)
	weightOf := make(map[string]float64)
	for _, kv := range res.Output {
		count[kv.Key]++
		w, err := strconv.ParseFloat(kv.Value, 64)
		if err != nil {
			return nil, fmt.Errorf("parblock: bad pruned weight %q: %w", kv.Value, err)
		}
		weightOf[kv.Key] = w
	}
	var kept []metablocking.Edge
	for key, n := range count {
		if n < need {
			continue
		}
		a, b, err := splitEdgeKey(key)
		if err != nil {
			return nil, err
		}
		kept = append(kept, metablocking.Edge{A: a, B: b, Weight: weightOf[key]})
	}
	metablocking.SortEdges(kept)
	return kept, nil
}
