// Package parblock realizes blocking and meta-blocking as MapReduce
// jobs, following the parallel meta-blocking dataflow of the paper's
// companion work [4] (Efthymiou et al., IEEE Big Data 2015): token
// blocking as one map/reduce pass, edge weighting with the
// entity-based strategy (each reducer sees one entity's co-occurrence
// bag), and node-centric pruning (WNP/CNP) as a further node-keyed
// pass. Each job is registered in the engine's job registry with
// self-contained inputs (jobs.go), so the same pass runs on in-process
// goroutines or on `minoaner worker` subprocesses. Results are
// identical to the sequential implementations in internal/blocking and
// internal/metablocking, which the tests assert.
package parblock

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/blocking"
	"repro/internal/kb"
	"repro/internal/mapreduce"
	"repro/internal/metablocking"
	"repro/internal/tokenize"
)

// TokenBlocking runs schema-agnostic token blocking as a MapReduce
// job: map emits (token, id) for every token of every description,
// reduce materializes one block per token, and the driver discards
// blocks that induce no comparisons. Tokenization happens driver-side
// (in parallel, through the collection's warmed cache) so the job's
// input records are self-contained.
func TokenBlocking(ctx context.Context, src *kb.Collection, opts tokenize.Options, cfg mapreduce.Config) (*blocking.Collection, error) {
	toks := src.WarmTokens(opts, cfg.Workers)
	inputs := make([]string, 0, src.Len())
	for id := 0; id < src.Len(); id++ {
		if !src.Alive(id) {
			continue
		}
		rec, err := json.Marshal(tokenInput{ID: id, Tokens: toks[id]})
		if err != nil {
			return nil, fmt.Errorf("parblock: encode tokens of %d: %w", id, err)
		}
		inputs = append(inputs, string(rec))
	}
	job, err := mapreduce.NewJob("token-blocking", "")
	if err != nil {
		return nil, err
	}
	res, err := mapreduce.RunContext(ctx, job, inputs, cfg)
	if err != nil {
		return nil, err
	}
	col := &blocking.Collection{Source: src, CleanClean: src.NumLiveKBs() > 1}
	for _, kv := range res.Output {
		ids, err := parseIDs(kv.Value)
		if err != nil {
			return nil, fmt.Errorf("parblock: block %q: %w", kv.Key, err)
		}
		b := blocking.Block{Key: kv.Key, Entities: ids}
		if b.Comparisons(src, col.CleanClean) == 0 {
			continue
		}
		col.Blocks = append(col.Blocks, b)
	}
	return col, nil
}

// parseIDs decodes a comma-joined id list; the shuffle sorts values as
// strings ("10" < "2"), so the result is re-sorted numerically.
func parseIDs(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	ids := make([]int, len(parts))
	for i, p := range parts {
		id, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}
	sort.Ints(ids)
	return ids, nil
}

// pad left-pads a numeric id to fixed width so string order equals
// numeric order in shuffle keys.
func pad(id int) string {
	return fmt.Sprintf("%012d", id)
}

func unpad(s string) (int, error) {
	t := strings.TrimLeft(s, "0")
	if t == "" {
		return 0, nil
	}
	return strconv.Atoi(t)
}

// Graph computes the blocking graph of a block collection with a
// MapReduce job per the entity-based strategy: map sends every
// comparison of every block to its smaller endpoint; that entity's
// reducer aggregates common-block counts (CBS) and reciprocal block
// cardinalities (ARCS) per co-occurring entity and emits one record
// per distinct edge. Each block ships with its entities' KB tags, so
// the worker recomputes comparison counts and cross-KB tests without
// the collection. The driver assembles the graph and applies the
// scheme's weight formula through the shared sequential code path.
func Graph(ctx context.Context, col *blocking.Collection, scheme metablocking.Scheme, cfg mapreduce.Config) (*metablocking.Graph, error) {
	src := col.Source
	inputs := make([]string, len(col.Blocks))
	for i := range col.Blocks {
		b := &col.Blocks[i]
		rec := edgeBlockInput{Entities: b.Entities}
		if col.CleanClean {
			rec.KB = make([]int, len(b.Entities))
			for j, id := range b.Entities {
				rec.KB[j] = src.KBOf(id)
			}
		}
		enc, err := json.Marshal(rec)
		if err != nil {
			return nil, fmt.Errorf("parblock: encode block %d: %w", i, err)
		}
		inputs[i] = string(enc)
	}
	job, err := mapreduce.NewJob("edge-weighting", jsonParams(edgeWeightParams{Clean: col.CleanClean}))
	if err != nil {
		return nil, err
	}
	res, err := mapreduce.RunContext(ctx, job, inputs, cfg)
	if err != nil {
		return nil, err
	}

	g := metablocking.NewGraphShell(col)
	for _, kv := range res.Output {
		a, b, err := splitEdgeKey(kv.Key)
		if err != nil {
			return nil, err
		}
		i := strings.IndexByte(kv.Value, ':')
		if i < 0 {
			return nil, fmt.Errorf("parblock: bad edge value %q", kv.Value)
		}
		cbs, err := strconv.Atoi(kv.Value[:i])
		if err != nil {
			return nil, fmt.Errorf("parblock: bad CBS in %q: %w", kv.Value, err)
		}
		arcs, err := strconv.ParseFloat(kv.Value[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("parblock: bad ARCS in %q: %w", kv.Value, err)
		}
		g.AddEdgeStat(a, b, cbs, arcs)
	}
	g.Finish(scheme)
	return g, nil
}

func splitEdgeKey(key string) (int, int, error) {
	sep := strings.IndexByte(key, '|')
	if sep < 0 {
		return 0, 0, fmt.Errorf("parblock: bad edge key %q", key)
	}
	a, err := unpad(key[:sep])
	if err != nil {
		return 0, 0, fmt.Errorf("parblock: bad edge key %q: %w", key, err)
	}
	b, err := unpad(key[sep+1:])
	if err != nil {
		return 0, 0, fmt.Errorf("parblock: bad edge key %q: %w", key, err)
	}
	return a, b, nil
}

// PruneNodeCentric runs WNP or CNP as a node-keyed MapReduce job: map
// routes every edge to both endpoints, each node's reducer applies its
// local criterion (mean weight for WNP, top-k for CNP) and re-emits
// retained edges; the driver keeps edges retained by either endpoint
// (or both, when opts.Reciprocal). Results match the sequential
// Graph.Prune.
func PruneNodeCentric(ctx context.Context, g *metablocking.Graph, alg metablocking.Pruning, opts metablocking.PruneOptions, cfg mapreduce.Config) ([]metablocking.Edge, error) {
	if alg != metablocking.WNP && alg != metablocking.CNP {
		return nil, fmt.Errorf("parblock: %v is not node-centric; use the sequential Prune", alg)
	}
	inputs := make([]string, len(g.Edges))
	for i, e := range g.Edges {
		inputs[i] = fmt.Sprintf("%d|%d|%s", e.A, e.B, strconv.FormatFloat(e.Weight, 'g', 17, 64))
	}
	kPerNode := opts.KPerNode
	if alg == metablocking.CNP && kPerNode <= 0 {
		if live := g.LiveNodes(); live > 0 {
			kPerNode = (opts.Assignments + live - 1) / live
		}
		if kPerNode <= 0 {
			kPerNode = 1
		}
	}
	job, err := mapreduce.NewJob("node-pruning", jsonParams(nodePruneParams{Alg: int(alg), KPerNode: kPerNode}))
	if err != nil {
		return nil, err
	}
	res, err := mapreduce.RunContext(ctx, job, inputs, cfg)
	if err != nil {
		return nil, err
	}
	need := 1
	if opts.Reciprocal {
		need = 2
	}
	count := make(map[string]int)
	weightOf := make(map[string]float64)
	for _, kv := range res.Output {
		count[kv.Key]++
		w, err := strconv.ParseFloat(kv.Value, 64)
		if err != nil {
			return nil, fmt.Errorf("parblock: bad pruned weight %q: %w", kv.Value, err)
		}
		weightOf[kv.Key] = w
	}
	var kept []metablocking.Edge
	for key, n := range count {
		if n < need {
			continue
		}
		a, b, err := splitEdgeKey(key)
		if err != nil {
			return nil, err
		}
		kept = append(kept, metablocking.Edge{A: a, B: b, Weight: weightOf[key]})
	}
	metablocking.SortEdges(kept)
	return kept, nil
}
