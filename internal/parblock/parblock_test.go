package parblock

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/blocking"
	"repro/internal/datagen"
	"repro/internal/mapreduce"
	"repro/internal/metablocking"
	"repro/internal/tokenize"
)

func workload(t *testing.T, seed int64, n int) *datagen.World {
	t.Helper()
	w, err := datagen.Generate(datagen.TwoKBs(seed, n, datagen.Center(), datagen.Periphery()))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestParallelTokenBlockingMatchesSequential(t *testing.T) {
	w := workload(t, 31, 120)
	opts := tokenize.Default()
	seq := blocking.TokenBlocking(w.Collection, opts)
	for _, workers := range []int{1, 3, 8} {
		par, err := TokenBlocking(context.Background(), w.Collection, opts, mapreduce.Config{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.NumBlocks() != seq.NumBlocks() {
			t.Fatalf("workers=%d: blocks %d != %d", workers, par.NumBlocks(), seq.NumBlocks())
		}
		for i := range seq.Blocks {
			if par.Blocks[i].Key != seq.Blocks[i].Key ||
				!reflect.DeepEqual(par.Blocks[i].Entities, seq.Blocks[i].Entities) {
				t.Fatalf("workers=%d: block %d differs: %v vs %v",
					workers, i, par.Blocks[i], seq.Blocks[i])
			}
		}
	}
}

func edgeKey(e metablocking.Edge) [2]int { return [2]int{e.A, e.B} }

func TestParallelGraphMatchesSequential(t *testing.T) {
	w := workload(t, 32, 100)
	col := blocking.TokenBlocking(w.Collection, tokenize.Default())
	for _, scheme := range metablocking.Schemes() {
		seq := metablocking.Build(col, scheme)
		par, err := Graph(context.Background(), col, scheme, mapreduce.Config{Workers: 4})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if par.NumEdges() != seq.NumEdges() {
			t.Fatalf("%v: edges %d != %d", scheme, par.NumEdges(), seq.NumEdges())
		}
		for i := range seq.Edges {
			se, pe := seq.Edges[i], par.Edges[i]
			if edgeKey(se) != edgeKey(pe) {
				t.Fatalf("%v: edge %d is %v vs %v", scheme, i, pe, se)
			}
			if math.Abs(se.Weight-pe.Weight) > 1e-9*(1+math.Abs(se.Weight)) {
				t.Fatalf("%v: edge %d weight %v vs %v", scheme, i, pe.Weight, se.Weight)
			}
		}
	}
}

func TestParallelPruneMatchesSequential(t *testing.T) {
	w := workload(t, 33, 90)
	col := blocking.TokenBlocking(w.Collection, tokenize.Default())
	g := metablocking.Build(col, metablocking.ECBS)
	opts := metablocking.PruneOptions{Assignments: col.Assignments()}
	for _, alg := range []metablocking.Pruning{metablocking.WNP, metablocking.CNP} {
		for _, reciprocal := range []bool{false, true} {
			o := opts
			o.Reciprocal = reciprocal
			seq := g.Prune(alg, o)
			par, err := PruneNodeCentric(context.Background(), g, alg, o, mapreduce.Config{Workers: 4})
			if err != nil {
				t.Fatalf("%v reciprocal=%v: %v", alg, reciprocal, err)
			}
			seqSet := make(map[[2]int]bool, len(seq))
			for _, e := range seq {
				seqSet[edgeKey(e)] = true
			}
			parSet := make(map[[2]int]bool, len(par))
			for _, e := range par {
				parSet[edgeKey(e)] = true
			}
			if !reflect.DeepEqual(seqSet, parSet) {
				t.Errorf("%v reciprocal=%v: retained sets differ (%d vs %d)",
					alg, reciprocal, len(seqSet), len(parSet))
			}
		}
	}
}

func TestPruneNodeCentricRejectsGlobalAlgs(t *testing.T) {
	g := &metablocking.Graph{}
	if _, err := PruneNodeCentric(context.Background(), g, metablocking.WEP, metablocking.PruneOptions{}, mapreduce.Config{}); err == nil {
		t.Error("WEP accepted by node-centric pruner")
	}
	if _, err := PruneNodeCentric(context.Background(), g, metablocking.CEP, metablocking.PruneOptions{}, mapreduce.Config{}); err == nil {
		t.Error("CEP accepted by node-centric pruner")
	}
}

func TestWorkerCountsAgree(t *testing.T) {
	w := workload(t, 34, 80)
	col := blocking.TokenBlocking(w.Collection, tokenize.Default())
	var base []metablocking.Edge
	for _, workers := range []int{1, 2, 4} {
		g, err := Graph(context.Background(), col, metablocking.JS, mapreduce.Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		kept, err := PruneNodeCentric(context.Background(), g, metablocking.WNP, metablocking.PruneOptions{}, mapreduce.Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = kept
			continue
		}
		if len(kept) != len(base) {
			t.Fatalf("workers=%d kept %d, want %d", workers, len(kept), len(base))
		}
		for i := range kept {
			if edgeKey(kept[i]) != edgeKey(base[i]) {
				t.Fatalf("workers=%d edge %d differs", workers, i)
			}
		}
	}
}

func TestUnpad(t *testing.T) {
	for _, c := range []struct {
		in   string
		want int
	}{{"000000000000", 0}, {"000000000042", 42}, {"7", 7}} {
		got, err := unpad(c.in)
		if err != nil || got != c.want {
			t.Errorf("unpad(%q)=%d,%v want %d", c.in, got, err, c.want)
		}
	}
	if _, err := unpad("00x"); err == nil {
		t.Error("unpad accepted garbage")
	}
}
