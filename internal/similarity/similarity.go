// Package similarity provides the string- and set-similarity measures
// used by entity matching: token-set measures (Jaccard, Dice, overlap,
// cosine with TF-IDF weighting) and edit-based measures (Levenshtein,
// Jaro, Jaro-Winkler). All measures return values in [0, 1], where 1
// means identical.
package similarity

import (
	"math"
	"sort"
	"strings"
)

// Jaccard returns |a∩b| / |a∪b| over two token sets.
// Two empty sets are defined to have similarity 0 (no evidence).
func Jaccard(a, b map[string]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := intersectionSize(a, b)
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Dice returns 2|a∩b| / (|a|+|b|).
func Dice(a, b map[string]struct{}) float64 {
	if len(a)+len(b) == 0 {
		return 0
	}
	inter := intersectionSize(a, b)
	return 2 * float64(inter) / float64(len(a)+len(b))
}

// Overlap returns |a∩b| / min(|a|,|b|), the overlap coefficient.
func Overlap(a, b map[string]struct{}) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := intersectionSize(a, b)
	return float64(inter) / float64(min(len(a), len(b)))
}

// CommonTokens returns |a∩b|.
func CommonTokens(a, b map[string]struct{}) int { return intersectionSize(a, b) }

func intersectionSize(a, b map[string]struct{}) int {
	if len(b) < len(a) {
		a, b = b, a
	}
	n := 0
	for t := range a {
		if _, ok := b[t]; ok {
			n++
		}
	}
	return n
}

// JaccardSlices computes Jaccard over token slices (treated as sets).
func JaccardSlices(a, b []string) float64 {
	return Jaccard(toSet(a), toSet(b))
}

func toSet(xs []string) map[string]struct{} {
	s := make(map[string]struct{}, len(xs))
	for _, x := range xs {
		s[x] = struct{}{}
	}
	return s
}

// TFIDF holds inverse-document-frequency weights learned from a corpus
// of token multisets. Cosine similarity weighted by IDF discounts
// tokens that appear everywhere (e.g. "city") and rewards rare,
// discriminative ones.
type TFIDF struct {
	df   map[string]int
	docs int
}

// NewTFIDF returns an empty model.
func NewTFIDF() *TFIDF { return &TFIDF{df: make(map[string]int)} }

// AddDoc folds one document's distinct tokens into the document
// frequency table.
func (m *TFIDF) AddDoc(tokens []string) {
	m.docs++
	seen := make(map[string]struct{}, len(tokens))
	for _, t := range tokens {
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		m.df[t]++
	}
}

// Docs returns how many documents the model has seen.
func (m *TFIDF) Docs() int { return m.docs }

// IDF returns the smoothed inverse document frequency of a token:
// ln(1 + N/df). Unknown tokens get the maximum weight ln(1+N).
func (m *TFIDF) IDF(token string) float64 {
	if m.docs == 0 {
		return 0
	}
	df := m.df[token]
	if df == 0 {
		df = 1
	}
	return math.Log(1 + float64(m.docs)/float64(df))
}

// Cosine returns the IDF-weighted cosine similarity of two token sets.
// Accumulation runs in sorted-token order, so the result is
// bit-for-bit deterministic.
func (m *TFIDF) Cosine(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	wa := m.weights(a)
	wb := m.weights(b)
	var dot, na, nb float64
	lookup := make(map[string]float64, len(wb))
	for _, w := range wb {
		nb += w.weight * w.weight
		lookup[w.token] = w.weight
	}
	for _, w := range wa {
		na += w.weight * w.weight
		if w2, ok := lookup[w.token]; ok {
			dot += w.weight * w2
		}
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Vector is a sparse TF-IDF document vector: the document's distinct
// tokens in ascending order with their TF-IDF weights, plus the
// precomputed squared norm. Vectorizing a document once and scoring
// with CosineVectors avoids re-walking raw tokens and rebuilding
// weight maps on every comparison — the dominant cost of the matching
// stage — and the result is bit-identical to calling Cosine on the
// raw token multisets, because both accumulate norms and dot products
// in ascending token order. A Vector is immutable after construction
// and safe for concurrent reads.
type Vector struct {
	Tokens  []string
	Weights []float64
	// Norm is Σ weight², accumulated in ascending token order — the
	// exact float sum Cosine computes internally.
	Norm float64
}

// Vectorize builds the sparse TF-IDF vector of one token multiset
// under the model's current IDF weights.
func (m *TFIDF) Vectorize(tokens []string) Vector {
	ws := m.weights(tokens)
	v := Vector{
		Tokens:  make([]string, len(ws)),
		Weights: make([]float64, len(ws)),
	}
	for i, w := range ws {
		v.Tokens[i] = w.token
		v.Weights[i] = w.weight
		v.Norm += w.weight * w.weight
	}
	return v
}

// CosineVectors returns the cosine similarity of two vectorized
// documents, bit-identical to Cosine over the raw token multisets the
// vectors were built from (under the same model): the sorted-order
// merge join visits common tokens in exactly the order Cosine's
// sorted-token accumulation does.
func CosineVectors(a, b Vector) float64 {
	if a.Norm == 0 || b.Norm == 0 {
		return 0
	}
	var dot float64
	i, j := 0, 0
	for i < len(a.Tokens) && j < len(b.Tokens) {
		switch {
		case a.Tokens[i] == b.Tokens[j]:
			dot += a.Weights[i] * b.Weights[j]
			i++
			j++
		case a.Tokens[i] < b.Tokens[j]:
			i++
		default:
			j++
		}
	}
	return dot / (math.Sqrt(a.Norm) * math.Sqrt(b.Norm))
}

type tokenWeight struct {
	token  string
	weight float64
}

// weights returns TF-IDF weights in sorted token order.
func (m *TFIDF) weights(tokens []string) []tokenWeight {
	tf := make(map[string]float64, len(tokens))
	for _, t := range tokens {
		tf[t]++
	}
	out := make([]tokenWeight, 0, len(tf))
	for t, f := range tf {
		out = append(out, tokenWeight{token: t, weight: (1 + math.Log(f)) * m.IDF(t)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].token < out[j].token })
	return out
}

// Levenshtein returns the normalized edit similarity:
// 1 − editDistance(a,b)/max(len(a),len(b)). Identical strings score 1;
// the empty-vs-empty case scores 1 as well.
func Levenshtein(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	d := editDistance(ra, rb)
	return 1 - float64(d)/float64(max(la, lb))
}

func editDistance(a, b []rune) int {
	if len(a) < len(b) {
		a, b = b, a
	}
	// Single-row dynamic program over the shorter string.
	prev := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		diag := prev[0]
		prev[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur := min(min(prev[j]+1, prev[j-1]+1), diag+cost)
			diag = prev[j]
			prev[j] = cur
		}
	}
	return prev[len(b)]
}

// Jaro returns the Jaro similarity of two strings.
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := max(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := max(0, i-window)
		hi := min(lb-1, i+window)
		for j := lo; j <= hi; j++ {
			if matchB[j] || ra[i] != rb[j] {
				continue
			}
			matchA[i], matchB[j] = true, true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched characters.
	trans := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			trans++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(trans)/2)/m) / 3
}

// JaroWinkler boosts Jaro similarity for strings sharing a common
// prefix (up to 4 runes), with the standard scaling factor 0.1.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	for prefix < len(a) && prefix < len(b) && prefix < 4 && a[prefix] == b[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// ExactNormalized reports 1 if the two strings are equal after trimming
// and case folding, else 0. Used as a cheap first-stage matcher.
func ExactNormalized(a, b string) float64 {
	if strings.EqualFold(strings.TrimSpace(a), strings.TrimSpace(b)) {
		return 1
	}
	return 0
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
