package similarity

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func set(xs ...string) map[string]struct{} {
	s := make(map[string]struct{}, len(xs))
	for _, x := range xs {
		s[x] = struct{}{}
	}
	return s
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b map[string]struct{}
		want float64
	}{
		{set("a", "b"), set("a", "b"), 1},
		{set("a", "b"), set("c", "d"), 0},
		{set("a", "b", "c"), set("b", "c", "d"), 0.5},
		{set(), set(), 0},
		{set("a"), set(), 0},
	}
	for i, c := range cases {
		if got := Jaccard(c.a, c.b); !approx(got, c.want) {
			t.Errorf("case %d: Jaccard=%v, want %v", i, got, c.want)
		}
	}
}

func TestDiceOverlapCommon(t *testing.T) {
	a, b := set("a", "b", "c"), set("b", "c", "d", "e")
	if got := Dice(a, b); !approx(got, 4.0/7.0) {
		t.Errorf("Dice=%v", got)
	}
	if got := Overlap(a, b); !approx(got, 2.0/3.0) {
		t.Errorf("Overlap=%v", got)
	}
	if got := CommonTokens(a, b); got != 2 {
		t.Errorf("CommonTokens=%d", got)
	}
	if Overlap(set(), b) != 0 || Dice(set(), set()) != 0 {
		t.Error("empty-set cases wrong")
	}
}

func TestJaccardSlices(t *testing.T) {
	if got := JaccardSlices([]string{"x", "y", "x"}, []string{"y", "z"}); !approx(got, 1.0/3.0) {
		t.Errorf("JaccardSlices=%v", got)
	}
}

func TestTFIDF(t *testing.T) {
	m := NewTFIDF()
	m.AddDoc([]string{"city", "paris"})
	m.AddDoc([]string{"city", "london"})
	m.AddDoc([]string{"city", "berlin"})
	if m.Docs() != 3 {
		t.Fatalf("Docs=%d", m.Docs())
	}
	// "city" appears in every doc: low IDF. "paris" in one: high IDF.
	if m.IDF("city") >= m.IDF("paris") {
		t.Errorf("IDF(city)=%v should be < IDF(paris)=%v", m.IDF("city"), m.IDF("paris"))
	}
	// Unknown tokens get the max weight.
	if m.IDF("tokyo") < m.IDF("paris") {
		t.Error("unknown token IDF should be >= rare token IDF")
	}
	// Cosine: sharing the rare token scores higher than sharing the common one.
	shareRare := m.Cosine([]string{"paris", "city"}, []string{"paris", "town"})
	shareCommon := m.Cosine([]string{"paris", "city"}, []string{"london", "city"})
	if shareRare <= shareCommon {
		t.Errorf("rare-token overlap %v should beat common-token overlap %v", shareRare, shareCommon)
	}
	if got := m.Cosine([]string{"a"}, nil); got != 0 {
		t.Errorf("Cosine with empty doc = %v", got)
	}
	if got := m.Cosine([]string{"paris"}, []string{"paris"}); !approx(got, 1) {
		t.Errorf("identical docs Cosine=%v, want 1", got)
	}
}

func TestTFIDFEmptyModel(t *testing.T) {
	m := NewTFIDF()
	if m.IDF("x") != 0 {
		t.Error("IDF on empty model should be 0")
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"kitten", "sitting", 1 - 3.0/7.0},
		{"", "", 1},
		{"abc", "", 0},
		{"abc", "abc", 1},
		{"flaw", "lawn", 0.5},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); !approx(got, c.want) {
			t.Errorf("Levenshtein(%q,%q)=%v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaro(t *testing.T) {
	if got := Jaro("MARTHA", "MARHTA"); !approx(got, 0.944444444444444) {
		t.Errorf("Jaro(MARTHA,MARHTA)=%v", got)
	}
	if got := Jaro("DIXON", "DICKSONX"); math.Abs(got-0.766666) > 1e-4 {
		t.Errorf("Jaro(DIXON,DICKSONX)=%v", got)
	}
	if Jaro("", "") != 1 || Jaro("a", "") != 0 {
		t.Error("empty cases wrong")
	}
	if Jaro("abc", "xyz") != 0 {
		t.Error("disjoint strings should score 0")
	}
}

func TestJaroWinkler(t *testing.T) {
	// Winkler boosts common prefixes.
	jw := JaroWinkler("MARTHA", "MARHTA")
	if math.Abs(jw-0.961111) > 1e-4 {
		t.Errorf("JaroWinkler=%v", jw)
	}
	if JaroWinkler("abc", "abc") != 1 {
		t.Error("identical strings should score 1")
	}
}

func TestExactNormalized(t *testing.T) {
	if ExactNormalized(" Paris ", "paris") != 1 {
		t.Error("case/space fold failed")
	}
	if ExactNormalized("Paris", "London") != 0 {
		t.Error("distinct strings scored 1")
	}
}

// Properties shared by all measures: range [0,1], symmetry, identity.
func TestMeasureProperties(t *testing.T) {
	strMeasures := map[string]func(a, b string) float64{
		"Levenshtein": Levenshtein,
		"Jaro":        Jaro,
		"JaroWinkler": JaroWinkler,
	}
	for name, fn := range strMeasures {
		fn := fn
		f := func(a, b string) bool {
			s := fn(a, b)
			if s < -1e-12 || s > 1+1e-12 {
				return false
			}
			if !approx(fn(a, b), fn(b, a)) {
				return false
			}
			return approx(fn(a, a), 1)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	setF := func(xs, ys []string) bool {
		a, b := toSet(xs), toSet(ys)
		for _, fn := range []func(a, b map[string]struct{}) float64{Jaccard, Dice, Overlap} {
			s := fn(a, b)
			if s < 0 || s > 1+1e-12 || !approx(s, fn(b, a)) {
				return false
			}
		}
		// Jaccard <= Dice <= Overlap ordering on non-empty sets.
		if len(a) > 0 && len(b) > 0 {
			if Jaccard(a, b) > Dice(a, b)+1e-12 || Dice(a, b) > Overlap(a, b)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(setF, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("set measures: %v", err)
	}
}

// TestCosineVectorsBitIdentical pins the contract the cached-vector
// fast path of the matcher relies on: CosineVectors over Vectorize'd
// documents returns the exact float Cosine returns over the raw token
// multisets — not approximately, bit for bit.
func TestCosineVectorsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vocab := make([]string, 60)
	for i := range vocab {
		vocab[i] = string(rune('a'+i%26)) + string(rune('a'+i/26))
	}
	doc := func(n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = vocab[rng.Intn(len(vocab))]
		}
		return out
	}
	m := NewTFIDF()
	docs := make([][]string, 200)
	for i := range docs {
		docs[i] = doc(rng.Intn(30)) // includes empty docs
		m.AddDoc(docs[i])
	}
	vecs := make([]Vector, len(docs))
	for i, d := range docs {
		vecs[i] = m.Vectorize(d)
	}
	for trial := 0; trial < 2000; trial++ {
		i, j := rng.Intn(len(docs)), rng.Intn(len(docs))
		want := m.Cosine(docs[i], docs[j])
		got := CosineVectors(vecs[i], vecs[j])
		if want != got {
			t.Fatalf("docs %d,%d: CosineVectors=%v Cosine=%v (diff %g)", i, j, got, want, got-want)
		}
	}
	// Self-similarity of a non-empty doc is 1 up to round-off, and the
	// vectors of the empty model score 0.
	empty := NewTFIDF()
	if got := CosineVectors(empty.Vectorize([]string{"x"}), empty.Vectorize([]string{"x"})); got != 0 {
		t.Errorf("empty-model cosine = %v, want 0", got)
	}
}

// TestVectorizeNorm checks the Norm field against the sum of squared
// weights in sorted-token order.
func TestVectorizeNorm(t *testing.T) {
	m := NewTFIDF()
	m.AddDoc([]string{"a", "b"})
	m.AddDoc([]string{"b", "c"})
	v := m.Vectorize([]string{"b", "a", "b"})
	if len(v.Tokens) != 2 || v.Tokens[0] != "a" || v.Tokens[1] != "b" {
		t.Fatalf("tokens not sorted/deduped: %v", v.Tokens)
	}
	if !sort.StringsAreSorted(v.Tokens) {
		t.Error("tokens unsorted")
	}
	want := v.Weights[0]*v.Weights[0] + v.Weights[1]*v.Weights[1]
	if v.Norm != want {
		t.Errorf("Norm=%v, want %v", v.Norm, want)
	}
	if empty := m.Vectorize(nil); empty.Norm != 0 || len(empty.Tokens) != 0 {
		t.Errorf("empty vectorize = %+v", empty)
	}
}
