package minoaner_test

import (
	"errors"
	"strings"
	"testing"

	minoaner "repro"
	"repro/internal/datagen"
	"repro/internal/rdf"
)

func mustDoc(t *testing.T, w *datagen.World, kbName string) string {
	t.Helper()
	doc, err := rdf.WriteString(w.Triples(kbName))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// The sentinel errors exist so callers — internal/server first among
// them — can branch on failure class with errors.Is instead of
// matching message strings. These tests pin which operations wrap
// which sentinel.

func TestErrBadBatch(t *testing.T) {
	p := minoaner.New(minoaner.Defaults())
	cases := []struct {
		name string
		call func() error
	}{
		{"LoadKB empty name", func() error { return p.LoadKB("", strings.NewReader("")) }},
		{"LoadKBTurtle empty name", func() error { return p.LoadKBTurtle("", strings.NewReader("")) }},
		{"LoadQuads empty default", func() error { return p.LoadQuads("", strings.NewReader("")) }},
		{"AddDescription empty kb", func() error { return p.AddDescription("", "http://x", nil, nil) }},
		{"AddDescription empty uri", func() error { return p.AddDescription("kb", "", nil, nil) }},
		{"Add empty uri in batch", func() error {
			return p.Add([]minoaner.Description{{KB: "kb", URI: ""}})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.call()
			if !errors.Is(err, minoaner.ErrBadBatch) {
				t.Errorf("got %v, want errors.Is(err, ErrBadBatch)", err)
			}
		})
	}
}

func TestErrBadBatchSession(t *testing.T) {
	w := hardSessionWorld(t, 41, 30)
	s := loadSession(t, w, minoaner.Defaults())
	if err := s.Ingest([]minoaner.Description{{KB: "", URI: "http://x"}}); !errors.Is(err, minoaner.ErrBadBatch) {
		t.Errorf("Ingest empty kb: got %v, want ErrBadBatch", err)
	}
	if err := s.IngestKB("", strings.NewReader("")); !errors.Is(err, minoaner.ErrBadBatch) {
		t.Errorf("IngestKB empty name: got %v, want ErrBadBatch", err)
	}
	if err := s.EvictKB(""); !errors.Is(err, minoaner.ErrBadBatch) {
		t.Errorf("EvictKB empty name: got %v, want ErrBadBatch", err)
	}
}

func TestErrUnknown(t *testing.T) {
	w := hardSessionWorld(t, 43, 30)
	s := loadSession(t, w, minoaner.Defaults())
	err := s.Evict([]minoaner.Ref{{KB: "alpha", URI: "http://never-loaded"}})
	if !errors.Is(err, minoaner.ErrUnknownDescription) {
		t.Errorf("Evict unknown ref: got %v, want ErrUnknownDescription", err)
	}
	kbErr := s.EvictKB("ghost")
	if !errors.Is(kbErr, minoaner.ErrUnknownKB) {
		t.Errorf("EvictKB unknown name: got %v, want ErrUnknownKB", kbErr)
	}
	// The unknown sentinels must not blur into each other.
	if errors.Is(kbErr, minoaner.ErrUnknownDescription) {
		t.Error("EvictKB error also matches ErrUnknownDescription")
	}
	if errors.Is(err, minoaner.ErrUnknownKB) {
		t.Error("Evict error also matches ErrUnknownKB")
	}
}

// TestErrSessionClosed pins the supersession contract: once a newer
// Start replaces a session, every streaming call on the old one wraps
// ErrSessionClosed — the condition internal/server maps to 409.
func TestErrSessionClosed(t *testing.T) {
	w := hardSessionWorld(t, 47, 30)
	p := minoaner.New(minoaner.Defaults())
	if err := p.LoadKB("alpha", strings.NewReader(mustDoc(t, w, "alpha"))); err != nil {
		t.Fatal(err)
	}
	old, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Start(); err != nil {
		t.Fatal(err)
	}
	calls := []struct {
		name string
		call func() error
	}{
		{"Ingest", func() error { return old.Ingest([]minoaner.Description{{KB: "alpha", URI: "http://x"}}) }},
		{"IngestKB", func() error { return old.IngestKB("alpha", strings.NewReader("")) }},
		{"Evict", func() error { return old.Evict([]minoaner.Ref{{KB: "alpha", URI: "http://x"}}) }},
		{"EvictKB", func() error { return old.EvictKB("alpha") }},
	}
	for _, tc := range calls {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.call()
			if !errors.Is(err, minoaner.ErrSessionClosed) {
				t.Errorf("got %v, want errors.Is(err, ErrSessionClosed)", err)
			}
			if errors.Is(err, minoaner.ErrBadBatch) {
				t.Error("supersession error also matches ErrBadBatch")
			}
		})
	}
}
