// In-package regression tests for the mid-pass failure semantics of
// syncFront: a front-end pass that dies between stages leaves state no
// retry can reconcile (the pending sets are drained), so the session
// must poison itself with ErrDesynced instead of silently serving the
// desynchronized view. The faults are injected through an engine stub
// wrapping the real one — the only way to make eng.Ingest/eng.Evict
// fail on demand.
package minoaner

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/pipeline"
)

// faultyEngine delegates to a real engine until a fault is armed.
type faultyEngine struct {
	pipeline.Engine
	failIngest bool
	failEvict  bool
}

var errInjected = errors.New("injected engine fault")

func (f *faultyEngine) Ingest(st *pipeline.State) error {
	if f.failIngest {
		return errInjected
	}
	return f.Engine.Ingest(st)
}

func (f *faultyEngine) Evict(st *pipeline.State) error {
	if f.failEvict {
		return errInjected
	}
	return f.Engine.Evict(st)
}

func dsc(kbName, uri, name string) Description {
	return Description{KB: kbName, URI: uri, Attrs: []Attribute{{Predicate: "name", Value: name}}}
}

func desyncSession(t *testing.T, cfg Config) *Session {
	t.Helper()
	p := New(cfg)
	if err := p.Add([]Description{
		dsc("a", "u1", "alpha one"), dsc("a", "u2", "beta two"),
		dsc("b", "v1", "alpha one"), dsc("b", "v2", "beta two"),
	}); err != nil {
		t.Fatal(err)
	}
	s, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func wantDesynced(t *testing.T, what string, err error) {
	t.Helper()
	if !errors.Is(err, ErrDesynced) {
		t.Fatalf("%s = %v, want ErrDesynced", what, err)
	}
}

// TestDesyncEvictFault poisons via a failing engine Evict: the
// tombstones already landed in the collection and the pending set is
// consumed, so the session must refuse everything afterwards — even
// after the fault clears (the missed rebuild cannot be replayed).
func TestDesyncEvictFault(t *testing.T) {
	cfg := Defaults()
	cfg.Workers = 1
	s := desyncSession(t, cfg)
	fe := &faultyEngine{Engine: s.eng, failEvict: true}
	s.eng = fe

	err := s.Evict([]Ref{{KB: "a", URI: "u1"}})
	wantDesynced(t, "Evict", err)
	if !errors.Is(err, errInjected) {
		t.Fatalf("poison lost its cause: %v", err)
	}

	fe.failEvict = false // healing the engine must not unpoison
	wantDesynced(t, "Ingest after poison", s.Ingest([]Description{dsc("a", "u9", "gamma")}))
	wantDesynced(t, "Evict after poison", s.Evict([]Ref{{KB: "a", URI: "u2"}}))
	wantDesynced(t, "EvictKB after poison", s.EvictKB("a"))
	_, err = s.Resume(0)
	wantDesynced(t, "Resume after poison", err)

	// The documented recovery: a fresh Start over the shared collection
	// rebuilds everything from scratch and resolves normally.
	fresh, err := s.p.Start()
	if err != nil {
		t.Fatalf("Start after poison: %v", err)
	}
	if _, err := fresh.Resume(0); err != nil {
		t.Fatalf("fresh session Resume: %v", err)
	}
}

// TestDesyncIngestFault poisons via a failing engine Ingest — the batch
// is already in the collection, the front never advanced.
func TestDesyncIngestFault(t *testing.T) {
	cfg := Defaults()
	cfg.Workers = 1
	s := desyncSession(t, cfg)
	s.eng = &faultyEngine{Engine: s.eng, failIngest: true}

	wantDesynced(t, "Ingest", s.Ingest([]Description{dsc("a", "u3", "gamma three")}))
	_, err := s.Resume(0)
	wantDesynced(t, "Resume after poison", err)
}

// TestDesyncMidPass is the exact scenario of the issue: one pass in
// which eng.Ingest succeeds (the front-end advanced) and eng.Evict then
// fails (matcher/resolver never rebuilt). A TTL window arranges both
// halves inside a single syncFront: the new batch ingests, the expired
// batch evicts.
func TestDesyncMidPass(t *testing.T) {
	cfg := Defaults()
	cfg.Workers = 1
	cfg.TTL = 1
	s := desyncSession(t, cfg)
	s.eng = &faultyEngine{Engine: s.eng, failEvict: true}

	err := s.Ingest([]Description{dsc("a", "u3", "gamma three"), dsc("b", "v3", "gamma three")})
	wantDesynced(t, "Ingest with TTL expiry", err)
	if !strings.Contains(err.Error(), errInjected.Error()) {
		t.Fatalf("poison does not name the cause: %v", err)
	}
	// Sticky: the same error again, not a new pass.
	again := s.Ingest([]Description{dsc("a", "u4", "delta four")})
	if !errors.Is(again, ErrDesynced) {
		t.Fatalf("second Ingest = %v, want ErrDesynced", again)
	}
}
