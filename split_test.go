// In-package regression tests for WAL frame-cap handling: an ingest
// batch whose JSON outgrows the frame budget must split into separately
// logged chunks (each replayable on its own), and a single description
// no frame can carry must be refused with the typed
// wal.ErrFrameTooLarge before anything is appended or applied — the
// old path cast the length to uint32 unchecked, which would have
// written a wrapped length and corrupted the log. The cap is injected
// through testPayloadCap so the boundary is exercised without
// gigabyte allocations.
package minoaner

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"repro/internal/wal"
)

// splitWorld builds a batch whose JSON encoding comfortably exceeds cap.
func splitWorld(n int) []Description {
	batch := make([]Description, n)
	for i := range batch {
		kbn := "a"
		if i%2 == 1 {
			kbn = "b"
		}
		batch[i] = dsc(kbn, fmt.Sprintf("http://x/%d", i), fmt.Sprintf("common token plus entity %d", i/2))
	}
	return batch
}

func TestSplitBatchShape(t *testing.T) {
	batch := splitWorld(16)
	full, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	cap := len(full) / 5
	chunks, err := splitBatch(batch, cap)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 2 {
		t.Fatalf("batch of %d bytes under cap %d split into %d chunks", len(full), cap, len(chunks))
	}
	var flat []Description
	for i, c := range chunks {
		if len(c) == 0 {
			t.Fatalf("chunk %d is empty", i)
		}
		if data, _ := json.Marshal(c); len(c) > 1 && len(data) > cap {
			t.Fatalf("chunk %d (%d descriptions) marshals to %d bytes over cap %d", i, len(c), len(data), cap)
		}
		flat = append(flat, c...)
	}
	if len(flat) != len(batch) {
		t.Fatalf("chunks carry %d descriptions, want %d", len(flat), len(batch))
	}
	for i := range flat {
		if flat[i].URI != batch[i].URI {
			t.Fatalf("description %d reordered: %s, want %s", i, flat[i].URI, batch[i].URI)
		}
	}
	// A batch under the cap stays whole, and a single description over
	// the cap is refused with the typed sentinel.
	if got, err := splitBatch(batch, len(full)); err != nil || len(got) != 1 {
		t.Fatalf("under-cap batch: %d chunks, err %v", len(got), err)
	}
	if _, err := splitBatch(batch[:1], 4); !errors.Is(err, wal.ErrFrameTooLarge) {
		t.Fatalf("oversized single description = %v, want wal.ErrFrameTooLarge", err)
	}
}

// TestIngestChunkingReplays drives an over-cap batch through both
// dispatch paths — pre-Start load and live-session ingest — with a
// lowered frame budget, and proves the log recovers to exactly the
// state of an uncapped pipeline fed the same batches. The TTL variant
// pins the documented semantics: each chunk is its own logged batch
// and its own TTL tick, identical live and on replay.
func TestIngestChunkingReplays(t *testing.T) {
	for _, ttl := range []int{0, 2} {
		t.Run(fmt.Sprintf("ttl=%d", ttl), func(t *testing.T) {
			cfg := Defaults()
			cfg.Workers = 1
			cfg.TTL = ttl
			cfg.CompactionThreshold = -1
			pre, live := splitWorld(12), splitWorld(24)[12:]

			dir := t.TempDir()
			p, err := Open(dir, cfg)
			if err != nil {
				t.Fatal(err)
			}
			p.testPayloadCap = 400
			if err := p.Add(pre); err != nil {
				t.Fatal(err)
			}
			s, err := p.Start()
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Ingest(live); err != nil {
				t.Fatal(err)
			}
			chunks, err := splitBatch(live, p.testPayloadCap)
			if err != nil {
				t.Fatal(err)
			}
			liveChunks := len(chunks)
			if liveChunks < 2 {
				t.Fatal("live batch fits one frame — the test exercises nothing")
			}
			if ttl > 0 && s.curGen != liveChunks {
				t.Fatalf("TTL clock at %d after %d chunks", s.curGen, liveChunks)
			}
			res, err := s.Resume(0)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}

			// Recovery replays one record per chunk through the same path.
			rp, err := Open(dir, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer rp.Close()
			rres, err := rp.Current().Resume(0)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := fmt.Sprintf("%+v", rres.Stats), fmt.Sprintf("%+v", res.Stats); got != want {
				t.Fatalf("recovered stats %s, want %s", got, want)
			}
			if len(rres.Matches) != len(res.Matches) {
				t.Fatalf("recovered %d matches, want %d", len(rres.Matches), len(res.Matches))
			}
			for i := range res.Matches {
				if rres.Matches[i] != res.Matches[i] {
					t.Fatalf("recovered match %d = %+v, want %+v", i, rres.Matches[i], res.Matches[i])
				}
			}
		})
	}
}

// TestFrameTooLargeTyped pins the bugfix proper: a description whose
// own encoding exceeds the cap reaches Append as a one-element chunk,
// Append refuses it with the typed sentinel, and nothing was logged or
// applied — the session stays healthy, not poisoned.
func TestFrameTooLargeTyped(t *testing.T) {
	cfg := Defaults()
	cfg.Workers = 1
	p, err := Open(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.testPayloadCap = 200

	huge := []Description{dsc("a", "http://x/huge", string(make([]byte, 4096)))}
	if err := p.Add(huge); !errors.Is(err, wal.ErrFrameTooLarge) {
		t.Fatalf("pre-Start Add of oversized description = %v, want wal.ErrFrameTooLarge", err)
	}
	if p.NumDescriptions() != 0 {
		t.Fatalf("%d descriptions applied after refused append", p.NumDescriptions())
	}

	if err := p.Add(splitWorld(4)); err != nil {
		t.Fatal(err)
	}
	s, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	before := p.NumDescriptions()
	if err := s.Ingest(huge); !errors.Is(err, wal.ErrFrameTooLarge) {
		t.Fatalf("session Ingest of oversized description = %v, want wal.ErrFrameTooLarge", err)
	}
	if p.NumDescriptions() != before {
		t.Fatal("oversized ingest mutated the collection")
	}
	// Refused before anything moved: no poison, the session keeps working.
	if err := s.Ingest([]Description{dsc("a", "http://x/ok", "small late arrival")}); err != nil {
		t.Fatalf("ingest after refused oversized batch: %v", err)
	}
	if _, err := s.Resume(0); err != nil {
		t.Fatal(err)
	}
}
