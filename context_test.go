package minoaner_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	minoaner "repro"
)

// ResumeContext honors cancellation between comparisons and returns
// the cumulative result so far alongside ctx.Err(). Crucially, the
// comparisons already committed stay committed: a later Resume
// continues the same pay-as-you-go run, so an interrupted leg plus a
// drain leg still equals one uninterrupted run — the leg-concatenation
// invariant the rest of the session suite pins, now with cancellation
// as a leg boundary.

func TestResumeContextPreCancelled(t *testing.T) {
	w := hardSessionWorld(t, 51, 60)
	s := loadSession(t, w, minoaner.Defaults())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := s.ResumeContext(ctx, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got err %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled resume returned no result")
	}
	if res.Stats.Comparisons != 0 {
		t.Fatalf("pre-cancelled resume executed %d comparisons", res.Stats.Comparisons)
	}
	if s.Pending() == 0 {
		t.Fatal("pre-cancelled resume drained the queue")
	}
}

func TestCancelledLegThenDrainEqualsWholeRun(t *testing.T) {
	w := hardSessionWorld(t, 53, 100)

	whole, err := loadSession(t, w, minoaner.Defaults()).Resume(0)
	if err != nil {
		t.Fatal(err)
	}

	s := loadSession(t, w, minoaner.Defaults())
	// A budget leg, then a cancelled leg (deterministically: cancelled
	// before it starts), then a drain — cancellation must behave as a
	// clean leg boundary, leaving the queue resumable.
	if _, err := s.Resume(25); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.ResumeContext(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled leg: got %v, want context.Canceled", err)
	}
	final, err := s.Resume(0)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "cancel-then-drain", whole, final)
}

// TestResolveContext covers the one-shot entry point: cancellation
// surfaces, and a fresh pipeline resolves identically to ResolveBudget
// when the context stays live.
func TestResolveContext(t *testing.T) {
	w := hardSessionWorld(t, 59, 60)

	load := func() *minoaner.Pipeline {
		p := minoaner.New(minoaner.Defaults())
		for _, name := range []string{"alpha", "betaKB"} {
			if err := p.LoadKB(name, strings.NewReader(mustDoc(t, w, name))); err != nil {
				t.Fatal(err)
			}
		}
		return p
	}

	want, err := load().ResolveBudget(0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := load().ResolveContext(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "resolve-context", want, got)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := load().ResolveContext(ctx, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled resolve: got %v, want context.Canceled", err)
	}
	if res == nil || res.Stats.Comparisons != 0 {
		t.Fatalf("cancelled resolve still executed comparisons: %+v", res)
	}
}

// TestTimingsAccumulate sanity-checks the per-stage counters the
// status endpoint reports: after real work, the resolve and front-end
// clocks have advanced, and successive reads are monotone.
func TestTimingsAccumulate(t *testing.T) {
	w := hardSessionWorld(t, 61, 80)
	s := loadSession(t, w, minoaner.Defaults())
	if s.Timings().FrontEnd <= 0 {
		t.Error("front-end timing is zero after Start")
	}
	if _, err := s.Resume(30); err != nil {
		t.Fatal(err)
	}
	first := s.Timings()
	if first.Resolve <= 0 {
		t.Error("resolve timing is zero after a budget leg")
	}
	if _, err := s.Resume(0); err != nil {
		t.Fatal(err)
	}
	second := s.Timings()
	if second.Resolve < first.Resolve {
		t.Errorf("resolve timing went backwards: %v then %v", first.Resolve, second.Resolve)
	}
	if second.Schedule+second.Match+second.Update <= 0 {
		t.Error("resolver stage timings all zero after a drained run")
	}
	if err := s.Ingest([]minoaner.Description{{KB: "alpha", URI: "http://timed"}}); err != nil {
		t.Fatal(err)
	}
	if s.Timings().Ingest <= 0 {
		t.Error("ingest timing is zero after an ingest")
	}
}
